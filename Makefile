.PHONY: build test ci chaos clean

build:
	dune build

test:
	dune runtest

# Everything CI gates on: all targets (including bench/ and examples/)
# plus the full test suite.
ci:
	dune build @ci

# Soak run of the chaos invariant suite (default is 500 schedules).
chaos:
	CHAOS_ITERS=5000 dune exec test/test_chaos.exe

clean:
	dune clean
