.PHONY: build test ci chaos bench-smoke obs-smoke serve-smoke reactor-smoke telemetry-smoke chaos-serve-smoke graph-smoke lint lint-deep lint-smoke lint-deep-smoke bench-baseline serve-bench clean

build:
	dune build

test:
	dune runtest

# Everything CI gates on: all targets (including bench/ and examples/),
# the full test suite, and the bench-smoke JSON shape check.
ci:
	dune build @ci

# Fast perf-plumbing check: emit the bench JSON with tiny trial counts
# and validate its shape (also part of @ci).
bench-smoke:
	dune build @bench-smoke

# Observability smoke: run the `swap_cli obs` probe workload and
# validate the metrics snapshot + span trace it exports (also part of
# @ci).
obs-smoke:
	dune build @obs-smoke

# Serving smoke: pipe-mode server + fixed request script, every
# response line pinned (ids, status, error codes, payload shapes,
# cache byte-identity of the repeated request) (also part of @ci).
serve-smoke:
	dune build @serve-smoke

# Reactor smoke: the fixed request script over a real socket reactor —
# JSON leg pinned to the pipe-mode transcript, binary leg pinned
# byte-identical to the JSON rows (health shape-pinned) (also part of
# @ci).
reactor-smoke:
	dune build @reactor-smoke

# Telemetry smoke: the fixed script through a single-shard reactor with
# sampling forced to 1-in-1, then the `stats` request over both codecs
# and a flight-recorder dump, shapes validated (also part of @ci).
telemetry-smoke:
	dune build @telemetry-smoke

# Chaos-serve smoke: seeded fault-injected load (torn writes, truncated
# responses, resets, one injected worker crash) through the retrying
# client; gate pins success >= 99%, zero byte mismatches, zero stranded
# tickets, >= 1 supervised restart, and a hard wall budget (also part
# of @ci).
chaos-serve-smoke:
	dune build @chaos-serve-smoke

# Graph smoke: a tiny `swap_cli graph-sweep --json` run (every topology
# family, two random seeds, two slacks) validated structurally —
# staggered-expiry schedules, probability SRs, and routes that exist
# edge-by-edge in the served token universe (also part of @ci).
graph-smoke:
	dune build @graph-smoke

# Static analysis: parse the whole source tree and enforce the
# determinism/domain-safety invariants (DESIGN.md §10); fails on any
# unsuppressed error-severity finding (also part of @ci).
lint:
	dune build @lint

# Whole-program static analysis: build the cross-module call graph
# from the .cmt typedtrees and run the interprocedural passes —
# nondeterminism taint into deterministic sinks, blocking syscalls on
# the reactor's per-connection hot path, cross-unit lock discipline
# (DESIGN.md §15); fails on any unsuppressed error (also part of @ci).
lint-deep:
	dune build @lint-deep

# Lint plumbing check: swap_lint over the deliberately broken fixture
# tree, htlc-lint/v1 document shape validated (also part of @ci).
lint-smoke:
	dune build @lint-smoke

# Deep-lint plumbing check: the fixture's compiled half through the
# whole-program pass — cross-module taint, hot-path blocking, and
# cross-unit lock chains all reported, deep suppression round-trip
# counted, htlc-lint/v2 shape validated (also part of @ci).
lint-deep-smoke:
	dune build @lint-deep-smoke

# Full recorded perf baseline: every kernel + the 20k-trial Monte-Carlo
# wall clock at jobs=1 vs jobs=N, written to BENCH_mc.json.
bench-baseline:
	dune exec bench/main.exe -- --json BENCH_mc.json

# Full serve load run: 10k requests against the socket server (2
# workers, 4 clients), byte-compared against direct library calls,
# then the same corpus again through the seeded chaos transports
# (fault-injected clients + one injected worker crash), written to
# SERVE_bench.json ("serve" + "chaos" sections).
serve-bench:
	dune exec bench/main.exe -- serve --json SERVE_bench.json --chaos

# Soak run of the chaos invariant suite (default is 500 schedules).
chaos:
	CHAOS_ITERS=5000 dune exec test/test_chaos.exe

clean:
	dune clean
