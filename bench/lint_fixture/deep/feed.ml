(* The nondeterminism source of the deep fixture: a wall-clock read
   ("market data arrival jitter") two calls away from the cache key in
   Keyer.  The deep pass must follow Keyer.cache_key -> stamp ->
   jitter -> Unix.gettimeofday across module boundaries. *)

let jitter () = Unix.gettimeofday ()
let stamp label = Printf.sprintf "%s@%.0f" label (jitter ())
