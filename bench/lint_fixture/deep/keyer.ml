(* The deterministic sink of the deep fixture (the config names
   deep/keyer.ml as a sink file): cache keys must be pure functions of
   their inputs, but cache_key reaches Unix.gettimeofday through
   Feed — the cross-module deep_taint error the lint-deep-smoke pins.
   salted_key stages the same leak under a justified allowance, proving
   deep-finding suppression round-trips through the v2 document. *)

let cache_key venue = "key:" ^ Feed.stamp venue

let salted_key venue = "salted:" ^ Feed.stamp venue
[@@lint.allow deep_taint
    "fixture: proves a justified allowance suppresses a deep finding"]
