(* The blocking syscall one call below the hot loop: invisible to a
   per-file lint, caught by the deep reachability pass. *)

let rest () = Unix.sleep 1
