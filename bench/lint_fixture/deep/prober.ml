(* The deep_lock violation: a cross-unit read of Registry's shared
   table with no Mutex/Atomic anywhere in this body — it bypasses the
   guard convention the defining module established. *)

let census () = Hashtbl.length Registry.table
