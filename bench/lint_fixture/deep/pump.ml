(* The fixture's per-connection hot loop (the config names
   deep/pump.ml's loop as a hot root): it reaches Unix.sleep through
   Nap — the deep_blocking error the lint-deep-smoke pins, with the
   Pump.loop -> Nap.rest -> Unix.sleep chain in the finding. *)

let rec loop n =
  if n = 0 then ()
  else begin
    Nap.rest ();
    loop (n - 1)
  end
