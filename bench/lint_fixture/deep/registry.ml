(* Guarded shared state, done right *in this module*: the defining
   module holds the Mutex (so the syntactic shared_state rule passes).
   The deep_lock case is Prober, which reaches the table from another
   compilation unit without touching any guard. *)

let lock = Mutex.create ()
let table : (string, int) Hashtbl.t = Hashtbl.create 64

let record venue n =
  Mutex.lock lock;
  Hashtbl.replace table venue n;
  Mutex.unlock lock
