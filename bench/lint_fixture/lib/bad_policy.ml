(* Deliberately broken module — the lint-smoke fixture.  Every
   violation below must keep producing its finding: the @lint-smoke CI
   check pins the htlc-lint/v1 document swap_lint emits for this tree
   and that the run exits nonzero, proving an error-severity finding
   still fails the build.  The file is parsed by the linter, never
   compiled (no dune stanza claims it), and the repo-wide lint walk
   skips any directory named lint_fixture. *)

let seed () = Random.self_init ()
let pick n = Random.int n
let now () = Unix.gettimeofday ()
let table : (string, int) Hashtbl.t = Hashtbl.create 8
let sum () = Hashtbl.fold (fun _ v acc -> acc + v) table 0
let swallow f = try f () with _ -> 0
let shout () = print_endline "done"

(* An allowance that matches nothing: must surface as
   unused_suppression. *)
let stale = 1
[@@lint.allow output "never matches anything; exercises unused_suppression"]

(* A blank justification: must surface as bad_suppression. *)
let unjustified = 2 [@@lint.allow shared_state "   "]
