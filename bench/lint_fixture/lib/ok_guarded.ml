(* The well-behaved counterpart in the lint-smoke fixture: toplevel
   shared state guarded by a module-local Mutex (so shared_state stays
   quiet) and an order-insensitive Hashtbl.fold carrying a justified
   [@@lint.allow] (so the suppression round-trip shows up in the
   document's "suppressed" counter). *)

let lock = Mutex.create ()
let hits : (string, int) Hashtbl.t = Hashtbl.create 8

let record name =
  Mutex.lock lock;
  (match Hashtbl.find_opt hits name with
  | Some n -> Hashtbl.replace hits name (n + 1)
  | None -> Hashtbl.replace hits name 1);
  Mutex.unlock lock

let snapshot () =
  Mutex.lock lock;
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) hits [] in
  Mutex.unlock lock;
  List.sort compare rows
[@@lint.allow hashtbl_order
  "the fold runs under lock and the rows are sorted before they escape"]
