(* Interface for the well-behaved fixture module, so it satisfies the
   interface-coverage rule (missing_mli) that its sibling deliberately
   violates. *)

val record : string -> unit
val snapshot : unit -> (string * int) list
