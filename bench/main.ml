(* Benchmark harness.

   Default run (no flags) does two things:

   1. Regenerates every table and figure of the paper (the same rows
      and series the paper reports) by running the full experiment
      registry — this is the reproduction output.

   2. Times the computational kernel behind each table/figure with
      Bechamel (one [Test.make] per experiment), plus the substrate
      micro-kernels, and prints an OLS summary.

   With [--json FILE] it instead writes the machine-readable perf
   baseline: per-kernel ns/op plus the wall-clock of the 20k-trial
   Monte-Carlo kernel at jobs=1 and jobs=N (and whether the two results
   were bit-identical — the determinism contract, recorded on every
   baseline).  Flags: [--json FILE] [--mc-trials N] [--jobs N]
   [--smoke] (tiny kernel subset + quota, for CI). *)

open Bechamel
open Toolkit

let p = Swap.Params.defaults

(* --- kernels: one per table/figure ------------------------------------ *)

let stage = Staged.stage

let kernel_tab1 =
  Test.make ~name:"tab1/protocol-run"
    (stage (fun () -> ignore (Swap.Protocol.run p ~p_star:2.)))

let kernel_tab3 =
  Test.make ~name:"tab3/params-validate"
    (stage (fun () -> ignore (Swap.Params.validate p)))

let kernel_fig2 =
  Test.make ~name:"fig2/timeline"
    (stage (fun () ->
         let tl = Swap.Timeline.ideal p in
         ignore (Swap.Timeline.check p tl)))

let kernel_fig3 =
  Test.make ~name:"fig3/a-t3-utilities"
    (stage (fun () ->
         for i = 1 to 100 do
           let x = 0.04 *. float_of_int i in
           ignore (Swap.Utility.a_t3_cont p ~p_t3:x)
         done;
         ignore (Swap.Cutoff.p_t3_low p ~p_star:2.)))

let kernel_fig4 =
  let k3 = Swap.Cutoff.p_t3_low p ~p_star:2. in
  Test.make ~name:"fig4/b-t2-curve"
    (stage (fun () ->
         for i = 1 to 100 do
           let x = 0.045 *. float_of_int i in
           ignore (Swap.Utility.b_t2_cont p ~p_star:2. ~k3 ~p_t2:x)
         done))

let kernel_fig5 =
  let k3 = Swap.Cutoff.p_t3_low p ~p_star:2. in
  let band = Swap.Cutoff.p_t2_band p ~p_star:2. in
  Test.make ~name:"fig5/a-t1-cont"
    (stage (fun () -> ignore (Swap.Utility.a_t1_cont p ~p_star:2. ~k3 ~band)))

let kernel_eq29 =
  Test.make ~name:"eq29/p-star-band"
    (stage (fun () -> ignore (Swap.Cutoff.p_star_band_endpoints p)))

let kernel_fig6 =
  Test.make ~name:"fig6/sr-eval"
    (stage (fun () -> ignore (Swap.Success.analytic p ~p_star:2.)))

let kernel_fig7 =
  let c = Swap.Collateral.symmetric p ~q:0.5 in
  Test.make ~name:"fig7/t2-cont-set"
    (stage (fun () -> ignore (Swap.Collateral.cont_set_t2 c ~p_star:2.)))

let kernel_fig8 =
  let c = Swap.Collateral.symmetric p ~q:0.5 in
  Test.make ~name:"fig8/t1-utilities"
    (stage (fun () ->
         ignore (Swap.Collateral.a_t1_cont c ~p_star:2.);
         ignore (Swap.Collateral.b_t1_cont c ~p_star:2.)))

let kernel_fig9 =
  let c = Swap.Collateral.symmetric p ~q:0.5 in
  Test.make ~name:"fig9/sr-collateral"
    (stage (fun () -> ignore (Swap.Collateral.success_rate c ~p_star:2.)))

let kernel_mc =
  let policy = Swap.Agent.rational p ~p_star:2. in
  Test.make ~name:"mc/simulate-1k"
    (stage (fun () ->
         ignore (Swap.Montecarlo.run ~trials:1_000 p ~p_star:2. ~policy)))

let kernel_lattice =
  Test.make ~name:"lattice/solve-30x30"
    (stage (fun () ->
         let spec =
           Swap.Lattice_game.make_spec ~steps_a:30 ~steps_b:30 p ~p_star:2.
         in
         ignore (Swap.Lattice_game.solve spec)))

let kernel_baselines =
  let c = Swap.Collateral.symmetric p ~q:0.5 in
  Test.make ~name:"baselines/mc-collateral-1k"
    (stage (fun () ->
         ignore (Swap.Montecarlo.run_collateral ~trials:1_000 c ~p_star:2.)))

let kernel_jumps =
  let policy = Swap.Agent.rational p ~p_star:2. in
  let jd =
    Stochastic.Jump_diffusion.create ~mu:p.Swap.Params.mu ~sigma:0.07
      ~lambda:0.05 ~jump_mean:(-0.02) ~jump_stddev:0.3
  in
  Test.make ~name:"jumps/mc-1k"
    (stage (fun () ->
         ignore
           (Swap.Montecarlo.run ~trials:1_000
              ~sampler:(Swap.Montecarlo.jump_sampler jd)
              p ~p_star:2. ~policy)))

let kernel_optionality =
  Test.make ~name:"optionality/option-values"
    (stage (fun () -> ignore (Swap.Optionality.option_values p ~p_star:2.)))

let kernel_selection =
  Test.make ~name:"selection/assess-menu"
    (stage (fun () ->
         ignore
           (Swap.Selection.menu p ~p_star:2.
              [ Swap.Selection.Plain; Swap.Selection.Collateral 0.5 ])))

let kernel_frictions =
  Test.make ~name:"frictions/staking-and-fees"
    (stage (fun () ->
         let s = Swap.Staking.create p ~yield_a:0.002 ~yield_b:0.002 in
         ignore (Swap.Staking.success_rate s ~p_star:2.);
         let f = Swap.Fees.create p ~fee_a:0.05 ~fee_b:0.05 in
         ignore (Swap.Fees.success_rate f ~p_star:2.)))

let kernel_backtest =
  (* A small fixed market so the kernel stays sub-second. *)
  let path, _ =
    Market.Regimes.sample
      (Numerics.Rng.create ~seed:7 ())
      Market.Regimes.default_spec ~p0:2. ~dt:0.5 ~steps:600
  in
  Test.make ~name:"backtest/fit-quote-one-trade"
    (stage (fun () ->
         match Market.Calibrate.fit_window path ~until:250. ~window:168. with
         | Error _ -> ()
         | Ok fit ->
           let params =
             Market.Calibrate.to_params fit
               ~spot:(Stochastic.Path.at path 250.)
           in
           ignore (Swap.Success.maximize params)))

let kernel_crash =
  Test.make ~name:"crash/protocol-with-crash"
    (stage (fun () ->
         ignore (Swap.Protocol.run ~bob_offline_from:7.5 p ~p_star:2.)))

let kernel_chaos =
  let faults =
    Chainsim.Faults.create ~drop_prob:0.2
      ~delay:(Chainsim.Faults.Shifted_exponential { mean = 0.8; cap = 6. })
      ~reorg_prob:0.1 ()
  in
  Test.make ~name:"chaos/protocol-with-faults"
    (stage (fun () ->
         ignore
           (Swap.Protocol.run ~faults_a:faults ~faults_b:faults
              ~retry:Swap.Agent.default_retry ~delay_t2:2. ~delay_t3:2. p
              ~p_star:2.)))

let kernel_ac3 =
  Test.make ~name:"ac3/witness-protocol-run"
    (stage (fun () -> ignore (Swap.Ac3.run p ~p_star:2.)))

let kernel_waiting =
  Test.make ~name:"waiting/slacked-sr"
    (stage (fun () ->
         let m = Swap.Margins.create p ~delay_t2:2. ~delay_t3:2. in
         ignore (Swap.Margins.success_rate m ~p_star:2.)))

let kernel_stablecoin =
  let ou = Stochastic.Exp_ou.create ~kappa:0.1 ~theta_price:2. ~sigma:0.1 in
  let model = Swap.Generic_model.exp_ou ou in
  Test.make ~name:"stablecoin/generic-sr"
    (stage (fun () -> ignore (Swap.Generic_model.success_rate p model ~p_star:2.)))

let kernel_negotiation =
  Test.make ~name:"negotiation/nash-rate"
    (stage (fun () -> ignore (Swap.Bargaining.nash_rate ~grid:20 p)))

let kernel_security =
  Test.make ~name:"security/griefing+reputation"
    (stage (fun () ->
         ignore (Swap.Griefing.analyse p ~p_star:2.);
         ignore
           (Swap.Repeated.solve p ~p_star:2.
              { Swap.Repeated.trades_per_week = 14.; horizon_weeks = 26. })))

let kernel_presets =
  Test.make ~name:"presets/pair-assessment"
    (stage (fun () ->
         ignore (Swap.Presets.assess Swap.Presets.btc_like Swap.Presets.eth_like)))

let kernel_scorecard =
  Test.make ~name:"scorecard/eq18-claim"
    (stage (fun () -> ignore (Swap.Cutoff.p_t3_low p ~p_star:2.)))

let kernel_attribution =
  Test.make ~name:"attribution/decomposition"
    (stage (fun () -> ignore (Swap.Outcomes.distribution p ~p_star:2.)))

let kernel_ac3wn =
  Test.make ~name:"ac3/witness-network-run"
    (stage (fun () -> ignore (Swap.Ac3wn.run p ~p_star:2.)))

let kernel_uncertainty =
  let b = Swap.Bayesian.belief [ (0.5, 0.1); (0.5, 0.5) ] in
  Test.make ~name:"uncertainty/ex-ante-sr"
    (stage (fun () ->
         ignore (Swap.Bayesian.ex_ante_success_rate p ~belief_on_alice:b ~p_star:2.)))

let kernel_graph_assign =
  let g = Swapgraph.Topology.generate Swapgraph.Topology.Random ~n:64 ~seed:7 in
  Test.make ~name:"swapgraph/assign-timelocks"
    (stage (fun () ->
         let s = Swapgraph.Timelock.assign g ~tau:4. ~eps:1. in
         match Swapgraph.Timelock.validate g s with
         | Ok () -> ()
         | Error e -> failwith e))

let kernel_graph_solve =
  let g = Swapgraph.Topology.cycle 8 in
  let s = Swap.Graphlink.schedule p g in
  Test.make ~name:"swapgraph/solve-cycle-8"
    (stage (fun () ->
         ignore (Swapgraph.Game.analyse g (Swap.Graphlink.payoffs p g s))))

let kernel_graph_sweep =
  let specs =
    List.init 100 (fun i ->
        {
          Swapgraph.Sweep.family = Swapgraph.Topology.Random;
          size = 4 + (i mod 5);
          slack = 0.;
          topo_seed = i;
        })
  in
  Test.make ~name:"swapgraph/sweep-100-topologies"
    (stage (fun () ->
         ignore
           (Swapgraph.Sweep.run ~jobs:1 ~trials:64 ~tau:p.Swap.Params.tau_b
              ~eps:p.Swap.Params.eps_b
              ~policy:(Swap.Graphlink.depth_aware_policy p ~p_star:2.)
              ~payoffs:(Swap.Graphlink.payoffs p) specs)))

(* --- substrate micro-kernels -------------------------------------------- *)

let kernel_sha256 =
  let payload = String.make 1024 'x' in
  Test.make ~name:"substrate/sha256-1KiB"
    (stage (fun () -> ignore (Chainsim.Sha256.digest payload)))

let kernel_erfc =
  Test.make ~name:"substrate/erfc"
    (stage (fun () -> ignore (Numerics.Special.erfc 1.234)))

let kernel_gbm_sample =
  let rng = Numerics.Rng.create ~seed:1 () in
  let gbm = Swap.Params.gbm p in
  Test.make ~name:"substrate/gbm-sample"
    (stage (fun () -> ignore (Stochastic.Gbm.sample rng gbm ~p0:2. ~tau:4.)))

let kernel_quadrature =
  Test.make ~name:"substrate/gauss-legendre-96"
    (stage (fun () ->
         ignore
           (Numerics.Integrate.gauss_legendre ~n:96
              (fun x -> exp (-.x *. x))
              ~a:0. ~b:3.)))

let kernel_chain_cycle =
  Test.make ~name:"substrate/chain-htlc-cycle"
    (stage (fun () ->
         let c =
           Chainsim.Chain.create ~name:"bench" ~token:"T" ~tau:1.
             ~mempool_delay:0.1 ()
         in
         Chainsim.Chain.mint c ~account:"a" ~amount:10.;
         let s = Chainsim.Secret.of_preimage "bench" in
         ignore
           (Chainsim.Chain.submit c ~at:0.
              (Chainsim.Tx.Htlc_lock
                 { contract_id = "h"; sender = "a"; recipient = "b";
                   amount = 4.; hash = s.Chainsim.Secret.hash; expiry = 5. }));
         ignore
           (Chainsim.Chain.submit c ~at:1.5
              (Chainsim.Tx.Htlc_claim
                 { contract_id = "h"; preimage = s.Chainsim.Secret.preimage }));
         ignore (Chainsim.Chain.advance c ~until:10.)))

let all_tests =
  [
    kernel_tab1; kernel_tab3; kernel_fig2; kernel_fig3; kernel_fig4;
    kernel_fig5; kernel_eq29; kernel_fig6; kernel_fig7; kernel_fig8;
    kernel_fig9; kernel_mc; kernel_lattice; kernel_baselines; kernel_jumps;
    kernel_optionality; kernel_selection; kernel_frictions; kernel_backtest;
    kernel_crash; kernel_chaos; kernel_ac3; kernel_waiting; kernel_stablecoin;
    kernel_negotiation; kernel_security; kernel_graph_assign;
    kernel_graph_solve; kernel_graph_sweep; kernel_uncertainty;
    kernel_ac3wn; kernel_attribution; kernel_presets; kernel_scorecard;
    kernel_sha256; kernel_erfc; kernel_gbm_sample; kernel_quadrature;
    kernel_chain_cycle;
  ]

(* The MC kernels in smoke mode: just enough to keep the JSON plumbing
   and the determinism record exercised in CI without a full sweep. *)
let smoke_tests = [ kernel_mc; kernel_baselines; kernel_gbm_sample ]

let run_benchmarks ~quota tests =
  let grouped = Test.make_grouped ~name:"swap" tests in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.to_seq results |> List.of_seq
  |> List.map (fun (name, ols_result) ->
         let estimate =
           match Analyze.OLS.estimates ols_result with
           | Some (x :: _) -> x
           | _ -> nan
         in
         let r2 =
           Option.value ~default:nan (Analyze.OLS.r_square ols_result)
         in
         (name, estimate, r2))
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let print_benchmarks rows =
  Printf.printf "%-38s %16s %8s\n" "benchmark" "time/run" "r^2";
  Printf.printf "%s\n" (String.make 64 '-');
  List.iter
    (fun (name, ns, r2) ->
      let human =
        if Float.is_nan ns then "n/a"
        else if ns >= 1e9 then Printf.sprintf "%.3f s" (ns /. 1e9)
        else if ns >= 1e6 then Printf.sprintf "%.3f ms" (ns /. 1e6)
        else if ns >= 1e3 then Printf.sprintf "%.3f us" (ns /. 1e3)
        else Printf.sprintf "%.1f ns" ns
      in
      Printf.printf "%-38s %16s %8.4f\n" name human r2)
    rows

(* --- machine-readable baseline ------------------------------------------ *)

let time_wall f =
  (* Best of three wall-clock runs (the pool makes CPU time the wrong
     measure for the parallel leg). *)
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to 3 do
    let t0 = Obs.Monotonic.now_ns () in
    let r = f () in
    let dt = Obs.Monotonic.elapsed_s ~since_ns:t0 in
    if dt < !best then best := dt;
    result := Some r
  done;
  (!best, Option.get !result)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_num x = if Float.is_nan x then "null" else Printf.sprintf "%.6g" x

let write_baseline ~file ~rows ~jobs_n ~trials ~wall_1 ~wall_n ~identical
    ~obs_json =
  let oc = open_out file in
  let speedup = if wall_n > 0. then wall_1 /. wall_n else nan in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"schema\": \"htlc-bench/v1\",\n";
  (* Embedded htlc-obs/v1 metrics snapshot (already serialised JSON). *)
  Printf.fprintf oc "  \"obs\": %s,\n" obs_json;
  Printf.fprintf oc "  \"jobs\": { \"sequential\": 1, \"parallel\": %d },\n"
    jobs_n;
  Printf.fprintf oc "  \"kernels\": [\n";
  let n_rows = List.length rows in
  List.iteri
    (fun i (name, ns, r2) ->
      Printf.fprintf oc
        "    { \"name\": \"%s\", \"ns_per_run\": %s, \"r_square\": %s }%s\n"
        (json_escape name) (json_num ns) (json_num r2)
        (if i = n_rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc "  \"mc\": {\n";
  Printf.fprintf oc "    \"trials\": %d,\n" trials;
  Printf.fprintf oc "    \"wall_s_jobs1\": %s,\n" (json_num wall_1);
  Printf.fprintf oc "    \"wall_s_jobsN\": %s,\n" (json_num wall_n);
  Printf.fprintf oc "    \"speedup\": %s,\n" (json_num speedup);
  Printf.fprintf oc "    \"identical_results\": %b\n" identical;
  Printf.fprintf oc "  }\n";
  Printf.fprintf oc "}\n";
  close_out oc

let mc_wall_clock ~trials ~jobs_n =
  let policy = Swap.Agent.rational p ~p_star:2. in
  let wall_1, r1 =
    time_wall (fun () ->
        Swap.Montecarlo.run ~trials ~jobs:1 p ~p_star:2. ~policy)
  in
  let wall_n, rn =
    time_wall (fun () ->
        Swap.Montecarlo.run ~trials ~jobs:jobs_n p ~p_star:2. ~policy)
  in
  (wall_1, wall_n, r1 = rn)

(* --- serve load generator ----------------------------------------------- *)

(* `bench serve`: drive the reactor server head-to-head over both wire
   codecs — newline-delimited htlc-serve/v1 JSON and length-prefixed
   htlc-serve/b1 binary — with concurrent pipelining client domains,
   and byte-compare every response body against a direct-call
   reference: an identically configured zero-worker engine answering
   the same typed requests via [Engine.handle_decoded].  Any byte
   difference is a mismatch; a missing response is a drop.  Both legs
   are reported in the htlc-bench JSON under "codecs". *)

(* Clients send [pipeline_window] requests per write and then read the
   window's responses back — the reactor's pipelining path, and the
   only way a 1-core box clears the syscall-per-request ceiling. *)
let pipeline_window = 64

(* A deterministic hot/cold corpus: [distinct] hot questions (all four
   request kinds, parameter values derived from the index) carry ~90%
   of traffic; the remaining ~10% are one-off cold quote lookups keyed
   by the request index, so the cache sees misses and eviction churn
   mid-run, not just a warm loop.  Index mixing is a fixed odd
   multiplier (Knuth), not [Random] — the corpus is reproducible. *)
let serve_corpus ~n ~distinct =
  let hot i =
    let open Serve.Request in
    let f = float_of_int (i / 4) in
    match i mod 4 with
    | 0 -> Cutoffs { params = p; p_star = 1.8 +. (0.02 *. f) }
    | 1 ->
      Success_rate
        {
          params = p;
          p_star = 1.8 +. (0.02 *. f);
          q = (if i mod 8 = 1 then 0.25 else 0.);
        }
    | 2 -> Quote { mu = 0.; sigma = 0.05 +. (0.005 *. f); spot = 2. }
    | _ ->
      Sweep
        {
          params = p;
          q = 0.;
          spec = { lo = 1.6 +. (0.01 *. f); hi = 2.4; n = 9 };
        }
  in
  Array.init n (fun j ->
      let u = j * 0x9E3779B1 land 0x3FFFFFFF in
      let body =
        if u mod 10 = 0 then
          (* Cold: a spot nobody asks about twice (table lookup, so the
             reference double-compute stays cheap). *)
          Serve.Request.Quote
            { mu = 0.; sigma = 0.08; spot = 2. +. (1e-6 *. float_of_int j) }
        else hot (u mod distinct)
      in
      { Serve.Request.id = Some (Printf.sprintf "q%d" j); body })

type client_result = {
  latencies_ms : float array;  (** One sample per answered request. *)
  answered : int;
  mismatched : int;
}

(* Latency per pipelined request is measured from its window's send
   instant — what a batching caller actually waits. *)
let run_client_json ~path ~(lines : string array) ~(expected : string array)
    ~lo ~hi =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  let ic = Unix.in_channel_of_descr fd
  and oc = Unix.out_channel_of_descr fd in
  let latencies_ms = Array.make (hi - lo) nan in
  let answered = ref 0 and mismatched = ref 0 in
  (try
     let w0 = ref lo in
     while !w0 < hi do
       let w1 = min hi (!w0 + pipeline_window) in
       let t0 = Obs.Monotonic.now_ns () in
       for j = !w0 to w1 - 1 do
         output_string oc lines.(j);
         output_char oc '\n'
       done;
       flush oc;
       for j = !w0 to w1 - 1 do
         let resp = input_line ic in
         latencies_ms.(!answered) <-
           Obs.Monotonic.elapsed_s ~since_ns:t0 *. 1e3;
         incr answered;
         if not (String.equal resp expected.(j)) then incr mismatched
       done;
       w0 := w1
     done
   with End_of_file | Sys_error _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  {
    latencies_ms = Array.sub latencies_ms 0 !answered;
    answered = !answered;
    mismatched = !mismatched;
  }

(* The binary leg: same windows, frames pre-encoded once by the driver.
   A b1 response frame carries exactly the JSON response line's bytes,
   so the comparison target is the same [expected] array. *)
let run_client_binary ~path ~(frames : string array)
    ~(expected : string array) ~lo ~hi =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  let ic = Unix.in_channel_of_descr fd
  and oc = Unix.out_channel_of_descr fd in
  let latencies_ms = Array.make (hi - lo) nan in
  let answered = ref 0 and mismatched = ref 0 in
  (try
     output_string oc Serve.Binary.magic;
     let w0 = ref lo in
     while !w0 < hi do
       let w1 = min hi (!w0 + pipeline_window) in
       let t0 = Obs.Monotonic.now_ns () in
       for j = !w0 to w1 - 1 do
         output_string oc frames.(j)
       done;
       flush oc;
       for j = !w0 to w1 - 1 do
         match Serve.Binary.input_frame ic with
         | None -> raise End_of_file
         | Some body ->
           latencies_ms.(!answered) <-
             Obs.Monotonic.elapsed_s ~since_ns:t0 *. 1e3;
           incr answered;
           if not (String.equal body expected.(j)) then incr mismatched
       done;
       w0 := w1
     done
   with End_of_file | Sys_error _ | Failure _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  {
    latencies_ms = Array.sub latencies_ms 0 !answered;
    answered = !answered;
    mismatched = !mismatched;
  }

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then nan
  else sorted.(min (n - 1) (int_of_float (q *. float_of_int (n - 1))))

(* --- chaos phase ---------------------------------------------------------- *)

(* `bench serve --chaos`: re-run the load through fault-injected
   transports (Serve.Chaos wrapping Serve.Client dialers) against a
   supervised engine that additionally takes one injected worker crash
   mid-run.  Every response that does arrive must still be
   byte-identical to the zero-worker reference; the gate is the
   "chaos" JSON section validate_serve pins in CI. *)

type chaos_summary = {
  c_seed : int;
  c_requests : int;
  c_succeeded : int;
  c_retries : int;
  c_reconnects : int;
  c_failures : int;
  c_mismatches : int;
  c_stranded : int;
  c_worker_restarts : int;
  c_internal_errors : int;
  c_connection_errors : int;
  c_ops : int;
  c_wall_s : float;
  c_budget_s : float;
}

(* The hang gate: a watchdog domain that kills the whole bench (exit 3)
   if the chaos phase outlives its wall budget — a stranded ticket or a
   deadlocked shutdown can then never masquerade as a slow pass. *)
let with_watchdog ~budget_s f =
  let finished = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        let t0 = Obs.Monotonic.now_ns () in
        let rec watch () =
          if Atomic.get finished then ()
          else if Obs.Monotonic.elapsed_s ~since_ns:t0 > budget_s then begin
            Printf.eprintf
              "bench serve --chaos: wall budget %.1fs exceeded -- aborting \
               (stranded ticket or hung shutdown?)\n\
               %!"
              budget_s;
            exit 3
          end
          else begin
            Unix.sleepf 0.05;
            watch ()
          end
        in
        watch ())
  in
  let r = f () in
  Atomic.set finished true;
  Domain.join d;
  r

let run_chaos_client ~client ~requests ~(expected : string array) ~lo ~hi =
  let succeeded = ref 0 and mismatched = ref 0 and failed = ref 0 in
  for j = lo to hi - 1 do
    match Serve.Client.call client requests.(j) with
    | Ok resp ->
      incr succeeded;
      if not (String.equal resp expected.(j)) then incr mismatched
    | Error _ -> incr failed
  done;
  Serve.Client.close client;
  (!succeeded, !mismatched, !failed, Serve.Client.stats client)

(* Force at least one real worker death/restart cycle: inject the
   poisoned task (retrying past admission-control sheds), check its
   ticket resolves with the structured internal_error, then wait for
   the supervisor's restart to land in the stats. *)
let force_worker_crash engine =
  let rec inject tries =
    if tries = 0 then failwith "bench serve --chaos: could not inject crash"
    else
      match Serve.Engine.inject_crash engine with
      | `Ticket t -> Serve.Engine.await t
      | `Done _ ->
        Unix.sleepf 0.01;
        inject (tries - 1)
  in
  let resp = inject 100 in
  let has_internal_error =
    let marker = "\"internal_error\"" in
    let n = String.length resp and m = String.length marker in
    let rec find i =
      i + m <= n && (String.sub resp i m = marker || find (i + 1))
    in
    find 0
  in
  if not has_internal_error then
    failwith ("bench serve --chaos: crash ticket resolved oddly: " ^ resp);
  let t0 = Obs.Monotonic.now_ns () in
  while
    (Serve.Engine.stats engine).Serve.Engine.worker_restarts < 1
    && Obs.Monotonic.elapsed_s ~since_ns:t0 < 2.
  do
    Unix.sleepf 0.005
  done

let chaos_phase ~seed ~budget_s ~corpus ~expected ~clients ~workers
    ~make_engine =
  let n = Array.length corpus in
  Printf.printf
    "bench serve chaos: seed %d, %d requests, %d clients, %d workers, \
     budget %.1fs\n\
     %!"
    seed n clients workers budget_s;
  let conn_errors_before =
    Obs.Metrics.counter_value (Obs.Metrics.counter "serve.connection_errors")
  and ops_before =
    Obs.Metrics.counter_value (Obs.Metrics.counter "serve.chaos.ops")
  in
  with_watchdog ~budget_s (fun () ->
      let engine = make_engine ~workers:(max 1 workers) in
      let path =
        Printf.sprintf "/tmp/htlc-serve-chaos-%d.sock" (Unix.getpid ())
      in
      let server = Serve.Server.listen engine ~path () in
      let base_plan = Serve.Chaos.plan ~seed () in
      let bounds c = (c * n / clients, (c + 1) * n / clients) in
      let t0 = Obs.Monotonic.now_ns () in
      let domains =
        Array.init clients (fun c ->
            Domain.spawn (fun () ->
                let lo, hi = bounds c in
                let plan = Serve.Chaos.for_stream base_plan ~stream:c in
                let dialer =
                  Serve.Chaos.wrap plan (Serve.Client.socket_dialer ~path)
                in
                let client =
                  Serve.Client.create ~dialer ~max_attempts:8
                    ~base_backoff_s:2e-4 ~max_backoff_s:0.02
                    ~seed:(seed lxor ((c + 1) * 0x9E3779B9)) ()
                in
                run_chaos_client ~client ~requests:corpus ~expected ~lo ~hi))
      in
      force_worker_crash engine;
      let results = Array.map Domain.join domains in
      let wall_s = Obs.Monotonic.elapsed_s ~since_ns:t0 in
      (* Every Client.call returned, so any task still queued would be
         a stranded ticket — the invariant the gate pins to zero. *)
      let stranded = Serve.Engine.queue_depth engine in
      Serve.Server.shutdown server;
      Serve.Engine.shutdown ~drain:true engine;
      let sum f = Array.fold_left (fun a r -> a + f r) 0 results in
      let s = Serve.Engine.stats engine in
      {
        c_seed = seed;
        c_requests = n;
        c_succeeded = sum (fun (ok, _, _, _) -> ok);
        c_retries =
          sum (fun (_, _, _, cs) -> cs.Serve.Client.retries);
        c_reconnects =
          sum (fun (_, _, _, cs) -> cs.Serve.Client.reconnects);
        c_failures = sum (fun (_, _, fail, _) -> fail);
        c_mismatches = sum (fun (_, mis, _, _) -> mis);
        c_stranded = stranded;
        c_worker_restarts = s.Serve.Engine.worker_restarts;
        c_internal_errors = s.Serve.Engine.internal_errors;
        c_connection_errors =
          Obs.Metrics.counter_value
            (Obs.Metrics.counter "serve.connection_errors")
          - conn_errors_before;
        c_ops =
          Obs.Metrics.counter_value (Obs.Metrics.counter "serve.chaos.ops")
          - ops_before;
        c_wall_s = wall_s;
        c_budget_s = budget_s;
      })

(* One measured leg of the head-to-head: a fresh engine + reactor
   server driven entirely over a single wire codec. *)
type leg = {
  g_codec : string;
  g_throughput_rps : float;
  g_p50_ms : float;
  g_p99_ms : float;
  g_cache_hit_rate : float;
  g_shed : int;
  g_deadline_exceeded : int;
  g_mismatches : int;
  g_dropped : int;
  g_identical : bool;
}

let write_leg oc ~last l =
  Printf.fprintf oc "      \"%s\": {\n" l.g_codec;
  Printf.fprintf oc "        \"throughput_rps\": %s,\n"
    (json_num l.g_throughput_rps);
  Printf.fprintf oc "        \"p50_ms\": %s,\n" (json_num l.g_p50_ms);
  Printf.fprintf oc "        \"p99_ms\": %s,\n" (json_num l.g_p99_ms);
  Printf.fprintf oc "        \"cache_hit_rate\": %s,\n"
    (json_num l.g_cache_hit_rate);
  Printf.fprintf oc "        \"mismatches\": %d,\n" l.g_mismatches;
  Printf.fprintf oc "        \"dropped\": %d,\n" l.g_dropped;
  Printf.fprintf oc "        \"identical_to_direct\": %b\n" l.g_identical;
  Printf.fprintf oc "      }%s\n" (if last then "" else ",")

(* Telemetry-overhead head-to-head: the JSON leg rerun with the stage
   clocks compiled out (Serve.Telemetry disabled), against the
   telemetry-on measurement of the same corpus. *)
type telemetry_overhead = {
  t_sample_every : int;
  t_enabled_rps : float;
  t_disabled_rps : float;
  t_overhead_frac : float; (* (disabled - enabled) / disabled *)
}

let write_stage oc ~last (s : Serve.Telemetry.stage_stat) =
  let us x = json_num (x *. 1e6) in
  Printf.fprintf oc "      \"%s\": {\n" s.st_stage;
  Printf.fprintf oc "        \"count\": %d,\n" s.st_count;
  Printf.fprintf oc "        \"mean_us\": %s,\n" (us s.st_mean_s);
  Printf.fprintf oc "        \"window\": %d,\n" s.st_window;
  Printf.fprintf oc "        \"p50_us\": %s,\n" (us s.st_p50_s);
  Printf.fprintf oc "        \"p90_us\": %s,\n" (us s.st_p90_s);
  Printf.fprintf oc "        \"p99_us\": %s,\n" (us s.st_p99_s);
  Printf.fprintf oc "        \"p999_us\": %s\n" (us s.st_p999_s);
  Printf.fprintf oc "      }%s\n" (if last then "" else ",")

(* Top-level serve fields keep the historical shape (mirroring the
   JSON-codec leg, the wire format every prior baseline measured);
   "codecs" carries the per-codec breakdown, "stages" the telemetry
   stage-clock quantiles, "telemetry" the overhead head-to-head. *)
let write_serve_baseline ?chaos ~file ~requests ~clients ~workers ~shards
    ~json_leg ~binary_leg ~stages ~telemetry () =
  let identical = json_leg.g_identical && binary_leg.g_identical in
  let oc = open_out file in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"schema\": \"htlc-bench/v1\",\n";
  Printf.fprintf oc "  \"serve\": {\n";
  Printf.fprintf oc "    \"requests\": %d,\n" requests;
  Printf.fprintf oc "    \"clients\": %d,\n" clients;
  Printf.fprintf oc "    \"workers\": %d,\n" workers;
  Printf.fprintf oc "    \"reactor_shards\": %d,\n" shards;
  Printf.fprintf oc "    \"pipeline_window\": %d,\n" pipeline_window;
  Printf.fprintf oc "    \"throughput_rps\": %s,\n"
    (json_num json_leg.g_throughput_rps);
  Printf.fprintf oc "    \"p50_ms\": %s,\n" (json_num json_leg.g_p50_ms);
  Printf.fprintf oc "    \"p99_ms\": %s,\n" (json_num json_leg.g_p99_ms);
  Printf.fprintf oc "    \"cache_hit_rate\": %s,\n"
    (json_num json_leg.g_cache_hit_rate);
  Printf.fprintf oc "    \"shed\": %d,\n"
    (json_leg.g_shed + binary_leg.g_shed);
  Printf.fprintf oc "    \"deadline_exceeded\": %d,\n"
    (json_leg.g_deadline_exceeded + binary_leg.g_deadline_exceeded);
  Printf.fprintf oc "    \"mismatches\": %d,\n"
    (json_leg.g_mismatches + binary_leg.g_mismatches);
  Printf.fprintf oc "    \"dropped\": %d,\n"
    (json_leg.g_dropped + binary_leg.g_dropped);
  Printf.fprintf oc "    \"identical_to_direct\": %b,\n" identical;
  Printf.fprintf oc "    \"codecs\": {\n";
  write_leg oc ~last:false json_leg;
  write_leg oc ~last:true binary_leg;
  Printf.fprintf oc "    },\n";
  Printf.fprintf oc "    \"stages\": {\n";
  let rec write_stages = function
    | [] -> ()
    | [ s ] -> write_stage oc ~last:true s
    | s :: rest ->
      write_stage oc ~last:false s;
      write_stages rest
  in
  write_stages stages;
  Printf.fprintf oc "    },\n";
  Printf.fprintf oc "    \"telemetry\": {\n";
  Printf.fprintf oc "      \"sample_every\": %d,\n" telemetry.t_sample_every;
  Printf.fprintf oc "      \"enabled_rps\": %s,\n"
    (json_num telemetry.t_enabled_rps);
  Printf.fprintf oc "      \"disabled_rps\": %s,\n"
    (json_num telemetry.t_disabled_rps);
  Printf.fprintf oc "      \"overhead_frac\": %s\n"
    (json_num telemetry.t_overhead_frac);
  Printf.fprintf oc "    }\n";
  Printf.fprintf oc "  }%s\n" (if chaos = None then "" else ",");
  Option.iter
    (fun c ->
      let success_rate =
        if c.c_requests = 0 then 0.
        else float_of_int c.c_succeeded /. float_of_int c.c_requests
      in
      Printf.fprintf oc "  \"chaos\": {\n";
      Printf.fprintf oc "    \"seed\": %d,\n" c.c_seed;
      Printf.fprintf oc "    \"requests\": %d,\n" c.c_requests;
      Printf.fprintf oc "    \"succeeded\": %d,\n" c.c_succeeded;
      Printf.fprintf oc "    \"success_rate\": %s,\n" (json_num success_rate);
      Printf.fprintf oc "    \"retries\": %d,\n" c.c_retries;
      Printf.fprintf oc "    \"reconnects\": %d,\n" c.c_reconnects;
      Printf.fprintf oc "    \"failures\": %d,\n" c.c_failures;
      Printf.fprintf oc "    \"mismatches\": %d,\n" c.c_mismatches;
      Printf.fprintf oc "    \"stranded\": %d,\n" c.c_stranded;
      Printf.fprintf oc "    \"worker_restarts\": %d,\n" c.c_worker_restarts;
      Printf.fprintf oc "    \"internal_errors\": %d,\n" c.c_internal_errors;
      Printf.fprintf oc "    \"connection_errors\": %d,\n"
        c.c_connection_errors;
      Printf.fprintf oc "    \"chaos_ops\": %d,\n" c.c_ops;
      Printf.fprintf oc "    \"wall_s\": %s,\n" (json_num c.c_wall_s);
      Printf.fprintf oc "    \"budget_s\": %s\n" (json_num c.c_budget_s);
      Printf.fprintf oc "  }\n")
    chaos;
  Printf.fprintf oc "}\n";
  close_out oc

(* Run one codec leg on a {e fresh} engine (cold cache — a fair
   head-to-head) sharing the prebuilt quote table. *)
let run_leg ?label ~codec ~make_engine ~workers ~shards ~path
    ~(payloads : string array) ~(expected : string array) ~clients () =
  let label = Option.value label ~default:codec in
  let n = Array.length payloads in
  let engine = make_engine ~workers in
  let server = Serve.Server.listen engine ~path ?shards () in
  let bounds c =
    (* Contiguous per-client slices covering all n requests. *)
    (c * n / clients, (c + 1) * n / clients)
  in
  let t0 = Obs.Monotonic.now_ns () in
  let domains =
    Array.init clients (fun c ->
        Domain.spawn (fun () ->
            let lo, hi = bounds c in
            match codec with
            | "binary" ->
              run_client_binary ~path ~frames:payloads ~expected ~lo ~hi
            | _ -> run_client_json ~path ~lines:payloads ~expected ~lo ~hi))
  in
  let results = Array.map Domain.join domains in
  let wall_s = Obs.Monotonic.elapsed_s ~since_ns:t0 in
  let reactor_shards = Serve.Server.reactor_shards server in
  Serve.Server.shutdown server;
  Serve.Engine.stop engine;
  let answered = Array.fold_left (fun a r -> a + r.answered) 0 results in
  let mismatches = Array.fold_left (fun a r -> a + r.mismatched) 0 results in
  let dropped = n - answered in
  let all_lat =
    Array.concat (Array.to_list (Array.map (fun r -> r.latencies_ms) results))
  in
  Array.sort compare all_lat;
  let s = Serve.Engine.stats engine in
  let cache_hit_rate =
    let total =
      s.Serve.Engine.cache.Serve.Cache.hits + s.cache.Serve.Cache.misses
    in
    if total = 0 then 0.
    else float_of_int s.cache.Serve.Cache.hits /. float_of_int total
  in
  let leg =
    {
      g_codec = codec;
      g_throughput_rps =
        (if wall_s > 0. then float_of_int answered /. wall_s else nan);
      g_p50_ms = percentile all_lat 0.50;
      g_p99_ms = percentile all_lat 0.99;
      g_cache_hit_rate = cache_hit_rate;
      g_shed = s.Serve.Engine.shed;
      g_deadline_exceeded = s.Serve.Engine.deadline_exceeded;
      g_mismatches = mismatches;
      g_dropped = dropped;
      g_identical = mismatches = 0 && dropped = 0;
    }
  in
  Printf.printf
    "%-6s served %d/%d in %.3fs: %.0f req/s, p50 %.3fms, p99 %.3fms\n\
     %-6s cache hit rate %.3f (%d hits / %d misses / %d evictions), \
     mismatches %d, dropped %d -> %s\n\
     %!"
    label answered n wall_s leg.g_throughput_rps leg.g_p50_ms leg.g_p99_ms
    label cache_hit_rate s.cache.Serve.Cache.hits s.cache.Serve.Cache.misses
    s.cache.Serve.Cache.evictions mismatches dropped
    (if leg.g_identical then "byte-identical to direct calls"
     else "NOT IDENTICAL");
  (leg, reactor_shards)

let serve_bench ~json ~requests:n ~clients ~workers ~shards ~smoke ~chaos
    ~budget_s =
  (* A reduced quote grid keeps the warm build fast; every engine
     (both legs + the reference) shares one prebuilt table so
     responses are byte-comparable and the build cost is paid once. *)
  let mus =
    Numerics.Grid.linspace ~lo:(-0.01) ~hi:0.01 ~n:(if smoke then 3 else 5)
  and sigmas =
    Numerics.Grid.linspace ~lo:0.02 ~hi:0.16 ~n:(if smoke then 3 else 4)
  in
  let table = Market.Quote_table.build ~mus ~sigmas p in
  let make_engine ~workers =
    Serve.Engine.create ~workers ~table ~base:p ()
  in
  Printf.printf
    "bench serve: %d requests, %d clients, %d workers, window %d\n%!" n
    clients workers pipeline_window;
  let reference = make_engine ~workers:0 in
  let distinct = min 64 (max 8 (n / 8)) in
  let corpus = serve_corpus ~n ~distinct in
  let lines = Array.map Serve.Request.encode corpus in
  let frames = Array.map Serve.Binary.encode_request corpus in
  let expected = Array.map (Serve.Engine.handle_decoded reference) corpus in
  let path = Printf.sprintf "/tmp/htlc-serve-%d.sock" (Unix.getpid ()) in
  (* Measured legs start from empty reservoirs so the recorded stage
     breakdown covers exactly this corpus (telemetry is on by default;
     the default 1/256 sampler stays in effect — what production
     overhead looks like). *)
  Serve.Telemetry.reset ();
  let json_leg, reactor_shards =
    run_leg ~codec:"json" ~make_engine ~workers ~shards ~path ~payloads:lines
      ~expected ~clients ()
  in
  let binary_leg, _ =
    run_leg ~codec:"binary" ~make_engine ~workers ~shards ~path
      ~payloads:frames ~expected ~clients ()
  in
  if json_leg.g_throughput_rps > 0. then
    Printf.printf "binary/json throughput: %.2fx\n%!"
      (binary_leg.g_throughput_rps /. json_leg.g_throughput_rps);
  (* Snapshot the stage quantiles before the telemetry-off overhead leg
     (which records nothing) and the chaos phase (which would fold its
     injected-fault latencies into the breakdown). *)
  let stages = Serve.Telemetry.stage_stats () in
  (* Overhead head-to-head: warm reruns of the JSON corpus.  The codec
     legs above already paid the cold-start costs, but on a shared
     single core the leg-to-leg scheduler/GC drift still swamps one
     comparison, so each mode runs several times interleaved and the
     record keeps per-mode medians.  The within-pair order alternates:
     a fixed off-then-on order turns any monotonic machine drift into a
     systematic bias against the second leg (running the identical
     binary in both roles still "measured" ~5% overhead), and
     alternating cancels it. *)
  let rerun ~label ~on =
    Serve.Telemetry.set_enabled on;
    let g0 = Gc.quick_stat () in
    let leg, _ =
      run_leg ~label ~codec:"json" ~make_engine ~workers ~shards ~path
        ~payloads:lines ~expected ~clients ()
    in
    let g1 = Gc.quick_stat () in
    Printf.printf "  %s: %d minor GCs, %.1f Mw minor, %.1f Mw promoted\n%!"
      label
      (g1.Gc.minor_collections - g0.Gc.minor_collections)
      ((g1.Gc.minor_words -. g0.Gc.minor_words) /. 1e6)
      ((g1.Gc.promoted_words -. g0.Gc.promoted_words) /. 1e6);
    Serve.Telemetry.set_enabled true;
    leg.g_throughput_rps
  in
  let telemetry =
    let runs = 5 in
    let offs = Array.make runs 0.
    and ons = Array.make runs 0.
    and ratios = Array.make runs 0. in
    for i = 0 to runs - 1 do
      if i land 1 = 0 then begin
        offs.(i) <- rerun ~label:"tel-off" ~on:false;
        ons.(i) <- rerun ~label:"tel-on" ~on:true
      end
      else begin
        ons.(i) <- rerun ~label:"tel-on" ~on:true;
        offs.(i) <- rerun ~label:"tel-off" ~on:false
      end;
      ratios.(i) <- (if offs.(i) > 0. then ons.(i) /. offs.(i) else nan)
    done;
    let median a =
      Array.sort compare a;
      a.(Array.length a / 2)
    in
    let enabled = median ons
    and disabled = median offs in
    (* Overhead from the median of within-pair ratios, not the ratio of
       medians: the two legs of a pair run back-to-back, so machine
       drift mostly cancels inside each ratio, while legs minutes apart
       can differ by more than the effect being measured. *)
    let overhead_frac = 1. -. median ratios in
    Printf.printf
      "telemetry overhead: %.0f req/s on vs %.0f req/s off (%+.1f%%)\n%!"
      enabled disabled (100. *. overhead_frac);
    {
      t_sample_every = Serve.Telemetry.sample_every ();
      t_enabled_rps = enabled;
      t_disabled_rps = disabled;
      t_overhead_frac = overhead_frac;
    }
  in
  let identical = json_leg.g_identical && binary_leg.g_identical in
  let chaos_summary =
    Option.map
      (fun seed ->
        (* Chaos fates sleep on a per-op schedule, so the phase scales
           linearly with corpus size — cap it: the gate exercises fault
           recovery, not throughput. *)
        let c_n = min n 10_000 in
        let c =
          chaos_phase ~seed ~budget_s ~corpus:(Array.sub lines 0 c_n)
            ~expected:(Array.sub expected 0 c_n) ~clients ~workers
            ~make_engine
        in
        Printf.printf
          "chaos: %d/%d succeeded (%.4f), %d retries, %d reconnects, %d \
           failures, %d mismatches\n\
           chaos: %d worker restarts, %d internal errors, %d connection \
           errors, %d stranded, %.3fs wall (budget %.1fs)\n"
          c.c_succeeded c.c_requests
          (float_of_int c.c_succeeded /. float_of_int (max 1 c.c_requests))
          c.c_retries c.c_reconnects c.c_failures c.c_mismatches
          c.c_worker_restarts c.c_internal_errors c.c_connection_errors
          c.c_stranded c.c_wall_s c.c_budget_s;
        c)
      chaos
  in
  Option.iter
    (fun file ->
      write_serve_baseline ?chaos:chaos_summary ~file ~requests:n ~clients
        ~workers ~shards:reactor_shards ~json_leg ~binary_leg ~stages
        ~telemetry ();
      Printf.printf "wrote %s\n" file)
    json;
  if not identical then exit 1;
  match chaos_summary with
  | Some c
    when c.c_mismatches > 0 || c.c_stranded > 0 || c.c_worker_restarts < 1
         || float_of_int c.c_succeeded
            < 0.99 *. float_of_int c.c_requests ->
    (* Preserve the flight recorder for the post-mortem: the last
       requests completed before the gate tripped, with per-stage
       clocks. *)
    let dump = "serve_chaos_recorder.jsonl" in
    (try
       let oc = open_out dump in
       Serve.Telemetry.write_recorder ~reason:"chaos-gate-failure" oc;
       close_out oc;
       Printf.eprintf "bench serve: flight recorder dumped to %s\n" dump
     with Sys_error _ -> ());
    prerr_endline "bench serve: chaos gate failed";
    exit 1
  | _ -> ()

(* --- entry point -------------------------------------------------------- *)

type opts = {
  json : string option;
  mc_trials : int;
  jobs : int option;
  smoke : bool;
}

let usage () =
  prerr_endline
    "usage: bench [--json FILE] [--mc-trials N] [--jobs N] [--smoke]\n\
    \       bench serve [--json FILE] [--requests N] [--clients N] \
     [--workers N]\n\
    \                   [--shards N] [--chaos] [--seed N] [--budget-s X] \
     [--smoke]";
  exit 2

let int_arg name v =
  match int_of_string_opt v with
  | Some n when n >= 1 -> n
  | _ ->
    Printf.eprintf "bench: %s expects a positive integer, got %S\n" name v;
    exit 2

let float_arg name v =
  match float_of_string_opt v with
  | Some x when x > 0. -> x
  | _ ->
    Printf.eprintf "bench: %s expects a positive number, got %S\n" name v;
    exit 2

let parse_serve_args args =
  let json = ref None
  and requests = ref 100_000
  and clients = ref 4
  and workers = ref 2
  and shards = ref None
  and chaos = ref false
  and seed = ref 42
  and budget_s = ref None
  and smoke = ref false in
  let rec go = function
    | [] -> ()
    | "--json" :: file :: rest ->
      json := Some file;
      go rest
    | "--requests" :: v :: rest ->
      requests := int_arg "--requests" v;
      go rest
    | "--clients" :: v :: rest ->
      clients := int_arg "--clients" v;
      go rest
    | "--workers" :: v :: rest ->
      workers := int_arg "--workers" v;
      go rest
    | "--shards" :: v :: rest ->
      shards := Some (int_arg "--shards" v);
      go rest
    | "--chaos" :: rest ->
      chaos := true;
      go rest
    | "--seed" :: v :: rest ->
      seed := int_arg "--seed" v;
      go rest
    | "--budget-s" :: v :: rest ->
      budget_s := Some (float_arg "--budget-s" v);
      go rest
    | "--smoke" :: rest ->
      smoke := true;
      go rest
    | _ -> usage ()
  in
  go args;
  if !smoke && !requests = 100_000 then requests := 400;
  let budget_s =
    match !budget_s with Some b -> b | None -> if !smoke then 30. else 120.
  in
  serve_bench ~json:!json ~requests:!requests ~clients:!clients
    ~workers:!workers ~shards:!shards ~smoke:!smoke
    ~chaos:(if !chaos then Some !seed else None)
    ~budget_s

let parse_args () =
  let json = ref None
  and mc_trials = ref 20_000
  and jobs = ref None
  and smoke = ref false in
  let rec go = function
    | [] -> ()
    | "--json" :: file :: rest ->
      json := Some file;
      go rest
    | "--mc-trials" :: v :: rest ->
      mc_trials := int_arg "--mc-trials" v;
      go rest
    | "--jobs" :: v :: rest ->
      jobs := Some (int_arg "--jobs" v);
      go rest
    | "--smoke" :: rest ->
      smoke := true;
      go rest
    | _ -> usage ()
  in
  go (List.tl (Array.to_list Sys.argv));
  { json = !json; mc_trials = !mc_trials; jobs = !jobs; smoke = !smoke }

let () =
  match Array.to_list Sys.argv with
  | _ :: "serve" :: rest -> parse_serve_args rest
  | _ ->
  let o = parse_args () in
  Option.iter Numerics.Pool.set_jobs o.jobs;
  match o.json with
  | None ->
    print_endline
      "================================================================";
    print_endline " Reproduction output: every table and figure of the paper";
    print_endline
      "================================================================\n";
    print_string (Experiments.Registry.run_all ());
    print_endline
      "\n================================================================";
    print_endline
      " Bechamel timings (one kernel per table/figure + substrates)";
    print_endline
      "================================================================\n";
    print_benchmarks (run_benchmarks ~quota:0.3 all_tests)
  | Some file ->
    let tests = if o.smoke then smoke_tests else all_tests in
    let quota = if o.smoke then 0.02 else 0.3 in
    (* Kernel rows are sequential per-run costs: pin the pool to one
       domain while timing so a --jobs flag (which the determinism
       record below applies explicitly) cannot thrash the timed runs
       on a small host — otherwise a smoke run at --jobs 2 on one core
       measures scheduler contention, not the kernel, and trips the
       budget gate against a jobs=1 baseline. *)
    Numerics.Pool.set_jobs 1;
    let rows = run_benchmarks ~quota tests in
    print_benchmarks rows;
    (* A junk OLS fit means the ns/run column is noise, not a
       measurement — say so instead of recording it silently. *)
    List.iter
      (fun (name, _, r2) ->
        if Float.is_nan r2 || r2 < 0.5 then
          Printf.eprintf
            "bench: WARNING: %s: poor timing fit (r_square = %s); \
             ns_per_run is unreliable\n\
             %!"
            name
            (if Float.is_nan r2 then "nan" else Printf.sprintf "%.3f" r2))
      rows;
    let jobs_n =
      match o.jobs with Some j -> j | None -> Numerics.Pool.recommended ()
    in
    let wall_1, wall_n, identical =
      mc_wall_clock ~trials:o.mc_trials ~jobs_n
    in
    (* A multicore baseline recorded with jobs=1 (or with a parallel run
       slower than sequential) is not a baseline — refuse to write one.
       Smoke runs pass tiny trial counts where spawn overhead dominates,
       so the assertion only bites on full recordings. *)
    if jobs_n = 1 then
      Printf.eprintf
        "bench: note: single core available (jobs=1); parallel speedup \
         cannot be demonstrated on this host\n\
         %!"
    else if (not o.smoke) && wall_n >= wall_1 then begin
      Printf.eprintf
        "bench: FAIL: parallel Monte-Carlo (jobs=%d, %.4fs) did not beat \
         sequential (%.4fs) -- refusing to record a bogus multicore \
         baseline\n\
         %!"
        jobs_n wall_n wall_1;
      exit 1
    end;
    write_baseline ~file ~rows ~jobs_n ~trials:o.mc_trials ~wall_1 ~wall_n
      ~identical
      ~obs_json:(Obs.Metrics.to_json (Obs.Metrics.snapshot ()));
    Printf.printf
      "\nmc/%d-trials wall clock: jobs=1 %.4fs, jobs=%d %.4fs (%.2fx), \
       results %s\n"
      o.mc_trials wall_1 jobs_n wall_n
      (if wall_n > 0. then wall_1 /. wall_n else nan)
      (if identical then "bit-identical" else "DIFFERENT");
    Printf.printf "wrote %s\n" file
