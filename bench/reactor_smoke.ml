(* Reactor socket smoke: the CI proof that the event-loop transport
   serves both wire codecs correctly end-to-end.

   Drives the fixed serve_requests.txt script through a real
   Unix-domain-socket reactor server twice on one engine:

   - JSON leg: all lines written in a single burst on one connection
     (exercising request pipelining and response batching), responses
     recorded one per line — the same transcript pipe-mode serve-smoke
     pins, now produced by the reactor.
   - Binary leg: every line the request codec can decode is re-encoded
     as an htlc-serve/b1 frame and sent on a fresh connection after the
     magic, again in one burst.  Response frame bodies are recorded one
     per line; validate_serve --reactor pins them byte-identical to the
     JSON leg's rows (health excepted — it reports live cache state,
     which the JSON leg's traffic has advanced).

   Usage: reactor_smoke REQUESTS OUT_JSON OUT_BIN *)

let read_lines file =
  In_channel.with_open_text file (fun ic ->
      let rec go acc =
        match In_channel.input_line ic with
        | Some l -> go (l :: acc)
        | None -> List.rev acc
      in
      go [])

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let () =
  let requests_file, out_json, out_bin =
    match Sys.argv with
    | [| _; a; b; c |] -> (a, b, c)
    | _ ->
      prerr_endline "usage: reactor_smoke REQUESTS OUT_JSON OUT_BIN";
      exit 2
  in
  let lines =
    List.filter (fun l -> String.trim l <> "") (read_lines requests_file)
  in
  let mus = Numerics.Grid.linspace ~lo:(-0.01) ~hi:0.01 ~n:3
  and sigmas = Numerics.Grid.linspace ~lo:0.02 ~hi:0.16 ~n:3 in
  (* workers:0 exactly like pipe-mode serve-smoke, so the health row
     pins the same worker/queue fields; the reactor computes inline. *)
  let engine = Serve.Engine.create ~workers:0 ~mus ~sigmas () in
  let path = Printf.sprintf "/tmp/htlc-reactor-smoke-%d.sock" (Unix.getpid ()) in
  let server = Serve.Server.listen engine ~path () in
  (* --- JSON leg: one pipelined burst -------------------------------- *)
  let fd, ic, oc = connect path in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  flush oc;
  let json_rows = List.map (fun _ -> input_line ic) lines in
  Unix.close fd;
  Out_channel.with_open_text out_json (fun o ->
      List.iter
        (fun r ->
          Out_channel.output_string o r;
          Out_channel.output_char o '\n')
        json_rows);
  (* --- binary leg: every decodable request, re-framed ---------------- *)
  let decodable =
    List.filter_map
      (fun l ->
        match Serve.Request.decode l with
        | Ok req -> Some req
        | Error _ -> None)
      lines
  in
  let fd, ic, oc = connect path in
  output_string oc Serve.Binary.magic;
  List.iter (fun r -> output_string oc (Serve.Binary.encode_request r)) decodable;
  flush oc;
  let bin_rows =
    List.map
      (fun _ ->
        match Serve.Binary.input_frame ic with
        | Some body -> body
        | None -> failwith "reactor_smoke: server closed mid-binary-leg")
      decodable
  in
  Unix.close fd;
  Out_channel.with_open_text out_bin (fun o ->
      List.iter
        (fun r ->
          Out_channel.output_string o r;
          Out_channel.output_char o '\n')
        bin_rows);
  Serve.Server.shutdown server;
  Serve.Engine.stop engine;
  Printf.eprintf "reactor_smoke: %d json rows, %d binary rows\n"
    (List.length json_rows) (List.length bin_rows)
