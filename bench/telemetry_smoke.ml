(* Telemetry socket smoke: the CI proof that the serve-telemetry layer
   observes real reactor traffic end-to-end.

   Forces sampling to 1-in-1 and a small flight-recorder bound, then
   drives the fixed serve_requests.txt script through a single-shard
   reactor server over both wire codecs (the same legs reactor_smoke
   runs).  A single shard serialises the event loop, so every earlier
   request's stage clock is finalised before the next connection is
   even read — the stats responses and the recorder dump are
   deterministic in everything validate_serve --telemetry pins.

   Artefacts:
   - OUT_STATS: two response lines for the uncached `stats` request
     kind — one served over JSON, one over htlc-serve/b1.
   - OUT_RECORDER: the flight-recorder dump (htlc-obs/v1 JSONL, one
     recorder header + one line per held request record).

   Usage: telemetry_smoke REQUESTS OUT_STATS OUT_RECORDER *)

let read_lines file =
  In_channel.with_open_text file (fun ic ->
      let rec go acc =
        match In_channel.input_line ic with
        | Some l -> go (l :: acc)
        | None -> List.rev acc
      in
      go [])

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let () =
  let requests_file, out_stats, out_recorder =
    match Sys.argv with
    | [| _; a; b; c |] -> (a, b, c)
    | _ ->
      prerr_endline "usage: telemetry_smoke REQUESTS OUT_STATS OUT_RECORDER";
      exit 2
  in
  let lines =
    List.filter (fun l -> String.trim l <> "") (read_lines requests_file)
  in
  Serve.Telemetry.set_enabled true;
  Serve.Telemetry.set_sample_every 1;
  Serve.Telemetry.set_recorder_capacity 64;
  Serve.Telemetry.reset ();
  let mus = Numerics.Grid.linspace ~lo:(-0.01) ~hi:0.01 ~n:3
  and sigmas = Numerics.Grid.linspace ~lo:0.02 ~hi:0.16 ~n:3 in
  let engine = Serve.Engine.create ~workers:0 ~mus ~sigmas () in
  let path =
    Printf.sprintf "/tmp/htlc-telemetry-smoke-%d.sock" (Unix.getpid ())
  in
  let server = Serve.Server.listen engine ~path ~shards:1 () in
  (* --- JSON leg: one pipelined burst --------------------------------- *)
  let fd, ic, oc = connect path in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  flush oc;
  let json_rows = List.map (fun _ -> input_line ic) lines in
  Unix.close fd;
  (* --- binary leg: every decodable request, re-framed ----------------- *)
  let decodable =
    List.filter_map
      (fun l ->
        match Serve.Request.decode l with
        | Ok req -> Some req
        | Error _ -> None)
      lines
  in
  let fd, ic, oc = connect path in
  output_string oc Serve.Binary.magic;
  List.iter (fun r -> output_string oc (Serve.Binary.encode_request r)) decodable;
  flush oc;
  List.iter
    (fun _ ->
      match Serve.Binary.input_frame ic with
      | Some _ -> ()
      | None -> failwith "telemetry_smoke: server closed mid-binary-leg")
    decodable;
  Unix.close fd;
  (* --- stats over both codecs ----------------------------------------- *)
  let fd, ic, oc = connect path in
  output_string oc
    "{\"schema\":\"htlc-serve/v1\",\"id\":\"stats-json\",\"req\":\"stats\"}\n";
  flush oc;
  let stats_json_row = input_line ic in
  Unix.close fd;
  let fd, ic, oc = connect path in
  output_string oc Serve.Binary.magic;
  output_string oc
    (Serve.Binary.encode_request
       { Serve.Request.id = Some "stats-b1"; body = Serve.Request.Stats });
  flush oc;
  let stats_b1_row =
    match Serve.Binary.input_frame ic with
    | Some body -> body
    | None -> failwith "telemetry_smoke: server closed before the b1 stats row"
  in
  Unix.close fd;
  Out_channel.with_open_text out_stats (fun o ->
      Out_channel.output_string o stats_json_row;
      Out_channel.output_char o '\n';
      Out_channel.output_string o stats_b1_row;
      Out_channel.output_char o '\n');
  (* Shut down before dumping: joining the reactor shard guarantees the
     last clocks (including both stats requests') are finalised. *)
  Serve.Server.shutdown server;
  Serve.Engine.stop engine;
  Out_channel.with_open_text out_recorder
    (Serve.Telemetry.write_recorder ~reason:"telemetry_smoke");
  Printf.eprintf
    "telemetry_smoke: %d json rows, %d binary rows, %d recorded (%d pushed)\n"
    (List.length json_rows) (List.length decodable)
    (Serve.Telemetry.recorder_recorded ())
    (Serve.Telemetry.recorder_pushed ())
