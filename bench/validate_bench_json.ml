(* Shape validator for the bench baseline JSON (bench --json FILE and
   bench serve --json FILE).

   Used by the @bench-smoke alias so the perf plumbing cannot rot
   silently: it fully parses the emitted file with the shared minimal
   JSON reader (Obs.Json_parse) and checks every field the baseline
   contract promises — including that the jobs=1 and jobs=N Monte-Carlo
   runs were bit-identical, that a "serve" load-test section (when
   present) reports sane latency quantiles and a clean
   identical-to-direct record, and that the embedded "obs" metrics
   snapshot carries the htlc-obs/v1 schema.  A `bench serve` baseline
   carries only the "serve" section; the kernel run carries
   "kernels" + "mc". *)

open Obs.Json_parse

(* The optional "obs" member embeds the Obs.Metrics snapshot taken after
   the Monte-Carlo wall-clock runs; when a baseline carries one it must
   be a well-formed htlc-obs/v1 metrics document with integer counters. *)
let validate_obs_member obs =
  let schema = as_str "obs.schema" (member "obs" obs "schema") in
  if schema <> "htlc-obs/v1" then bad "obs: unknown schema %S" schema;
  let doc_type = as_str "obs.type" (member "obs" obs "type") in
  if doc_type <> "metrics" then bad "obs.type must be \"metrics\" (got %S)" doc_type;
  let counters = as_obj "obs.counters" (member "obs" obs "counters") in
  if counters = [] then bad "obs.counters is empty";
  List.iter
    (fun (name, v) ->
      let c = as_num (Printf.sprintf "obs.counters[%S]" name) v in
      if c < 0. || Float.rem c 1. <> 0. then
        bad "obs.counters[%S] must be a non-negative integer (got %g)" name c)
    counters;
  ignore (as_obj "obs.gauges" (member "obs" obs "gauges"));
  ignore (as_obj "obs.histograms" (member "obs" obs "histograms"))

(* One codec leg under serve.codecs: the per-wire-format measurement of
   the head-to-head (the reactor serves htlc-serve/v1 JSON and
   htlc-serve/b1 binary over the same engine). *)
let validate_codec_leg ~codec leg =
  let path key = Printf.sprintf "serve.codecs.%s.%s" codec key in
  let num key = as_num (path key) (member ("serve.codecs." ^ codec) leg key) in
  if num "throughput_rps" <= 0. then bad "%s must be > 0" (path "throughput_rps");
  let p50 = num "p50_ms" and p99 = num "p99_ms" in
  if p50 < 0. then bad "%s must be >= 0" (path "p50_ms");
  if p99 < p50 then bad "%s must be >= p50_ms" (path "p99_ms");
  let hit_rate = num "cache_hit_rate" in
  if hit_rate < 0. || hit_rate > 1. then
    bad "%s must be in [0, 1] (got %g)" (path "cache_hit_rate") hit_rate;
  if num "mismatches" <> 0. then
    bad "%s must be 0: a response was corrupted" (path "mismatches");
  if num "dropped" <> 0. then
    bad "%s must be 0: a response never arrived" (path "dropped");
  if
    not
      (as_bool
         (path "identical_to_direct")
         (member ("serve.codecs." ^ codec) leg "identical_to_direct"))
  then
    bad "%s is false: a served response diverged from the direct library call"
      (path "identical_to_direct")

(* One stage row under serve.stages: the telemetry stage-clock quantiles
   folded over the measured legs (microseconds, exact reservoirs). *)
let known_stages =
  [ "decode"; "cache"; "queue"; "compute"; "encode"; "flush"; "total" ]

let validate_stage ~stage row =
  let path key = Printf.sprintf "serve.stages.%s.%s" stage key in
  if not (List.mem stage known_stages) then
    bad "serve.stages: unknown stage %S" stage;
  let num key = as_num (path key) (member ("serve.stages." ^ stage) row key) in
  if num "count" < 1. then bad "%s must be >= 1" (path "count");
  if num "mean_us" < 0. then bad "%s must be >= 0" (path "mean_us");
  let window = num "window" in
  if window < 1. || window > num "count" then
    bad "%s must be in [1, count]" (path "window");
  let qs =
    List.map (fun k -> (k, num k)) [ "p50_us"; "p90_us"; "p99_us"; "p999_us" ]
  in
  List.iter
    (fun (k, v) -> if v < 0. then bad "%s must be >= 0" (path k))
    qs;
  let rec ordered = function
    | (ka, a) :: ((kb, b) :: _ as rest) ->
      if b < a then bad "%s < %s: quantiles out of order" (path kb) (path ka);
      ordered rest
    | _ -> ()
  in
  ordered qs

(* serve.telemetry: the overhead head-to-head (JSON leg rerun with the
   stage clocks disabled). *)
let validate_telemetry_member tel =
  let num key = as_num ("serve.telemetry." ^ key) (member "serve.telemetry" tel key) in
  let sample_every = num "sample_every" in
  if sample_every < 1. || Float.rem sample_every 1. <> 0. then
    bad "serve.telemetry.sample_every must be a positive integer (got %g)"
      sample_every;
  if num "enabled_rps" <= 0. then bad "serve.telemetry.enabled_rps must be > 0";
  if num "disabled_rps" <= 0. then
    bad "serve.telemetry.disabled_rps must be > 0";
  let frac = num "overhead_frac" in
  if frac >= 1. then
    bad "serve.telemetry.overhead_frac must be < 1 (got %g)" frac

(* The "serve" member records the socket load test (bench serve): client
   totals, latency quantiles, cache hit-rate, the byte-identity check
   against direct in-process calls, and the per-codec breakdown of the
   JSON vs binary head-to-head. *)
let validate_serve_member serve =
  let num key = as_num ("serve." ^ key) (member "serve" serve key) in
  let non_negative_int key =
    let v = num key in
    if v < 0. || Float.rem v 1. <> 0. then
      bad "serve.%s must be a non-negative integer (got %g)" key v
  in
  if num "requests" < 1. then bad "serve.requests must be >= 1";
  if num "clients" < 1. then bad "serve.clients must be >= 1";
  if num "workers" < 1. then bad "serve.workers must be >= 1";
  if num "reactor_shards" < 1. then bad "serve.reactor_shards must be >= 1";
  if num "pipeline_window" < 1. then bad "serve.pipeline_window must be >= 1";
  if num "throughput_rps" <= 0. then bad "serve.throughput_rps must be > 0";
  let p50 = num "p50_ms" and p99 = num "p99_ms" in
  if p50 < 0. then bad "serve.p50_ms must be >= 0";
  if p99 < p50 then bad "serve.p99_ms must be >= p50_ms";
  let hit_rate = num "cache_hit_rate" in
  if hit_rate < 0. || hit_rate > 1. then
    bad "serve.cache_hit_rate must be in [0, 1] (got %g)" hit_rate;
  non_negative_int "shed";
  non_negative_int "deadline_exceeded";
  if num "mismatches" <> 0. then
    bad "serve.mismatches must be 0: a response was dropped or corrupted";
  if
    not
      (as_bool "serve.identical_to_direct"
         (member "serve" serve "identical_to_direct"))
  then
    bad
      "serve.identical_to_direct is false: a served response diverged from \
       the direct library call";
  let codecs = member "serve" serve "codecs" in
  validate_codec_leg ~codec:"json" (member "serve.codecs" codecs "json");
  validate_codec_leg ~codec:"binary" (member "serve.codecs" codecs "binary");
  (* Pre-telemetry baselines carry neither member; when present both
     must be well-formed and stages must include the total clock. *)
  (match member_opt serve "stages" with
  | None -> ()
  | Some stages ->
    let rows = as_obj "serve.stages" stages in
    if rows = [] then bad "serve.stages is empty";
    if not (List.mem_assoc "total" rows) then
      bad "serve.stages is missing the \"total\" stage";
    List.iter (fun (stage, row) -> validate_stage ~stage row) rows);
  Option.iter validate_telemetry_member (member_opt serve "telemetry")

(* A nullable-number member as an option (num_or_null checks shape
   only); NaN — which Obs.Json emits as null — reads back as None. *)
let opt_num path v =
  num_or_null path v;
  match v with
  | Num x when not (Float.is_nan x) -> Some x
  | _ -> None

(* An OLS fit this poor means ns_per_run is noise, not a measurement:
   unusable as a budget baseline, and worth flagging loudly. *)
let junk_fit r2 = match r2 with None -> true | Some r2 -> r2 < 0.5

(* name -> (ns_per_run, r_square) for every kernel row, shape-checking
   as it goes. *)
let kernel_rows root =
  let kernels = as_arr "kernels" (member "top level" root "kernels") in
  List.mapi
    (fun i k ->
      let path = Printf.sprintf "kernels[%d]" i in
      let name = as_str (path ^ ".name") (member path k "name") in
      if name = "" then bad "%s.name is empty" path;
      let ns = opt_num (path ^ ".ns_per_run") (member path k "ns_per_run") in
      let r2 = opt_num (path ^ ".r_square") (member path k "r_square") in
      (name, ns, r2))
    kernels

let validate_kernels_and_mc root =
  let jobs = member "top level" root "jobs" in
  let seq = as_num "jobs.sequential" (member "jobs" jobs "sequential") in
  if seq <> 1. then bad "jobs.sequential must be 1 (got %g)" seq;
  let par = as_num "jobs.parallel" (member "jobs" jobs "parallel") in
  if par < 1. then bad "jobs.parallel must be >= 1 (got %g)" par;
  let kernels = kernel_rows root in
  if kernels = [] then bad "kernels must be non-empty";
  List.iter
    (fun (name, _, r2) ->
      if junk_fit r2 then
        Printf.eprintf
          "WARNING: kernel %s: poor timing fit (r_square = %s); ns_per_run \
           is unreliable\n\
           %!"
          name
          (match r2 with None -> "null" | Some r2 -> Printf.sprintf "%.3f" r2))
    kernels;
  let mc = member "top level" root "mc" in
  let trials = as_num "mc.trials" (member "mc" mc "trials") in
  if trials < 1. then bad "mc.trials must be >= 1 (got %g)" trials;
  let wall_1 = as_num "mc.wall_s_jobs1" (member "mc" mc "wall_s_jobs1") in
  let wall_n = as_num "mc.wall_s_jobsN" (member "mc" mc "wall_s_jobsN") in
  if wall_1 < 0. || wall_n < 0. then bad "mc wall clocks must be >= 0";
  ignore (as_num "mc.speedup" (member "mc" mc "speedup"));
  if not (as_bool "mc.identical_results" (member "mc" mc "identical_results"))
  then bad "mc.identical_results is false: jobs=1 and jobs=N diverged";
  List.length kernels

let validate root =
  (match root with
  | Obj _ -> ()
  | _ -> bad "top level: expected an object");
  let schema = as_str "schema" (member "top level" root "schema") in
  if schema <> "htlc-bench/v1" then bad "unknown schema %S" schema;
  let serve = member_opt root "serve" in
  Option.iter validate_serve_member serve;
  (* A serve-only baseline has no kernel table; every other baseline
     must carry the kernels + Monte-Carlo determinism record. *)
  let n_kernels =
    match member_opt root "kernels" with
    | None when serve <> None -> 0
    | _ -> validate_kernels_and_mc root
  in
  (match member_opt root "obs" with
  | Some obs -> validate_obs_member obs
  | None -> ());
  n_kernels

(* --- per-kernel budgets --------------------------------------------------- *)

(* Compare the new file's kernels against a recorded baseline: any
   kernel slower than [factor] x its baseline ns_per_run fails.  Rows
   are skipped — not silently, the count is printed — when either side
   has a junk fit or the baseline sits under the noise floor where
   scheduler jitter swamps the signal. *)
let noise_floor_ns = 500.

let check_budget ~file ~baseline_file ~factor root base =
  let base_rows =
    List.map (fun (name, ns, r2) -> (name, (ns, r2))) (kernel_rows base)
  in
  let checked = ref 0 and skipped = ref 0 and failed = ref 0 in
  List.iter
    (fun (name, ns, r2) ->
      match List.assoc_opt name base_rows with
      | None -> ()  (* new kernel: no recorded budget yet *)
      | Some (base_ns, base_r2) -> (
        match (ns, base_ns) with
        | Some ns, Some base_ns
          when (not (junk_fit r2))
               && (not (junk_fit base_r2))
               && base_ns >= noise_floor_ns ->
          incr checked;
          if ns > factor *. base_ns then begin
            incr failed;
            Printf.eprintf
              "%s: BUDGET EXCEEDED: %s: %.0f ns/run is %.2fx the recorded \
               baseline %.0f ns/run (budget %.1fx)\n"
              file name ns (ns /. base_ns) base_ns factor
          end
        | _ -> incr skipped))
    (kernel_rows root);
  Printf.printf
    "%s: budget vs %s: %d kernels within %.1fx, %d skipped (junk fit or \
     sub-%.0fns baseline)\n"
    file baseline_file !checked factor !skipped noise_floor_ns;
  if !failed > 0 then exit 1

let usage () =
  prerr_endline
    "usage: validate_bench_json FILE [--budget BASELINE] [--budget-factor F]";
  exit 2

let () =
  let file = ref None
  and budget = ref None
  and factor = ref 2.0 in
  let rec go = function
    | [] -> ()
    | "--budget" :: b :: rest ->
      budget := Some b;
      go rest
    | "--budget-factor" :: f :: rest ->
      (match float_of_string_opt f with
      | Some f when f > 0. -> factor := f
      | _ -> usage ());
      go rest
    | f :: rest when !file = None ->
      file := Some f;
      go rest
    | _ -> usage ()
  in
  go (List.tl (Array.to_list Sys.argv));
  let file = match !file with Some f -> f | None -> usage () in
  let contents = In_channel.with_open_text file In_channel.input_all in
  match
    let root = parse contents in
    let n = validate root in
    Option.iter
      (fun baseline_file ->
        let base =
          parse
            (In_channel.with_open_text baseline_file In_channel.input_all)
        in
        check_budget ~file ~baseline_file ~factor:!factor root base)
      !budget;
    n
  with
  | n -> Printf.printf "%s: ok (%d kernels)\n" file n
  | exception Bad msg ->
    Printf.eprintf "%s: INVALID baseline: %s\n" file msg;
    exit 1
