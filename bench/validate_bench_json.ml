(* Shape validator for the bench baseline JSON (bench --json FILE and
   bench serve --json FILE).

   Used by the @bench-smoke alias so the perf plumbing cannot rot
   silently: it fully parses the emitted file with the shared minimal
   JSON reader (Obs.Json_parse) and checks every field the baseline
   contract promises — including that the jobs=1 and jobs=N Monte-Carlo
   runs were bit-identical, that a "serve" load-test section (when
   present) reports sane latency quantiles and a clean
   identical-to-direct record, and that the embedded "obs" metrics
   snapshot carries the htlc-obs/v1 schema.  A `bench serve` baseline
   carries only the "serve" section; the kernel run carries
   "kernels" + "mc". *)

open Obs.Json_parse

(* The optional "obs" member embeds the Obs.Metrics snapshot taken after
   the Monte-Carlo wall-clock runs; when a baseline carries one it must
   be a well-formed htlc-obs/v1 metrics document with integer counters. *)
let validate_obs_member obs =
  let schema = as_str "obs.schema" (member "obs" obs "schema") in
  if schema <> "htlc-obs/v1" then bad "obs: unknown schema %S" schema;
  let doc_type = as_str "obs.type" (member "obs" obs "type") in
  if doc_type <> "metrics" then bad "obs.type must be \"metrics\" (got %S)" doc_type;
  let counters = as_obj "obs.counters" (member "obs" obs "counters") in
  if counters = [] then bad "obs.counters is empty";
  List.iter
    (fun (name, v) ->
      let c = as_num (Printf.sprintf "obs.counters[%S]" name) v in
      if c < 0. || Float.rem c 1. <> 0. then
        bad "obs.counters[%S] must be a non-negative integer (got %g)" name c)
    counters;
  ignore (as_obj "obs.gauges" (member "obs" obs "gauges"));
  ignore (as_obj "obs.histograms" (member "obs" obs "histograms"))

(* The "serve" member records the socket load test (bench serve): client
   totals, latency quantiles, cache hit-rate, and the byte-identity
   check against direct in-process calls. *)
let validate_serve_member serve =
  let num key = as_num ("serve." ^ key) (member "serve" serve key) in
  let non_negative_int key =
    let v = num key in
    if v < 0. || Float.rem v 1. <> 0. then
      bad "serve.%s must be a non-negative integer (got %g)" key v
  in
  if num "requests" < 1. then bad "serve.requests must be >= 1";
  if num "clients" < 1. then bad "serve.clients must be >= 1";
  if num "workers" < 1. then bad "serve.workers must be >= 1";
  if num "throughput_rps" <= 0. then bad "serve.throughput_rps must be > 0";
  let p50 = num "p50_ms" and p99 = num "p99_ms" in
  if p50 < 0. then bad "serve.p50_ms must be >= 0";
  if p99 < p50 then bad "serve.p99_ms must be >= p50_ms";
  let hit_rate = num "cache_hit_rate" in
  if hit_rate < 0. || hit_rate > 1. then
    bad "serve.cache_hit_rate must be in [0, 1] (got %g)" hit_rate;
  non_negative_int "shed";
  non_negative_int "deadline_exceeded";
  if num "mismatches" <> 0. then
    bad "serve.mismatches must be 0: a response was dropped or corrupted";
  if
    not
      (as_bool "serve.identical_to_direct"
         (member "serve" serve "identical_to_direct"))
  then
    bad
      "serve.identical_to_direct is false: a served response diverged from \
       the direct library call"

let validate_kernels_and_mc root =
  let jobs = member "top level" root "jobs" in
  let seq = as_num "jobs.sequential" (member "jobs" jobs "sequential") in
  if seq <> 1. then bad "jobs.sequential must be 1 (got %g)" seq;
  let par = as_num "jobs.parallel" (member "jobs" jobs "parallel") in
  if par < 1. then bad "jobs.parallel must be >= 1 (got %g)" par;
  let kernels = as_arr "kernels" (member "top level" root "kernels") in
  if kernels = [] then bad "kernels must be non-empty";
  List.iteri
    (fun i k ->
      let path = Printf.sprintf "kernels[%d]" i in
      let name = as_str (path ^ ".name") (member path k "name") in
      if name = "" then bad "%s.name is empty" path;
      num_or_null (path ^ ".ns_per_run") (member path k "ns_per_run");
      num_or_null (path ^ ".r_square") (member path k "r_square"))
    kernels;
  let mc = member "top level" root "mc" in
  let trials = as_num "mc.trials" (member "mc" mc "trials") in
  if trials < 1. then bad "mc.trials must be >= 1 (got %g)" trials;
  let wall_1 = as_num "mc.wall_s_jobs1" (member "mc" mc "wall_s_jobs1") in
  let wall_n = as_num "mc.wall_s_jobsN" (member "mc" mc "wall_s_jobsN") in
  if wall_1 < 0. || wall_n < 0. then bad "mc wall clocks must be >= 0";
  ignore (as_num "mc.speedup" (member "mc" mc "speedup"));
  if not (as_bool "mc.identical_results" (member "mc" mc "identical_results"))
  then bad "mc.identical_results is false: jobs=1 and jobs=N diverged";
  List.length kernels

let validate root =
  (match root with
  | Obj _ -> ()
  | _ -> bad "top level: expected an object");
  let schema = as_str "schema" (member "top level" root "schema") in
  if schema <> "htlc-bench/v1" then bad "unknown schema %S" schema;
  let serve = member_opt root "serve" in
  Option.iter validate_serve_member serve;
  (* A serve-only baseline has no kernel table; every other baseline
     must carry the kernels + Monte-Carlo determinism record. *)
  let n_kernels =
    match member_opt root "kernels" with
    | None when serve <> None -> 0
    | _ -> validate_kernels_and_mc root
  in
  (match member_opt root "obs" with
  | Some obs -> validate_obs_member obs
  | None -> ());
  n_kernels

let () =
  let file =
    match Sys.argv with
    | [| _; file |] -> file
    | _ ->
      prerr_endline "usage: validate_bench_json FILE";
      exit 2
  in
  let contents = In_channel.with_open_text file In_channel.input_all in
  match validate (parse contents) with
  | n -> Printf.printf "%s: ok (%d kernels)\n" file n
  | exception Bad msg ->
    Printf.eprintf "%s: INVALID baseline: %s\n" file msg;
    exit 1
