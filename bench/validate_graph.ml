(* Structural validator for the htlc-graph/v1 document `swap_cli
   graph-sweep --json` emits — the @graph-smoke gate.

   Beyond schema shape it enforces the invariants the sweep is supposed
   to guarantee: every success rate is a probability, each topology's
   leader sits at depth 0 with arcs inside the vertex range, claim
   expiries strictly decrease as the sender's Herlihy depth grows (the
   staggered-expiry ordering that makes cascaded claims safe), and every
   reported optimum route exists edge-by-edge in the served token
   universe within its hop bound. *)

open Obs.Json_parse

let as_int path j =
  let v = as_num path j in
  if Float.rem v 1. <> 0. then bad "%s: expected an integer" path;
  int_of_float v

let probability path j =
  let v = as_num path j in
  if not (Float.is_finite v) then bad "%s: not finite" path;
  if v < 0. || v > 1. then bad "%s: %g outside [0, 1]" path v;
  v

(* --- topologies ----------------------------------------------------------- *)

let validate_topology i topo =
  let path = Printf.sprintf "topologies[%d]" i in
  let mem key = member path topo key in
  ignore (as_str (path ^ ".family") (mem "family"));
  let n = as_int (path ^ ".n") (mem "n") in
  if n < 2 then bad "%s.n: %d is too small for a swap" path n;
  let slack = as_num (path ^ ".slack") (mem "slack") in
  if slack < 0. then bad "%s.slack: negative" path;
  ignore (as_int (path ^ ".seed") (mem "seed"));
  let leader = as_int (path ^ ".leader") (mem "leader") in
  let depths =
    List.mapi
      (fun k d -> as_int (Printf.sprintf "%s.depths[%d]" path k) d)
      (as_arr (path ^ ".depths") (mem "depths"))
  in
  if List.length depths <> n then
    bad "%s.depths: %d entries for %d parties" path (List.length depths) n;
  if leader < 0 || leader >= n then bad "%s.leader: out of range" path;
  if List.nth depths leader <> 0 then
    bad "%s: leader must sit at depth 0" path;
  let depth_of = Array.of_list depths in
  Array.iter
    (fun d ->
      if d < 0 || d >= n then bad "%s.depths: entry %d out of range" path d)
    depth_of;
  let arcs = as_arr (path ^ ".arcs") (mem "arcs") in
  if arcs = [] then bad "%s.arcs: empty" path;
  (* Worst (latest) expiry per sender depth, then the staggered-expiry
     check: a deeper sender's claim must expire strictly earlier, or a
     party could be claimed from after its own window closed.  Depths
     are bounded by n, so a flat array gives a stable ascending walk. *)
  let by_depth = Array.make n Float.neg_infinity in
  List.iteri
    (fun j arc ->
      let apath = Printf.sprintf "%s.arcs[%d]" path j in
      let src = as_int (apath ^ ".src") (member apath arc "src") in
      let dst = as_int (apath ^ ".dst") (member apath arc "dst") in
      if src < 0 || src >= n || dst < 0 || dst >= n then
        bad "%s: endpoint outside 0..%d" apath (n - 1);
      if src = dst then bad "%s: self-loop" apath;
      let lock = as_num (apath ^ ".lock") (member apath arc "lock") in
      let expiry = as_num (apath ^ ".expiry") (member apath arc "expiry") in
      if not (Float.is_finite lock && Float.is_finite expiry) then
        bad "%s: non-finite timelock" apath;
      if lock < 0. then bad "%s.lock: negative" apath;
      if expiry <= lock then bad "%s: expiry precedes lock" apath;
      let d = depth_of.(src) in
      by_depth.(d) <- Float.max by_depth.(d) expiry)
    arcs;
  let prev = ref None in
  Array.iteri
    (fun d worst ->
      if Float.is_finite worst then begin
        (match !prev with
        | Some (pd, pw) when worst >= pw ->
          bad
            "%s: expiries not strictly decreasing along the Herlihy order \
             (depth %d worst %g, depth %d worst %g)"
            path pd pw d worst
        | _ -> ());
        prev := Some (d, worst)
      end)
    by_depth;
  ignore (probability (path ^ ".sr") (mem "sr"));
  let griefing = as_num (path ^ ".griefing") (mem "griefing") in
  if (not (Float.is_finite griefing)) || griefing < 0. then
    bad "%s.griefing: must be finite and non-negative" path;
  ignore
    (as_bool (path ^ ".equilibrium_success") (mem "equilibrium_success"))

(* --- universe + routes ---------------------------------------------------- *)

let validate_universe universe =
  List.mapi
    (fun i e ->
      let path = Printf.sprintf "universe[%d]" i in
      let src = as_str (path ^ ".src") (member path e "src") in
      let dst = as_str (path ^ ".dst") (member path e "dst") in
      if src = "" || dst = "" then bad "%s: empty token name" path;
      if src = dst then bad "%s: self-edge" path;
      ignore (probability (path ^ ".sr") (member path e "sr"));
      let rate = as_num (path ^ ".rate") (member path e "rate") in
      if (not (Float.is_finite rate)) || rate <= 0. then
        bad "%s.rate: must be finite and positive" path;
      (src, dst))
    universe

let validate_route edges i route =
  let path = Printf.sprintf "routes[%d]" i in
  let mem key = member path route key in
  let from_tok = as_str (path ^ ".from") (mem "from") in
  let to_tok = as_str (path ^ ".to") (mem "to") in
  let max_hops = as_int (path ^ ".max_hops") (mem "max_hops") in
  if max_hops < 1 then bad "%s.max_hops: must be positive" path;
  match mem "path" with
  | Null -> false
  | Arr hops_json ->
    let hops =
      List.mapi
        (fun k h -> as_str (Printf.sprintf "%s.path[%d]" path k) h)
        hops_json
    in
    let legs = List.length hops - 1 in
    if legs < 1 then bad "%s.path: needs at least two tokens" path;
    if legs <> as_int (path ^ ".hops") (mem "hops") then
      bad "%s.hops: disagrees with path length" path;
    if legs > max_hops then bad "%s: path exceeds max_hops" path;
    if List.hd hops <> from_tok then bad "%s.path: does not start at from" path;
    if List.nth hops legs <> to_tok then bad "%s.path: does not end at to" path;
    ignore (probability (path ^ ".sr") (mem "sr"));
    let rate = as_num (path ^ ".rate") (mem "rate") in
    if (not (Float.is_finite rate)) || rate <= 0. then
      bad "%s.rate: must be finite and positive" path;
    ignore
      (List.fold_left
         (fun prev tok ->
           (match prev with
           | Some prev_tok when not (List.mem (prev_tok, tok) edges) ->
             bad "%s.path: %s->%s is not a universe edge" path prev_tok tok
           | _ -> ());
           Some tok)
         None hops);
    true
  | _ -> bad "%s.path: expected an array or null" path

(* --- document ------------------------------------------------------------- *)

let validate root =
  let schema = as_str "schema" (member "top level" root "schema") in
  if schema <> "htlc-graph/v1" then bad "unknown schema %S" schema;
  ignore (as_obj "params" (member "top level" root "params"));
  let topologies =
    as_arr "topologies" (member "top level" root "topologies")
  in
  if topologies = [] then bad "topologies: empty sweep";
  List.iteri validate_topology topologies;
  let universe = as_arr "universe" (member "top level" root "universe") in
  if universe = [] then bad "universe: no served token pairs";
  let edges = validate_universe universe in
  let routes = as_arr "routes" (member "top level" root "routes") in
  if routes = [] then bad "routes: no routed pairs";
  let found =
    List.fold_left ( + ) 0
      (List.mapi
         (fun i r -> if validate_route edges i r then 1 else 0)
         routes)
  in
  if found = 0 then bad "routes: no pair was routable at all";
  (List.length topologies, List.length universe, List.length routes, found)

let () =
  let file =
    match Sys.argv with
    | [| _; f |] -> f
    | _ ->
      prerr_endline "usage: validate_graph GRAPH_JSON";
      exit 2
  in
  match validate (parse (In_channel.with_open_text file In_channel.input_all))
  with
  | n_topo, n_edges, n_routes, n_found ->
    Printf.printf "%s: ok (%d topologies, %d universe edges, %d/%d pairs routed)\n"
      file n_topo n_edges n_found n_routes
  | exception Bad msg ->
    Printf.eprintf "INVALID graph document: %s\n" msg;
    exit 1
