(* Shape validator for the htlc-lint/v1 document swap_lint emits over
   the bench/lint_fixture tree.

   Used by the @lint-smoke alias: beyond pinning the schema (field
   names, types, severity/rule vocabularies, summary arithmetic), it
   checks that every rule the fixture deliberately violates actually
   fired — including the meta rules (a blank justification must surface
   as bad_suppression, a stale allowance as unused_suppression) — and
   that at least one finding is error-severity, which is what makes the
   producing rule's pinned nonzero exit (and hence a red @ci on any
   newly introduced error) meaningful. *)

open Obs.Json_parse

let known_severities = [ "error"; "warning" ]

let known_rules =
  [
    "nondet_random"; "nondet_clock"; "hashtbl_order"; "shared_state";
    "catch_all"; "output"; "missing_mli"; "syntax"; "bad_suppression";
    "unused_suppression";
  ]

(* Every rule the fixture exercises, with the minimum count expected. *)
let expected =
  [
    ("nondet_random", 2); ("nondet_clock", 1); ("hashtbl_order", 1);
    ("shared_state", 1); ("catch_all", 1); ("output", 1); ("missing_mli", 1);
    ("bad_suppression", 1); ("unused_suppression", 1);
  ]

let validate_finding i f =
  let path key = Printf.sprintf "findings[%d].%s" i key in
  let str key = as_str (path key) (member (path key) f key) in
  let num key = as_num (path key) (member (path key) f key) in
  if str "file" = "" then bad "%s is empty" (path "file");
  if num "line" < 1. then bad "%s must be >= 1" (path "line");
  if num "col" < 0. then bad "%s must be >= 0" (path "col");
  let rule = str "rule" in
  if not (List.mem rule known_rules) then
    bad "%s: unknown rule %S" (path "rule") rule;
  let severity = str "severity" in
  if not (List.mem severity known_severities) then
    bad "%s: unknown severity %S" (path "severity") severity;
  if str "message" = "" then bad "%s is empty" (path "message");
  (rule, severity)

let () =
  let file =
    match Sys.argv with
    | [| _; f |] -> f
    | _ ->
      prerr_endline "usage: validate_lint LINT_JSON";
      exit 2
  in
  let root = parse (In_channel.with_open_text file In_channel.input_all) in
  let schema = as_str "schema" (member "top level" root "schema") in
  if schema <> "htlc-lint/v1" then bad "unknown schema %S" schema;
  let doc_type = as_str "type" (member "top level" root "type") in
  if doc_type <> "lint" then bad "type must be \"lint\" (got %S)" doc_type;
  if as_num "files_scanned" (member "top level" root "files_scanned") < 3. then
    bad "files_scanned: the fixture tree has at least 3 files";
  if as_num "wall_s" (member "top level" root "wall_s") < 0. then
    bad "wall_s must be nonnegative";
  let findings = as_arr "findings" (member "top level" root "findings") in
  let tallies = List.mapi validate_finding findings in
  let count pred = List.length (List.filter pred tallies) in
  let summary = member "top level" root "summary" in
  let s key = as_num ("summary." ^ key) (member "summary" summary key) in
  if s "errors" <> float_of_int (count (fun (_, sev) -> sev = "error")) then
    bad "summary.errors disagrees with the findings array";
  if s "warnings" <> float_of_int (count (fun (_, sev) -> sev = "warning"))
  then bad "summary.warnings disagrees with the findings array";
  if s "errors" < 1. then
    bad "the fixture must produce at least one error-severity finding";
  if s "suppressed" < 1. then
    bad "summary.suppressed: the justified [@@lint.allow] round-trip is gone";
  let by_rule = as_obj "summary.by_rule" (member "summary" summary "by_rule") in
  List.iter
    (fun (rule, n) ->
      match List.assoc_opt rule by_rule with
      | Some (Num v) when v <> float_of_int n ->
        bad "summary.by_rule[%S] (%g) disagrees with the findings array (%d)"
          rule v n
      | Some (Num _) -> ()
      | Some _ -> bad "summary.by_rule[%S]: expected a number" rule
      | None -> bad "summary.by_rule: missing %S" rule)
    (List.sort_uniq compare
       (List.map (fun (rule, _) -> (rule, count (fun (r, _) -> r = rule))) tallies));
  List.iter
    (fun (rule, at_least) ->
      let n = count (fun (r, _) -> r = rule) in
      if n < at_least then
        bad "fixture rule %S: expected >= %d finding(s), got %d" rule at_least
          n)
    expected;
  Printf.printf "lint json ok (%d findings, %g suppressed)\n"
    (List.length findings) (s "suppressed")
