(* Shape validator for the htlc-lint documents swap_lint emits over
   the bench/lint_fixture tree — v1 (syntactic, @lint-smoke) by
   default, v2 (--deep, @lint-deep-smoke) with the flag.

   Beyond pinning the schema (field names, types, severity/rule
   vocabularies, summary arithmetic), it checks that every rule the
   fixture deliberately violates actually fired — including the meta
   rules (a blank justification must surface as bad_suppression, a
   stale allowance as unused_suppression) — and that at least one
   finding is error-severity, which is what makes the producing rule's
   pinned nonzero exit (and hence a red @ci on any newly introduced
   error) meaningful.

   In --deep mode it additionally requires the whole-program pass to be
   *live*: the "deep" summary present, the compiled fixture's
   cross-module taint chain (Keyer -> Feed -> Unix.gettimeofday),
   hot-path blocking chain (Pump -> Nap -> Unix.sleep), and cross-unit
   lock violation (Prober -> Registry) all reported with at least two
   chain frames each, and the justified deep suppression
   (Keyer.salted_key) counted on top of the syntactic one.  A v1
   document must NOT carry chains — the v1 byte format is frozen. *)

open Obs.Json_parse

let known_severities = [ "error"; "warning" ]

let known_rules =
  [
    "nondet_random"; "nondet_clock"; "hashtbl_order"; "shared_state";
    "catch_all"; "output"; "missing_mli"; "syntax"; "bad_suppression";
    "unused_suppression"; "deep_taint"; "deep_blocking"; "deep_lock";
    "deep_load";
  ]

let deep_rules = [ "deep_taint"; "deep_blocking"; "deep_lock" ]

(* Every rule the fixture exercises, with the minimum count expected. *)
let expected ~deep =
  [
    ("nondet_random", 2); ("nondet_clock", 1); ("hashtbl_order", 1);
    ("shared_state", 1); ("catch_all", 1); ("output", 1); ("missing_mli", 1);
    ("bad_suppression", 1); ("unused_suppression", 1);
  ]
  @ (if deep then [ ("deep_taint", 1); ("deep_blocking", 1); ("deep_lock", 1) ]
     else [])

let validate_chain ~rule path chain =
  let frames = as_arr path chain in
  List.iteri
    (fun j frame ->
      let fpath key = Printf.sprintf "%s[%d].%s" path j key in
      if as_str (fpath "symbol") (member (fpath "symbol") frame "symbol") = ""
      then bad "%s is empty" (fpath "symbol");
      if as_str (fpath "file") (member (fpath "file") frame "file") = "" then
        bad "%s is empty" (fpath "file");
      if as_num (fpath "line") (member (fpath "line") frame "line") < 1. then
        bad "%s must be >= 1" (fpath "line"))
    frames;
  if List.mem rule deep_rules && List.length frames < 2 then
    bad "%s: a %s finding must carry its call chain (>= 2 frames)" path rule

let validate_finding ~deep i f =
  let path key = Printf.sprintf "findings[%d].%s" i key in
  let str key = as_str (path key) (member (path key) f key) in
  let num key = as_num (path key) (member (path key) f key) in
  if str "file" = "" then bad "%s is empty" (path "file");
  if num "line" < 1. then bad "%s must be >= 1" (path "line");
  if num "col" < 0. then bad "%s must be >= 0" (path "col");
  let rule = str "rule" in
  if not (List.mem rule known_rules) then
    bad "%s: unknown rule %S" (path "rule") rule;
  let severity = str "severity" in
  if not (List.mem severity known_severities) then
    bad "%s: unknown severity %S" (path "severity") severity;
  if str "message" = "" then bad "%s is empty" (path "message");
  (match (deep, member_opt f "chain") with
  | true, Some chain -> validate_chain ~rule (path "chain") chain
  | true, None -> bad "%s: v2 findings carry a chain array" (path "chain")
  | false, Some _ -> bad "%s: the frozen v1 format has no chain" (path "chain")
  | false, None -> ());
  (rule, severity)

let validate_deep_summary root =
  let deep = member "top level" root "deep" in
  let d key = as_num ("deep." ^ key) (member "deep" deep key) in
  (* The compiled fixture has 6 modules + the library wrapper. *)
  if d "cmt_files" < 6. then
    bad "deep.cmt_files: the compiled fixture has at least 6 units";
  if d "nodes" < 8. then
    bad "deep.nodes: the fixture defines at least 8 module-level bindings";
  if d "edges" < 3. then
    bad "deep.edges: the fixture's cross-module references are missing";
  if d "wall_s" < 0. then bad "deep.wall_s must be nonnegative"

let () =
  let deep, file =
    match Sys.argv with
    | [| _; f |] -> (false, f)
    | [| _; "--deep"; f |] -> (true, f)
    | _ ->
      prerr_endline "usage: validate_lint [--deep] LINT_JSON";
      exit 2
  in
  let root = parse (In_channel.with_open_text file In_channel.input_all) in
  let schema = as_str "schema" (member "top level" root "schema") in
  let want_schema = if deep then "htlc-lint/v2" else "htlc-lint/v1" in
  if schema <> want_schema then
    bad "schema: expected %S, got %S" want_schema schema;
  let doc_type = as_str "type" (member "top level" root "type") in
  if doc_type <> "lint" then bad "type must be \"lint\" (got %S)" doc_type;
  if as_num "files_scanned" (member "top level" root "files_scanned") < 3. then
    bad "files_scanned: the fixture tree has at least 3 files";
  if as_num "wall_s" (member "top level" root "wall_s") < 0. then
    bad "wall_s must be nonnegative";
  if deep then validate_deep_summary root
  else if member_opt root "deep" <> None then
    bad "deep: the v1 document has no deep section";
  let findings = as_arr "findings" (member "top level" root "findings") in
  let tallies = List.mapi (validate_finding ~deep) findings in
  let count pred = List.length (List.filter pred tallies) in
  let summary = member "top level" root "summary" in
  let s key = as_num ("summary." ^ key) (member "summary" summary key) in
  if s "errors" <> float_of_int (count (fun (_, sev) -> sev = "error")) then
    bad "summary.errors disagrees with the findings array";
  if s "warnings" <> float_of_int (count (fun (_, sev) -> sev = "warning"))
  then bad "summary.warnings disagrees with the findings array";
  if s "errors" < 1. then
    bad "the fixture must produce at least one error-severity finding";
  let min_suppressed = if deep then 2. else 1. in
  if s "suppressed" < min_suppressed then
    bad
      "summary.suppressed (%g): the justified [@@lint.allow] round-trip%s is \
       gone"
      (s "suppressed")
      (if deep then " (syntactic + deep)" else "");
  let by_rule = as_obj "summary.by_rule" (member "summary" summary "by_rule") in
  List.iter
    (fun (rule, n) ->
      match List.assoc_opt rule by_rule with
      | Some (Num v) when v <> float_of_int n ->
        bad "summary.by_rule[%S] (%g) disagrees with the findings array (%d)"
          rule v n
      | Some (Num _) -> ()
      | Some _ -> bad "summary.by_rule[%S]: expected a number" rule
      | None -> bad "summary.by_rule: missing %S" rule)
    (List.sort_uniq compare
       (List.map (fun (rule, _) -> (rule, count (fun (r, _) -> r = rule))) tallies));
  List.iter
    (fun (rule, at_least) ->
      let n = count (fun (r, _) -> r = rule) in
      if n < at_least then
        bad "fixture rule %S: expected >= %d finding(s), got %d" rule at_least
          n)
    (expected ~deep);
  Printf.printf "lint json ok (%s, %d findings, %g suppressed)\n"
    (if deep then "deep" else "syntactic")
    (List.length findings) (s "suppressed")
