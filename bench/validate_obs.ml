(* Shape validator for the observability smoke artefacts produced by
   `swap_cli obs`: a metrics snapshot (htlc-obs/v1 JSON) and a span
   trace (JSONL, one span object per line).

   Used by the @obs-smoke alias: beyond schema shape, it checks that the
   probe workload actually moved the counters it is supposed to move —
   pool chunks ran, Monte-Carlo trials were recorded, the cutoff cache
   saw misses, a protocol run completed, the fault counters exist, and
   the pool's chunk-latency histogram observed samples. *)

open Obs.Json_parse

let counter counters name =
  match List.assoc_opt name counters with
  | Some (Num v) -> v
  | Some _ -> bad "counters[%S]: expected a number" name
  | None -> bad "counters: missing %S" name

let validate_metrics root =
  let schema = as_str "schema" (member "top level" root "schema") in
  if schema <> "htlc-obs/v1" then bad "unknown schema %S" schema;
  let doc_type = as_str "type" (member "top level" root "type") in
  if doc_type <> "metrics" then bad "type must be \"metrics\" (got %S)" doc_type;
  let counters = as_obj "counters" (member "top level" root "counters") in
  let require_positive name =
    if counter counters name < 1. then bad "counter %S did not move" name
  in
  require_positive "pool.tasks_submitted";
  require_positive "pool.chunks_completed";
  require_positive "mc.runs";
  require_positive "mc.trials";
  require_positive "cutoff.cache.misses";
  require_positive "cutoff.cache.hits";
  require_positive "protocol.runs";
  require_positive "chain.txs_submitted";
  (* Fault counters must exist (the schedule decides whether they fire). *)
  List.iter
    (fun name -> ignore (counter counters name))
    [
      "chain.faults.dropped"; "chain.faults.delayed"; "chain.faults.reorged";
      "chain.faults.halted"; "cutoff.cache.evictions"; "protocol.retries";
    ];
  let histograms = as_obj "histograms" (member "top level" root "histograms") in
  let latency =
    match List.assoc_opt "pool.chunk_latency_s" histograms with
    | Some h -> h
    | None -> bad "histograms: missing \"pool.chunk_latency_s\""
  in
  let count =
    as_num "pool.chunk_latency_s.count" (member "latency" latency "count")
  in
  if count < 1. then bad "pool.chunk_latency_s observed no samples";
  ignore (as_num "pool.chunk_latency_s.sum" (member "latency" latency "sum"));
  let buckets =
    as_arr "pool.chunk_latency_s.buckets" (member "latency" latency "buckets")
  in
  List.iteri
    (fun i b ->
      let path = Printf.sprintf "buckets[%d]" i in
      ignore (as_num (path ^ ".le") (member path b "le"));
      if as_num (path ^ ".n") (member path b "n") < 1. then
        bad "%s: snapshot buckets must be nonzero" path)
    buckets;
  List.length counters

let validate_trace_line lineno line =
  let root =
    try parse line
    with Bad msg -> bad "line %d: %s" lineno msg
  in
  let path key = Printf.sprintf "line %d: %s" lineno key in
  let schema = as_str (path "schema") (member (path "span") root "schema") in
  if schema <> "htlc-obs/v1" then bad "line %d: unknown schema %S" lineno schema;
  let doc_type = as_str (path "type") (member (path "span") root "type") in
  if doc_type <> "span" then
    bad "line %d: type must be \"span\" (got %S)" lineno doc_type;
  if as_str (path "name") (member (path "span") root "name") = "" then
    bad "line %d: span name is empty" lineno;
  ignore (as_num (path "id") (member (path "span") root "id"));
  (match member (path "span") root "parent" with
  | Null | Num _ -> ()
  | _ -> bad "line %d: parent must be a number or null" lineno);
  ignore (as_num (path "start_ns") (member (path "span") root "start_ns"));
  if as_num (path "dur_ns") (member (path "span") root "dur_ns") < 0. then
    bad "line %d: negative span duration" lineno;
  ignore (as_obj (path "annotations") (member (path "span") root "annotations"))

let validate_trace file =
  let lines =
    In_channel.with_open_text file In_channel.input_lines
    |> List.filter (fun l -> String.trim l <> "")
  in
  if lines = [] then bad "trace is empty: no spans were recorded";
  List.iteri (fun i l -> validate_trace_line (i + 1) l) lines;
  List.length lines

let () =
  let metrics_file, trace_file =
    match Sys.argv with
    | [| _; m; t |] -> (m, t)
    | _ ->
      prerr_endline "usage: validate_obs METRICS_JSON TRACE_JSONL";
      exit 2
  in
  match
    let contents =
      In_channel.with_open_text metrics_file In_channel.input_all
    in
    let n_counters = validate_metrics (parse contents) in
    let n_spans = validate_trace trace_file in
    (n_counters, n_spans)
  with
  | n_counters, n_spans ->
    Printf.printf "%s: ok (%d counters); %s: ok (%d spans)\n" metrics_file
      n_counters trace_file n_spans
  | exception Bad msg ->
    Printf.eprintf "INVALID obs artefacts: %s\n" msg;
    exit 1
