(* Shape validator for the serve-smoke transcript: the responses the
   pipe-mode server (`swap_cli serve`) produced for the fixed request
   script in serve_requests.txt.

   Used by the @serve-smoke alias.  Each expected line is pinned —
   status, error code, id echo, payload shape — so neither the codec,
   the engine dispatch, the error taxonomy, nor the pipe transport can
   drift silently.  The final line repeats request "r2" under a new id
   and must come back byte-identical after the id field: that is the
   result cache's byte-identity contract, checked in CI on every
   build. *)

open Obs.Json_parse

type expect = {
  id : string option;  (** Expected id echo; [None] = JSON null. *)
  req : string option;  (** Expected req echo (absent on rejected requests). *)
  status : string;
  code : string option;  (** Error code when status = "error". *)
  check : string -> json -> unit;  (** Extra payload checks (path, result). *)
}

let no_check _ _ = ()

let num_in path v ~lo ~hi =
  let x = as_num path v in
  if x < lo || x > hi then bad "%s: %g outside [%g, %g]" path x lo hi

let check_interval path v =
  match v with
  | Null -> ()
  | Arr [ Num lo; Num hi ] ->
    if not (lo <= hi) then bad "%s: [%g, %g] is not ordered" path lo hi
  | _ -> bad "%s: expected [lo, hi] or null" path

let check_cutoffs path result =
  let p_t3_low = as_num (path ^ ".p_t3_low") (member path result "p_t3_low") in
  if not (p_t3_low > 0.) then bad "%s.p_t3_low: must be > 0" path;
  check_interval (path ^ ".t2_band") (member path result "t2_band");
  check_interval (path ^ ".p_star_band") (member path result "p_star_band")

let check_sr path result =
  num_in (path ^ ".sr") (member path result "sr") ~lo:0. ~hi:1.

let check_quote path result =
  let p_star = as_num (path ^ ".p_star") (member path result "p_star") in
  if not (p_star > 0.) then bad "%s.p_star: must be > 0" path;
  num_in (path ^ ".sr") (member path result "sr") ~lo:0. ~hi:1.

let check_sweep n path result =
  let arr key =
    let l = as_arr (path ^ "." ^ key) (member path result key) in
    if List.length l <> n then
      bad "%s.%s: expected %d points, got %d" path key n (List.length l);
    l
  in
  ignore (arr "p_stars");
  List.iteri
    (fun i v -> num_in (Printf.sprintf "%s.srs[%d]" path i) v ~lo:0. ~hi:1.)
    (arr "srs")

let expected =
  let ok ?id ?req check = { id; req; status = "ok"; code = None; check } in
  let err ?id ?req code =
    { id; req; status = "error"; code = Some code; check = no_check }
  in
  [
    ok ~id:"r1" ~req:"cutoffs" check_cutoffs;
    ok ~id:"r2" ~req:"success_rate" check_sr;
    ok ~id:"r3" ~req:"success_rate" check_sr;
    ok ~id:"r4" ~req:"success_rate" check_sr;
    ok ~id:"r5" ~req:"quote" check_quote;
    err ~id:"r6" ~req:"quote" "outside_grid";
    err ~id:"r7" ~req:"quote" "non_positive_spot";
    ok ~id:"r8" ~req:"sweep" (check_sweep 5);
    err "parse_error";
    err ~id:"r10" "invalid_params";
    err ~id:"r11" "parse_error";
    err ~id:"r12" "invalid_params";
    ok ~id:"r13" ~req:"success_rate" check_sr;
  ]

let validate_line lineno line (e : expect) =
  let path key = Printf.sprintf "line %d: %s" lineno key in
  let root =
    try parse line with Bad msg -> bad "line %d: %s" lineno msg
  in
  let schema = as_str (path "schema") (member (path "resp") root "schema") in
  if schema <> "htlc-serve/v1" then
    bad "line %d: unknown schema %S" lineno schema;
  (match (member (path "resp") root "id", e.id) with
  | Null, None -> ()
  | Str got, Some want when got = want -> ()
  | _, Some want -> bad "line %d: id was not echoed (want %S)" lineno want
  | _, None -> bad "line %d: expected a null id" lineno);
  (match (member_opt root "req", e.req) with
  | Some (Str got), Some want when got = want -> ()
  | None, None -> ()
  | _, Some want -> bad "line %d: req must echo %S" lineno want
  | Some _, None -> bad "line %d: unexpected req on a rejected request" lineno);
  let status = as_str (path "status") (member (path "resp") root "status") in
  if status <> e.status then
    bad "line %d: status %S, want %S" lineno status e.status;
  match e.code with
  | Some code ->
    let got = as_str (path "error") (member (path "resp") root "error") in
    if got <> code then bad "line %d: error code %S, want %S" lineno got code;
    if as_str (path "message") (member (path "resp") root "message") = "" then
      bad "line %d: empty error message" lineno
  | None ->
    e.check (path "result") (member (path "resp") root "result")

(* The repeat of r2 under id r13 must be byte-identical past the id
   field: the cache returns stored bodies, ids are spliced in. *)
let check_cache_identity lines =
  let body line =
    match String.index_opt line ',' with
    | Some _ ->
      let marker = "\"req\"" in
      let rec find i =
        if i + String.length marker > String.length line then
          bad "no req field in %S" line
        else if String.sub line i (String.length marker) = marker then
          String.sub line i (String.length line - i)
        else find (i + 1)
      in
      find 0
    | None -> bad "malformed response line %S" line
  in
  let nth n = List.nth lines (n - 1) in
  if body (nth 2) <> body (nth 13) then
    bad "line 13: cached repeat of r2 is not byte-identical after the id"

let () =
  let file =
    match Sys.argv with
    | [| _; file |] -> file
    | _ ->
      prerr_endline "usage: validate_serve TRANSCRIPT";
      exit 2
  in
  let lines =
    In_channel.with_open_text file In_channel.input_lines
    |> List.filter (fun l -> String.trim l <> "")
  in
  match
    if List.length lines <> List.length expected then
      bad "expected %d responses, got %d (dropped or duplicated lines)"
        (List.length expected) (List.length lines);
    List.iteri
      (fun i (line, e) -> validate_line (i + 1) line e)
      (List.combine lines expected);
    check_cache_identity lines
  with
  | () -> Printf.printf "%s: ok (%d responses)\n" file (List.length lines)
  | exception Bad msg ->
    Printf.eprintf "%s: INVALID serve transcript: %s\n" file msg;
    exit 1
