(* Shape validator for the serve-smoke transcript: the responses the
   pipe-mode server (`swap_cli serve`) produced for the fixed request
   script in serve_requests.txt.

   Used by the @serve-smoke alias.  Each expected line is pinned —
   status, error code, id echo, payload shape — so neither the codec,
   the engine dispatch, the error taxonomy, nor the pipe transport can
   drift silently.  The final line repeats request "r2" under a new id
   and must come back byte-identical after the id field: that is the
   result cache's byte-identity contract, checked in CI on every
   build. *)

open Obs.Json_parse

type expect = {
  id : string option;  (** Expected id echo; [None] = JSON null. *)
  req : string option;  (** Expected req echo (absent on rejected requests). *)
  status : string;
  code : string option;  (** Error code when status = "error". *)
  check : string -> json -> unit;  (** Extra payload checks (path, result). *)
}

let no_check _ _ = ()

let num_in path v ~lo ~hi =
  let x = as_num path v in
  if x < lo || x > hi then bad "%s: %g outside [%g, %g]" path x lo hi

let check_interval path v =
  match v with
  | Null -> ()
  | Arr [ Num lo; Num hi ] ->
    if not (lo <= hi) then bad "%s: [%g, %g] is not ordered" path lo hi
  | _ -> bad "%s: expected [lo, hi] or null" path

let check_cutoffs path result =
  let p_t3_low = as_num (path ^ ".p_t3_low") (member path result "p_t3_low") in
  if not (p_t3_low > 0.) then bad "%s.p_t3_low: must be > 0" path;
  check_interval (path ^ ".t2_band") (member path result "t2_band");
  check_interval (path ^ ".p_star_band") (member path result "p_star_band")

let check_sr path result =
  num_in (path ^ ".sr") (member path result "sr") ~lo:0. ~hi:1.

let check_quote path result =
  let p_star = as_num (path ^ ".p_star") (member path result "p_star") in
  if not (p_star > 0.) then bad "%s.p_star: must be > 0" path;
  num_in (path ^ ".sr") (member path result "sr") ~lo:0. ~hi:1.

(* The health payload reports live engine state, so it sits outside the
   byte-identity contract — but the pipe run is sequential and
   deterministic, so the interesting fields are still pinnable: a
   zero-worker engine with an idle queue, no crashes, and a cache that
   has both stored entries and served the r13 repeat from them. *)
let check_health path result =
  let num key = as_num (path ^ "." ^ key) (member path result key) in
  let pin key want =
    let got = num key in
    if got <> want then bad "%s.%s: %g, want %g" path key got want
  in
  pin "workers" 0.;
  pin "alive" 0.;
  pin "queue_depth" 0.;
  pin "worker_restarts" 0.;
  pin "internal_errors" 0.;
  if num "queue_capacity" < 1. then bad "%s.queue_capacity: must be >= 1" path;
  (match member path result "draining" with
  | Bool false -> ()
  | _ -> bad "%s.draining: must be false mid-script" path);
  let cache = member path result "cache" in
  let cpath = path ^ ".cache" in
  let cnum key = as_num (cpath ^ "." ^ key) (member cpath cache key) in
  if cnum "entries" < 1. then bad "%s.entries: cache should hold bodies" cpath;
  if cnum "hits" < 1. then
    bad "%s.hits: the r13 repeat must have hit the cache" cpath;
  List.iter
    (fun key ->
      if cnum key < 0. then bad "%s.%s: negative" cpath key)
    [ "capacity"; "misses"; "evictions" ]

let check_sweep n path result =
  let arr key =
    let l = as_arr (path ^ "." ^ key) (member path result key) in
    if List.length l <> n then
      bad "%s.%s: expected %d points, got %d" path key n (List.length l);
    l
  in
  ignore (arr "p_stars");
  List.iteri
    (fun i v -> num_in (Printf.sprintf "%s.srs[%d]" path i) v ~lo:0. ~hi:1.)
    (arr "srs")

let expected =
  let ok ?id ?req check = { id; req; status = "ok"; code = None; check } in
  let err ?id ?req code =
    { id; req; status = "error"; code = Some code; check = no_check }
  in
  [
    ok ~id:"r1" ~req:"cutoffs" check_cutoffs;
    ok ~id:"r2" ~req:"success_rate" check_sr;
    ok ~id:"r3" ~req:"success_rate" check_sr;
    ok ~id:"r4" ~req:"success_rate" check_sr;
    ok ~id:"r5" ~req:"quote" check_quote;
    err ~id:"r6" ~req:"quote" "outside_grid";
    err ~id:"r7" ~req:"quote" "non_positive_spot";
    ok ~id:"r8" ~req:"sweep" (check_sweep 5);
    err "parse_error";
    err ~id:"r10" "invalid_params";
    err ~id:"r11" "parse_error";
    err ~id:"r12" "invalid_params";
    ok ~id:"r13" ~req:"success_rate" check_sr;
    ok ~id:"r14" ~req:"health" check_health;
  ]

let validate_line lineno line (e : expect) =
  let path key = Printf.sprintf "line %d: %s" lineno key in
  let root =
    try parse line with Bad msg -> bad "line %d: %s" lineno msg
  in
  let schema = as_str (path "schema") (member (path "resp") root "schema") in
  if schema <> "htlc-serve/v1" then
    bad "line %d: unknown schema %S" lineno schema;
  (match (member (path "resp") root "id", e.id) with
  | Null, None -> ()
  | Str got, Some want when got = want -> ()
  | _, Some want -> bad "line %d: id was not echoed (want %S)" lineno want
  | _, None -> bad "line %d: expected a null id" lineno);
  (match (member_opt root "req", e.req) with
  | Some (Str got), Some want when got = want -> ()
  | None, None -> ()
  | _, Some want -> bad "line %d: req must echo %S" lineno want
  | Some _, None -> bad "line %d: unexpected req on a rejected request" lineno);
  let status = as_str (path "status") (member (path "resp") root "status") in
  if status <> e.status then
    bad "line %d: status %S, want %S" lineno status e.status;
  match e.code with
  | Some code ->
    let got = as_str (path "error") (member (path "resp") root "error") in
    if got <> code then bad "line %d: error code %S, want %S" lineno got code;
    if as_str (path "message") (member (path "resp") root "message") = "" then
      bad "line %d: empty error message" lineno
  | None ->
    e.check (path "result") (member (path "resp") root "result")

(* The repeat of r2 under id r13 must be byte-identical past the id
   field: the cache returns stored bodies, ids are spliced in. *)
let check_cache_identity lines =
  let body line =
    match String.index_opt line ',' with
    | Some _ ->
      let marker = "\"req\"" in
      let rec find i =
        if i + String.length marker > String.length line then
          bad "no req field in %S" line
        else if String.sub line i (String.length marker) = marker then
          String.sub line i (String.length line - i)
        else find (i + 1)
      in
      find 0
    | None -> bad "malformed response line %S" line
  in
  let nth n = List.nth lines (n - 1) in
  if body (nth 2) <> body (nth 13) then
    bad "line 13: cached repeat of r2 is not byte-identical after the id"

(* `validate_serve --chaos BENCH_JSON`: the chaos-serve gate.  Pins the
   resilience invariants of a fault-injected run — the only acceptable
   degradation under the seeded fault schedule is retries, never wrong
   bytes, lost tickets, or unsupervised worker death — plus the hard
   wall-clock budget that turns a hang into a fast, explicit failure. *)
let validate_chaos file =
  let root = parse (In_channel.with_open_text file In_channel.input_all) in
  let schema = as_str "schema" (member "doc" root "schema") in
  if schema <> "htlc-bench/v1" then bad "unknown schema %S" schema;
  let c = member "doc" root "chaos" in
  let num key = as_num ("chaos." ^ key) (member "chaos" c key) in
  let requests = num "requests" in
  if requests < 1. then bad "chaos.requests: empty run proves nothing";
  let success_rate = num "success_rate" in
  if num "succeeded" > requests then bad "chaos.succeeded exceeds requests";
  if success_rate < 0.99 then
    bad "chaos.success_rate: %.4f < 0.99 -- retries failed to absorb the \
         fault schedule"
      success_rate;
  if num "mismatches" <> 0. then
    bad "chaos.mismatches: %g responses were not byte-identical to the \
         zero-worker reference"
      (num "mismatches");
  if num "stranded" <> 0. then
    bad "chaos.stranded: %g tickets never resolved" (num "stranded");
  if num "worker_restarts" < 1. then
    bad "chaos.worker_restarts: the injected crash was not supervised";
  let wall = num "wall_s" and budget = num "budget_s" in
  if wall > budget then
    bad "chaos.wall_s: %.3fs exceeded the %.1fs budget" wall budget;
  List.iter
    (fun key ->
      if num key < 0. then bad "chaos.%s: negative" key)
    [ "retries"; "reconnects"; "failures"; "internal_errors";
      "connection_errors"; "chaos_ops" ];
  Printf.printf
    "%s: chaos ok (%.0f requests, success %.4f, %.0f retries, %.0f \
     restarts)\n"
    file requests success_rate (num "retries") (num "worker_restarts")

let read_transcript file =
  In_channel.with_open_text file In_channel.input_lines
  |> List.filter (fun l -> String.trim l <> "")

let validate_transcript file =
  let lines = read_transcript file in
  if List.length lines <> List.length expected then
    bad "expected %d responses, got %d (dropped or duplicated lines)"
      (List.length expected) (List.length lines);
  List.iteri
    (fun i (line, e) -> validate_line (i + 1) line e)
    (List.combine lines expected);
  check_cache_identity lines;
  Printf.printf "%s: ok (%d responses)\n" file (List.length lines)

(* `validate_serve --reactor JSON_T BIN_T`: the reactor-smoke gate.
   JSON_T is the full transcript served over the socket reactor in one
   pipelined burst — validated with exactly the pipe-mode pins above.
   BIN_T is the htlc-serve/b1 leg: every script line the request codec
   can decode (the four rejected lines cannot be framed), re-encoded in
   binary on a fresh connection against the same engine.  Each binary
   row except health must be byte-identical to its JSON counterpart —
   one cache, one response assembly, two wire formats.  Health reports
   live cache state that the JSON leg's traffic has advanced, so it is
   shape-pinned instead. *)

(* 1-indexed script rows that survive Request.decode (see
   serve_requests.txt; rows 9-12 are the rejection cases) — keep in
   sync with [expected] above. *)
let binary_row_sources = [ 1; 2; 3; 4; 5; 6; 7; 8; 13; 14 ]

let validate_reactor json_file bin_file =
  validate_transcript json_file;
  let json_lines = read_transcript json_file in
  let bin_lines = read_transcript bin_file in
  if List.length bin_lines <> List.length binary_row_sources then
    bad "expected %d binary rows, got %d (dropped or duplicated frames)"
      (List.length binary_row_sources)
      (List.length bin_lines);
  List.iteri
    (fun i (row, src) ->
      if src = List.length expected then
        (* The health row: same pins as the JSON leg's. *)
        validate_line (i + 1) row (List.nth expected (src - 1))
      else if row <> List.nth json_lines (src - 1) then
        bad "binary row %d: not byte-identical to json row %d" (i + 1) src)
    (List.combine bin_lines binary_row_sources);
  Printf.printf
    "%s: ok (%d binary rows byte-identical to the json leg; health \
     shape-pinned)\n"
    bin_file
    (List.length bin_lines - 1)

let () =
  let mode =
    match Sys.argv with
    | [| _; "--chaos"; file |] -> `Chaos file
    | [| _; "--reactor"; json_file; bin_file |] -> `Reactor (json_file, bin_file)
    | [| _; file |] -> `Transcript file
    | _ ->
      prerr_endline
        "usage: validate_serve TRANSCRIPT\n\
        \       validate_serve --chaos BENCH_JSON\n\
        \       validate_serve --reactor JSON_TRANSCRIPT BIN_TRANSCRIPT";
      exit 2
  in
  match
    match mode with
    | `Chaos file -> validate_chaos file
    | `Transcript file -> validate_transcript file
    | `Reactor (json_file, bin_file) -> validate_reactor json_file bin_file
  with
  | () -> ()
  | exception Bad msg ->
    let file =
      match mode with `Chaos f | `Transcript f | `Reactor (f, _) -> f
    in
    Printf.eprintf "%s: INVALID serve %s: %s\n" file
      (match mode with
      | `Chaos _ -> "chaos run"
      | `Transcript _ -> "transcript"
      | `Reactor _ -> "reactor run")
      msg;
    exit 1
