(* Shape validator for the serve-smoke transcript: the responses the
   pipe-mode server (`swap_cli serve`) produced for the fixed request
   script in serve_requests.txt.

   Used by the @serve-smoke alias.  Each expected line is pinned —
   status, error code, id echo, payload shape — so neither the codec,
   the engine dispatch, the error taxonomy, nor the pipe transport can
   drift silently.  The final line repeats request "r2" under a new id
   and must come back byte-identical after the id field: that is the
   result cache's byte-identity contract, checked in CI on every
   build. *)

open Obs.Json_parse

type expect = {
  id : string option;  (** Expected id echo; [None] = JSON null. *)
  req : string option;  (** Expected req echo (absent on rejected requests). *)
  status : string;
  code : string option;  (** Error code when status = "error". *)
  check : string -> json -> unit;  (** Extra payload checks (path, result). *)
}

let no_check _ _ = ()

let num_in path v ~lo ~hi =
  let x = as_num path v in
  if x < lo || x > hi then bad "%s: %g outside [%g, %g]" path x lo hi

let check_interval path v =
  match v with
  | Null -> ()
  | Arr [ Num lo; Num hi ] ->
    if not (lo <= hi) then bad "%s: [%g, %g] is not ordered" path lo hi
  | _ -> bad "%s: expected [lo, hi] or null" path

let check_cutoffs path result =
  let p_t3_low = as_num (path ^ ".p_t3_low") (member path result "p_t3_low") in
  if not (p_t3_low > 0.) then bad "%s.p_t3_low: must be > 0" path;
  check_interval (path ^ ".t2_band") (member path result "t2_band");
  check_interval (path ^ ".p_star_band") (member path result "p_star_band")

let check_sr path result =
  num_in (path ^ ".sr") (member path result "sr") ~lo:0. ~hi:1.

let check_quote path result =
  let p_star = as_num (path ^ ".p_star") (member path result "p_star") in
  if not (p_star > 0.) then bad "%s.p_star: must be > 0" path;
  num_in (path ^ ".sr") (member path result "sr") ~lo:0. ~hi:1.

(* The health payload reports live engine state, so it sits outside the
   byte-identity contract — but the pipe run is sequential and
   deterministic, so the interesting fields are still pinnable: a
   zero-worker engine with an idle queue, no crashes, and a cache that
   has both stored entries and served the r13 repeat from them. *)
let check_health path result =
  let num key = as_num (path ^ "." ^ key) (member path result key) in
  let pin key want =
    let got = num key in
    if got <> want then bad "%s.%s: %g, want %g" path key got want
  in
  pin "workers" 0.;
  pin "alive" 0.;
  pin "queue_depth" 0.;
  pin "worker_restarts" 0.;
  pin "internal_errors" 0.;
  if num "queue_capacity" < 1. then bad "%s.queue_capacity: must be >= 1" path;
  (match member path result "draining" with
  | Bool false -> ()
  | _ -> bad "%s.draining: must be false mid-script" path);
  let cache = member path result "cache" in
  let cpath = path ^ ".cache" in
  let cnum key = as_num (cpath ^ "." ^ key) (member cpath cache key) in
  if cnum "entries" < 1. then bad "%s.entries: cache should hold bodies" cpath;
  if cnum "hits" < 1. then
    bad "%s.hits: the r13 repeat must have hit the cache" cpath;
  List.iter
    (fun key ->
      if cnum key < 0. then bad "%s.%s: negative" cpath key)
    [ "capacity"; "misses"; "evictions" ]

let check_sweep n path result =
  let arr key =
    let l = as_arr (path ^ "." ^ key) (member path result key) in
    if List.length l <> n then
      bad "%s.%s: expected %d points, got %d" path key n (List.length l);
    l
  in
  ignore (arr "p_stars");
  List.iteri
    (fun i v -> num_in (Printf.sprintf "%s.srs[%d]" path i) v ~lo:0. ~hi:1.)
    (arr "srs")

let expected =
  let ok ?id ?req check = { id; req; status = "ok"; code = None; check } in
  let err ?id ?req code =
    { id; req; status = "error"; code = Some code; check = no_check }
  in
  [
    ok ~id:"r1" ~req:"cutoffs" check_cutoffs;
    ok ~id:"r2" ~req:"success_rate" check_sr;
    ok ~id:"r3" ~req:"success_rate" check_sr;
    ok ~id:"r4" ~req:"success_rate" check_sr;
    ok ~id:"r5" ~req:"quote" check_quote;
    err ~id:"r6" ~req:"quote" "outside_grid";
    err ~id:"r7" ~req:"quote" "non_positive_spot";
    ok ~id:"r8" ~req:"sweep" (check_sweep 5);
    err "parse_error";
    err ~id:"r10" "invalid_params";
    err ~id:"r11" "parse_error";
    err ~id:"r12" "invalid_params";
    ok ~id:"r13" ~req:"success_rate" check_sr;
    ok ~id:"r14" ~req:"health" check_health;
  ]

let validate_line lineno line (e : expect) =
  let path key = Printf.sprintf "line %d: %s" lineno key in
  let root =
    try parse line with Bad msg -> bad "line %d: %s" lineno msg
  in
  let schema = as_str (path "schema") (member (path "resp") root "schema") in
  if schema <> "htlc-serve/v1" then
    bad "line %d: unknown schema %S" lineno schema;
  (match (member (path "resp") root "id", e.id) with
  | Null, None -> ()
  | Str got, Some want when got = want -> ()
  | _, Some want -> bad "line %d: id was not echoed (want %S)" lineno want
  | _, None -> bad "line %d: expected a null id" lineno);
  (match (member_opt root "req", e.req) with
  | Some (Str got), Some want when got = want -> ()
  | None, None -> ()
  | _, Some want -> bad "line %d: req must echo %S" lineno want
  | Some _, None -> bad "line %d: unexpected req on a rejected request" lineno);
  let status = as_str (path "status") (member (path "resp") root "status") in
  if status <> e.status then
    bad "line %d: status %S, want %S" lineno status e.status;
  match e.code with
  | Some code ->
    let got = as_str (path "error") (member (path "resp") root "error") in
    if got <> code then bad "line %d: error code %S, want %S" lineno got code;
    if as_str (path "message") (member (path "resp") root "message") = "" then
      bad "line %d: empty error message" lineno
  | None ->
    e.check (path "result") (member (path "resp") root "result")

(* The repeat of r2 under id r13 must be byte-identical past the id
   field: the cache returns stored bodies, ids are spliced in. *)
let check_cache_identity lines =
  let body line =
    match String.index_opt line ',' with
    | Some _ ->
      let marker = "\"req\"" in
      let rec find i =
        if i + String.length marker > String.length line then
          bad "no req field in %S" line
        else if String.sub line i (String.length marker) = marker then
          String.sub line i (String.length line - i)
        else find (i + 1)
      in
      find 0
    | None -> bad "malformed response line %S" line
  in
  let nth n = List.nth lines (n - 1) in
  if body (nth 2) <> body (nth 13) then
    bad "line 13: cached repeat of r2 is not byte-identical after the id"

(* `validate_serve --chaos BENCH_JSON`: the chaos-serve gate.  Pins the
   resilience invariants of a fault-injected run — the only acceptable
   degradation under the seeded fault schedule is retries, never wrong
   bytes, lost tickets, or unsupervised worker death — plus the hard
   wall-clock budget that turns a hang into a fast, explicit failure. *)
let validate_chaos file =
  let root = parse (In_channel.with_open_text file In_channel.input_all) in
  let schema = as_str "schema" (member "doc" root "schema") in
  if schema <> "htlc-bench/v1" then bad "unknown schema %S" schema;
  let c = member "doc" root "chaos" in
  let num key = as_num ("chaos." ^ key) (member "chaos" c key) in
  let requests = num "requests" in
  if requests < 1. then bad "chaos.requests: empty run proves nothing";
  let success_rate = num "success_rate" in
  if num "succeeded" > requests then bad "chaos.succeeded exceeds requests";
  if success_rate < 0.99 then
    bad "chaos.success_rate: %.4f < 0.99 -- retries failed to absorb the \
         fault schedule"
      success_rate;
  if num "mismatches" <> 0. then
    bad "chaos.mismatches: %g responses were not byte-identical to the \
         zero-worker reference"
      (num "mismatches");
  if num "stranded" <> 0. then
    bad "chaos.stranded: %g tickets never resolved" (num "stranded");
  if num "worker_restarts" < 1. then
    bad "chaos.worker_restarts: the injected crash was not supervised";
  let wall = num "wall_s" and budget = num "budget_s" in
  if wall > budget then
    bad "chaos.wall_s: %.3fs exceeded the %.1fs budget" wall budget;
  List.iter
    (fun key ->
      if num key < 0. then bad "chaos.%s: negative" key)
    [ "retries"; "reconnects"; "failures"; "internal_errors";
      "connection_errors"; "chaos_ops" ];
  Printf.printf
    "%s: chaos ok (%.0f requests, success %.4f, %.0f retries, %.0f \
     restarts)\n"
    file requests success_rate (num "retries") (num "worker_restarts")

let read_transcript file =
  In_channel.with_open_text file In_channel.input_lines
  |> List.filter (fun l -> String.trim l <> "")

let validate_transcript file =
  let lines = read_transcript file in
  if List.length lines <> List.length expected then
    bad "expected %d responses, got %d (dropped or duplicated lines)"
      (List.length expected) (List.length lines);
  List.iteri
    (fun i (line, e) -> validate_line (i + 1) line e)
    (List.combine lines expected);
  check_cache_identity lines;
  Printf.printf "%s: ok (%d responses)\n" file (List.length lines)

(* `validate_serve --reactor JSON_T BIN_T`: the reactor-smoke gate.
   JSON_T is the full transcript served over the socket reactor in one
   pipelined burst — validated with exactly the pipe-mode pins above.
   BIN_T is the htlc-serve/b1 leg: every script line the request codec
   can decode (the four rejected lines cannot be framed), re-encoded in
   binary on a fresh connection against the same engine.  Each binary
   row except health must be byte-identical to its JSON counterpart —
   one cache, one response assembly, two wire formats.  Health reports
   live cache state that the JSON leg's traffic has advanced, so it is
   shape-pinned instead. *)

(* 1-indexed script rows that survive Request.decode (see
   serve_requests.txt; rows 9-12 are the rejection cases) — keep in
   sync with [expected] above. *)
let binary_row_sources = [ 1; 2; 3; 4; 5; 6; 7; 8; 13; 14 ]

let validate_reactor json_file bin_file =
  validate_transcript json_file;
  let json_lines = read_transcript json_file in
  let bin_lines = read_transcript bin_file in
  if List.length bin_lines <> List.length binary_row_sources then
    bad "expected %d binary rows, got %d (dropped or duplicated frames)"
      (List.length binary_row_sources)
      (List.length bin_lines);
  List.iteri
    (fun i (row, src) ->
      if src = List.length expected then
        (* The health row: same pins as the JSON leg's. *)
        validate_line (i + 1) row (List.nth expected (src - 1))
      else if row <> List.nth json_lines (src - 1) then
        bad "binary row %d: not byte-identical to json row %d" (i + 1) src)
    (List.combine bin_lines binary_row_sources);
  Printf.printf
    "%s: ok (%d binary rows byte-identical to the json leg; health \
     shape-pinned)\n"
    bin_file
    (List.length bin_lines - 1)

(* `validate_serve --telemetry STATS RECORDER`: the telemetry-smoke
   gate.  STATS holds two `stats` responses from one single-shard
   reactor run with sampling forced to 1-in-1 — one served over JSON,
   one over htlc-serve/b1.  Pins the stats document shape (telemetry
   switches, rate window, per-kind x codec latency quantiles, stage
   breakdown, recorder and trace health), that both codecs produced
   traffic, that quantiles are ordered, and that the second response
   observed strictly more finished requests than the first (the first
   stats request itself).  RECORDER is the flight-recorder dump: a
   header line whose counts must be internally consistent, then one
   request record per held slot — ascending seq, known kinds/codecs,
   every record sampled (rate 1), every record carrying a total
   duration. *)

let known_kinds =
  [
    "cutoffs"; "success_rate"; "sweep"; "quote"; "health"; "stats"; "route";
    "error";
  ]

let known_codecs = [ "json"; "binary"; "pipe"; "queue" ]

let stage_keys =
  [ "decode_ns"; "cache_ns"; "queue_ns"; "compute_ns"; "encode_ns";
    "flush_ns"; "total_ns" ]

let check_quantiles path obj =
  let num key = as_num (path ^ "." ^ key) (member path obj key) in
  if num "count" < 1. then bad "%s.count: must be >= 1" path;
  let window = num "window" in
  if window < 1. then bad "%s.window: must be >= 1" path;
  if window > num "count" then bad "%s.window: exceeds count" path;
  let qs = List.map num [ "p50_us"; "p90_us"; "p99_us"; "p999_us" ] in
  List.iter (fun q -> if q < 0. then bad "%s: negative quantile" path) qs;
  let rec ordered = function
    | a :: (b :: _ as rest) ->
      if a > b then bad "%s: quantiles are not monotone" path else ordered rest
    | _ -> ()
  in
  ordered qs

let validate_stats_line lineno line ~id =
  let path key = Printf.sprintf "stats line %d: %s" lineno key in
  let root =
    try parse line with Bad msg -> bad "stats line %d: %s" lineno msg
  in
  if as_str (path "schema") (member (path "resp") root "schema")
     <> "htlc-serve/v1"
  then bad "stats line %d: wrong schema" lineno;
  (match member (path "resp") root "id" with
  | Str got when got = id -> ()
  | _ -> bad "stats line %d: id was not echoed (want %S)" lineno id);
  if as_str (path "req") (member (path "resp") root "req") <> "stats" then
    bad "stats line %d: req must echo \"stats\"" lineno;
  if as_str (path "status") (member (path "resp") root "status") <> "ok" then
    bad "stats line %d: status must be ok" lineno;
  let r = member (path "resp") root "result" in
  let sect key = member (path key) r key in
  let num sect_name sect key =
    as_num (path (sect_name ^ "." ^ key)) (member (path sect_name) sect key)
  in
  let telemetry = sect "telemetry" in
  (match member (path "telemetry") telemetry "enabled" with
  | Bool true -> ()
  | _ -> bad "stats line %d: telemetry.enabled must be true" lineno);
  if num "telemetry" telemetry "sample_every" <> 1. then
    bad "stats line %d: the smoke forces sample_every = 1" lineno;
  let rate = sect "rate" in
  let total = num "rate" rate "total" in
  if total < 1. then bad "stats line %d: rate.total must be >= 1" lineno;
  if num "rate" rate "rps" < 0. then bad "stats line %d: negative rps" lineno;
  let latency = as_obj (path "latency") (sect "latency") in
  if latency = [] then bad "stats line %d: latency section is empty" lineno;
  List.iter
    (fun (key, row) ->
      (match String.split_on_char '.' key with
      | [ kind; codec ]
        when List.mem kind known_kinds && List.mem codec known_codecs ->
        ()
      | _ -> bad "stats line %d: unknown latency key %S" lineno key);
      check_quantiles (path ("latency." ^ key)) row)
    latency;
  List.iter
    (fun codec ->
      if
        not
          (List.exists
             (fun (key, _) ->
               String.length key > String.length codec
               && String.sub key
                    (String.length key - String.length codec - 1)
                    (String.length codec + 1)
                  = "." ^ codec)
             latency)
      then bad "stats line %d: no latency entry for the %s codec" lineno codec)
    [ "json"; "binary" ];
  let stages = as_obj (path "stages") (sect "stages") in
  List.iter
    (fun stage ->
      match List.assoc_opt stage stages with
      | Some row ->
        check_quantiles (path ("stages." ^ stage)) row;
        if num ("stages." ^ stage) row "mean_us" < 0. then
          bad "stats line %d: stages.%s.mean_us negative" lineno stage
      | None -> bad "stats line %d: stage %S missing" lineno stage)
    [ "decode"; "compute"; "encode"; "flush"; "total" ];
  let recorder = sect "recorder" in
  let capacity = num "recorder" recorder "capacity" in
  let recorded = num "recorder" recorder "recorded" in
  let pushed = num "recorder" recorder "pushed" in
  if capacity <> 64. then
    bad "stats line %d: the smoke bounds the recorder at 64" lineno;
  if recorded < 1. || recorded > capacity then
    bad "stats line %d: recorder.recorded outside [1, capacity]" lineno;
  if num "recorder" recorder "dropped" <> pushed -. recorded then
    bad "stats line %d: recorder.dropped must equal pushed - recorded" lineno;
  let trace = sect "trace" in
  if num "trace" trace "spans" < 1. then
    bad "stats line %d: 1-in-1 sampling must have buffered spans" lineno;
  if num "trace" trace "dropped" < 0. then
    bad "stats line %d: trace.dropped negative" lineno;
  total

let validate_recorder file =
  let lines = read_transcript file in
  let header, records =
    match lines with
    | h :: r -> (h, r)
    | [] -> bad "empty recorder dump"
  in
  let root = try parse header with Bad msg -> bad "header: %s" msg in
  let num key = as_num ("header." ^ key) (member "header" root key) in
  if as_str "header.schema" (member "header" root "schema") <> "htlc-obs/v1"
  then bad "header: wrong schema";
  if as_str "header.type" (member "header" root "type") <> "recorder" then
    bad "header: type must be \"recorder\"";
  if as_str "header.reason" (member "header" root "reason") = "" then
    bad "header: empty reason";
  if num "recorded" <> float_of_int (List.length records) then
    bad "header.recorded: %g, but the dump holds %d records" (num "recorded")
      (List.length records);
  if num "recorded" > num "capacity" then bad "header: recorded > capacity";
  if num "dropped" <> num "pushed" -. num "recorded" then
    bad "header.dropped: must equal pushed - recorded";
  let last_seq = ref (-1.) in
  List.iteri
    (fun i line ->
      let n = i + 2 in
      let path key = Printf.sprintf "record line %d: %s" n key in
      let root =
        try parse line with Bad msg -> bad "record line %d: %s" n msg
      in
      let str key = as_str (path key) (member (path key) root key) in
      if str "schema" <> "htlc-obs/v1" then bad "record line %d: schema" n;
      if str "type" <> "request" then bad "record line %d: type" n;
      let seq = as_num (path "seq") (member (path "seq") root "seq") in
      if seq <= !last_seq then
        bad "record line %d: seq %g not ascending" n seq;
      last_seq := seq;
      if not (List.mem (str "kind") known_kinds) then
        bad "record line %d: unknown kind %S" n (str "kind");
      if not (List.mem (str "codec") known_codecs) then
        bad "record line %d: unknown codec %S" n (str "codec");
      if str "status" = "" then bad "record line %d: empty status" n;
      (match member (path "sampled") root "sampled" with
      | Bool true -> ()
      | _ -> bad "record line %d: every record must be sampled at rate 1" n);
      if as_num (path "total_ns") (member (path "total_ns") root "total_ns")
         < 0.
      then bad "record line %d: negative total_ns" n;
      let stages = as_obj (path "stages") (member (path "stages") root "stages") in
      if not (List.mem_assoc "total_ns" stages) then
        bad "record line %d: stages must include total_ns" n;
      List.iter
        (fun (key, v) ->
          if not (List.mem key stage_keys) then
            bad "record line %d: unknown stage %S" n key;
          if as_num (path ("stages." ^ key)) v < 0. then
            bad "record line %d: negative stage %s" n key)
        stages)
    records;
  List.length records

let validate_telemetry stats_file recorder_file =
  let stats_lines = read_transcript stats_file in
  let t1, t2 =
    match stats_lines with
    | [ a; b ] ->
      ( validate_stats_line 1 a ~id:"stats-json",
        validate_stats_line 2 b ~id:"stats-b1" )
    | _ -> bad "expected exactly 2 stats responses, got %d"
             (List.length stats_lines)
  in
  (* The single-shard smoke finalises the first stats request before
     the second is read, so the totals must strictly advance. *)
  if not (t2 > t1) then
    bad "stats line 2: rate.total %g did not advance past line 1's %g" t2 t1;
  Printf.printf "%s: ok (2 stats responses, both codecs)\n" stats_file;
  let records = validate_recorder recorder_file in
  Printf.printf "%s: ok (recorder dump, %d records)\n" recorder_file records

let () =
  let mode =
    match Sys.argv with
    | [| _; "--chaos"; file |] -> `Chaos file
    | [| _; "--reactor"; json_file; bin_file |] -> `Reactor (json_file, bin_file)
    | [| _; "--telemetry"; stats_file; recorder_file |] ->
      `Telemetry (stats_file, recorder_file)
    | [| _; file |] -> `Transcript file
    | _ ->
      prerr_endline
        "usage: validate_serve TRANSCRIPT\n\
        \       validate_serve --chaos BENCH_JSON\n\
        \       validate_serve --reactor JSON_TRANSCRIPT BIN_TRANSCRIPT\n\
        \       validate_serve --telemetry STATS RECORDER";
      exit 2
  in
  match
    match mode with
    | `Chaos file -> validate_chaos file
    | `Transcript file -> validate_transcript file
    | `Reactor (json_file, bin_file) -> validate_reactor json_file bin_file
    | `Telemetry (stats_file, recorder_file) ->
      validate_telemetry stats_file recorder_file
  with
  | () -> ()
  | exception Bad msg ->
    let file =
      match mode with
      | `Chaos f | `Transcript f | `Reactor (f, _) | `Telemetry (f, _) -> f
    in
    Printf.eprintf "%s: INVALID serve %s: %s\n" file
      (match mode with
      | `Chaos _ -> "chaos run"
      | `Transcript _ -> "transcript"
      | `Reactor _ -> "reactor run"
      | `Telemetry _ -> "telemetry run")
      msg;
    exit 1
