(* Command-line interface to the atomic-swap game library.

   Subcommands:
     cutoffs        decision thresholds for a parameterisation
     success-rate   analytic SR, optionally with collateral
     sweep          SR across a range of exchange rates
     simulate       Monte-Carlo estimate under a chosen policy
     protocol       run one swap end-to-end on the chain simulator
     experiment     regenerate a paper table/figure (or all)
     serve          long-lived htlc-serve/v1 service (pipe or socket) *)

open Cmdliner

(* --- shared parameter flags ------------------------------------------- *)

let params_term =
  let alpha_a =
    Arg.(value & opt float 0.3 & info [ "alpha-a" ] ~doc:"Alice's success premium.")
  in
  let alpha_b =
    Arg.(value & opt float 0.3 & info [ "alpha-b" ] ~doc:"Bob's success premium.")
  in
  let r_a =
    Arg.(value & opt float 0.01 & info [ "r-a" ] ~doc:"Alice's hourly discount rate.")
  in
  let r_b =
    Arg.(value & opt float 0.01 & info [ "r-b" ] ~doc:"Bob's hourly discount rate.")
  in
  let tau_a =
    Arg.(value & opt float 3. & info [ "tau-a" ] ~doc:"Chain_a confirmation time (h).")
  in
  let tau_b =
    Arg.(value & opt float 4. & info [ "tau-b" ] ~doc:"Chain_b confirmation time (h).")
  in
  let eps_b =
    Arg.(value & opt float 1. & info [ "eps-b" ] ~doc:"Chain_b mempool delay (h).")
  in
  let p0 = Arg.(value & opt float 2. & info [ "p0" ] ~doc:"Spot price of Token_b.") in
  let mu = Arg.(value & opt float 0.002 & info [ "mu" ] ~doc:"Hourly drift.") in
  let sigma =
    Arg.(value & opt float 0.1 & info [ "sigma" ] ~doc:"Hourly volatility.")
  in
  let build alpha_a alpha_b r_a r_b tau_a tau_b eps_b p0 mu sigma =
    Swap.Params.create
      ~alice:{ Swap.Params.alpha = alpha_a; r = r_a }
      ~bob:{ Swap.Params.alpha = alpha_b; r = r_b }
      ~tau_a ~tau_b ~eps_b ~p0 ~mu ~sigma ()
  in
  Term.(
    const build $ alpha_a $ alpha_b $ r_a $ r_b $ tau_a $ tau_b $ eps_b $ p0
    $ mu $ sigma)

let p_star_term =
  Arg.(value & opt float 2. & info [ "p-star" ] ~doc:"Agreed exchange rate.")

let q_term =
  Arg.(value & opt float 0. & info [ "q" ] ~doc:"Symmetric collateral deposit.")

let jobs_term =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for parallel sections (Monte-Carlo chunks, \
           experiment fan-out).  Defaults to the pool's global setting: \
           $(b,HTLC_JOBS) when set, otherwise the machine's recommended \
           domain count.  Results are bit-identical for any value.")

(* --- observability flags ------------------------------------------------ *)

let metrics_term =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "When the command finishes, print an $(b,htlc-obs/v1) metrics \
           snapshot (one-line JSON) to stderr: pool and Monte-Carlo \
           counters, cutoff-cache hits/misses/evictions, chain fault \
           counters, latency histograms.")

let trace_out_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Enable span tracing and, when the command finishes, write the \
           finished spans to $(docv) as JSONL ($(b,htlc-obs/v1), one span \
           per line).")

(* Shared observability epilogue: tracing is switched on up front when a
   trace file was requested; artefacts are written even if the command
   fails.  The metrics snapshot goes to stderr so it never mixes with a
   command's stdout (CSV rows, experiment reports). *)
let with_obs ~metrics ~trace_out f =
  if Option.is_some trace_out then Obs.Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Option.iter
        (fun file ->
          Out_channel.with_open_text file Obs.Trace.write_jsonl;
          Printf.eprintf "wrote %s\n" file)
        trace_out;
      if metrics then
        prerr_endline (Obs.Metrics.to_json (Obs.Metrics.snapshot ())))
    f

(* --- cutoffs ------------------------------------------------------------ *)

let cutoffs_cmd =
  let run params p_star q =
    Printf.printf "Parameters: %s\n" (Swap.Params.to_string params);
    Printf.printf "P* = %g, Q = %g\n\n" p_star q;
    if q = 0. then begin
      Printf.printf "t3 cutoff (Eq. 18):   P_t3_low = %.4f\n"
        (Swap.Cutoff.p_t3_low params ~p_star);
      (match Swap.Cutoff.p_t2_band_endpoints params ~p_star with
      | Some (lo, hi) ->
        Printf.printf "t2 band (Eq. 24):     (%.4f, %.4f)\n" lo hi
      | None -> print_endline "t2 band: empty (Bob never continues)");
      match Swap.Cutoff.p_star_band_endpoints params with
      | Some (lo, hi) ->
        Printf.printf "feasible P* (Eq. 29): (%.4f, %.4f)\n" lo hi
      | None -> print_endline "feasible P*: empty (never initiated)"
    end
    else begin
      let c = Swap.Collateral.symmetric params ~q in
      Printf.printf "t3 cutoff (Eq. 34):   P_t3_low,c = %.4f\n"
        (Swap.Collateral.p_t3_low c ~p_star);
      Printf.printf "t2 set:               %s\n"
        (Swap.Intervals.to_string (Swap.Collateral.cont_set_t2 c ~p_star));
      Printf.printf "initiation set:       %s\n"
        (Swap.Intervals.to_string (Swap.Collateral.initiation_set c))
    end
  in
  Cmd.v
    (Cmd.info "cutoffs" ~doc:"Decision thresholds from backward induction.")
    Term.(const run $ params_term $ p_star_term $ q_term)

(* --- success-rate ------------------------------------------------------- *)

let success_cmd =
  let run params p_star q =
    let sr =
      if q = 0. then Swap.Success.analytic params ~p_star
      else
        Swap.Collateral.success_rate
          (Swap.Collateral.symmetric params ~q)
          ~p_star
    in
    Printf.printf "SR(P* = %g, Q = %g) = %.4f\n" p_star q sr
  in
  Cmd.v
    (Cmd.info "success-rate" ~doc:"Analytic success rate (Eq. 31 / Eq. 40).")
    Term.(const run $ params_term $ p_star_term $ q_term)

(* --- sweep --------------------------------------------------------------- *)

let sweep_cmd =
  let lo = Arg.(value & opt float 1.5 & info [ "lo" ] ~doc:"Lowest P*.") in
  let hi = Arg.(value & opt float 2.5 & info [ "hi" ] ~doc:"Highest P*.") in
  let n = Arg.(value & opt int 21 & info [ "n" ] ~doc:"Grid points.") in
  let run params q lo hi n =
    let p_stars = Numerics.Grid.linspace ~lo ~hi ~n in
    Printf.printf "p_star,sr\n";
    Array.iter
      (fun p_star ->
        let sr =
          if q = 0. then Swap.Success.analytic params ~p_star
          else
            Swap.Collateral.success_rate
              (Swap.Collateral.symmetric params ~q)
              ~p_star
        in
        Printf.printf "%.6g,%.6g\n" p_star sr)
      p_stars
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"CSV of SR across exchange rates.")
    Term.(const run $ params_term $ q_term $ lo $ hi $ n)

(* --- simulate ------------------------------------------------------------ *)

let simulate_cmd =
  let trials =
    Arg.(value & opt int 20000 & info [ "trials" ] ~doc:"Monte-Carlo paths.")
  in
  let seed = Arg.(value & opt int 0x51ab & info [ "seed" ] ~doc:"RNG seed.") in
  let policy_name =
    Arg.(
      value
      & opt (enum [ ("rational", `Rational); ("honest", `Honest); ("myopic", `Myopic) ])
          `Rational
      & info [ "policy" ] ~doc:"Agent policy: rational, honest or myopic.")
  in
  let run params p_star q trials seed policy_name jobs metrics trace_out =
    with_obs ~metrics ~trace_out @@ fun () ->
    let result =
      if q > 0. then
        Swap.Montecarlo.run_collateral ~trials ~seed ?jobs
          (Swap.Collateral.symmetric params ~q)
          ~p_star
      else
        let policy =
          match policy_name with
          | `Rational -> Swap.Agent.rational params ~p_star
          | `Honest -> Swap.Agent.honest
          | `Myopic -> Swap.Agent.myopic params ~p_star
        in
        Swap.Montecarlo.run ~trials ~seed ?jobs params ~p_star ~policy
    in
    let lo, hi = result.Swap.Montecarlo.ci95 in
    Printf.printf "trials      %d\n" result.Swap.Montecarlo.trials;
    Printf.printf "initiated   %d\n" result.Swap.Montecarlo.initiated;
    Printf.printf "successes   %d\n" result.Swap.Montecarlo.successes;
    Printf.printf "aborts      t1=%d t2=%d t3=%d\n"
      result.Swap.Montecarlo.abort_t1 result.Swap.Montecarlo.abort_t2
      result.Swap.Montecarlo.abort_t3;
    Printf.printf "SR          %.4f  [%.4f, %.4f]\n" result.Swap.Montecarlo.rate
      lo hi;
    Printf.printf "mean U (A)  %.4f\n" result.Swap.Montecarlo.mean_utility_alice;
    Printf.printf "mean U (B)  %.4f\n" result.Swap.Montecarlo.mean_utility_bob
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:
         "Monte-Carlo simulation of the swap game.  Trials run in \
          fixed-size chunks on the domain pool with per-chunk RNG \
          streams, so the result is identical for any $(b,--jobs).")
    Term.(
      const run $ params_term $ p_star_term $ q_term $ trials $ seed
      $ policy_name $ jobs_term $ metrics_term $ trace_out_term)

(* --- protocol ------------------------------------------------------------ *)

let protocol_cmd =
  let reveal_delay =
    Arg.(
      value & opt float 0.
      & info [ "reveal-delay" ]
          ~doc:"Extra hours before Alice submits her claim (timing attack).")
  in
  let drop =
    Arg.(
      value & opt float 0.
      & info [ "drop" ] ~doc:"Per-transaction drop probability (both chains).")
  in
  let delay_mean =
    Arg.(
      value & opt float 0.
      & info [ "delay-mean" ]
          ~doc:"Mean of the extra confirmation delay (h); 0 disables.")
  in
  let delay_prob =
    Arg.(
      value & opt float 1.
      & info [ "delay-prob" ]
          ~doc:"Probability a transaction suffers the extra delay at all.")
  in
  let reorg =
    Arg.(
      value & opt float 0.
      & info [ "reorg" ] ~doc:"Single-depth reorg probability (both chains).")
  in
  let halt =
    Arg.(
      value
      & opt (some (pair ~sep:',' float float)) None
      & info [ "halt" ] ~docv:"H0,H1"
          ~doc:"Halt both chains over the window [H0, H1).")
  in
  let retries =
    Arg.(
      value & opt int 1
      & info [ "retries" ]
          ~doc:"Max submission attempts per action (1 = no resubmission).")
  in
  let backoff =
    Arg.(
      value & opt float 0.5
      & info [ "backoff" ] ~doc:"Initial resubmission backoff (h); doubles.")
  in
  let slack_t2 =
    Arg.(
      value & opt float 0.
      & info [ "slack-t2" ] ~doc:"Extra hours on Alice's lock leg (delay_t2).")
  in
  let slack_t3 =
    Arg.(
      value & opt float 0.
      & info [ "slack-t3" ] ~doc:"Extra hours on Bob's lock leg (delay_t3).")
  in
  let seed =
    Arg.(value & opt int 0xfeed & info [ "seed" ] ~doc:"Fault/secret RNG seed.")
  in
  let run params p_star q reveal_delay drop delay_mean delay_prob reorg halt
      retries backoff slack_t2 slack_t3 seed metrics trace_out =
    with_obs ~metrics ~trace_out @@ fun () ->
    let faults =
      let delay =
        if delay_mean > 0. then
          Chainsim.Faults.Shifted_exponential
            { mean = delay_mean; cap = 4. *. delay_mean }
        else Chainsim.Faults.No_extra_delay
      in
      let halts = match halt with Some w -> [ w ] | None -> [] in
      Chainsim.Faults.create ~drop_prob:drop ~delay_prob ~delay
        ~reorg_prob:reorg ~halts ()
    in
    let retry =
      if retries <= 1 then Swap.Agent.no_retry
      else Swap.Agent.make_retry ~backoff retries
    in
    let result =
      Swap.Protocol.run ~q ~reveal_delay ~seed ~faults_a:faults
        ~faults_b:faults ~retry ~delay_t2:slack_t2 ~delay_t3:slack_t3 params
        ~p_star
    in
    Printf.printf "outcome: %s\n" (Swap.Protocol.outcome_to_string result.Swap.Protocol.outcome);
    if not (Chainsim.Faults.is_none faults) then
      Printf.printf "faults:  %s\n" (Chainsim.Faults.to_string faults);
    print_newline ();
    List.iter
      (fun (t, msg) -> Printf.printf "  [%6.2f h] %s\n" t msg)
      result.Swap.Protocol.trace;
    Printf.printf "\nbalance changes:\n";
    Printf.printf "  alice: %+g Token_a, %+g Token_b\n"
      result.Swap.Protocol.alice_delta_a result.Swap.Protocol.alice_delta_b;
    Printf.printf "  bob:   %+g Token_a, %+g Token_b\n"
      result.Swap.Protocol.bob_delta_a result.Swap.Protocol.bob_delta_b;
    Printf.printf "secret observable at t4: %b\n"
      result.Swap.Protocol.secret_observed_at_t4;
    let t = result.Swap.Protocol.telemetry in
    Printf.printf "\ntelemetry:\n";
    Printf.printf "  submissions %d (retries %d)\n"
      (List.length t.Swap.Protocol.submissions)
      t.Swap.Protocol.retries;
    List.iter
      (fun (s : Swap.Protocol.submission) ->
        Printf.printf "    [%6.2f h] %-7s %-24s attempt %d -> %s\n"
          s.Swap.Protocol.submitted_at s.Swap.Protocol.chain
          s.Swap.Protocol.action s.Swap.Protocol.attempt
          (match s.Swap.Protocol.confirmed_at with
          | Some c -> Printf.sprintf "confirmed at %.2f h" c
          | None -> "never confirmed"))
      t.Swap.Protocol.submissions;
    let pr_stats name (f : Chainsim.Chain.fault_stats) =
      if
        f.Chainsim.Chain.dropped + f.Chainsim.Chain.delayed
        + f.Chainsim.Chain.reorged + f.Chainsim.Chain.halted
        > 0
      then
        Printf.printf
          "  %s faults: %d dropped, %d delayed (%.2f h extra), %d reorged, \
           %d halt-deferred\n"
          name f.Chainsim.Chain.dropped f.Chainsim.Chain.delayed
          f.Chainsim.Chain.extra_delay f.Chainsim.Chain.reorged
          f.Chainsim.Chain.halted
    in
    pr_stats "chain_a" t.Swap.Protocol.fault_stats_a;
    pr_stats "chain_b" t.Swap.Protocol.fault_stats_b;
    Printf.printf "  margin consumed: %.2f h on chain_a, %.2f h on chain_b\n"
      t.Swap.Protocol.margin_consumed_a t.Swap.Protocol.margin_consumed_b
  in
  Cmd.v
    (Cmd.info "protocol"
       ~doc:"Execute one swap end-to-end on the two-chain simulator, \
             optionally under injected chain faults.")
    Term.(
      const run $ params_term $ p_star_term $ q_term $ reveal_delay $ drop
      $ delay_mean $ delay_prob $ reorg $ halt $ retries $ backoff $ slack_t2
      $ slack_t3 $ seed $ metrics_term $ trace_out_term)

(* --- ac3 ------------------------------------------------------------------ *)

let ac3_cmd =
  let witness_crash =
    Arg.(
      value
      & opt (some float) None
      & info [ "witness-crash" ] ~doc:"Witness goes offline at this hour.")
  in
  let run params p_star witness_crash =
    Printf.printf "SR: HTLC %.4f vs AC3 %.4f\n"
      (Swap.Success.analytic params ~p_star)
      (Swap.Ac3.success_rate params ~p_star);
    (match Swap.Ac3.feasible_band params with
    | Some (lo, hi) -> Printf.printf "AC3 feasible P*: (%.4f, %.4f)\n" lo hi
    | None -> print_endline "AC3 feasible P*: none");
    let result =
      Swap.Ac3.run ?witness_offline_from:witness_crash params ~p_star
    in
    Printf.printf "\nwitness-protocol run: %s\n"
      (Swap.Ac3.outcome_to_string result.Swap.Ac3.outcome);
    List.iter
      (fun (t, msg) -> Printf.printf "  [%6.2f h] %s\n" t msg)
      result.Swap.Ac3.trace;
    Printf.printf "balance changes: alice %+g / %+g, bob %+g / %+g\n"
      result.Swap.Ac3.alice_delta_a result.Swap.Ac3.alice_delta_b
      result.Swap.Ac3.bob_delta_a result.Swap.Ac3.bob_delta_b
  in
  Cmd.v
    (Cmd.info "ac3"
       ~doc:"Witness-based atomic commitment (AC3TW-style) vs the HTLC.")
    Term.(const run $ params_term $ p_star_term $ witness_crash)

(* --- backtest --------------------------------------------------------------- *)

let backtest_cmd =
  let csv =
    Arg.(
      value
      & opt (some file) None
      & info [ "csv" ] ~doc:"CSV price series (time,price; hours).")
  in
  let days =
    Arg.(
      value & opt int 60
      & info [ "days" ]
          ~doc:"Length of the synthetic regime-switching market when no CSV \
                is given.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Synthetic-market seed.") in
  let run params csv days seed =
    let path =
      match csv with
      | Some file -> (
        match Market.Csv.load file with
        | Ok p -> p
        | Error e ->
          Printf.eprintf "cannot read %s: %s\n" file e;
          exit 1)
      | None ->
        let rng = Numerics.Rng.create ~seed () in
        let steps = days * 48 in
        fst
          (Market.Regimes.sample rng Market.Regimes.default_spec
             ~p0:params.Swap.Params.p0 ~dt:0.5 ~steps)
    in
    let trades = Market.Backtest.run ~base:params path in
    let s = Market.Backtest.summarize trades in
    Printf.printf "trades            %d\n" s.Market.Backtest.trades;
    Printf.printf "skipped           %d\n" s.Market.Backtest.skipped;
    Printf.printf "initiated         %d\n" s.Market.Backtest.initiated;
    Printf.printf "succeeded         %d\n" s.Market.Backtest.succeeded;
    Printf.printf "realized SR       %.4f\n" s.Market.Backtest.realized_sr;
    Printf.printf "mean predicted SR %.4f\n" s.Market.Backtest.mean_predicted_sr
  in
  Cmd.v
    (Cmd.info "backtest"
       ~doc:"Walk-forward backtest on a CSV price series or a synthetic \
             regime-switching market.")
    Term.(const run $ params_term $ csv $ days $ seed)

(* --- experiment ---------------------------------------------------------- *)

let experiment_cmd =
  let which =
    Arg.(
      value & pos 0 string "list"
      & info [] ~docv:"ID"
          ~doc:"Experiment id (see 'list'), or 'all' to run every one.")
  in
  let csv_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ]
          ~doc:"Also write the experiment's data series as CSV files into \
                this directory (experiments with natural series only).")
  in
  let write_datasets dir (e : Experiments.Registry.experiment) =
    match e.Experiments.Registry.datasets with
    | None -> ()
    | Some datasets ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      List.iter
        (fun (filename, contents) ->
          let path = Filename.concat dir filename in
          Out_channel.with_open_text path (fun oc ->
              Out_channel.output_string oc contents);
          Printf.eprintf "wrote %s\n" path)
        (datasets ())
  in
  let trials =
    Arg.(
      value
      & opt (some int) None
      & info [ "trials" ] ~docv:"N"
          ~doc:
            "Override the Monte-Carlo trial count of every \
             simulation-based experiment (smaller = faster preview, \
             larger = tighter confidence intervals).")
  in
  let run which csv_dir jobs trials metrics trace_out =
    with_obs ~metrics ~trace_out @@ fun () ->
    Option.iter Numerics.Pool.set_jobs jobs;
    Swap.Montecarlo.set_trials_override trials;
    match which with
    | "list" ->
      List.iter
        (fun e ->
          Printf.printf "%-12s %s%s\n" e.Experiments.Registry.name
            e.Experiments.Registry.description
            (if e.Experiments.Registry.datasets <> None then " [csv]" else ""))
        Experiments.Registry.all
    | "all" ->
      print_string (Experiments.Registry.run_all ?jobs ());
      Option.iter
        (fun dir -> List.iter (write_datasets dir) Experiments.Registry.all)
        csv_dir
    | id -> (
      match Experiments.Registry.find id with
      | Some e ->
        print_string (e.Experiments.Registry.run ());
        Option.iter (fun dir -> write_datasets dir e) csv_dir
      | None ->
        Printf.eprintf "unknown experiment %S; try 'list'\n" id;
        exit 1)
  in
  Cmd.v
    (Cmd.info "experiment"
       ~doc:
         "Regenerate a paper table/figure by id.  'all' fans the \
          experiments out over the domain pool (one per task); output \
          is identical for any $(b,--jobs).")
    Term.(
      const run $ which $ csv_dir $ jobs_term $ trials $ metrics_term
      $ trace_out_term)

(* --- quote ----------------------------------------------------------------- *)

let quote_cmd =
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the quote as one machine-readable JSON object (schema \
             $(b,htlc-quote/v1)) instead of the human-readable lines.  A \
             feasibility gap shows up as null quote fields, not as an \
             error.")
  in
  let run params json =
    let optimal = Swap.Success.maximize params in
    let nash = Swap.Bargaining.nash_rate params in
    let band = Swap.Cutoff.p_star_band_endpoints params in
    if json then begin
      let n = Obs.Json.num in
      let optimal_json =
        match optimal with
        | Some { Swap.Success.p_star; sr } ->
          Printf.sprintf "{\"p_star\":%s,\"sr\":%s}" (n p_star) (n sr)
        | None -> "null"
      in
      let nash_json =
        match nash with
        | Some s ->
          Printf.sprintf
            "{\"p_star\":%s,\"alice_gain\":%s,\"bob_gain\":%s,\"sr\":%s}"
            (n s.Swap.Bargaining.p_star)
            (n s.Swap.Bargaining.alice_gain)
            (n s.Swap.Bargaining.bob_gain)
            (n
               (Swap.Success.analytic params
                  ~p_star:s.Swap.Bargaining.p_star))
        | None -> "null"
      in
      let band_json =
        match band with
        | Some (lo, hi) -> Printf.sprintf "[%s,%s]" (n lo) (n hi)
        | None -> "null"
      in
      Printf.printf
        "{\"schema\":\"htlc-quote/v1\",\"params\":%s,\"sr_optimal\":%s,\"nash\":%s,\"feasible_band\":%s}\n"
        (Serve.Request.params_json params)
        optimal_json nash_json band_json
    end
    else begin
      Printf.printf "Parameters: %s\n\n" (Swap.Params.to_string params);
      (match optimal with
      | Some { Swap.Success.p_star; sr } ->
        Printf.printf "SR-optimal quote:  P* = %.4f (SR = %.4f)\n" p_star sr
      | None -> print_endline "SR-optimal quote:  none (no feasible rate)");
      (match nash with
      | Some split ->
        Printf.printf
          "Nash bargain:      P* = %.4f (Alice +%.4f, Bob +%.4f, SR = %.4f)\n"
          split.Swap.Bargaining.p_star split.Swap.Bargaining.alice_gain
          split.Swap.Bargaining.bob_gain
          (Swap.Success.analytic params ~p_star:split.Swap.Bargaining.p_star)
      | None -> print_endline "Nash bargain:      no mutually profitable rate");
      match band with
      | Some (lo, hi) -> Printf.printf "Feasible rates:    (%.4f, %.4f)\n" lo hi
      | None -> print_endline "Feasible rates:    none"
    end
  in
  Cmd.v
    (Cmd.info "quote"
       ~doc:"Quote a swap: SR-optimal and Nash-bargained exchange rates.")
    Term.(const run $ params_term $ json_flag)

(* --- serve ----------------------------------------------------------------- *)

let serve_cmd =
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Serve on a Unix-domain socket at $(docv) (until SIGINT or \
             SIGTERM).  Without this flag the server speaks \
             newline-delimited requests on stdin/stdout and exits at EOF.")
  in
  let workers =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Dedicated worker domains answering socket requests (pipe mode \
             computes inline and ignores this).")
  in
  let queue_capacity =
    Arg.(
      value & opt int 128
      & info [ "queue-capacity" ] ~docv:"N"
          ~doc:
            "Bound on the submission queue; requests beyond it are shed \
             with an $(b,overloaded) error instead of queueing without \
             bound.")
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Answer $(b,deadline_exceeded) without computing when a \
             request waited in the queue longer than $(docv).")
  in
  let cache_capacity =
    Arg.(
      value & opt int 1024
      & info [ "cache-capacity" ] ~doc:"Result-cache entries (total).")
  in
  let cache_shards =
    Arg.(
      value & opt int 8
      & info [ "cache-shards" ] ~doc:"Result-cache shard count.")
  in
  let max_sweep =
    Arg.(
      value & opt int 4096
      & info [ "max-sweep" ]
          ~doc:"Largest accepted sweep grid (larger answers invalid_params).")
  in
  let table_mus =
    Arg.(
      value & opt int 9
      & info [ "table-mus" ] ~docv:"N"
          ~doc:"Quote-table grid density along mu (default range, N nodes).")
  in
  let table_sigmas =
    Arg.(
      value & opt int 8
      & info [ "table-sigmas" ] ~docv:"N"
          ~doc:
            "Quote-table grid density along sigma (default range, N nodes).")
  in
  let shards =
    Arg.(
      value
      & opt (some int) None
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Reactor event-loop domains multiplexing socket connections \
             (default: the jobs setting).  Pipe mode ignores this.")
  in
  let drain =
    Arg.(
      value & opt bool true
      & info [ "drain" ] ~docv:"BOOL"
          ~doc:
            "On SIGINT/SIGTERM, finish every queued request before \
             exiting (graceful drain, the default).  With \
             $(b,--drain=false) still-queued requests are answered with \
             a structured $(b,overloaded) reject instead — shutdown \
             waits only for requests already being computed.")
  in
  let recorder_dump =
    Arg.(
      value
      & opt (some string) None
      & info [ "recorder-dump" ] ~docv:"FILE"
          ~doc:
            "Arm the telemetry flight recorder's dump trigger: when a \
             worker crashes (and is restarted by its supervisor) the \
             last completed requests are written to $(docv) as \
             $(b,htlc-obs/v1) JSONL — one recorder header line, then \
             one line per held request record.")
  in
  let sample_every =
    Arg.(
      value & opt int 256
      & info [ "sample-every" ] ~docv:"N"
          ~doc:
            "Promote ~1/$(docv) of requests to full trace spans \
             (deterministic in the request id, so the sampled set is \
             identical at any shard or worker count; $(b,1) = every \
             request).")
  in
  let run params socket workers queue_capacity deadline_ms cache_capacity
      cache_shards max_sweep table_mus table_sigmas shards drain recorder_dump
      sample_every jobs metrics trace_out =
    with_obs ~metrics ~trace_out @@ fun () ->
    Option.iter Numerics.Pool.set_jobs jobs;
    Serve.Telemetry.set_sample_every sample_every;
    Serve.Telemetry.set_dump_path recorder_dump;
    let mus =
      Numerics.Grid.linspace ~lo:(-0.01) ~hi:0.01 ~n:(max 2 table_mus)
    in
    let sigmas =
      Numerics.Grid.linspace ~lo:0.02 ~hi:0.16 ~n:(max 2 table_sigmas)
    in
    let make_engine ~workers =
      Serve.Engine.create ~workers ~queue_capacity
        ?deadline_s:(Option.map (fun ms -> ms /. 1000.) deadline_ms)
        ~cache_shards ~cache_capacity ~max_sweep_n:max_sweep ~mus ~sigmas
        ~base:params ()
    in
    match socket with
    | None ->
      (* Pipe mode: synchronous, deterministic — the serve-smoke path. *)
      let engine = make_engine ~workers:0 in
      let served = Serve.Server.serve_pipe engine stdin stdout in
      Printf.eprintf "served %d requests\n" served
    | Some path ->
      let engine = make_engine ~workers:(max 1 workers) in
      let server = Serve.Server.listen engine ~path ?shards () in
      let stop_requested = Atomic.make false in
      let request_stop _ = Atomic.set stop_requested true in
      Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
      Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
      Printf.eprintf "listening on %s (workers %d, queue %d, cache %d)\n%!"
        path
        (Serve.Engine.workers engine)
        queue_capacity cache_capacity;
      while not (Atomic.get stop_requested) do
        Unix.sleepf 0.1
      done;
      Serve.Server.shutdown server;
      Serve.Engine.shutdown ~drain engine;
      let s = Serve.Engine.stats engine in
      Printf.eprintf
        "served %d requests (%d ok, %d errors, %d parse errors, %d shed, \
         %d past deadline, %d internal errors, %d worker restarts; cache \
         %d/%d/%d hit/miss/evict)\n"
        s.Serve.Engine.requests s.Serve.Engine.ok s.Serve.Engine.errors
        s.Serve.Engine.parse_errors s.Serve.Engine.shed
        s.Serve.Engine.deadline_exceeded s.Serve.Engine.internal_errors
        s.Serve.Engine.worker_restarts s.Serve.Engine.cache.Serve.Cache.hits
        s.Serve.Engine.cache.Serve.Cache.misses
        s.Serve.Engine.cache.Serve.Cache.evictions
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve cutoffs/success-rate/quote/sweep/health requests as a \
          long-lived $(b,htlc-serve/v1) service: newline-delimited JSON on \
          stdin/stdout, or a Unix-domain socket with a bounded worker \
          queue, admission control, a sharded result cache, and supervised \
          workers (a crashed request handler answers \
          $(b,internal_error) and the worker loop is restarted in place).  \
          The quote table is warm-built at startup from the given base \
          parameters.")
    Term.(
      const run $ params_term $ socket $ workers $ queue_capacity
      $ deadline_ms $ cache_capacity $ cache_shards $ max_sweep $ table_mus
      $ table_sigmas $ shards $ drain $ recorder_dump $ sample_every
      $ jobs_term $ metrics_term $ trace_out_term)

(* --- call ------------------------------------------------------------------ *)

(* Human rendering of a stats response: latency and stage quantiles in
   microseconds, the rate window, recorder and trace health.  Parses
   with the strict JSON reader the validators share, so a shape drift
   in the server is reported instead of silently mis-tabulated. *)
let print_stats_table resp =
  let module J = Obs.Json_parse in
  let j = J.parse resp in
  (match J.as_str "status" (J.member "response" j "status") with
  | "ok" -> ()
  | status ->
    Printf.eprintf "stats request answered %S: %s\n" status resp;
    exit 1);
  let r = J.member "response" j "result" in
  let num path o key = J.as_num (path ^ "." ^ key) (J.member path o key) in
  let flag path o key = J.as_bool (path ^ "." ^ key) (J.member path o key) in
  let telemetry = J.member "result" r "telemetry" in
  let rate = J.member "result" r "rate" in
  Printf.printf "telemetry %s, tracing 1 in %.0f requests\n"
    (if flag "telemetry" telemetry "enabled" then "enabled" else "disabled")
    (num "telemetry" telemetry "sample_every");
  Printf.printf "rate      %.1f req/s over %.0f s window, %.0f finished total\n"
    (num "rate" rate "rps")
    (num "rate" rate "window_s")
    (num "rate" rate "total");
  let section title key =
    match J.as_obj key (J.member "result" r key) with
    | [] -> ()
    | rows ->
      Printf.printf "\n%s\n" title;
      Printf.printf "  %-22s %8s %9s %9s %9s %9s\n" "" "count" "p50_us"
        "p90_us" "p99_us" "p999_us";
      List.iter
        (fun (name, row) ->
          let path = key ^ "." ^ name in
          Printf.printf "  %-22s %8.0f %9.1f %9.1f %9.1f %9.1f\n" name
            (num path row "count") (num path row "p50_us")
            (num path row "p90_us") (num path row "p99_us")
            (num path row "p999_us"))
        rows
  in
  section "latency by kind.codec" "latency";
  section "stage breakdown" "stages";
  let recorder = J.member "result" r "recorder" in
  Printf.printf
    "\nrecorder  %.0f held (capacity %.0f), %.0f pushed, %.0f dropped\n"
    (num "recorder" recorder "recorded")
    (num "recorder" recorder "capacity")
    (num "recorder" recorder "pushed")
    (num "recorder" recorder "dropped");
  let trace = J.member "result" r "trace" in
  Printf.printf "trace     %s, %.0f spans buffered, %.0f dropped\n"
    (if flag "trace" trace "enabled" then "enabled" else "disabled")
    (num "trace" trace "spans")
    (num "trace" trace "dropped")

(* --- route ---------------------------------------------------------------- *)

let route_cmd =
  let from_tok =
    Arg.(
      required
      & opt (some string) None
      & info [ "from" ] ~docv:"TOKEN" ~doc:"Token sold (e.g. $(b,XMR)).")
  in
  let to_tok =
    Arg.(
      required
      & opt (some string) None
      & info [ "to" ] ~docv:"TOKEN" ~doc:"Token bought (e.g. $(b,USDC)).")
  in
  let max_hops =
    Arg.(
      value & opt int 4
      & info [ "max-hops" ] ~docv:"N"
          ~doc:"Largest number of swap legs considered (1-16).")
  in
  let run params from_tok to_tok max_hops metrics trace_out =
    with_obs ~metrics ~trace_out @@ fun () ->
    (* The same path a network client takes: encode a canonical route
       request, hand the line to the serve engine, print the response
       line.  The tiny quote grid keeps startup instant — route never
       touches it. *)
    let engine =
      Serve.Engine.create ~workers:0
        ~mus:(Numerics.Grid.linspace ~lo:(-0.01) ~hi:0.01 ~n:2)
        ~sigmas:(Numerics.Grid.linspace ~lo:0.02 ~hi:0.16 ~n:2)
        ~base:params ()
    in
    let line =
      Serve.Request.encode
        {
          Serve.Request.id = Some "cli-route";
          body = Serve.Request.Route { from_tok; to_tok; max_hops };
        }
    in
    print_endline (Serve.Engine.handle engine line)
  in
  Cmd.v
    (Cmd.info "route"
       ~doc:
         "Best multi-hop swap path between two tokens: the $(b,route) \
          request kind answered by the serve engine over its default \
          token universe (pairs priced by the 2-party solver).  Prints \
          the $(b,htlc-serve/v1) response line.")
    Term.(
      const run $ params_term $ from_tok $ to_tok $ max_hops $ metrics_term
      $ trace_out_term)

(* --- graph-sweep ----------------------------------------------------------- *)

let graph_sweep_cmd =
  let max_parties =
    Arg.(
      value & opt int 8
      & info [ "max-parties" ] ~docv:"N"
          ~doc:"Largest graph size generated per family (at least 3).")
  in
  let trials =
    Arg.(
      value & opt int 2000
      & info [ "trials" ] ~docv:"N" ~doc:"Monte-Carlo paths per topology.")
  in
  let seed =
    Arg.(value & opt int 0x9af & info [ "seed" ] ~doc:"Monte-Carlo seed.")
  in
  let seeds =
    Arg.(
      value & opt int 5
      & info [ "seeds" ] ~docv:"N"
          ~doc:"Random-family topologies generated per (size, slack).")
  in
  let slacks =
    Arg.(
      value
      & opt_all float [ 0. ]
      & info [ "slack" ] ~docv:"H"
          ~doc:
            "Extra stagger per claim level, in hours (repeatable; the \
             sweep crosses every slack with every topology).")
  in
  let max_hops =
    Arg.(
      value & opt int 4
      & info [ "max-hops" ] ~docv:"N"
          ~doc:"Hop bound for the routed token-pair report.")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the full sweep as an $(b,htlc-graph/v1) JSON document \
             to $(docv) (topologies with schedules and results, the \
             served token universe, and best routes for every ordered \
             token pair) instead of the summary table.")
  in
  let run params max_parties trials seed seeds slacks max_hops json_out jobs
      metrics trace_out =
    with_obs ~metrics ~trace_out @@ fun () ->
    Option.iter Numerics.Pool.set_jobs jobs;
    if max_parties < 3 then failwith "graph-sweep: --max-parties must be >= 3";
    let slacks = List.sort_uniq compare slacks in
    let specs =
      List.concat_map
        (fun family ->
          List.concat_map
            (fun size ->
              List.concat_map
                (fun slack ->
                  let mk topo_seed =
                    { Swapgraph.Sweep.family; size; slack; topo_seed }
                  in
                  match family with
                  | Swapgraph.Topology.Random ->
                    List.init seeds mk
                  | Swapgraph.Topology.Bridge when size < 5 -> []
                  | _ -> [ mk 0 ])
                slacks)
            (List.init (max_parties - 2) (fun i -> i + 3)))
        Swapgraph.Topology.all_families
    in
    let rows =
      Swapgraph.Sweep.run ~trials ~seed ~tau:params.Swap.Params.tau_b
        ~eps:params.Swap.Params.eps_b
        ~policy:(Swap.Graphlink.depth_aware_policy params ~p_star:2.)
        ~payoffs:(Swap.Graphlink.payoffs params) specs
    in
    let griefing (r : Swapgraph.Sweep.row) =
      Array.fold_left Float.max 0.
        (Swap.Graphlink.griefing_value params r.graph r.schedule)
    in
    match json_out with
    | None ->
      let line (r : Swapgraph.Sweep.row) =
        [
          Swapgraph.Topology.family_to_string r.spec.Swapgraph.Sweep.family;
          string_of_int r.spec.Swapgraph.Sweep.size;
          Printf.sprintf "%g" r.spec.Swapgraph.Sweep.slack;
          string_of_int r.spec.Swapgraph.Sweep.topo_seed;
          Printf.sprintf "%.4f" r.sr;
          Printf.sprintf "%.2f" r.max_exposure_hours;
          Printf.sprintf "%.4f" (griefing r);
          (if r.equilibrium_success then "yes" else "no");
        ]
      in
      print_string
        (Experiments.Render.table
           ~header:
             [
               "family"; "parties"; "slack"; "seed"; "SR";
               "max exposure (h)"; "griefing"; "eq";
             ]
           ~rows:(List.map line rows))
    | Some file ->
      let b = Buffer.create 65536 in
      let n = Obs.Json.num and s = Obs.Json.str and i = Obs.Json.int in
      Buffer.add_string b "{\"schema\":\"htlc-graph/v1\",\"params\":";
      Buffer.add_string b (Serve.Request.params_json params);
      Buffer.add_string b ",\"topologies\":[";
      List.iteri
        (fun k (r : Swapgraph.Sweep.row) ->
          if k > 0 then Buffer.add_char b ',';
          let g = r.graph and sc = r.schedule in
          let arcs = Swapgraph.Graph.arcs g in
          Buffer.add_string b
            (Printf.sprintf
               "{\"family\":%s,\"n\":%s,\"slack\":%s,\"seed\":%s,\"leader\":%s,\"depths\":[%s],\"arcs\":[%s],\"sr\":%s,\"griefing\":%s,\"equilibrium_success\":%b}"
               (s
                  (Swapgraph.Topology.family_to_string
                     r.spec.Swapgraph.Sweep.family))
               (i r.spec.Swapgraph.Sweep.size)
               (n r.spec.Swapgraph.Sweep.slack)
               (i r.spec.Swapgraph.Sweep.topo_seed)
               (i (Swapgraph.Graph.leader g))
               (String.concat ","
                  (Array.to_list (Array.map i (Swapgraph.Graph.depths g))))
               (String.concat ","
                  (List.init (Array.length arcs) (fun j ->
                       Printf.sprintf
                         "{\"src\":%s,\"dst\":%s,\"lock\":%s,\"expiry\":%s}"
                         (i arcs.(j).Swapgraph.Graph.src)
                         (i arcs.(j).Swapgraph.Graph.dst)
                         (n sc.Swapgraph.Timelock.lock_time.(j))
                         (n sc.Swapgraph.Timelock.expiry.(j)))))
               (n r.sr) (n (griefing r)) r.equilibrium_success))
        rows;
      Buffer.add_string b "],\"universe\":[";
      let universe = Swap.Graphlink.default_universe ~base:params () in
      List.iteri
        (fun k (e : Swapgraph.Router.edge) ->
          if k > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf "{\"src\":%s,\"dst\":%s,\"sr\":%s,\"rate\":%s}"
               (s e.src) (s e.dst) (n e.sr) (n e.rate)))
        (Swapgraph.Router.edges universe);
      Buffer.add_string b "],\"routes\":[";
      let tokens = Swapgraph.Router.tokens universe in
      let first = ref true in
      List.iter
        (fun from_tok ->
          List.iter
            (fun to_tok ->
              if from_tok <> to_tok then begin
                if not !first then Buffer.add_char b ',';
                first := false;
                let found =
                  match
                    Swapgraph.Router.best universe ~from_tok ~to_tok
                      ~max_hops
                  with
                  | Ok { Swapgraph.Router.hops; sr; rate } ->
                    Printf.sprintf
                      "\"path\":[%s],\"hops\":%s,\"sr\":%s,\"rate\":%s"
                      (String.concat "," (List.map s hops))
                      (i (List.length hops - 1))
                      (n sr) (n rate)
                  | Error _ -> "\"path\":null"
                in
                Buffer.add_string b
                  (Printf.sprintf
                     "{\"from\":%s,\"to\":%s,\"max_hops\":%s,%s}" (s from_tok)
                     (s to_tok) (i max_hops) found)
              end)
            tokens)
        tokens;
      Buffer.add_string b "]}\n";
      Out_channel.with_open_text file (fun oc ->
          Out_channel.output_string oc (Buffer.contents b));
      Printf.eprintf "wrote %s (%d topologies, %d routed pairs)\n" file
        (List.length rows)
        (List.length tokens * (List.length tokens - 1))
  in
  Cmd.v
    (Cmd.info "graph-sweep"
       ~doc:
         "Sweep generated N-party swap graphs (cycles, stars, bridges, \
          random connected digraphs) through the Herlihy timelock \
          assignment, the graph game and the depth-aware Monte Carlo; \
          report SR and griefing exposure per topology.  Pool-parallel \
          across topologies and bit-identical at any $(b,--jobs) count.")
    Term.(
      const run $ params_term $ max_parties $ trials $ seed $ seeds $ slacks
      $ max_hops $ json_out $ jobs_term $ metrics_term $ trace_out_term)

let call_cmd =
  let socket =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Unix-domain socket of a running $(b,swap_cli serve).")
  in
  let max_attempts =
    Arg.(
      value & opt int 6
      & info [ "max-attempts" ] ~docv:"N"
          ~doc:"Attempts per request before reporting it unavailable.")
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Per-request wall deadline (including reconnects and backoff \
             sleeps) on the client side.")
  in
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"N"
          ~doc:"Seed for the deterministic retry-backoff jitter.")
  in
  let chaos_seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "chaos-seed" ] ~docv:"N"
          ~doc:
            "Route the connection through the fault-injecting chaos \
             transport with this schedule seed (torn writes, truncated \
             responses, resets...) — exercises the retry path against a \
             real server.")
  in
  let stats_flag =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Instead of reading request lines from stdin, send one \
             $(b,stats) request and pretty-print the server's live \
             telemetry: latency and stage quantiles, windowed req/s, \
             flight-recorder and trace-ring health.")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "With $(b,--stats): print the raw response line unchanged \
             instead of the table.")
  in
  let run socket max_attempts deadline_ms seed chaos_seed stats json =
    let dialer =
      let d = Serve.Client.socket_dialer ~path:socket in
      match chaos_seed with
      | None -> d
      | Some cs -> Serve.Chaos.wrap (Serve.Chaos.plan ~seed:cs ()) d
    in
    let client =
      Serve.Client.create ~dialer ~max_attempts
        ?deadline_s:(Option.map (fun ms -> ms /. 1000.) deadline_ms)
        ~seed ()
    in
    let failures = ref 0 in
    if stats then begin
      (match
         Serve.Client.call client
           "{\"schema\":\"htlc-serve/v1\",\"id\":\"cli-stats\",\"req\":\"stats\"}"
       with
      | Ok resp ->
        if json then print_endline resp
        else (
          try print_stats_table resp
          with Obs.Json_parse.Bad msg ->
            Printf.eprintf "unexpected stats response shape (%s): %s\n" msg
              resp;
            incr failures)
      | Error e ->
        incr failures;
        Printf.eprintf "stats request failed: %s (%s, %d attempts)\n"
          e.Serve.Client.message e.Serve.Client.code e.Serve.Client.attempts)
    end
    else begin
      (try
         while true do
           let line = input_line stdin in
           if String.trim line <> "" then
             match Serve.Client.call client line with
             | Ok resp -> print_endline resp
             | Error e ->
               incr failures;
               Printf.printf
                 "{\"schema\":\"htlc-serve/v1\",\"id\":null,\"status\":\"error\",\"error\":%S,\"message\":%S,\"attempts\":%d}\n"
                 e.Serve.Client.code e.Serve.Client.message
                 e.Serve.Client.attempts
         done
       with End_of_file -> ());
      let s = Serve.Client.stats client in
      Printf.eprintf "%d calls, %d retries, %d reconnects, %d failures\n"
        s.Serve.Client.calls s.Serve.Client.retries s.Serve.Client.reconnects
        s.Serve.Client.failures
    end;
    Serve.Client.close client;
    if !failures > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "call"
       ~doc:
         "Drive a running $(b,swap_cli serve) socket with the resilient \
          client: read request lines from stdin, print each verified \
          response line to stdout.  Reconnects and retries (capped \
          exponential backoff, seeded jitter) through transport faults; \
          a response must echo the request id to count.  Exits nonzero \
          if any request ultimately failed.  With $(b,--stats) it sends \
          a single $(b,stats) request and renders the server's live \
          telemetry as a table ($(b,--json) passes the raw response \
          through).")
    Term.(
      const run $ socket $ max_attempts $ deadline_ms $ seed $ chaos_seed
      $ stats_flag $ json_flag)

(* --- obs ------------------------------------------------------------------ *)

let obs_cmd =
  let trials =
    Arg.(
      value & opt int 5000
      & info [ "trials" ] ~doc:"Monte-Carlo paths in the probe workload.")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"Write the metrics snapshot to $(docv) instead of stdout.")
  in
  let prometheus =
    Arg.(
      value & flag
      & info [ "prometheus" ]
          ~doc:
            "Export the metrics snapshot in the Prometheus text \
             exposition format (counters as $(b,_total), histograms as \
             cumulative $(b,_bucket)/$(b,_sum)/$(b,_count) series) \
             instead of the one-line $(b,htlc-obs/v1) JSON.")
  in
  let run params p_star trials jobs metrics_out prometheus trace_out =
    (* A small fixed workload that touches every instrumented subsystem:
       the cutoff solver (cache misses then hits), a pooled Monte-Carlo
       run (chunk fan-out, spans), and one faulty protocol run with
       retries (chain fault counters, retry/crash events). *)
    Obs.Trace.set_enabled true;
    ignore (Swap.Cutoff.p_t2_band_endpoints params ~p_star);
    ignore (Swap.Cutoff.p_t2_band_endpoints params ~p_star);
    let policy = Swap.Agent.rational params ~p_star in
    let mc = Swap.Montecarlo.run ~trials ?jobs params ~p_star ~policy in
    let faults =
      Chainsim.Faults.create ~drop_prob:0.3 ~delay_prob:1.
        ~delay:(Chainsim.Faults.Shifted_exponential { mean = 0.5; cap = 2. })
        ~reorg_prob:0.2 ()
    in
    let proto =
      Swap.Protocol.run ~seed:0xfeed ~faults_a:faults ~faults_b:faults
        ~retry:Swap.Agent.default_retry ~delay_t2:2. ~delay_t3:2. params
        ~p_star
    in
    Printf.eprintf "workload: SR %.4f over %d trials; protocol %s\n"
      mc.Swap.Montecarlo.rate mc.Swap.Montecarlo.trials
      (Swap.Protocol.outcome_to_string proto.Swap.Protocol.outcome);
    let snap = Obs.Metrics.snapshot () in
    let rendered =
      if prometheus then Obs.Metrics.to_prometheus snap
      else Obs.Metrics.to_json snap ^ "\n"
    in
    (match metrics_out with
    | None -> print_string rendered
    | Some file ->
      Out_channel.with_open_text file (fun oc -> output_string oc rendered);
      Printf.eprintf "wrote %s\n" file);
    Option.iter
      (fun file ->
        Out_channel.with_open_text file Obs.Trace.write_jsonl;
        Printf.eprintf "wrote %s\n" file)
      trace_out
  in
  Cmd.v
    (Cmd.info "obs"
       ~doc:
         "Run a fixed probe workload (cutoffs, pooled Monte-Carlo, one \
          faulty protocol run) and export the $(b,htlc-obs/v1) metrics \
          snapshot and span trace ($(b,--prometheus) switches the \
          metrics rendering to the Prometheus text format).  Used by \
          the $(b,obs-smoke) CI check.")
    Term.(
      const run $ params_term $ p_star_term $ trials $ jobs_term
      $ metrics_out $ prometheus $ trace_out_term)

(* --- lint ----------------------------------------------------------------- *)

let lint_cmd =
  let roots =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"ROOT"
          ~doc:
            "Directories to scan (default: lib bin bench test examples, \
             resolved from the current directory — run from the \
             repository root).")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the $(b,htlc-lint/v1) JSON document (one line; \
             $(b,htlc-lint/v2) with $(b,--deep)) instead of the text \
             report.")
  in
  let deep_flag =
    Arg.(
      value & flag
      & info [ "deep" ]
          ~doc:
            "Also run the whole-program analyses over the build's \
             $(b,.cmt) typedtrees: cross-module nondeterminism taint \
             into deterministic sinks, blocking calls reachable from \
             the reactor's per-connection hot path, and cross-unit \
             lock discipline for toplevel mutable state.  Findings \
             carry the full call chain.")
  in
  let cmt_root_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cmt-root" ] ~docv:"DIR"
          ~doc:
            "Where to look for $(b,.cmt) files (default: \
             $(b,_build/default) when it exists, else the current \
             directory).")
  in
  let run roots json deep cmt_root metrics trace_out =
    with_obs ~metrics ~trace_out @@ fun () ->
    let roots =
      match roots with
      | [] -> [ "lib"; "bin"; "bench"; "test"; "examples" ]
      | roots -> roots
    in
    (match List.filter (fun r -> not (Sys.file_exists r)) roots with
    | [] -> ()
    | missing ->
      Printf.eprintf "swap_cli: lint: no such root: %s\n"
        (String.concat ", " missing);
      exit 2);
    let result = Lint.Driver.run ~deep ?cmt_root ~roots () in
    if json then print_endline (Lint.Driver.render_json result)
    else print_string (Lint.Driver.render_text result);
    if Lint.Driver.exit_code result <> 0 then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically check the source tree against the repo's determinism \
          and domain-safety invariants (htlc-lint): nondeterminism \
          sources, unguarded shared state in Pool-reachable libraries, \
          exception and output hygiene, interface coverage — plus, with \
          $(b,--deep), the whole-program taint, hot-path, and \
          lock-discipline analyses over the build's typedtrees.  Exits \
          nonzero on any error-severity finding.")
    Term.(
      const run $ roots $ json_flag $ deep_flag $ cmt_root_arg
      $ metrics_term $ trace_out_term)

let main_cmd =
  let doc = "Game-theoretic analysis of cross-chain atomic swaps with HTLCs" in
  Cmd.group
    (Cmd.info "swap_cli" ~version:"1.0.0" ~doc)
    [
      cutoffs_cmd; success_cmd; sweep_cmd; simulate_cmd; protocol_cmd;
      ac3_cmd; backtest_cmd; quote_cmd; serve_cmd; route_cmd;
      graph_sweep_cmd; call_cmd; experiment_cmd;
      obs_cmd;
      lint_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
