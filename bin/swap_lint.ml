(* htlc-lint: self-hosted static analysis for the repo's determinism
   and domain-safety invariants.

     swap_lint [--deep] [--cmt-root DIR] [--json FILE|-] [--metrics] [root ...]

   Scans the given roots (default: lib bin bench test examples) and
   exits nonzero when any error-severity finding survives suppression —
   the @lint alias runs exactly this over the source tree on every
   `dune build @ci`.  With --deep it also loads the .cmt typedtrees the
   build produced and runs the whole-program analyses (cross-module
   nondeterminism taint, hot-path blocking calls, cross-unit lock
   discipline) — the @lint-deep alias. *)

let usage =
  "swap_lint [--deep] [--cmt-root DIR] [--json FILE|-] [--metrics] [root ...]"

let () =
  let json_out = ref None in
  let metrics = ref false in
  let deep = ref false in
  let cmt_root = ref None in
  let roots = ref [] in
  let spec =
    [
      ( "--deep",
        Arg.Set deep,
        " run the whole-program analyses over the build's .cmt \
         typedtrees (emits the htlc-lint/v2 schema with call chains)" );
      ( "--cmt-root",
        Arg.String (fun s -> cmt_root := Some s),
        "DIR  where to look for .cmt files (default: _build/default \
         when it exists, else the current directory)" );
      ( "--json",
        Arg.String (fun s -> json_out := Some s),
        "FILE  write the htlc-lint/v1 (or v2 with --deep) JSON document \
         to FILE ('-' for stdout) instead of the text report" );
      ( "--metrics",
        Arg.Set metrics,
        " print an htlc-obs/v1 metrics snapshot (lint.* counters) to \
         stderr when done" );
    ]
  in
  Arg.parse spec (fun root -> roots := root :: !roots) usage;
  let roots =
    match List.rev !roots with
    | [] -> [ "lib"; "bin"; "bench"; "test"; "examples" ]
    | roots -> roots
  in
  (match List.filter (fun r -> not (Sys.file_exists r)) roots with
  | [] -> ()
  | missing ->
    Printf.eprintf "swap_lint: no such root: %s\n"
      (String.concat ", " missing);
    exit 2);
  let result = Lint.Driver.run ~deep:!deep ?cmt_root:!cmt_root ~roots () in
  (match !json_out with
  | None -> print_string (Lint.Driver.render_text result)
  | Some "-" -> print_endline (Lint.Driver.render_json result)
  | Some file ->
    Out_channel.with_open_text file (fun oc ->
        output_string oc (Lint.Driver.render_json result);
        output_char oc '\n');
    Printf.eprintf "wrote %s\n" file);
  if !metrics then
    prerr_endline (Obs.Metrics.to_json (Obs.Metrics.snapshot ()));
  exit (Lint.Driver.exit_code result)
