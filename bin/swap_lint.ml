(* htlc-lint: self-hosted static analysis for the repo's determinism
   and domain-safety invariants.

     swap_lint [--json FILE|-] [--metrics] [root ...]

   Scans the given roots (default: lib bin bench test examples) and
   exits nonzero when any error-severity finding survives suppression —
   the @lint alias runs exactly this over the source tree on every
   `dune build @ci`. *)

let usage = "swap_lint [--json FILE|-] [--metrics] [root ...]"

let () =
  let json_out = ref None in
  let metrics = ref false in
  let roots = ref [] in
  let spec =
    [
      ( "--json",
        Arg.String (fun s -> json_out := Some s),
        "FILE  write the htlc-lint/v1 JSON document to FILE ('-' for \
         stdout) instead of the text report" );
      ( "--metrics",
        Arg.Set metrics,
        " print an htlc-obs/v1 metrics snapshot (lint.* counters) to \
         stderr when done" );
    ]
  in
  Arg.parse spec (fun root -> roots := root :: !roots) usage;
  let roots =
    match List.rev !roots with
    | [] -> [ "lib"; "bin"; "bench"; "test"; "examples" ]
    | roots -> roots
  in
  (match List.filter (fun r -> not (Sys.file_exists r)) roots with
  | [] -> ()
  | missing ->
    Printf.eprintf "swap_lint: no such root: %s\n"
      (String.concat ", " missing);
    exit 2);
  let result = Lint.Driver.run ~roots () in
  (match !json_out with
  | None -> print_string (Lint.Driver.render_text result)
  | Some "-" -> print_endline (Lint.Driver.render_json result)
  | Some file ->
    Out_channel.with_open_text file (fun oc ->
        output_string oc (Lint.Driver.render_json result);
        output_char oc '\n');
    Printf.eprintf "wrote %s\n" file);
  if !metrics then
    prerr_endline (Obs.Metrics.to_json (Obs.Metrics.snapshot ()));
  exit (Lint.Driver.exit_code result)
