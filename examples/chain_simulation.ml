(* Scenario: the chain simulator as a test bench for HTLC edge cases —
   what the game-theory model abstracts away.  Demonstrates mempool
   secret sniffing, expiry refunds, late reveals and wrong preimages
   directly against the ledger.

     dune exec examples/chain_simulation.exe *)

open Chainsim

let show_receipts label receipts =
  Printf.printf "%s\n" label;
  List.iter
    (fun (r : Chain.receipt) ->
      Printf.printf "  [%5.1f h] %s -> %s\n" r.Chain.time r.Chain.description
        (match r.Chain.result with Ok () -> "ok" | Error e -> "FAILED: " ^ e))
    receipts

let () =
  print_endline "HTLC mechanics on the deterministic chain simulator\n";
  let rng = Numerics.Rng.create ~seed:7 () in
  let secret = Secret.generate rng in
  Printf.printf "hashlock commitment: %s\n\n" (Secret.hash_hex secret);

  (* 1. Happy path: lock, claim with the right preimage. *)
  let chain = Chain.create ~name:"demo" ~token:"TKN" ~tau:2. ~mempool_delay:0.5 () in
  Chain.mint chain ~account:"alice" ~amount:10.;
  ignore
    (Chain.submit chain ~at:0.
       (Tx.Htlc_lock
          {
            contract_id = "c1";
            sender = "alice";
            recipient = "bob";
            amount = 4.;
            hash = secret.Secret.hash;
            expiry = 10.;
          }));
  ignore
    (Chain.submit chain ~at:3.
       (Tx.Htlc_claim { contract_id = "c1"; preimage = secret.Secret.preimage }));
  show_receipts "1. lock then claim:" (Chain.advance chain ~until:6.);
  Printf.printf "  bob's balance: %g\n\n" (Chain.balance chain ~account:"bob");

  (* 2. Wrong preimage is rejected; funds refund at expiry. *)
  let chain2 = Chain.create ~name:"demo2" ~token:"TKN" ~tau:2. ~mempool_delay:0.5 () in
  Chain.mint chain2 ~account:"alice" ~amount:10.;
  ignore
    (Chain.submit chain2 ~at:0.
       (Tx.Htlc_lock
          {
            contract_id = "c2";
            sender = "alice";
            recipient = "bob";
            amount = 4.;
            hash = secret.Secret.hash;
            expiry = 6.;
          }));
  ignore
    (Chain.submit chain2 ~at:3.
       (Tx.Htlc_claim { contract_id = "c2"; preimage = "not the secret" }));
  show_receipts "2. wrong preimage, then expiry refund:"
    (Chain.advance chain2 ~until:12.);
  Printf.printf "  alice's balance restored: %g\n\n"
    (Chain.balance chain2 ~account:"alice");

  (* 3. Late claim: submitted before expiry but confirmed after — the
     exact failure mode that forces t5 <= t_b in Eq. 8. *)
  let chain3 = Chain.create ~name:"demo3" ~token:"TKN" ~tau:2. ~mempool_delay:0.5 () in
  Chain.mint chain3 ~account:"alice" ~amount:10.;
  ignore
    (Chain.submit chain3 ~at:0.
       (Tx.Htlc_lock
          {
            contract_id = "c3";
            sender = "alice";
            recipient = "bob";
            amount = 4.;
            hash = secret.Secret.hash;
            expiry = 4.5;
          }));
  ignore
    (Chain.submit chain3 ~at:3.
       (Tx.Htlc_claim { contract_id = "c3"; preimage = secret.Secret.preimage }));
  show_receipts "3. claim confirms after expiry:" (Chain.advance chain3 ~until:12.);

  (* 4. Mempool sniffing: the counterparty sees the preimage eps after
     submission, well before confirmation (Eq. 7). *)
  let observed_early =
    Chain.observed_preimage chain ~at:3.6 ~hash:secret.Secret.hash
  in
  let observed_too_early =
    Chain.observed_preimage chain ~at:3.4 ~hash:secret.Secret.hash
  in
  Printf.printf "\n4. mempool visibility of the claim submitted at t=3:\n";
  Printf.printf "  at t=3.4 (before eps): %s\n"
    (match observed_too_early with Some _ -> "visible" | None -> "not visible");
  Printf.printf "  at t=3.6 (after eps):  %s\n"
    (match observed_early with Some _ -> "visible (secret leaked)" | None -> "not visible");

  (* 5. Conservation: total supply never changes. *)
  Printf.printf "\n5. token conservation: %g = %g = %g (all demos)\n"
    (Chain.total_supply chain) (Chain.total_supply chain2)
    (Chain.total_supply chain3);

  (* 6. Explorer view of the first chain. *)
  print_endline "\n6. explorer view of demo chain 1:";
  print_string (Explorer.render chain)
