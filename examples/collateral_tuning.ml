(* Scenario: a protocol designer sizes the collateral deposit
   (Section IV).  How much collateral buys how much reliability, what
   is the smallest deposit hitting a target success rate, and where
   does the welfare optimum sit once the cost of locked capital is
   accounted for?

     dune exec examples/collateral_tuning.exe *)

let () =
  let p = Swap.Params.defaults in
  let p_star = 2. in
  print_endline "Collateral sizing for the HTLC swap (Section IV)\n";

  (* SR as a function of the deposit. *)
  Printf.printf "%-8s %-10s %-28s\n" "Q" "SR(P*=2)" "Bob's t2 continuation set";
  List.iter
    (fun q ->
      let c = Swap.Collateral.symmetric p ~q in
      Printf.printf "%-8g %-10.4f %-28s\n" q
        (Swap.Collateral.success_rate c ~p_star)
        (Swap.Intervals.to_string (Swap.Collateral.cont_set_t2 c ~p_star)))
    [ 0.; 0.1; 0.25; 0.5; 1.; 2. ];

  (* Smallest deposit achieving target reliability. *)
  print_endline "\nMinimal deposit for a target success rate:";
  List.iter
    (fun target ->
      match Swap.Optimal.min_q_for_sr p ~p_star ~target with
      | Some { Swap.Optimal.q; sr } ->
        Printf.printf "  SR >= %.0f%%  ->  Q = %.3f (SR = %.4f)\n"
          (target *. 100.) q sr
      | None ->
        Printf.printf "  SR >= %.0f%%  ->  unreachable with Q <= 4 p0\n"
          (target *. 100.))
    [ 0.8; 0.9; 0.95; 0.99; 0.999 ];

  (* Welfare view: deposits are not free (locked capital, discounting). *)
  let choice, surplus = Swap.Optimal.best_q_for_welfare p ~p_star in
  Printf.printf
    "\nWelfare-optimal deposit: Q = %.3f (SR = %.4f, total surplus = %.4f)\n"
    choice.Swap.Optimal.q choice.Swap.Optimal.sr surplus;

  (* The asymmetric (premium) alternative. *)
  print_endline "\nOne-sided premium (Han et al.-style), same utility model:";
  List.iter
    (fun w ->
      let prem = Swap.Premium.create p ~w in
      Printf.printf "  w = %-5g ->  SR = %.4f\n" w
        (Swap.Premium.success_rate prem ~p_star))
    [ 0.; 0.25; 0.5; 1. ];
  print_endline
    "\nThe premium only disciplines Alice's t3 exit; symmetric collateral\n\
     also keeps Bob in at t2, which is why it dominates at equal stake."
