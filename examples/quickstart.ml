(* Quickstart: set up the model, inspect the equilibrium, check the
   success rate, and run one swap end-to-end on the chain simulator.

     dune exec examples/quickstart.exe *)

let () =
  (* 1. Model parameters — Table III defaults, overridable field-wise. *)
  let params = Swap.Params.defaults in
  print_endline ("Parameters: " ^ Swap.Params.to_string params);

  (* 2. The idealised timeline of the swap (Eq. 13). *)
  let tl = Swap.Timeline.ideal params in
  print_endline ("Timeline:   " ^ Swap.Timeline.to_string tl);

  (* 3. Backward-induction cutoffs for an agreed rate P* = 2. *)
  let p_star = 2. in
  Printf.printf "\nAlice reveals the secret at t3 only if P_t3 > %.4f (Eq. 18)\n"
    (Swap.Cutoff.p_t3_low params ~p_star);
  (match Swap.Cutoff.p_t2_band_endpoints params ~p_star with
  | Some (lo, hi) ->
    Printf.printf "Bob deploys his HTLC at t2 only if %.4f < P_t2 < %.4f\n" lo hi
  | None -> print_endline "Bob never deploys at this rate");
  (match Swap.Cutoff.p_star_band_endpoints params with
  | Some (lo, hi) ->
    Printf.printf "The swap is initiated only for %.4f < P* < %.4f (Eq. 29)\n"
      lo hi
  | None -> print_endline "No viable exchange rate");

  (* 4. Success rate, analytically and by simulation. *)
  let sr = Swap.Success.analytic params ~p_star in
  let policy = Swap.Agent.rational params ~p_star in
  let mc = Swap.Montecarlo.run ~trials:20_000 params ~p_star ~policy in
  Printf.printf "\nSuccess rate: %.4f analytic (Eq. 31), %.4f Monte-Carlo\n" sr
    mc.Swap.Montecarlo.rate;

  (* 5. One full protocol run on the two-chain simulator. *)
  let result = Swap.Protocol.run params ~p_star in
  Printf.printf "\nProtocol run: %s\n"
    (Swap.Protocol.outcome_to_string result.Swap.Protocol.outcome);
  List.iter
    (fun (t, msg) -> Printf.printf "  [%5.1f h] %s\n" t msg)
    result.Swap.Protocol.trace;
  Printf.printf
    "Balance changes (Table I): Alice %+g Token_a / %+g Token_b, Bob %+g / %+g\n"
    result.Swap.Protocol.alice_delta_a result.Swap.Protocol.alice_delta_b
    result.Swap.Protocol.bob_delta_a result.Swap.Protocol.bob_delta_b
