(* Scenario: a Bisq-like venue intermediates many swaps over two
   months.  It quotes from a precomputed table (calibrated on trailing
   data), faces counterparties with HETEROGENEOUS, unobserved success
   premia (the Bayesian adverse-selection setting), and must pick a
   collateral policy.  Reported: realized failure/"arbitration" rates
   per policy — the Section II-A anecdote, generated from first
   principles.

     dune exec examples/venue_simulation.exe *)

let () =
  print_endline "Venue simulation: 60 days, heterogeneous counterparties\n";
  let base = Swap.Params.defaults in
  let rng = Numerics.Rng.create ~seed:31337 () in

  (* One market for everyone. *)
  let path, states =
    Market.Regimes.sample rng Market.Regimes.default_spec ~p0:2. ~dt:0.5
      ~steps:(60 * 48)
  in

  (* The venue's quoting surface, built once. *)
  let table = Market.Quote_table.build base in
  Printf.printf "quote table: %s nodes\n\n"
    (let a, b = Market.Quote_table.nodes table in Printf.sprintf "%dx%d" a b);

  (* Counterparty population: alphas drawn around the paper's 0.3. *)
  let draw_alpha () =
    max 0.02 (Numerics.Rng.gaussian rng ~mean:0.3 ~stddev:0.12)
  in

  let run_policy label ~q =
    let successes = ref 0 and failures = ref 0 and skipped = ref 0 in
    let failures_turbulent = ref 0 and trades_turbulent = ref 0 in
    let t = ref 170. in
    while !t +. 40. < 60. *. 24. do
      (match Market.Calibrate.fit_window path ~until:!t ~window:168. with
      | Error _ -> incr skipped
      | Ok fit -> (
        let spot = Stochastic.Path.at path !t in
        match
          Market.Quote_table.quote table ~mu:fit.Market.Calibrate.mu
            ~sigma:fit.Market.Calibrate.sigma ~spot
        with
        | None -> incr skipped
        | Some quote ->
          let p_star = quote.Market.Quote_table.p_star in
          (* This pair's true types. *)
          let params =
            Swap.Params.with_p0
              (Swap.Params.with_alpha_alice
                 (Swap.Params.with_alpha_bob
                    (Swap.Params.with_sigma
                       (Swap.Params.with_mu base fit.Market.Calibrate.mu)
                       fit.Market.Calibrate.sigma)
                    (draw_alpha ()))
                 (draw_alpha ()))
              spot
          in
          let start = !t in
          let shifted time = Stochastic.Path.at path (time +. start) in
          (* Mid-game rational thresholds only: the venue has already
             matched the pair, so initiation is forced and the costly
             feasible-band solve is skipped. *)
          let k3, band =
            if q > 0. then begin
              let c = Swap.Collateral.symmetric params ~q:(q *. spot /. 2.) in
              (Swap.Collateral.p_t3_low c ~p_star,
               Swap.Collateral.cont_set_t2 c ~p_star)
            end
            else
              (Swap.Cutoff.p_t3_low params ~p_star,
               Swap.Cutoff.p_t2_band params ~p_star)
          in
          let policy =
            {
              Swap.Agent.name = "venue-matched";
              alice_t1 = (fun ~p_star:_ -> Swap.Agent.Cont);
              bob_t2 =
                (fun ~p_t2 ->
                  if Swap.Intervals.contains band p_t2 then Swap.Agent.Cont
                  else Swap.Agent.Stop);
              alice_t3 =
                (fun ~p_t3 ->
                  if p_t3 > k3 then Swap.Agent.Cont else Swap.Agent.Stop);
              bob_t4 = Swap.Agent.Cont;
            }
          in
          let r =
            Swap.Protocol.run ~q:(q *. spot /. 2.) ~policy ~price:shifted
              params ~p_star
          in
          let turbulent =
            Market.Regimes.state_at states ~dt:0.5 ~t:start
            = Market.Regimes.Turbulent
          in
          if turbulent then incr trades_turbulent;
          (match r.Swap.Protocol.outcome with
          | Swap.Protocol.Success -> incr successes
          | _ ->
            incr failures;
            if turbulent then incr failures_turbulent)));
      t := !t +. 6.
    done;
    let total = !successes + !failures in
    Printf.printf
      "%-24s %4d trades: %5.1f%% fail overall; turbulent periods %5.1f%% \
       (%d/%d); %d skipped\n"
      label total
      (100. *. float_of_int !failures /. float_of_int (max 1 total))
      (100.
      *. float_of_int !failures_turbulent
      /. float_of_int (max 1 !trades_turbulent))
      !failures_turbulent !trades_turbulent !skipped
  in
  print_endline "collateral policy (fraction of notional per side):";
  run_policy "no collateral" ~q:0.;
  run_policy "12.5% collateral" ~q:0.25;
  run_policy "25% collateral" ~q:0.5;
  run_policy "50% collateral" ~q:1.;
  print_endline
    "\nWith no deposits the venue sees double-digit failure spikes in\n\
     turbulent stretches (heterogeneous premia make it worse than the\n\
     homogeneous model predicts).  Bisq-style deposits cut the\n\
     arbitration rate to low single digits -- the paper's Section II-A\n\
     observation and Section IV recommendation, reproduced end to end."
