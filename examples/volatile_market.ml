(* Scenario: an OTC desk quotes cross-chain swaps and wants to know how
   the deal's failure risk moves with market volatility — the paper's
   central sensitivity result, and the Bisq anecdote from Section II-A
   (3–5% of trades fail, more in turbulent markets).

     dune exec examples/volatile_market.exe *)

let () =
  let base = Swap.Params.defaults in
  print_endline "Failure risk of an initiated swap across volatility regimes";
  print_endline "(rational agents, SR-optimal exchange rate per regime)\n";
  Printf.printf "%-12s %-12s %-12s %-12s %-14s\n" "sigma" "feasible lo"
    "feasible hi" "best P*" "failure rate";
  List.iter
    (fun sigma ->
      let p = Swap.Params.with_sigma base sigma in
      match Swap.Success.maximize p with
      | Some { Swap.Success.p_star; sr } ->
        let lo, hi =
          match Swap.Cutoff.p_star_band_endpoints p with
          | Some b -> b
          | None -> (nan, nan)
        in
        Printf.printf "%-12g %-12.3f %-12.3f %-12.3f %-14.2f%%\n" sigma lo hi
          p_star
          ((1. -. sr) *. 100.)
      | None ->
        Printf.printf "%-12g %-12s %-12s %-12s %-14s\n" sigma "-" "-" "-"
          "never initiated")
    [ 0.02; 0.05; 0.08; 0.1; 0.15; 0.2; 0.3; 0.5 ];

  (* A sampled week of prices: run the protocol repeatedly along one
     realistic path and count failures. *)
  print_endline "\nReplaying swaps along one simulated fortnight of prices:";
  let rng = Numerics.Rng.create ~seed:2024 () in
  let p = Swap.Params.with_sigma base 0.1 in
  let gbm = Swap.Params.gbm p in
  let horizon = 14. *. 24. in
  let times = Numerics.Grid.arange ~lo:0.5 ~hi:horizon ~step:0.5 in
  let values = Stochastic.Gbm.sample_path rng gbm ~p0:p.Swap.Params.p0 ~times in
  let path = Stochastic.Path.create ~times ~values in
  let successes = ref 0 and failures = ref 0 and skipped = ref 0 in
  let swap_every = 12. in
  let start = ref 1. in
  while !start +. 40. < horizon do
    let p0_now = Stochastic.Path.at path !start in
    let p_here = Swap.Params.with_p0 p p0_now in
    (* Quote the SR-optimal rate for the current spot. *)
    (match Swap.Success.maximize p_here with
    | Some { Swap.Success.p_star; _ } ->
      let shifted t = Stochastic.Path.at path (t +. !start) in
      let policy = Swap.Agent.rational p_here ~p_star in
      let r = Swap.Protocol.run ~policy ~price:shifted p_here ~p_star in
      (match r.Swap.Protocol.outcome with
      | Swap.Protocol.Success -> incr successes
      | Swap.Protocol.Abort_t1 -> incr skipped
      | _ -> incr failures)
    | None -> incr skipped);
    start := !start +. swap_every
  done;
  Printf.printf "  %d succeeded, %d failed, %d not initiated\n" !successes
    !failures !skipped;
  Printf.printf "  realised volatility of the path: %.3f /sqrt(h) (model: 0.1)\n"
    (Stochastic.Path.realized_volatility path)
