(* Scenario: an exchange operator chooses between pure HTLCs and a
   witness-based commit protocol (AC3TW-style) for its cross-chain
   settlement rail, weighing strategic reliability, crash tolerance and
   the trust assumption.

     dune exec examples/witness_vs_htlc.exe *)

let () =
  let p = Swap.Params.defaults in
  let p_star = 2. in
  print_endline "Choosing a settlement rail: HTLC vs witness commitment\n";

  (* 1. Strategic reliability across volatility regimes. *)
  Printf.printf "%-8s %-10s %-10s %-24s\n" "sigma" "SR HTLC" "SR AC3"
    "AC3 viable rates";
  List.iter
    (fun sigma ->
      let p' = Swap.Params.with_sigma p sigma in
      let band =
        match Swap.Ac3.feasible_band p' with
        | Some (lo, hi) -> Printf.sprintf "(%.2f, %.2f)" lo hi
        | None -> "none"
      in
      Printf.printf "%-8g %-10.4f %-10.4f %-24s\n" sigma
        (Swap.Success.analytic p' ~p_star)
        (Swap.Ac3.success_rate p' ~p_star)
        band)
    [ 0.05; 0.1; 0.15; 0.2 ];

  (* 2. Crash robustness, demonstrated on the simulator. *)
  print_endline "\nCrash robustness (honest agents, live simulator runs):";
  let show label htlc ac3 =
    Printf.printf "  %-26s htlc: %-52s ac3: %s\n" label htlc ac3
  in
  let htlc_out r = Swap.Protocol.outcome_to_string r.Swap.Protocol.outcome in
  let ac3_out r = Swap.Ac3.outcome_to_string r.Swap.Ac3.outcome in
  show "no crash"
    (htlc_out (Swap.Protocol.run p ~p_star))
    (ac3_out (Swap.Ac3.run p ~p_star));
  show "bob offline from 7.5 h"
    (htlc_out (Swap.Protocol.run ~bob_offline_from:7.5 p ~p_star))
    (ac3_out (Swap.Ac3.run ~bob_offline_from:7.5 p ~p_star));
  show "both offline from 5 h"
    (htlc_out
       (Swap.Protocol.run ~alice_offline_from:5. ~bob_offline_from:5. p ~p_star))
    (ac3_out
       (Swap.Ac3.run ~alice_offline_from:5. ~bob_offline_from:5. p ~p_star));
  show "witness offline from 5 h" "n/a (no witness)"
    (ac3_out (Swap.Ac3.run ~witness_offline_from:5. p ~p_star));

  (* 3. What the witness costs in trust: quantify what it replaces. *)
  let ov = Swap.Optionality.option_values p ~p_star in
  Printf.printf
    "\nThe witness removes Alice's exit option, worth %.4f Token_a to her\n\
     (and a %.4f drag on Bob).  But a witness colluding with one party\n\
     could misdirect the full escrowed value (%.1f Token_a per swap by\n\
     committing one leg and aborting the other) -- the trust trade-off\n\
     the paper's conclusion warns about.  Collateralised HTLCs buy most\n\
     of the reliability without the witness:\n"
    ov.Swap.Optionality.alice_option ov.Swap.Optionality.bob_option
    (p_star +. p.Swap.Params.p0);
  List.iter
    (fun q ->
      Printf.printf "  collateral Q = %-4g -> SR = %.4f (trustless)\n" q
        (Swap.Collateral.success_rate (Swap.Collateral.symmetric p ~q) ~p_star))
    [ 0.25; 0.5; 1. ]
