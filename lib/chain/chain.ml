type receipt = {
  time : float;
  tx_id : Tx.id option;
  description : string;
  result : (unit, string) result;
}

type event_kind =
  | Confirm of Tx.t
  | Auto_refund of { contract_id : string }
  | Auto_escrow_timeout of { contract_id : string }
type event = { at : float; seq : int; kind : event_kind }

type fault_stats = {
  dropped : int;
  reorged : int;
  delayed : int;
  halted : int;
  extra_delay : float;
}

type t = {
  name : string;
  token : string;
  tau : float;
  mempool_delay : float;
  faults : Faults.t;
  fault_seed : int;
  mutable fee_per_tx : float;
  ledger : Ledger.t;
  htlcs : (string, Htlc.t) Hashtbl.t;
  escrows : (string, Escrow.t) Hashtbl.t;
  events : event Heap.t;
  mutable submitted : Tx.t list;  (** Reverse-chronological. *)
  mutable receipt_log : receipt list;  (** Reverse-chronological. *)
  mutable next_tx_id : int;
  mutable next_seq : int;
  mutable clock : float;
  mutable fstats : fault_stats;
}

let miner_account = "miner"

let no_fault_stats =
  { dropped = 0; reorged = 0; delayed = 0; halted = 0; extra_delay = 0. }

(* Process-wide fault counters: the per-chain [fstats] record remains the
   per-instance view, these aggregate across every chain ever simulated. *)
let m_dropped = Obs.Metrics.counter "chain.faults.dropped"
let m_reorged = Obs.Metrics.counter "chain.faults.reorged"
let m_delayed = Obs.Metrics.counter "chain.faults.delayed"
let m_halted = Obs.Metrics.counter "chain.faults.halted"
let m_txs = Obs.Metrics.counter "chain.txs_submitted"
let m_events = Obs.Metrics.counter "chain.events_executed"

let create ?(faults = Faults.none) ?(fault_seed = 0) ~name ~token ~tau
    ~mempool_delay () =
  if tau <= 0. then invalid_arg "Chain.create: requires tau > 0";
  if mempool_delay < 0. || mempool_delay >= tau then
    invalid_arg "Chain.create: requires 0 <= mempool_delay < tau (Eq. 3)";
  {
    name;
    token;
    tau;
    mempool_delay;
    faults;
    fault_seed;
    fee_per_tx = 0.;
    ledger = Ledger.create ();
    htlcs = Hashtbl.create 8;
    escrows = Hashtbl.create 8;
    events =
      Heap.create ~cmp:(fun a b ->
          let c = compare a.at b.at in
          if c <> 0 then c else compare a.seq b.seq);
    submitted = [];
    receipt_log = [];
    next_tx_id = 0;
    next_seq = 0;
    clock = 0.;
    fstats = no_fault_stats;
  }

let name t = t.name
let token t = t.token
let tau t = t.tau
let mempool_delay t = t.mempool_delay
let fee_per_tx t = t.fee_per_tx

let set_fee_per_tx t fee =
  if fee < 0. then invalid_arg "Chain.set_fee_per_tx: negative fee";
  t.fee_per_tx <- fee
let clock t = t.clock
let mint t ~account ~amount = Ledger.mint t.ledger account amount
let balance t ~account = Ledger.balance t.ledger account
let escrow_account ~contract_id = "escrow:" ^ contract_id

let system_transfer t ~from_ ~to_ ~amount =
  Ledger.transfer t.ledger ~from_ ~to_ ~amount

(* Every scheduled event funnels through here, so halt windows defer
   confirmations and auto-refunds alike. *)
let push_event t ~at kind =
  let deferred = Faults.settle_time t.faults at in
  if deferred > at then begin
    t.fstats <- { t.fstats with halted = t.fstats.halted + 1 };
    Obs.Metrics.incr m_halted
  end;
  Heap.push t.events { at = deferred; seq = t.next_seq; kind };
  t.next_seq <- t.next_seq + 1

let submit t ~at payload =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Chain.submit(%s): time %g before chain clock %g" t.name
         at t.clock);
  let id = t.next_tx_id in
  t.next_tx_id <- id + 1;
  let tx = { Tx.id; submitted_at = at; payload } in
  (* Dropped transactions stay in [submitted] — mempool-visible but
     never confirmed (censorship). *)
  t.submitted <- tx :: t.submitted;
  Obs.Metrics.incr m_txs;
  (match Faults.tx_fate t.faults ~seed:t.fault_seed ~tx_id:id ~tau:t.tau with
  | Faults.Dropped ->
    t.fstats <- { t.fstats with dropped = t.fstats.dropped + 1 };
    Obs.Metrics.incr m_dropped
  | Faults.Confirm_after { extra; reorged } ->
    if reorged then begin
      t.fstats <- { t.fstats with reorged = t.fstats.reorged + 1 };
      Obs.Metrics.incr m_reorged
    end;
    if extra > 0. then begin
      t.fstats <-
        { t.fstats with
          delayed = t.fstats.delayed + 1;
          extra_delay = t.fstats.extra_delay +. extra };
      Obs.Metrics.incr m_delayed
    end;
    push_event t ~at:(at +. t.tau +. extra) (Confirm tx));
  id

let record t ~time ~tx_id ~description ~result =
  let r = { time; tx_id; description; result } in
  t.receipt_log <- r :: t.receipt_log;
  r

(* The account footing a transaction's fee. *)
let fee_payer t (payload : Tx.payload) =
  match payload with
  | Tx.Transfer { from_; _ } -> Some from_
  | Tx.Htlc_lock { sender; _ } -> Some sender
  | Tx.Htlc_claim { contract_id; _ } ->
    Option.map (fun (h : Htlc.t) -> h.Htlc.recipient)
      (Hashtbl.find_opt t.htlcs contract_id)
  | Tx.Htlc_refund { contract_id } ->
    Option.map (fun (h : Htlc.t) -> h.Htlc.sender)
      (Hashtbl.find_opt t.htlcs contract_id)
  | Tx.Escrow_lock { owner; _ } -> Some owner
  | Tx.Escrow_decide { by; _ } -> Some by

(* Best-effort fee collection: fees never fail a valid transaction.
   Returns the forgiven remainder so receipts can record it. *)
let collect_fee t payload =
  if t.fee_per_tx > 0. then
    match fee_payer t payload with
    | None -> 0.
    | Some payer ->
      let payable = min t.fee_per_tx (Ledger.balance t.ledger payer) in
      if payable > 0. then
        Ledger.transfer t.ledger ~from_:payer ~to_:miner_account
          ~amount:payable;
      t.fee_per_tx -. payable
  else 0.

(* Execute a confirmed transaction at its confirmation time [now]. *)
let execute_tx t now (tx : Tx.t) =
  let describe = Tx.payload_to_string tx.payload in
  let result =
    match tx.payload with
    | Tx.Transfer { from_; to_; amount } -> (
      try
        Ledger.transfer t.ledger ~from_ ~to_ ~amount;
        Ok ()
      with Ledger.Insufficient_funds { have; need; _ } ->
        Error (Printf.sprintf "insufficient funds: have %g, need %g" have need))
    | Tx.Htlc_lock { contract_id; sender; recipient; amount; hash; expiry } -> (
      if Hashtbl.mem t.htlcs contract_id then
        Error (Printf.sprintf "contract %s already exists" contract_id)
      else if expiry <= now then
        Error "cannot deploy an HTLC that is already expired"
      else
        try
          Ledger.transfer t.ledger ~from_:sender
            ~to_:(escrow_account ~contract_id) ~amount;
          let contract =
            Htlc.create ~contract_id ~sender ~recipient ~amount ~hash ~expiry
              ~created_at:now
          in
          Hashtbl.replace t.htlcs contract_id contract;
          (* Funds return automatically if no claim lands by the expiry;
             the sender is credited one confirmation delay later. *)
          push_event t ~at:(expiry +. t.tau) (Auto_refund { contract_id });
          Ok ()
        with Ledger.Insufficient_funds { have; need; _ } ->
          Error
            (Printf.sprintf "insufficient funds to lock: have %g, need %g" have
               need))
    | Tx.Htlc_claim { contract_id; preimage } -> (
      match Hashtbl.find_opt t.htlcs contract_id with
      | None -> Error (Printf.sprintf "unknown contract %s" contract_id)
      | Some contract -> (
        match Htlc.try_claim contract ~preimage ~at:now with
        | Error e -> Error e
        | Ok claimed ->
          Hashtbl.replace t.htlcs contract_id claimed;
          Ledger.transfer t.ledger
            ~from_:(escrow_account ~contract_id)
            ~to_:contract.Htlc.recipient ~amount:contract.Htlc.amount;
          Ok ()))
    | Tx.Htlc_refund { contract_id } -> (
      match Hashtbl.find_opt t.htlcs contract_id with
      | None -> Error (Printf.sprintf "unknown contract %s" contract_id)
      | Some contract -> (
        match Htlc.try_refund contract ~at:now with
        | Error e -> Error e
        | Ok refunded ->
          Hashtbl.replace t.htlcs contract_id refunded;
          Ledger.transfer t.ledger
            ~from_:(escrow_account ~contract_id)
            ~to_:contract.Htlc.sender ~amount:contract.Htlc.amount;
          Ok ()))
    | Tx.Escrow_lock { contract_id; owner; counterparty; amount; arbiter; expiry }
      -> (
      if Hashtbl.mem t.escrows contract_id then
        Error (Printf.sprintf "escrow %s already exists" contract_id)
      else if expiry <= now then
        Error "cannot deploy an escrow that is already expired"
      else
        try
          Ledger.transfer t.ledger ~from_:owner
            ~to_:(escrow_account ~contract_id) ~amount;
          let contract =
            Escrow.create ~contract_id ~owner ~counterparty ~amount ~arbiter
              ~expiry ~created_at:now
          in
          Hashtbl.replace t.escrows contract_id contract;
          (* Undecided escrows abort at expiry; the owner is credited
             one confirmation delay later. *)
          push_event t ~at:(expiry +. t.tau) (Auto_escrow_timeout { contract_id });
          Ok ()
        with Ledger.Insufficient_funds { have; need; _ } ->
          Error
            (Printf.sprintf "insufficient funds to lock: have %g, need %g" have
               need))
    | Tx.Escrow_decide { contract_id; by; commit } -> (
      match Hashtbl.find_opt t.escrows contract_id with
      | None -> Error (Printf.sprintf "unknown escrow %s" contract_id)
      | Some contract -> (
        match Escrow.decide contract ~by ~commit ~at:now with
        | Error e -> Error e
        | Ok decided ->
          Hashtbl.replace t.escrows contract_id decided;
          let to_ =
            if commit then contract.Escrow.counterparty
            else contract.Escrow.owner
          in
          Ledger.transfer t.ledger
            ~from_:(escrow_account ~contract_id)
            ~to_ ~amount:contract.Escrow.amount;
          Ok ()))
  in
  (* Fees are charged after the effect and only on executed
     transactions, so they can never fail an otherwise-valid one.
     Unpayable remainders are forgiven but audited on the receipt. *)
  let forgiven = if Result.is_ok result then collect_fee t tx.payload else 0. in
  let describe =
    if forgiven > 1e-12 then
      Printf.sprintf "%s [fee forgiven: %g]" describe forgiven
    else describe
  in
  record t ~time:now ~tx_id:(Some tx.Tx.id) ~description:describe ~result

let execute_escrow_timeout t now ~contract_id =
  match Hashtbl.find_opt t.escrows contract_id with
  | None ->
    record t ~time:now ~tx_id:None
      ~description:(Printf.sprintf "escrow-timeout %s" contract_id)
      ~result:(Error "unknown escrow")
  | Some contract ->
    if not (Escrow.is_held contract) then
      record t ~time:now ~tx_id:None
        ~description:(Printf.sprintf "escrow-timeout %s (noop)" contract_id)
        ~result:(Ok ())
    else begin
      match Escrow.try_timeout contract ~at:contract.Escrow.expiry with
      | Error e ->
        record t ~time:now ~tx_id:None
          ~description:(Printf.sprintf "escrow-timeout %s" contract_id)
          ~result:(Error e)
      | Ok aborted ->
        Hashtbl.replace t.escrows contract_id aborted;
        Ledger.transfer t.ledger
          ~from_:(escrow_account ~contract_id)
          ~to_:contract.Escrow.owner ~amount:contract.Escrow.amount;
        record t ~time:now ~tx_id:None
          ~description:
            (Printf.sprintf "escrow-timeout %s: %g returned to %s" contract_id
               contract.Escrow.amount contract.Escrow.owner)
          ~result:(Ok ())
    end

let execute_auto_refund t now ~contract_id =
  match Hashtbl.find_opt t.htlcs contract_id with
  | None ->
    record t ~time:now ~tx_id:None
      ~description:(Printf.sprintf "auto-refund %s" contract_id)
      ~result:(Error "unknown contract")
  | Some contract ->
    if not (Htlc.is_locked contract) then
      (* Already claimed or explicitly refunded: nothing to do. *)
      record t ~time:now ~tx_id:None
        ~description:(Printf.sprintf "auto-refund %s (noop)" contract_id)
        ~result:(Ok ())
    else begin
      (* The lock expired at [contract.expiry]; funds are credited now
         (= expiry + tau). *)
      match Htlc.try_refund contract ~at:contract.Htlc.expiry with
      | Error e ->
        record t ~time:now ~tx_id:None
          ~description:(Printf.sprintf "auto-refund %s" contract_id)
          ~result:(Error e)
      | Ok refunded ->
        Hashtbl.replace t.htlcs contract_id refunded;
        Ledger.transfer t.ledger
          ~from_:(escrow_account ~contract_id)
          ~to_:contract.Htlc.sender ~amount:contract.Htlc.amount;
        record t ~time:now ~tx_id:None
          ~description:
            (Printf.sprintf "auto-refund %s: %g returned to %s" contract_id
               contract.Htlc.amount contract.Htlc.sender)
          ~result:(Ok ())
    end

let advance t ~until =
  if until < t.clock then
    invalid_arg
      (Printf.sprintf "Chain.advance(%s): until %g before clock %g" t.name
         until t.clock);
  let produced = ref [] in
  let rec loop () =
    match Heap.peek t.events with
    | Some ev when ev.at <= until ->
      ignore (Heap.pop_exn t.events);
      t.clock <- ev.at;
      let receipt =
        match ev.kind with
        | Confirm tx -> execute_tx t ev.at tx
        | Auto_refund { contract_id } ->
          execute_auto_refund t ev.at ~contract_id
        | Auto_escrow_timeout { contract_id } ->
          execute_escrow_timeout t ev.at ~contract_id
      in
      produced := receipt :: !produced;
      Obs.Metrics.incr m_events;
      loop ()
    | _ -> ()
  in
  loop ();
  t.clock <- until;
  List.rev !produced

let htlc t ~contract_id = Hashtbl.find_opt t.htlcs contract_id
let escrow t ~contract_id = Hashtbl.find_opt t.escrows contract_id
let receipts t = List.rev t.receipt_log

let tx_receipt t ~tx_id =
  List.find_opt (fun r -> r.tx_id = Some tx_id) t.receipt_log

let faults t = t.faults
let fault_stats t = t.fstats

let observable_txs t ~at =
  List.rev
    (List.filter
       (fun (tx : Tx.t) -> tx.Tx.submitted_at +. t.mempool_delay <= at)
       t.submitted)

let observed_preimage t ~at ~hash =
  let visible = observable_txs t ~at in
  List.find_map
    (fun (tx : Tx.t) ->
      match Tx.reveals_preimage tx.Tx.payload with
      | Some preimage when Secret.verify ~hash ~preimage -> Some preimage
      | _ -> None)
    visible

let total_supply t = Ledger.total_supply t.ledger

let accounts t =
  List.map (fun a -> (a, Ledger.balance t.ledger a)) (Ledger.accounts t.ledger)
