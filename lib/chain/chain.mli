(** Deterministic single-token blockchain simulator.

    Matches the paper's chain abstraction (Assumptions 1–2):
    - a transaction submitted at time [s] is confirmed (executed) at
      [s + tau], where [tau] is the chain's constant confirmation time;
    - a submitted transaction becomes visible in the mempool at
      [s + mempool_delay] (the paper's [eps]), before confirmation;
    - transaction fees are zero;
    - an HTLC whose time lock expires at [e] with no successful claim
      returns its funds to the sender, credited at [e + tau]
      (Eqs. 10–11: [t7 = t_b + tau_b], [t8 = t_a + tau_a]).

    A {!Faults} schedule relaxes the first point deterministically
    (seeded stochastic delays, drops, halts, reorgs); with the default
    {!Faults.none} the chain honours Assumption 1 exactly. *)

type t

type receipt = {
  time : float;  (** When the effect was applied (confirmation time). *)
  tx_id : Tx.id option;  (** [None] for auto-refunds. *)
  description : string;
  result : (unit, string) result;
}

type fault_stats = {
  dropped : int;  (** Transactions censored (never confirm). *)
  reorged : int;  (** Transactions re-mined one [tau] later. *)
  delayed : int;  (** Transactions with nonzero extra latency. *)
  halted : int;  (** Events deferred past a halt window. *)
  extra_delay : float;  (** Total extra confirmation latency injected. *)
}

val create :
  ?faults:Faults.t ->
  ?fault_seed:int ->
  name:string ->
  token:string ->
  tau:float ->
  mempool_delay:float ->
  unit ->
  t
(** @raise Invalid_argument unless [0 <= mempool_delay < tau] (Eq. 3)
    and [tau > 0].  Transaction fees default to 0, matching the paper's
    Assumption 2; see {!set_fee_per_tx}.  [faults] (default
    {!Faults.none}) perturbs confirmations per its schedule,
    deterministically in [fault_seed] (default 0). *)

val miner_account : string
(** Account accumulating transaction fees. *)

val fee_per_tx : t -> float

val set_fee_per_tx : t -> float -> unit
(** Configure a flat per-transaction fee, charged at confirmation —
    after the transaction's effect, and only on successfully executed
    transactions — to the initiating account (sender / claimer /
    owner / arbiter) and credited to {!miner_account}.  When the
    initiator cannot pay the full fee the remainder is forgiven, so
    fees never make an otherwise-valid transaction fail; the forgiven
    amount is recorded on the receipt description
    ([... \[fee forgiven: x\]]) so fee experiments can audit it.
    @raise Invalid_argument on negative fees. *)

val name : t -> string
val token : t -> string
val tau : t -> float
val mempool_delay : t -> float

val clock : t -> float
(** Time up to which events have been processed. *)

val mint : t -> account:string -> amount:float -> unit
(** Bootstrap balances (genesis allocation). *)

val balance : t -> account:string -> float

val system_transfer : t -> from_:string -> to_:string -> amount:float -> unit
(** Immediate ledger transfer bypassing confirmation delay.  Models the
    collateral contract's "special permission to charge each agent
    simultaneously" (Section IV, assumption 1) — not reachable through
    ordinary transactions.
    @raise Ledger.Insufficient_funds if [from_] lacks the amount. *)

val submit : t -> at:float -> Tx.payload -> Tx.id
(** Queues a transaction at time [at]; it executes at [at + tau] (plus
    any fault-injected extra latency; a dropped transaction never
    executes but stays mempool-visible).
    @raise Invalid_argument if [at] is before the chain clock. *)

val advance : t -> until:float -> receipt list
(** Processes every confirmation and expiry event with time [<= until],
    in chronological order (FIFO within equal times), advances the
    clock, and returns the receipts produced by this call in order.
    @raise Invalid_argument if [until] is before the clock. *)

val htlc : t -> contract_id:string -> Htlc.t option
(** Contract state as of the current clock. *)

val escrow : t -> contract_id:string -> Escrow.t option
(** Arbitrated-escrow state as of the current clock. *)

val receipts : t -> receipt list
(** All receipts so far, chronological. *)

val tx_receipt : t -> tx_id:Tx.id -> receipt option
(** The receipt of a specific transaction, if it has confirmed ([None]
    while pending — or forever, if the fault layer dropped it). *)

val faults : t -> Faults.t
(** The fault schedule this chain was created with. *)

val fault_stats : t -> fault_stats
(** Running counters of fault-layer interference on this chain; all
    zero under {!Faults.none}. *)

val observable_txs : t -> at:float -> Tx.t list
(** Transactions visible at time [at]: submitted no later than
    [at - mempool_delay] (mempool visibility; confirmed transactions
    remain visible).  Chronological by submission. *)

val observed_preimage : t -> at:float -> hash:string -> string option
(** Watches the mempool: the preimage of [hash] if some visible claim
    transaction reveals it — how Bob learns the secret at
    [t4 = t3 + eps_b] (Eq. 7). *)

val escrow_account : contract_id:string -> string
(** The internal account holding an HTLC's locked funds. *)

val total_supply : t -> float
(** Conservation check: constant across all operations. *)

val accounts : t -> (string * float) list
(** Every account with its balance, in unspecified order. *)
