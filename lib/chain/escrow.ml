type state =
  | Held
  | Committed of { at : float }
  | Aborted of { at : float }

type t = {
  contract_id : string;
  owner : string;
  counterparty : string;
  amount : float;
  arbiter : string;
  expiry : float;
  created_at : float;
  state : state;
}

let create ~contract_id ~owner ~counterparty ~amount ~arbiter ~expiry
    ~created_at =
  if amount < 0. then invalid_arg "Escrow.create: negative amount";
  if expiry <= created_at then
    invalid_arg "Escrow.create: expiry must be after creation";
  { contract_id; owner; counterparty; amount; arbiter; expiry; created_at;
    state = Held }

let decide t ~by ~commit ~at =
  match t.state with
  | Committed _ -> Error "already committed"
  | Aborted _ -> Error "already aborted"
  | Held ->
    if not (String.equal by t.arbiter) then Error "not the arbiter"
    else if at > t.expiry then Error "arbitration window expired"
    else if commit then Ok { t with state = Committed { at } }
    else Ok { t with state = Aborted { at } }

let try_timeout t ~at =
  match t.state with
  | Committed _ -> Error "already committed"
  | Aborted _ -> Error "already aborted"
  | Held ->
    if at < t.expiry then Error "not yet expired"
    else Ok { t with state = Aborted { at } }

let is_held t = t.state = Held

let state_to_string = function
  | Held -> "held"
  | Committed { at } -> Printf.sprintf "committed@%g" at
  | Aborted { at } -> Printf.sprintf "aborted@%g" at
