(** Arbitrated escrow contract — the on-chain half of witness-based
    atomic commitment (AC3TW, Zakhary et al. [31]): funds locked by the
    owner are released to the counterparty on the arbiter's [commit]
    verdict, returned to the owner on [abort], and returned
    automatically if the arbiter never decides by the expiry (crash
    tolerance for the witness itself). *)

type state =
  | Held
  | Committed of { at : float }  (** Paid to the counterparty. *)
  | Aborted of { at : float }  (** Returned to the owner. *)

type t = {
  contract_id : string;
  owner : string;
  counterparty : string;
  amount : float;
  arbiter : string;  (** Only this account's verdict is accepted. *)
  expiry : float;
  created_at : float;
  state : state;
}

val create :
  contract_id:string -> owner:string -> counterparty:string -> amount:float ->
  arbiter:string -> expiry:float -> created_at:float -> t
(** @raise Invalid_argument if [amount < 0.] or [expiry <= created_at]. *)

val decide : t -> by:string -> commit:bool -> at:float -> (t, string) result
(** The arbiter's verdict; rejected from any other account, after the
    expiry, or once the contract is settled. *)

val try_timeout : t -> at:float -> (t, string) result
(** Aborts an undecided contract at or after the expiry. *)

val is_held : t -> bool
val state_to_string : state -> string
