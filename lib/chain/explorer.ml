type block = { height : int; time : float; events : string list }

let blocks chain =
  let receipts = Chain.receipts chain in
  let rec group height acc current current_time = function
    | [] ->
      List.rev
        (if current = [] then acc
         else { height; time = current_time; events = List.rev current } :: acc)
    | (r : Chain.receipt) :: rest ->
      let line =
        Printf.sprintf "%s -> %s" r.Chain.description
          (match r.Chain.result with Ok () -> "ok" | Error e -> "failed: " ^ e)
      in
      if current = [] || r.Chain.time = current_time then
        group height acc (line :: current) r.Chain.time rest
      else
        group (height + 1)
          ({ height; time = current_time; events = List.rev current } :: acc)
          [ line ] r.Chain.time rest
  in
  group 0 [] [] nan receipts

let balances chain =
  let all = Chain.accounts chain in
  let nonzero = List.filter (fun (_, v) -> abs_float v > 1e-12) all in
  List.sort (fun (_, a) (_, b) -> compare b a) nonzero

let render ?max_blocks chain =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "chain %s (token %s, tau %g h, mempool delay %g h)\n"
       (Chain.name chain) (Chain.token chain) (Chain.tau chain)
       (Chain.mempool_delay chain));
  let all = blocks chain in
  let shown =
    match max_blocks with
    | None -> all
    | Some n ->
      let len = List.length all in
      if len <= n then all else List.filteri (fun i _ -> i >= len - n) all
  in
  List.iter
    (fun b ->
      Buffer.add_string buf (Printf.sprintf "block %d @ %g h\n" b.height b.time);
      List.iter
        (fun e -> Buffer.add_string buf (Printf.sprintf "  %s\n" e))
        b.events)
    shown;
  Buffer.add_string buf "balances:\n";
  List.iter
    (fun (account, v) ->
      Buffer.add_string buf (Printf.sprintf "  %-24s %g\n" account v))
    (balances chain);
  Buffer.contents buf
