(** Block-explorer-style views over a simulated chain: receipts grouped
    into pseudo-blocks by confirmation instant, plus balance and
    contract summaries.  Purely observational — used by examples,
    traces, and debugging. *)

type block = {
  height : int;  (** 0-based, in confirmation order. *)
  time : float;  (** The shared confirmation instant. *)
  events : string list;  (** Human-readable receipt lines. *)
}

val blocks : Chain.t -> block list
(** All processed activity, grouped by confirmation time (our
    deterministic-delay chain confirms everything submitted at the same
    instant together — the closest analogue of a block). *)

val render : ?max_blocks:int -> Chain.t -> string
(** Pretty text dump: chain header, the last [max_blocks] blocks
    (default all), and nonzero balances. *)

val balances : Chain.t -> (string * float) list
(** Nonzero account balances, largest first. *)
