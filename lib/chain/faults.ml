type delay =
  | No_extra_delay
  | Shifted_exponential of { mean : float; cap : float }
  | Bounded_pareto of { alpha : float; scale : float; cap : float }

type t = {
  drop_prob : float;
  delay_prob : float;
  delay : delay;
  reorg_prob : float;
  halts : (float * float) list;
}

let none =
  {
    drop_prob = 0.;
    delay_prob = 1.;
    delay = No_extra_delay;
    reorg_prob = 0.;
    halts = [];
  }

let is_none t =
  t.drop_prob = 0. && t.reorg_prob = 0. && t.halts = []
  && (t.delay_prob = 0.
     ||
     match t.delay with
     | No_extra_delay -> true
     | Shifted_exponential { mean; cap } -> mean = 0. || cap = 0.
     | Bounded_pareto { cap; _ } -> cap = 0.)

let check_prob what p =
  if not (p >= 0. && p <= 1.) then
    invalid_arg (Printf.sprintf "Faults.create: %s must be in [0, 1]" what)

let check_pos what x =
  if not (x > 0. && Float.is_finite x) then
    invalid_arg
      (Printf.sprintf "Faults.create: %s must be positive and finite" what)

let check_cap cap =
  if not (cap >= 0. && Float.is_finite cap) then
    invalid_arg "Faults.create: delay cap must be finite and >= 0"

let create ?(drop_prob = 0.) ?(delay_prob = 1.) ?(delay = No_extra_delay)
    ?(reorg_prob = 0.) ?(halts = []) () =
  check_prob "drop_prob" drop_prob;
  check_prob "delay_prob" delay_prob;
  check_prob "reorg_prob" reorg_prob;
  (match delay with
  | No_extra_delay -> ()
  | Shifted_exponential { mean; cap } ->
    check_pos "delay mean" mean;
    check_cap cap
  | Bounded_pareto { alpha; scale; cap } ->
    check_pos "pareto alpha" alpha;
    check_pos "pareto scale" scale;
    check_cap cap);
  List.iter
    (fun (h0, h1) ->
      if not (Float.is_finite h0 && Float.is_finite h1 && h0 <= h1) then
        invalid_arg "Faults.create: halt window requires h0 <= h1 (finite)")
    halts;
  let halts = List.sort (fun (a, _) (b, _) -> compare a b) halts in
  let rec check_disjoint = function
    | (_, h1) :: ((h0', _) :: _ as rest) ->
      if h1 > h0' then invalid_arg "Faults.create: halt windows overlap";
      check_disjoint rest
    | _ -> ()
  in
  check_disjoint halts;
  { drop_prob; delay_prob; delay; reorg_prob; halts }

type fate = Dropped | Confirm_after of { extra : float; reorged : bool }

(* Each transaction gets its own generator keyed by (seed, tx_id), so a
   fate never depends on how many draws other transactions consumed:
   replaying the same (seed, schedule) against a different submission
   pattern perturbs the overlapping transactions identically. *)
let tx_rng ~seed ~tx_id =
  Numerics.Rng.create ~seed:(seed lxor ((tx_id + 1) * 0x2545F4914F6CDD1D)) ()

let draw_extra rng = function
  | No_extra_delay -> 0.
  | Shifted_exponential { mean; cap } ->
    if mean <= 0. then 0.
    else min cap (Numerics.Rng.exponential rng ~rate:(1. /. mean))
  | Bounded_pareto { alpha; scale; cap } ->
    let u = max 1e-12 (Numerics.Rng.uniform rng) in
    min cap ((scale *. (u ** (-1. /. alpha))) -. scale)

let tx_fate t ~seed ~tx_id ~tau =
  if is_none t then Confirm_after { extra = 0.; reorged = false }
  else begin
    let rng = tx_rng ~seed ~tx_id in
    (* Fixed draw order (drop, delay gate, delay size, reorg) keeps a
       transaction's fate a pure function of (seed, tx_id, schedule). *)
    let u_drop = Numerics.Rng.uniform rng in
    let u_gate = Numerics.Rng.uniform rng in
    let extra = draw_extra rng t.delay in
    let u_reorg = Numerics.Rng.uniform rng in
    if u_drop < t.drop_prob then Dropped
    else begin
      let extra = if u_gate < t.delay_prob then extra else 0. in
      let reorged = u_reorg < t.reorg_prob in
      let extra = if reorged then extra +. tau else extra in
      Confirm_after { extra; reorged }
    end
  end

let settle_time t at =
  (* Halts are sorted, so one left-to-right pass chains deferrals. *)
  List.fold_left
    (fun at (h0, h1) -> if at >= h0 && at < h1 then h1 else at)
    at t.halts

let max_extra_delay t =
  match t.delay with
  | No_extra_delay -> 0.
  | Shifted_exponential { cap; _ } | Bounded_pareto { cap; _ } -> cap

let horizon_margin t ~tau =
  let reorg = if t.reorg_prob > 0. then tau else 0. in
  let halt_end =
    List.fold_left (fun acc (_, h1) -> max acc h1) 0. t.halts
  in
  max_extra_delay t +. reorg +. halt_end

let delay_to_string = function
  | No_extra_delay -> "none"
  | Shifted_exponential { mean; cap } ->
    Printf.sprintf "exp(mean=%g, cap=%g)" mean cap
  | Bounded_pareto { alpha; scale; cap } ->
    Printf.sprintf "pareto(alpha=%g, scale=%g, cap=%g)" alpha scale cap

let to_string t =
  if is_none t then "no faults"
  else
    Printf.sprintf "drop=%g delay=%s@p=%g reorg=%g halts=[%s]" t.drop_prob
      (delay_to_string t.delay) t.delay_prob t.reorg_prob
      (String.concat "; "
         (List.map (fun (h0, h1) -> Printf.sprintf "%g,%g" h0 h1) t.halts))
