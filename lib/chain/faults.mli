(** Per-chain fault schedules for the simulator.

    The paper's Assumption 1 idealises each chain: a transaction
    submitted at [s] is confirmed at exactly [s + tau], always.  Every
    fault below is a bounded, seed-deterministic departure from that
    assumption, so robustness experiments can measure how much timelock
    margin (Eq. 12 slack) is needed to absorb realistic chain
    behaviour:

    - {b Stochastic confirmation delay} ([delay], gated by
      [delay_prob]): with probability [delay_prob] the confirmation
      time becomes [s + tau + extra] with [extra >= 0] drawn from a
      truncated shifted-exponential or bounded-Pareto law; otherwise
      the transaction confirms on time.  This models congestion: [tau]
      stays the {e typical} inter-block latency but some transactions
      straggle.  Caps keep every draw bounded, so refund horizons
      remain finite.
    - {b Drop/censorship} ([drop_prob]): with this probability the
      transaction is never mined at all.  It {e stays visible in the
      mempool} (so a censored reveal still leaks Alice's preimage —
      the dangerous asymmetry the chaos tests exercise), but no
      confirmation event ever fires and its effect never applies.
    - {b Halt windows} ([halts]): during each [[h0, h1)] interval the
      chain makes no progress; any event (confirmation, auto-refund)
      that would land inside a window is deferred to [h1].  Models
      outages and consensus stalls.
    - {b Single-depth reorgs} ([reorg_prob]): with this probability the
      block carrying the transaction is orphaned and the transaction is
      re-mined in the next block, confirming one extra [tau] later.
      Because the simulator applies a transaction's effect only at its
      (final) confirmation, orphan-then-remine is observationally
      equivalent to this extra delay — no ledger rollback is needed,
      and state read at decision times is always post-reorg state.

    Fates are drawn from an RNG keyed by [(seed, tx_id)], not from a
    shared stream, so a transaction's fate is independent of how many
    other transactions were submitted before it: the same
    [(seed, schedule)] pair replays an identical trace even when agents
    change their submission behaviour around it.  [none] draws nothing
    at all — a chain created with [Faults.none] is bit-for-bit
    identical to one created without the fault layer. *)

type delay =
  | No_extra_delay  (** Assumption 1 exactly: confirmation at [s + tau]. *)
  | Shifted_exponential of { mean : float; cap : float }
      (** [extra ~ min(cap, Exp(1/mean))]; light-tailed congestion. *)
  | Bounded_pareto of { alpha : float; scale : float; cap : float }
      (** [extra ~ min(cap, scale * U^(-1/alpha) - scale)]; heavy-tailed
          congestion (occasional very late confirmations). *)

type t = private {
  drop_prob : float;  (** Per-transaction censorship probability. *)
  delay_prob : float;
      (** Probability that a non-dropped transaction suffers extra
          latency at all; the remainder confirm exactly on time. *)
  delay : delay;  (** Extra-confirmation-latency law. *)
  reorg_prob : float;  (** Per-transaction single-depth reorg probability. *)
  halts : (float * float) list;
      (** Disjoint [[h0, h1)] outage windows, sorted by start. *)
}

val none : t
(** No faults: the chain honours Assumption 1 exactly and performs no
    RNG draws. *)

val create :
  ?drop_prob:float ->
  ?delay_prob:float ->
  ?delay:delay ->
  ?reorg_prob:float ->
  ?halts:(float * float) list ->
  unit ->
  t
(** @raise Invalid_argument unless probabilities lie in [[0, 1]], delay
    parameters are positive and finite with a finite nonnegative cap,
    and halt windows are well-formed ([h0 <= h1]); windows are sorted
    and must not overlap. *)

val is_none : t -> bool
(** True iff the schedule can never perturb any transaction. *)

type fate =
  | Dropped  (** Never confirms; stays mempool-visible. *)
  | Confirm_after of { extra : float; reorged : bool }
      (** Confirms at [submitted_at + tau + extra] (before halt
          deferral); [extra] includes one [tau] when [reorged]. *)

val tx_fate : t -> seed:int -> tx_id:int -> tau:float -> fate
(** The (deterministic) fate of transaction [tx_id] on a chain seeded
    with [seed].  [Faults.none] short-circuits to
    [Confirm_after { extra = 0.; reorged = false }] without touching
    any RNG. *)

val settle_time : t -> float -> float
(** [settle_time t at] defers [at] past any halt window containing it
    (chained: if [h1] lands inside a later window, defers again). *)

val horizon_margin : t -> tau:float -> float
(** A safe upper bound on how far beyond the fault-free horizon events
    can be pushed by this schedule: the delay cap, plus one [tau] if
    reorgs are possible, plus the end of the last halt window.  Runners
    add this to their settlement horizon so every deferred auto-refund
    still executes. *)

val to_string : t -> string
