(** Mutable binary min-heap, the event queue of the discrete-event
    simulator. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Minimum element without removing it. *)

val pop : 'a t -> 'a option
(** Removes and returns the minimum element. *)

val pop_exn : 'a t -> 'a
(** @raise Not_found on an empty heap. *)

val to_sorted_list : 'a t -> 'a list
(** Drains a copy of the heap in ascending order (the heap itself is
    unchanged). *)
