type state =
  | Locked
  | Claimed of { at : float; preimage : string }
  | Refunded of { at : float }

type t = {
  contract_id : string;
  sender : string;
  recipient : string;
  amount : float;
  hash : string;
  expiry : float;
  created_at : float;
  state : state;
}

let create ~contract_id ~sender ~recipient ~amount ~hash ~expiry ~created_at =
  if amount < 0. then invalid_arg "Htlc.create: negative amount";
  if expiry <= created_at then
    invalid_arg "Htlc.create: expiry must be after creation";
  { contract_id; sender; recipient; amount; hash; expiry; created_at;
    state = Locked }

let try_claim t ~preimage ~at =
  match t.state with
  | Claimed _ -> Error "already claimed"
  | Refunded _ -> Error "already refunded"
  | Locked ->
    if at > t.expiry then Error "time lock expired"
    else if not (Secret.verify ~hash:t.hash ~preimage) then
      Error "preimage does not match hashlock"
    else Ok { t with state = Claimed { at; preimage } }

let try_refund t ~at =
  match t.state with
  | Claimed _ -> Error "already claimed"
  | Refunded _ -> Error "already refunded"
  | Locked ->
    if at < t.expiry then Error "time lock not yet expired"
    else Ok { t with state = Refunded { at } }

let is_locked t = t.state = Locked

let state_to_string = function
  | Locked -> "locked"
  | Claimed { at; _ } -> Printf.sprintf "claimed@%g" at
  | Refunded { at } -> Printf.sprintf "refunded@%g" at
