(** Hash time lock contract state machine.

    Lifecycle: [Locked] at deployment; then exactly one of
    [Claimed] (recipient supplied the preimage before expiry) or
    [Refunded] (expiry passed, funds returned to the sender). *)

type state =
  | Locked
  | Claimed of { at : float; preimage : string }
  | Refunded of { at : float }

type t = {
  contract_id : string;
  sender : string;
  recipient : string;
  amount : float;
  hash : string;
  expiry : float;
  created_at : float;
  state : state;
}

val create :
  contract_id:string -> sender:string -> recipient:string -> amount:float ->
  hash:string -> expiry:float -> created_at:float -> t
(** @raise Invalid_argument if [amount < 0.] or [expiry <= created_at]. *)

val try_claim : t -> preimage:string -> at:float -> (t, string) result
(** Succeeds iff the contract is still [Locked], the preimage hashes to
    the commitment, and [at <= expiry] (Eq. 8/9: the claim must be
    confirmed no later than the time lock). *)

val try_refund : t -> at:float -> (t, string) result
(** Succeeds iff the contract is still [Locked] and [at >= expiry]. *)

val is_locked : t -> bool
val state_to_string : state -> string
