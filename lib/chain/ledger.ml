type account = string
type t = (account, float) Hashtbl.t

exception Insufficient_funds of { account : account; have : float; need : float }

let epsilon = 1e-9

let create () : t = Hashtbl.create 16
let balance t account = Option.value ~default:0. (Hashtbl.find_opt t account)

let set t account v =
  if v < 0. then Hashtbl.replace t account 0. else Hashtbl.replace t account v

let mint t account amount =
  if amount < 0. then invalid_arg "Ledger.mint: negative amount";
  set t account (balance t account +. amount)

let transfer t ~from_ ~to_ ~amount =
  if amount < 0. then invalid_arg "Ledger.transfer: negative amount";
  let have = balance t from_ in
  if have +. epsilon < amount then
    raise (Insufficient_funds { account = from_; have; need = amount });
  set t from_ (have -. amount);
  set t to_ (balance t to_ +. amount)

(* Both walks visit accounts in sorted order, not hash order: [accounts]
   is a public listing, and float addition is not associative, so even
   [total_supply] would otherwise depend on the table's insertion
   history. *)
let accounts t = Hashtbl.to_seq_keys t |> List.of_seq |> List.sort compare

let total_supply t =
  List.fold_left (fun acc a -> acc +. balance t a) 0. (accounts t)
