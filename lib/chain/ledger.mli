(** Single-token account ledger of one chain.  Amounts are nonnegative
    floats (the paper's model is real-valued; transaction fees are
    assumed negligible, Assumption 2). *)

type account = string

type t

exception Insufficient_funds of { account : account; have : float; need : float }

val create : unit -> t
val balance : t -> account -> float
(** 0. for unknown accounts. *)

val mint : t -> account -> float -> unit
(** Creates [amount] tokens in [account] (test/bootstrap helper).
    @raise Invalid_argument on negative amounts. *)

val transfer : t -> from_:account -> to_:account -> amount:float -> unit
(** @raise Insufficient_funds if [from_] lacks the amount (with a small
    epsilon tolerance for float rounding).
    @raise Invalid_argument on negative amounts. *)

val total_supply : t -> float
(** Summed over accounts in sorted order, so the float total is
    reproducible regardless of the table's insertion history. *)

val accounts : t -> account list
(** Sorted ascending. *)
