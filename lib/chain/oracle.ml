type t = {
  chain : Chain.t;
  alice : string;
  bob : string;
  q : float;
  vault : string;
  mutable is_deposited : bool;
  mutable released : float;
}

(* Atomic so that concurrent simulations (domain pool) mint unique vault
   account names without racing. *)
let counter = Atomic.make 0

let create chain ~alice ~bob ~q =
  if q < 0. then invalid_arg "Oracle.create: negative collateral";
  let id = 1 + Atomic.fetch_and_add counter 1 in
  {
    chain;
    alice;
    bob;
    q;
    vault = Printf.sprintf "oracle:vault:%d" id;
    is_deposited = false;
    released = 0.;
  }

let q t = t.q
let vault_account t = t.vault

let deposit t ~at:_ =
  if t.is_deposited then invalid_arg "Oracle.deposit: already deposited";
  (* Instantaneous charge per the paper's special-permission assumption:
     both debits happen atomically, before any swap action. *)
  Chain.system_transfer t.chain ~from_:t.alice ~to_:t.vault ~amount:t.q;
  Chain.system_transfer t.chain ~from_:t.bob ~to_:t.vault ~amount:t.q;
  t.is_deposited <- true

let release t ~at ~to_ ~amount =
  if amount < 0. then invalid_arg "Oracle.release: negative amount";
  if t.released +. amount > (2. *. t.q) +. 1e-9 then
    invalid_arg "Oracle.release: vault overdrawn";
  t.released <- t.released +. amount;
  Chain.submit t.chain ~at (Tx.Transfer { from_ = t.vault; to_; amount })

let released_total t = t.released
let deposited t = t.is_deposited
