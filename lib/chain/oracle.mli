(** Collateral Oracle of Section IV: a trusted contract on Chain_a that
    charges both agents the same collateral [q] before the swap, watches
    the outcome on both chains, and settles:

    - swap succeeds: each agent gets their own collateral back;
    - an agent stops: the {e other} agent receives both deposits (2q).

    Deposits are taken instantaneously at [deposit] time — the paper
    grants the contract "special permission to charge each of them
    simultaneously" (Section IV, assumption 1). Releases are ordinary
    chain transfers from the vault and take one confirmation delay to
    credit, matching the [t + tau_a] receipt times in the paper. *)

type t

val create : Chain.t -> alice:string -> bob:string -> q:float -> t
(** @raise Invalid_argument if [q < 0.]. *)

val q : t -> float
val vault_account : t -> string

val deposit : t -> at:float -> unit
(** Charges [q] from each agent into the vault (instantaneous ledger
    debit, per the special-permission assumption).
    @raise Ledger.Insufficient_funds if either agent cannot pay.
    @raise Invalid_argument if called twice. *)

val release : t -> at:float -> to_:string -> amount:float -> Tx.id
(** Submits a vault transfer; credited at [at + tau_a].
    @raise Invalid_argument if the vault would be overdrawn by the total
    amount released so far. *)

val released_total : t -> float
val deposited : t -> bool
