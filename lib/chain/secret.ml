open Numerics

type t = { preimage : string; hash : string }

let of_preimage preimage = { preimage; hash = Sha256.digest preimage }

let generate rng =
  let b = Bytes.create 32 in
  for i = 0 to 3 do
    let word = Rng.bits64 rng in
    for j = 0 to 7 do
      Bytes.set b
        ((i * 8) + j)
        (Char.chr
           (Int64.to_int
              (Int64.logand (Int64.shift_right_logical word (8 * j)) 0xFFL)))
    done
  done;
  of_preimage (Bytes.to_string b)

let verify ~hash ~preimage = String.equal (Sha256.digest preimage) hash
let hash_hex t = Sha256.hex_of_bytes t.hash
