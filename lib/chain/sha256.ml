(* FIPS 180-4 SHA-256.  Works on 32-bit words via Int32. *)

let k =
  [| 0x428a2f98l; 0x71374491l; 0xb5c0fbcfl; 0xe9b5dba5l; 0x3956c25bl;
     0x59f111f1l; 0x923f82a4l; 0xab1c5ed5l; 0xd807aa98l; 0x12835b01l;
     0x243185bel; 0x550c7dc3l; 0x72be5d74l; 0x80deb1fel; 0x9bdc06a7l;
     0xc19bf174l; 0xe49b69c1l; 0xefbe4786l; 0x0fc19dc6l; 0x240ca1ccl;
     0x2de92c6fl; 0x4a7484aal; 0x5cb0a9dcl; 0x76f988dal; 0x983e5152l;
     0xa831c66dl; 0xb00327c8l; 0xbf597fc7l; 0xc6e00bf3l; 0xd5a79147l;
     0x06ca6351l; 0x14292967l; 0x27b70a85l; 0x2e1b2138l; 0x4d2c6dfcl;
     0x53380d13l; 0x650a7354l; 0x766a0abbl; 0x81c2c92el; 0x92722c85l;
     0xa2bfe8a1l; 0xa81a664bl; 0xc24b8b70l; 0xc76c51a3l; 0xd192e819l;
     0xd6990624l; 0xf40e3585l; 0x106aa070l; 0x19a4c116l; 0x1e376c08l;
     0x2748774cl; 0x34b0bcb5l; 0x391c0cb3l; 0x4ed8aa4al; 0x5b9cca4fl;
     0x682e6ff3l; 0x748f82eel; 0x78a5636fl; 0x84c87814l; 0x8cc70208l;
     0x90befffal; 0xa4506cebl; 0xbef9a3f7l; 0xc67178f2l |]

let rotr x n =
  Int32.logor (Int32.shift_right_logical x n) (Int32.shift_left x (32 - n))

let ( ^^ ) = Int32.logxor
let ( &&& ) = Int32.logand
let ( +% ) = Int32.add
let lnot32 = Int32.lognot

let digest msg =
  let len = String.length msg in
  (* Padding: 0x80, zeros, 8-byte big-endian bit length. *)
  let bit_len = Int64.of_int (len * 8) in
  let padded_len =
    let r = (len + 1 + 8) mod 64 in
    if r = 0 then len + 1 + 8 else len + 1 + 8 + (64 - r)
  in
  let buf = Bytes.make padded_len '\000' in
  Bytes.blit_string msg 0 buf 0 len;
  Bytes.set buf len '\x80';
  for i = 0 to 7 do
    Bytes.set buf
      (padded_len - 1 - i)
      (Char.chr
         (Int64.to_int (Int64.logand (Int64.shift_right_logical bit_len (8 * i)) 0xFFL)))
  done;
  let h = [| 0x6a09e667l; 0xbb67ae85l; 0x3c6ef372l; 0xa54ff53al;
             0x510e527fl; 0x9b05688cl; 0x1f83d9abl; 0x5be0cd19l |] in
  let w = Array.make 64 0l in
  let word_at off =
    let b i = Int32.of_int (Char.code (Bytes.get buf (off + i))) in
    Int32.logor
      (Int32.shift_left (b 0) 24)
      (Int32.logor
         (Int32.shift_left (b 1) 16)
         (Int32.logor (Int32.shift_left (b 2) 8) (b 3)))
  in
  let n_blocks = padded_len / 64 in
  for block = 0 to n_blocks - 1 do
    let base = block * 64 in
    for t = 0 to 15 do
      w.(t) <- word_at (base + (t * 4))
    done;
    for t = 16 to 63 do
      let s0 =
        rotr w.(t - 15) 7 ^^ rotr w.(t - 15) 18
        ^^ Int32.shift_right_logical w.(t - 15) 3
      in
      let s1 =
        rotr w.(t - 2) 17 ^^ rotr w.(t - 2) 19
        ^^ Int32.shift_right_logical w.(t - 2) 10
      in
      w.(t) <- w.(t - 16) +% s0 +% w.(t - 7) +% s1
    done;
    let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
    let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
    for t = 0 to 63 do
      let s1 = rotr !e 6 ^^ rotr !e 11 ^^ rotr !e 25 in
      let ch = (!e &&& !f) ^^ (lnot32 !e &&& !g) in
      let temp1 = !hh +% s1 +% ch +% k.(t) +% w.(t) in
      let s0 = rotr !a 2 ^^ rotr !a 13 ^^ rotr !a 22 in
      let maj = (!a &&& !b) ^^ (!a &&& !c) ^^ (!b &&& !c) in
      let temp2 = s0 +% maj in
      hh := !g;
      g := !f;
      f := !e;
      e := !d +% temp1;
      d := !c;
      c := !b;
      b := !a;
      a := temp1 +% temp2
    done;
    h.(0) <- h.(0) +% !a;
    h.(1) <- h.(1) +% !b;
    h.(2) <- h.(2) +% !c;
    h.(3) <- h.(3) +% !d;
    h.(4) <- h.(4) +% !e;
    h.(5) <- h.(5) +% !f;
    h.(6) <- h.(6) +% !g;
    h.(7) <- h.(7) +% !hh
  done;
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    let word = h.(i) in
    for j = 0 to 3 do
      Bytes.set out
        ((i * 4) + j)
        (Char.chr
           (Int32.to_int
              (Int32.logand (Int32.shift_right_logical word (8 * (3 - j))) 0xFFl)))
    done
  done;
  Bytes.to_string out

let hex_of_bytes s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let hex_digest msg = hex_of_bytes (digest msg)
