(** SHA-256 (FIPS 180-4), implemented from scratch — the hash function
    that HTLC hashlocks commit to.  Pure OCaml, no external
    dependencies. *)

val digest : string -> string
(** [digest msg] is the 32-byte binary digest of [msg]. *)

val hex_digest : string -> string
(** Lowercase hexadecimal digest (64 characters). *)

val hex_of_bytes : string -> string
(** Helper: lowercase hex encoding of arbitrary bytes. *)
