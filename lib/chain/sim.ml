type pending = { at : float; seq : int; name : string; run : t -> unit }

and t = {
  queue : pending Heap.t;
  trace_enabled : bool;
  mutable clock : float;
  mutable next_seq : int;
  mutable log : (float * string) list;  (** Reverse-chronological. *)
  mutable executed : int;
}

let m_scheduled = Obs.Metrics.counter "sim.events_scheduled"
let m_executed = Obs.Metrics.counter "sim.events_executed"

let create ?(trace = true) () =
  {
    queue =
      Heap.create ~cmp:(fun a b ->
          let c = compare a.at b.at in
          if c <> 0 then c else compare a.seq b.seq);
    trace_enabled = trace;
    clock = 0.;
    next_seq = 0;
    log = [];
    executed = 0;
  }

let now t = t.clock

let schedule t ~at ~name run =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.schedule: %s at %g is before now (%g)" name at
         t.clock);
  Heap.push t.queue { at; seq = t.next_seq; name; run };
  t.next_seq <- t.next_seq + 1;
  Obs.Metrics.incr m_scheduled

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some ev ->
    t.clock <- ev.at;
    if t.trace_enabled then t.log <- (ev.at, ev.name) :: t.log;
    t.executed <- t.executed + 1;
    Obs.Metrics.incr m_executed;
    ev.run t;
    true

(* While-loops, not recursion: chaos schedules run millions of events
   and must not grow the stack with the trace disabled. *)
let run t =
  let live = ref true in
  while !live do
    live := step t
  done

let run_until t limit =
  let live = ref true in
  while !live do
    match Heap.peek t.queue with
    | Some ev when ev.at <= limit -> ignore (step t)
    | _ -> live := false
  done

let trace t = List.rev t.log
let executed_count t = t.executed
