(** Minimal discrete-event simulation loop: schedule named callbacks at
    absolute times; events run in (time, insertion) order.  The protocol
    runner uses it to interleave agent decisions with chain events. *)

type t

val create : unit -> t

val now : t -> float
(** Time of the event currently executing (0. before the first). *)

val schedule : t -> at:float -> name:string -> (t -> unit) -> unit
(** @raise Invalid_argument when scheduling strictly before [now t]. *)

val run : t -> unit
(** Runs until the event queue is empty.  Events may schedule further
    events. *)

val run_until : t -> float -> unit
(** Runs events with time [<= limit]; later events stay queued. *)

val trace : t -> (float * string) list
(** Names of executed events, chronological. *)

val executed_count : t -> int
