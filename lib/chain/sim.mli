(** Minimal discrete-event simulation loop: schedule named callbacks at
    absolute times; events run in (time, insertion) order.  The protocol
    runner uses it to interleave agent decisions with chain events. *)

type t

val create : ?trace:bool -> unit -> t
(** [trace] (default [true]) controls whether executed events are
    recorded for {!trace}.  Disable it for long chaos runs: the log
    list otherwise grows without bound. *)

val now : t -> float
(** Time of the event currently executing (0. before the first). *)

val schedule : t -> at:float -> name:string -> (t -> unit) -> unit
(** @raise Invalid_argument when scheduling strictly before [now t]. *)

val run : t -> unit
(** Runs until the event queue is empty.  Events may schedule further
    events.  Stack-safe for arbitrarily long schedules. *)

val run_until : t -> float -> unit
(** Runs events with time [<= limit]; later events stay queued.
    Stack-safe for arbitrarily long schedules. *)

val trace : t -> (float * string) list
(** Names of executed events, chronological ([[]] when the simulator
    was created with [~trace:false]). *)

val executed_count : t -> int
