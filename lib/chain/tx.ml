type payload =
  | Transfer of { from_ : string; to_ : string; amount : float }
  | Htlc_lock of {
      contract_id : string;
      sender : string;
      recipient : string;
      amount : float;
      hash : string;
      expiry : float;
    }
  | Htlc_claim of { contract_id : string; preimage : string }
  | Htlc_refund of { contract_id : string }
  | Escrow_lock of {
      contract_id : string;
      owner : string;
      counterparty : string;
      amount : float;
      arbiter : string;
      expiry : float;
    }
  | Escrow_decide of { contract_id : string; by : string; commit : bool }

type id = int
type t = { id : id; submitted_at : float; payload : payload }

let pp_payload fmt = function
  | Transfer { from_; to_; amount } ->
    Format.fprintf fmt "transfer %g from %s to %s" amount from_ to_
  | Htlc_lock { contract_id; sender; recipient; amount; expiry; _ } ->
    Format.fprintf fmt "htlc-lock %s: %g from %s to %s, expires %g"
      contract_id amount sender recipient expiry
  | Htlc_claim { contract_id; _ } ->
    Format.fprintf fmt "htlc-claim %s (preimage revealed)" contract_id
  | Htlc_refund { contract_id } ->
    Format.fprintf fmt "htlc-refund %s" contract_id
  | Escrow_lock { contract_id; owner; counterparty; amount; arbiter; expiry } ->
    Format.fprintf fmt
      "escrow-lock %s: %g from %s to %s, arbiter %s, expires %g" contract_id
      amount owner counterparty arbiter expiry
  | Escrow_decide { contract_id; by; commit } ->
    Format.fprintf fmt "escrow-decide %s: %s by %s" contract_id
      (if commit then "commit" else "abort")
      by

let payload_to_string p = Format.asprintf "%a" pp_payload p

let reveals_preimage = function
  | Htlc_claim { preimage; _ } -> Some preimage
  | Transfer _ | Htlc_lock _ | Htlc_refund _ | Escrow_lock _
  | Escrow_decide _ ->
    None
