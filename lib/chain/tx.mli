(** Transactions understood by the chain simulator. *)

type payload =
  | Transfer of { from_ : string; to_ : string; amount : float }
  | Htlc_lock of {
      contract_id : string;
      sender : string;
      recipient : string;
      amount : float;
      hash : string;  (** SHA-256 commitment (binary). *)
      expiry : float;  (** Absolute expiry time of the time lock. *)
    }
  | Htlc_claim of { contract_id : string; preimage : string }
      (** Recipient claims the locked funds by revealing the preimage. *)
  | Htlc_refund of { contract_id : string }
      (** Explicit refund request (the simulator also auto-refunds at
          expiry, matching the paper's description that funds are
          "returned" when the contract expires). *)
  | Escrow_lock of {
      contract_id : string;
      owner : string;
      counterparty : string;
      amount : float;
      arbiter : string;
      expiry : float;
    }
      (** Witness-arbitrated escrow (AC3TW); auto-aborts at expiry. *)
  | Escrow_decide of { contract_id : string; by : string; commit : bool }
      (** The arbiter's verdict: [commit] pays the counterparty,
          otherwise funds return to the owner. *)

type id = int

type t = { id : id; submitted_at : float; payload : payload }

val pp_payload : Format.formatter -> payload -> unit
val payload_to_string : payload -> string

val reveals_preimage : payload -> string option
(** The preimage carried by a claim transaction, if any — what a
    counterparty learns by watching the mempool. *)
