(* Witness-based atomic commitment (AC3TW, Zakhary et al. [31]) built
   on the same chain simulator and utility model: removes Alice's t3
   exit (higher SR), survives every agent crash, but reintroduces a
   trusted third party. *)

let name = "ac3"
let description = "Witness commitment (AC3TW/AC3WN) vs HTLC: SR, crashes, trust"

let crash_matrix () =
  let p = Swap.Params.defaults in
  let p_star = 2. in
  let cases =
    [
      ("nobody", None);
      ("alice @ 5h", Some (`Alice, 5.));
      ("alice @ 7.5h", Some (`Alice, 7.5));
      ("bob @ 5h", Some (`Bob, 5.));
      ("bob @ 7.5h", Some (`Bob, 7.5));
      ("witness @ 5h", Some (`Witness, 5.));
    ]
  in
  let rows =
    List.map
      (fun (label, crash) ->
        let htlc =
          match crash with
          | None -> Swap.Protocol.run p ~p_star
          | Some (`Alice, at) -> Swap.Protocol.run ~alice_offline_from:at p ~p_star
          | Some (`Bob, at) -> Swap.Protocol.run ~bob_offline_from:at p ~p_star
          | Some (`Witness, _) -> Swap.Protocol.run p ~p_star
        in
        let ac3 =
          match crash with
          | None -> Swap.Ac3.run p ~p_star
          | Some (`Alice, at) -> Swap.Ac3.run ~alice_offline_from:at p ~p_star
          | Some (`Bob, at) -> Swap.Ac3.run ~bob_offline_from:at p ~p_star
          | Some (`Witness, at) -> Swap.Ac3.run ~witness_offline_from:at p ~p_star
        in
        let ac3wn =
          match crash with
          | None -> Swap.Ac3wn.run p ~p_star
          | Some (`Alice, at) -> Swap.Ac3wn.run ~alice_offline_from:at p ~p_star
          | Some (`Bob, at) -> Swap.Ac3wn.run ~bob_offline_from:at p ~p_star
          | Some (`Witness, _) -> Swap.Ac3wn.run p ~p_star
        in
        let htlc_str =
          match crash with
          | Some (`Witness, _) -> "n/a (no witness)"
          | _ -> Swap.Protocol.outcome_to_string htlc.Swap.Protocol.outcome
        in
        let ac3wn_str =
          match crash with
          | Some (`Witness, _) -> "n/a (chain, not a process)"
          | _ -> Swap.Ac3wn.outcome_to_string ac3wn.Swap.Ac3wn.outcome
        in
        [ label; htlc_str;
          Swap.Ac3.outcome_to_string ac3.Swap.Ac3.outcome; ac3wn_str ])
      cases
  in
  Render.table
    ~header:[ "crash"; "HTLC outcome"; "AC3TW outcome"; "AC3WN outcome" ]
    ~rows

let sr_comparison () =
  let base = Swap.Params.defaults in
  let rows =
    List.map
      (fun sigma ->
        let p = Swap.Params.with_sigma base sigma in
        let htlc = Swap.Success.analytic p ~p_star:2. in
        let ac3 = Swap.Ac3.success_rate p ~p_star:2. in
        let band =
          match Swap.Ac3.feasible_band p with
          | Some (lo, hi) -> Printf.sprintf "(%.3f, %.3f)" lo hi
          | None -> "infeasible"
        in
        [ Render.fmt sigma; Render.fmt htlc; Render.fmt ac3; band ])
      [ 0.05; 0.1; 0.15; 0.2 ]
  in
  Render.table
    ~header:[ "sigma"; "SR HTLC"; "SR AC3"; "AC3 feasible P*" ]
    ~rows

let latency_block () =
  let p = Swap.Params.defaults in
  let tl = Swap.Timeline.ideal p in
  let htlc = Swap.Timeline.duration_success tl in
  let ac3tw = tl.Swap.Timeline.t3 +. max p.Swap.Params.tau_a p.Swap.Params.tau_b in
  let ac3wn = Swap.Ac3wn.happy_path_hours p in
  Render.table
    ~header:[ "protocol"; "happy-path hours"; "extra vs HTLC" ]
    ~rows:
      [
        [ "HTLC"; Render.fmt htlc; "-" ];
        [ "AC3TW"; Render.fmt ac3tw; Render.fmt (ac3tw -. htlc) ];
        [ "AC3WN"; Render.fmt ac3wn; Render.fmt (ac3wn -. htlc) ];
      ]

let run () =
  Render.section "Crash tolerance (honest agents)"
  ^ crash_matrix ()
  ^ "\nAC3TW never loses atomicity: after both escrows lock, the witness\n\
     settles both chains even with both agents offline, and a crashed\n\
     witness only delays everyone until the timeout refunds.  AC3WN\n\
     removes the witness process entirely -- the decision lives on a\n\
     witness blockchain and any surviving party can trigger settlement --\n\
     at the price of one extra chain confirmation of latency:\n\n"
  ^ latency_block () ^ "\n"
  ^ Render.section "Strategic success rate (rational agents, P* = 2)"
  ^ sr_comparison ()
  ^ "\nAC3 removes Alice's reveal option (its SR equals the alice-committed\n\
     regime of the optionality experiment) and stays viable at higher\n\
     volatility than the pure HTLC.  The price is a trusted witness --\n\
     exactly the trade-off the paper's conclusion points at: disciplinary\n\
     mechanisms help, but today they need a third party.\n"
