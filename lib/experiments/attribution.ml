(* Failure attribution: the paper's headline claim is that BOTH agents
   rationally walk away, at different times and in different price
   directions.  This experiment decomposes every initiated swap's fate
   and attributes failures to the responsible agent. *)

let name = "attribution"
let description = "Who kills the swap? Outcome decomposition by agent and price move"

let by_rate_block () =
  let p = Swap.Params.defaults in
  let rows =
    List.map
      (fun p_star ->
        let d = Swap.Outcomes.distribution p ~p_star in
        [
          Render.fmt p_star;
          Render.fmt d.Swap.Outcomes.success;
          Render.fmt d.Swap.Outcomes.bob_balks_low;
          Render.fmt d.Swap.Outcomes.bob_balks_high;
          Render.fmt d.Swap.Outcomes.alice_reneges;
          Render.fmt (Swap.Outcomes.blame_share_bob d);
        ])
      [ 1.6; 1.8; 2.0; 2.2; 2.4 ]
  in
  Render.table
    ~header:
      [ "P*"; "success"; "Bob balks (price low)"; "Bob balks (price high)";
        "Alice reneges"; "Bob's failure share" ]
    ~rows

let by_sigma_block () =
  let base = Swap.Params.defaults in
  let rows =
    List.map
      (fun sigma ->
        let p = Swap.Params.with_sigma base sigma in
        let d = Swap.Outcomes.distribution p ~p_star:2. in
        let dur = Swap.Outcomes.durations p ~p_star:2. in
        [
          Render.fmt sigma;
          Render.fmt d.Swap.Outcomes.success;
          Render.fmt (Swap.Outcomes.blame_share_bob d);
          Render.fmt dur.Swap.Outcomes.expected_hours;
        ])
      [ 0.05; 0.08; 0.1; 0.12; 0.15 ]
  in
  Render.table
    ~header:[ "sigma"; "success"; "Bob's failure share"; "expected hours" ]
    ~rows

let run () =
  Render.section "Outcome decomposition across exchange rates"
  ^ by_rate_block ()
  ^ "\nAt low rates the failures are Bob's: the rate underpays him, so\n\
     unless Token_b cheapens he keeps it (the high-price balk prior work\n\
     neglected).  At high rates they are Alice's: her P*-sized refund\n\
     beats delivering whenever Token_b cheapens.  Near the SR-optimal\n\
     rate blame splits about evenly -- both of the paper's exit channels\n\
     are live at once.\n\n"
  ^ Render.section "Attribution across volatility (P* = 2)"
  ^ by_sigma_block ()
  ^ "\nAt the common quoted rate the blame stays close to an even split\n\
     across volatilities (slightly Bob-heavy in calm markets, where only\n\
     his two-sided band ever binds).  The expected swap duration rises\n\
     with failure risk because failures wait for the time locks\n\
     (Eqs. 10-11).\n"
