(* Walk-forward backtest on synthetic market data (Section V:
   "simulation studies can be performed based on our model framework
   ... using real market data").  Real exchange feeds are not available
   in this environment, so the market is a regime-switching process —
   the stylised fact (volatility clustering) that a plain GBM misses
   and the one that drives the Bisq failure anecdote. *)

let name = "backtest"
let description = "Walk-forward backtest on regime-switching synthetic markets"

let run () =
  let rng = Numerics.Rng.create ~seed:90210 () in
  let spec = Market.Regimes.default_spec in
  let dt = 0.5 in
  (* 120 days of half-hourly data. *)
  let steps = int_of_float (120. *. 24. /. dt) in
  let path, states = Market.Regimes.sample rng spec ~p0:2. ~dt ~steps in
  let trades = Market.Backtest.run path in
  let by_regime =
    Market.Backtest.summarize_by trades ~classify:(fun t ->
        Market.Regimes.state_at states ~dt ~t:t.Market.Backtest.start)
  in
  let overall = Market.Backtest.summarize trades in
  let row label (s : Market.Backtest.summary) =
    [
      label;
      string_of_int s.Market.Backtest.trades;
      string_of_int s.Market.Backtest.skipped;
      string_of_int s.Market.Backtest.initiated;
      Render.fmt s.Market.Backtest.mean_predicted_sr;
      Render.fmt s.Market.Backtest.realized_sr;
    ]
  in
  let rows =
    row "overall" overall
    :: List.map
         (fun (state, s) -> row (Market.Regimes.state_to_string state) s)
         by_regime
  in
  (* Calibration-quality check: fit the whole path and per-regime vols. *)
  let fit_info =
    match Market.Calibrate.fit path with
    | Ok f ->
      Printf.sprintf
        "Whole-path GBM fit: mu = %.4g +/- %.2g, sigma = %.4g +/- %.2g \
         (true regime sigmas: %.2g calm / %.2g turbulent, %.0f%% turbulent)\n"
        f.Market.Calibrate.mu f.Market.Calibrate.mu_stderr
        f.Market.Calibrate.sigma f.Market.Calibrate.sigma_stderr
        spec.Market.Regimes.sigma_calm spec.Market.Regimes.sigma_turbulent
        (100. *. Market.Regimes.stationary_turbulent_share spec)
    | Error e -> "fit failed: " ^ e ^ "\n"
  in
  Render.section "Walk-forward backtest (120 days, trade every 12 h, 1-week calibration)"
  ^ fit_info ^ "\n"
  ^ Render.table
      ~header:
        [ "regime at quote"; "trades"; "skipped"; "initiated";
          "mean predicted SR"; "realized SR" ]
      ~rows
  ^ "\nThe trailing-window quote inherits the past week's regime mixture,\n\
     so it is systematically conservative in calm markets (realized SR\n\
     above prediction) and optimistic when the quote lands in turbulence\n\
     (realized far below prediction) -- the calibration-lag model risk\n\
     behind failure spikes in volatile periods (Section II-A).\n"
