(* Protocol/mechanism comparison under calm and volatile markets:
   honest agents (protocol ideal), rational agents (the paper),
   myopic agents (no look-ahead), premium-HTLC (Han et al.-style) and
   symmetric collateral (Section IV).  Also reproduces the Bisq
   anecdote from Section II-A: a few percent of trades fail, more in
   volatile markets. *)

let name = "baselines"
let description = "Mechanism comparison across volatility regimes (incl. Bisq check)"

let trials = 40_000

let regime_row (p : Swap.Params.t) label =
  let p_star = 2. in
  let rational = Swap.Agent.rational p ~p_star in
  let honest = Swap.Agent.honest in
  let myopic = Swap.Agent.myopic p ~p_star in
  let mc policy = Swap.Montecarlo.run ~trials p ~p_star ~policy in
  let r_rational = mc rational and r_honest = mc honest and r_myopic = mc myopic in
  let premium = Swap.Premium.create p ~w:0.5 in
  let r_premium =
    Swap.Montecarlo.run_collateral ~trials
      (Swap.Premium.as_collateral premium)
      ~p_star
  in
  let collateral = Swap.Collateral.symmetric p ~q:0.5 in
  let r_collateral = Swap.Montecarlo.run_collateral ~trials collateral ~p_star in
  let cell (r : Swap.Montecarlo.result) =
    if r.Swap.Montecarlo.initiated = 0 then "never initiated"
    else Render.fmt r.Swap.Montecarlo.rate
  in
  [
    label;
    cell r_honest;
    cell r_rational;
    cell r_myopic;
    cell r_premium;
    cell r_collateral;
  ]

let bisq_check () =
  (* Bisq community: 3-5% of trades fail and go to arbitration, more
     during volatile periods.  Bisq trades post collateral, so the
     right comparison is the collateralised game at a market-like
     sigma.  We report the failure rate 1 - SR for a range of
     volatilities with Q = 0.5. *)
  let rows =
    List.map
      (fun sigma ->
        let p = Swap.Params.with_sigma Swap.Params.defaults sigma in
        let c = Swap.Collateral.symmetric p ~q:0.5 in
        let sr = Swap.Collateral.success_rate c ~p_star:2. in
        [ Render.fmt sigma; Render.fmt sr; Render.fmt (1. -. sr) ])
      [ 0.05; 0.08; 0.1; 0.15; 0.2 ]
  in
  "Bisq plausibility check (collateralised game, Q = 0.5, P* = 2):\n"
  ^ Render.table
      ~header:[ "sigma (/sqrt h)"; "SR"; "failure rate" ]
      ~rows
  ^ "Failure rates in the low single-digit percents at moderate volatility,\n\
     rising with sigma -- in line with the 3-5% arbitration anecdote of\n\
     Section II-A.\n"

let run () =
  let defaults = Swap.Params.defaults in
  let calm = Swap.Params.with_sigma defaults 0.05 in
  let volatile = Swap.Params.with_sigma defaults 0.2 in
  let rows =
    [
      regime_row calm "calm (sigma=0.05)";
      regime_row defaults "default (sigma=0.1)";
      regime_row volatile "volatile (sigma=0.2)";
    ]
  in
  Render.section "Mechanism comparison: success rate at P* = 2"
  ^ Render.table
      ~header:
        [ "regime"; "honest"; "rational"; "myopic"; "premium w=0.5";
          "collateral Q=0.5" ]
      ~rows
  ^ "\nHonest agents always complete (SR = 1) -- failures are purely\n\
     strategic.  Rational agents defect more as volatility grows; deposits\n\
     recover most of the gap; the premium helps only Alice's t3 defection,\n\
     so it sits between rational and full collateral.\n\n"
  ^ bisq_check ()
