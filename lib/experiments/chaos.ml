(* Chaos harness: how much success rate do chain faults destroy, and
   how much of it does timeline slack buy back?

   Sweeps a fault-intensity knob kappa (transaction drop probability,
   with proportional stochastic extra confirmation delay and a reorg
   rate of kappa/2 on both chains) against symmetric schedule slack
   (Timeline.slacked's delay_t2 = delay_t3 = s).  Agents are honest and
   resubmit unconfirmed actions with exponential backoff
   (Agent.default_retry).  Each cell replays the same seeds (common
   random numbers), so fates are coupled across cells and the SR
   surface is directly comparable: more intensity can only hurt, more
   slack can only widen every retry window.

   The analytic counterpoint comes from Swap.Margins: slack is not free
   — prices diffuse longer between decisions, so the rational-agent SR
   *falls* as slack grows.  The last table prices that trade-off. *)

let name = "chaos"

let description =
  "SR degradation under injected chain faults vs timeline slack"

let trials = 160
let intensities = [ 0.; 0.05; 0.1; 0.2 ]
let slacks = [ 0.; 1.; 2.; 4.; 6. ]

let faults_of kappa =
  if kappa <= 0. then Chainsim.Faults.none
  else
    Chainsim.Faults.create ~drop_prob:kappa
      ~delay_prob:(min 1. (3. *. kappa))
      ~delay:(Chainsim.Faults.Shifted_exponential { mean = 1.5; cap = 6. })
      ~reorg_prob:(kappa /. 2.) ()

type cell = {
  sr : float;
  anomalies : int;
  retries_per_run : float;
  worst_margin : float;
}

let run_cell p ~p_star ~kappa ~slack =
  let faults = faults_of kappa in
  let successes = ref 0 and anomalies = ref 0 in
  let retries = ref 0 and worst_margin = ref 0. in
  for i = 1 to trials do
    let r =
      Swap.Protocol.run ~faults_a:faults ~faults_b:faults
        ~retry:Swap.Agent.default_retry ~delay_t2:slack ~delay_t3:slack
        ~seed:(0x5eed + (7919 * i))
        p ~p_star
    in
    (match r.Swap.Protocol.outcome with
    | Swap.Protocol.Success -> incr successes
    | Swap.Protocol.Anomalous _ -> incr anomalies
    | _ -> ());
    retries := !retries + r.Swap.Protocol.telemetry.Swap.Protocol.retries;
    worst_margin :=
      max !worst_margin
        (max r.Swap.Protocol.telemetry.Swap.Protocol.margin_consumed_a
           r.Swap.Protocol.telemetry.Swap.Protocol.margin_consumed_b)
  done;
  {
    sr = float_of_int !successes /. float_of_int trials;
    anomalies = !anomalies;
    retries_per_run = float_of_int !retries /. float_of_int trials;
    worst_margin = !worst_margin;
  }

(* One pool task per (kappa, slack) cell.  Each cell replays its own
   fixed seed schedule, so the parallel sweep is cell-for-cell identical
   to the sequential one; results are regrouped in sweep order. *)
let grid ?jobs p ~p_star =
  let cells =
    List.concat_map
      (fun kappa -> List.map (fun slack -> (kappa, slack)) slacks)
      intensities
  in
  let results =
    Numerics.Pool.map_list ?jobs
      (fun (kappa, slack) ->
        ((kappa, slack), run_cell p ~p_star ~kappa ~slack))
      cells
  in
  List.map
    (fun kappa ->
      ( kappa,
        List.map
          (fun slack -> (slack, List.assoc (kappa, slack) results))
          slacks ))
    intensities

let monotone_nonincreasing xs =
  let rec go = function
    | a :: (b :: _ as rest) -> a +. 1e-9 >= b && go rest
    | _ -> true
  in
  go xs

let monotone_nondecreasing xs = monotone_nonincreasing (List.rev xs)

let sr_rows g =
  List.map
    (fun (kappa, cells) ->
      Render.fmt kappa :: List.map (fun (_, c) -> Printf.sprintf "%.3f" c.sr) cells)
    g

let header = "kappa" :: List.map (fun s -> Printf.sprintf "s=%g" s) slacks

let csv_of g =
  Render.csv
    ~header:("kappa" :: List.map (fun s -> Printf.sprintf "sr_slack_%g" s) slacks)
    ~rows:(sr_rows g)

let datasets_of g () = [ ("chaos_sr.csv", csv_of g) ]

let p = Swap.Params.defaults
let p_star = 2.

let datasets () = datasets_of (grid p ~p_star) ()

let run () =
  let g = grid p ~p_star in
  let detail_rows =
    List.concat_map
      (fun (kappa, cells) ->
        List.map
          (fun (slack, c) ->
            [
              Render.fmt kappa;
              Render.fmt slack;
              Printf.sprintf "%.3f" c.sr;
              string_of_int c.anomalies;
              Printf.sprintf "%.2f" c.retries_per_run;
              Printf.sprintf "%.2f" c.worst_margin;
            ])
          cells)
      g
  in
  (* Data-driven verdicts on the two claims the sweep is after. *)
  let zero_slack_col =
    List.map (fun (_, cells) -> (List.assoc 0. cells).sr) g
  in
  let max_kappa_row =
    match List.rev g with
    | (_, cells) :: _ -> List.map (fun (_, c) -> c.sr) cells
    | [] -> []
  in
  let degradation =
    if monotone_nonincreasing zero_slack_col then "monotone" else "NOT monotone"
  in
  let recovery =
    if monotone_nondecreasing max_kappa_row then "monotone" else "NOT monotone"
  in
  let recovered =
    match (max_kappa_row, List.rev max_kappa_row) with
    | first :: _, last :: _ -> last -. first
    | _ -> 0.
  in
  let price_rows =
    List.map
      (fun slack ->
        let m = Swap.Margins.create p ~delay_t2:slack ~delay_t3:slack in
        let analytic = Swap.Margins.success_rate m ~p_star in
        let max_k = List.fold_left max 0. intensities in
        let faulted = (List.assoc slack (List.assoc max_k g)).sr in
        [
          Render.fmt slack;
          Printf.sprintf "%.4f" analytic;
          Printf.sprintf "%.3f" faulted;
        ])
      slacks
  in
  Render.section
    (Printf.sprintf
       "Chaos sweep: success rate under faults (honest agents, retries on, %d \
        runs/cell)"
       trials)
  ^ Printf.sprintf
      "Fault schedule at intensity kappa: drop_prob = kappa; with \
       probability min(1, 3 kappa) a\ntransaction straggles by ~ exp(mean = \
       1.5h, cap = 6h); reorg_prob = kappa / 2, on both\nchains; slack s \
       stretches every timelock leg (delay_t2 = delay_t3 = s).\n\n"
  ^ "Success rate (rows: fault intensity; columns: schedule slack s, hours):\n"
  ^ Render.table ~header ~rows:(sr_rows g)
  ^ "\nPer-cell detail:\n"
  ^ Render.table
      ~header:
        [ "kappa"; "slack"; "SR"; "anomalies"; "retries/run"; "worst lateness" ]
      ~rows:detail_rows
  ^ Printf.sprintf
      "\nSR degradation with intensity at zero slack: %s (%.3f -> %.3f).\n\
       SR at the highest intensity recovers with added slack: %s (+%.3f \n\
       from s=0 to s=%g).  Slack both absorbs stochastic lateness directly\n\
       and widens the window in which dropped transactions can be retried.\n"
      degradation
      (List.nth zero_slack_col 0)
      (List.nth zero_slack_col (List.length zero_slack_col - 1))
      recovery recovered
      (List.fold_left max 0. slacks)
  ^ "\nThe price of that robustness (Section III-C): under the rational\n\
     policy, slack lengthens the diffusion legs between decisions, so the\n\
     fault-free analytic SR falls as s grows while the faulted SR rises:\n"
  ^ Render.table
      ~header:[ "slack s"; "analytic SR (no faults)"; "simulated SR (kappa max)" ]
      ~rows:price_rows
  ^ "\nTimelock margin is bought with optionality risk -- the schedule\n\
     designer picks s to clear the expected fault environment, no more.\n"
