(* Crash failures (Zakhary et al. [31], Section II-C): even two honest
   agents can lose atomicity under HTLCs if one goes offline at the
   wrong moment.  This experiment enumerates crash points on the live
   simulator and exhibits the one non-atomic cell. *)

let name = "crash"
let description = "Crash-failure matrix for the HTLC protocol (Zakhary et al.)"

let run () =
  let p = Swap.Params.defaults in
  let p_star = 2. in
  (* Timeline: t1=0, t2=3, t3=7, t4=8, locks at 11. *)
  let crash_points =
    [ ("before t1", 0.); ("between t1 and t2", 1.5);
      ("between t2 and t3", 5.); ("between t3 and t4", 7.5);
      ("after t4", 9.) ]
  in
  let row who (label, at) =
    let r =
      match who with
      | `Alice -> Swap.Protocol.run ~alice_offline_from:at p ~p_star
      | `Bob -> Swap.Protocol.run ~bob_offline_from:at p ~p_star
    in
    let atomic =
      abs_float (r.Swap.Protocol.alice_delta_a +. r.Swap.Protocol.bob_delta_a)
      < 1e-9
      && abs_float (r.Swap.Protocol.alice_delta_b +. r.Swap.Protocol.bob_delta_b)
         < 1e-9
      &&
      match r.Swap.Protocol.outcome with
      | Swap.Protocol.Anomalous _ -> false
      | _ -> true
    in
    [
      (match who with `Alice -> "alice" | `Bob -> "bob");
      label;
      Swap.Protocol.outcome_to_string r.Swap.Protocol.outcome;
      Printf.sprintf "A(%+g, %+g) B(%+g, %+g)" r.Swap.Protocol.alice_delta_a
        r.Swap.Protocol.alice_delta_b r.Swap.Protocol.bob_delta_a
        r.Swap.Protocol.bob_delta_b;
      (if atomic then "yes" else "VIOLATED");
    ]
  in
  (* Transient outages: same dangerous window, but the agent comes back.
     Recovering before the chain_a expiry leaves time to claim late and
     the anomaly disappears; recovering after it does not. *)
  let transient_rows =
    List.map
      (fun (label, from_, back, slack) ->
        let r =
          Swap.Protocol.run ~bob_offline_from:from_ ~bob_online_again_at:back
            ~delay_t2:slack p ~p_star
        in
        let atomic =
          match r.Swap.Protocol.outcome with
          | Swap.Protocol.Anomalous _ -> false
          | _ -> true
        in
        [
          "bob (transient)";
          label;
          Swap.Protocol.outcome_to_string r.Swap.Protocol.outcome;
          Printf.sprintf "A(%+g, %+g) B(%+g, %+g)" r.Swap.Protocol.alice_delta_a
            r.Swap.Protocol.alice_delta_b r.Swap.Protocol.bob_delta_a
            r.Swap.Protocol.bob_delta_b;
          (if atomic then "yes" else "VIOLATED");
        ])
      [
        ("offline 7.5..7.9, back before t4", 7.5, 7.9, 0.);
        ("offline 7.5..9, back after t4, no slack", 7.5, 9., 0.);
        ("offline 9.5..11, 2h slack on t_a", 9.5, 11., 2.);
      ]
  in
  let rows =
    List.map (row `Alice) crash_points
    @ List.map (row `Bob) crash_points
    @ transient_rows
  in
  Render.section "HTLC outcomes when one honest agent crashes"
  ^ Render.table
      ~header:[ "who crashes"; "when"; "outcome"; "balance deltas (a, b)";
                "atomic" ]
      ~rows
  ^ "\nMost crashes degrade to an atomic failure via the time locks -- but\n\
     Bob crashing anywhere between deploying his HTLC and claiming at t4\n\
     loses atomicity: honest Alice still reveals, keeps Token_b AND gets\n\
     her Token_a refund at the expiry, while Bob loses his Token_b (the\n\
     HTLC atomicity violation of Zakhary et al.).  Collateral does not\n\
     repair this cell; witness-based commitment does (see 'ac3').\n\
     A transient outage in the same window is survivable: if Bob is back\n\
     while his claim can still confirm before t_lock_a he recovers the\n\
     swap by claiming late.  The zero-waiting schedule leaves no such\n\
     margin after t4 (t_lock_a = t4 + tau_a exactly), so recovery there\n\
     needs schedule slack -- which is what the 'chaos' experiment prices.\n"
