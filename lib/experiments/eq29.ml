(* Eq. 29 — the feasible exchange-rate band under Table III defaults.
   The paper reports (P*_low, P*_high) = (1.5, 2.5). *)

let name = "eq29"
let description = "Eq. 29: feasible exchange-rate band vs the paper's (1.5, 2.5)"

let run () =
  let p = Swap.Params.defaults in
  match Swap.Cutoff.p_star_band_endpoints p with
  | None -> Render.section "Eq. 29" ^ "No feasible band found (unexpected).\n"
  | Some (lo, hi) ->
    let rows =
      [
        [ "P*_low"; "1.5"; Render.fmt lo; Render.fmt (abs_float (lo -. 1.5)) ];
        [ "P*_high"; "2.5"; Render.fmt hi; Render.fmt (abs_float (hi -. 2.5)) ];
      ]
    in
    Render.section "Eq. 29: feasible exchange-rate range"
    ^ Render.table ~header:[ "bound"; "paper"; "this repo"; "abs diff" ] ~rows
    ^ "\nThe paper reports two significant digits; both bounds match within\n\
       a few percent, and the band contains the spot price P_t0 = 2.\n"
