(* Figure 2 — the idealised zero-waiting swap timeline (Eq. 13) and the
   Eq. 12 constraint check. *)

let name = "fig2"
let description = "Figure 2: idealised swap timeline (Eq. 13) with Eq. 12 checks"

let run () =
  let p = Swap.Params.defaults in
  let tl = Swap.Timeline.ideal p in
  let open Swap.Timeline in
  let rows =
    [
      [ "t0 = t1"; Render.fmt tl.t0; "agreement; Alice locks Token_a" ];
      [ "t2"; Render.fmt tl.t2; "Bob locks Token_b (t1 + tau_a)" ];
      [ "t3"; Render.fmt tl.t3; "Alice reveals secret (t2 + tau_b)" ];
      [ "t4"; Render.fmt tl.t4; "Bob claims Token_a (t3 + eps_b)" ];
      [ "t5 = t_b"; Render.fmt tl.t5; "Alice receives Token_b / Chain_b lock expiry" ];
      [ "t6 = t_a"; Render.fmt tl.t6; "Bob receives Token_a / Chain_a lock expiry" ];
      [ "t7"; Render.fmt tl.t7; "Bob's refund receipt on failure (t_b + tau_b)" ];
      [ "t8"; Render.fmt tl.t8; "Alice's refund receipt on failure (t_a + tau_a)" ];
    ]
  in
  let check =
    match Swap.Timeline.check p tl with
    | Ok () -> "all Eq. 12 constraints hold"
    | Error vs -> "VIOLATIONS: " ^ String.concat "; " vs
  in
  Render.section "Figure 2(b): idealised timeline (hours)"
  ^ Render.table ~header:[ "event"; "time"; "meaning" ] ~rows
  ^ "\nConstraint check: " ^ check ^ "\n"
  ^ Printf.sprintf "Duration: %.0f h on success, %.0f h on failure.\n"
      (duration_success tl) (duration_failure tl)
