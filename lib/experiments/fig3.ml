(* Figure 3 — Alice's utility at t3 (cont vs stop) as a function of
   P_t3, for several exchange rates.  The crossing of each cont line
   with its stop level is the Eq. 18 cutoff. *)

let name = "fig3"
let description = "Figure 3: Alice's t3 utilities and the Eq. 18 cutoffs"

let p_stars = [ 1.; 2.; 3. ]

let run () =
  let p = Swap.Params.defaults in
  let xs = Numerics.Grid.linspace ~lo:0.2 ~hi:4. ~n:39 in
  let series =
    List.concat_map
      (fun p_star ->
        let cont =
          Array.map (fun x -> (x, Swap.Utility.a_t3_cont p ~p_t3:x)) xs
        in
        let stop_level = Swap.Utility.a_t3_stop p ~p_star in
        let stop = Array.map (fun x -> (x, stop_level)) xs in
        [
          (Printf.sprintf "cont (any P*)" , cont);
          (Printf.sprintf "stop P*=%g" p_star, stop);
        ])
      p_stars
  in
  (* cont does not depend on P*; keep one copy. *)
  let series = List.hd series :: List.filteri (fun i _ -> i mod 2 = 1) series in
  let cutoffs =
    List.map
      (fun p_star ->
        [
          Render.fmt p_star;
          Render.fmt (Swap.Cutoff.p_t3_low p ~p_star);
          Render.fmt (Swap.Utility.a_t3_stop p ~p_star);
        ])
      p_stars
  in
  Render.section "Figure 3: U^A_t3 vs P_t3"
  ^ Render.ascii_plot ~x_label:"P_t3" ~y_label:"U^A_t3" series
  ^ "\nCutoff prices (Alice continues strictly above P_t3_low):\n"
  ^ Render.table
      ~header:[ "P*"; "P_t3_low (Eq. 18)"; "U^A_t3(stop) (Eq. 16)" ]
      ~rows:cutoffs
  ^ "\nHigher P* raises the stop level and with it the cutoff: Alice walks\n\
     away from the swap when Token_b cheapens enough relative to the rate.\n"
