(* Figure 4 — Bob's utility at t2 (cont vs stop) as a function of P_t2
   for several exchange rates; the cont/stop crossings delimit his
   continuation band (Eq. 24). *)

let name = "fig4"
let description = "Figure 4: Bob's t2 utilities and his continuation band"

let p_stars = [ 1.; 2.; 3. ]

let run () =
  let p = Swap.Params.defaults in
  let xs = Numerics.Grid.linspace ~lo:0.05 ~hi:4.5 ~n:45 in
  let series =
    List.concat_map
      (fun p_star ->
        let k3 = Swap.Cutoff.p_t3_low p ~p_star in
        let cont =
          Array.map
            (fun x -> (x, Swap.Utility.b_t2_cont p ~p_star ~k3 ~p_t2:x))
            xs
        in
        [ (Printf.sprintf "cont P*=%g" p_star, cont) ])
      p_stars
    @ [ ("stop (= P_t2)", Array.map (fun x -> (x, x)) xs) ]
  in
  let bands =
    List.map
      (fun p_star ->
        match Swap.Cutoff.p_t2_band_endpoints p ~p_star with
        | Some (lo, hi) ->
          [ Render.fmt p_star; Render.fmt lo; Render.fmt hi ]
        | None -> [ Render.fmt p_star; "-"; "-" ])
      p_stars
  in
  Render.section "Figure 4: U^B_t2 vs P_t2"
  ^ Render.ascii_plot ~x_label:"P_t2" ~y_label:"U^B_t2" series
  ^ "\nBob's continuation band (cont iff P_t2_low < P_t2 < P_t2_high):\n"
  ^ Render.table
      ~header:[ "P*"; "P_t2_low"; "P_t2_high" ]
      ~rows:bands
  ^ "\nThe band expands and shifts right as P* grows: a richer rate makes\n\
     Bob tolerate more adverse prices before withdrawing.\n"
