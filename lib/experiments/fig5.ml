(* Figure 5 — Alice's utility at t1 (cont vs stop) as a function of the
   agreed exchange rate P*; crossings give the feasible band (Eq. 29). *)

let name = "fig5"
let description = "Figure 5: Alice's t1 utilities across exchange rates (Eq. 29)"

let datasets () =
  let p = Swap.Params.defaults in
  let xs = Numerics.Grid.linspace ~lo:1.0 ~hi:3.2 ~n:45 in
  let rows =
    Array.to_list
      (Array.map
         (fun p_star ->
           let k3 = Swap.Cutoff.p_t3_low p ~p_star in
           let band = Swap.Cutoff.p_t2_band p ~p_star in
           [
             Printf.sprintf "%.6g" p_star;
             Printf.sprintf "%.6g" (Swap.Utility.a_t1_cont p ~p_star ~k3 ~band);
             Printf.sprintf "%.6g" p_star;
           ])
         xs)
  in
  [
    ( "fig5_alice_t1.csv",
      Render.csv ~header:[ "p_star"; "u_cont"; "u_stop" ] ~rows );
  ]

let run () =
  let p = Swap.Params.defaults in
  let xs = Numerics.Grid.linspace ~lo:1.0 ~hi:3.2 ~n:45 in
  let cont =
    Array.map
      (fun p_star ->
        let k3 = Swap.Cutoff.p_t3_low p ~p_star in
        let band = Swap.Cutoff.p_t2_band p ~p_star in
        (p_star, Swap.Utility.a_t1_cont p ~p_star ~k3 ~band))
      xs
  in
  let stop = Array.map (fun p_star -> (p_star, p_star)) xs in
  let band_text =
    match Swap.Cutoff.p_star_band_endpoints p with
    | Some (lo, hi) ->
      Printf.sprintf
        "Feasible range: P*_low = %.3f, P*_high = %.3f  (paper Eq. 29: 1.5, 2.5)"
        lo hi
    | None -> "No feasible exchange rate: the swap is never initiated."
  in
  Render.section "Figure 5: U^A_t1 vs P*"
  ^ Render.ascii_plot ~x_label:"P*" ~y_label:"U^A_t1"
      [ ("cont", cont); ("stop (= P*)", stop) ]
  ^ "\n" ^ band_text ^ "\n"
  ^ "\nToo-low P* makes failure likely (Bob would bail at t2); too-high P*\n\
     makes the trade itself unattractive to Alice.\n"
