(* Figure 6 — success rate as a function of the exchange rate, across
   eight parameter panels (alpha, r, tau, mu, sigma variations).
   Non-viable parameterisations (no feasible exchange rate) are reported as such,
   matching the paper's square markers. *)

let name = "fig6"
let description = "Figure 6: SR(P*) sweeps across all eight parameter panels"

let panel (title, variants) =
  let results = Swap.Sensitivity.sweep ~n:31 variants in
  let series =
    List.filter_map
      (fun (r : Swap.Sensitivity.sweep_result) ->
        if Array.length r.curve = 0 then None
        else
          Some
            ( r.variant.Swap.Sensitivity.label,
              Array.map
                (fun (pt : Swap.Success.point) -> (pt.p_star, pt.sr))
                r.curve ))
      results
  in
  let rows =
    List.map
      (fun (r : Swap.Sensitivity.sweep_result) ->
        match (r.feasible, r.best) with
        | Some (lo, hi), Some best ->
          [
            r.variant.Swap.Sensitivity.label;
            Render.fmt lo;
            Render.fmt hi;
            Render.fmt best.Swap.Success.p_star;
            Render.fmt best.Swap.Success.sr;
          ]
        | _ -> [ r.variant.Swap.Sensitivity.label; "non-viable"; "-"; "-"; "-" ])
      results
  in
  Render.section ("Panel: " ^ title)
  ^ (if series = [] then "(every variant non-viable)\n"
     else Render.ascii_plot ~x_label:"P*" ~y_label:"SR" series)
  ^ Render.table
      ~header:[ "variant"; "P*_low"; "P*_high"; "argmax P*"; "max SR" ]
      ~rows
  ^ "\n"

let datasets () =
  List.map
    (fun (title, variants) ->
      let results = Swap.Sensitivity.sweep ~n:31 variants in
      let rows =
        List.concat_map
          (fun (r : Swap.Sensitivity.sweep_result) ->
            Array.to_list
              (Array.map
                 (fun (pt : Swap.Success.point) ->
                   [
                     r.variant.Swap.Sensitivity.label;
                     Printf.sprintf "%.6g" pt.p_star;
                     Printf.sprintf "%.6g" pt.sr;
                   ])
                 r.curve))
          results
      in
      ( Printf.sprintf "fig6_%s.csv" title,
        Render.csv ~header:[ "variant"; "p_star"; "sr" ] ~rows ))
    (Swap.Sensitivity.fig6_panels ())

let run () =
  let panels = Swap.Sensitivity.fig6_panels () in
  Render.section "Figure 6: swap success rate vs exchange rate"
  ^ String.concat "" (List.map panel panels)
  ^ "Shape checks (paper Section III-F): SR is concave in P*; higher alpha\n\
     raises SR and widens the feasible band; higher r, tau narrow it;\n\
     upward drift raises SR; higher volatility lowers the maximum SR.\n"
