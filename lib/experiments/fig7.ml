(* Figure 7 — Bob's t2 utility with collateral: U^B_t2,c(cont) against
   the stop payoff P_t2, for several deposits.  The indifference
   equation has an odd number of roots (1 or 3, Section IV-3). *)

let name = "fig7"
let description = "Figure 7: Bob's t2 utilities under collateral; 1-or-3 roots"

let run () =
  let p = Swap.Params.defaults in
  let p_star = 2. in
  let qs = [ 0.; 0.5; 1.; 2. ] in
  let xs = Numerics.Grid.linspace ~lo:0.05 ~hi:5. ~n:45 in
  let series =
    List.map
      (fun q ->
        let c = Swap.Collateral.symmetric p ~q in
        ( Printf.sprintf "cont Q=%g" q,
          Array.map
            (fun x -> (x, Swap.Collateral.b_t2_cont c ~p_star ~p_t2:x))
            xs ))
      qs
    @ [ ("stop (= P_t2)", Array.map (fun x -> (x, x)) xs) ]
  in
  let rows =
    List.map
      (fun q ->
        let c = Swap.Collateral.symmetric p ~q in
        let set = Swap.Collateral.cont_set_t2 c ~p_star in
        let n_intervals = List.length (Swap.Intervals.intervals set) in
        let n_roots =
          List.fold_left
            (fun acc { Swap.Intervals.lo; hi } ->
              acc
              + (if lo > 0. then 1 else 0)
              + if hi < infinity then 1 else 0)
            0
            (Swap.Intervals.intervals set)
        in
        [
          Render.fmt q;
          string_of_int n_roots;
          string_of_int n_intervals;
          Swap.Intervals.to_string set;
        ])
      qs
  in
  Render.section
    (Printf.sprintf "Figure 7: U^B_t2 with collateral (P* = %g)" p_star)
  ^ Render.ascii_plot ~x_label:"P_t2" ~y_label:"U^B_t2" series
  ^ "\nBob's continuation set (cont iff P_t2 in the set):\n"
  ^ Render.table
      ~header:[ "Q"; "indifference roots"; "intervals"; "continuation set" ]
      ~rows
  ^ "\nWith collateral the set becomes anchored at 0 (worthless Token_b is\n\
     not worth a forfeited deposit) and can split into two pieces -- the\n\
     odd root count of Section IV-3.\n"
