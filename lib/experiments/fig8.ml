(* Figure 8 — both agents' t1 utilities (cont vs stop) across exchange
   rates under collateral, with each agent's indifference points and
   the resulting initiation set. *)

let name = "fig8"
let description = "Figure 8: t1 utilities under collateral and the initiation set"

let run () =
  let p = Swap.Params.defaults in
  let q = 1. in
  let c = Swap.Collateral.symmetric p ~q in
  let xs = Numerics.Grid.linspace ~lo:1.0 ~hi:3.4 ~n:33 in
  let alice_cont =
    Array.map (fun s -> (s, Swap.Collateral.a_t1_cont c ~p_star:s)) xs
  in
  let alice_stop =
    Array.map (fun s -> (s, Swap.Collateral.a_t1_stop c ~p_star:s)) xs
  in
  let bob_cont =
    Array.map (fun s -> (s, Swap.Collateral.b_t1_cont c ~p_star:s)) xs
  in
  let bob_stop = Array.map (fun s -> (s, Swap.Collateral.b_t1_stop c)) xs in
  let set rule = Swap.Collateral.initiation_set ~rule c in
  let rows =
    [
      [ "Alice prefers cont";
        Swap.Intervals.to_string (set Swap.Collateral.Alice_only) ];
      [ "Bob prefers cont";
        Swap.Intervals.to_string (set Swap.Collateral.Bob_only) ];
      [ "intersection (both)";
        Swap.Intervals.to_string (set Swap.Collateral.Intersection) ];
      [ "union (paper's printing)";
        Swap.Intervals.to_string (set Swap.Collateral.Union) ];
    ]
  in
  Render.section (Printf.sprintf "Figure 8: t1 utilities with collateral Q = %g" q)
  ^ Render.ascii_plot ~x_label:"P*" ~y_label:"U_t1"
      [
        ("Alice cont", alice_cont);
        ("Alice stop (P*+Q)", alice_stop);
        ("Bob cont", bob_cont);
        ("Bob stop (P0+Q)", bob_stop);
      ]
  ^ "\nInitiation sets over P*:\n"
  ^ Render.table ~header:[ "set"; "exchange rates" ] ~rows
  ^ "\nBoth agents must prefer cont for the swap to start; the feasible\n\
     set is the intersection of their indifference regions.\n"
