(* Figure 9 — success rate vs exchange rate for different collateral
   deposits: SR increases with Q. *)

let name = "fig9"
let description = "Figure 9: SR(P*) for different collateral deposits Q"

let qs = [ 0.; 0.5; 1.; 2. ]

let datasets () =
  let p = Swap.Params.defaults in
  let xs = Numerics.Grid.linspace ~lo:1.55 ~hi:2.45 ~n:19 in
  let rows =
    List.concat_map
      (fun q ->
        let c = Swap.Collateral.symmetric p ~q in
        Array.to_list
          (Array.map
             (fun s ->
               [
                 Printf.sprintf "%.6g" q;
                 Printf.sprintf "%.6g" s;
                 Printf.sprintf "%.6g" (Swap.Collateral.success_rate c ~p_star:s);
               ])
             xs))
      qs
  in
  [ ("fig9_sr_vs_pstar_by_q.csv", Render.csv ~header:[ "q"; "p_star"; "sr" ] ~rows) ]

let run () =
  let p = Swap.Params.defaults in
  let xs = Numerics.Grid.linspace ~lo:1.55 ~hi:2.45 ~n:19 in
  let series =
    List.map
      (fun q ->
        let c = Swap.Collateral.symmetric p ~q in
        ( Printf.sprintf "Q=%g" q,
          Array.map (fun s -> (s, Swap.Collateral.success_rate c ~p_star:s)) xs
        ))
      qs
  in
  let rows =
    List.map
      (fun q ->
        let c = Swap.Collateral.symmetric p ~q in
        let sr2 = Swap.Collateral.success_rate c ~p_star:2. in
        let set = Swap.Collateral.initiation_set c in
        [ Render.fmt q; Render.fmt sr2; Swap.Intervals.to_string set ])
      qs
  in
  Render.section "Figure 9: SR vs P* under collateral"
  ^ Render.ascii_plot ~x_label:"P*" ~y_label:"SR" series
  ^ "\nSummary at P* = 2:\n"
  ^ Render.table ~header:[ "Q"; "SR(P*=2)"; "initiation set" ] ~rows
  ^ "\nSR rises monotonically with Q: larger deposits tolerate larger price\n\
     excursions at both t2 and t3 before either agent defects.\n"
