(* Market frictions the baseline assumes away (Section V future work):
   staking yields on locked coins and per-transaction fees. *)

let name = "frictions"
let description = "Staking-yield and transaction-fee extensions (Section V)"

let staking_block () =
  let p = Swap.Params.defaults in
  let p_star = 2. in
  let rows =
    List.concat_map
      (fun yield_a ->
        List.map
          (fun yield_b ->
            let s = Swap.Staking.create p ~yield_a ~yield_b in
            [
              Render.fmt yield_a;
              Render.fmt yield_b;
              Render.fmt (Swap.Staking.p_t3_low s ~p_star);
              Swap.Intervals.to_string (Swap.Staking.p_t2_band s ~p_star);
              Render.fmt (Swap.Staking.success_rate s ~p_star);
            ])
          [ 0.; 0.002; 0.005 ])
      [ 0.; 0.002; 0.005 ]
  in
  Render.section "Staking yields (per-hour, forgone while locked)"
  ^ Render.table
      ~header:[ "yield_a"; "yield_b"; "t3 cutoff"; "Bob's t2 band"; "SR" ]
      ~rows
  ^ "\nToken_a staking makes Alice's refund branch costlier, lowering her\n\
     cutoff (she reveals more readily); Token_b staking penalises Bob's\n\
     lock, shrinking his band and the success rate.\n\n"

let fees_block () =
  let p = Swap.Params.defaults in
  let p_star = 2. in
  let fee_rows =
    List.map
      (fun fee ->
        let f = Swap.Fees.create p ~fee_a:fee ~fee_b:fee in
        let band =
          match Swap.Fees.p_star_band f with
          | Some (lo, hi) -> Printf.sprintf "(%.3f, %.3f)" lo hi
          | None -> "infeasible"
        in
        [
          Render.fmt fee;
          Render.fmt (Swap.Fees.success_rate f ~p_star);
          band;
        ])
      [ 0.; 0.01; 0.05; 0.1; 0.2 ]
  in
  let notional_rows =
    let f = Swap.Fees.create p ~fee_a:0.05 ~fee_b:0.05 in
    List.map
      (fun n ->
        let fn = Swap.Fees.create ~notional:n p ~fee_a:0.05 ~fee_b:0.05 in
        [
          Render.fmt n;
          Render.fmt (Swap.Fees.a_t1_net fn ~p_star);
          Render.fmt (Swap.Fees.success_rate fn ~p_star);
        ])
      [ 0.05; 0.1; 0.5; 1.; 5. ]
    @
    match Swap.Fees.break_even_notional f ~p_star with
    | Some n -> [ [ "break-even"; Render.fmt n; "-" ] ]
    | None -> [ [ "break-even"; "unreachable"; "-" ] ]
  in
  Render.section "Transaction fees (flat, Token_a-denominated)"
  ^ Render.table
      ~header:[ "fee per tx"; "SR(P*=2)"; "feasible P* band" ]
      ~rows:fee_rows
  ^ "\nTrade-size economics at fee 0.05 per transaction:\n"
  ^ Render.table
      ~header:[ "notional"; "Alice's net at t1"; "SR" ]
      ~rows:notional_rows
  ^ "\nFees are a fixed toll: they barely move large trades but wipe out\n\
     small ones (negative net below the break-even size), shrinking the\n\
     feasible band from both ends.\n"

let run () = staking_block () ^ fees_block ()
