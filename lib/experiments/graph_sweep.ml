(* N-party swap graphs beyond the cycle: sweep thousands of generated
   topologies (families x sizes x slack x seeds) through the Herlihy
   timelock assignment, the graph game and the depth-aware Monte
   Carlo, and read off how structure moves the success rate and the
   worst-case griefing exposure. *)

let name = "graphs"

let description =
  "Topology sweep: SR and griefing exposure vs family, size and slack"

let p = Swap.Params.defaults
let p_star = 2.

let sweep ?(trials = 400) specs =
  Swapgraph.Sweep.run ~trials ~tau:p.Swap.Params.tau_b
    ~eps:p.Swap.Params.eps_b
    ~policy:(Swap.Graphlink.depth_aware_policy p ~p_star)
    ~payoffs:(Swap.Graphlink.payoffs p) specs

let spec family size slack topo_seed =
  { Swapgraph.Sweep.family; size; slack; topo_seed }

let mean xs =
  List.fold_left ( +. ) 0. xs /. float_of_int (max 1 (List.length xs))

let fraction pred rows =
  mean (List.map (fun r -> if pred r then 1. else 0.) rows)

let sr (r : Swapgraph.Sweep.row) = r.sr
let exposure (r : Swapgraph.Sweep.row) = r.max_exposure_hours
let eq (r : Swapgraph.Sweep.row) = r.equilibrium_success

(* --- block 1: named families across sizes -------------------------------- *)

(* Cycle / star / bridge are canonical per (family, n); the random
   family is summarised over a bundle of generator seeds. *)
let random_seeds = 40

let family_block () =
  let sizes = [ 3; 4; 5; 6; 8 ] in
  let deterministic family =
    List.filter_map
      (fun n ->
        if family = Swapgraph.Topology.Bridge && n < 5 then None
        else Some (spec family n 0. 0))
      sizes
  in
  let det_rows =
    sweep
      (deterministic Swapgraph.Topology.Cycle
      @ deterministic Swapgraph.Topology.Star
      @ deterministic Swapgraph.Topology.Bridge)
  in
  let rand_rows =
    List.map
      (fun n ->
        let rows =
          sweep
            (List.init random_seeds (fun s ->
                 spec Swapgraph.Topology.Random n 0. s))
        in
        (n, rows))
      sizes
  in
  let fmt_row family n depth sr_s exposure_s eq_s =
    [ family; string_of_int n; depth; sr_s; exposure_s; eq_s ]
  in
  let det_line (r : Swapgraph.Sweep.row) =
    fmt_row
      (Swapgraph.Topology.family_to_string r.spec.Swapgraph.Sweep.family)
      r.spec.Swapgraph.Sweep.size
      (string_of_int (Swapgraph.Graph.max_depth r.graph))
      (Render.fmt r.sr)
      (Render.fmt r.max_exposure_hours)
      (if r.equilibrium_success then "yes" else "no")
  in
  let rand_line (n, rows) =
    fmt_row "random(mean)" n
      (Render.fmt
         (mean
            (List.map
               (fun (r : Swapgraph.Sweep.row) ->
                 float_of_int (Swapgraph.Graph.max_depth r.graph))
               rows)))
      (Render.fmt (mean (List.map sr rows)))
      (Render.fmt (mean (List.map exposure rows)))
      (Render.fmt (fraction eq rows))
  in
  ( List.length det_rows + (List.length sizes * random_seeds),
    Render.table
      ~header:
        [ "family"; "parties"; "depth"; "SR"; "max exposure (h)"; "eq" ]
      ~rows:(List.map det_line det_rows @ List.map rand_line rand_rows) )

(* --- block 2: slack on a fixed family ------------------------------------- *)

let slack_seeds = 50

let slack_block () =
  let slacks = [ 0.; 1.; 2.; 4. ] in
  let per_slack =
    List.map
      (fun slack ->
        let rows =
          sweep
            (List.init slack_seeds (fun s ->
                 spec Swapgraph.Topology.Random 6 slack s))
        in
        (slack, rows))
      slacks
  in
  ( List.length slacks * slack_seeds,
    Render.table
      ~header:
        [ "slack (h)"; "mean SR"; "mean max exposure (h)"; "eq fraction" ]
      ~rows:
        (List.map
           (fun (slack, rows) ->
             [
               Render.fmt slack;
               Render.fmt (mean (List.map sr rows));
               Render.fmt (mean (List.map exposure rows));
               Render.fmt (fraction eq rows);
             ])
           per_slack) )

(* --- block 3: the bulk sweep ---------------------------------------------- *)

let bulk_seeds = 250

let bulk_block () =
  let sizes = [ 3; 4; 5; 6; 7; 8; 9; 10 ] in
  let per_size =
    List.map
      (fun n ->
        let rows =
          sweep ~trials:200
            (List.init bulk_seeds (fun s ->
                 spec Swapgraph.Topology.Random n 1. s))
        in
        (n, rows))
      sizes
  in
  let min_sr rows = List.fold_left Float.min 1. (List.map sr rows) in
  ( List.length sizes * bulk_seeds,
    Render.table
      ~header:
        [
          "parties"; "topologies"; "mean SR"; "min SR";
          "mean max exposure (h)"; "eq fraction";
        ]
      ~rows:
        (List.map
           (fun (n, rows) ->
             [
               string_of_int n;
               string_of_int (List.length rows);
               Render.fmt (mean (List.map sr rows));
               Render.fmt (min_sr rows);
               Render.fmt (mean (List.map exposure rows));
               Render.fmt (fraction eq rows);
             ])
           per_size) )

let run () =
  let n1, b1 = family_block () in
  let n2, b2 = slack_block () in
  let n3, b3 = bulk_block () in
  Render.section "Success rate by topology family (slack 0)"
  ^ b1
  ^ "\nStars keep every non-hub at depth 1, so their lock phase and\n\
     exposure stay flat as the graph grows and SR decays slowly; cycles\n\
     and bridges deepen with n, stretching the late parties' windows\n\
     until the depth-aware bands collapse.  Griefing exposure is the\n\
     mirror image: the hub of a star absorbs almost all of it.\n\n"
  ^ Render.section "Timelock slack on random 6-party graphs"
  ^ b2
  ^ "\nSlack widens every claim window, which buys safety against\n\
     congestion but bills every party for the longer lock-up: griefing\n\
     exposure grows linearly with slack while SR drifts down as deeper\n\
     parties face longer price diffusion before their decision.\n\n"
  ^ Render.section "Bulk sweep over random connected digraphs"
  ^ b3
  ^ Printf.sprintf
      "\nSwept %d topologies in total (%d + %d + %d), every schedule\n\
       validated against the staggered-expiry invariants and every graph\n\
       game solved by backward induction.  The cycle's geometric SR decay\n\
       is the general rule: success degrades with depth, not raw party\n\
       count, and the equilibrium flips to abort exactly where the\n\
       premium no longer covers the deepest party's griefing exposure.\n"
      (n1 + n2 + n3) n1 n2 n3
