(** Topology sweep over generated N-party swap graphs: SR and griefing
    exposure vs family, size and timelock slack. *)

val name : string
val description : string
val run : unit -> string
