(* Robustness ablation beyond the paper: replace the GBM (Assumption 4)
   with a Merton jump-diffusion of (approximately) the same total
   variance and measure the success rate under the unchanged rational
   policy.  The result is instructive: moving variance out of the
   diffusion into rare jumps RAISES the success rate, because
   defections are triggered by typical diffusive moves crossing the
   thresholds, not by total variance.  The paper's sigma is thus best
   read as the "typical-move" volatility. *)

let name = "jumps"
let description = "Ablation: success rate under fat-tailed (Merton) prices"

let trials = 60_000

let run () =
  let p = Swap.Params.defaults in
  let p_star = 2. in
  let policy = Swap.Agent.rational p ~p_star in
  let analytic = Swap.Success.analytic p ~p_star in
  let gbm_mc = Swap.Montecarlo.run ~trials p ~p_star ~policy in
  (* Keep total per-hour log variance roughly constant:
     sigma_total^2 = sigma_diff^2 + lambda * (jm^2 + js^2). *)
  let variants =
    [
      ("GBM (paper)", None);
      ( "mild jumps",
        Some
          (Stochastic.Jump_diffusion.create ~mu:p.Swap.Params.mu ~sigma:0.09
             ~lambda:0.05 ~jump_mean:0. ~jump_stddev:0.06) );
      ( "heavy jumps",
        Some
          (Stochastic.Jump_diffusion.create ~mu:p.Swap.Params.mu ~sigma:0.07
             ~lambda:0.05 ~jump_mean:(-0.02) ~jump_stddev:0.3) );
    ]
  in
  let rows =
    List.map
      (fun (label, jd) ->
        let mc =
          match jd with
          | None -> gbm_mc
          | Some jd ->
            Swap.Montecarlo.run ~trials
              ~sampler:(Swap.Montecarlo.jump_sampler jd)
              p ~p_star ~policy
        in
        let lo, hi = mc.Swap.Montecarlo.ci95 in
        [
          label;
          Render.fmt mc.Swap.Montecarlo.rate;
          Printf.sprintf "[%.4f, %.4f]" lo hi;
          string_of_int mc.Swap.Montecarlo.abort_t2;
          string_of_int mc.Swap.Montecarlo.abort_t3;
        ])
      variants
  in
  Render.section "Jump-diffusion ablation (rational policy, P* = 2)"
  ^ Printf.sprintf "Analytic GBM success rate: %.4f\n\n" analytic
  ^ Render.table
      ~header:[ "price model"; "MC SR"; "95% CI"; "aborts@t2"; "aborts@t3" ]
      ~rows
  ^ "\nAt matched total variance, concentrating risk in rare jumps reduces\n\
     defections on both sides: the thresholds respond to the diffusive\n\
     (typical-move) volatility, not to tail mass.  The paper's sigma\n\
     should be calibrated to typical moves, not to total variance.\n"
