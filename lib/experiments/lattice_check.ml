(* Game-tree cross-check: the swap rebuilt as a finite extensive-form
   game on a GBM-calibrated lattice and solved by generic backward
   induction converges to the analytic solution as the lattice is
   refined. *)

let name = "lattice"
let description = "Game-tree/lattice cross-check of the backward induction"

let collateral_block () =
  let p = Swap.Params.defaults in
  let rows =
    List.map
      (fun q ->
        let spec =
          Swap.Lattice_game.make_spec ~steps_a:120 ~steps_b:120 ~q p ~p_star:2.
        in
        let sol = Swap.Lattice_game.solve spec in
        let c = Swap.Collateral.symmetric p ~q in
        [
          Render.fmt q;
          Render.fmt sol.Swap.Lattice_game.success_rate;
          Render.fmt (Swap.Collateral.success_rate c ~p_star:2.);
          (match sol.Swap.Lattice_game.t3_boundary with
          | Some b -> Render.fmt b
          | None -> "-");
          Render.fmt (Swap.Collateral.p_t3_low c ~p_star:2.);
        ])
      [ 0.; 0.25; 0.5; 1. ]
  in
  Render.section "Collateral game on the lattice (Section IV cross-check)"
  ^ Render.table
      ~header:
        [ "Q"; "SPE SR"; "Eq. 40 SR"; "lattice t3 boundary"; "Eq. 34 cutoff" ]
      ~rows
  ^ "\nThe generic solver also recovers the Section IV equilibrium: deposit\n\
     flows in the terminal payoffs reproduce both the lowered reveal\n\
     cutoffs and the higher success rates.\n"

let run () =
  let p = Swap.Params.defaults in
  let p_star = 2. in
  let analytic_sr = Swap.Success.analytic p ~p_star in
  let k3 = Swap.Cutoff.p_t3_low p ~p_star in
  let rows =
    List.map
      (fun steps ->
        let spec =
          Swap.Lattice_game.make_spec ~steps_a:steps ~steps_b:steps p ~p_star
        in
        let sol = Swap.Lattice_game.solve spec in
        [
          string_of_int steps;
          string_of_int sol.Swap.Lattice_game.nodes;
          Render.fmt sol.Swap.Lattice_game.success_rate;
          Render.fmt (abs_float (sol.Swap.Lattice_game.success_rate -. analytic_sr));
          (match sol.Swap.Lattice_game.t3_boundary with
          | Some b -> Render.fmt b
          | None -> "-");
          string_of_bool sol.Swap.Lattice_game.alice_initiates;
        ])
      [ 10; 20; 40; 80; 160 ]
  in
  Render.section "Game-tree cross-check (generic SPE solver on a lattice)"
  ^ Printf.sprintf "Analytic: SR = %.4f, Alice's t3 cutoff = %.4f (P* = %g)\n\n"
      analytic_sr k3 p_star
  ^ Render.table
      ~header:
        [ "lattice steps"; "game nodes"; "SPE SR"; "|SR - analytic|";
          "t3 boundary"; "initiates" ]
      ~rows
  ^ "\nThe SPE of the discretised game converges to the closed-form backward\n\
     induction: same decisions, same success probability in the limit.\n\n"
  ^ collateral_block ()
