(* Monte-Carlo cross-check: the simulated success rate under the
   rational policy must match the analytic integrals (Eq. 31/40) within
   the Wilson confidence interval. *)

let name = "mc"
let description = "Monte-Carlo cross-check of Eq. 31 and Eq. 40"

let trials = 60_000

let baseline_row p p_star =
  let analytic = Swap.Success.analytic p ~p_star in
  let policy = Swap.Agent.rational p ~p_star in
  let mc = Swap.Montecarlo.run ~trials p ~p_star ~policy in
  let lo, hi = mc.Swap.Montecarlo.ci95 in
  [
    Render.fmt p_star;
    Render.fmt analytic;
    Render.fmt mc.Swap.Montecarlo.rate;
    Printf.sprintf "[%.4f, %.4f]" lo hi;
    (if analytic >= lo -. 0.005 && analytic <= hi +. 0.005 then "ok"
     else "MISMATCH");
  ]

let collateral_row p q p_star =
  let c = Swap.Collateral.symmetric p ~q in
  let analytic = Swap.Collateral.success_rate c ~p_star in
  let mc = Swap.Montecarlo.run_collateral ~trials c ~p_star in
  let lo, hi = mc.Swap.Montecarlo.ci95 in
  [
    Render.fmt q;
    Render.fmt p_star;
    Render.fmt analytic;
    Render.fmt mc.Swap.Montecarlo.rate;
    Printf.sprintf "[%.4f, %.4f]" lo hi;
    (if analytic >= lo -. 0.005 && analytic <= hi +. 0.005 then "ok"
     else "MISMATCH");
  ]

let run () =
  let p = Swap.Params.defaults in
  let base_rows = List.map (baseline_row p) [ 1.6; 1.8; 2.0; 2.2; 2.4 ] in
  let coll_rows =
    List.concat_map
      (fun q -> List.map (collateral_row p q) [ 1.8; 2.0; 2.2 ])
      [ 0.25; 0.5; 1. ]
  in
  Render.section
    (Printf.sprintf "Monte-Carlo cross-check (%d paths per cell)" trials)
  ^ "Baseline (Eq. 31):\n"
  ^ Render.table
      ~header:[ "P*"; "analytic"; "MC"; "95% CI"; "status" ]
      ~rows:base_rows
  ^ "\nCollateral (Eq. 40):\n"
  ^ Render.table
      ~header:[ "Q"; "P*"; "analytic"; "MC"; "95% CI"; "status" ]
      ~rows:coll_rows
