(* Multi-party cyclic swaps (Herlihy [28]): how the 2-party analysis
   scales with the number of hops. *)

let name = "multihop"
let description = "Cyclic n-party swaps: lock time and SR vs hop count"

let outcome_to_string = function
  | Swap.Multihop.Success -> "success"
  | Swap.Multihop.Abort_at_lock i -> Printf.sprintf "abort@lock%d" i
  | Swap.Multihop.Abort_no_reveal -> "abort (no reveal)"
  | Swap.Multihop.Anomalous s -> "ANOMALOUS: " ^ s

let scaling_block () =
  let p = Swap.Params.defaults in
  let rows =
    List.map
      (fun n ->
        let spec = Swap.Multihop.make ~parties:n ~p_star:2. p in
        let mc = Swap.Multihop.mc_success_rate ~trials:30_000 spec in
        [
          string_of_int n;
          Render.fmt (Swap.Multihop.lock_phase_hours spec);
          Render.fmt (Swap.Multihop.total_success_hours spec);
          Render.fmt mc.Swap.Multihop.rate;
          Render.fmt (mc.Swap.Multihop.rate ** (1. /. float_of_int n));
        ])
      [ 2; 3; 4; 5; 6; 8 ]
  in
  Render.table
    ~header:
      [ "parties"; "lock phase (h)"; "happy path (h)"; "SR (all rational)";
        "per-hop SR" ]
    ~rows

let failure_modes_block () =
  let p = Swap.Params.defaults in
  let spec = Swap.Multihop.make ~parties:3 ~p_star:2. p in
  let steady = fun _i _t -> 2. in
  let rows =
    [
      ( "all honest",
        Swap.Multihop.run ~price_paths:steady spec );
      ( "party 1 declines to lock",
        Swap.Multihop.run ~price_paths:steady
          ~decisions:(fun i ~price:_ ->
            if i = 1 then Swap.Agent.Stop else Swap.Agent.Cont)
          spec );
      ( "leader withholds the secret",
        Swap.Multihop.run ~price_paths:steady
          ~decisions:(fun i ~price:_ ->
            if i = 0 then Swap.Agent.Stop else Swap.Agent.Cont)
          spec );
      ( "party 2 crashes mid-cascade",
        Swap.Multihop.run ~price_paths:steady ~offline:[ (2, 10.) ] spec );
    ]
  in
  Render.table
    ~header:[ "scenario"; "outcome"; "per-party (out, in) deltas" ]
    ~rows:
      (List.map
         (fun (label, r) ->
           [
             label;
             outcome_to_string r.Swap.Multihop.outcome;
             String.concat " "
               (Array.to_list
                  (Array.mapi
                     (fun i (o, inc) ->
                       Printf.sprintf "p%d(%+g,%+g)" i o inc)
                     r.Swap.Multihop.deltas));
           ])
         rows)

let run () =
  Render.section "Scaling with the number of parties"
  ^ scaling_block ()
  ^ "\nEvery hop adds one more rational exit and one more confirmation of\n\
     lock-up, so the cycle's success rate decays roughly geometrically\n\
     (the per-hop rate also worsens because later deciders face longer\n\
     price diffusion).  Two-party swaps are the only robust regime of\n\
     the pure-HTLC design.\n\n"
  ^ Render.section "Failure modes on the live 3-chain simulator"
  ^ failure_modes_block ()
  ^ "\nDeclines during the lock phase and a withheld secret refund everyone\n\
     (atomic).  A crash mid-cascade, however, strands the crashed party:\n\
     their outgoing leg is claimed while their incoming claim window\n\
     expires -- the multi-hop version of the 2-party crash anomaly.\n"
