(* How the exchange rate gets agreed, and the coordination structure of
   the collateral game's simultaneous t1 stage. *)

let name = "negotiation"
let description = "Nash bargaining over P* and the t1 engagement game"

let bargaining_block () =
  let rows =
    List.filter_map
      (fun sigma ->
        let p = Swap.Params.with_sigma Swap.Params.defaults sigma in
        match (Swap.Bargaining.nash_rate p, Swap.Success.maximize p) with
        | Some split, Some best ->
          Some
            [
              Render.fmt sigma;
              Render.fmt split.Swap.Bargaining.p_star;
              Render.fmt split.Swap.Bargaining.alice_gain;
              Render.fmt split.Swap.Bargaining.bob_gain;
              Render.fmt best.Swap.Success.p_star;
              Render.fmt
                (Swap.Success.analytic p
                   ~p_star:split.Swap.Bargaining.p_star);
            ]
        | _ -> Some [ Render.fmt sigma; "no surplus"; "-"; "-"; "-"; "-" ])
      [ 0.05; 0.1; 0.15 ]
  in
  Render.section "Nash bargaining over the exchange rate"
  ^ Render.table
      ~header:
        [ "sigma"; "Nash P*"; "Alice gain"; "Bob gain"; "SR-max P*";
          "SR at Nash P*" ]
      ~rows
  ^ "\nThe bargaining solution sits close to the SR-maximising rate: most\n\
     of the joint surplus is the completion premium, so splitting surplus\n\
     and maximising reliability nearly coincide -- a reason real venues\n\
     can quote a single schedule-driven rate.\n\n"

let engagement_block () =
  let p = Swap.Params.defaults in
  let rows =
    List.map
      (fun (q, p_star) ->
        let c = Swap.Collateral.symmetric p ~q in
        let e = Swap.Bargaining.analyse_engagement c ~p_star in
        [
          Render.fmt q;
          Render.fmt p_star;
          String.concat ", "
            (List.map (fun (a, b) -> a ^ "/" ^ b) e.Swap.Bargaining.equilibria);
          string_of_bool e.Swap.Bargaining.both_engage_is_equilibrium;
          string_of_bool e.Swap.Bargaining.coordination_failure_possible;
        ])
      [ (0.5, 2.); (0.5, 3.); (1., 2.); (2., 2.) ]
  in
  Render.section "The simultaneous t1 engagement game (Section IV-4)"
  ^ Render.table
      ~header:
        [ "Q"; "P*"; "pure Nash equilibria"; "engage/engage is NE";
          "coordination failure" ]
      ~rows
  ^ "\nAt viable rates the stage game is a coordination game: engage/engage\n\
     and stay-out/stay-out are both equilibria (engaging alone wastes a\n\
     lock round), with engage/engage Pareto-dominant.  At bad rates only\n\
     staying out survives -- the normal-form view of the paper's\n\
     initiation set.\n"

let run () = bargaining_block () ^ engagement_block ()
