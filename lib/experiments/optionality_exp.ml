(* Quantifying the embedded American-style options (Sections I/II-C/V):
   the paper's qualitative claim is that BOTH agents hold an exit
   option; here each option is priced by comparing the rational
   equilibrium against commitment regimes. *)

let name = "optionality"
let description = "Pricing both agents' exit options across volatilities"

let run () =
  let base = Swap.Params.defaults in
  let p_star = 2. in
  let rows =
    List.map
      (fun sigma ->
        let p = Swap.Params.with_sigma base sigma in
        let ov = Swap.Optionality.option_values p ~p_star in
        [
          Render.fmt sigma;
          Render.fmt ov.Swap.Optionality.alice_option;
          Render.fmt ov.Swap.Optionality.bob_option;
          Render.fmt ov.Swap.Optionality.sr_rational;
          Render.fmt ov.Swap.Optionality.sr_all_committed;
        ])
      [ 0.05; 0.08; 0.1; 0.15; 0.2 ]
  in
  let regimes =
    List.map
      (fun (label, regime) ->
        let v = Swap.Optionality.value base ~p_star regime in
        [
          label;
          Render.fmt v.Swap.Optionality.alice_t1;
          Render.fmt v.Swap.Optionality.bob_t1;
          Render.fmt v.Swap.Optionality.success_rate;
        ])
      [
        ("rational (paper)", Swap.Optionality.rational);
        ("alice committed", Swap.Optionality.alice_committed);
        ("bob committed", Swap.Optionality.bob_committed);
        ("both committed", Swap.Optionality.both_committed);
      ]
  in
  Render.section "Commitment regimes at Table III defaults (P* = 2)"
  ^ Render.table
      ~header:[ "regime"; "U^A_t1(cont)"; "U^B_t1(cont)"; "SR" ]
      ~rows:regimes
  ^ "\n"
  ^ Render.section "Option values vs volatility"
  ^ Render.table
      ~header:
        [ "sigma"; "Alice's option"; "Bob's option"; "SR rational";
          "SR committed" ]
      ~rows
  ^ "\nBoth agents' exit options carry positive value that grows with\n\
     volatility -- quantifying the paper's claim that not only the swap\n\
     initiator can exploit price moves; at high volatility Bob's t2\n\
     option is worth several times Alice's t3 option.  Each agent's\n\
     commitment RAISES the counterparty's utility and the success rate\n\
     (the externality the premium and collateral mechanisms monetise).\n"
