(* Which chain pairings can support HTLC swaps at crypto volatility?
   Maps the model across ledger technologies (Section III-D calibrates
   to hour-scale PoW; faster finality changes the answer). *)

let name = "presets"
let description = "Feasibility matrix across chain technologies"

let matrix_block base label =
  let rows =
    List.map
      (fun (a : Swap.Presets.assessment) ->
        match (a.Swap.Presets.feasible, a.Swap.Presets.best) with
        | Some (lo, hi), Some best ->
          [
            a.Swap.Presets.chain_a;
            a.Swap.Presets.chain_b;
            Printf.sprintf "(%.3f, %.3f)" lo hi;
            Render.fmt best.Swap.Success.sr;
            Render.fmt a.Swap.Presets.swap_hours;
          ]
        | _ ->
          [
            a.Swap.Presets.chain_a;
            a.Swap.Presets.chain_b;
            "infeasible";
            "-";
            Render.fmt a.Swap.Presets.swap_hours;
          ])
      (Swap.Presets.standard_matrix ~base ())
  in
  Render.section label
  ^ Render.table
      ~header:
        [ "chain_a tech"; "chain_b tech"; "feasible P*"; "max SR";
          "swap duration (h)" ]
      ~rows

let run () =
  let default = Swap.Params.defaults in
  let volatile = Swap.Params.with_sigma default 0.2 in
  matrix_block default "Feasibility at sigma = 0.1 (paper's default)"
  ^ "\n"
  ^ matrix_block volatile "Feasibility at sigma = 0.2 (turbulent market)"
  ^ "\nFinality speed is decisive: at the paper's volatility every pairing\n\
     works but hour-scale PoW caps the best SR near 0.76, while sub-hour\n\
     finality pushes it past 0.99.  In turbulent markets the PoW-PoW\n\
     pairing barely functions (more than every third initiated swap\n\
     fails) while fast-finality rails stay near-certain -- why production\n\
     atomic-swap venues live on fast chains or add deposits.\n"
