type experiment = {
  name : string;
  description : string;
  run : unit -> string;
  datasets : (unit -> (string * string) list) option;
}

let experiment ?datasets name description run =
  { name; description; run; datasets }

let all =
  [
    experiment Tab1.name Tab1.description Tab1.run;
    experiment Tab3.name Tab3.description Tab3.run;
    experiment Fig2.name Fig2.description Fig2.run;
    experiment Fig3.name Fig3.description Fig3.run;
    experiment Fig4.name Fig4.description Fig4.run;
    experiment ~datasets:Fig5.datasets Fig5.name Fig5.description Fig5.run;
    experiment Eq29.name Eq29.description Eq29.run;
    experiment ~datasets:Fig6.datasets Fig6.name Fig6.description Fig6.run;
    experiment Fig7.name Fig7.description Fig7.run;
    experiment Fig8.name Fig8.description Fig8.run;
    experiment ~datasets:Fig9.datasets Fig9.name Fig9.description Fig9.run;
    experiment Mc_check.name Mc_check.description Mc_check.run;
    experiment Lattice_check.name Lattice_check.description Lattice_check.run;
    experiment Baselines.name Baselines.description Baselines.run;
    experiment Jump_ablation.name Jump_ablation.description Jump_ablation.run;
    experiment Optionality_exp.name Optionality_exp.description
      Optionality_exp.run;
    experiment Selection_exp.name Selection_exp.description Selection_exp.run;
    experiment Frictions.name Frictions.description Frictions.run;
    experiment Backtest_exp.name Backtest_exp.description Backtest_exp.run;
    experiment Crash_exp.name Crash_exp.description Crash_exp.run;
    experiment ~datasets:Chaos.datasets Chaos.name Chaos.description Chaos.run;
    experiment Ac3_exp.name Ac3_exp.description Ac3_exp.run;
    experiment Waiting.name Waiting.description Waiting.run;
    experiment Stablecoin.name Stablecoin.description Stablecoin.run;
    experiment Negotiation.name Negotiation.description Negotiation.run;
    experiment Security.name Security.description Security.run;
    experiment Multihop_exp.name Multihop_exp.description Multihop_exp.run;
    experiment Graph_sweep.name Graph_sweep.description Graph_sweep.run;
    experiment Uncertainty.name Uncertainty.description Uncertainty.run;
    experiment Attribution.name Attribution.description Attribution.run;
    experiment Scorecard.name Scorecard.description Scorecard.run;
    experiment Presets_exp.name Presets_exp.description Presets_exp.run;
  ]

let find name = List.find_opt (fun e -> e.name = name) all

let m_exp_runs = Obs.Metrics.counter "experiments.runs"

(* One experiment per pool task; reports are assembled in registry
   order, so the concatenated output is identical to a sequential run
   regardless of the jobs count. *)
let run_all ?jobs () =
  let report e =
    Obs.Trace.with_span ("experiment." ^ e.name) @@ fun _ ->
    Obs.Metrics.incr m_exp_runs;
    Printf.sprintf "######## %s — %s ########\n\n%s" e.name e.description
      (e.run ())
  in
  String.concat "\n" (Numerics.Pool.map_list ?jobs report all)

let names () = List.map (fun e -> e.name) all
