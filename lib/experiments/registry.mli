(** Registry of all reproduced tables, figures and cross-checks. *)

type experiment = {
  name : string;  (** Id used by [swap_cli experiment <id>] and benches. *)
  description : string;
  run : unit -> string;  (** Produces the full text report. *)
  datasets : (unit -> (string * string) list) option;
      (** Machine-readable output: [(filename, csv contents)] pairs,
          for experiments with natural data series. *)
}

val all : experiment list
(** Every experiment, in paper order. *)

val find : string -> experiment option

val run_all : ?jobs:int -> unit -> string
(** Concatenated reports of every experiment, in paper order.  Runs one
    experiment per domain-pool task ([jobs] defaults to the pool's
    global setting); the output is identical for any jobs count. *)

val names : unit -> string list
