let fmt x =
  if Float.is_integer x && abs_float x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.4g" x

let table ~header ~rows =
  let all = header :: rows in
  let cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init cols width in
  let render_row row =
    String.concat "  "
      (List.mapi
         (fun c w ->
           let cell = Option.value ~default:"" (List.nth_opt row c) in
           cell ^ String.make (max 0 (w - String.length cell)) ' ')
         widths)
  in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (render_row header :: sep :: List.map render_row rows)
  ^ "\n"

let csv ~header ~rows =
  let line cells = String.concat "," cells in
  String.concat "\n" (line header :: List.map line rows) ^ "\n"

let section title =
  title ^ "\n" ^ String.make (String.length title) '=' ^ "\n"

let glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&'; '~'; '$' |]

let ascii_plot ?(width = 72) ?(height = 20) ?(x_label = "x") ?(y_label = "y")
    series =
  let all_points = List.concat_map (fun (_, pts) -> Array.to_list pts) series in
  match all_points with
  | [] -> "(no data)\n"
  | _ ->
    let xs = List.map fst all_points and ys = List.map snd all_points in
    let x_min = List.fold_left min infinity xs in
    let x_max = List.fold_left max neg_infinity xs in
    let y_min = List.fold_left min infinity ys in
    let y_max = List.fold_left max neg_infinity ys in
    let x_span = if x_max > x_min then x_max -. x_min else 1. in
    let y_span = if y_max > y_min then y_max -. y_min else 1. in
    let grid = Array.make_matrix height width ' ' in
    List.iteri
      (fun si (_, pts) ->
        let glyph = glyphs.(si mod Array.length glyphs) in
        Array.iter
          (fun (x, y) ->
            let col =
              int_of_float ((x -. x_min) /. x_span *. float_of_int (width - 1))
            in
            let row =
              height - 1
              - int_of_float
                  ((y -. y_min) /. y_span *. float_of_int (height - 1))
            in
            if row >= 0 && row < height && col >= 0 && col < width then
              grid.(row).(col) <- glyph)
          pts)
      series;
    let buf = Buffer.create 2048 in
    Buffer.add_string buf
      (Printf.sprintf "%s: %s to %s\n" y_label (fmt y_min) (fmt y_max));
    Array.iter
      (fun line ->
        Buffer.add_string buf "  |";
        Buffer.add_string buf (String.init width (fun i -> line.(i)));
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf ("  +" ^ String.make width '-' ^ "\n");
    Buffer.add_string buf
      (Printf.sprintf "   %s: %s to %s\n" x_label (fmt x_min) (fmt x_max));
    List.iteri
      (fun si (label, _) ->
        Buffer.add_string buf
          (Printf.sprintf "   [%c] %s\n" glyphs.(si mod Array.length glyphs)
             label))
      series;
    Buffer.contents buf
