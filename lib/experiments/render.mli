(** Text rendering for experiment reports: aligned tables, CSV, and
    ASCII line plots (the repository's stand-in for the paper's
    figures). *)

val table : header:string list -> rows:string list list -> string
(** Column-aligned plain-text table. *)

val csv : header:string list -> rows:string list list -> string

val fmt : float -> string
(** Compact numeric formatting used across reports ("%.4g"). *)

val ascii_plot :
  ?width:int -> ?height:int -> ?x_label:string -> ?y_label:string ->
  (string * (float * float) array) list -> string
(** Multi-series scatter/line plot on a character grid; each series gets
    a distinct glyph, listed in the legend.  Ranges are data-driven. *)

val section : string -> string
(** Underlined section heading. *)
