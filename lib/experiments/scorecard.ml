(* Replication scorecard: every quantitative or directional claim the
   paper makes, the value this repository measures for it, and a
   machine-checked verdict.  The test suite asserts that every verdict
   is PASS, so the scorecard doubles as the reproduction's regression
   gate. *)

let name = "scorecard"
let description = "Machine-checked verdicts for every reproduced paper claim"

type expectation =
  | Range of float * float  (** Measured value must land inside. *)
  | Approx of float * float  (** (target, absolute tolerance). *)
  | Holds  (** The measured value is 1. when a direction/shape holds. *)

type claim = {
  id : string;
  statement : string;
  expectation : expectation;
  measure : unit -> float;
}

let bool_measure f () = if f () then 1. else 0.

let claims () =
  let p = Swap.Params.defaults in
  let sr = Swap.Success.analytic p in
  [
    {
      id = "eq18";
      statement = "Alice's t3 cutoff (Eq. 18) at P*=2, Table III defaults";
      expectation =
        Approx (exp (((0.01 -. 0.002) *. 4.) -. (0.01 *. 7.)) *. 2. /. 1.3, 1e-9);
      measure = (fun () -> Swap.Cutoff.p_t3_low p ~p_star:2.);
    };
    {
      id = "eq29-lo";
      statement = "Feasible-rate floor P*_low (paper: 1.5)";
      expectation = Range (1.4, 1.6);
      measure =
        (fun () ->
          match Swap.Cutoff.p_star_band_endpoints p with
          | Some (lo, _) -> lo
          | None -> nan);
    };
    {
      id = "eq29-hi";
      statement = "Feasible-rate ceiling P*_high (paper: 2.5)";
      expectation = Range (2.4, 2.6);
      measure =
        (fun () ->
          match Swap.Cutoff.p_star_band_endpoints p with
          | Some (_, hi) -> hi
          | None -> nan);
    };
    {
      id = "fig6-concave";
      statement = "SR is peaked strictly inside the feasible band (Fig. 6)";
      expectation = Holds;
      measure =
        bool_measure (fun () ->
            sr ~p_star:2. > sr ~p_star:1.6 && sr ~p_star:2. > sr ~p_star:2.45);
    };
    {
      id = "fig6-alpha";
      statement = "Higher success premium raises SR (Sec. III-F1)";
      expectation = Holds;
      measure =
        bool_measure (fun () ->
            let at a =
              Swap.Success.analytic
                (Swap.Params.with_alpha_alice (Swap.Params.with_alpha_bob p a) a)
                ~p_star:2.
            in
            at 0.45 > at 0.3 && at 0.3 > at 0.15);
    };
    {
      id = "fig6-r";
      statement = "Impatience narrows the feasible band (Sec. III-F2)";
      expectation = Holds;
      measure =
        bool_measure (fun () ->
            let width r =
              match
                Swap.Cutoff.p_star_band_endpoints
                  (Swap.Params.with_r_alice (Swap.Params.with_r_bob p r) r)
              with
              | Some (lo, hi) -> hi -. lo
              | None -> 0.
            in
            width 0.02 < width 0.01);
    };
    {
      id = "fig6-tau";
      statement = "Faster chains raise the optimal SR (Sec. III-F3)";
      expectation = Holds;
      measure =
        bool_measure (fun () ->
            let best p' =
              match Swap.Success.maximize p' with
              | Some b -> b.Swap.Success.sr
              | None -> 0.
            in
            best (Swap.Params.with_tau_a (Swap.Params.with_tau_b p 2.) 1.)
            > best p);
    };
    {
      id = "fig6-mu";
      statement = "Upward drift raises SR (Sec. III-F4)";
      expectation = Holds;
      measure =
        bool_measure (fun () ->
            Swap.Success.analytic (Swap.Params.with_mu p 0.01) ~p_star:2.
            > Swap.Success.analytic (Swap.Params.with_mu p (-0.01)) ~p_star:2.);
    };
    {
      id = "fig6-sigma";
      statement = "Volatility lowers the maximum SR (Sec. III-F4)";
      expectation = Holds;
      measure =
        bool_measure (fun () ->
            let best sigma =
              match Swap.Success.maximize (Swap.Params.with_sigma p sigma) with
              | Some b -> b.Swap.Success.sr
              | None -> 0.
            in
            best 0.05 > best 0.1 && best 0.1 > best 0.15);
    };
    {
      id = "fig9";
      statement = "Collateral raises SR monotonically (Fig. 9 / Eq. 40)";
      expectation = Holds;
      measure =
        bool_measure (fun () ->
            let at q =
              Swap.Collateral.success_rate (Swap.Collateral.symmetric p ~q)
                ~p_star:2.
            in
            at 0.5 > at 0.25 && at 0.25 > at 0.);
    };
    {
      id = "both-exits";
      statement =
        "Both counterparties walk away with positive probability (Sec. V)";
      expectation = Holds;
      measure =
        bool_measure (fun () ->
            let d = Swap.Outcomes.distribution p ~p_star:2. in
            d.Swap.Outcomes.alice_reneges > 0.01
            && d.Swap.Outcomes.bob_balks_high +. d.Swap.Outcomes.bob_balks_low
               > 0.01);
    };
    {
      id = "bisq";
      statement =
        "Collateralised failure rate in the low single digits at moderate \
         volatility (Sec. II-A's 3-5% anecdote)";
      expectation = Range (0.005, 0.08);
      measure =
        (fun () ->
          1.
          -. Swap.Collateral.success_rate
               (Swap.Collateral.symmetric p ~q:0.5)
               ~p_star:2.);
    };
    {
      id = "sr-default";
      statement = "Baseline SR at the defaults and P* = 2 (regression pin)";
      expectation = Approx (0.7143, 0.002);
      measure = (fun () -> sr ~p_star:2.);
    };
    {
      id = "mc-consistency";
      statement = "Monte-Carlo agrees with Eq. 31 (20k paths, +-0.01)";
      expectation = Holds;
      measure =
        bool_measure (fun () ->
            let policy = Swap.Agent.rational p ~p_star:2. in
            let mc = Swap.Montecarlo.run ~trials:20_000 p ~p_star:2. ~policy in
            abs_float (mc.Swap.Montecarlo.rate -. sr ~p_star:2.) < 0.01);
    };
    {
      id = "lattice-consistency";
      statement = "Generic SPE solver on a lattice converges to Eq. 31";
      expectation = Holds;
      measure =
        bool_measure (fun () ->
            let spec =
              Swap.Lattice_game.make_spec ~steps_a:120 ~steps_b:120 p ~p_star:2.
            in
            abs_float
              ((Swap.Lattice_game.solve spec).Swap.Lattice_game.success_rate
              -. sr ~p_star:2.)
            < 0.03);
    };
    {
      id = "best-response";
      statement =
        "No probed unilateral deviation beats Eq. 18 or the t2 band";
      expectation = Holds;
      measure =
        bool_measure (fun () ->
            (Swap.Equilibrium.check_alice_cutoff p ~p_star:2.)
              .Swap.Equilibrium.is_best_response
            && (Swap.Equilibrium.check_bob_band p ~p_star:2.)
                 .Swap.Equilibrium.is_best_response);
    };
    {
      id = "ac3-regime";
      statement =
        "Witness commitment's SR equals the alice-committed regime          (Sec. II-C protocols on the same utility model)";
      expectation = Holds;
      measure =
        bool_measure (fun () ->
            abs_float
              (Swap.Ac3.success_rate p ~p_star:2.
              -. (Swap.Optionality.value p ~p_star:2.
                    Swap.Optionality.alice_committed)
                   .Swap.Optionality.success_rate)
            < 1e-6);
    };
    {
      id = "table1";
      statement = "Live protocol run moves balances exactly per Table I";
      expectation = Holds;
      measure =
        bool_measure (fun () ->
            let r = Swap.Protocol.run p ~p_star:2. in
            r.Swap.Protocol.outcome = Swap.Protocol.Success
            && r.Swap.Protocol.alice_delta_a = -2.
            && r.Swap.Protocol.alice_delta_b = 1.
            && r.Swap.Protocol.bob_delta_a = 2.
            && r.Swap.Protocol.bob_delta_b = -1.);
    };
  ]

let verdict claim =
  let v = claim.measure () in
  match claim.expectation with
  | Range (lo, hi) -> (v, v >= lo && v <= hi)
  | Approx (target, tol) -> (v, abs_float (v -. target) <= tol)
  | Holds -> (v, v = 1.)

let all_pass () = List.for_all (fun c -> snd (verdict c)) (claims ())

let run () =
  let rows =
    List.map
      (fun c ->
        let v, ok = verdict c in
        let expected =
          match c.expectation with
          | Range (lo, hi) -> Printf.sprintf "in [%g, %g]" lo hi
          | Approx (t, tol) -> Printf.sprintf "%g +- %g" t tol
          | Holds -> "holds"
        in
        [
          c.id;
          c.statement;
          expected;
          (match c.expectation with
          | Holds -> if v = 1. then "yes" else "NO"
          | _ -> Render.fmt v);
          (if ok then "PASS" else "FAIL");
        ])
      (claims ())
  in
  Render.section "Replication scorecard"
  ^ Render.table
      ~header:[ "id"; "claim"; "expected"; "measured"; "verdict" ]
      ~rows
  ^ (if all_pass () then "\nAll claims PASS.\n"
     else "\nSOME CLAIMS FAIL — see above.\n")
