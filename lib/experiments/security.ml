(* Security economics: lockup griefing (the attack Arwen [30] targets)
   and reputation as an endogenous success premium (Section III-F1's
   reading of alpha). *)

let name = "security"
let description = "Lockup-griefing economics and endogenous reputation premia"

let griefing_block () =
  let p = Swap.Params.defaults in
  let p_star = 2. in
  let rows =
    List.map
      (fun (label, params, q_alice) ->
        let g = Swap.Griefing.analyse ~q_alice params ~p_star in
        [
          label;
          Render.fmt q_alice;
          Render.fmt g.Swap.Griefing.attacker_cost;
          Render.fmt g.Swap.Griefing.victim_damage;
          Render.fmt g.Swap.Griefing.victim_lock_hours;
          Render.fmt g.Swap.Griefing.griefing_factor;
        ])
      [
        ("symmetric agents", p, 0.);
        ("impatient victim (r_B=0.03)", Swap.Params.with_r_bob p 0.03, 0.);
        ("impatient victim + premium", Swap.Params.with_r_bob p 0.03, 0.25);
        ("slow chains (tau x2)",
         Swap.Params.with_tau_a (Swap.Params.with_tau_b p 8.) 6., 0.);
      ]
  in
  let deterrence =
    match
      Swap.Griefing.deterrence_deposit (Swap.Params.with_r_bob p 0.03) ~p_star
    with
    | Some q -> Printf.sprintf "%.4f Token_a" q
    | None -> "not reachable"
  in
  Render.section "Lockup griefing: attacker cost vs victim damage"
  ^ Render.table
      ~header:
        [ "scenario"; "attacker deposit"; "attacker cost"; "victim damage";
          "victim lock (h)"; "griefing factor" ]
      ~rows
  ^ Printf.sprintf
      "\nAgainst an impatient victim the attack inflicts ~2.6x its cost; the\n\
       smallest attacker-side deposit restoring factor <= 1 is %s --\n\
       the quantitative version of Arwen's premium prescription.  Slow\n\
       chains amplify the attack by stretching the victim's lock.\n\n"
      deterrence

let reputation_block () =
  let p = Swap.Params.defaults in
  let p_star = 2. in
  let rows =
    List.map
      (fun (label, trades_per_week, horizon_weeks) ->
        let rel = { Swap.Repeated.trades_per_week; horizon_weeks } in
        let fp = Swap.Repeated.solve p ~p_star rel in
        [
          label;
          Render.fmt trades_per_week;
          Render.fmt horizon_weeks;
          Render.fmt fp.Swap.Repeated.alpha_endogenous;
          Render.fmt fp.Swap.Repeated.sr_endogenous;
        ])
      [
        ("one-off counterparty", 0.01, 1.);
        ("occasional (1/week, 6 months)", 1., 26.);
        ("regular (1/day, 6 months)", 7., 26.);
        ("active desk (2/day, 6 months)", 14., 26.);
        ("market maker (8/day, 1 year)", 56., 52.);
      ]
  in
  let fp_mm =
    Swap.Repeated.solve p ~p_star
      { Swap.Repeated.trades_per_week = 56.; horizon_weeks = 52. }
  in
  Render.section "Endogenous success premium from repeated trading"
  ^ Render.table
      ~header:
        [ "relationship"; "trades/week"; "horizon (weeks)";
          "endogenous alpha"; "SR" ]
      ~rows
  ^ Printf.sprintf
      "\nThe reputation map is bistable.  Anonymous or low-frequency\n\
       relationships unravel completely (SR = %.2f at alpha ~ 0): at a 1%%\n\
       hourly discount rate a week of future surplus is nearly worthless.\n\
       Past roughly a trade per day the fixed point jumps to a premium at\n\
       or above the paper's exogenous 0.3 (here capped at %.1f), making\n\
       the swap near-certain.  Table III's alpha is thus the signature of\n\
       an ongoing relationship, and HTLC venues lean on repeat market\n\
       makers for a reason.\n"
      fp_mm.Swap.Repeated.sr_one_shot fp_mm.Swap.Repeated.alpha_endogenous

let relationship_block () =
  let p = Swap.Params.defaults in
  let open Swap.Relationship in
  let rows =
    List.map
      (fun (label, a, b, q) ->
        let ma, mb, rounds =
          mean_totals ~relationships:300 ~q p ~alice:a ~bob:b
        in
        [ label; Render.fmt rounds; Render.fmt ma; Render.fmt mb ])
      [
        ("faithful / faithful", Faithful, Faithful, 0.);
        ("faithful / opportunist", Faithful, Opportunist, 0.);
        ("opportunist / opportunist", Opportunist, Opportunist, 0.);
        ("faithful pair + Q=0.5", Faithful, Faithful, 0.5);
        ("opportunist pair + Q=0.5", Opportunist, Opportunist, 0.5);
      ]
  in
  Render.section "Grim-trigger relationships in simulation (100-round horizon)"
  ^ Render.table
      ~header:
        [ "pair"; "mean swaps completed"; "Alice total"; "Bob total" ]
      ~rows
  ^ "\nOpportunists earn a fraction of what faithful pairs do: the exits\n\
     they take end the stream almost immediately.  A Section IV deposit\n\
     multiplies relationship length tenfold and roughly doubles wealth\n\
     even for faithful pairs -- the operational counterpart of the\n\
     endogenous-premium fixed point above.\n"

let run () = griefing_block () ^ reputation_block () ^ "\n" ^ relationship_block ()
