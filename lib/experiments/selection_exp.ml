(* Protocol selection (Section V): given a menu of mechanisms, which
   would rational agents adopt, and which maximises joint surplus? *)

let name = "selection"
let description = "Which protocol would the agents select? (Section V)"

let menu =
  [
    Swap.Selection.Plain;
    Swap.Selection.Premium 0.25;
    Swap.Selection.Premium 0.5;
    Swap.Selection.Collateral 0.25;
    Swap.Selection.Collateral 0.5;
    Swap.Selection.Collateral 1.;
  ]

let regime_block label p =
  let p_star = 2. in
  let assessments = Swap.Selection.menu p ~p_star menu in
  let rows =
    List.map
      (fun (a : Swap.Selection.assessment) ->
        [
          Swap.Selection.mechanism_to_string a.Swap.Selection.mechanism;
          Render.fmt a.Swap.Selection.alice_net;
          Render.fmt a.Swap.Selection.bob_net;
          Render.fmt a.Swap.Selection.success_rate;
          (if a.Swap.Selection.adoptable then "yes" else "no");
        ])
      assessments
  in
  let choice = Swap.Selection.choose p ~p_star menu in
  let show = function
    | Some m -> Swap.Selection.mechanism_to_string m
    | None -> "none adoptable"
  in
  Render.section (label ^ " (P* = 2)")
  ^ Render.table
      ~header:[ "mechanism"; "Alice net"; "Bob net"; "SR"; "adoptable" ]
      ~rows
  ^ Printf.sprintf "Alice prefers: %s\nBob prefers:   %s\nJoint surplus: %s\n\n"
      (show choice.Swap.Selection.alice_best)
      (show choice.Swap.Selection.bob_best)
      (show choice.Swap.Selection.joint)

let run () =
  let defaults = Swap.Params.defaults in
  regime_block "Default market (sigma = 0.1)" defaults
  ^ regime_block "Volatile market (sigma = 0.18)"
      (Swap.Params.with_sigma defaults 0.18)
  ^ "Collateral mechanisms dominate on joint surplus because they raise\n\
     the completion probability for both sides; in volatile markets the\n\
     plain HTLC stops being adoptable at all while moderate deposits keep\n\
     the market open.\n"
