(* Mean-reverting (stablecoin-like) Token_b: the paper's GBM cannot
   express a pegged token, but the backward induction is not specific
   to GBM -- the generic solver re-derives cutoffs, bands and success
   rates under exponential-OU prices with exact transitions. *)

let name = "stablecoin"
let description = "Swap reliability for pegged (mean-reverting) tokens"

let run () =
  let p = Swap.Params.defaults in
  let p_star = 2. in
  let gbm_model = Swap.Generic_model.gbm p in
  let gbm_sr = Swap.Generic_model.success_rate p gbm_model ~p_star in
  let rows =
    List.map
      (fun kappa ->
        let ou =
          Stochastic.Exp_ou.create ~kappa ~theta_price:2. ~sigma:p.Swap.Params.sigma
        in
        let m = Swap.Generic_model.exp_ou ou in
        let analytic = Swap.Generic_model.success_rate p m ~p_star in
        let mc =
          Swap.Montecarlo.run ~trials:30_000
            ~sampler:(Swap.Generic_model.sampler m)
            p ~p_star
            ~policy:(Swap.Generic_model.policy p m ~p_star)
        in
        [
          Render.fmt kappa;
          Printf.sprintf "%.1f" (Stochastic.Exp_ou.half_life ou);
          Render.fmt (Swap.Generic_model.p_t3_low p m ~p_star);
          Render.fmt analytic;
          Render.fmt mc.Swap.Montecarlo.rate;
        ])
      [ 0.005; 0.02; 0.05; 0.1; 0.25; 0.5 ]
  in
  Render.section "Mean-reverting Token_b (peg at 2, same instantaneous sigma)"
  ^ Printf.sprintf
      "GBM baseline (kappa -> 0, generic solver): SR = %.4f, cutoff = %.4f\n\n"
      gbm_sr
      (Swap.Generic_model.p_t3_low p gbm_model ~p_star)
  ^ Render.table
      ~header:
        [ "kappa (/h)"; "half-life (h)"; "Alice's t3 cutoff"; "SR analytic";
          "SR Monte-Carlo" ]
      ~rows
  ^ "\nThe stronger the peg, the lower Alice's defection cutoff (deviations\n\
     from the peg are expected to revert before her receipt) and the\n\
     higher the success rate: with an hours-scale half-life the swap is\n\
     near-certain at the same instantaneous volatility that dooms a\n\
     free-floating token.  HTLC fragility is a property of persistent\n\
     price moves, not of noise per se.\n"
