(* Table I — agents' expected balance change by swap: executed for real
   on the two-chain simulator, for the success path and every abort
   path (aborts must leave balances unchanged once refunds land). *)

let name = "tab1"
let description = "Table I: balance changes on both chains, from live protocol runs"

let row_of_result label (r : Swap.Protocol.result) =
  [
    label;
    Swap.Protocol.outcome_to_string r.Swap.Protocol.outcome;
    Render.fmt r.Swap.Protocol.alice_delta_a;
    Render.fmt r.Swap.Protocol.alice_delta_b;
    Render.fmt r.Swap.Protocol.bob_delta_a;
    Render.fmt r.Swap.Protocol.bob_delta_b;
  ]

let run () =
  let p = Swap.Params.defaults in
  let p_star = 2. in
  let success = Swap.Protocol.run p ~p_star in
  let stop_t1 =
    { Swap.Agent.honest with alice_t1 = (fun ~p_star:_ -> Swap.Agent.Stop) }
  in
  let stop_t2 =
    { Swap.Agent.honest with bob_t2 = (fun ~p_t2:_ -> Swap.Agent.Stop) }
  in
  let stop_t3 =
    { Swap.Agent.honest with alice_t3 = (fun ~p_t3:_ -> Swap.Agent.Stop) }
  in
  let rows =
    [
      row_of_result "honest run" success;
      row_of_result "alice stops t1" (Swap.Protocol.run p ~policy:stop_t1 ~p_star);
      row_of_result "bob stops t2" (Swap.Protocol.run p ~policy:stop_t2 ~p_star);
      row_of_result "alice stops t3" (Swap.Protocol.run p ~policy:stop_t3 ~p_star);
    ]
  in
  let expected =
    Render.table
      ~header:[ "agent"; "on Chain_a"; "on Chain_b" ]
      ~rows:
        [
          [ "Alice"; "-P* Token_a"; "+1 Token_b" ];
          [ "Bob"; "+P* Token_a"; "-1 Token_b" ];
        ]
  in
  Render.section "Table I: expected balance change by swap (P* = 2)"
  ^ "Paper (success case):\n" ^ expected ^ "\nSimulated (chain deltas):\n"
  ^ Render.table
      ~header:
        [ "scenario"; "outcome"; "A dChain_a"; "A dChain_b"; "B dChain_a";
          "B dChain_b" ]
      ~rows
  ^ "\nAbort paths leave every balance unchanged after refunds (atomicity).\n"
