(* Table III — default parameter values, as validated by Params. *)

let name = "tab3"
let description = "Table III: default model parameters"

let run () =
  let p = Swap.Params.defaults in
  let rows =
    [
      [ "alpha_A"; Render.fmt p.Swap.Params.alice.alpha; "success premium, Alice" ];
      [ "alpha_B"; Render.fmt p.Swap.Params.bob.alpha; "success premium, Bob" ];
      [ "r_A"; Render.fmt p.Swap.Params.alice.r; "/hour discount rate, Alice" ];
      [ "r_B"; Render.fmt p.Swap.Params.bob.r; "/hour discount rate, Bob" ];
      [ "tau_a"; Render.fmt p.Swap.Params.tau_a; "hours, Chain_a confirmation" ];
      [ "tau_b"; Render.fmt p.Swap.Params.tau_b; "hours, Chain_b confirmation" ];
      [ "eps_b"; Render.fmt p.Swap.Params.eps_b; "hours, mempool discoverability" ];
      [ "P_t0"; Render.fmt p.Swap.Params.p0; "Token_a per Token_b" ];
      [ "mu"; Render.fmt p.Swap.Params.mu; "/hour drift" ];
      [ "sigma"; Render.fmt p.Swap.Params.sigma; "/sqrt(hour) volatility" ];
    ]
  in
  let valid =
    match Swap.Params.validate p with
    | Ok () -> "defaults satisfy every model constraint"
    | Error e -> "INVALID: " ^ e
  in
  Render.section "Table III: default parameter values"
  ^ Render.table ~header:[ "parameter"; "value"; "meaning" ] ~rows
  ^ "\n" ^ valid ^ "\n"
