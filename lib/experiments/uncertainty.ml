(* Incomplete information about the success premium — the Section I
   claim "we study the game with uncertainty in counterparties'
   success premium", implemented as a discrete-type Bayesian game. *)

let name = "uncertainty"
let description = "Uncertainty in the counterparty's success premium (Sec. I)"

let spreads =
  [
    ("known alpha = 0.3", [ (1., 0.3) ]);
    ("0.25 or 0.35", [ (0.5, 0.25); (0.5, 0.35) ]);
    ("0.2 or 0.4", [ (0.5, 0.2); (0.5, 0.4) ]);
    ("0.1 or 0.5", [ (0.5, 0.1); (0.5, 0.5) ]);
    ("0.05 or 0.55", [ (0.5, 0.05); (0.5, 0.55) ]);
  ]

let bob_side () =
  let p = Swap.Params.defaults in
  let p_star = 2. in
  let rows =
    List.map
      (fun (label, pairs) ->
        let b = Swap.Bayesian.belief pairs in
        let low_alpha = snd (List.hd pairs) in
        let high_alpha = snd (List.nth pairs (List.length pairs - 1)) in
        [
          label;
          Swap.Intervals.to_string
            (Swap.Bayesian.p_t2_band_mixed p ~belief_on_alice:b ~p_star);
          Render.fmt
            (Swap.Bayesian.ex_ante_success_rate p ~belief_on_alice:b ~p_star);
          Render.fmt
            (Swap.Bayesian.success_rate_given_alice p ~belief_on_alice:b
               ~true_alpha_alice:low_alpha ~p_star);
          Render.fmt
            (Swap.Bayesian.success_rate_given_alice p ~belief_on_alice:b
               ~true_alpha_alice:high_alpha ~p_star);
        ])
      spreads
  in
  Render.section
    "Bob uncertain about Alice's premium (mean-preserving spreads, P* = 2)"
  ^ Render.table
      ~header:
        [ "belief on alpha_A"; "Bob's t2 band"; "ex-ante SR";
          "SR | low type"; "SR | high type" ]
      ~rows
  ^ "\nAll spreads keep the mean at the paper's 0.3, yet the ex-ante success\n\
     rate falls with dispersion, and the gap between the type-wise rates\n\
     is adverse selection: low-premium Alices trade on terms priced for\n\
     the average type and default at t3 far more often than Bob priced in.\n\n"

let alice_side () =
  let p = Swap.Params.defaults in
  let rows =
    List.map
      (fun (label, pairs) ->
        let b = Swap.Bayesian.belief pairs in
        match Swap.Bayesian.p_star_band_mixed p ~belief_on_bob:b with
        | Some (lo, hi) ->
          [ label; Printf.sprintf "(%.3f, %.3f)" lo hi; Render.fmt (hi -. lo) ]
        | None -> [ label; "infeasible"; "-" ])
      spreads
  in
  Render.section "Alice uncertain about Bob's premium"
  ^ Render.table
      ~header:[ "belief on alpha_B"; "feasible P* band"; "width" ]
      ~rows
  ^ "\nAlice's uncertainty about Bob mostly lowers the band's floor: against\n\
     a possibly-eager Bob she would accept rates a known-type analysis\n\
     rejects, because the high type compensates for the low one.\n"

let run () = bob_side () ^ alice_side ()
