(* Waiting-time ablation: Section III-C argues each agent wants the
   shortest schedule; the Margins module makes the cost of slack
   explicit. *)

let name = "waiting"
let description = "Cost of waiting time: the Eq. 13 zero-wait schedule is optimal"

let run () =
  let p = Swap.Params.defaults in
  let p_star = 2. in
  let rows =
    List.map
      (fun (d2, d3) ->
        let m = Swap.Margins.create p ~delay_t2:d2 ~delay_t3:d3 in
        let loss_a, loss_b =
          Swap.Margins.schedule_cost p ~p_star ~delay_t2:d2 ~delay_t3:d3
        in
        [
          Render.fmt d2;
          Render.fmt d3;
          Render.fmt (Swap.Margins.success_rate m ~p_star);
          Render.fmt loss_a;
          Render.fmt loss_b;
        ])
      [ (0., 0.); (0., 2.); (0., 6.); (2., 0.); (6., 0.); (2., 2.); (4., 4.) ]
  in
  Render.section "Utility and success-rate cost of schedule slack (P* = 2)"
  ^ Render.table
      ~header:
        [ "Bob's slack at t2 (h)"; "Alice's slack at t3 (h)"; "SR";
          "Alice's t1 loss"; "Bob's t1 loss" ]
      ~rows
  ^ "\nEvery hour of slack strictly hurts BOTH agents and the success rate:\n\
     the extra diffusion feeds the counterparty's (and one's own) exit\n\
     option while discounting erodes all receipts.  Agreeing on the\n\
     zero-waiting schedule of Eq. 13 is therefore incentive-compatible,\n\
     which is the formal content of Section III-C.\n"
