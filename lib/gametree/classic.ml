let centipede ~rounds ~pot0 ~growth =
  if rounds < 1 then invalid_arg "Classic.centipede: requires rounds >= 1";
  if growth <= 1. then invalid_arg "Classic.centipede: requires growth > 1";
  let rec build round pot =
    let mover = (round - 1) mod 2 in
    let take_payoffs =
      let big = 2. /. 3. *. pot and small = 1. /. 3. *. pot in
      if mover = 0 then [| big; small |] else [| small; big |]
    in
    let take = Game.terminal ~label:"take" take_payoffs in
    let continuation =
      if round = rounds then
        Game.terminal ~label:"split" [| pot *. growth /. 2.; pot *. growth /. 2. |]
      else build (round + 1) (pot *. growth)
    in
    Game.decision
      ~label:(Printf.sprintf "round%d" round)
      ~player:mover
      [ ("take", take); ("pass", continuation) ]
  in
  build 1 pot0

let ultimatum ~levels =
  if levels < 1 then invalid_arg "Classic.ultimatum: requires levels >= 1";
  let pie = float_of_int levels in
  let offers =
    List.init (levels + 1) (fun k ->
        let kf = float_of_int k in
        let responder =
          Game.decision
            ~label:(Printf.sprintf "respond%d" k)
            ~player:1
            [
              ("accept", Game.terminal ~label:"deal" [| pie -. kf; kf |]);
              ("reject", Game.terminal ~label:"no_deal" [| 0.; 0. |]);
            ]
        in
        (Printf.sprintf "offer%d" k, responder))
  in
  Game.decision ~label:"propose" ~player:0 offers

let entry_deterrence =
  Game.decision ~label:"entry" ~player:0
    [
      ( "enter",
        Game.decision ~label:"response" ~player:1
          [
            ("accommodate", Game.terminal ~label:"duopoly" [| 2.; 1. |]);
            ("fight", Game.terminal ~label:"war" [| -1.; -1. |]);
          ] );
      ("stay_out", Game.terminal ~label:"monopoly" [| 0.; 2. |]);
    ]

let coin_then_choice =
  Game.decision ~label:"pick" ~player:0
    [
      ("safe", Game.terminal ~label:"safe" [| 1.; 0. |]);
      ( "risky",
        Game.chance ~label:"coin"
          [
            (0.5, Game.terminal ~label:"heads" [| 3.; 0. |]);
            (0.5, Game.terminal ~label:"tails" [| 0.; 0. |]);
          ] );
    ]
