(** Classic extensive-form games with known subgame-perfect equilibria,
    used to validate the {!Solve} engine. *)

val centipede : rounds:int -> pot0:float -> growth:float -> Game.t
(** Rosenthal's centipede game for two players.  At each round the
    mover either [take]s (gets [2/3] of the pot, opponent [1/3]) or
    [pass]es, multiplying the pot by [growth > 1].  After the final
    pass the pot is split evenly.  SPE: player 0 takes immediately.
    @raise Invalid_argument if [rounds < 1] or [growth <= 1.]. *)

val ultimatum : levels:int -> Game.t
(** Discrete ultimatum game over a pie of size [levels]: player 0
    offers [k] in [0..levels] to player 1, who accepts or rejects
    (both get 0 on reject).  With the responder accepting at
    indifference, SPE offer is 0.  Action order places [accept] first
    so ties resolve to acceptance. *)

val entry_deterrence : Game.t
(** Entrant (player 0) chooses [enter]/[stay_out]; incumbent (player 1)
    then [accommodate]s or [fight]s.  SPE: enter, accommodate. *)

val coin_then_choice : Game.t
(** A chance node (fair coin) followed by a decision, exercising
    chance-node expectation: player 0 should pick the risky arm with
    expected 1.5 over the safe 1.0. *)
