type t =
  | Terminal of { payoffs : float array; label : string }
  | Decision of {
      player : int;
      node_label : string;
      actions : (string * t) list;
    }
  | Chance of { node_label : string; branches : (float * t) list }

let terminal ?(label = "") payoffs = Terminal { payoffs; label }

let decision ?(label = "") ~player actions =
  if actions = [] then invalid_arg "Game.decision: empty action list";
  if player < 0 then invalid_arg "Game.decision: negative player index";
  Decision { player; node_label = label; actions }

let chance ?(label = "") branches =
  if branches = [] then invalid_arg "Game.chance: empty branch list";
  let total = List.fold_left (fun acc (p, _) -> acc +. p) 0. branches in
  if List.exists (fun (p, _) -> p <= 0.) branches then
    invalid_arg "Game.chance: probabilities must be positive";
  if abs_float (total -. 1.) > 1e-9 then
    invalid_arg "Game.chance: probabilities must sum to 1";
  Chance { node_label = label; branches }

let rec first_leaf = function
  | Terminal { payoffs; _ } -> payoffs
  | Decision { actions = (_, child) :: _; _ } -> first_leaf child
  | Decision { actions = []; _ } -> assert false
  | Chance { branches = (_, child) :: _; _ } -> first_leaf child
  | Chance { branches = []; _ } -> assert false

let n_players t =
  let n = Array.length (first_leaf t) in
  let rec check = function
    | Terminal { payoffs; _ } ->
      if Array.length payoffs <> n then
        invalid_arg "Game.n_players: inconsistent payoff arity"
    | Decision { actions; _ } -> List.iter (fun (_, c) -> check c) actions
    | Chance { branches; _ } -> List.iter (fun (_, c) -> check c) branches
  in
  check t;
  n

let rec size = function
  | Terminal _ -> 1
  | Decision { actions; _ } ->
    List.fold_left (fun acc (_, c) -> acc + size c) 1 actions
  | Chance { branches; _ } ->
    List.fold_left (fun acc (_, c) -> acc + size c) 1 branches

let rec depth = function
  | Terminal _ -> 0
  | Decision { actions; _ } ->
    1 + List.fold_left (fun acc (_, c) -> max acc (depth c)) 0 actions
  | Chance { branches; _ } ->
    1 + List.fold_left (fun acc (_, c) -> max acc (depth c)) 0 branches

let validate t =
  let n = Array.length (first_leaf t) in
  let rec go = function
    | Terminal { payoffs; _ } ->
      if Array.length payoffs <> n then
        Error
          (Printf.sprintf "payoff arity %d, expected %d"
             (Array.length payoffs) n)
      else Ok ()
    | Decision { player; actions; _ } ->
      if player < 0 || player >= n then
        Error (Printf.sprintf "player %d out of range [0, %d)" player n)
      else if actions = [] then Error "empty action list"
      else
        List.fold_left
          (fun acc (_, c) -> match acc with Ok () -> go c | e -> e)
          (Ok ()) actions
    | Chance { branches; _ } ->
      let total = List.fold_left (fun acc (p, _) -> acc +. p) 0. branches in
      if branches = [] then Error "empty chance node"
      else if List.exists (fun (p, _) -> p <= 0.) branches then
        Error "nonpositive chance probability"
      else if abs_float (total -. 1.) > 1e-9 then
        Error (Printf.sprintf "chance probabilities sum to %g" total)
      else
        List.fold_left
          (fun acc (_, c) -> match acc with Ok () -> go c | e -> e)
          (Ok ()) branches
  in
  go t
