(** Finite extensive-form games with perfect information and chance
    nodes, in the style of Osborne & Rubinstein (1994), ch. 6 — the
    formal setting the paper builds on.

    A game is a tree whose internal nodes are either decision nodes
    (one player chooses among labelled actions) or chance nodes
    (nature selects a branch with a fixed probability).  Leaves carry a
    payoff per player. *)

type t =
  | Terminal of { payoffs : float array; label : string }
      (** Leaf: [payoffs.(i)] is player [i]'s utility; [label] describes
          the outcome (e.g. ["success"]). *)
  | Decision of { player : int; node_label : string; actions : (string * t) list }
      (** [player] chooses one of [actions] (tried in list order). *)
  | Chance of { node_label : string; branches : (float * t) list }
      (** Nature moves; probabilities must be positive and sum to 1. *)

val terminal : ?label:string -> float array -> t
val decision : ?label:string -> player:int -> (string * t) list -> t
(** @raise Invalid_argument on an empty action list. *)

val chance : ?label:string -> (float * t) list -> t
(** @raise Invalid_argument if probabilities are not positive or do not
    sum to 1 within [1e-9]. *)

val n_players : t -> int
(** Number of players implied by the payoff vectors.
    @raise Invalid_argument if leaves disagree. *)

val size : t -> int
(** Total node count. *)

val depth : t -> int
(** Longest root-to-leaf path (edges). *)

val validate : t -> (unit, string) result
(** Checks probability normalisation, payoff-arity consistency and
    player-index bounds in one pass. *)
