type t = {
  row_actions : string array;
  col_actions : string array;
  row_payoffs : float array array;
  col_payoffs : float array array;
}

let create ~row_actions ~col_actions ~row_payoffs ~col_payoffs =
  let m = Array.length row_actions and n = Array.length col_actions in
  if m = 0 || n = 0 then invalid_arg "Normal_form.create: empty action set";
  let check_shape name matrix =
    if Array.length matrix <> m then
      invalid_arg ("Normal_form.create: bad row count in " ^ name);
    Array.iter
      (fun row ->
        if Array.length row <> n then
          invalid_arg ("Normal_form.create: bad column count in " ^ name))
      matrix
  in
  check_shape "row_payoffs" row_payoffs;
  check_shape "col_payoffs" col_payoffs;
  { row_actions; col_actions; row_payoffs; col_payoffs }

let dims t = (Array.length t.row_actions, Array.length t.col_actions)

let pure_nash t =
  let m, n = dims t in
  let best_row j =
    (* Maximum row payoff against column j. *)
    let best = ref neg_infinity in
    for i = 0 to m - 1 do
      if t.row_payoffs.(i).(j) > !best then best := t.row_payoffs.(i).(j)
    done;
    !best
  in
  let best_col i =
    let best = ref neg_infinity in
    for j = 0 to n - 1 do
      if t.col_payoffs.(i).(j) > !best then best := t.col_payoffs.(i).(j)
    done;
    !best
  in
  let acc = ref [] in
  for i = m - 1 downto 0 do
    for j = n - 1 downto 0 do
      if
        t.row_payoffs.(i).(j) >= best_row j -. 1e-12
        && t.col_payoffs.(i).(j) >= best_col i -. 1e-12
      then acc := (i, j) :: !acc
    done
  done;
  !acc

let is_dominant t ~player k =
  let m, n = dims t in
  match player with
  | `Row ->
    if k < 0 || k >= m then invalid_arg "Normal_form.is_dominant: bad action";
    let ok = ref true in
    for i = 0 to m - 1 do
      for j = 0 to n - 1 do
        if t.row_payoffs.(k).(j) < t.row_payoffs.(i).(j) -. 1e-12 then
          ok := false
      done
    done;
    !ok
  | `Col ->
    if k < 0 || k >= n then invalid_arg "Normal_form.is_dominant: bad action";
    let ok = ref true in
    for j = 0 to n - 1 do
      for i = 0 to m - 1 do
        if t.col_payoffs.(i).(k) < t.col_payoffs.(i).(j) -. 1e-12 then
          ok := false
      done
    done;
    !ok

let iterated_dominance t =
  let m, n = dims t in
  let rows = ref (List.init m Fun.id) in
  let cols = ref (List.init n Fun.id) in
  let strictly_dominated_row i =
    List.exists
      (fun i' ->
        i' <> i
        && List.for_all
             (fun j -> t.row_payoffs.(i').(j) > t.row_payoffs.(i).(j) +. 1e-12)
             !cols)
      !rows
  in
  let strictly_dominated_col j =
    List.exists
      (fun j' ->
        j' <> j
        && List.for_all
             (fun i -> t.col_payoffs.(i).(j') > t.col_payoffs.(i).(j) +. 1e-12)
             !rows)
      !cols
  in
  let changed = ref true in
  while !changed do
    changed := false;
    let keep_rows = List.filter (fun i -> not (strictly_dominated_row i)) !rows in
    if List.length keep_rows < List.length !rows then begin
      rows := keep_rows;
      changed := true
    end;
    let keep_cols = List.filter (fun j -> not (strictly_dominated_col j)) !cols in
    if List.length keep_cols < List.length !cols then begin
      cols := keep_cols;
      changed := true
    end
  done;
  (!rows, !cols)

type mixed = { row_p : float; col_p : float }

let mixed_nash_2x2 t =
  let m, n = dims t in
  if m <> 2 || n <> 2 then invalid_arg "Normal_form.mixed_nash_2x2: not 2x2";
  (* Column player's probability q on her first action makes the row
     player indifferent:
       q a00 + (1-q) a01 = q a10 + (1-q) a11. *)
  let a = t.row_payoffs and b = t.col_payoffs in
  let denom_q = a.(0).(0) -. a.(0).(1) -. a.(1).(0) +. a.(1).(1) in
  let denom_p = b.(0).(0) -. b.(1).(0) -. b.(0).(1) +. b.(1).(1) in
  if abs_float denom_q < 1e-12 || abs_float denom_p < 1e-12 then None
  else begin
    let q = (a.(1).(1) -. a.(0).(1)) /. denom_q in
    let p = (b.(1).(1) -. b.(1).(0)) /. denom_p in
    if p > 0. && p < 1. && q > 0. && q < 1. then
      Some { row_p = p; col_p = q }
    else None
  end

let expected_payoffs t ~row_p ~col_p =
  let m, n = dims t in
  if Array.length row_p <> m || Array.length col_p <> n then
    invalid_arg "Normal_form.expected_payoffs: shape mismatch";
  let sum arr = Array.fold_left ( +. ) 0. arr in
  if abs_float (sum row_p -. 1.) > 1e-9 || abs_float (sum col_p -. 1.) > 1e-9
  then invalid_arg "Normal_form.expected_payoffs: probabilities must sum to 1";
  let r = ref 0. and c = ref 0. in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let w = row_p.(i) *. col_p.(j) in
      r := !r +. (w *. t.row_payoffs.(i).(j));
      c := !c +. (w *. t.col_payoffs.(i).(j))
    done
  done;
  (!r, !c)
