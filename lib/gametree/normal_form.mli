(** Two-player normal-form (bimatrix) games — the simultaneous-move
    complement of the sequential {!Game} trees.  Used for the [t1]
    stage of the collateral game, where the paper has both agents
    decide {e simultaneously} whether to engage (Section IV-4). *)

type t = {
  row_actions : string array;
  col_actions : string array;
  row_payoffs : float array array;  (** [row_payoffs.(i).(j)]. *)
  col_payoffs : float array array;
}

val create :
  row_actions:string array -> col_actions:string array ->
  row_payoffs:float array array -> col_payoffs:float array array -> t
(** @raise Invalid_argument on shape mismatches or empty action sets. *)

val pure_nash : t -> (int * int) list
(** All pure-strategy Nash equilibria (action-index pairs), row-major
    order.  Weak inequalities: ties count as best responses. *)

val is_dominant : t -> player:[ `Row | `Col ] -> int -> bool
(** Whether the action is weakly dominant for the player. *)

val iterated_dominance : t -> int list * int list
(** Surviving row and column actions after iterated elimination of
    strictly dominated strategies. *)

type mixed = { row_p : float; col_p : float }
(** Probability each player puts on their {e first} action. *)

val mixed_nash_2x2 : t -> mixed option
(** The interior mixed equilibrium of a 2x2 game, when one exists
    (both indifference conditions solvable with probabilities strictly
    inside (0, 1)).
    @raise Invalid_argument if the game is not 2x2. *)

val expected_payoffs : t -> row_p:float array -> col_p:float array -> float * float
(** Expected (row, col) payoffs under mixed profiles (distributions
    over actions).  @raise Invalid_argument on shape/probability
    errors. *)
