type solved =
  | S_terminal of { payoffs : float array; label : string }
  | S_decision of {
      player : int;
      node_label : string;
      value : float array;
      chosen : string;
      branches : (string * solved) list;
    }
  | S_chance of {
      node_label : string;
      value : float array;
      branches : (float * solved) list;
    }

let value = function
  | S_terminal { payoffs; _ } -> payoffs
  | S_decision { value; _ } -> value
  | S_chance { value; _ } -> value

let m_nodes = Obs.Metrics.counter "gametree.nodes_solved"

let rec solve (game : Game.t) : solved =
  Obs.Metrics.incr m_nodes;
  match game with
  | Game.Terminal { payoffs; label } -> S_terminal { payoffs; label }
  | Game.Decision { player; node_label; actions } ->
    let branches = List.map (fun (name, child) -> (name, solve child)) actions in
    let best =
      match branches with
      | [] -> invalid_arg "Solve.solve: empty decision node"
      | first :: rest ->
        (* Strict improvement required: ties keep the earlier action. *)
        List.fold_left
          (fun ((_, best_solved) as best) ((_, cand_solved) as cand) ->
            if (value cand_solved).(player) > (value best_solved).(player)
            then cand
            else best)
          first rest
    in
    let chosen, chosen_solved = best in
    S_decision
      { player; node_label; value = value chosen_solved; chosen; branches }
  | Game.Chance { node_label; branches } ->
    let solved_branches =
      List.map (fun (p, child) -> (p, solve child)) branches
    in
    let n =
      match solved_branches with
      | (_, s) :: _ -> Array.length (value s)
      | [] -> invalid_arg "Solve.solve: empty chance node"
    in
    let acc = Array.make n 0. in
    List.iter
      (fun (p, s) ->
        let v = value s in
        for i = 0 to n - 1 do
          acc.(i) <- acc.(i) +. (p *. v.(i))
        done)
      solved_branches;
    S_chance { node_label; value = acc; branches = solved_branches }

let rec principal_actions = function
  | S_terminal _ -> []
  | S_decision { chosen; branches; _ } ->
    chosen :: principal_actions (List.assoc chosen branches)
  | S_chance { branches; _ } ->
    let _, best =
      List.fold_left
        (fun ((bp, _) as acc) ((p, _) as cand) ->
          if p > bp then cand else acc)
        (List.hd branches) (List.tl branches)
    in
    principal_actions best

let rec outcome_probability s pred =
  match s with
  | S_terminal { label; _ } -> if pred label then 1. else 0.
  | S_decision { chosen; branches; _ } ->
    outcome_probability (List.assoc chosen branches) pred
  | S_chance { branches; _ } ->
    List.fold_left
      (fun acc (p, child) -> acc +. (p *. outcome_probability child pred))
      0. branches

let expected_payoff s ~player = (value s).(player)

let rec sample_playout rng = function
  | S_terminal { label; _ } -> label
  | S_decision { chosen; branches; _ } ->
    sample_playout rng (List.assoc chosen branches)
  | S_chance { branches; _ } ->
    let u = Numerics.Rng.uniform rng in
    let rec pick acc = function
      | [ (_, child) ] -> child
      | (p, child) :: rest -> if u < acc +. p then child else pick (acc +. p) rest
      | [] -> invalid_arg "Solve.sample_playout: empty chance node"
    in
    sample_playout rng (pick 0. branches)

let strategy s =
  let rec go acc = function
    | S_terminal _ -> acc
    | S_decision { node_label; chosen; branches; _ } ->
      go ((node_label, chosen) :: acc) (List.assoc chosen branches)
    | S_chance { branches; _ } ->
      List.fold_left (fun acc (_, child) -> go acc child) acc branches
  in
  List.rev (go [] s)
