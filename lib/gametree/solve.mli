(** Backward induction (subgame-perfect equilibrium) for finite
    extensive-form games with perfect information. *)

type solved =
  | S_terminal of { payoffs : float array; label : string }
  | S_decision of {
      player : int;
      node_label : string;
      value : float array;
      chosen : string;  (** Action selected at the equilibrium. *)
      branches : (string * solved) list;
    }
  | S_chance of {
      node_label : string;
      value : float array;
      branches : (float * solved) list;
    }

val solve : Game.t -> solved
(** Solves the game by backward induction.  At a decision node the
    owning player picks the action maximising her own expected value; a
    {e strictly} better action is required to displace an earlier one,
    so ties resolve to the action listed first (the paper resolves
    Alice's [t3] tie to [stop]; order the action list accordingly). *)

val value : solved -> float array
(** Equilibrium expected payoffs at the node. *)

val principal_actions : solved -> string list
(** Actions chosen along the principal line of play, descending the
    most probable branch at chance nodes (first on ties). *)

val outcome_probability : solved -> (string -> bool) -> float
(** [outcome_probability s pred] — equilibrium probability of reaching a
    terminal node whose label satisfies [pred].  At decision nodes the
    chosen branch has probability 1. *)

val expected_payoff : solved -> player:int -> float

val sample_playout : Numerics.Rng.t -> solved -> string
(** Simulates one play through the solved tree: the chosen action at
    decision nodes, a random branch (by its probability) at chance
    nodes; returns the terminal label reached.  Playout frequencies
    converge to {!outcome_probability} (tested). *)

val strategy : solved -> (string * string) list
(** All (decision-node label, chosen action) pairs, depth-first, only
    for nodes on reachable equilibrium paths (decision branches not
    chosen are excluded; all chance branches are explored). *)
