(* Whole-program call graph over compiler .cmt typedtrees.

   The syntactic pass (Rules) sees one Parsetree at a time; this module
   reads the .cmt files dune already produces (bin_annot is forced on
   repo-wide) and builds a cross-module reference graph keyed on
   resolved [Path.t]s, which is what lets the deep analyses follow a
   nondeterminism source into a cache key three calls away in another
   module.

   Node = one module-level value binding ("Serve.Reactor.process").
   Edge = the body of one binding mentions another binding — by
   resolved path for cross-module references (the typechecker has
   already chased opens and dune's wrapping aliases for us) and by
   ident stamp for references to siblings in the same compilation
   unit.  "Mentions" deliberately over-approximates "calls": passing a
   function to List.iter reaches it just as surely as applying it, and
   for taint/blocking reachability an over-approximation errs on the
   loud side.

   Known false-negative classes (stated honestly, see DESIGN.md §15):
   functor bodies and first-class modules are not expanded; references
   made through records of closures lose the target name; code behind
   external/C stubs is invisible.  Within those limits the graph is
   deterministic: cmt files are loaded in sorted order and every node
   list is sorted by id, so repeated runs produce byte-identical
   analyses. *)

type op = { op_path : string list; op_line : int }

type node = {
  id : string; (* "Serve.Reactor.process" *)
  unit_id : string; (* "Serve.Reactor" *)
  name : string; (* "process" *)
  file : string; (* normalized source path *)
  line : int; (* definition line *)
  refs : (string * int) list; (* resolved mention -> line, in body order *)
  ops : op list; (* every qualified path mentioned, Stdlib-stripped *)
  alloc : string option; (* toplevel mutable allocator, e.g. "Hashtbl.create" *)
  guarded : bool; (* body mentions Mutex.* or Atomic.* *)
}

type t = {
  nodes : node list; (* sorted by id *)
  index : (string, node) Hashtbl.t;
  cmt_files : int;
  edges : int; (* references that resolve to an in-graph node *)
  load_notes : (string * string) list; (* cmt path -> why it was skipped *)
}

(* --- naming -------------------------------------------------------------- *)

(* "Serve__Reactor" -> ["Serve"; "Reactor"]; "Numerics__" -> ["Numerics"];
   "Obs__Json_parse" -> ["Obs"; "Json_parse"] (single underscores are
   part of the name, the wrapping separator is the double). *)
let split_wrapped name =
  let n = String.length name in
  let parts = ref [] in
  let start = ref 0 in
  let i = ref 0 in
  while !i < n - 1 do
    if name.[!i] = '_' && name.[!i + 1] = '_' then begin
      if !i > !start then parts := String.sub name !start (!i - !start) :: !parts;
      i := !i + 2;
      start := !i
    end
    else incr i
  done;
  if n > !start then parts := String.sub name !start (n - !start) :: !parts;
  List.rev !parts

let display_modname modname =
  match split_wrapped modname with
  | "Dune" :: "exe" :: (_ :: _ as rest) -> String.concat "." rest
  | parts -> String.concat "." parts

let rec path_components p acc =
  match p with
  | Path.Pident id -> Ident.name id :: acc
  | Path.Pdot (p, s) -> path_components p (s :: acc)
  | Path.Papply (_, p) -> path_components p acc
  | Path.Pextra_ty (p, _) -> path_components p acc

(* The rule-matching spelling: Stdlib dropped so `Stdlib.Random.int`
   and `Random.int` name the same primitive, wrapping expanded so an
   intra-library spelling matches the cross-library one. *)
let op_path_of p =
  match path_components p [] with
  | "Stdlib" :: rest -> rest
  | head :: rest -> split_wrapped head @ rest
  | [] -> []

let ref_id_of p =
  match path_components p [] with
  | head :: rest -> String.concat "." (display_modname head :: rest)
  | [] -> ""

(* --- typedtree helpers --------------------------------------------------- *)

let rec pat_idents : Typedtree.pattern -> Ident.t list =
 fun p ->
  match p.pat_desc with
  | Tpat_var (id, _) -> [ id ]
  | Tpat_alias (p, id, _) -> id :: pat_idents p
  | Tpat_tuple ps -> List.concat_map pat_idents ps
  | Tpat_construct (_, _, ps, _) -> List.concat_map pat_idents ps
  | Tpat_variant (_, Some p, _) -> pat_idents p
  | Tpat_record (fields, _) ->
    List.concat_map (fun (_, _, p) -> pat_idents p) fields
  | Tpat_array ps -> List.concat_map pat_idents ps
  | Tpat_lazy p -> pat_idents p
  | Tpat_or (a, _, _) -> pat_idents a
  | _ -> []

let loc_line (loc : Location.t) = loc.loc_start.pos_lnum

let alloc_idents =
  [
    ([ "ref" ], "ref");
    ([ "Hashtbl"; "create" ], "Hashtbl.create");
    ([ "Queue"; "create" ], "Queue.create");
    ([ "Buffer"; "create" ], "Buffer.create");
    ([ "Array"; "make" ], "Array.make");
    ([ "Bytes"; "create" ], "Bytes.create");
  ]

(* --- per-unit processing ------------------------------------------------- *)

type binding = {
  b_modpath : string;
  b_name : string;
  b_vb : Typedtree.value_binding;
}

let binding_name vb ~line =
  match pat_idents vb.Typedtree.vb_pat with
  | id :: _ -> Ident.name id
  | [] -> Printf.sprintf "_init_L%d" line

(* Walk a unit's structure collecting module-level bindings, recursing
   into plain nested modules (functors and first-class modules are the
   documented blind spot). *)
let rec collect_structure ~modpath ~(acc : binding list ref)
    (str : Typedtree.structure) =
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            let line = loc_line vb.Typedtree.vb_loc in
            acc :=
              { b_modpath = modpath; b_name = binding_name vb ~line; b_vb = vb }
              :: !acc)
          vbs
      | Tstr_module mb -> collect_module ~modpath ~acc mb
      | Tstr_recmodule mbs -> List.iter (collect_module ~modpath ~acc) mbs
      | _ -> ())
    str.str_items

and collect_module ~modpath ~acc (mb : Typedtree.module_binding) =
  let name =
    match mb.mb_name.txt with Some n -> n | None -> "_"
  in
  let rec unwrap (me : Typedtree.module_expr) =
    match me.mod_desc with
    | Tmod_structure str -> Some str
    | Tmod_constraint (me, _, _, _) -> unwrap me
    | _ -> None
  in
  match unwrap mb.mb_expr with
  | Some str -> collect_structure ~modpath:(modpath ^ "." ^ name) ~acc str
  | None -> ()

(* Body analysis: every Texp_ident in [vb], classified.  [locals] maps
   "<unit_id>#<ident stamp>" of module-level bindings to node ids — the
   unit prefix matters because Ident stamps restart per compilation
   unit, so bare stamps collide across units. *)
let analyse_body ~locals ~unit_id (vb : Typedtree.value_binding) =
  let refs = ref [] in
  let ops = ref [] in
  let guarded = ref false in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.Typedtree.exp_desc with
          | Texp_ident (p, _, _) -> (
            let line = loc_line e.exp_loc in
            match p with
            | Path.Pident id -> (
              match
                Hashtbl.find_opt locals (unit_id ^ "#" ^ Ident.unique_name id)
              with
              | Some target -> refs := (target, line) :: !refs
              | None -> ())
            | _ ->
              let op_path = op_path_of p in
              ops := { op_path; op_line = line } :: !ops;
              (match op_path with
              | ("Mutex" | "Atomic") :: _ -> guarded := true
              | _ -> ());
              refs := (ref_id_of p, line) :: !refs)
          | _ -> ());
          Tast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it vb.Typedtree.vb_expr;
  (List.rev !refs, List.rev !ops, !guarded)

(* Toplevel mutable allocation: an alloc_idents application evaluated
   at module-init time (never inside a function body — per-call state
   is not shared). *)
let alloc_of (vb : Typedtree.value_binding) =
  let found = ref None in
  let rec visit (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_function _ -> ()
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) ->
      (match List.assoc_opt (op_path_of p) alloc_idents with
      | Some name when !found = None -> found := Some name
      | _ -> ());
      List.iter (fun (_, a) -> Option.iter visit a) args
    | _ -> Tast_iterator.default_iterator.expr visit_it e
  and visit_it =
    { Tast_iterator.default_iterator with expr = (fun _ e -> visit e) }
  in
  visit vb.vb_expr;
  !found

(* --- cmt discovery ------------------------------------------------------- *)

let rec walk_cmts ~skip_dirs acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.fold_left
         (fun acc entry ->
           if List.mem entry skip_dirs then acc
           else walk_cmts ~skip_dirs acc (Filename.concat path entry))
         acc
  else if Filename.check_suffix path ".cmt" then path :: acc
  else acc

(* --- the build ----------------------------------------------------------- *)

let build ?(config = Config.default) ~cmt_root () =
  let notes = ref [] in
  let cmt_paths =
    if Sys.file_exists cmt_root then
      List.sort compare (walk_cmts ~skip_dirs:config.skip_dirs [] cmt_root)
    else begin
      notes := [ (cmt_root, "cmt root does not exist") ];
      []
    end
  in
  let bindings_by_unit = ref [] in
  let units_seen = Hashtbl.create 64 in
  List.iter
    (fun cmt_path ->
      match Cmt_format.read_cmt cmt_path with
      | exception (Sys_error msg | Failure msg) ->
        notes := (cmt_path, msg) :: !notes
      | exception Cmi_format.Error _ ->
        notes := (cmt_path, "unreadable cmi payload") :: !notes
      | exception Cmt_format.Error _ ->
        notes := (cmt_path, "not a valid cmt file") :: !notes
      | cmt -> (
        match (cmt.cmt_annots, cmt.cmt_sourcefile) with
        (* "Dune__exe" is the generated namespace wrapper for
           multi-module executable stanzas: alias-only, one per stanza,
           so it duplicates freely and carries no bindings — skip. *)
        | Cmt_format.Implementation _, _ when cmt.cmt_modname = "Dune__exe" ->
          ()
        | Cmt_format.Implementation str, Some source ->
          let unit_id = display_modname cmt.cmt_modname in
          if Hashtbl.mem units_seen unit_id then
            notes :=
              (cmt_path, "duplicate compilation unit " ^ unit_id) :: !notes
          else begin
            Hashtbl.add units_seen unit_id ();
            let file = Config.normalize source in
            let acc = ref [] in
            collect_structure ~modpath:unit_id ~acc str;
            bindings_by_unit :=
              (unit_id, file, List.rev !acc) :: !bindings_by_unit
          end
        | _ -> ()))
    cmt_paths;
  let bindings_by_unit = List.rev !bindings_by_unit in
  (* Phase A: name every binding.  Shadowing: the later binding keeps
     the plain id (it is the one external references resolve to), the
     earlier one is disambiguated by its definition line. *)
  let locals = Hashtbl.create 1024 in
  let named = ref [] in
  List.iter
    (fun (unit_id, file, bindings) ->
      (* plain id -> (definition line, the binding's ident stamps) for
         the current holder of that id in this unit. *)
      let taken = Hashtbl.create 64 in
      List.iter
        (fun b ->
          let line = loc_line b.b_vb.Typedtree.vb_loc in
          let plain = b.b_modpath ^ "." ^ b.b_name in
          let stamps =
            List.map
              (fun id -> unit_id ^ "#" ^ Ident.unique_name id)
              (pat_idents b.b_vb.Typedtree.vb_pat)
          in
          (match Hashtbl.find_opt taken plain with
          | Some (prev_line, prev_stamps) ->
            (* The later binding keeps the plain id (external references
               resolve to it); the earlier holder is disambiguated by
               its definition line. *)
            let renamed = Printf.sprintf "%s@L%d" plain prev_line in
            List.iter
              (fun stamp ->
                if Hashtbl.find_opt locals stamp = Some plain then
                  Hashtbl.replace locals stamp renamed)
              prev_stamps;
            named :=
              List.map
                (fun (id, ln, u, f, bb) ->
                  if id = plain && ln = prev_line then (renamed, ln, u, f, bb)
                  else (id, ln, u, f, bb))
                !named
          | None -> ());
          Hashtbl.replace taken plain (line, stamps);
          List.iter (fun stamp -> Hashtbl.replace locals stamp plain) stamps;
          named := (plain, line, unit_id, file, b) :: !named)
        bindings)
    bindings_by_unit;
  let named = List.rev !named in
  (* Phase B: bodies. *)
  let nodes =
    List.map
      (fun (id, line, unit_id, file, b) ->
        let refs, ops, guarded = analyse_body ~locals ~unit_id b.b_vb in
        {
          id;
          unit_id;
          name = b.b_name;
          file;
          line;
          refs;
          ops;
          alloc = alloc_of b.b_vb;
          guarded;
        })
      named
  in
  let nodes = List.sort (fun a b -> compare a.id b.id) nodes in
  let index = Hashtbl.create (List.length nodes * 2) in
  List.iter (fun n -> Hashtbl.replace index n.id n) nodes;
  let edges =
    List.fold_left
      (fun acc n ->
        acc
        + List.length
            (List.filter (fun (r, _) -> Hashtbl.mem index r) n.refs))
      0 nodes
  in
  {
    nodes;
    index;
    cmt_files = List.length cmt_paths;
    edges;
    load_notes = List.sort compare !notes;
  }

let find t id = Hashtbl.find_opt t.index id

(* In-graph successors, deduped (first mention's line wins) and sorted
   by id — the deterministic adjacency every BFS in Reach relies on. *)
let succs t node =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  List.iter
    (fun (r, line) ->
      if not (Hashtbl.mem seen r) then begin
        Hashtbl.add seen r ();
        match find t r with
        | Some n when n.id <> node.id -> out := (n, line) :: !out
        | _ -> ()
      end)
    node.refs;
  List.sort (fun (a, _) (b, _) -> compare a.id b.id) !out
