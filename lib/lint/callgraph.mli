(** Whole-program call graph over the [.cmt] typedtrees dune produces.

    One node per module-level value binding, identified by its wrapped
    display path (["Serve.Reactor.process"]); edges are body mentions —
    resolved [Path.t]s for cross-module references, ident stamps for
    same-unit siblings.  "Mentions" over-approximates "calls" on
    purpose: a function passed to [List.iter] is reached just as surely
    as one applied directly, and the deep analyses want the loud side
    of that bet.

    Determinism contract: cmt files load in sorted path order,
    {!t.nodes} is sorted by id and {!succs} returns sorted, deduped
    adjacency, so every analysis over the graph is byte-identical
    across runs.

    Honest false negatives (see DESIGN.md §15): functor bodies and
    first-class modules are not expanded; calls through records of
    closures lose the target; externals are invisible. *)

type op = {
  op_path : string list;
      (** Qualified path with [Stdlib] dropped and library wrapping
          expanded, e.g. [["Unix"; "gettimeofday"]]. *)
  op_line : int;
}

type node = {
  id : string;  (** ["Serve.Reactor.process"]; shadowed earlier bindings
                    get ["...@L<line>"]. *)
  unit_id : string;  (** ["Serve.Reactor"] *)
  name : string;  (** ["process"] *)
  file : string;  (** Normalized source path, {!Config.normalize}d. *)
  line : int;  (** Definition line. *)
  refs : (string * int) list;
      (** Resolved mention -> first line, in body order; includes both
          in-graph ids and external paths. *)
  ops : op list;  (** Every qualified path the body mentions. *)
  alloc : string option;
      (** The allocator (["Hashtbl.create"], ["ref"], ...) if this
          binding creates toplevel mutable state at module init. *)
  guarded : bool;  (** Body mentions [Mutex.*] or [Atomic.*]. *)
}

type t = {
  nodes : node list;  (** Sorted by [id]. *)
  index : (string, node) Hashtbl.t;
  cmt_files : int;  (** How many [.cmt] files were discovered. *)
  edges : int;  (** References resolving to an in-graph node. *)
  load_notes : (string * string) list;
      (** (cmt path, reason) for every skipped or unreadable file —
          surfaced as [deep_load] warnings so a broken build cannot
          masquerade as a clean analysis. *)
}

val build : ?config:Config.t -> cmt_root:string -> unit -> t
(** Walk [cmt_root] (skipping {!Config.t.skip_dirs} basenames), read
    every [.cmt] implementation, and assemble the graph. *)

val find : t -> string -> node option

val succs : t -> node -> (node * int) list
(** In-graph successors with the line of the first mention, deduped and
    sorted by id. *)

val display_modname : string -> string
(** ["Serve__Reactor"] -> ["Serve.Reactor"]; ["Dune__exe__Main"] ->
    ["Main"].  Exposed for tests. *)
