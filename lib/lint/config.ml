(* Rule scoping: which paths each invariant applies to.  Matching is
   purely textual on normalized relative paths ("lib/obs/metrics.ml"),
   so the checker needs no knowledge of the dune build graph — the
   directory layout *is* the contract (lib/ holds the libraries the
   Pool workers and the serve engine reach; bin/bench/test/examples own
   their stdout and may time themselves).

   The deep (whole-program) pass shares the same normalized-path
   vocabulary: taint sinks and hot-path roots are named by (file
   prefix, binding-name prefix) pairs, so the analyses need no special
   knowledge of library wrapping or module aliases — the node's source
   file decides.  The "deep/" entries re-root the compiled fixture tree
   under bench/lint_fixture/deep (see {!normalize}): they can never
   match a real repo path, and they are what keeps the
   deep-pass-stays-live CI check honest. *)

type t = {
  random_allowed : string list;
      (* Path suffixes where Random.* is the RNG implementation itself. *)
  clock_allowed : string list;
      (* Path suffixes where wall-clock reads are the clock implementation. *)
  deterministic_prefixes : string list;
      (* Hashtbl.iter/fold is an error here (bit-identical MC/serve paths);
         a warning elsewhere. *)
  pool_prefixes : string list;
      (* Unguarded toplevel mutable state and catch-all handlers are
         errors here (code reachable from Numerics.Pool workers).  The
         deep lock-discipline analysis checks every toplevel mutable
         defined here against all its cross-module access sites. *)
  output_prefixes : string list;
      (* print_*/Printf.printf/prerr_* are errors here: stdout belongs to
         the serve codec and the renderers, diagnostics to Obs.Sink. *)
  mli_prefixes : string list; (* Every .ml here must ship a .mli ... *)
  mli_exempt : string list; (* ... except under these prefixes. *)
  skip_dirs : string list;
      (* Directory basenames the file walk never descends into. *)
  deep_sinks : (string * string) list;
      (* (file prefix, binding-name prefix) pairs naming deterministic
         sinks: functions whose output must be a pure function of their
         inputs.  A nondeterminism source reachable from one is a
         deep_taint error.  "" as name prefix covers the whole file. *)
  hot_roots : (string * string list) list;
      (* (file prefix, binding names) naming hot-path roots: code the
         reactor runs per connection, which must never reach a blocking
         syscall (deep_blocking).  [] as the name list covers every
         binding in the file. *)
}

let default =
  {
    random_allowed = [ "lib/numerics/rng.ml" ];
    clock_allowed = [ "lib/obs/monotonic.ml" ];
    deterministic_prefixes = [ "lib/"; "deep/" ];
    pool_prefixes = [ "lib/"; "deep/" ];
    output_prefixes = [ "lib/"; "deep/" ];
    mli_prefixes = [ "lib/" ];
    mli_exempt = [ "lib/experiments/" ];
    skip_dirs = [ "_build"; ".git"; "_opam"; "lint_fixture" ];
    deep_sinks =
      [
        (* Cached response bodies and the keys that address them: any
           nondeterminism here breaks the byte-identity contract. *)
        ("lib/serve/cache.ml", "");
        ("lib/serve/request.ml", "");
        ("lib/serve/response.ml", "");
        ("lib/serve/binary.ml", "");
        (* Monte-Carlo trial bodies: bit-identical at any jobs count. *)
        ("lib/swap/montecarlo.ml", "");
        ("lib/swapgraph/mc.ml", "");
        (* The bench baseline emitter: recorded JSON must be a pure
           function of the measured rows. *)
        ("bench/main.ml", "write_baseline");
        (* Fixture: the cross-module taint case the deep smoke pins. *)
        ("deep/keyer.ml", "");
      ];
    hot_roots =
      [
        (* The reactor's per-connection machinery: everything a shard
           domain runs between two select wakeups. *)
        ( "lib/serve/reactor.ml",
          [
            "process"; "answer_json"; "handle_read"; "try_flush";
            "flush_and_reap"; "detect"; "add_pending"; "finalize_pending";
            "take_clock";
          ] );
        (* The telemetry fold that runs on every finished request. *)
        ("lib/serve/telemetry.ml", [ "finish" ]);
        (* Fixture: the hot-loop case the deep smoke pins. *)
        ("deep/pump.ml", [ "loop" ]);
      ];
  }

(* Strip "./" and "../" runs so prefixes keep matching when the tool is
   pointed at "../lib" (tests run from the build sandbox).  A
   "lint_fixture/" component and everything before it is stripped too:
   fixture trees mirror the repo layout underneath that marker so the
   lib/-scoped rules fire on them, while the repo-wide walk never
   descends into one (it is in [skip_dirs]).  The compiled deep-fixture
   tree keeps its "deep/" root after the strip ("bench/lint_fixture/
   deep/feed.ml" -> "deep/feed.ml"), which is what the "deep/" scope
   entries above match. *)
let normalize path =
  let path = String.map (fun c -> if c = '\\' then '/' else c) path in
  let rec strip p =
    if String.length p >= 2 && String.sub p 0 2 = "./" then
      strip (String.sub p 2 (String.length p - 2))
    else if String.length p >= 3 && String.sub p 0 3 = "../" then
      strip (String.sub p 3 (String.length p - 3))
    else p
  in
  let p = strip path in
  let marker = "lint_fixture/" in
  let mlen = String.length marker in
  let rec find_last from acc =
    if from + mlen > String.length p then acc
    else if String.sub p from mlen = marker then find_last (from + 1) (Some from)
    else find_last (from + 1) acc
  in
  match find_last 0 None with
  | Some i -> String.sub p (i + mlen) (String.length p - i - mlen)
  | None -> p

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let ends_with ~suffix s =
  String.length s >= String.length suffix
  && String.sub s (String.length s - String.length suffix) (String.length suffix)
     = suffix

let in_any prefixes path =
  let path = normalize path in
  List.exists (fun prefix -> starts_with ~prefix path) prefixes

let allowed_file suffixes path =
  let path = normalize path in
  List.exists (fun suffix -> ends_with ~suffix path || path = suffix) suffixes

let sink_of config path name =
  let path = normalize path in
  List.find_opt
    (fun (file_prefix, name_prefix) ->
      starts_with ~prefix:file_prefix path
      && starts_with ~prefix:name_prefix name)
    config.deep_sinks

let is_hot_root config path name =
  let path = normalize path in
  List.exists
    (fun (file_prefix, names) ->
      starts_with ~prefix:file_prefix path
      && (names = [] || List.mem name names))
    config.hot_roots
