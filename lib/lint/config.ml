(* Rule scoping: which paths each invariant applies to.  Matching is
   purely textual on normalized relative paths ("lib/obs/metrics.ml"),
   so the checker needs no knowledge of the dune build graph — the
   directory layout *is* the contract (lib/ holds the libraries the
   Pool workers and the serve engine reach; bin/bench/test/examples own
   their stdout and may time themselves). *)

type t = {
  random_allowed : string list;
      (* Path suffixes where Random.* is the RNG implementation itself. *)
  clock_allowed : string list;
      (* Path suffixes where wall-clock reads are the clock implementation. *)
  deterministic_prefixes : string list;
      (* Hashtbl.iter/fold is an error here (bit-identical MC/serve paths);
         a warning elsewhere. *)
  pool_prefixes : string list;
      (* Unguarded toplevel mutable state and catch-all handlers are
         errors here (code reachable from Numerics.Pool workers). *)
  output_prefixes : string list;
      (* print_*/Printf.printf/prerr_* are errors here: stdout belongs to
         the serve codec and the renderers, diagnostics to Obs.Sink. *)
  mli_prefixes : string list; (* Every .ml here must ship a .mli ... *)
  mli_exempt : string list; (* ... except under these prefixes. *)
  skip_dirs : string list;
      (* Directory basenames the file walk never descends into. *)
}

let default =
  {
    random_allowed = [ "lib/numerics/rng.ml" ];
    clock_allowed = [ "lib/obs/monotonic.ml" ];
    deterministic_prefixes = [ "lib/" ];
    pool_prefixes = [ "lib/" ];
    output_prefixes = [ "lib/" ];
    mli_prefixes = [ "lib/" ];
    mli_exempt = [ "lib/experiments/" ];
    skip_dirs = [ "_build"; ".git"; "_opam"; "lint_fixture" ];
  }

(* Strip "./" and "../" runs so prefixes keep matching when the tool is
   pointed at "../lib" (tests run from the build sandbox).  A
   "lint_fixture/" component and everything before it is stripped too:
   fixture trees mirror the repo layout underneath that marker so the
   lib/-scoped rules fire on them, while the repo-wide walk never
   descends into one (it is in [skip_dirs]). *)
let normalize path =
  let path = String.map (fun c -> if c = '\\' then '/' else c) path in
  let rec strip p =
    if String.length p >= 2 && String.sub p 0 2 = "./" then
      strip (String.sub p 2 (String.length p - 2))
    else if String.length p >= 3 && String.sub p 0 3 = "../" then
      strip (String.sub p 3 (String.length p - 3))
    else p
  in
  let p = strip path in
  let marker = "lint_fixture/" in
  let mlen = String.length marker in
  let rec find_last from acc =
    if from + mlen > String.length p then acc
    else if String.sub p from mlen = marker then find_last (from + 1) (Some from)
    else find_last (from + 1) acc
  in
  match find_last 0 None with
  | Some i -> String.sub p (i + mlen) (String.length p - i - mlen)
  | None -> p

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let ends_with ~suffix s =
  String.length s >= String.length suffix
  && String.sub s (String.length s - String.length suffix) (String.length suffix)
     = suffix

let in_any prefixes path =
  let path = normalize path in
  List.exists (fun prefix -> starts_with ~prefix path) prefixes

let allowed_file suffixes path =
  let path = normalize path in
  List.exists (fun suffix -> ends_with ~suffix path || path = suffix) suffixes
