(** Rule scoping: which paths each invariant applies to.  Matching is
    textual on normalized relative paths, so the directory layout is the
    contract — no knowledge of the dune build graph required. *)

type t = {
  random_allowed : string list;
      (** Path suffixes where [Random.*] is the RNG implementation
          itself (default: [lib/numerics/rng.ml]). *)
  clock_allowed : string list;
      (** Path suffixes where wall-clock reads are the clock
          implementation (default: [lib/obs/monotonic.ml]). *)
  deterministic_prefixes : string list;
      (** [Hashtbl.iter]/[fold] is an error here (bit-identical MC and
          serve paths); a warning elsewhere. *)
  pool_prefixes : string list;
      (** Unguarded toplevel mutable state and catch-all exception
          handlers are errors here (code reachable from
          [Numerics.Pool] workers). *)
  output_prefixes : string list;
      (** [print_*]/[Printf.printf]/[prerr_*] are errors here. *)
  mli_prefixes : string list;  (** Every [.ml] here must ship a [.mli]. *)
  mli_exempt : string list;  (** ... except under these prefixes. *)
  skip_dirs : string list;
      (** Directory basenames the file walk never descends into. *)
}

val default : t
(** The scoping derived from this repository's layout. *)

val normalize : string -> string
(** Forward slashes; leading ["./"] and ["../"] runs stripped; anything
    up to and including a ["lint_fixture/"] component stripped, so
    fixture trees that mirror the repo layout exercise the lib/-scoped
    rules. *)

val in_any : string list -> string -> bool
(** Does the normalized path start with any of the prefixes? *)

val allowed_file : string list -> string -> bool
(** Does the normalized path end with (or equal) any of the suffixes? *)
