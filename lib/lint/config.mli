(** Rule scoping: which paths each invariant applies to.  Matching is
    textual on normalized relative paths, so the directory layout is the
    contract — no knowledge of the dune build graph required.  The deep
    (whole-program) pass shares the same vocabulary: sinks and hot-path
    roots are (file prefix, binding-name prefix) pairs. *)

type t = {
  random_allowed : string list;
      (** Path suffixes where [Random.*] is the RNG implementation
          itself (default: [lib/numerics/rng.ml]). *)
  clock_allowed : string list;
      (** Path suffixes where wall-clock reads are the clock
          implementation (default: [lib/obs/monotonic.ml]). *)
  deterministic_prefixes : string list;
      (** [Hashtbl.iter]/[fold] is an error here (bit-identical MC and
          serve paths); a warning elsewhere. *)
  pool_prefixes : string list;
      (** Unguarded toplevel mutable state and catch-all exception
          handlers are errors here (code reachable from
          [Numerics.Pool] workers).  The deep lock-discipline analysis
          checks every toplevel mutable defined here against all its
          cross-module access sites. *)
  output_prefixes : string list;
      (** [print_*]/[Printf.printf]/[prerr_*] are errors here. *)
  mli_prefixes : string list;  (** Every [.ml] here must ship a [.mli]. *)
  mli_exempt : string list;  (** ... except under these prefixes. *)
  skip_dirs : string list;
      (** Directory basenames the file walk never descends into. *)
  deep_sinks : (string * string) list;
      (** (file prefix, binding-name prefix) pairs naming deterministic
          sinks for the taint analysis; [""] as the name prefix covers
          the whole file. *)
  hot_roots : (string * string list) list;
      (** (file prefix, binding names) naming per-connection hot-path
          roots for the blocking-call analysis; [[]] covers every
          binding in the file. *)
}

val default : t
(** The scoping derived from this repository's layout, plus the
    ["deep/"] entries that re-root the compiled deep-fixture tree. *)

val normalize : string -> string
(** Forward slashes; leading ["./"] and ["../"] runs stripped; anything
    up to and including a ["lint_fixture/"] component stripped, so
    fixture trees that mirror the repo layout exercise the lib/-scoped
    rules. *)

val in_any : string list -> string -> bool
(** Does the normalized path start with any of the prefixes? *)

val allowed_file : string list -> string -> bool
(** Does the normalized path end with (or equal) any of the suffixes? *)

val sink_of : t -> string -> string -> (string * string) option
(** [sink_of config path name] — the sink spec covering binding [name]
    in [path], if any. *)

val is_hot_root : t -> string -> string -> bool
(** [is_hot_root config path name] — is this binding a hot-path root? *)
