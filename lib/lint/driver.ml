(* The whole-tree pass: walk the requested roots, run {!Rules.check} on
   every .ml, add the interface-coverage rule (R5, which needs the file
   set rather than an AST), and render the result as a human report or
   as an htlc-lint/v1 JSON document.  Summary counters go through
   Obs.Metrics so `swap_cli lint --metrics` composes with the rest of
   the observability layer. *)

let m_files = Obs.Metrics.counter "lint.files_scanned"
let m_errors = Obs.Metrics.counter "lint.errors"
let m_warnings = Obs.Metrics.counter "lint.warnings"
let m_suppressed = Obs.Metrics.counter "lint.suppressed"
let m_wall = Obs.Metrics.gauge "lint.wall_s"

type result = {
  findings : Finding.t list;
  files_scanned : int;
  suppressed : int;
  wall_s : float;
}

(* --- file discovery ------------------------------------------------------ *)

let rec walk ~(config : Config.t) acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.fold_left
         (fun acc entry ->
           if List.mem entry config.skip_dirs then acc
           else walk ~config acc (Filename.concat path entry))
         acc
  else if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
  then path :: acc
  else acc

let list_files ~config roots =
  List.sort compare (List.fold_left (walk ~config) [] roots)

(* --- R5: interface coverage ---------------------------------------------- *)

let missing_mli ~(config : Config.t) files =
  let have_mli =
    List.filter_map
      (fun f ->
        if Filename.check_suffix f ".mli" then Some (Config.normalize f)
        else None)
      files
  in
  List.filter_map
    (fun f ->
      if not (Filename.check_suffix f ".ml") then None
      else
        let n = Config.normalize f in
        if
          Config.in_any config.mli_prefixes n
          && (not (Config.in_any config.mli_exempt n))
          && not (List.mem (n ^ "i") have_mli)
        then
          Some
            {
              Finding.file = n;
              line = 1;
              col = 0;
              rule = "missing_mli";
              severity = Finding.Error;
              message =
                "library module without an interface: every lib/ module \
                 ships a .mli so its public surface (and what stays \
                 private) is reviewed, not accidental";
            }
        else None)
    files

(* --- summaries ----------------------------------------------------------- *)

let count severity findings =
  List.length
    (List.filter (fun (f : Finding.t) -> f.severity = severity) findings)

let errors r = count Finding.Error r.findings
let warnings r = count Finding.Warning r.findings
let exit_code r = if errors r > 0 then 1 else 0

let by_rule findings =
  List.sort compare
    (List.fold_left
       (fun acc (f : Finding.t) ->
         match List.assoc_opt f.rule acc with
         | Some n -> (f.rule, n + 1) :: List.remove_assoc f.rule acc
         | None -> (f.rule, 1) :: acc)
       [] findings)

(* --- the run ------------------------------------------------------------- *)

let read_file path = In_channel.with_open_text path In_channel.input_all

let run ?(config = Config.default) ~roots () =
  let t0 = Obs.Monotonic.now_ns () in
  let files = list_files ~config roots in
  let suppressed = ref 0 in
  let findings =
    List.concat_map
      (fun path ->
        if Filename.check_suffix path ".ml" then (
          let fs, n = Rules.check ~config ~path ~source:(read_file path) in
          suppressed := !suppressed + n;
          fs)
        else [])
      files
  in
  let findings =
    List.sort Finding.compare_finding (findings @ missing_mli ~config files)
  in
  let result =
    {
      findings;
      files_scanned = List.length files;
      suppressed = !suppressed;
      wall_s = Obs.Monotonic.elapsed_s ~since_ns:t0;
    }
  in
  Obs.Metrics.add m_files result.files_scanned;
  Obs.Metrics.add m_errors (errors result);
  Obs.Metrics.add m_warnings (warnings result);
  Obs.Metrics.add m_suppressed result.suppressed;
  Obs.Metrics.set_gauge m_wall result.wall_s;
  List.iter
    (fun (rule, n) -> Obs.Metrics.add (Obs.Metrics.counter ("lint.findings." ^ rule)) n)
    (by_rule result.findings);
  result

let check_source ?(config = Config.default) ~path source =
  Rules.check ~config ~path ~source

(* --- rendering ----------------------------------------------------------- *)

let render_text r =
  let b = Buffer.create 1024 in
  List.iter
    (fun f ->
      Buffer.add_string b (Finding.to_line f);
      Buffer.add_char b '\n')
    r.findings;
  Buffer.add_string b
    (Printf.sprintf
       "lint: %d files scanned, %d errors, %d warnings, %d suppressed\n"
       r.files_scanned (errors r) (warnings r) r.suppressed);
  List.iter
    (fun (rule, n) ->
      Buffer.add_string b (Printf.sprintf "  %-20s %d\n" rule n))
    (by_rule r.findings);
  Buffer.contents b

let render_json r =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "{\"schema\":%s,\"type\":\"lint\",\"files_scanned\":%s"
       (Obs.Json.str Finding.schema)
       (Obs.Json.int r.files_scanned));
  Buffer.add_string b
    (Printf.sprintf ",\"wall_s\":%s,\"summary\":{\"errors\":%s"
       (Obs.Json.num r.wall_s)
       (Obs.Json.int (errors r)));
  Buffer.add_string b
    (Printf.sprintf ",\"warnings\":%s,\"suppressed\":%s,\"by_rule\":{"
       (Obs.Json.int (warnings r))
       (Obs.Json.int r.suppressed));
  List.iteri
    (fun i (rule, n) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "%s:%s" (Obs.Json.str rule) (Obs.Json.int n)))
    (by_rule r.findings);
  Buffer.add_string b "}},\"findings\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Finding.to_json f))
    r.findings;
  Buffer.add_string b "]}";
  Buffer.contents b
