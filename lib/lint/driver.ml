(* The whole-tree pass: walk the requested roots, scan every .ml once
   (Rules.scan — findings plus suppression table), add the
   interface-coverage rule (R5, which needs the file set rather than an
   AST), optionally run the deep whole-program pass over the .cmt
   typedtrees (Callgraph + Taint + Reach), and render the result as a
   human report or as an htlc-lint/v1 / v2 JSON document.  Summary
   counters go through Obs.Metrics so `swap_cli lint --metrics`
   composes with the rest of the observability layer.

   The suppression tables collected by the syntactic scan are the
   single source of truth for the deep pass too: deep findings anchor
   at real source lines (the taint sink's definition, the blocking
   call, the unguarded access), so the same line-span match applies,
   and taint sources are neutralised through {!Rules.covers} against
   the same tables — one parse per file per run, whatever the mode. *)

let m_files = Obs.Metrics.counter "lint.files_scanned"
let m_errors = Obs.Metrics.counter "lint.errors"
let m_warnings = Obs.Metrics.counter "lint.warnings"
let m_suppressed = Obs.Metrics.counter "lint.suppressed"
let m_wall = Obs.Metrics.gauge "lint.wall_s"
let m_deep_cmts = Obs.Metrics.counter "lint.deep.cmt_files"
let m_deep_nodes = Obs.Metrics.counter "lint.deep.nodes"
let m_deep_edges = Obs.Metrics.counter "lint.deep.edges"
let m_deep_wall = Obs.Metrics.gauge "lint.deep.wall_s"

type deep_summary = {
  cmt_files : int;
  nodes : int;
  edges : int;
  deep_wall_s : float;
}

type result = {
  findings : Finding.t list;
  files_scanned : int;
  suppressed : int;
  wall_s : float;
  deep : deep_summary option;
}

(* --- file discovery ------------------------------------------------------ *)

let rec walk ~(config : Config.t) acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.fold_left
         (fun acc entry ->
           if List.mem entry config.skip_dirs then acc
           else walk ~config acc (Filename.concat path entry))
         acc
  else if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
  then path :: acc
  else acc

let list_files ~config roots =
  List.sort compare (List.fold_left (walk ~config) [] roots)

(* --- R5: interface coverage ---------------------------------------------- *)

let missing_mli ~(config : Config.t) files =
  let have_mli =
    List.filter_map
      (fun f ->
        if Filename.check_suffix f ".mli" then Some (Config.normalize f)
        else None)
      files
  in
  List.filter_map
    (fun f ->
      if not (Filename.check_suffix f ".ml") then None
      else
        let n = Config.normalize f in
        if
          Config.in_any config.mli_prefixes n
          && (not (Config.in_any config.mli_exempt n))
          && not (List.mem (n ^ "i") have_mli)
        then
          Some
            {
              Finding.file = n;
              line = 1;
              col = 0;
              rule = "missing_mli";
              severity = Finding.Error;
              message =
                "library module without an interface: every lib/ module \
                 ships a .mli so its public surface (and what stays \
                 private) is reviewed, not accidental";
              chain = [];
            }
        else None)
    files

(* --- summaries ----------------------------------------------------------- *)

let count severity findings =
  List.length
    (List.filter (fun (f : Finding.t) -> f.severity = severity) findings)

let errors r = count Finding.Error r.findings
let warnings r = count Finding.Warning r.findings
let exit_code r = if errors r > 0 then 1 else 0

let by_rule findings =
  List.sort compare
    (List.fold_left
       (fun acc (f : Finding.t) ->
         match List.assoc_opt f.rule acc with
         | Some n -> (f.rule, n + 1) :: List.remove_assoc f.rule acc
         | None -> (f.rule, 1) :: acc)
       [] findings)

(* --- the run ------------------------------------------------------------- *)

let read_file path = In_channel.with_open_text path In_channel.input_all

let default_cmt_root () =
  if Sys.file_exists "_build/default" && Sys.is_directory "_build/default"
  then "_build/default"
  else "."

(* The deep pass proper: build the graph, run the three analyses, drop
   findings a justified allowance covers (counting them suppressed),
   and surface unreadable cmts as deep_load warnings so a broken build
   cannot masquerade as a clean analysis. *)
let run_deep ~config ~cmt_root ~tables ~suppressed =
  let t0 = Obs.Monotonic.now_ns () in
  let graph = Callgraph.build ~config ~cmt_root () in
  let covers ~file ~line ~rule =
    match Hashtbl.find_opt tables file with
    | None -> false
    | Some supps -> Rules.covers supps ~line ~rule
  in
  let raw =
    Taint.taint_findings ~config ~covers graph
    @ Reach.hot_findings ~config graph
    @ Taint.lock_findings ~config graph
  in
  let kept = List.filter (fun (f : Finding.t) -> not (covers ~file:f.file ~line:f.line ~rule:f.rule)) raw in
  suppressed := !suppressed + (List.length raw - List.length kept);
  let load =
    List.map
      (fun (cmt_path, reason) ->
        {
          Finding.file = Config.normalize cmt_path;
          line = 1;
          col = 0;
          rule = "deep_load";
          severity = Finding.Warning;
          message =
            Printf.sprintf
              "cmt not analysed (%s); the deep pass is blind to this unit"
              reason;
          chain = [];
        })
      graph.load_notes
  in
  let summary =
    {
      cmt_files = graph.cmt_files;
      nodes = List.length graph.nodes;
      edges = graph.edges;
      deep_wall_s = Obs.Monotonic.elapsed_s ~since_ns:t0;
    }
  in
  (kept @ load, summary)

let run ?(config = Config.default) ?(deep = false) ?cmt_root ~roots () =
  let t0 = Obs.Monotonic.now_ns () in
  let files = list_files ~config roots in
  let suppressed = ref 0 in
  (* One parse per file: syntactic findings applied against the file's
     own suppression table, the table kept for the deep pass. *)
  let tables = Hashtbl.create 64 in
  let scanned =
    List.filter_map
      (fun path ->
        if not (Filename.check_suffix path ".ml") then None
        else begin
          let raw, supps =
            Rules.scan ~config ~path ~source:(read_file path)
          in
          let kept, n = Rules.apply raw supps in
          suppressed := !suppressed + n;
          Hashtbl.replace tables (Config.normalize path) supps;
          Some (path, supps, kept)
        end)
      files
  in
  let syntactic = List.concat_map (fun (_, _, kept) -> kept) scanned in
  let deep_findings, deep_summary =
    if deep then begin
      let cmt_root =
        match cmt_root with Some r -> r | None -> default_cmt_root ()
      in
      let fs, summary = run_deep ~config ~cmt_root ~tables ~suppressed in
      (fs, Some summary)
    end
    else ([], None)
  in
  (* Staleness only after every consumer of the tables has run. *)
  let unused =
    List.concat_map
      (fun (path, supps, _) -> Rules.unused_report ~path ~deep_ran:deep supps)
      scanned
  in
  let findings =
    List.sort Finding.compare_finding
      (syntactic @ deep_findings @ unused @ missing_mli ~config files)
  in
  let result =
    {
      findings;
      files_scanned = List.length files;
      suppressed = !suppressed;
      wall_s = Obs.Monotonic.elapsed_s ~since_ns:t0;
      deep = deep_summary;
    }
  in
  Obs.Metrics.add m_files result.files_scanned;
  Obs.Metrics.add m_errors (errors result);
  Obs.Metrics.add m_warnings (warnings result);
  Obs.Metrics.add m_suppressed result.suppressed;
  Obs.Metrics.set_gauge m_wall result.wall_s;
  Option.iter
    (fun d ->
      Obs.Metrics.add m_deep_cmts d.cmt_files;
      Obs.Metrics.add m_deep_nodes d.nodes;
      Obs.Metrics.add m_deep_edges d.edges;
      Obs.Metrics.set_gauge m_deep_wall d.deep_wall_s)
    deep_summary;
  List.iter
    (fun (rule, n) -> Obs.Metrics.add (Obs.Metrics.counter ("lint.findings." ^ rule)) n)
    (by_rule result.findings);
  result

let check_source ?(config = Config.default) ~path source =
  Rules.check ~config ~path ~source

(* --- rendering ----------------------------------------------------------- *)

let render_text r =
  let b = Buffer.create 1024 in
  List.iter
    (fun (f : Finding.t) ->
      Buffer.add_string b (Finding.to_line f);
      Buffer.add_char b '\n';
      if f.chain <> [] then begin
        Buffer.add_string b "    via ";
        Buffer.add_string b (Finding.chain_to_string f.chain);
        Buffer.add_char b '\n'
      end)
    r.findings;
  Buffer.add_string b
    (Printf.sprintf
       "lint: %d files scanned, %d errors, %d warnings, %d suppressed\n"
       r.files_scanned (errors r) (warnings r) r.suppressed);
  Option.iter
    (fun d ->
      Buffer.add_string b
        (Printf.sprintf
           "deep: %d cmt files, %d nodes, %d edges, %.3fs\n" d.cmt_files
           d.nodes d.edges d.deep_wall_s))
    r.deep;
  List.iter
    (fun (rule, n) ->
      Buffer.add_string b (Printf.sprintf "  %-20s %d\n" rule n))
    (by_rule r.findings);
  Buffer.contents b

let render_json r =
  let b = Buffer.create 4096 in
  let schema, finding_to_json =
    match r.deep with
    | None -> (Finding.schema, Finding.to_json)
    | Some _ -> (Finding.schema_v2, Finding.to_json_v2)
  in
  Buffer.add_string b
    (Printf.sprintf "{\"schema\":%s,\"type\":\"lint\",\"files_scanned\":%s"
       (Obs.Json.str schema)
       (Obs.Json.int r.files_scanned));
  Buffer.add_string b
    (Printf.sprintf ",\"wall_s\":%s" (Obs.Json.num r.wall_s));
  Option.iter
    (fun d ->
      Buffer.add_string b
        (Printf.sprintf
           ",\"deep\":{\"cmt_files\":%s,\"nodes\":%s,\"edges\":%s,\"wall_s\":%s}"
           (Obs.Json.int d.cmt_files) (Obs.Json.int d.nodes)
           (Obs.Json.int d.edges)
           (Obs.Json.num d.deep_wall_s)))
    r.deep;
  Buffer.add_string b
    (Printf.sprintf ",\"summary\":{\"errors\":%s" (Obs.Json.int (errors r)));
  Buffer.add_string b
    (Printf.sprintf ",\"warnings\":%s,\"suppressed\":%s,\"by_rule\":{"
       (Obs.Json.int (warnings r))
       (Obs.Json.int r.suppressed));
  List.iteri
    (fun i (rule, n) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "%s:%s" (Obs.Json.str rule) (Obs.Json.int n)))
    (by_rule r.findings);
  Buffer.add_string b "}},\"findings\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (finding_to_json f))
    r.findings;
  Buffer.add_string b "]}";
  Buffer.contents b
