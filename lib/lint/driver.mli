(** The whole-tree lint pass: file discovery, per-file rules (one
    {!Rules.scan} parse per file), interface coverage (R5), the
    optional deep whole-program pass ({!Callgraph} / {!Taint} /
    {!Reach} over [.cmt] typedtrees), and the text / JSON renderings.
    Summary counters ([lint.*], [lint.deep.*]) are recorded through
    [Obs.Metrics]. *)

type deep_summary = {
  cmt_files : int;  (** [.cmt] files discovered under the cmt root. *)
  nodes : int;  (** Module-level bindings in the call graph. *)
  edges : int;  (** In-graph references. *)
  deep_wall_s : float;
}

type result = {
  findings : Finding.t list;  (** Sorted by file, line, column, rule. *)
  files_scanned : int;  (** [.ml] and [.mli] files visited. *)
  suppressed : int;  (** Findings removed by [\[@lint.allow\]]. *)
  wall_s : float;
  deep : deep_summary option;  (** Present iff the deep pass ran. *)
}

val run :
  ?config:Config.t ->
  ?deep:bool ->
  ?cmt_root:string ->
  roots:string list ->
  unit ->
  result
(** Walk [roots] (skipping [config.skip_dirs] by basename), check every
    [.ml], and require interfaces where the config demands them.  With
    [~deep:true], also build the whole-program call graph from the
    [.cmt] files under [cmt_root] (default: [_build/default] when it
    exists, else [.]) and run the taint, hot-path, and lock-discipline
    analyses; unreadable cmts surface as [deep_load] warnings.  The
    suppression tables from the syntactic scan apply to deep findings
    too — each source file is parsed exactly once per run. *)

val check_source :
  ?config:Config.t -> path:string -> string -> Finding.t list * int
(** Check one in-memory source (tests; no file I/O).  R5 and the deep
    pass do not apply here — they need the file set / the build. *)

val errors : result -> int
val warnings : result -> int

val exit_code : result -> int
(** [1] when any error-severity finding survived, [0] otherwise. *)

val render_text : result -> string
(** One [file:line:col: \[severity\] rule: message] line per finding —
    followed by an indented [via sym (file:line) -> ...] chain line for
    deep findings — then a summary with per-rule counts. *)

val render_json : result -> string
(** Without the deep pass: the [htlc-lint/v1] document, byte-identical
    to previous releases (one line, fixed field order):
    [{"schema":"htlc-lint/v1","type":"lint","files_scanned":..,
      "wall_s":..,"summary":{"errors":..,"warnings":..,"suppressed":..,
      "by_rule":{..}},"findings":[..]}].
    With it: [htlc-lint/v2] — the same shape plus a top-level
    ["deep":{"cmt_files":..,"nodes":..,"edges":..,"wall_s":..}] after
    [wall_s], and a ["chain":[{"symbol":..,"file":..,"line":..},..]]
    array on every finding (empty for syntactic findings). *)
