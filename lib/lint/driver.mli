(** The whole-tree lint pass: file discovery, per-file rules
    ({!Rules.check}), interface coverage (R5), and the text /
    [htlc-lint/v1] JSON renderings.  Summary counters ([lint.*]) are
    recorded through [Obs.Metrics]. *)

type result = {
  findings : Finding.t list;  (** Sorted by file, line, column, rule. *)
  files_scanned : int;  (** [.ml] and [.mli] files visited. *)
  suppressed : int;  (** Findings removed by [\[@lint.allow\]]. *)
  wall_s : float;
}

val run : ?config:Config.t -> roots:string list -> unit -> result
(** Walk [roots] (skipping [config.skip_dirs] by basename), check every
    [.ml], and require interfaces where the config demands them. *)

val check_source :
  ?config:Config.t -> path:string -> string -> Finding.t list * int
(** Check one in-memory source (tests; no file I/O).  R5 does not apply
    here — it needs the file set. *)

val errors : result -> int
val warnings : result -> int

val exit_code : result -> int
(** [1] when any error-severity finding survived, [0] otherwise. *)

val render_text : result -> string
(** One [file:line:col: \[severity\] rule: message] line per finding,
    then a summary with per-rule counts. *)

val render_json : result -> string
(** The [htlc-lint/v1] document (one line, fixed field order):
    [{"schema":"htlc-lint/v1","type":"lint","files_scanned":..,
      "wall_s":..,"summary":{"errors":..,"warnings":..,"suppressed":..,
      "by_rule":{..}},"findings":[..]}]. *)
