(* A single lint finding: where, which rule, how bad, and why.  The
   rule ids here are the vocabulary shared by the rule implementations,
   the [@lint.allow] suppression payloads, the text report, and the
   htlc-lint/v1 / htlc-lint/v2 JSON documents (pinned by
   bench/validate_lint.ml).

   v2 (the --deep pass) extends every finding with a [chain]: the
   interprocedural call path that justifies the finding, sink-to-source
   for taint, hot-root-to-blocking-call for reachability, access-site-
   to-definition for lock discipline.  Syntactic findings carry an
   empty chain. *)

type severity = Error | Warning

type frame = { sym : string; file : string; line : int }

type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  severity : severity;
  message : string;
  chain : frame list;
}

let schema = "htlc-lint/v1"
let schema_v2 = "htlc-lint/v2"

(* Rules a [@lint.allow] annotation may name.  The meta rules
   (bad_suppression, unused_suppression, syntax failures, and cmt load
   notes) are not suppressible: an annotation that is itself broken
   cannot vouch for itself.

   The deep vocabulary: [nondet_domain] marks a Domain.self read as a
   benign nondeterminism source at its definition site (there is no
   syntactic producer for it — it only neutralises taint), and the
   [deep_*] rules suppress whole interprocedural findings at their
   anchor (the taint sink, the blocking call, the unguarded access). *)
let deep_rules = [ "deep_taint"; "deep_blocking"; "deep_lock" ]

(* Suppressions for these rules are only checked for staleness when the
   deep pass actually ran — a syntactic-only run cannot tell whether
   they are earning their keep. *)
let deep_only_rules = "nondet_domain" :: deep_rules

let suppressible_rules =
  [
    "nondet_random"; "nondet_clock"; "hashtbl_order"; "shared_state";
    "catch_all"; "output"; "missing_mli";
  ]
  @ deep_only_rules

let all_rules =
  suppressible_rules
  @ [ "syntax"; "bad_suppression"; "unused_suppression"; "deep_load" ]

let severity_to_string = function Error -> "error" | Warning -> "warning"

let compare_finding a b =
  let c = compare a.file b.file in
  if c <> 0 then c
  else
    let c = compare a.line b.line in
    if c <> 0 then c
    else
      let c = compare a.col b.col in
      if c <> 0 then c
      else
        let c = compare a.rule b.rule in
        if c <> 0 then c else compare a.message b.message

let to_line f =
  Printf.sprintf "%s:%d:%d: [%s] %s: %s" f.file f.line f.col
    (severity_to_string f.severity)
    f.rule f.message

let frame_to_string fr = Printf.sprintf "%s (%s:%d)" fr.sym fr.file fr.line

let chain_to_string chain =
  String.concat " -> " (List.map frame_to_string chain)

let to_json f =
  Printf.sprintf
    "{\"file\":%s,\"line\":%s,\"col\":%s,\"rule\":%s,\"severity\":%s,\"message\":%s}"
    (Obs.Json.str f.file) (Obs.Json.int f.line) (Obs.Json.int f.col)
    (Obs.Json.str f.rule)
    (Obs.Json.str (severity_to_string f.severity))
    (Obs.Json.str f.message)

let frame_to_json fr =
  Printf.sprintf "{\"symbol\":%s,\"file\":%s,\"line\":%s}" (Obs.Json.str fr.sym)
    (Obs.Json.str fr.file) (Obs.Json.int fr.line)

let to_json_v2 f =
  Printf.sprintf
    "{\"file\":%s,\"line\":%s,\"col\":%s,\"rule\":%s,\"severity\":%s,\"message\":%s,\"chain\":[%s]}"
    (Obs.Json.str f.file) (Obs.Json.int f.line) (Obs.Json.int f.col)
    (Obs.Json.str f.rule)
    (Obs.Json.str (severity_to_string f.severity))
    (Obs.Json.str f.message)
    (String.concat "," (List.map frame_to_json f.chain))
