(* A single lint finding: where, which rule, how bad, and why.  The
   rule ids here are the vocabulary shared by the rule implementations,
   the [@lint.allow] suppression payloads, the text report, and the
   htlc-lint/v1 JSON document (pinned by bench/validate_lint.ml). *)

type severity = Error | Warning

type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  severity : severity;
  message : string;
}

let schema = "htlc-lint/v1"

(* Rules a [@lint.allow] annotation may name.  The meta rules
   (bad_suppression, unused_suppression, and syntax failures) are not
   suppressible: an annotation that is itself broken cannot vouch for
   itself. *)
let suppressible_rules =
  [
    "nondet_random"; "nondet_clock"; "hashtbl_order"; "shared_state";
    "catch_all"; "output"; "missing_mli";
  ]

let all_rules =
  suppressible_rules @ [ "syntax"; "bad_suppression"; "unused_suppression" ]

let severity_to_string = function Error -> "error" | Warning -> "warning"

let compare_finding a b =
  let c = compare a.file b.file in
  if c <> 0 then c
  else
    let c = compare a.line b.line in
    if c <> 0 then c
    else
      let c = compare a.col b.col in
      if c <> 0 then c else compare a.rule b.rule

let to_line f =
  Printf.sprintf "%s:%d:%d: [%s] %s: %s" f.file f.line f.col
    (severity_to_string f.severity)
    f.rule f.message

let to_json f =
  Printf.sprintf
    "{\"file\":%s,\"line\":%s,\"col\":%s,\"rule\":%s,\"severity\":%s,\"message\":%s}"
    (Obs.Json.str f.file) (Obs.Json.int f.line) (Obs.Json.int f.col)
    (Obs.Json.str f.rule)
    (Obs.Json.str (severity_to_string f.severity))
    (Obs.Json.str f.message)
