(** A single lint finding and the rule-id vocabulary shared by the rule
    implementations, the [\[@lint.allow\]] suppression payloads, and the
    [htlc-lint/v1] exports. *)

type severity = Error | Warning

type t = {
  file : string;
  line : int;  (** 1-based. *)
  col : int;  (** 0-based, matching compiler diagnostics. *)
  rule : string;  (** Stable rule id, e.g. ["nondet_random"]. *)
  severity : severity;
  message : string;
}

val schema : string
(** ["htlc-lint/v1"] — stamped into every exported document. *)

val suppressible_rules : string list
(** Rule ids a [\[@lint.allow\]] annotation may name. *)

val all_rules : string list
(** Every rule id the tool can emit (suppressible rules plus the meta
    rules [syntax], [bad_suppression], [unused_suppression]). *)

val severity_to_string : severity -> string

val compare_finding : t -> t -> int
(** Order by file, then line, then column, then rule. *)

val to_line : t -> string
(** One human-readable report line:
    [file:line:col: \[severity\] rule: message]. *)

val to_json : t -> string
(** One JSON object (no newline) with fixed field order
    [file,line,col,rule,severity,message]. *)
