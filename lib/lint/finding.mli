(** A single lint finding and the rule-id vocabulary shared by the rule
    implementations, the [\[@lint.allow\]] suppression payloads, and the
    [htlc-lint/v1] / [htlc-lint/v2] exports. *)

type severity = Error | Warning

type frame = { sym : string; file : string; line : int }
(** One step of an interprocedural call chain: a symbol (the qualified
    binding id, e.g. ["Serve.Cache.find"], or the raw primitive at the
    end of a taint chain, e.g. ["Unix.gettimeofday"]) and where it
    lives. *)

type t = {
  file : string;
  line : int;  (** 1-based. *)
  col : int;  (** 0-based, matching compiler diagnostics. *)
  rule : string;  (** Stable rule id, e.g. ["nondet_random"]. *)
  severity : severity;
  message : string;
  chain : frame list;
      (** The justifying call path for deep (interprocedural) findings:
          sink-to-source for [deep_taint], root-to-blocking-call for
          [deep_blocking], access-site-to-definition for [deep_lock].
          Empty for syntactic findings. *)
}

val schema : string
(** ["htlc-lint/v1"] — stamped into syntactic-only documents. *)

val schema_v2 : string
(** ["htlc-lint/v2"] — the deep-pass document: v1 plus a ["deep"]
    summary section and a ["chain"] array on every finding. *)

val deep_rules : string list
(** The interprocedural finding rules: [deep_taint], [deep_blocking],
    [deep_lock]. *)

val deep_only_rules : string list
(** [deep_rules] plus [nondet_domain] (a source-site-only marker):
    suppressions naming these are exempt from the staleness check when
    the deep pass did not run. *)

val suppressible_rules : string list
(** Rule ids a [\[@lint.allow\]] annotation may name. *)

val all_rules : string list
(** Every rule id the tool can emit (suppressible rules plus the meta
    rules [syntax], [bad_suppression], [unused_suppression], and
    [deep_load]). *)

val severity_to_string : severity -> string

val compare_finding : t -> t -> int
(** Order by file, then line, then column, then rule, then message —
    a total, deterministic order over any finding set the tool emits. *)

val to_line : t -> string
(** One human-readable report line:
    [file:line:col: \[severity\] rule: message]. *)

val chain_to_string : frame list -> string
(** [sym (file:line) -> sym (file:line) -> ...] — the rendering used
    inside deep finding messages. *)

val to_json : t -> string
(** One v1 JSON object (no newline) with fixed field order
    [file,line,col,rule,severity,message].  The chain is dropped — v1
    consumers never see it. *)

val to_json_v2 : t -> string
(** The v2 object: v1's fields plus ["chain"] (always present, possibly
    empty) where each frame is [{"symbol":..,"file":..,"line":..}]. *)
