(* Deterministic reachability over the call graph, and the hot-path
   blocking analysis built on it.

   All traversals are plain breadth-first searches over
   [Callgraph.succs] (sorted, deduped adjacency) seeded from sorted
   root lists, so the predecessor tree — and therefore every chain we
   print — is a pure function of the graph.  BFS also means chains are
   hop-shortest: the finding shows the most direct route from a root to
   the offending call, not whichever route a DFS stumbled on first.

   The blocking rule: nothing reachable from a per-connection hot-path
   root (Config.hot_roots — the reactor's connection machinery and the
   telemetry fold) may call a syscall that can park the shard domain.
   One stalled connection must cost one connection, never the event
   loop.  Unix.read/write on the connection fds are deliberately NOT in
   the blocking set: the reactor runs them on nonblocking fds, and a
   path-based analysis cannot see fd flags — that false-negative class
   is documented in DESIGN.md §15 rather than papered over with noisy
   guesses. *)

(* Syscalls that can park the calling domain indefinitely. *)
let blocking_ops =
  [
    ([ "Unix"; "sleep" ], "blocks the domain for whole seconds");
    ([ "Unix"; "sleepf" ], "blocks the domain");
    ([ "Thread"; "delay" ], "blocks the thread");
    ([ "Condition"; "wait" ], "parks the domain until signalled");
    ([ "Unix"; "system" ], "forks and waits for a child process");
    ([ "Unix"; "wait" ], "waits for a child process");
    ([ "Unix"; "waitpid" ], "waits for a child process");
    ([ "Unix"; "select" ], "blocks until fd activity or timeout");
    ([ "Unix"; "connect" ], "blocks during the TCP handshake");
    ([ "Domain"; "join" ], "blocks until the domain terminates");
  ]

(* BFS from [roots]; returns visited id -> predecessor id (None for a
   root).  Roots are visited in the order given — pass them sorted. *)
let reachable graph roots =
  let preds = Hashtbl.create 256 in
  let q = Queue.create () in
  List.iter
    (fun (n : Callgraph.node) ->
      if not (Hashtbl.mem preds n.id) then begin
        Hashtbl.replace preds n.id None;
        Queue.add n q
      end)
    roots;
  while not (Queue.is_empty q) do
    let n = Queue.pop q in
    List.iter
      (fun ((s : Callgraph.node), _line) ->
        if not (Hashtbl.mem preds s.id) then begin
          Hashtbl.replace preds s.id (Some n.id);
          Queue.add s q
        end)
      (Callgraph.succs graph n)
  done;
  preds

(* Root-first path ending at [id], read off the predecessor tree. *)
let path_of preds graph id =
  let rec climb id acc =
    match Callgraph.find graph id with
    | None -> acc
    | Some n -> (
      match Hashtbl.find_opt preds id with
      | Some (Some pred) -> climb pred (n :: acc)
      | Some None | None -> n :: acc)
  in
  climb id []

(* Ids from which a node satisfying [targets] is reachable (forward
   edges) — i.e. BFS over the reversed graph seeded from the targets. *)
let reverse_reachable graph ~targets =
  let rev = Hashtbl.create 256 in
  List.iter
    (fun (n : Callgraph.node) ->
      List.iter
        (fun ((s : Callgraph.node), _) ->
          Hashtbl.replace rev s.id
            (n.id :: (Option.value ~default:[] (Hashtbl.find_opt rev s.id))))
        (Callgraph.succs graph n))
    graph.Callgraph.nodes;
  let seen = Hashtbl.create 256 in
  let q = Queue.create () in
  List.iter
    (fun (n : Callgraph.node) ->
      if targets n.id && not (Hashtbl.mem seen n.id) then begin
        Hashtbl.replace seen n.id ();
        Queue.add n.id q
      end)
    graph.Callgraph.nodes;
  while not (Queue.is_empty q) do
    let id = Queue.pop q in
    List.iter
      (fun caller ->
        if not (Hashtbl.mem seen caller) then begin
          Hashtbl.replace seen caller ();
          Queue.add caller q
        end)
      (List.sort compare
         (Option.value ~default:[] (Hashtbl.find_opt rev id)))
  done;
  seen

(* Shortest forward path from [src] to the first node satisfying
   [dest], as a src-first node list. *)
let shortest_to graph ~(src : Callgraph.node) ~dest =
  if dest src.id then Some [ src ]
  else begin
    let preds = Hashtbl.create 64 in
    Hashtbl.replace preds src.id None;
    let q = Queue.create () in
    Queue.add src q;
    let found = ref None in
    while !found = None && not (Queue.is_empty q) do
      let n = Queue.pop q in
      List.iter
        (fun ((s : Callgraph.node), _) ->
          if !found = None && not (Hashtbl.mem preds s.id) then begin
            Hashtbl.replace preds s.id (Some n.id);
            if dest s.id then found := Some s.id else Queue.add s q
          end)
        (Callgraph.succs graph n)
    done;
    Option.map (fun id -> path_of preds graph id) !found
  end

let frame_of (n : Callgraph.node) =
  { Finding.sym = n.id; file = n.file; line = n.line }

let chain_of_path path = List.map frame_of path

(* --- the hot-path rule --------------------------------------------------- *)

(* For every hot root (sorted by id), walk what it reaches; any
   blocking op found is an error anchored at the call site, carrying
   the root-to-callee chain plus the call itself as the final frame.
   When several roots reach the same call site, the first root in
   sorted order claims it — one finding per site, deterministically. *)
let hot_findings ~(config : Config.t) graph =
  let roots =
    List.filter
      (fun (n : Callgraph.node) -> Config.is_hot_root config n.file n.name)
      graph.Callgraph.nodes
  in
  let claimed = Hashtbl.create 16 in
  let findings = ref [] in
  List.iter
    (fun (root : Callgraph.node) ->
      let preds = reachable graph [ root ] in
      List.iter
        (fun (node : Callgraph.node) ->
          if Hashtbl.mem preds node.id then
            List.iter
              (fun (op : Callgraph.op) ->
                match List.assoc_opt op.op_path blocking_ops with
                | None -> ()
                | Some why ->
                  let key = (node.id, op.op_line, op.op_path) in
                  if not (Hashtbl.mem claimed key) then begin
                    Hashtbl.replace claimed key root.id;
                    let op_name = String.concat "." op.op_path in
                    let chain =
                      chain_of_path (path_of preds graph node.id)
                      @ [
                          {
                            Finding.sym = op_name;
                            file = node.file;
                            line = op.op_line;
                          };
                        ]
                    in
                    findings :=
                      {
                        Finding.file = node.file;
                        line = op.op_line;
                        col = 0;
                        rule = "deep_blocking";
                        severity = Finding.Error;
                        message =
                          Printf.sprintf
                            "%s %s, but it is reachable from the \
                             per-connection hot path rooted at %s; one \
                             stalled call here parks the whole shard"
                            op_name why root.id;
                        chain;
                      }
                      :: !findings
                  end)
              node.ops)
        graph.Callgraph.nodes)
    roots;
  List.sort Finding.compare_finding !findings
