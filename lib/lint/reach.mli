(** Deterministic reachability over the call graph, and the hot-path
    blocking rule ([deep_blocking]) built on it.

    Every traversal is a breadth-first search over the sorted adjacency
    {!Callgraph.succs} seeded from sorted roots, so predecessor trees —
    and the chains printed in findings — are pure functions of the
    graph, and BFS makes them hop-shortest. *)

val blocking_ops : (string list * string) list
(** Syscalls that can park the calling domain, with the reason used in
    messages.  [Unix.read]/[write] are deliberately absent: the reactor
    runs them on nonblocking fds, which a path analysis cannot see
    (documented false-negative class, DESIGN.md §15). *)

val reachable :
  Callgraph.t -> Callgraph.node list -> (string, string option) Hashtbl.t
(** BFS from the given roots (pass them sorted); visited id ->
    predecessor id, [None] for a root. *)

val path_of :
  (string, string option) Hashtbl.t -> Callgraph.t -> string ->
  Callgraph.node list
(** Root-first path ending at the given id, read off a {!reachable}
    predecessor tree. *)

val reverse_reachable :
  Callgraph.t -> targets:(string -> bool) -> (string, unit) Hashtbl.t
(** The ids from which some node satisfying [targets] is reachable
    along forward (caller -> callee) edges. *)

val shortest_to :
  Callgraph.t -> src:Callgraph.node -> dest:(string -> bool) ->
  Callgraph.node list option
(** Hop-shortest forward path from [src] to the first node satisfying
    [dest], src-first; [Some [src]] if [src] itself satisfies it. *)

val frame_of : Callgraph.node -> Finding.frame
val chain_of_path : Callgraph.node list -> Finding.frame list

val hot_findings : config:Config.t -> Callgraph.t -> Finding.t list
(** The [deep_blocking] analysis: for every {!Config.t.hot_roots}
    binding, flag each reachable blocking op, anchored at the call site
    and carrying the root-to-call chain.  When several roots reach the
    same site, the first in sorted order claims it — one finding per
    site.  Result is sorted. *)
