(* The rule implementations: one parse of the file with the compiler's
   own frontend (compiler-libs), then a single Ast_iterator pass for the
   expression-level rules plus a shallow structure walk for the
   toplevel-state rule.

   R1  nondet_random / nondet_clock / hashtbl_order — nondeterminism
       sources: the global Random outside Numerics.Rng, wall-clock
       reads outside Obs.Monotonic, and hash-order iteration on the
       deterministic MC/serve paths.
   R2  shared_state — refs/Hashtbls/queues allocated at module toplevel
       in Pool-reachable libraries, unless the module also uses a
       Mutex/Atomic (the guard convention) or carries a justified
       suppression.
   R3  catch_all — `with _ ->` handlers that swallow exceptions (the
       Pool propagation contract forwards the lowest-chunk exception;
       swallowing breaks it silently).
   R4  output — print_*/Printf.printf/prerr_* in libraries: stdout
       belongs to the serve codec and the renderers, diagnostics to
       Obs.Sink.
   R5  missing_mli lives in Driver (it needs the file set, not an AST).

   Suppressions: [@lint.allow rule "justification"] on an expression,
   [@@lint.allow ...] on a definition, [@@@lint.allow ...] floating at
   the top of a module (whole file).  The justification string is
   mandatory and must be non-blank; a malformed annotation is itself an
   error (bad_suppression), and an annotation that matches no finding
   is a warning (unused_suppression) so stale allowances cannot
   accumulate.

   The file is parsed exactly once: [scan] returns the raw findings
   *and* the collected suppression table, and {!Driver} owns applying
   the table — the deep (interprocedural) pass consumes the same table
   for its own findings and for neutralising taint sources, so a
   [--deep] run never re-parses a source the syntactic pass already
   walked. *)

open Parsetree

type suppression = {
  s_rule : string;
  s_line : int; (* the annotation's own line, for unused reports *)
  s_col : int;
  lo : int;
  hi : int; (* line span the suppression covers *)
  mutable used : bool;
}

let loc_line (loc : Location.t) = loc.loc_start.pos_lnum
let loc_col (loc : Location.t) = loc.loc_start.pos_cnum - loc.loc_start.pos_bol

(* Drop the Stdlib prefix so `Stdlib.Random.int` and `Random.int` match
   the same rule. *)
let ident_path (lid : Longident.t) =
  match Longident.flatten lid with "Stdlib" :: rest -> rest | l -> l

let stdout_idents =
  [
    "print_string"; "print_endline"; "print_newline"; "print_char";
    "print_int"; "print_float"; "print_bytes"; "prerr_string";
    "prerr_endline"; "prerr_newline"; "prerr_char"; "prerr_int";
    "prerr_float"; "prerr_bytes";
  ]

(* Toplevel allocations that create shared mutable state.  Indirect
   allocation through a helper (`let cache = make_cache ()`) is not
   caught — this is a syntactic lint, and the module-level Mutex/Atomic
   guard check below is what actually carries the contract. *)
let alloc_idents =
  [
    ([ "ref" ], "ref");
    ([ "Hashtbl"; "create" ], "Hashtbl.create");
    ([ "Queue"; "create" ], "Queue.create");
    ([ "Buffer"; "create" ], "Buffer.create");
    ([ "Array"; "make" ], "Array.make");
    ([ "Bytes"; "create" ], "Bytes.create");
  ]

(* --- suppression annotations ------------------------------------------- *)

(* [@lint.allow rule "justification"] — payload is the application of a
   lowercase rule ident to one string literal. *)
let parse_allow_payload (attr : attribute) =
  match attr.attr_payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ( {
                  pexp_desc =
                    Pexp_apply
                      ( { pexp_desc = Pexp_ident { txt = Lident rule; _ }; _ },
                        [
                          ( Nolabel,
                            {
                              pexp_desc =
                                Pexp_constant (Pconst_string (just, _, _));
                              _;
                            } );
                        ] );
                  _;
                },
                _ );
          _;
        };
      ] ->
    if not (List.mem rule Finding.suppressible_rules) then
      Error (Printf.sprintf "unknown rule %S in [@lint.allow]" rule)
    else if String.trim just = "" then
      Error
        (Printf.sprintf
           "suppression of %S needs a non-blank justification string" rule)
    else Ok (rule, just)
  | _ ->
    Error
      "malformed [@lint.allow]: expected `[@lint.allow rule \
       \"justification\"]`"

(* --- the checker --------------------------------------------------------- *)

let scan ~(config : Config.t) ~path ~source =
  let npath = Config.normalize path in
  let findings = ref [] in
  let suppressions = ref [] in
  let add ~loc ~rule ~severity message =
    findings :=
      {
        Finding.file = npath;
        line = loc_line loc;
        col = loc_col loc;
        rule;
        severity;
        message;
        chain = [];
      }
      :: !findings
  in
  let in_deterministic = Config.in_any config.deterministic_prefixes npath in
  let in_pool = Config.in_any config.pool_prefixes npath in
  let in_output = Config.in_any config.output_prefixes npath in
  let random_ok = Config.allowed_file config.random_allowed npath in
  let clock_ok = Config.allowed_file config.clock_allowed npath in
  match
    let lexbuf = Lexing.from_string source in
    Location.init lexbuf path;
    Parse.implementation lexbuf
  with
  | exception Syntaxerr.Error err ->
    let loc = Syntaxerr.location_of_error err in
    add ~loc ~rule:"syntax" ~severity:Finding.Error
      "file does not parse; the determinism rules cannot run";
    (List.rev !findings, [])
  | exception exn ->
    add ~loc:Location.none ~rule:"syntax" ~severity:Finding.Error
      (Printf.sprintf "file does not parse: %s" (Printexc.to_string exn));
    (List.rev !findings, [])
  | structure ->
    (* Pass 0: does this module use a Mutex or Atomic anywhere?  That is
       the guard convention for toplevel shared state. *)
    let module_guarded = ref false in
    let guard_it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun self e ->
            (match e.pexp_desc with
            | Pexp_ident { txt; _ } -> (
              match ident_path txt with
              | ("Mutex" | "Atomic") :: _ -> module_guarded := true
              | _ -> ())
            | _ -> ());
            Ast_iterator.default_iterator.expr self e);
      }
    in
    guard_it.structure guard_it structure;
    (* Collect a suppression for every [lint.allow] attribute; [host]
       is the syntax node the annotation covers. *)
    let add_suppression ~(host : Location.t) (attr : attribute) =
      if attr.attr_name.txt = "lint.allow" then
        match parse_allow_payload attr with
        | Ok (rule, _justification) ->
          suppressions :=
            {
              s_rule = rule;
              s_line = loc_line attr.attr_loc;
              s_col = loc_col attr.attr_loc;
              lo = host.loc_start.pos_lnum;
              hi = host.loc_end.pos_lnum;
              used = false;
            }
            :: !suppressions
        | Error msg ->
          add ~loc:attr.attr_loc ~rule:"bad_suppression"
            ~severity:Finding.Error msg
    in
    let whole_file =
      {
        Location.none with
        loc_start = { Lexing.dummy_pos with pos_lnum = 1 };
        loc_end = { Lexing.dummy_pos with pos_lnum = max_int };
      }
    in
    (* Pass 1: expression-level rules + attribute collection. *)
    let check_ident loc lid =
      match ident_path lid with
      | "Random" :: fn :: _ when not random_ok ->
        let message =
          if fn = "self_init" then
            "Random.self_init seeds from the environment and breaks \
             run-to-run determinism; construct a seeded Numerics.Rng instead"
          else
            Printf.sprintf
              "Random.%s uses the shared global RNG; draw from a seeded \
               Numerics.Rng stream instead"
              fn
        in
        add ~loc ~rule:"nondet_random" ~severity:Finding.Error message
      | ([ "Unix"; "gettimeofday" ] | [ "Unix"; "time" ] | [ "Sys"; "time" ])
        when not clock_ok ->
        add ~loc ~rule:"nondet_clock" ~severity:Finding.Error
          "wall-clock read outside Obs.Monotonic; route timing through \
           Obs.Monotonic.now_ns/now_s so readings stay monotonic and \
           mockable"
      | [ "Hashtbl"; (("iter" | "fold") as fn) ] ->
        let severity =
          if in_deterministic then Finding.Error else Finding.Warning
        in
        add ~loc ~rule:"hashtbl_order" ~severity
          (Printf.sprintf
             "Hashtbl.%s visits bindings in hash order, which is not a \
              stable public order; sort the keys first (or suppress with a \
              justification if the use is order-insensitive)"
             fn)
      | [ f ] when in_output && List.mem f stdout_idents ->
        add ~loc ~rule:"output" ~severity:Finding.Error
          (Printf.sprintf
             "%s in a library: stdout belongs to the serve codec and the \
              renderers, diagnostics to Obs.Sink"
             f)
      | [ ("Printf" | "Format"); (("printf" | "eprintf") as fn) ]
        when in_output ->
        add ~loc ~rule:"output" ~severity:Finding.Error
          (Printf.sprintf
             "%s in a library: return strings (or write to a caller-owned \
              channel) and let binaries own the process streams"
             fn)
      | _ -> ()
    in
    let main_it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun self e ->
            List.iter (add_suppression ~host:e.pexp_loc) e.pexp_attributes;
            (match e.pexp_desc with
            | Pexp_ident { txt; loc } -> check_ident loc txt
            | Pexp_try (_, cases) ->
              List.iter
                (fun c ->
                  match c.pc_lhs.ppat_desc with
                  | Ppat_any ->
                    let severity =
                      if in_pool then Finding.Error else Finding.Warning
                    in
                    add ~loc:c.pc_lhs.ppat_loc ~rule:"catch_all" ~severity
                      "catch-all `with _ ->` swallows exceptions the Pool \
                       contract must propagate; match the exceptions you \
                       mean to absorb"
                  | _ -> ())
                cases
            | _ -> ());
            Ast_iterator.default_iterator.expr self e);
        value_binding =
          (fun self vb ->
            List.iter (add_suppression ~host:vb.pvb_loc) vb.pvb_attributes;
            Ast_iterator.default_iterator.value_binding self vb);
        structure_item =
          (fun self item ->
            (match item.pstr_desc with
            | Pstr_attribute attr -> add_suppression ~host:whole_file attr
            | _ -> ());
            Ast_iterator.default_iterator.structure_item self item);
      }
    in
    main_it.structure main_it structure;
    (* Pass 2: toplevel shared state (R2).  Walk each toplevel binding's
       right-hand side, but never descend into function bodies — state
       allocated per call is not shared. *)
    let binding_allocs vb =
      let allocs = ref [] in
      let it =
        {
          Ast_iterator.default_iterator with
          expr =
            (fun self e ->
              match e.pexp_desc with
              | Pexp_fun _ | Pexp_function _ -> ()
              | Pexp_apply
                  ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
                (match
                   List.assoc_opt (ident_path txt) alloc_idents
                 with
                | Some name -> allocs := (name, e.pexp_loc) :: !allocs
                | None -> ());
                Ast_iterator.default_iterator.expr self e)
              | _ -> Ast_iterator.default_iterator.expr self e);
        }
      in
      it.expr it vb.pvb_expr;
      List.rev !allocs
    in
    let rec scan_toplevel items =
      List.iter
        (fun item ->
          match item.pstr_desc with
          | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                List.iter
                  (fun (name, loc) ->
                    add ~loc ~rule:"shared_state" ~severity:Finding.Error
                      (Printf.sprintf
                         "toplevel %s in a Pool-reachable library with no \
                          Mutex/Atomic in this module; guard it or move it \
                          into per-call state"
                         name))
                  (binding_allocs vb))
              vbs
          | Pstr_module
              { pmb_expr = { pmod_desc = Pmod_structure sub; _ }; _ } ->
            scan_toplevel sub
          | _ -> ())
        items
    in
    if in_pool && not !module_guarded then scan_toplevel structure;
    (List.rev !findings, List.rev !suppressions)

(* --- applying a suppression table ---------------------------------------- *)

(* Drop findings covered by a matching allowance (marking it used) and
   count them.  Shared by the syntactic and deep passes: a deep finding
   is anchored at its sink / blocking call / access site, so the same
   line-span match applies. *)
let apply findings suppressions =
  let suppressed = ref 0 in
  let kept =
    List.filter
      (fun (f : Finding.t) ->
        let matched =
          List.exists
            (fun s ->
              if s.s_rule = f.rule && f.line >= s.lo && f.line <= s.hi then (
                s.used <- true;
                true)
              else false)
            suppressions
        in
        if matched then incr suppressed;
        not matched)
      findings
  in
  (kept, !suppressed)

(* A suppression at (file, line) for [rule] — the deep pass asks this
   to neutralise taint sources at their definition site ([nondet_*] /
   [hashtbl_order] allowances vouch for the op, not just the syntactic
   finding). *)
let covers suppressions ~line ~rule =
  List.exists
    (fun s ->
      if s.s_rule = rule && line >= s.lo && line <= s.hi then (
        s.used <- true;
        true)
      else false)
    suppressions

(* Stale-allowance report.  Suppressions naming deep-only rules are
   exempt when the deep pass did not run: a syntactic-only run cannot
   tell whether they are earning their keep. *)
let unused_report ~path ~deep_ran suppressions =
  let npath = Config.normalize path in
  List.filter_map
    (fun s ->
      if s.used then None
      else if (not deep_ran) && List.mem s.s_rule Finding.deep_only_rules then
        None
      else
        Some
          {
            Finding.file = npath;
            line = s.s_line;
            col = s.s_col;
            rule = "unused_suppression";
            severity = Finding.Warning;
            message =
              Printf.sprintf
                "[@lint.allow %s] matched no finding; remove it so \
                 allowances cannot go stale"
                s.s_rule;
            chain = [];
          })
    suppressions

let check ~(config : Config.t) ~path ~source =
  let raw, suppressions = scan ~config ~path ~source in
  let kept, suppressed = apply raw suppressions in
  let unused = unused_report ~path ~deep_ran:false suppressions in
  (List.sort Finding.compare_finding (kept @ unused), suppressed)
