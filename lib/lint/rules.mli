(** The per-file rule pass: parse one [.ml] source with the compiler's
    own frontend and run the expression- and structure-level rules
    (nondeterminism sources, toplevel shared state, catch-all handlers,
    output discipline), honouring [\[@lint.allow rule "justification"\]]
    suppressions.  Interface coverage (R5) lives in {!Driver}, which
    owns the file set. *)

val check :
  config:Config.t -> path:string -> source:string -> Finding.t list * int
(** [check ~config ~path ~source] parses [source] (reported as [path],
    normalized) and returns the surviving findings sorted by location,
    plus the number of findings removed by suppressions.  A file that
    fails to parse yields a single [syntax] error finding.  Malformed or
    unmatched suppressions surface as [bad_suppression] errors and
    [unused_suppression] warnings. *)
