(** The per-file rule pass: parse one [.ml] source with the compiler's
    own frontend and run the expression- and structure-level rules
    (nondeterminism sources, toplevel shared state, catch-all handlers,
    output discipline), collecting [\[@lint.allow rule "justification"\]]
    suppressions.  Interface coverage (R5) lives in {!Driver}, which
    owns the file set; the deep interprocedural rules live in
    {!Taint} / {!Reach} and reuse the suppression table collected
    here — each source is parsed exactly once per run. *)

type suppression = {
  s_rule : string;
  s_line : int;  (** The annotation's own location (unused reports). *)
  s_col : int;
  lo : int;
  hi : int;  (** The line span the allowance covers. *)
  mutable used : bool;
}

val scan :
  config:Config.t ->
  path:string ->
  source:string ->
  Finding.t list * suppression list
(** One parse: the raw (unsuppressed) syntactic findings in source
    order, plus every collected allowance.  A file that fails to parse
    yields a single [syntax] error finding and no suppressions.
    Malformed allowances surface as [bad_suppression] errors. *)

val apply : Finding.t list -> suppression list -> Finding.t list * int
(** Drop findings covered by a matching allowance (marking it used);
    returns the survivors and the number dropped.  Works for syntactic
    and deep findings alike — both anchor at a line the annotation's
    span can cover. *)

val covers : suppression list -> line:int -> rule:string -> bool
(** Is there an allowance for [rule] covering [line]?  Marks it used.
    The deep pass asks this to neutralise taint sources at their
    definition site. *)

val unused_report :
  path:string -> deep_ran:bool -> suppression list -> Finding.t list
(** [unused_suppression] warnings for allowances that vouched for
    nothing.  When [deep_ran] is false, allowances naming
    {!Finding.deep_only_rules} are exempt. *)

val check :
  config:Config.t -> path:string -> source:string -> Finding.t list * int
(** [scan] + [apply] + [unused_report] in one step (the syntactic-only
    path used by {!Driver.check_source}): surviving findings sorted by
    location, plus the suppressed count. *)
