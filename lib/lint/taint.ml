(* The two value-flow rules over the call graph: nondeterminism taint
   into deterministic sinks (deep_taint) and lock discipline for
   toplevel mutable state (deep_lock).

   Taint model: a *source* is a module-level binding whose body
   mentions a nondeterministic primitive (the global Random, a
   wall-clock read, hash-order iteration, Domain.self) — unless the
   file is the sanctioned implementation (Numerics.Rng, Obs.Monotonic)
   or a justified [@lint.allow] covers the mention.  A *sink* is a
   binding Config.deep_sinks names: cache keys, codec encoders,
   Monte-Carlo trial bodies, the bench baseline emitter — code whose
   output must be a pure function of its inputs.  A sink that can reach
   a source along call edges is an error, and the finding prints the
   hop-shortest route plus the offending primitive so the reader can
   follow the leak without rerunning anything.

   This is reachability taint, not data-flow taint: a sink that calls a
   nondeterministic function and provably discards the result is still
   flagged (rare in practice, and suppressible with a justification —
   the justification is exactly the proof the analysis cannot do).
   Conversely, nondeterminism smuggled through mutable state written
   elsewhere is missed; DESIGN.md §15 owns that trade.

   Lock model: a toplevel mutable (Callgraph.node.alloc) defined in a
   Pool-reachable library must only be touched by code that
   participates in the guard convention.  The syntactic rule already
   forces the *defining* module to hold a Mutex/Atomic; the deep rule
   extends the contract across compilation units — a binding in
   another unit that mentions the mutable but no Mutex/Atomic anywhere
   in its own body is bypassing the guard. *)

let source_rules =
  [
    (* op-path head(s) -> rule, matcher returns the display name. *)
    (fun (op : Callgraph.op) ~random_ok ~clock_ok ->
      ignore clock_ok;
      match op.op_path with
      | "Random" :: fn :: _ when not random_ok ->
        Some ("nondet_random", "Random." ^ fn)
      | _ -> None);
    (fun op ~random_ok ~clock_ok ->
      ignore random_ok;
      match op.op_path with
      | ([ "Unix"; "gettimeofday" ] | [ "Unix"; "time" ] | [ "Sys"; "time" ])
        when not clock_ok ->
        Some ("nondet_clock", String.concat "." op.op_path)
      | _ -> None);
    (fun op ~random_ok ~clock_ok ->
      ignore random_ok;
      ignore clock_ok;
      match op.op_path with
      | [ "Hashtbl"; (("iter" | "fold") as fn) ] ->
        Some ("hashtbl_order", "Hashtbl." ^ fn)
      | [ "Domain"; "self" ] -> Some ("nondet_domain", "Domain.self")
      | _ -> None);
  ]

type source = {
  src_node : Callgraph.node;
  src_op : Callgraph.op;
  src_rule : string;
  src_name : string; (* "Unix.gettimeofday" *)
}

(* Every unneutralised source mention in the graph, in node order.
   [covers ~file ~line ~rule] consults the per-file suppression tables
   (marking matches used): an allowance on the mention vouches for the
   op itself, not just the syntactic finding at the same spot. *)
let collect_sources ~(config : Config.t) ~covers graph =
  List.concat_map
    (fun (node : Callgraph.node) ->
      let random_ok = Config.allowed_file config.random_allowed node.file in
      let clock_ok = Config.allowed_file config.clock_allowed node.file in
      List.filter_map
        (fun (op : Callgraph.op) ->
          List.find_map (fun rule -> rule op ~random_ok ~clock_ok) source_rules
          |> Option.map (fun (rule, name) -> (op, rule, name)))
        node.ops
      |> List.filter_map (fun (op, rule, name) ->
             if covers ~file:node.file ~line:op.Callgraph.op_line ~rule then
               None
             else
               Some
                 { src_node = node; src_op = op; src_rule = rule;
                   src_name = name }))
    graph.Callgraph.nodes

let taint_findings ~(config : Config.t) ~covers graph =
  let sources = collect_sources ~config ~covers graph in
  let source_ids = Hashtbl.create 32 in
  List.iter
    (fun s ->
      if not (Hashtbl.mem source_ids s.src_node.Callgraph.id) then
        Hashtbl.replace source_ids s.src_node.Callgraph.id s)
    sources;
  let is_source id = Hashtbl.mem source_ids id in
  let tainted = Reach.reverse_reachable graph ~targets:is_source in
  graph.Callgraph.nodes
  |> List.filter_map (fun (sink : Callgraph.node) ->
         match Config.sink_of config sink.file sink.name with
         | None -> None
         | Some _ when not (Hashtbl.mem tainted sink.id) -> None
         | Some _ -> (
           match Reach.shortest_to graph ~src:sink ~dest:is_source with
           | None -> None (* tainted set and path disagree: impossible *)
           | Some path ->
             let last = List.nth path (List.length path - 1) in
             let src = Hashtbl.find source_ids last.Callgraph.id in
             let chain =
               Reach.chain_of_path path
               @ [
                   {
                     Finding.sym = src.src_name;
                     file = src.src_node.file;
                     line = src.src_op.op_line;
                   };
                 ]
             in
             Some
               {
                 Finding.file = sink.file;
                 line = sink.line;
                 col = 0;
                 rule = "deep_taint";
                 severity = Finding.Error;
                 message =
                   Printf.sprintf
                     "deterministic sink %s reaches %s (%s, %d call%s away); \
                      its output is no longer a pure function of its inputs"
                     sink.id src.src_name src.src_rule
                     (List.length path - 1)
                     (if List.length path = 2 then "" else "s");
                 chain;
               }))
  |> List.sort Finding.compare_finding

(* --- lock discipline ----------------------------------------------------- *)

let lock_findings ~(config : Config.t) graph =
  let mutables =
    List.filter
      (fun (n : Callgraph.node) ->
        n.alloc <> None && Config.in_any config.pool_prefixes n.file)
      graph.Callgraph.nodes
  in
  List.concat_map
    (fun (m : Callgraph.node) ->
      let alloc = Option.value ~default:"?" m.alloc in
      List.filter_map
        (fun (accessor : Callgraph.node) ->
          if accessor.unit_id = m.unit_id || accessor.guarded then None
          else
            match List.assoc_opt m.id accessor.refs with
            | None -> None
            | Some line ->
              Some
                {
                  Finding.file = accessor.file;
                  line;
                  col = 0;
                  rule = "deep_lock";
                  severity = Finding.Error;
                  message =
                    Printf.sprintf
                      "%s touches the shared %s %s from another compilation \
                       unit with no Mutex/Atomic in its own body; every \
                       access site must participate in the guard convention"
                      accessor.id alloc m.id;
                  chain =
                    [
                      { Finding.sym = accessor.id; file = accessor.file; line };
                      Reach.frame_of m;
                    ];
                })
        graph.Callgraph.nodes)
    mutables
  |> List.sort Finding.compare_finding
