(** The value-flow rules over the call graph: nondeterminism taint into
    deterministic sinks ([deep_taint]) and cross-unit lock discipline
    for toplevel mutable state ([deep_lock]).

    Taint is reachability taint, not data-flow taint: a sink that calls
    a nondeterministic primitive and discards the result is still
    flagged (the justified suppression is the proof the analysis cannot
    do), while nondeterminism smuggled through mutable state is missed
    — both trades are documented in DESIGN.md §15. *)

type source = {
  src_node : Callgraph.node;
  src_op : Callgraph.op;
  src_rule : string;
      (** [nondet_random] / [nondet_clock] / [hashtbl_order] /
          [nondet_domain]. *)
  src_name : string;  (** Display name, e.g. ["Unix.gettimeofday"]. *)
}

val collect_sources :
  config:Config.t ->
  covers:(file:string -> line:int -> rule:string -> bool) ->
  Callgraph.t ->
  source list
(** Every unneutralised nondeterminism mention, in node order.
    [covers] consults the per-file suppression tables (marking matches
    used): an allowance at the mention's line vouches for the op, not
    just the syntactic finding anchored there. *)

val taint_findings :
  config:Config.t ->
  covers:(file:string -> line:int -> rule:string -> bool) ->
  Callgraph.t ->
  Finding.t list
(** One [deep_taint] error per {!Config.t.deep_sinks} binding that can
    reach a source, anchored at the sink's definition line (so an
    allowance on the sink binding suppresses it), carrying the
    hop-shortest sink-to-source chain with the primitive as the final
    frame.  Sorted. *)

val lock_findings : config:Config.t -> Callgraph.t -> Finding.t list
(** One [deep_lock] error per (toplevel mutable, foreign accessor)
    pair where the accessor's body holds no Mutex/Atomic, anchored at
    the access site, chain = access frame then definition frame.
    Sorted. *)
