open Stochastic

type config = { window : float; every : float; warmup : float }

let default_config = { window = 168.; every = 12.; warmup = 168. }

type trade = {
  start : float;
  spot : float;
  fitted_mu : float;
  fitted_sigma : float;
  p_star : float option;
  predicted_sr : float option;
  outcome : Swap.Protocol.outcome option;
}

let swap_horizon (p : Swap.Params.t) =
  let tl = Swap.Timeline.ideal p in
  max tl.Swap.Timeline.t7 tl.Swap.Timeline.t8 +. 1.

let m_bt_runs = Obs.Metrics.counter "market.backtest.runs"
let m_bt_trades = Obs.Metrics.counter "market.backtest.trades"

let run ?(config = default_config) ?(base = Swap.Params.defaults)
    ?quote_table (path : Path.t) =
  Obs.Metrics.incr m_bt_runs;
  let times = path.Path.times in
  let last_time = times.(Array.length times - 1) in
  let first_time = times.(0) in
  let trades = ref [] in
  let start = ref (first_time +. config.warmup) in
  let horizon = swap_horizon base in
  while !start +. horizon < last_time do
    let t0 = !start in
    (match Calibrate.fit_window path ~until:t0 ~window:config.window with
    | Error _ -> ()
    | Ok fit ->
      let spot = Path.at path t0 in
      let params = Calibrate.to_params ~base fit ~spot in
      let quote =
        match quote_table with
        | Some table -> (
          match
            Quote_table.quote table ~mu:fit.Calibrate.mu
              ~sigma:fit.Calibrate.sigma ~spot
          with
          | Some q ->
            Some { Swap.Success.p_star = q.Quote_table.p_star; sr = q.Quote_table.sr }
          | None -> None)
        | None -> (
          match Swap.Params.validate params with
          | Error _ -> None
          | Ok () -> Swap.Success.maximize params)
      in
      let trade =
        match quote with
        | None ->
          {
            start = t0;
            spot;
            fitted_mu = fit.Calibrate.mu;
            fitted_sigma = fit.Calibrate.sigma;
            p_star = None;
            predicted_sr = None;
            outcome = None;
          }
        | Some { Swap.Success.p_star; sr } ->
          let policy = Swap.Agent.rational params ~p_star in
          let shifted t = Path.at path (t +. t0) in
          let result =
            Swap.Protocol.run ~policy ~price:shifted params ~p_star
          in
          {
            start = t0;
            spot;
            fitted_mu = fit.Calibrate.mu;
            fitted_sigma = fit.Calibrate.sigma;
            p_star = Some p_star;
            predicted_sr = Some sr;
            outcome = Some result.Swap.Protocol.outcome;
          }
      in
      Obs.Metrics.incr m_bt_trades;
      trades := trade :: !trades);
    start := !start +. config.every
  done;
  List.rev !trades

type summary = {
  trades : int;
  skipped : int;
  initiated : int;
  succeeded : int;
  realized_sr : float;
  mean_predicted_sr : float;
}

let summarize trades =
  let total = List.length trades in
  let skipped = ref 0
  and initiated = ref 0
  and succeeded = ref 0
  and sr_sum = ref 0.
  and sr_n = ref 0 in
  List.iter
    (fun t ->
      (match t.predicted_sr with
      | Some sr ->
        sr_sum := !sr_sum +. sr;
        incr sr_n
      | None -> ());
      match t.outcome with
      | None | Some Swap.Protocol.Abort_t1 -> incr skipped
      | Some Swap.Protocol.Success ->
        incr initiated;
        incr succeeded
      | Some (Swap.Protocol.Abort_t2 | Swap.Protocol.Abort_t3
             | Swap.Protocol.Anomalous _) ->
        incr initiated)
    trades;
  {
    trades = total;
    skipped = !skipped;
    initiated = !initiated;
    succeeded = !succeeded;
    realized_sr =
      (if !initiated = 0 then 0.
       else float_of_int !succeeded /. float_of_int !initiated);
    mean_predicted_sr =
      (if !sr_n = 0 then 0. else !sr_sum /. float_of_int !sr_n);
  }

let summarize_by trades ~classify =
  let keys = ref [] in
  let table = Hashtbl.create 8 in
  List.iter
    (fun t ->
      let key = classify t in
      if not (Hashtbl.mem table key) then begin
        keys := key :: !keys;
        Hashtbl.add table key []
      end;
      Hashtbl.replace table key (t :: Hashtbl.find table key))
    trades;
  List.rev_map
    (fun key -> (key, summarize (List.rev (Hashtbl.find table key))))
    !keys
