(** Walk-forward backtest: repeatedly quote and execute swaps along a
    price path, calibrating the model on trailing data at each trade —
    the "simulation studies ... based on our model framework ... using
    real market data" that Section V calls for, runnable on any CSV
    series ({!Csv}) or on synthetic regime-switching data ({!Regimes}).

    At each trade time the engine: (1) fits a GBM on the trailing
    [window] hours ({!Calibrate}), (2) picks the SR-maximising exchange
    rate under the fitted model, (3) predicts the success rate, and
    (4) executes the full HTLC protocol on the chain simulator with
    rational agents reading the {e actual} path.  Predicted vs realised
    failure rates quantify model risk (calibration lag at regime
    shifts). *)

type config = {
  window : float;  (** Calibration lookback, hours (default 168 = 1 week). *)
  every : float;  (** Hours between trade starts (default 12). *)
  warmup : float;  (** Skip this many hours at the path start (default = window). *)
}

val default_config : config

type trade = {
  start : float;
  spot : float;
  fitted_mu : float;
  fitted_sigma : float;
  p_star : float option;  (** [None]: no feasible rate, trade skipped. *)
  predicted_sr : float option;
  outcome : Swap.Protocol.outcome option;  (** [None] when skipped. *)
}

val run :
  ?config:config -> ?base:Swap.Params.t -> ?quote_table:Quote_table.t ->
  Stochastic.Path.t -> trade list
(** Requires the path to extend one full swap beyond each trade start;
    trades whose horizon exceeds the path are not attempted.  With a
    [quote_table] the per-trade SR-optimal quote is interpolated from
    the precomputed surface (orders of magnitude faster; quotes whose
    calibration falls off the table are skipped). *)

type summary = {
  trades : int;
  skipped : int;  (** No feasible rate at quote time. *)
  initiated : int;
  succeeded : int;
  realized_sr : float;  (** Successes / initiated. *)
  mean_predicted_sr : float;  (** Average model prediction at quote time. *)
}

val summarize : trade list -> summary

val summarize_by :
  trade list -> classify:(trade -> 'a) -> ('a * summary) list
(** Group trades (e.g. by latent or detected regime) and summarise each
    group; keys in first-appearance order. *)
