open Stochastic

type fit = {
  mu : float;
  sigma : float;
  n : int;
  span : float;
  mu_stderr : float;
  sigma_stderr : float;
  log_likelihood : float;
}

let fit_arrays times values =
  let n = Array.length times - 1 in
  if n < 2 then Error "Calibrate.fit: needs at least 3 samples"
  else begin
    let ok = ref true in
    Array.iter (fun v -> if v <= 0. then ok := false) values;
    if not !ok then Error "Calibrate.fit: nonpositive price"
    else begin
      let rets = Array.init n (fun i -> log (values.(i + 1) /. values.(i))) in
      let dts = Array.init n (fun i -> times.(i + 1) -. times.(i)) in
      let span = times.(n) -. times.(0) in
      let sum_r = Array.fold_left ( +. ) 0. rets in
      (* MLE of the log drift m = mu - sigma^2/2. *)
      let m_hat = sum_r /. span in
      let sq = ref 0. in
      for i = 0 to n - 1 do
        let e = rets.(i) -. (m_hat *. dts.(i)) in
        sq := !sq +. (e *. e /. dts.(i))
      done;
      let sigma2 = !sq /. float_of_int n in
      let sigma = sqrt sigma2 in
      if sigma <= 0. then Error "Calibrate.fit: degenerate (constant) path"
      else begin
        let mu = m_hat +. (0.5 *. sigma2) in
        (* Gaussian log likelihood of the observed returns. *)
        let ll = ref 0. in
        for i = 0 to n - 1 do
          let var = sigma2 *. dts.(i) in
          let e = rets.(i) -. (m_hat *. dts.(i)) in
          ll := !ll -. (0.5 *. (log (2. *. Numerics.Special.pi *. var)
                               +. (e *. e /. var)))
        done;
        Ok
          {
            mu;
            sigma;
            n;
            span;
            mu_stderr = sigma /. sqrt span;
            sigma_stderr = sigma /. sqrt (2. *. float_of_int n);
            log_likelihood = !ll;
          }
      end
    end
  end

let fit (path : Path.t) = fit_arrays path.Path.times path.Path.values

let fit_window (path : Path.t) ~until ~window =
  let times = path.Path.times and values = path.Path.values in
  let lo = until -. window in
  let idx = ref [] in
  Array.iteri (fun i t -> if t > lo && t <= until then idx := i :: !idx) times;
  let idx = Array.of_list (List.rev !idx) in
  if Array.length idx < 3 then Error "Calibrate.fit_window: too few samples"
  else
    fit_arrays
      (Array.map (fun i -> times.(i)) idx)
      (Array.map (fun i -> values.(i)) idx)

let to_params ?(base = Swap.Params.defaults) fit ~spot =
  Swap.Params.with_p0
    (Swap.Params.with_sigma (Swap.Params.with_mu base fit.mu) fit.sigma)
    spot
