(** Maximum-likelihood GBM calibration from a sampled price path, with
    irregular sampling supported.

    Under Eq. 1 the log returns satisfy
    [r_i ~ N ((mu - sigma^2/2) dt_i, sigma^2 dt_i)]; the MLE is
    closed-form: [m_hat = sum r_i / sum dt_i] for the log drift and
    [sigma_hat^2 = (1/n) sum (r_i - m_hat dt_i)^2 / dt_i]. *)

type fit = {
  mu : float;  (** Drift per unit time (paper's [mu]). *)
  sigma : float;  (** Volatility per sqrt unit time. *)
  n : int;  (** Number of return observations. *)
  span : float;  (** Total time covered. *)
  mu_stderr : float;
      (** Standard error of [mu] (dominated by [sigma / sqrt span] —
          drift is hard to estimate, the classic result). *)
  sigma_stderr : float;  (** Approximately [sigma / sqrt (2 n)]. *)
  log_likelihood : float;
}

val fit : Stochastic.Path.t -> (fit, string) result
(** Requires at least 3 samples and positive prices. *)

val fit_window : Stochastic.Path.t -> until:float -> window:float -> (fit, string) result
(** Fit on the samples in [(until - window, until]] — the trailing
    window used by the backtest. *)

val to_params : ?base:Swap.Params.t -> fit -> spot:float -> Swap.Params.t
(** Table III defaults (or [base]) with [mu], [sigma] and [p0 = spot]
    replaced by the calibrated values. *)
