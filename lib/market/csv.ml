let parse contents =
  let lines = String.split_on_char '\n' contents in
  let rec go lineno times values = function
    | [] -> Ok (List.rev times, List.rev values)
    | line :: rest ->
      let trimmed = String.trim line in
      if trimmed = "" || trimmed.[0] = '#' then
        go (lineno + 1) times values rest
      else begin
        match String.split_on_char ',' trimmed with
        | [ t; v ] -> (
          match (float_of_string_opt (String.trim t),
                 float_of_string_opt (String.trim v)) with
          | Some t, Some v -> go (lineno + 1) (t :: times) (v :: values) rest
          | None, _ when lineno = 1 && times = [] ->
            (* Header row. *)
            go (lineno + 1) times values rest
          | _ -> Error (Printf.sprintf "line %d: not numeric: %s" lineno trimmed))
        | _ -> Error (Printf.sprintf "line %d: expected 2 fields: %s" lineno trimmed)
      end
  in
  match go 1 [] [] lines with
  | Error _ as e -> e
  | Ok (times, values) ->
    if times = [] then Error "no data rows"
    else begin
      try
        Ok
          (Stochastic.Path.create ~times:(Array.of_list times)
             ~values:(Array.of_list values))
      with Invalid_argument msg -> Error msg
    end

let render path =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "time,price\n";
  let times = (path : Stochastic.Path.t).Stochastic.Path.times in
  let values = path.Stochastic.Path.values in
  Array.iteri
    (fun i t -> Buffer.add_string buf (Printf.sprintf "%.8g,%.8g\n" t values.(i)))
    times;
  Buffer.contents buf

let load filename =
  match In_channel.with_open_text filename In_channel.input_all with
  | contents -> parse contents
  | exception Sys_error msg -> Error msg

let save filename path =
  match Out_channel.with_open_text filename (fun oc ->
      Out_channel.output_string oc (render path))
  with
  | () -> Ok ()
  | exception Sys_error msg -> Error msg
