(** Minimal CSV support for (time, price) series — the interchange
    format for feeding recorded market data into the model (the paper's
    "simulation studies ... using real market data" direction).  No
    external dependency; tolerant of headers, blank lines and [#]
    comments. *)

val parse : string -> (Stochastic.Path.t, string) result
(** [parse contents] reads lines of [time,price] (floats; an optional
    non-numeric header line is skipped).  Errors carry the offending
    line number. *)

val render : Stochastic.Path.t -> string
(** ["time,price\n..."] — inverse of {!parse}. *)

val load : string -> (Stochastic.Path.t, string) result
(** Reads and parses a file. *)

val save : string -> Stochastic.Path.t -> (unit, string) result
