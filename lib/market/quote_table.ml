open Numerics

type t = {
  ratio : Interp.Bilinear.t;  (** Optimal [p_star / p0]. *)
  sr : Interp.Bilinear.t;
  mus : float array;
  sigmas : float array;
  gaps : int;
}

type quote = { p_star : float; sr : float }
type reason = Outside_grid | Infeasible_neighbor | Non_positive_spot

let reason_to_string = function
  | Outside_grid -> "outside_grid"
  | Infeasible_neighbor -> "infeasible_neighbor"
  | Non_positive_spot -> "non_positive_spot"

(* The GBM game is homogeneous of degree one in the price level: scaling
   the spot and the rate together scales every utility, so decisions and
   SR depend only on the rate-to-spot ratio.  One table serves all
   spots. *)
let build ?mus ?sigmas (base : Swap.Params.t) =
  let mus =
    Option.value ~default:(Grid.linspace ~lo:(-0.01) ~hi:0.01 ~n:9) mus
  in
  let sigmas =
    Option.value ~default:(Grid.linspace ~lo:0.02 ~hi:0.16 ~n:8) sigmas
  in
  let n_mu = Array.length mus and n_sigma = Array.length sigmas in
  let ratio = Array.make_matrix n_mu n_sigma nan in
  let sr = Array.make_matrix n_mu n_sigma nan in
  (* One full solve per node, fanned out over the domain pool (each
     chunk writes only its own matrix cells, so the result is identical
     to the sequential sweep at any jobs count).  This is the serve
     engine's warm build: ~100 ms per node adds up on a dense grid. *)
  Pool.run_chunks ~chunks:(n_mu * n_sigma) (fun node ->
      let i = node / n_sigma and j = node mod n_sigma in
      let p =
        Swap.Params.with_sigma (Swap.Params.with_mu base mus.(i)) sigmas.(j)
      in
      match Swap.Params.validate p with
      | Error _ -> ()
      | Ok () -> (
        match Swap.Success.maximize p with
        | Some best ->
          ratio.(i).(j) <- best.Swap.Success.p_star /. p.Swap.Params.p0;
          sr.(i).(j) <- best.Swap.Success.sr
        | None -> ()));
  let gaps =
    let n = ref 0 in
    Array.iter
      (Array.iter (fun v -> if Float.is_nan v then incr n))
      ratio;
    !n
  in
  {
    ratio = Interp.Bilinear.create ~xs:mus ~ys:sigmas ~values:ratio;
    sr = Interp.Bilinear.create ~xs:mus ~ys:sigmas ~values:sr;
    mus;
    sigmas;
    gaps;
  }

let in_grid t ~mu ~sigma =
  let last a = a.(Array.length a - 1) in
  mu >= t.mus.(0) && mu <= last t.mus
  && sigma >= t.sigmas.(0)
  && sigma <= last t.sigmas

let lookup t ~mu ~sigma ~spot =
  if not (spot > 0.) then Error Non_positive_spot
  else if not (in_grid t ~mu ~sigma) then Error Outside_grid
  else
    match
      ( Interp.Bilinear.eval t.ratio ~x:mu ~y:sigma,
        Interp.Bilinear.eval t.sr ~x:mu ~y:sigma )
    with
    | Some ratio, Some sr -> Ok { p_star = ratio *. spot; sr }
    (* Inside the hull but a surrounding node is nan: the solver found
       no feasible rate at a neighbour, so interpolation is undefined. *)
    | _ -> Error Infeasible_neighbor

let quote t ~mu ~sigma ~spot = Result.to_option (lookup t ~mu ~sigma ~spot)
let nodes t = (Array.length t.mus, Array.length t.sigmas)
let gaps t = t.gaps
