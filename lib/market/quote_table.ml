open Numerics

type t = {
  ratio : Interp.Bilinear.t;  (** Optimal [p_star / p0]. *)
  sr : Interp.Bilinear.t;
  n_mu : int;
  n_sigma : int;
}

type quote = { p_star : float; sr : float }

(* The GBM game is homogeneous of degree one in the price level: scaling
   the spot and the rate together scales every utility, so decisions and
   SR depend only on the rate-to-spot ratio.  One table serves all
   spots. *)
let build ?mus ?sigmas (base : Swap.Params.t) =
  let mus =
    Option.value ~default:(Grid.linspace ~lo:(-0.01) ~hi:0.01 ~n:9) mus
  in
  let sigmas =
    Option.value ~default:(Grid.linspace ~lo:0.02 ~hi:0.16 ~n:8) sigmas
  in
  let ratio = Array.make_matrix (Array.length mus) (Array.length sigmas) nan in
  let sr = Array.make_matrix (Array.length mus) (Array.length sigmas) nan in
  Array.iteri
    (fun i mu ->
      Array.iteri
        (fun j sigma ->
          let p = Swap.Params.with_sigma (Swap.Params.with_mu base mu) sigma in
          match Swap.Params.validate p with
          | Error _ -> ()
          | Ok () -> (
            match Swap.Success.maximize p with
            | Some best ->
              ratio.(i).(j) <- best.Swap.Success.p_star /. p.Swap.Params.p0;
              sr.(i).(j) <- best.Swap.Success.sr
            | None -> ()))
        sigmas)
    mus;
  {
    ratio = Interp.Bilinear.create ~xs:mus ~ys:sigmas ~values:ratio;
    sr = Interp.Bilinear.create ~xs:mus ~ys:sigmas ~values:sr;
    n_mu = Array.length mus;
    n_sigma = Array.length sigmas;
  }

let quote t ~mu ~sigma ~spot =
  match
    ( Interp.Bilinear.eval t.ratio ~x:mu ~y:sigma,
      Interp.Bilinear.eval t.sr ~x:mu ~y:sigma )
  with
  | Some ratio, Some sr when spot > 0. -> Some { p_star = ratio *. spot; sr }
  | _ -> None

let nodes t = (t.n_mu, t.n_sigma)
