(** Precomputed quoting surface: the SR-optimal exchange rate and its
    success rate over a grid of calibrated (mu, sigma), interpolated
    bilinearly.  Building the table costs one sweep of full solves;
    each subsequent quote is microseconds — what a trading venue would
    actually deploy, and what makes large backtests cheap. *)

type t

type quote = { p_star : float; sr : float }

val build :
  ?mus:float array -> ?sigmas:float array -> Swap.Params.t -> t
(** Solves [Swap.Success.maximize] at every grid node (relative to the
    base parameters; [p0] is factored out by quoting the {e ratio}
    [p_star / p0], so one table serves every spot level).  Defaults:
    mus from -0.01 to 0.01 (9 nodes), sigmas from 0.02 to 0.16 (8
    nodes).  Infeasible nodes are recorded as gaps. *)

val quote : t -> mu:float -> sigma:float -> spot:float -> quote option
(** Interpolated quote at the calibrated parameters, scaled to the
    current spot; [None] outside the grid or next to infeasible
    nodes. *)

val nodes : t -> int * int
(** Grid dimensions (mus, sigmas). *)
