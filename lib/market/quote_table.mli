(** Precomputed quoting surface: the SR-optimal exchange rate and its
    success rate over a grid of calibrated (mu, sigma), interpolated
    bilinearly.  Building the table costs one sweep of full solves
    (fanned out over the domain pool); each subsequent quote is
    microseconds — what a trading venue would actually deploy, what
    makes large backtests cheap, and what the serve engine warm-builds
    at startup. *)

type t

type quote = { p_star : float; sr : float }

type reason =
  | Outside_grid  (** (mu, sigma) falls outside the table's hull. *)
  | Infeasible_neighbor
      (** Inside the hull, but a surrounding grid node had no feasible
          rate, so interpolation is undefined there. *)
  | Non_positive_spot  (** [spot <= 0] can never be quoted. *)

val reason_to_string : reason -> string
(** Stable snake_case rendering (serve error codes). *)

val build :
  ?mus:float array -> ?sigmas:float array -> Swap.Params.t -> t
(** Solves [Swap.Success.maximize] at every grid node (relative to the
    base parameters; [p0] is factored out by quoting the {e ratio}
    [p_star / p0], so one table serves every spot level).  Defaults:
    mus from -0.01 to 0.01 (9 nodes), sigmas from 0.02 to 0.16 (8
    nodes).  Infeasible nodes are recorded as gaps.  Nodes are solved in
    parallel on {!Numerics.Pool}; the table is identical at any jobs
    count. *)

val lookup :
  t -> mu:float -> sigma:float -> spot:float -> (quote, reason) result
(** Interpolated quote at the calibrated parameters, scaled to the
    current spot; the error says {e why} no quote exists, so a service
    can map each case to a distinct error code. *)

val quote : t -> mu:float -> sigma:float -> spot:float -> quote option
(** {!lookup} with the reason discarded. *)

val nodes : t -> int * int
(** Grid dimensions (mus, sigmas). *)

val gaps : t -> int
(** Number of infeasible grid nodes (recorded during {!build}); quotes
    next to a gap return [Error Infeasible_neighbor]. *)
