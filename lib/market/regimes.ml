open Numerics
open Stochastic

type spec = {
  mu : float;
  sigma_calm : float;
  sigma_turbulent : float;
  to_turbulent : float;
  to_calm : float;
}

let default_spec =
  {
    mu = 0.0;
    sigma_calm = 0.06;
    sigma_turbulent = 0.25;
    to_turbulent = 1. /. 200.;
    to_calm = 1. /. 50.;
  }

let validate spec =
  if spec.sigma_calm <= 0. || spec.sigma_turbulent <= 0. then
    Error "sigmas must be positive"
  else if spec.sigma_turbulent < spec.sigma_calm then
    Error "turbulent sigma should not be below calm sigma"
  else if spec.to_turbulent < 0. || spec.to_calm <= 0. then
    Error "hazards must be positive"
  else Ok ()

type state = Calm | Turbulent

let state_to_string = function Calm -> "calm" | Turbulent -> "turbulent"

let stationary_turbulent_share spec =
  spec.to_turbulent /. (spec.to_turbulent +. spec.to_calm)

let sample_states rng spec ~dt ~steps =
  (match validate spec with
  | Ok () -> ()
  | Error e -> invalid_arg ("Regimes.sample_states: " ^ e));
  if dt <= 0. || steps <= 0 then
    invalid_arg "Regimes.sample_states: requires dt > 0 and steps > 0";
  let states = Array.make steps Calm in
  let state = ref Calm in
  for i = 0 to steps - 1 do
    (* Switch with the per-step probability 1 - exp(-hazard dt). *)
    let hazard =
      match !state with Calm -> spec.to_turbulent | Turbulent -> spec.to_calm
    in
    if Rng.uniform rng < 1. -. exp (-.hazard *. dt) then
      state := (match !state with Calm -> Turbulent | Turbulent -> Calm);
    states.(i) <- !state
  done;
  states

let sample rng spec ~p0 ~dt ~steps =
  if p0 <= 0. then invalid_arg "Regimes.sample: requires p0 > 0";
  let states = sample_states rng spec ~dt ~steps in
  let times = Array.init steps (fun i -> dt *. float_of_int (i + 1)) in
  let values = Array.make steps p0 in
  let price = ref p0 in
  for i = 0 to steps - 1 do
    let sigma =
      match states.(i) with
      | Calm -> spec.sigma_calm
      | Turbulent -> spec.sigma_turbulent
    in
    let gbm = Gbm.create ~mu:spec.mu ~sigma in
    price := Gbm.sample rng gbm ~p0:!price ~tau:dt;
    values.(i) <- !price;
  done;
  (Path.create ~times ~values, states)

let state_at states ~dt ~t =
  let i = int_of_float (ceil (t /. dt)) - 1 in
  let i = max 0 (min (Array.length states - 1) i) in
  states.(i)

let classify (path : Path.t) ~window ~threshold =
  if window < 2 then invalid_arg "Regimes.classify: window must be >= 2";
  let rets = Path.log_returns path in
  let times = path.Path.times in
  let n = Array.length rets in
  let states = Array.make (n + 1) Calm in
  for i = 0 to n do
    let hi = min (i - 1) (n - 1) in
    let lo = max 0 (hi - window + 1) in
    if hi - lo + 1 >= 2 then begin
      let slice = Array.sub rets lo (hi - lo + 1) in
      let mean_dt =
        (times.(hi + 1) -. times.(lo)) /. float_of_int (hi - lo + 1)
      in
      let vol = Stats.stddev slice /. sqrt mean_dt in
      states.(i) <- (if vol > threshold then Turbulent else Calm)
    end
    else states.(i) <- (if i > 0 then states.(i - 1) else Calm)
  done;
  (* The first entries have no history: inherit the first informed
     classification. *)
  let first_informed = min window n in
  if first_informed <= n then
    for i = 0 to first_informed - 1 do
      states.(i) <- states.(first_informed)
    done;
  states
