(** Two-state Markov regime-switching volatility — the synthetic
    stand-in for real market data (calm/turbulent alternation is the
    dominant stylised fact the plain GBM misses, and exactly the
    mechanism behind the Bisq observation that failures concentrate in
    volatile periods). *)

type spec = {
  mu : float;  (** Drift per hour (shared across regimes). *)
  sigma_calm : float;
  sigma_turbulent : float;
  to_turbulent : float;
      (** Per-hour hazard of switching calm -> turbulent. *)
  to_calm : float;  (** Per-hour hazard of switching back. *)
}

val default_spec : spec
(** Calm sigma 0.06, turbulent 0.25, mean calm spell ~200 h, mean
    turbulent spell ~50 h (a crypto-like 20% turbulent share). *)

val validate : spec -> (unit, string) result

type state = Calm | Turbulent

val state_to_string : state -> string

val stationary_turbulent_share : spec -> float
(** Long-run fraction of time in the turbulent state. *)

val sample_states :
  Numerics.Rng.t -> spec -> dt:float -> steps:int -> state array
(** The Markov chain alone, without prices — cheap for very long
    horizons (avoids floating-point price underflow over geological
    sample sizes). *)

val sample :
  Numerics.Rng.t -> spec -> p0:float -> dt:float -> steps:int ->
  Stochastic.Path.t * state array
(** Simulates [steps] increments of size [dt] (hours): the state
    follows the Markov chain; within a step the price moves as a GBM
    with the state's volatility.  Returns the path (times start at
    [dt]) and the state at each sample. *)

val state_at : state array -> dt:float -> t:float -> state
(** State governing time [t] in a path produced by {!sample}. *)

val classify :
  Stochastic.Path.t -> window:int -> threshold:float -> state array
(** Observable proxy: rolling realised volatility over [window] samples
    against [threshold]; the first [window] entries inherit the first
    classification.  Useful to test how well a trader can detect the
    regime without seeing the latent state. *)
