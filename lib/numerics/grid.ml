let linspace ~lo ~hi ~n =
  if n < 2 then invalid_arg "Grid.linspace: requires n >= 2";
  Array.init n (fun i ->
      lo +. ((hi -. lo) *. float_of_int i /. float_of_int (n - 1)))

let logspace ~lo ~hi ~n =
  if lo <= 0. || hi <= lo then
    invalid_arg "Grid.logspace: requires 0 < lo < hi";
  let la = log lo and lb = log hi in
  Array.init n (fun i ->
      exp (la +. ((lb -. la) *. float_of_int i /. float_of_int (n - 1))))

let midpoints xs =
  let n = Array.length xs in
  if n < 2 then [||]
  else Array.init (n - 1) (fun i -> 0.5 *. (xs.(i) +. xs.(i + 1)))

let arange ~lo ~hi ~step =
  if step <= 0. then invalid_arg "Grid.arange: requires step > 0";
  let n = int_of_float (ceil ((hi -. lo) /. step)) in
  let n = max n 0 in
  Array.init n (fun i -> lo +. (float_of_int i *. step))
