(** Evenly spaced grids. *)

val linspace : lo:float -> hi:float -> n:int -> float array
(** [n] points from [lo] to [hi] inclusive.  @raise Invalid_argument if
    [n < 2]. *)

val logspace : lo:float -> hi:float -> n:int -> float array
(** [n] logarithmically spaced points from [lo] to [hi] inclusive;
    requires [0 < lo < hi]. *)

val midpoints : float array -> float array
(** Midpoints of consecutive entries (length [n - 1]). *)

val arange : lo:float -> hi:float -> step:float -> float array
(** Points [lo, lo+step, ...] strictly below [hi].
    @raise Invalid_argument if [step <= 0.]. *)
