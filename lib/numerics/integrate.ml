let simpson ?(n = 256) f ~a ~b =
  if n <= 0 || n mod 2 <> 0 then
    invalid_arg "Integrate.simpson: n must be a positive even integer";
  let h = (b -. a) /. float_of_int n in
  let sum = ref (f a +. f b) in
  for i = 1 to n - 1 do
    let x = a +. (float_of_int i *. h) in
    let w = if i mod 2 = 1 then 4. else 2. in
    sum := !sum +. (w *. f x)
  done;
  !sum *. h /. 3.

let trapezoid ?(n = 256) f ~a ~b =
  if n <= 0 then invalid_arg "Integrate.trapezoid: n must be positive";
  let h = (b -. a) /. float_of_int n in
  let sum = ref (0.5 *. (f a +. f b)) in
  for i = 1 to n - 1 do
    sum := !sum +. f (a +. (float_of_int i *. h))
  done;
  !sum *. h

(* Adaptive Simpson with the classic 1/15 Richardson criterion. *)
let adaptive_simpson ?(tol = 1e-10) ?(max_depth = 50) f ~a ~b =
  let simpson_step a fa b fb fm = (b -. a) /. 6. *. (fa +. (4. *. fm) +. fb) in
  let rec go a fa b fb m fm whole tol depth =
    let lm = 0.5 *. (a +. m) and rm = 0.5 *. (m +. b) in
    let flm = f lm and frm = f rm in
    let left = simpson_step a fa m fm flm in
    let right = simpson_step m fm b fb frm in
    let delta = left +. right -. whole in
    if depth <= 0 || abs_float delta <= 15. *. tol then
      left +. right +. (delta /. 15.)
    else
      go a fa m fm lm flm left (tol /. 2.) (depth - 1)
      +. go m fm b fb rm frm right (tol /. 2.) (depth - 1)
  in
  (* Seed with a few fixed panels so that narrow interior features cannot
     be missed by an accidentally small first-level error estimate. *)
  let panels = 8 in
  let h = (b -. a) /. float_of_int panels in
  let total = ref 0. in
  for i = 0 to panels - 1 do
    let a' = a +. (float_of_int i *. h) in
    let b' = a' +. h in
    let fa' = f a' and fb' = f b' in
    let m = 0.5 *. (a' +. b') in
    let fm = f m in
    total :=
      !total
      +. go a' fa' b' fb' m fm
           (simpson_step a' fa' b' fb' fm)
           (tol /. float_of_int panels)
           max_depth
  done;
  !total

(* Gauss-Legendre nodes on [-1, 1] by Newton iteration on P_n, using the
   standard three-term recurrence; symmetric, so only half are solved. *)
let gl_table : (int, (float * float) array) Hashtbl.t = Hashtbl.create 8
let gl_mutex = Mutex.create ()

let compute_gl_nodes n =
  if n <= 0 then invalid_arg "Integrate.gauss_legendre_nodes: n must be > 0";
  let nodes = Array.make n (0., 0.) in
  let m = (n + 1) / 2 in
  let nf = float_of_int n in
  for i = 0 to m - 1 do
    (* Chebyshev-style initial guess for the i-th root. *)
    let x = ref (cos (Special.pi *. (float_of_int i +. 0.75) /. (nf +. 0.5))) in
    let pp = ref 0. in
    let continue = ref true in
    while !continue do
      (* Evaluate P_n(x) and P_{n-1}(x) by recurrence. *)
      let p0 = ref 1. and p1 = ref 0. in
      for j = 0 to n - 1 do
        let jf = float_of_int j in
        let p2 = !p1 in
        p1 := !p0;
        p0 := (((2. *. jf) +. 1.) *. !x *. !p1 -. (jf *. p2)) /. (jf +. 1.)
      done;
      (* Derivative via P'_n = n (x P_n - P_{n-1}) / (x^2 - 1). *)
      pp := nf *. ((!x *. !p0) -. !p1) /. ((!x *. !x) -. 1.);
      let dx = !p0 /. !pp in
      x := !x -. dx;
      if abs_float dx < 1e-15 then continue := false
    done;
    let w = 2. /. ((1. -. (!x *. !x)) *. !pp *. !pp) in
    nodes.(i) <- (-. !x, w);
    nodes.(n - 1 - i) <- (!x, w)
  done;
  nodes

let m_gl_hits = Obs.Metrics.counter "integrate.gl_cache.hits"
let m_gl_misses = Obs.Metrics.counter "integrate.gl_cache.misses"

(* Node tables are immutable once computed; the mutex only guards the
   table itself so concurrent quadratures (domain pool) stay safe.  A
   racing miss may compute the same nodes twice — harmless. *)
let gauss_legendre_nodes n =
  Mutex.lock gl_mutex;
  match Hashtbl.find_opt gl_table n with
  | Some nodes ->
    Mutex.unlock gl_mutex;
    Obs.Metrics.incr m_gl_hits;
    nodes
  | None ->
    Mutex.unlock gl_mutex;
    Obs.Metrics.incr m_gl_misses;
    let nodes = compute_gl_nodes n in
    Mutex.lock gl_mutex;
    Hashtbl.replace gl_table n nodes;
    Mutex.unlock gl_mutex;
    nodes

let gauss_legendre ?(n = 64) f ~a ~b =
  let nodes = gauss_legendre_nodes n in
  let c = 0.5 *. (b -. a) and mid = 0.5 *. (a +. b) in
  let sum = ref 0. in
  Array.iter (fun (x, w) -> sum := !sum +. (w *. f (mid +. (c *. x)))) nodes;
  c *. !sum

let semi_infinite ?(n = 128) f ~a =
  (* x = a + t/(1-t), dx = dt/(1-t)^2, t in [0,1). *)
  let g t =
    let u = 1. -. t in
    if u <= 0. then 0. else f (a +. (t /. u)) /. (u *. u)
  in
  gauss_legendre ~n g ~a:0. ~b:1.
