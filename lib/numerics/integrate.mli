(** One-dimensional numerical quadrature. *)

val simpson : ?n:int -> (float -> float) -> a:float -> b:float -> float
(** Composite Simpson rule with [n] (even, default 256) subintervals.
    @raise Invalid_argument if [n] is not a positive even integer. *)

val adaptive_simpson :
  ?tol:float -> ?max_depth:int -> (float -> float) -> a:float -> b:float ->
  float
(** Adaptive Simpson quadrature with Richardson error control.
    [tol] is the absolute error target (default [1e-10]);
    [max_depth] bounds the recursion (default 50). *)

val gauss_legendre : ?n:int -> (float -> float) -> a:float -> b:float -> float
(** Gauss–Legendre quadrature with [n] nodes (default 64).  Nodes and
    weights are computed by Newton iteration on Legendre polynomials and
    memoised per [n].  Exact for polynomials of degree [<= 2n - 1]. *)

val gauss_legendre_nodes : int -> (float * float) array
(** [gauss_legendre_nodes n] returns the [(node, weight)] pairs on
    [[-1, 1]] (memoised). *)

val semi_infinite :
  ?n:int -> (float -> float) -> a:float -> float
(** Integral over [[a, +infinity)] via the substitution
    [x = a + t / (1 - t)], [t] in [[0, 1)], using Gauss–Legendre with [n]
    nodes (default 128).  The integrand must decay at infinity. *)

val trapezoid : ?n:int -> (float -> float) -> a:float -> b:float -> float
(** Composite trapezoid rule with [n] subintervals (default 256). *)
