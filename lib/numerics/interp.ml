let check_increasing name xs =
  for i = 1 to Array.length xs - 1 do
    if xs.(i) <= xs.(i - 1) then
      invalid_arg (name ^ ": abscissae must be strictly increasing")
  done

(* Largest index i with xs.(i) <= x, clamped to [0, n-2]. *)
let interval_index xs x =
  let n = Array.length xs in
  if x <= xs.(0) then 0
  else if x >= xs.(n - 2) then n - 2
  else begin
    let lo = ref 0 and hi = ref (n - 2) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if xs.(mid) <= x then lo := mid else hi := mid - 1
    done;
    !lo
  end

module Cubic_spline = struct
  type t = {
    xs : float array;
    ys : float array;
    second : float array;  (** Second derivatives at the knots. *)
  }

  (* Natural spline: tridiagonal solve for second derivatives (the
     classic Numerical Recipes formulation). *)
  let create ~xs ~ys =
    let n = Array.length xs in
    if n < 3 then invalid_arg "Cubic_spline.create: needs >= 3 knots";
    if Array.length ys <> n then
      invalid_arg "Cubic_spline.create: length mismatch";
    check_increasing "Cubic_spline.create" xs;
    let second = Array.make n 0. in
    let u = Array.make n 0. in
    for i = 1 to n - 2 do
      let sig_ = (xs.(i) -. xs.(i - 1)) /. (xs.(i + 1) -. xs.(i - 1)) in
      let p = (sig_ *. second.(i - 1)) +. 2. in
      second.(i) <- (sig_ -. 1.) /. p;
      let d =
        ((ys.(i + 1) -. ys.(i)) /. (xs.(i + 1) -. xs.(i)))
        -. ((ys.(i) -. ys.(i - 1)) /. (xs.(i) -. xs.(i - 1)))
      in
      u.(i) <-
        ((6. *. d /. (xs.(i + 1) -. xs.(i - 1))) -. (sig_ *. u.(i - 1))) /. p
    done;
    for i = n - 2 downto 1 do
      second.(i) <- (second.(i) *. second.(i + 1)) +. u.(i)
    done;
    second.(0) <- 0.;
    second.(n - 1) <- 0.;
    { xs; ys; second }

  let eval t x =
    let i = interval_index t.xs x in
    let h = t.xs.(i + 1) -. t.xs.(i) in
    if x < t.xs.(0) then
      (* Linear extrapolation with the boundary slope. *)
      let slope =
        ((t.ys.(1) -. t.ys.(0)) /. h) -. (h *. t.second.(1) /. 6.)
      in
      t.ys.(0) +. (slope *. (x -. t.xs.(0)))
    else if x > t.xs.(Array.length t.xs - 1) then begin
      let n = Array.length t.xs in
      let h = t.xs.(n - 1) -. t.xs.(n - 2) in
      let slope =
        ((t.ys.(n - 1) -. t.ys.(n - 2)) /. h) +. (h *. t.second.(n - 2) /. 6.)
      in
      t.ys.(n - 1) +. (slope *. (x -. t.xs.(n - 1)))
    end
    else begin
      let a = (t.xs.(i + 1) -. x) /. h in
      let b = (x -. t.xs.(i)) /. h in
      (a *. t.ys.(i))
      +. (b *. t.ys.(i + 1))
      +. (((a *. a *. a) -. a) *. t.second.(i) *. h *. h /. 6.)
      +. (((b *. b *. b) -. b) *. t.second.(i + 1) *. h *. h /. 6.)
    end

  let eval_deriv t x =
    let i = interval_index t.xs x in
    let h = t.xs.(i + 1) -. t.xs.(i) in
    let x = max t.xs.(0) (min t.xs.(Array.length t.xs - 1) x) in
    let a = (t.xs.(i + 1) -. x) /. h in
    let b = (x -. t.xs.(i)) /. h in
    ((t.ys.(i + 1) -. t.ys.(i)) /. h)
    -. ((3. *. a *. a -. 1.) *. h *. t.second.(i) /. 6.)
    +. ((3. *. b *. b -. 1.) *. h *. t.second.(i + 1) /. 6.)
end

module Bilinear = struct
  type t = { xs : float array; ys : float array; values : float array array }

  let create ~xs ~ys ~values =
    if Array.length xs < 2 || Array.length ys < 2 then
      invalid_arg "Bilinear.create: needs >= 2 points per axis";
    check_increasing "Bilinear.create (x)" xs;
    check_increasing "Bilinear.create (y)" ys;
    if Array.length values <> Array.length xs then
      invalid_arg "Bilinear.create: row count mismatch";
    Array.iter
      (fun row ->
        if Array.length row <> Array.length ys then
          invalid_arg "Bilinear.create: column count mismatch")
      values;
    { xs; ys; values }

  let eval t ~x ~y =
    let nx = Array.length t.xs and ny = Array.length t.ys in
    if x < t.xs.(0) || x > t.xs.(nx - 1) || y < t.ys.(0) || y > t.ys.(ny - 1)
    then None
    else begin
      let i = interval_index t.xs x and j = interval_index t.ys y in
      let v00 = t.values.(i).(j)
      and v01 = t.values.(i).(j + 1)
      and v10 = t.values.(i + 1).(j)
      and v11 = t.values.(i + 1).(j + 1) in
      if Float.is_nan v00 || Float.is_nan v01 || Float.is_nan v10
         || Float.is_nan v11
      then None
      else begin
        let tx = (x -. t.xs.(i)) /. (t.xs.(i + 1) -. t.xs.(i)) in
        let ty = (y -. t.ys.(j)) /. (t.ys.(j + 1) -. t.ys.(j)) in
        Some
          (((1. -. tx) *. (1. -. ty) *. v00)
          +. ((1. -. tx) *. ty *. v01)
          +. (tx *. (1. -. ty) *. v10)
          +. (tx *. ty *. v11))
      end
    end
end
