(** Interpolation: natural cubic splines in 1-D and bilinear lookup on
    rectangular grids.  Used to precompute expensive model surfaces
    (e.g. SR-optimal quotes over calibrated parameters) once and query
    them cheaply. *)

module Cubic_spline : sig
  type t

  val create : xs:float array -> ys:float array -> t
  (** Natural cubic spline through the knots.
      @raise Invalid_argument if fewer than 3 knots or [xs] is not
      strictly increasing. *)

  val eval : t -> float -> float
  (** Piecewise-cubic value; linear extrapolation outside the knots. *)

  val eval_deriv : t -> float -> float
  (** First derivative of the interpolant. *)
end

module Bilinear : sig
  type t

  val create : xs:float array -> ys:float array -> values:float array array -> t
  (** [values.(i).(j)] at [(xs.(i), ys.(j))]; both axes strictly
      increasing; entries may be [nan] for "no data".
      @raise Invalid_argument on shape or ordering errors. *)

  val eval : t -> x:float -> y:float -> float option
  (** Bilinear interpolation inside the grid; [None] outside the hull
      or when any of the four surrounding values is [nan]. *)
end
