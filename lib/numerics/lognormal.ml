type t = { mu : float; sigma : float }

let create ~mu ~sigma =
  if sigma <= 0. then invalid_arg "Lognormal.create: requires sigma > 0";
  { mu; sigma }

let pdf { mu; sigma } x =
  if x <= 0. then 0.
  else
    let z = (log x -. mu) /. sigma in
    exp (-0.5 *. z *. z) /. (x *. sigma *. Special.sqrt_2pi)

let cdf { mu; sigma } x =
  if x <= 0. then 0. else Normal.cdf ~mean:mu ~stddev:sigma (log x)

let sf { mu; sigma } x =
  if x <= 0. then 1. else Normal.sf ~mean:mu ~stddev:sigma (log x)

let quantile { mu; sigma } p = exp (Normal.quantile ~mean:mu ~stddev:sigma p)
let mean { mu; sigma } = exp (mu +. (0.5 *. sigma *. sigma))

let variance { mu; sigma } =
  let s2 = sigma *. sigma in
  (exp s2 -. 1.) *. exp ((2. *. mu) +. s2)

let median { mu; sigma = _ } = exp mu

let partial_expectation_above ({ mu; sigma } as d) k =
  if k <= 0. then mean d
  else
    let d1 = (mu +. (sigma *. sigma) -. log k) /. sigma in
    mean d *. Normal.cdf d1

let partial_expectation_below ({ mu; sigma } as d) k =
  if k <= 0. then 0.
  else
    let d1 = (mu +. (sigma *. sigma) -. log k) /. sigma in
    mean d *. Normal.sf d1
