(** Lognormal distribution parameterised by the mean [mu] and standard
    deviation [sigma] of the underlying normal: [X = exp N(mu, sigma^2)].

    The GBM transition law of the paper (Eq. 1) is lognormal with
    [mu = ln P_t + (drift - sigma^2/2) tau] and [sigma = vol sqrt tau];
    see {!Stochastic.Gbm}. *)

type t = private { mu : float; sigma : float }

val create : mu:float -> sigma:float -> t
(** @raise Invalid_argument if [sigma <= 0.]. *)

val pdf : t -> float -> float
(** Density at [x]; [0.] for [x <= 0.]. *)

val cdf : t -> float -> float
(** Cumulative distribution function; [0.] for [x <= 0.]. *)

val sf : t -> float -> float
(** Survival function [1 - cdf], cancellation-free. *)

val quantile : t -> float -> float
(** Inverse CDF for [p] in (0, 1). *)

val mean : t -> float
(** [exp (mu + sigma^2 / 2)]. *)

val variance : t -> float

val median : t -> float

val partial_expectation_above : t -> float -> float
(** [partial_expectation_above d k = E[X 1_{X > k}]
    = mean d * Phi ((mu + sigma^2 - ln k) / sigma)] for [k > 0];
    equals [mean d] for [k <= 0.].  This is the Black–Scholes style
    closed form used for the time-[t2] utilities. *)

val partial_expectation_below : t -> float -> float
(** [E[X 1_{X <= k}] = mean d - partial_expectation_above d k],
    computed without cancellation. *)
