let phi = (sqrt 5. -. 1.) /. 2.

let golden_section ?(tol = 1e-9) ?(max_iter = 200) f ~a ~b =
  if b <= a then invalid_arg "Minimize.golden_section: requires a < b";
  (* Maintain interior probes c < d; keep the half containing the
     smaller value. *)
  let rec iterate a b c fc d fd i =
    if i = 0 || b -. a < tol then
      let x = 0.5 *. (a +. b) in
      (x, f x)
    else if fc < fd then
      let b = d in
      let d = c and fd = fc in
      let c = b -. (phi *. (b -. a)) in
      iterate a b c (f c) d fd (i - 1)
    else
      let a = c in
      let c = d and fc = fd in
      let d = a +. (phi *. (b -. a)) in
      iterate a b c fc d (f d) (i - 1)
  in
  let c = b -. (phi *. (b -. a)) in
  let d = a +. (phi *. (b -. a)) in
  iterate a b c (f c) d (f d) max_iter

let maximize ?tol ?max_iter f ~a ~b =
  let x, neg = golden_section ?tol ?max_iter (fun x -> -.f x) ~a ~b in
  (x, -.neg)

let grid_then_golden ?(grid = 40) ?tol f ~a ~b =
  if b <= a then invalid_arg "Minimize.grid_then_golden: requires a < b";
  let n = max 3 grid in
  let xs = Grid.linspace ~lo:a ~hi:b ~n in
  let values = Array.map f xs in
  let best = ref 0 in
  Array.iteri (fun i v -> if v > values.(!best) then best := i) values;
  let cell_lo = xs.(max 0 (!best - 1)) in
  let cell_hi = xs.(min (n - 1) (!best + 1)) in
  maximize ?tol f ~a:cell_lo ~b:cell_hi
