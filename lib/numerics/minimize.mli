(** One-dimensional optimisation. *)

val golden_section :
  ?tol:float -> ?max_iter:int -> (float -> float) -> a:float -> b:float ->
  float * float
(** [golden_section f ~a ~b] minimises a unimodal [f] on [[a, b]];
    returns [(argmin, min)].  [tol] is the bracket-width target
    (default [1e-9]).
    @raise Invalid_argument if [b <= a]. *)

val maximize :
  ?tol:float -> ?max_iter:int -> (float -> float) -> a:float -> b:float ->
  float * float
(** Golden-section maximisation of a unimodal function. *)

val grid_then_golden :
  ?grid:int -> ?tol:float -> (float -> float) -> a:float -> b:float ->
  float * float
(** Multimodal-tolerant maximisation: a coarse grid (default 40 points)
    locates the best cell, golden section refines inside it.  Exact for
    unimodal functions; for multimodal ones it returns the best local
    maximum whose basin the grid resolves. *)
