let check_stddev stddev =
  if stddev <= 0. then invalid_arg "Normal: requires stddev > 0"

let pdf ?(mean = 0.) ?(stddev = 1.) x =
  check_stddev stddev;
  let z = (x -. mean) /. stddev in
  exp (-0.5 *. z *. z) /. (stddev *. Special.sqrt_2pi)

let log_pdf ?(mean = 0.) ?(stddev = 1.) x =
  check_stddev stddev;
  let z = (x -. mean) /. stddev in
  (-0.5 *. z *. z) -. log (stddev *. Special.sqrt_2pi)

let cdf ?(mean = 0.) ?(stddev = 1.) x =
  check_stddev stddev;
  let z = (x -. mean) /. stddev in
  0.5 *. Special.erfc (-.z /. Special.sqrt2)

let sf ?(mean = 0.) ?(stddev = 1.) x =
  check_stddev stddev;
  let z = (x -. mean) /. stddev in
  0.5 *. Special.erfc (z /. Special.sqrt2)

let quantile ?(mean = 0.) ?(stddev = 1.) p =
  check_stddev stddev;
  if p <= 0. || p >= 1. then invalid_arg "Normal.quantile: requires 0 < p < 1";
  mean -. (stddev *. Special.sqrt2 *. Special.erfc_inv (2. *. p))
