(** Standard and general normal (Gaussian) distribution. *)

val pdf : ?mean:float -> ?stddev:float -> float -> float
(** [pdf ?mean ?stddev x] — density at [x]. Defaults: [mean = 0.],
    [stddev = 1.].  @raise Invalid_argument if [stddev <= 0.]. *)

val cdf : ?mean:float -> ?stddev:float -> float -> float
(** Cumulative distribution function, computed via {!Special.erfc} so both
    tails keep full relative accuracy. *)

val sf : ?mean:float -> ?stddev:float -> float -> float
(** Survival function [1 - cdf], computed without cancellation. *)

val quantile : ?mean:float -> ?stddev:float -> float -> float
(** [quantile p] — inverse CDF for [p] in (0, 1).
    @raise Invalid_argument if [p] is outside (0, 1). *)

val log_pdf : ?mean:float -> ?stddev:float -> float -> float
(** Logarithm of the density. *)
