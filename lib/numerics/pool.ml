(* Fixed-size domain pool with a hand-rolled work queue (stdlib Domain +
   Mutex + Condition; no external dependency).  One global pool is shared
   by every caller in the process: it is spawned lazily, grows to the
   largest jobs value ever requested, and is torn down at exit.

   Determinism contract: work is split into chunks *before* anything
   executes, each chunk writes its result into a slot indexed by its
   chunk number, and reductions fold the slots in chunk order.  The
   outcome therefore never depends on how many domains ran the chunks or
   in which order they finished — callers that additionally key their RNG
   streams by chunk index (see Rng.of_stream) obtain bit-identical
   results for any jobs count.

   Nested submissions are allowed (an experiment running in the pool may
   itself fan out a Monte-Carlo run): the submitting domain always helps
   execute its own job, so progress is guaranteed even when every worker
   is busy. *)

type job = {
  total : int;  (* number of chunks *)
  next : int Atomic.t;  (* next unclaimed chunk index *)
  unfinished : int Atomic.t;  (* chunks not yet fully executed *)
  run_chunk : int -> unit;  (* executes one chunk; may raise *)
  job_mutex : Mutex.t;  (* guards [failed] and the completion signal *)
  finished : Condition.t;
  mutable failed : (int * exn * Printexc.raw_backtrace) option;
}

let pool_mutex = Mutex.create ()
let pool_cond = Condition.create ()
let pending : job list ref = ref []
let workers : unit Domain.t list ref = ref []
let shutting_down = ref false

(* --- metrics ------------------------------------------------------------ *)

let m_tasks = Obs.Metrics.counter "pool.tasks_submitted"
let m_chunks = Obs.Metrics.counter "pool.chunks_completed"
let m_helped = Obs.Metrics.counter "pool.caller_helped"
let m_queue_hwm = Obs.Metrics.gauge "pool.queue_depth_hwm"
let m_chunk_latency = Obs.Metrics.histogram "pool.chunk_latency_s"

type stats = {
  tasks_submitted : int;
  chunks_completed : int;
  caller_helped : int;
  queue_depth_hwm : int;
}

let stats () =
  {
    tasks_submitted = Obs.Metrics.counter_value m_tasks;
    chunks_completed = Obs.Metrics.counter_value m_chunks;
    caller_helped = Obs.Metrics.counter_value m_helped;
    queue_depth_hwm = int_of_float (Obs.Metrics.gauge_value m_queue_hwm);
  }

(* --- jobs setting ------------------------------------------------------- *)

let env_jobs () =
  match Sys.getenv_opt "HTLC_JOBS" with
  | None -> None
  | Some s -> (
    let s = String.trim s in
    if s = "" then None
    else
      match int_of_string_opt s with
      | Some n when n >= 1 -> Some n
      | Some n ->
        failwith
          (Printf.sprintf "HTLC_JOBS must be a positive integer, got %d" n)
      | None ->
        failwith
          (Printf.sprintf "HTLC_JOBS must be a positive integer, got %S" s))

let recommended () =
  match env_jobs () with
  | Some n -> n
  | None -> Domain.recommended_domain_count ()

let global_jobs = Atomic.make 0 (* 0 = not yet resolved *)

let jobs () =
  let j = Atomic.get global_jobs in
  if j > 0 then j
  else begin
    (* Benign race: concurrent initialisers compute the same value. *)
    ignore (Atomic.compare_and_set global_jobs 0 (recommended ()));
    Atomic.get global_jobs
  end

let set_jobs n =
  if n < 1 then invalid_arg "Pool.set_jobs: jobs must be >= 1";
  Atomic.set global_jobs n

(* --- execution ---------------------------------------------------------- *)

let record_failure job chunk exn bt =
  Mutex.lock job.job_mutex;
  (match job.failed with
  | Some (c, _, _) when c <= chunk -> ()
  | _ -> job.failed <- Some (chunk, exn, bt));
  Mutex.unlock job.job_mutex

(* Runs one claimed chunk and signals the submitter when it was the last
   one.  The atomic decrement publishes the chunk's writes (OCaml memory
   model: release on the atomic), so the submitter may read result slots
   after observing [unfinished = 0]. *)
let exec job chunk =
  (* Clock reads are gated on the metrics flag (0L sentinel = untimed) so
     the disabled path stays a single atomic load per chunk. *)
  let t0 = if Obs.Metrics.enabled () then Obs.Monotonic.now_ns () else 0L in
  (try job.run_chunk chunk
   with exn -> record_failure job chunk exn (Printexc.get_raw_backtrace ()));
  Obs.Metrics.incr m_chunks;
  if t0 <> 0L then
    Obs.Metrics.observe m_chunk_latency (Obs.Monotonic.elapsed_s ~since_ns:t0);
  if Atomic.fetch_and_add job.unfinished (-1) = 1 then begin
    Mutex.lock job.job_mutex;
    Condition.broadcast job.finished;
    Mutex.unlock job.job_mutex
  end

let claim job =
  let chunk = Atomic.fetch_and_add job.next 1 in
  if chunk < job.total then Some chunk else None

let rec worker_loop () =
  Mutex.lock pool_mutex;
  let find_claim () =
    List.find_map
      (fun j -> if Atomic.get j.next < j.total then claim j |> Option.map (fun c -> (j, c)) else None)
      !pending
  in
  let claimed = ref (find_claim ()) in
  while Option.is_none !claimed && not !shutting_down do
    Condition.wait pool_cond pool_mutex;
    claimed := find_claim ()
  done;
  Mutex.unlock pool_mutex;
  match !claimed with
  | None -> () (* shutting down and no claimable work left *)
  | Some (job, chunk) ->
    exec job chunk;
    worker_loop ()

(* Called with [pool_mutex] held. *)
let ensure_workers n =
  while List.length !workers < n do
    workers := Domain.spawn worker_loop :: !workers
  done

let () =
  at_exit (fun () ->
      Mutex.lock pool_mutex;
      shutting_down := true;
      Condition.broadcast pool_cond;
      Mutex.unlock pool_mutex;
      List.iter Domain.join !workers;
      workers := [])

let run_chunks ?jobs:jobs_opt ~chunks run_chunk =
  if chunks < 0 then invalid_arg "Pool.run_chunks: negative chunk count";
  let j =
    match jobs_opt with
    | Some j when j >= 1 -> j
    | Some _ -> invalid_arg "Pool.run_chunks: jobs must be >= 1"
    | None -> jobs ()
  in
  let j = min j chunks in
  Obs.Metrics.incr m_tasks;
  if j <= 1 then
    (* Sequential fast path: same chunk decomposition, zero pool traffic.
       Raises at the first failing chunk — the same (lowest-index) failure
       the parallel path reports. *)
    let timed = Obs.Metrics.enabled () in
    for chunk = 0 to chunks - 1 do
      let t0 = if timed then Obs.Monotonic.now_ns () else 0L in
      run_chunk chunk;
      Obs.Metrics.incr m_chunks;
      if t0 <> 0L then
        Obs.Metrics.observe m_chunk_latency
          (Obs.Monotonic.elapsed_s ~since_ns:t0)
    done
  else begin
    let job =
      {
        total = chunks;
        next = Atomic.make 0;
        unfinished = Atomic.make chunks;
        run_chunk;
        job_mutex = Mutex.create ();
        finished = Condition.create ();
        failed = None;
      }
    in
    Mutex.lock pool_mutex;
    ensure_workers (j - 1);
    pending := !pending @ [ job ];
    Obs.Metrics.max_gauge m_queue_hwm (float_of_int (List.length !pending));
    Condition.broadcast pool_cond;
    Mutex.unlock pool_mutex;
    (* The submitter helps until every chunk is claimed... *)
    let rec help () =
      match claim job with
      | Some chunk ->
        Obs.Metrics.incr m_helped;
        exec job chunk;
        help ()
      | None -> ()
    in
    help ();
    (* ...then waits out chunks still in flight on other domains. *)
    Mutex.lock job.job_mutex;
    while Atomic.get job.unfinished > 0 do
      Condition.wait job.finished job.job_mutex
    done;
    Mutex.unlock job.job_mutex;
    Mutex.lock pool_mutex;
    pending := List.filter (fun j' -> j' != job) !pending;
    Mutex.unlock pool_mutex;
    match job.failed with
    | Some (_, exn, bt) -> Printexc.raise_with_backtrace exn bt
    | None -> ()
  end

(* --- chunked combinators ------------------------------------------------ *)

let num_chunks ~chunk_size ~n =
  if chunk_size < 1 then invalid_arg "Pool: chunk_size must be >= 1";
  if n < 0 then invalid_arg "Pool: n must be >= 0";
  if n = 0 then 0 else ((n - 1) / chunk_size) + 1

let map_chunks ?jobs ~chunk_size ~n f =
  let k = num_chunks ~chunk_size ~n in
  let out = Array.make k None in
  run_chunks ?jobs ~chunks:k (fun chunk ->
      let lo = chunk * chunk_size in
      let hi = min n (lo + chunk_size) in
      out.(chunk) <- Some (f ~chunk ~lo ~hi));
  Array.map (function Some v -> v | None -> assert false) out

let parallel_for_reduce ?jobs ~chunk_size ~n ~init ~body ~combine =
  Array.fold_left combine init (map_chunks ?jobs ~chunk_size ~n body)

let map_array ?jobs f arr =
  map_chunks ?jobs ~chunk_size:1 ~n:(Array.length arr)
    (fun ~chunk ~lo:_ ~hi:_ -> f arr.(chunk))

let map_list ?jobs f l = Array.to_list (map_array ?jobs f (Array.of_list l))
