(** Deterministic multicore execution: a reusable fixed-size domain pool
    (hand-rolled work queue over stdlib [Domain] + [Mutex]/[Condition])
    shared by every parallel section in the repository.

    {b Determinism contract.}  Work is split into chunks before execution
    and results are collected (and reduced) in chunk-index order, so the
    outcome is independent of the jobs count and of scheduling.  Callers
    whose chunks consume randomness must key each chunk's generator by
    its chunk index ({!Rng.of_stream}); then [jobs:1] and [jobs:n] are
    bit-identical.

    Nested use is supported: a task running in the pool may itself submit
    chunked work — the submitter always helps execute its own chunks, so
    the pool cannot deadlock on nesting. *)

val recommended : unit -> int
(** Default parallelism: the [HTLC_JOBS] environment variable when set,
    otherwise [Domain.recommended_domain_count ()].
    @raise Failure when [HTLC_JOBS] is set to a non-empty value that is
    not a positive integer (an empty/whitespace value counts as unset). *)

val jobs : unit -> int
(** Current global jobs setting (lazily initialised to {!recommended}). *)

val set_jobs : int -> unit
(** Override the global jobs setting (CLI [--jobs]).
    @raise Invalid_argument when the argument is < 1. *)

val run_chunks : ?jobs:int -> chunks:int -> (int -> unit) -> unit
(** [run_chunks ~chunks f] executes [f 0 .. f (chunks-1)], distributing
    chunks over [jobs] domains (default: the global setting; [1] runs
    inline on the caller).  If any chunk raises, every chunk still runs
    and the exception of the {e lowest} failing chunk index is re-raised
    — the same exception the sequential path would surface first. *)

val map_chunks :
  ?jobs:int ->
  chunk_size:int ->
  n:int ->
  (chunk:int -> lo:int -> hi:int -> 'a) ->
  'a array
(** [map_chunks ~chunk_size ~n f] covers [0..n-1] with fixed-size chunks
    ([chunk] covering indices [lo] inclusive to [hi] exclusive) and
    returns the per-chunk results in chunk order.  The decomposition
    depends only on [chunk_size] and [n] — never on [jobs]. *)

val parallel_for_reduce :
  ?jobs:int ->
  chunk_size:int ->
  n:int ->
  init:'acc ->
  body:(chunk:int -> lo:int -> hi:int -> 'part) ->
  combine:('acc -> 'part -> 'acc) ->
  'acc
(** {!map_chunks} followed by an in-order sequential fold of the partial
    results — the deterministic parallel-for-reduce. *)

val map_array : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving parallel map, one task per element (for coarse
    tasks, e.g. one experiment per task in [Registry.run_all]). *)

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** List version of {!map_array}. *)

type stats = {
  tasks_submitted : int;  (** [run_chunks] calls (either path) *)
  chunks_completed : int;  (** chunks fully executed, any domain *)
  caller_helped : int;  (** chunks the submitting domain ran itself *)
  queue_depth_hwm : int;  (** high-water mark of the pending-job queue *)
}

val stats : unit -> stats
(** Pool counters, read from the [Obs.Metrics] registry (names
    [pool.tasks_submitted], [pool.chunks_completed], [pool.caller_helped],
    [pool.queue_depth_hwm]).  Counts freeze while metrics are disabled. *)
