type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
  mutable cached_normal : float option;
}

(* splitmix64: expands a 64-bit seed into arbitrarily many well-mixed
   words; the recommended way to seed xoshiro generators. *)
let splitmix64_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* The splitmix64 finaliser alone: a strong 64-bit mixing function. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ?(seed = 0x5eed) () =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3; cached_normal = None }

let of_stream ?(seed = 0x5eed) ~stream () =
  if stream < 0 then invalid_arg "Rng.of_stream: stream must be >= 0";
  (* Hash (seed, stream) into one well-separated splitmix64 state, then
     expand it into xoshiro state exactly as [create] does.  Adjacent
     streams land in unrelated regions of the seeding sequence, giving
     each parallel chunk a statistically independent generator that is a
     pure function of (seed, stream) — the basis of the jobs-invariant
     Monte-Carlo contract. *)
  let key =
    mix64
      (Int64.logxor
         (mix64 (Int64.of_int seed))
         (Int64.mul (Int64.of_int stream) 0x9E3779B97F4A7C15L))
  in
  let state = ref key in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3; cached_normal = None }

let copy t = { t with s0 = t.s0 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256++ *)
let bits64 t =
  let open Int64 in
  let result = add (rotl (add t.s0 t.s3) 23) t.s0 in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let state = ref (bits64 t) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3; cached_normal = None }

let uniform t =
  (* Top 53 bits -> float in [0, 1). *)
  let x = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float x *. 0x1.0p-53

let uniform_range t ~lo ~hi =
  if hi <= lo then invalid_arg "Rng.uniform_range: requires lo < hi";
  lo +. ((hi -. lo) *. uniform t)

let int_below t n =
  if n <= 0 then invalid_arg "Rng.int_below: requires n > 0";
  (* Rejection sampling on the top bits to avoid modulo bias. *)
  let n64 = Int64.of_int n in
  let rec draw () =
    let x = Int64.shift_right_logical (bits64 t) 1 in
    (* x uniform in [0, 2^63) *)
    let r = Int64.rem x n64 in
    if Int64.sub x r > Int64.sub (Int64.sub Int64.max_int n64) Int64.one then
      draw ()
    else Int64.to_int r
  in
  draw ()

let normal t =
  match t.cached_normal with
  | Some z ->
    t.cached_normal <- None;
    z
  | None ->
    let rec polar () =
      let u = (2. *. uniform t) -. 1. in
      let v = (2. *. uniform t) -. 1. in
      let s = (u *. u) +. (v *. v) in
      if s >= 1. || s = 0. then polar ()
      else
        let m = sqrt (-2. *. log s /. s) in
        (u *. m, v *. m)
    in
    let z0, z1 = polar () in
    t.cached_normal <- Some z1;
    z0

let gaussian t ~mean ~stddev = mean +. (stddev *. normal t)

let exponential t ~rate =
  if rate <= 0. then invalid_arg "Rng.exponential: requires rate > 0";
  -.log (1. -. uniform t) /. rate

let lognormal t ~mu ~sigma = exp (mu +. (sigma *. normal t))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int_below t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
