(** Deterministic pseudo-random number generation: splitmix64 for seeding
    and xoshiro256++ as the main generator.  Self-contained so that every
    Monte-Carlo experiment in this repository is reproducible bit-for-bit
    across platforms. *)

type t
(** Mutable generator state. *)

val create : ?seed:int -> unit -> t
(** [create ~seed ()] builds a generator whose 256-bit state is expanded
    from [seed] (default 0x5eed) with splitmix64. *)

val of_stream : ?seed:int -> stream:int -> unit -> t
(** [of_stream ~seed ~stream ()] is the [stream]-th member of a family of
    statistically independent generators keyed by [seed]: the pair is
    mixed through the splitmix64 finaliser and expanded into xoshiro
    state as {!create} does.  A pure function of [(seed, stream)] — used
    to give every fixed-size Monte-Carlo chunk its own generator so that
    parallel runs are bit-identical for any jobs count. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split t] draws from [t] to seed a statistically independent child
    generator; useful to give each simulation stream its own RNG. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val uniform : t -> float
(** Uniform float in [[0, 1)] with 53 random bits. *)

val uniform_range : t -> lo:float -> hi:float -> float
(** Uniform in [[lo, hi)]. @raise Invalid_argument if [hi <= lo]. *)

val int_below : t -> int -> int
(** Uniform integer in [[0, n)] (unbiased, rejection sampling).
    @raise Invalid_argument if [n <= 0]. *)

val normal : t -> float
(** Standard normal via the Marsaglia polar method. *)

val gaussian : t -> mean:float -> stddev:float -> float
(** General normal deviate. *)

val exponential : t -> rate:float -> float
(** Exponential deviate with the given [rate]. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** Lognormal deviate, [exp (N (mu, sigma^2))]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
