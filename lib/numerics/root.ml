let bisect ?(tol = 1e-12) ?(max_iter = 200) f ~a ~b =
  let fa = f a and fb = f b in
  if fa = 0. then a
  else if fb = 0. then b
  else if fa *. fb > 0. then
    invalid_arg "Root.bisect: endpoints do not bracket a root"
  else
    let rec go a fa b i =
      let m = 0.5 *. (a +. b) in
      if b -. a < tol || i >= max_iter then m
      else
        let fm = f m in
        if fm = 0. then m
        else if fa *. fm < 0. then go a fa m (i + 1)
        else go m fm b (i + 1)
    in
    if a <= b then go a fa b 0 else go b fb a 0

(* Brent's method, following the classic Brent (1973) formulation. *)
let brent ?(tol = 1e-13) ?(max_iter = 200) f ~a ~b =
  let fa = f a and fb = f b in
  if fa = 0. then a
  else if fb = 0. then b
  else if fa *. fb > 0. then
    invalid_arg "Root.brent: endpoints do not bracket a root"
  else begin
    let a = ref a and b = ref b and fa = ref fa and fb = ref fb in
    if abs_float !fa < abs_float !fb then begin
      let t = !a in a := !b; b := t;
      let t = !fa in fa := !fb; fb := t
    end;
    let c = ref !a and fc = ref !fa in
    let d = ref (!b -. !a) in
    let mflag = ref true in
    let result = ref nan in
    (try
       for _ = 1 to max_iter do
         if !fb = 0. || abs_float (!b -. !a) < tol then begin
           result := !b;
           raise Exit
         end;
         let s =
           if !fa <> !fc && !fb <> !fc then
             (* Inverse quadratic interpolation. *)
             (!a *. !fb *. !fc /. ((!fa -. !fb) *. (!fa -. !fc)))
             +. (!b *. !fa *. !fc /. ((!fb -. !fa) *. (!fb -. !fc)))
             +. (!c *. !fa *. !fb /. ((!fc -. !fa) *. (!fc -. !fb)))
           else
             (* Secant. *)
             !b -. (!fb *. (!b -. !a) /. (!fb -. !fa))
         in
         let lo = ((3. *. !a) +. !b) /. 4. and hi = !b in
         let lo, hi = if lo <= hi then (lo, hi) else (hi, lo) in
         let use_bisection =
           s < lo || s > hi
           || (!mflag && abs_float (s -. !b) >= abs_float (!b -. !c) /. 2.)
           || ((not !mflag) && abs_float (s -. !b) >= abs_float (!c -. !d) /. 2.)
           || (!mflag && abs_float (!b -. !c) < tol)
           || ((not !mflag) && abs_float (!c -. !d) < tol)
         in
         let s = if use_bisection then 0.5 *. (!a +. !b) else s in
         mflag := use_bisection;
         let fs = f s in
         d := !c;
         c := !b;
         fc := !fb;
         if !fa *. fs < 0. then begin b := s; fb := fs end
         else begin a := s; fa := fs end;
         if abs_float !fa < abs_float !fb then begin
           let t = !a in a := !b; b := t;
           let t = !fa in fa := !fb; fb := t
         end
       done;
       result := !b
     with Exit -> ());
    !result
  end

let newton ?(tol = 1e-13) ?(max_iter = 100) ~f ~df x0 =
  let rec go x i =
    if i >= max_iter then failwith "Root.newton: did not converge"
    else
      let fx = f x in
      let dfx = df x in
      if dfx = 0. then failwith "Root.newton: zero derivative"
      else
        let x' = x -. (fx /. dfx) in
        if abs_float (x' -. x) < tol then x' else go x' (i + 1)
  in
  go x0 0

let scan_brackets points f =
  let n = Array.length points in
  let acc = ref [] in
  let fprev = ref (f points.(0)) in
  for i = 1 to n - 1 do
    let x0 = points.(i - 1) and x1 = points.(i) in
    let f1 = f x1 in
    if !fprev = 0. then acc := (x0, x0) :: !acc
    else if !fprev *. f1 < 0. then acc := (x0, x1) :: !acc;
    fprev := f1
  done;
  if !fprev = 0. then acc := (points.(n - 1), points.(n - 1)) :: !acc;
  List.rev !acc

let find_brackets ?(n = 256) f ~a ~b =
  if n <= 0 then invalid_arg "Root.find_brackets: n must be positive";
  let points =
    Array.init (n + 1) (fun i ->
        a +. ((b -. a) *. float_of_int i /. float_of_int n))
  in
  scan_brackets points f

let find_brackets_log ?(n = 256) f ~a ~b =
  if a <= 0. || b <= a then
    invalid_arg "Root.find_brackets_log: requires 0 < a < b";
  let la = log a and lb = log b in
  let points =
    Array.init (n + 1) (fun i ->
        exp (la +. ((lb -. la) *. float_of_int i /. float_of_int n)))
  in
  scan_brackets points f

let refine_all ?tol f brackets =
  List.map
    (fun (x0, x1) ->
      if x0 = x1 then x0
      else brent ?tol f ~a:x0 ~b:x1)
    brackets

let find_all_roots ?n ?tol f ~a ~b = refine_all ?tol f (find_brackets ?n f ~a ~b)

let find_all_roots_log ?n ?tol f ~a ~b =
  refine_all ?tol f (find_brackets_log ?n f ~a ~b)
