(** Scalar root finding. *)

val bisect :
  ?tol:float -> ?max_iter:int -> (float -> float) -> a:float -> b:float ->
  float
(** [bisect f ~a ~b] finds a root of [f] in [[a, b]] by bisection.
    @raise Invalid_argument if [f a] and [f b] have the same (nonzero)
    sign.  [tol] is the bracket-width target (default [1e-12]). *)

val brent :
  ?tol:float -> ?max_iter:int -> (float -> float) -> a:float -> b:float ->
  float
(** Brent's method (inverse quadratic interpolation + secant + bisection).
    Same bracketing precondition as {!bisect}; typically far fewer
    function evaluations. *)

val newton :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> df:(float -> float) ->
  float -> float
(** [newton ~f ~df x0] runs Newton–Raphson from [x0].  @raise Failure if it does not converge
    within [max_iter] (default 100) iterations. *)

val find_brackets :
  ?n:int -> (float -> float) -> a:float -> b:float -> (float * float) list
(** [find_brackets f ~a ~b] scans [n] (default 256) equal subintervals of
    [[a, b]] and returns those whose endpoints have opposite signs, in
    increasing order.  Exact zeros at gridpoints are returned as
    degenerate brackets. *)

val find_all_roots :
  ?n:int -> ?tol:float -> (float -> float) -> a:float -> b:float -> float list
(** All sign-change roots found by {!find_brackets} refined with
    {!brent}, in increasing order.  Roots of even multiplicity that do
    not change sign on the grid are not detected. *)

val find_brackets_log :
  ?n:int -> (float -> float) -> a:float -> b:float -> (float * float) list
(** Like {!find_brackets} but on a logarithmically spaced grid;
    requires [0 < a < b].  Suited to price domains spanning decades. *)

val find_all_roots_log :
  ?n:int -> ?tol:float -> (float -> float) -> a:float -> b:float -> float list
(** Log-grid variant of {!find_all_roots}. *)
