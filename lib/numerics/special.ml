let pi = 4. *. atan 1.
let sqrt2 = sqrt 2.
let sqrt_2pi = sqrt (2. *. pi)

(* Lanczos approximation, g = 7, n = 9 (Boost / Numerical Recipes
   coefficient set).  Relative error < 1e-13 for x > 0. *)
let lanczos_g = 7.

let lanczos_coef =
  [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
     771.32342877765313; -176.61502916214059; 12.507343278686905;
     -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]

let log_gamma x =
  if x <= 0. then invalid_arg "Special.log_gamma: requires x > 0";
  (* Reflection is unnecessary since we restrict to x > 0; use the shifted
     series directly.  For x < 0.5 apply the reflection formula to keep the
     series argument away from zero. *)
  if x < 0.5 then
    (* Gamma(x) Gamma(1-x) = pi / sin(pi x) *)
    let rec lg x =
      if x < 0.5 then log (pi /. sin (pi *. x)) -. lg (1. -. x)
      else
        let x = x -. 1. in
        let a = ref lanczos_coef.(0) in
        for i = 1 to 8 do
          a := !a +. (lanczos_coef.(i) /. (x +. float_of_int i))
        done;
        let t = x +. lanczos_g +. 0.5 in
        (0.5 *. log (2. *. pi))
        +. (((x +. 0.5) *. log t) -. t)
        +. log !a
    in
    lg x
  else
    let x = x -. 1. in
    let a = ref lanczos_coef.(0) in
    for i = 1 to 8 do
      a := !a +. (lanczos_coef.(i) /. (x +. float_of_int i))
    done;
    let t = x +. lanczos_g +. 0.5 in
    (0.5 *. log (2. *. pi)) +. (((x +. 0.5) *. log t) -. t) +. log !a

(* Lower incomplete gamma by its power series: converges fast for x < a+1. *)
let gamma_p_series a x =
  let gln = log_gamma a in
  let rec go ap sum del =
    let ap = ap +. 1. in
    let del = del *. x /. ap in
    let sum = sum +. del in
    if abs_float del < abs_float sum *. 1e-16 then sum
    else go ap sum del
  in
  if x = 0. then 0.
  else
    let sum = go a (1. /. a) (1. /. a) in
    sum *. exp ((-.x) +. (a *. log x) -. gln)

(* Upper incomplete gamma by modified Lentz continued fraction:
   converges fast for x >= a+1. *)
let gamma_q_cf a x =
  let gln = log_gamma a in
  let tiny = 1e-300 in
  let b = ref (x +. 1. -. a) in
  let c = ref (1. /. tiny) in
  let d = ref (1. /. !b) in
  let h = ref !d in
  (let i = ref 1 in
   let continue = ref true in
   while !continue && !i <= 400 do
     let an = -.float_of_int !i *. (float_of_int !i -. a) in
     b := !b +. 2.;
     d := (an *. !d) +. !b;
     if abs_float !d < tiny then d := tiny;
     c := !b +. (an /. !c);
     if abs_float !c < tiny then c := tiny;
     d := 1. /. !d;
     let del = !d *. !c in
     h := !h *. del;
     if abs_float (del -. 1.) < 1e-16 then continue := false;
     incr i
   done);
  exp ((-.x) +. (a *. log x) -. gln) *. !h

let gamma_p a x =
  if a <= 0. then invalid_arg "Special.gamma_p: requires a > 0";
  if x < 0. then invalid_arg "Special.gamma_p: requires x >= 0";
  if x = 0. then 0.
  else if x < a +. 1. then gamma_p_series a x
  else 1. -. gamma_q_cf a x

let gamma_q a x =
  if a <= 0. then invalid_arg "Special.gamma_q: requires a > 0";
  if x < 0. then invalid_arg "Special.gamma_q: requires x >= 0";
  if x = 0. then 1.
  else if x < a +. 1. then 1. -. gamma_p_series a x
  else gamma_q_cf a x

let erf x =
  if x = 0. then 0.
  else if x > 0. then gamma_p 0.5 (x *. x)
  else -.gamma_p 0.5 (x *. x)

let erfc x =
  if x >= 0. then
    if x = 0. then 1. else gamma_q 0.5 (x *. x)
  else 2. -. gamma_q 0.5 (x *. x)

(* Inverse complementary error function: initial guess from the
   normal-quantile rational approximation, refined by Halley iterations on
   f(x) = erfc x - y, f'(x) = -2/sqrt(pi) exp(-x^2). *)
let erfc_inv y =
  if y <= 0. || y >= 2. then
    invalid_arg "Special.erfc_inv: requires 0 < y < 2";
  if y = 1. then 0.
  else
    let sign, y = if y > 1. then (-1., 2. -. y) else (1., y) in
    (* Initial guess via Giles (2010): x0 ~ erfinv z with z = 1 - y and
       w = -ln(1 - z^2) = -ln(y (2 - y)). *)
    let z = 1. -. y in
    let w = -.log (y *. (2. -. y)) in
    let x0 =
      if w < 6.25 then
        let w = w -. 3.125 in
        let p = -3.6444120640178196996e-21 in
        let p = (p *. w) -. 1.685059138182016589e-19 in
        let p = (p *. w) +. 1.2858480715256400167e-18 in
        let p = (p *. w) +. 1.115787767802518096e-17 in
        let p = (p *. w) -. 1.333171662854620906e-16 in
        let p = (p *. w) +. 2.0972767875968561637e-17 in
        let p = (p *. w) +. 6.6376381343583238325e-15 in
        let p = (p *. w) -. 4.0545662729752068639e-14 in
        let p = (p *. w) -. 8.1519341976054721522e-14 in
        let p = (p *. w) +. 2.6335093153082322977e-12 in
        let p = (p *. w) -. 1.2975133253453532498e-11 in
        let p = (p *. w) -. 5.4154120542946279317e-11 in
        let p = (p *. w) +. 1.051212273321532285e-09 in
        let p = (p *. w) -. 4.1126339803469836976e-09 in
        let p = (p *. w) -. 2.9070369957882005086e-08 in
        let p = (p *. w) +. 4.2347877827932403518e-07 in
        let p = (p *. w) -. 1.3654692000834678645e-06 in
        let p = (p *. w) -. 1.3882523362786468719e-05 in
        let p = (p *. w) +. 0.0001867342080340571352 in
        let p = (p *. w) -. 0.00074070253416626697512 in
        let p = (p *. w) -. 0.0060336708714301490533 in
        let p = (p *. w) +. 0.24015818242558961693 in
        let p = (p *. w) +. 1.6536545626831027356 in
        p
      else
        let w = sqrt w -. 3. in
        let p = -0.000200214257592989898 in
        let p = (p *. w) +. 0.000100950558625358 in
        let p = (p *. w) +. 0.00134934322215091 in
        let p = (p *. w) -. 0.00367342844029044 in
        let p = (p *. w) +. 0.00573950773853142 in
        let p = (p *. w) -. 0.0076224613258459 in
        let p = (p *. w) +. 0.00943887047941251 in
        let p = (p *. w) +. 1.00167406037383 in
        let p = (p *. w) +. 2.83297682961391 in
        p
    in
    let x0 = x0 *. z in
    let f x = erfc x -. y in
    let two_over_sqrt_pi = 2. /. sqrt pi in
    let refine x =
      let fx = f x in
      let d1 = -.two_over_sqrt_pi *. exp (-.(x *. x)) in
      let d2 = -2. *. x *. d1 in
      let denom = d1 -. (fx *. d2 /. (2. *. d1)) in
      if denom = 0. then x else x -. (fx /. denom)
    in
    let x = refine (refine (refine x0)) in
    sign *. x

let erf_inv y =
  if y <= -1. || y >= 1. then
    invalid_arg "Special.erf_inv: requires -1 < y < 1";
  erfc_inv (1. -. y)
