(** Special functions implemented from scratch (no external dependency).

    Accuracy targets: relative error below [1e-12] on the tested domains,
    which is ample for the utility and success-rate integrals of the swap
    model (the paper reports two to three significant digits). *)

val pi : float
(** The constant pi. *)

val sqrt2 : float
(** sqrt 2. *)

val sqrt_2pi : float
(** sqrt (2 pi). *)

val log_gamma : float -> float
(** [log_gamma x] is the natural logarithm of the Gamma function for
    [x > 0].  Lanczos approximation (g = 7, 9 coefficients).
    @raise Invalid_argument if [x <= 0.]. *)

val gamma_p : float -> float -> float
(** [gamma_p a x] is the regularised lower incomplete gamma function
    P(a, x) = gamma(a, x) / Gamma(a), for [a > 0] and [x >= 0].
    Series expansion for [x < a +. 1.], continued fraction otherwise. *)

val gamma_q : float -> float -> float
(** [gamma_q a x = 1. -. gamma_p a x], the regularised upper incomplete
    gamma function, computed directly to avoid cancellation. *)

val erf : float -> float
(** Error function, via the incomplete gamma function. *)

val erfc : float -> float
(** Complementary error function; accurate in the tails (no [1 - erf]
    cancellation). *)

val erfc_inv : float -> float
(** [erfc_inv y] solves [erfc x = y] for [y] in (0, 2).
    Initial rational estimate refined by two Halley steps.
    @raise Invalid_argument if [y <= 0.] or [y >= 2.]. *)

val erf_inv : float -> float
(** [erf_inv y] solves [erf x = y] for [y] in (-1, 1). *)
