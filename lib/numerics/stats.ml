type summary = {
  n : int;
  mean : float;
  variance : float;
  stddev : float;
  min : float;
  max : float;
}

let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty array")

let summarize xs =
  check_nonempty "Stats.summarize" xs;
  (* Welford's online algorithm: numerically stable single pass. *)
  let n = ref 0 in
  let mean = ref 0. in
  let m2 = ref 0. in
  let mn = ref infinity and mx = ref neg_infinity in
  Array.iter
    (fun x ->
      incr n;
      let delta = x -. !mean in
      mean := !mean +. (delta /. float_of_int !n);
      m2 := !m2 +. (delta *. (x -. !mean));
      if x < !mn then mn := x;
      if x > !mx then mx := x)
    xs;
  let variance = if !n < 2 then 0. else !m2 /. float_of_int (!n - 1) in
  {
    n = !n;
    mean = !mean;
    variance;
    stddev = sqrt variance;
    min = !mn;
    max = !mx;
  }

let mean xs = (summarize xs).mean
let variance xs = (summarize xs).variance
let stddev xs = (summarize xs).stddev

let standard_error xs =
  let s = summarize xs in
  s.stddev /. sqrt (float_of_int s.n)

let quantile xs p =
  check_nonempty "Stats.quantile" xs;
  if p < 0. || p > 1. then invalid_arg "Stats.quantile: p outside [0, 1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else
    let h = p *. float_of_int (n - 1) in
    let lo = int_of_float (floor h) in
    let hi = min (lo + 1) (n - 1) in
    let frac = h -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let wilson_interval ~successes ~trials ~z =
  if trials <= 0 then invalid_arg "Stats.wilson_interval: trials <= 0";
  if successes < 0 || successes > trials then
    invalid_arg "Stats.wilson_interval: successes outside [0, trials]";
  let n = float_of_int trials in
  let p = float_of_int successes /. n in
  let z2 = z *. z in
  let denom = 1. +. (z2 /. n) in
  let centre = (p +. (z2 /. (2. *. n))) /. denom in
  let half =
    z /. denom *. sqrt ((p *. (1. -. p) /. n) +. (z2 /. (4. *. n *. n)))
  in
  (max 0. (centre -. half), min 1. (centre +. half))

let mean_confidence_interval xs ~z =
  let s = summarize xs in
  let half = z *. s.stddev /. sqrt (float_of_int s.n) in
  (s.mean -. half, s.mean +. half)

let histogram xs ~bins ~lo ~hi =
  if bins <= 0 then invalid_arg "Stats.histogram: bins <= 0";
  if hi <= lo then invalid_arg "Stats.histogram: requires lo < hi";
  let counts = Array.make bins 0 in
  let width = (hi -. lo) /. float_of_int bins in
  Array.iter
    (fun x ->
      let i = int_of_float (floor ((x -. lo) /. width)) in
      let i = if i < 0 then 0 else if i >= bins then bins - 1 else i in
      counts.(i) <- counts.(i) + 1)
    xs;
  counts
