(** Descriptive statistics and confidence intervals. *)

type summary = {
  n : int;
  mean : float;
  variance : float;  (** Unbiased (n-1) sample variance. *)
  stddev : float;
  min : float;
  max : float;
}

val mean : float array -> float
(** @raise Invalid_argument on an empty array. *)

val variance : float array -> float
(** Unbiased sample variance (0. for fewer than two samples). *)

val stddev : float array -> float

val standard_error : float array -> float
(** [stddev / sqrt n]. *)

val summarize : float array -> summary
(** Single-pass Welford summary.  @raise Invalid_argument on empty. *)

val quantile : float array -> float -> float
(** [quantile xs p] for [p] in [[0, 1]]: linear interpolation between
    order statistics (type-7).  The input need not be sorted (a sorted
    copy is made).  @raise Invalid_argument on empty or [p] outside
    [[0, 1]]. *)

val wilson_interval : successes:int -> trials:int -> z:float -> float * float
(** Wilson score interval for a binomial proportion — the right interval
    for Monte-Carlo success rates, well behaved near 0 and 1.
    [z] is the normal critical value (1.96 for 95%).
    @raise Invalid_argument if [trials <= 0] or [successes] is outside
    [[0, trials]]. *)

val mean_confidence_interval : float array -> z:float -> float * float
(** Normal-approximation CI for a sample mean. *)

val histogram : float array -> bins:int -> lo:float -> hi:float -> int array
(** Counts per equal-width bin; values outside [[lo, hi)] are clamped to
    the edge bins.  @raise Invalid_argument if [bins <= 0] or [hi <= lo]. *)
