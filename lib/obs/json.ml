(* Minimal JSON emission helpers shared by the exporters.  Emission
   only — parsing lives with the validators, which must not trust the
   emitter's own code to check itself. *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let str s = "\"" ^ escape s ^ "\""

(* Floats print with enough digits to round-trip; non-finite values have
   no JSON representation and become null. *)
let num x =
  if Float.is_nan x || not (Float.is_finite x) then "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.17g" x

let int n = string_of_int n
