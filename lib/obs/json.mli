(** Tiny JSON {e emission} helpers used by every [Obs] exporter (and by
    callers embedding snapshots in larger documents).  No parser here:
    validators parse independently so the emitter cannot vouch for
    itself. *)

val escape : string -> string
(** Backslash-escape a string for use inside JSON quotes. *)

val str : string -> string
(** A quoted, escaped JSON string literal. *)

val num : float -> string
(** A JSON number; NaN/infinite map to [null] (JSON has no encoding for
    them). *)

val int : int -> string
