(* Minimal JSON reader shared by the serve request decoder and the
   bench/obs shape validators.  Parses the full document into a tree and
   offers path-labelled accessors that raise [Bad] with a human-readable
   location on shape mismatches.  (Emission lives in Json; parsing is
   kept separate so validators never trust the emitter to check
   itself.) *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

(* --- minimal JSON parser ------------------------------------------------ *)

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> bad "expected %C at offset %d" c !pos
  in
  let literal word value =
    String.iter expect word;
    value
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> bad "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some (('"' | '\\' | '/') as c) ->
          Buffer.add_char b c;
          advance ();
          go ()
        | Some 'n' ->
          Buffer.add_char b '\n';
          advance ();
          go ()
        | Some 't' ->
          Buffer.add_char b '\t';
          advance ();
          go ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            advance ()
          done;
          Buffer.add_char b '?';
          go ()
        | _ -> bad "bad escape in string")
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> bad "bad number at offset %d" start
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> bad "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then (
        advance ();
        Obj [])
      else
        let rec members acc =
          skip_ws ();
          let key_off = !pos in
          let key = parse_string () in
          (* Strict decoding: a repeated key would silently let the last
             duplicate win downstream (List.assoc_opt finds the first,
             other consumers the last) — reject it at the door. *)
          if List.mem_assoc key acc then
            bad "duplicate key %S at offset %d" key key_off;
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((key, v) :: acc))
          | _ -> bad "expected ',' or '}' at offset %d" !pos
        in
        members []
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then (
        advance ();
        Arr [])
      else
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> bad "expected ',' or ']' at offset %d" !pos
        in
        elements []
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then bad "trailing garbage at offset %d" !pos;
  v

(* --- path-labelled accessors -------------------------------------------- *)

let member path obj key =
  match obj with
  | Obj fields -> (
    match List.assoc_opt key fields with
    | Some v -> v
    | None -> bad "%s: missing key %S" path key)
  | _ -> bad "%s: expected an object" path

let member_opt obj key =
  match obj with Obj fields -> List.assoc_opt key fields | _ -> None

let as_num path = function Num f -> f | _ -> bad "%s: expected a number" path
let as_str path = function Str s -> s | _ -> bad "%s: expected a string" path
let as_bool path = function Bool b -> b | _ -> bad "%s: expected a bool" path
let as_arr path = function Arr l -> l | _ -> bad "%s: expected an array" path
let as_obj path = function Obj l -> l | _ -> bad "%s: expected an object" path

let num_or_null path = function
  | Null -> ()
  | Num _ -> ()
  | _ -> bad "%s: expected a number or null" path
