(** Minimal JSON {e parser} shared by the serve request decoder and the
    bench/obs shape validators (the emission half lives in {!Json}).
    Covers the subset every [htlc-*] document uses: objects, arrays,
    strings with the common escapes, numbers, booleans, null.  Accessors
    are path-labelled so shape errors read like
    ["kernels[3].ns_per_run: expected a number"]. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string
(** Raised by {!parse} and every accessor on malformed input, with a
    human-readable location. *)

val bad : ('a, unit, string, 'b) format4 -> 'a
(** [bad fmt ...] raises {!Bad} with a formatted message — for callers
    layering their own checks on top of the accessors. *)

val parse : string -> json
(** Parse a complete document; trailing garbage is an error, and so is
    a duplicate key within one object (strict decoding: no silent
    last-duplicate-wins).
    @raise Bad on malformed input. *)

(** {1 Path-labelled accessors}

    The [string] argument is a location label used in error messages,
    not a lookup path. *)

val member : string -> json -> string -> json
(** [member path obj key] — the value under [key]; raises when [obj] is
    not an object or lacks [key]. *)

val member_opt : json -> string -> json option
(** Optional lookup: [None] when absent or not an object. *)

val as_num : string -> json -> float
val as_str : string -> json -> string
val as_bool : string -> json -> bool
val as_arr : string -> json -> json list
val as_obj : string -> json -> (string * json) list

val num_or_null : string -> json -> unit
(** Accept a number or [null] (nullable measurements); raise otherwise. *)
