(* Global metrics registry: named counters, gauges, and log-bucketed
   histograms, safe under Numerics.Pool fan-out.

   Counters shard their cells by domain id so concurrent increments from
   pool workers never contend on one atomic; a read sums the shards.
   Histograms keep one atomic per power-of-two bucket (updates to a hot
   bucket are a single uncontended-in-practice fetch-and-add) and shard
   the float sum.  Registration is mutex-guarded and idempotent: asking
   for an existing name returns the existing metric, so modules can
   register at load time without coordination.

   Probes honour a global [enabled] flag: when disabled every update is
   a single atomic load and branch (a few ns), which is the contract the
   bench baseline's < 5% overhead budget relies on. *)

let shards = 8 (* power of two; domain ids hash into these cells *)

let shard () = (Domain.self () :> int) land (shards - 1)
[@@lint.allow nondet_domain
    "shard selection only routes an increment to one of the striped \
     cells; snapshots sum every cell, so which domain bumped which \
     cell is unobservable in any exported value"]

type counter = { c_name : string; cells : int Atomic.t array }
type gauge = { g_name : string; g_cell : float Atomic.t }

let n_buckets = 64

(* Bucket [i] covers values in [2^(i-31), 2^(i-30)); its upper bound is
   [2^(i-30)].  2^-30 s ~ 0.93 ns and 2^33 s ~ 272 y, so any latency or
   magnitude we record lands in a real bucket. *)
let bucket_offset = 30

(* Histogram sums are a sharded *plain* float array (stride-padded so
   shards sit on distinct cache lines), not [float Atomic.t] cells: a
   flat float store is unboxed, while every CAS on a float atomic
   allocates a fresh box — at one observation per request-stage that
   was a measurable slice of serve-path GC traffic.  Two domains whose
   ids collide mod [shards] can lose an increment to the read-add-write
   race (64-bit float array stores don't tear, so the cell stays a
   valid sample); the sum only feeds telemetry means, where a rare
   lost sample is harmless.  Bucket counts stay exact — they are int
   atomics. *)
let sum_stride = 8

type histogram = {
  h_name : string;
  buckets : int Atomic.t array; (* n_buckets cells *)
  sums : float array; (* sharded, stride-padded, benign races *)
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_mutex = Mutex.create ()
let enabled_flag = Atomic.make true
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let atomic_array n = Array.init n (fun _ -> Atomic.make 0)

let register name make unwrap kind =
  Mutex.lock registry_mutex;
  let m =
    match Hashtbl.find_opt registry name with
    | Some m -> m
    | None ->
      let m = make () in
      Hashtbl.replace registry name m;
      m
  in
  Mutex.unlock registry_mutex;
  match unwrap m with
  | Some v -> v
  | None ->
    invalid_arg
      (Printf.sprintf "Obs.Metrics: %S is already registered and is not a %s"
         name kind)

let counter name =
  register name
    (fun () -> Counter { c_name = name; cells = atomic_array shards })
    (function Counter c -> Some c | _ -> None)
    "counter"

let gauge name =
  register name
    (fun () -> Gauge { g_name = name; g_cell = Atomic.make 0. })
    (function Gauge g -> Some g | _ -> None)
    "gauge"

let histogram name =
  register name
    (fun () ->
      Histogram
        { h_name = name; buckets = atomic_array n_buckets;
          sums = Array.make (shards * sum_stride) 0. })
    (function Histogram h -> Some h | _ -> None)
    "histogram"

(* --- updates ------------------------------------------------------------ *)

let incr c = if enabled () then Atomic.incr c.cells.(shard ())

let add c n =
  if enabled () && n <> 0 then ignore (Atomic.fetch_and_add c.cells.(shard ()) n)

let set_gauge g v = if enabled () then Atomic.set g.g_cell v

let rec max_gauge g v =
  if enabled () then begin
    let seen = Atomic.get g.g_cell in
    if v > seen && not (Atomic.compare_and_set g.g_cell seen v) then
      max_gauge g v
  end

(* [Float.frexp]'s exponent, read straight from the IEEE-754 bits:
   frexp allocates a (mantissa, exponent) tuple, and [observe] runs
   once per request-stage on the serve hot path.  For a normal float
   the biased exponent field is [frexp_e + 1022]; subnormals map to a
   stand-in below every real bucket, which clamps to bucket 0 exactly
   as frexp's [e <= -1021] did. *)
let bucket_index v =
  if not (v > 0.) then 0
  else begin
    let biased =
      Int64.to_int (Int64.shift_right_logical (Int64.bits_of_float v) 52)
      land 0x7ff
    in
    let e = if biased = 0 then -1021 else biased - 1022 in
    let i = e + bucket_offset in
    if i < 0 then 0 else if i >= n_buckets then n_buckets - 1 else i
  end

let bucket_le i = Float.ldexp 1. (i - bucket_offset)

let observe h v =
  if enabled () then begin
    Atomic.incr h.buckets.(bucket_index v);
    let s = shard () * sum_stride in
    h.sums.(s) <- h.sums.(s) +. v
  end

(* --- reads -------------------------------------------------------------- *)

let counter_value c = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 c.cells
let counter_name c = c.c_name
let gauge_value g = Atomic.get g.g_cell
let gauge_name g = g.g_name
let reset_counter c = Array.iter (fun a -> Atomic.set a 0) c.cells

type hist_snapshot = {
  count : int;
  sum : float;
  buckets : (float * int) list; (* (upper bound, count), nonzero only *)
}

let hist_value (h : histogram) =
  let count = ref 0 and buckets = ref [] in
  for i = n_buckets - 1 downto 0 do
    let n = Atomic.get h.buckets.(i) in
    count := !count + n;
    if n > 0 then buckets := (bucket_le i, n) :: !buckets
  done;
  let sum = Array.fold_left ( +. ) 0. h.sums in
  { count = !count; sum; buckets = !buckets }

let hist_name h = h.h_name

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_snapshot) list;
}

let by_name (a, _) (b, _) = compare (a : string) b

let snapshot () =
  Mutex.lock registry_mutex;
  let metrics = Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry [] in
  Mutex.unlock registry_mutex;
  let cs = ref [] and gs = ref [] and hs = ref [] in
  List.iter
    (fun (name, m) ->
      match m with
      | Counter c -> cs := (name, counter_value c) :: !cs
      | Gauge g -> gs := (name, gauge_value g) :: !gs
      | Histogram h -> hs := (name, hist_value h) :: !hs)
    metrics;
  {
    counters = List.sort by_name !cs;
    gauges = List.sort by_name !gs;
    histograms = List.sort by_name !hs;
  }
[@@lint.allow hashtbl_order
  "the registry fold runs under registry_mutex and every section is \
   sorted by name before it escapes this function"]

let reset () =
  Mutex.lock registry_mutex;
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> Array.iter (fun a -> Atomic.set a 0) c.cells
      | Gauge g -> Atomic.set g.g_cell 0.
      | Histogram h ->
        Array.iter (fun a -> Atomic.set a 0) h.buckets;
        Array.fill h.sums 0 (Array.length h.sums) 0.)
    registry;
  Mutex.unlock registry_mutex
[@@lint.allow hashtbl_order
  "zeroing every cell is order-insensitive; the walk runs under \
   registry_mutex"]

(* --- exporters ---------------------------------------------------------- *)

let schema = "htlc-obs/v1"

let to_json s =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "{\"schema\":%s,\"type\":\"metrics\"" (Json.str schema));
  let obj key render entries =
    Buffer.add_string b (Printf.sprintf ",%s:{" (Json.str key));
    List.iteri
      (fun i (name, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Json.str name);
        Buffer.add_char b ':';
        Buffer.add_string b (render v))
      entries;
    Buffer.add_char b '}'
  in
  obj "counters" Json.int s.counters;
  obj "gauges" Json.num s.gauges;
  obj "histograms"
    (fun (h : hist_snapshot) ->
      let buckets =
        String.concat ","
          (List.map
             (fun (le, n) ->
               Printf.sprintf "{\"le\":%s,\"n\":%d}" (Json.num le) n)
             h.buckets)
      in
      Printf.sprintf "{\"count\":%d,\"sum\":%s,\"buckets\":[%s]}" h.count
        (Json.num h.sum) buckets)
    s.histograms;
  Buffer.add_char b '}';
  Buffer.contents b

(* Prometheus text exposition: dots become underscores, histogram
   buckets are cumulative with a trailing +Inf. *)
let prom_name name =
  String.map (fun c -> if c = '.' || c = '-' then '_' else c) name

let to_prometheus s =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      let n = prom_name name in
      Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n%s %d\n" n n v))
    s.counters;
  List.iter
    (fun (name, v) ->
      let n = prom_name name in
      Buffer.add_string b
        (Printf.sprintf "# TYPE %s gauge\n%s %s\n" n n (Json.num v)))
    s.gauges;
  List.iter
    (fun (name, (h : hist_snapshot)) ->
      let n = prom_name name in
      Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" n);
      let cum = ref 0 in
      List.iter
        (fun (le, count) ->
          cum := !cum + count;
          (* The top bucket is a clamp: every value beyond its bound is
             recorded there, so exporting it under a finite [le] would
             claim observations it cannot vouch for.  Fold it into the
             +Inf terminal instead (the cumulative count already
             includes it), keeping le-monotonicity and
             _bucket{+Inf} = _count exact per the exposition spec. *)
          if le < bucket_le (n_buckets - 1) then
            Buffer.add_string b
              (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" n (Json.num le) !cum))
        h.buckets;
      Buffer.add_string b
        (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n h.count);
      Buffer.add_string b (Printf.sprintf "%s_sum %s\n" n (Json.num h.sum));
      Buffer.add_string b (Printf.sprintf "%s_count %d\n" n h.count))
    s.histograms;
  Buffer.contents b
