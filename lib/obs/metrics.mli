(** Global metrics registry: named counters, gauges, and log-bucketed
    histograms, designed to stay cheap and correct under
    [Numerics.Pool] domain fan-out.

    - {b Counters} shard their cells by domain id (summed on read), so
      concurrent increments never contend on a single atomic.
    - {b Gauges} are a single atomic float with [set] and high-water
      [max] updates.
    - {b Histograms} are log-bucketed at powers of two (64 buckets,
      upper bounds [2^(i-30)] — sub-ns through centuries when the unit
      is seconds), one atomic per bucket plus a sharded sum.

    Registration is idempotent: requesting an existing name returns the
    existing metric (mismatched kinds raise [Invalid_argument]).  All
    update probes honour a global {!set_enabled} flag; when disabled
    each probe is one atomic load and a branch — a few nanoseconds —
    and no value changes. *)

type counter
type gauge
type histogram

val set_enabled : bool -> unit
(** Globally enable/disable every update probe (reads still work).
    Enabled by default. *)

val enabled : unit -> bool

(** {1 Registration (idempotent, thread-safe)} *)

val counter : string -> counter
val gauge : string -> gauge
val histogram : string -> histogram

(** {1 Updates (domain-safe)} *)

val incr : counter -> unit
val add : counter -> int -> unit
val set_gauge : gauge -> float -> unit

val max_gauge : gauge -> float -> unit
(** Raise the gauge to [v] if [v] exceeds the current value (CAS loop);
    used for high-water marks. *)

val observe : histogram -> float -> unit
(** Record a sample ([<= 0.] lands in the lowest bucket). *)

(** {1 Reads} *)

val counter_value : counter -> int
val counter_name : counter -> string
val gauge_value : gauge -> float
val gauge_name : gauge -> string

val reset_counter : counter -> unit
(** Zero one counter (e.g. [Swap.Cutoff.clear_caches]). *)

type hist_snapshot = {
  count : int;
  sum : float;
  buckets : (float * int) list;
      (** [(upper_bound, count)] for nonzero buckets, ascending. *)
}

val hist_value : histogram -> hist_snapshot
val hist_name : histogram -> string

type snapshot = {
  counters : (string * int) list;  (** Sorted by name. *)
  gauges : (string * float) list;
  histograms : (string * hist_snapshot) list;
}

val snapshot : unit -> snapshot
(** A consistent-enough point-in-time view of the whole registry
    (counters may be mid-update; each cell read is atomic). *)

val reset : unit -> unit
(** Zero every registered metric (tests); registrations survive. *)

(** {1 Exporters} *)

val schema : string
(** ["htlc-obs/v1"] — stamped into every exported document. *)

val to_json : snapshot -> string
(** One-line JSON object:
    [{"schema":"htlc-obs/v1","type":"metrics","counters":{...},
      "gauges":{...},"histograms":{...}}]. *)

val to_prometheus : snapshot -> string
(** Prometheus text exposition format (dots mapped to underscores).
    Histogram buckets are cumulative with a [+Inf] terminal equal to
    [_count]; the clamped top bucket (which absorbs every observation
    beyond its bound) is folded into [+Inf] rather than exported under
    a finite [le] it cannot vouch for. *)
