(* A process-wide non-decreasing clock.  The stdlib offers no monotonic
   clock, so we base it on [Unix.gettimeofday] and clamp: every reading
   passes through a global atomic high-water mark, so no caller ever
   observes time running backwards (NTP steps, VM migrations), on any
   domain.  Resolution is the gettimeofday microsecond. *)

let last_ns : int64 Atomic.t = Atomic.make 0L

let rec clamp t =
  let seen = Atomic.get last_ns in
  if Int64.compare t seen <= 0 then seen
  else if Atomic.compare_and_set last_ns seen t then t
  else clamp t

let now_ns () = clamp (Int64.of_float (Unix.gettimeofday () *. 1e9))
let now_s () = Int64.to_float (now_ns ()) /. 1e9

let elapsed_s ~since_ns =
  Int64.to_float (Int64.sub (now_ns ()) since_ns) /. 1e9
