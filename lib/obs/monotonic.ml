(* A process-wide non-decreasing clock.  The stdlib offers no monotonic
   clock, so we use the bechamel CLOCK_MONOTONIC stub: a noalloc
   external returning an unboxed int64 — one vDSO call, no float
   boxing, no runtime-lock release.  That matters because telemetry
   stamps it up to seven times per served request; the previous
   gettimeofday-plus-global-CAS implementation cost ~10% of serve
   throughput.  Linux guarantees CLOCK_MONOTONIC never decreases across
   cores, so no clamping is needed (NTP steps and VM wall-clock jumps
   don't move it).  The base is boot-relative: only differences are
   meaningful. *)

let now_ns () = Monotonic_clock.now ()

(* As a tagged [int]: the external returns an unboxed int64, so the
   conversion compiles without allocating the box an [int64] return
   value would need — this is the variant per-request stamps use.
   63 bits of nanoseconds since boot overflows after ~146 years. *)
let now_int_ns () = Int64.to_int (Monotonic_clock.now ())

let now_s () = Int64.to_float (now_ns ()) /. 1e9

let elapsed_s ~since_ns =
  Int64.to_float (Int64.sub (now_ns ()) since_ns) /. 1e9
