(** Process-wide non-decreasing clock (nanosecond units).  Backed by
    [CLOCK_MONOTONIC] through a noalloc external — one vDSO call, no
    allocation, no runtime-lock release — so it is cheap enough for
    per-request telemetry stamps.  Linux guarantees the reading never
    decreases across cores or domains, so span durations and latency
    samples are always nonnegative.  The base is boot-relative, not the
    epoch: only differences between readings are meaningful. *)

val now_ns : unit -> int64
(** Current [CLOCK_MONOTONIC] reading in nanoseconds. *)

val now_int_ns : unit -> int
(** {!now_ns} as a tagged [int] — no [int64] box is allocated, which
    is what per-request telemetry stamps want.  63 bits of boot-relative
    nanoseconds overflow after ~146 years. *)

val now_s : unit -> float
(** [now_ns] in seconds. *)

val elapsed_s : since_ns:int64 -> float
(** Seconds elapsed since a previous {!now_ns} reading ([>= 0.]). *)
