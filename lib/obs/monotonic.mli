(** Process-wide non-decreasing wall clock (nanosecond units,
    microsecond resolution).  Readings are clamped through a global
    atomic high-water mark, so across {e all} domains a later call never
    returns a smaller value than an earlier one — span durations and
    latency samples are always nonnegative. *)

val now_ns : unit -> int64
(** Current time in nanoseconds since the epoch, clamped non-decreasing. *)

val now_s : unit -> float
(** [now_ns] in seconds. *)

val elapsed_s : since_ns:int64 -> float
(** Seconds elapsed since a previous {!now_ns} reading ([>= 0.]). *)
