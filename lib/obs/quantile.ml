(* Exact-quantile reservoir: a sliding window of the most recent
   samples, sharded by domain id so concurrent [record]s from reactor
   shards or pool workers never contend on one cache line.

   Each shard is a power-of-two float ring written lock-free through an
   atomic per-shard cursor; a snapshot gathers the retained window
   (newest [capacity] samples per shard), sorts it, and reads exact
   order statistics from the sorted array.  Unlike the log-bucketed
   histograms in [Metrics] (factor-of-two resolution), quantiles read
   from this window are exact over the retained samples — which is what
   the serve `stats` endpoint exports as p50/p90/p99/p999.

   Concurrency contract: [record] is wait-free (one fetch-and-add plus
   an unboxed float store; float array stores cannot tear on 64-bit).
   A concurrent [snapshot] may observe a slot mid-overwrite and return
   a sample that is a few records stale — acceptable for telemetry,
   never a crash. *)

let shards = 8

let shard () = (Domain.self () :> int) land (shards - 1)
[@@lint.allow nondet_domain
    "shard selection only picks which ring buffer receives the \
     sample; snapshot merges and sorts all rings, so estimates do not \
     depend on the domain-to-ring assignment"]

type t = {
  q_name : string;
  per_shard : int; (* power of two *)
  rings : float array array; (* shards x per_shard *)
  cursors : int Atomic.t array; (* total records per shard *)
}

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let create ?(capacity = 4096) name =
  if capacity < shards then
    invalid_arg "Obs.Quantile.create: capacity must be >= 8";
  let per_shard = pow2_at_least (capacity / shards) 1 in
  {
    q_name = name;
    per_shard;
    rings = Array.init shards (fun _ -> Array.make per_shard 0.);
    cursors = Array.init shards (fun _ -> Atomic.make 0);
  }

let name t = t.q_name
let capacity t = t.per_shard * shards

let record t v =
  let s = shard () in
  let i = Atomic.fetch_and_add t.cursors.(s) 1 in
  t.rings.(s).(i land (t.per_shard - 1)) <- v

let count t = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t.cursors

let reset t = Array.iter (fun c -> Atomic.set c 0) t.cursors

let snapshot t =
  let total = ref 0 in
  let held = Array.make shards 0 in
  for s = 0 to shards - 1 do
    let n = min (Atomic.get t.cursors.(s)) t.per_shard in
    held.(s) <- n;
    total := !total + n
  done;
  let out = Array.make !total 0. in
  let k = ref 0 in
  for s = 0 to shards - 1 do
    for i = 0 to held.(s) - 1 do
      out.(!k) <- t.rings.(s).(i);
      incr k
    done
  done;
  Array.sort compare out;
  out

(* Nearest-rank on a sorted array: the smallest sample with at least a
   [q] fraction of the window at or below it. *)
let quantile_of_sorted sorted q =
  let n = Array.length sorted in
  if n = 0 then nan
  else begin
    let q = if q < 0. then 0. else if q > 1. then 1. else q in
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    let i = if rank < 1 then 0 else rank - 1 in
    sorted.(if i >= n then n - 1 else i)
  end

let quantile t q = quantile_of_sorted (snapshot t) q

type summary = {
  s_count : int; (* samples retained in the window *)
  s_p50 : float;
  s_p90 : float;
  s_p99 : float;
  s_p999 : float;
}

let summary t =
  let sorted = snapshot t in
  {
    s_count = Array.length sorted;
    s_p50 = quantile_of_sorted sorted 0.50;
    s_p90 = quantile_of_sorted sorted 0.90;
    s_p99 = quantile_of_sorted sorted 0.99;
    s_p999 = quantile_of_sorted sorted 0.999;
  }
