(** Exact-quantile reservoir over a sliding sample window.

    Complements the log-bucketed histograms in {!Metrics} (factor-of-two
    bucket resolution) with exact order statistics over the most recent
    [capacity] samples.  Writes are wait-free and sharded by domain id;
    reads sort the retained window, so they are O(n log n) and meant for
    the `stats`/export path, not per-request code. *)

type t

val create : ?capacity:int -> string -> t
(** [create name] makes a reservoir retaining roughly [capacity]
    (default 4096, rounded up to 8 x a power of two) recent samples.
    @raise Invalid_argument when [capacity < 8]. *)

val name : t -> string

val capacity : t -> int
(** Actual retained-window size after rounding. *)

val record : t -> float -> unit
(** Push one sample, overwriting the oldest in this domain's shard.
    Wait-free; never blocks a reactor shard. *)

val count : t -> int
(** Total samples ever recorded (not just retained). *)

val reset : t -> unit
(** Empty the window (counts reset; stale cells are ignored). *)

val snapshot : t -> float array
(** The retained window, sorted ascending.  A concurrent [record] may
    leave one sample a few records stale — telemetry tolerance. *)

val quantile : t -> float -> float
(** [quantile t q] is the exact nearest-rank [q]-quantile of the
    retained window ([q] clamped to [0,1]); [nan] when empty. *)

val quantile_of_sorted : float array -> float -> float
(** Nearest-rank quantile of an already-sorted sample array. *)

type summary = {
  s_count : int;  (** samples retained in the window *)
  s_p50 : float;
  s_p90 : float;
  s_p99 : float;
  s_p999 : float;
}

val summary : t -> summary
(** One sorted pass yielding the standard export quantiles
    (p50/p90/p99/p999); all [nan] when the window is empty. *)
