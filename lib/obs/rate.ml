(* Windowed event-rate meter: a ring of per-second counting slots over
   the Monotonic clock.

   [observe] stamps the current second into its ring slot and bumps the
   slot counter; [per_second] sums the slots whose stamps fall inside
   the requested trailing window.  Slot reset on second rollover is a
   benign race (two domains entering a fresh second may both zero the
   slot and one increment can be lost) — rates are telemetry, and the
   cumulative [total] counter stays exact. *)

type t = {
  slots : int; (* ring length in seconds, power of two *)
  stamps : int Atomic.t array; (* absolute second held by each slot *)
  counts : int Atomic.t array;
  total : int Atomic.t;
}

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let create ?(window_s = 64) () =
  if window_s < 1 then invalid_arg "Obs.Rate.create: window must be >= 1";
  let slots = pow2_at_least window_s 1 in
  {
    slots;
    stamps = Array.init slots (fun _ -> Atomic.make (-1));
    counts = Array.init slots (fun _ -> Atomic.make 0);
    total = Atomic.make 0;
  }

let second_of_ns ns = ns / 1_000_000_000

let observe_at t ~now_ns =
  let sec = second_of_ns now_ns in
  let slot = sec land (t.slots - 1) in
  if Atomic.get t.stamps.(slot) <> sec then begin
    (* Rollover: this slot last counted a second >= [slots] ago. *)
    Atomic.set t.counts.(slot) 0;
    Atomic.set t.stamps.(slot) sec
  end;
  Atomic.incr t.counts.(slot);
  Atomic.incr t.total

let observe t = observe_at t ~now_ns:(Monotonic.now_int_ns ())

let total t = Atomic.get t.total

let events_in_window t ~window_s ~now_ns =
  let window_s = if window_s < 1 then 1 else min window_s t.slots in
  let sec = second_of_ns now_ns in
  let n = ref 0 in
  for back = 0 to window_s - 1 do
    let s = sec - back in
    if s >= 0 then begin
      let slot = s land (t.slots - 1) in
      if Atomic.get t.stamps.(slot) = s then
        n := !n + Atomic.get t.counts.(slot)
    end
  done;
  !n

let per_second_at t ~window_s ~now_ns =
  float_of_int (events_in_window t ~window_s ~now_ns)
  /. float_of_int (max 1 (min window_s t.slots))

let per_second t ~window_s =
  per_second_at t ~window_s ~now_ns:(Monotonic.now_int_ns ())

let reset t =
  Array.iter (fun a -> Atomic.set a (-1)) t.stamps;
  Array.iter (fun a -> Atomic.set a 0) t.counts;
  Atomic.set t.total 0
