(** Windowed event-rate meter (events/s over a trailing window).

    A ring of per-second counting slots on the {!Monotonic} clock.
    [observe] is wait-free apart from a benign slot-reset race on
    second rollover (a rare lost increment in the windowed view); the
    cumulative {!total} stays exact. *)

type t

val create : ?window_s:int -> unit -> t
(** [create ()] meters rates over up to [window_s] (default 64,
    rounded up to a power of two) trailing seconds.
    @raise Invalid_argument when [window_s < 1]. *)

val observe : t -> unit
(** Count one event at the current monotonic time. *)

val observe_at : t -> now_ns:int -> unit
(** Count one event at an explicit timestamp as tagged-[int]
    nanoseconds, {!Monotonic.now_int_ns}'s units — the per-request
    caller already holds an [int] stamp, and an [int64] would box. *)

val total : t -> int
(** Events ever observed (exact). *)

val per_second : t -> window_s:int -> float
(** Mean events/s over the trailing [window_s] seconds (clamped to the
    ring length); 0 when nothing was observed in the window. *)

val per_second_at : t -> window_s:int -> now_ns:int -> float
(** [per_second] against an explicit "now" (tests). *)

val events_in_window : t -> window_s:int -> now_ns:int -> int
(** Raw event count inside the trailing window. *)

val reset : t -> unit
