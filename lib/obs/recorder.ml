(* Flight recorder: a bounded lock-free ring of the last N records.

   One logical ring of [capacity] slots, striped over 8 arrays so
   concurrent writers touch different cache lines.  Each push takes a
   global sequence number (one fetch-and-add) which alone determines
   the slot: stripe [seq mod 8], index [(seq / 8) mod per_stripe].
   Consecutive pushes therefore land on consecutive stripes, and a
   record is only overwritten by the push exactly [capacity] sequence
   numbers later — the ring always holds the last [capacity] completed
   pushes regardless of which domains produced them (a domain-keyed
   layout would cap a single-domain producer at 1/8 of the bound).

   Sequence numbers and records live in parallel arrays rather than
   [(int * 'a)] pairs: a push then allocates only the [Some] box, not
   a tuple as well — it runs once per served request, and everything
   stored in these major-heap arrays gets promoted.

   Readers are not synchronised against writers: a dump taken while
   pushes are in flight may miss a record mid-store or pair a slot's
   fresh sequence number with its previous record (pointer and
   immediate stores don't tear, so each half is always whole).  The
   intended use — dump on worker crash, chaos-gate failure, or an
   explicit trigger — reads a quiesced or nearly-quiesced ring. *)

let stripes = 8

type 'a t = {
  per_stripe : int; (* power of two *)
  seqs : int array array; (* stripes x per_stripe, -1 = empty *)
  vals : 'a option array array;
  seq : int Atomic.t; (* global push count / next sequence number *)
}

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let create ?(capacity = 512) () =
  if capacity < stripes then
    invalid_arg "Obs.Recorder.create: capacity must be >= 8";
  let per_stripe = pow2_at_least (capacity / stripes) 1 in
  {
    per_stripe;
    seqs = Array.init stripes (fun _ -> Array.make per_stripe (-1));
    vals = Array.init stripes (fun _ -> Array.make per_stripe None);
    seq = Atomic.make 0;
  }

let capacity t = t.per_stripe * stripes

let push t v =
  let seq = Atomic.fetch_and_add t.seq 1 in
  let stripe = seq land (stripes - 1)
  and i = (seq lsr 3) land (t.per_stripe - 1) in
  t.seqs.(stripe).(i) <- seq;
  t.vals.(stripe).(i) <- Some v

(* In-place variant for mutable records: instead of storing the
   caller's allocation (which the ring then retains across minor
   collections, promoting every record pushed at steady state), the
   slot keeps one record for its lifetime — [blank] creates it on the
   slot's first use, [copy v slot] overwrites its fields on every
   reuse.  After the slot warms up a push allocates and promotes
   nothing (pass top-level [blank]/[copy] so no closure is built
   either).  The caller's own record never enters the ring, so it may
   be pooled and reused the moment [push_copy] returns. *)
let push_copy t ~blank ~copy v =
  let seq = Atomic.fetch_and_add t.seq 1 in
  let stripe = seq land (stripes - 1)
  and i = (seq lsr 3) land (t.per_stripe - 1) in
  (match t.vals.(stripe).(i) with
  | Some r -> copy v r
  | None ->
    let r = blank () in
    copy v r;
    t.vals.(stripe).(i) <- Some r);
  t.seqs.(stripe).(i) <- seq

let pushed t = Atomic.get t.seq

let recorded t = min (pushed t) (capacity t)
let dropped t = pushed t - recorded t

let dump t =
  let out = ref [] in
  for stripe = 0 to stripes - 1 do
    for i = 0 to t.per_stripe - 1 do
      match t.vals.(stripe).(i) with
      | Some v when t.seqs.(stripe).(i) >= 0 ->
        out := (t.seqs.(stripe).(i), v) :: !out
      | _ -> ()
    done
  done;
  List.sort (fun (a, _) (b, _) -> compare (a : int) b) !out

let reset t =
  Array.iter (fun s -> Array.fill s 0 (Array.length s) (-1)) t.seqs;
  Array.iter (fun v -> Array.fill v 0 (Array.length v) None) t.vals;
  Atomic.set t.seq 0
