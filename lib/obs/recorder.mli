(** Flight recorder: a bounded lock-free ring of the last N records.

    Pushes are wait-free (one fetch-and-add and two stores) and the slot
    is a pure function of the global sequence number, so the ring holds
    the last [capacity] pushes regardless of which domains produced
    them; once it wraps, the oldest record is silently overwritten —
    {!dropped} counts how many were lost.  {!dump} recovers records in
    global completion order via per-record sequence numbers.  Dumps are
    not synchronised against writers (a record being pushed during a
    dump may be missed); the intended dump triggers — worker crash,
    chaos-gate failure, explicit request — read a quiesced ring. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [create ()] holds roughly [capacity] (default 512, rounded up to
    8 x a power of two) most-recent records.
    @raise Invalid_argument when [capacity < 8]. *)

val capacity : 'a t -> int
(** Actual bound after rounding. *)

val push : 'a t -> 'a -> unit
(** Record one value, overwriting the push [capacity] sequence numbers
    older. *)

val push_copy :
  'a t -> blank:(unit -> 'a) -> copy:('a -> 'a -> unit) -> 'a -> unit
(** [push_copy t ~blank ~copy v] records [v] by overwriting the slot's
    own long-lived record ([blank] creates it on the slot's first use,
    [copy v slot] transfers the fields) instead of retaining [v].
    Once the ring is warm a push allocates and promotes nothing, and
    the caller may recycle [v] immediately.  Pass top-level functions
    for [blank]/[copy] to avoid building closures per push.  Records
    returned by {!dump} are the live slot records — format them before
    pushing resumes. *)

val pushed : 'a t -> int
(** Total records ever pushed (exact). *)

val recorded : 'a t -> int
(** Records currently held ([<= capacity]). *)

val dropped : 'a t -> int
(** Records lost to overwriting ([pushed - recorded]). *)

val dump : 'a t -> (int * 'a) list
(** Held records as [(sequence, record)], ascending sequence — i.e.
    oldest first, the order they completed. *)

val reset : 'a t -> unit
