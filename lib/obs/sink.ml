(* Structured event export.  An event is a (timestamp, kind, fields)
   triple; sinks decide where it goes: nowhere (null — a constructor
   match and return, a few ns), an in-memory list (protocol runners
   rebuild their public traces from it), or an out_channel as JSONL
   stamped with the htlc-obs/v1 schema.

   Timestamps are caller-supplied floats: simulators pass simulated
   hours, services would pass wall-clock seconds.  The sink does not
   interpret them. *)

type value = Str of string | Num of float | Int of int | Bool of bool

type event = { ts : float; kind : string; fields : (string * value) list }

type t =
  | Null
  | Memory of { mutable rev_events : event list; mutex : Mutex.t }
  | Channel of { oc : out_channel; owned : bool; mutex : Mutex.t }

let null = Null
let memory () = Memory { rev_events = []; mutex = Mutex.create () }
let channel oc = Channel { oc; owned = false; mutex = Mutex.create () }

let file path =
  Channel { oc = open_out path; owned = true; mutex = Mutex.create () }

let is_null = function Null -> true | _ -> false

let value_to_json = function
  | Str s -> Json.str s
  | Num x -> Json.num x
  | Int n -> Json.int n
  | Bool b -> if b then "true" else "false"

let event_to_json e =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "{\"schema\":%s,\"type\":\"event\",\"ts\":%s,\"kind\":%s"
       (Json.str Metrics.schema) (Json.num e.ts) (Json.str e.kind));
  Buffer.add_string b ",\"fields\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Json.str k);
      Buffer.add_char b ':';
      Buffer.add_string b (value_to_json v))
    e.fields;
  Buffer.add_string b "}}";
  Buffer.contents b

let emit t ~ts ~kind fields =
  match t with
  | Null -> ()
  | Memory m ->
    Mutex.lock m.mutex;
    m.rev_events <- { ts; kind; fields } :: m.rev_events;
    Mutex.unlock m.mutex
  | Channel c ->
    Mutex.lock c.mutex;
    output_string c.oc (event_to_json { ts; kind; fields });
    output_char c.oc '\n';
    Mutex.unlock c.mutex

let events = function
  | Null | Channel _ -> []
  | Memory m ->
    Mutex.lock m.mutex;
    let es = List.rev m.rev_events in
    Mutex.unlock m.mutex;
    es

let close = function
  | Null | Memory _ -> ()
  | Channel c ->
    Mutex.lock c.mutex;
    if c.owned then close_out c.oc else flush c.oc;
    Mutex.unlock c.mutex
