(** Structured event export: a sink receives [(ts, kind, fields)]
    events and either discards them ({!null} — a few nanoseconds per
    probe), buffers them in order ({!memory}), or writes them as JSONL
    stamped ["htlc-obs/v1"] ({!channel}/{!file}).

    Timestamps are caller-supplied and uninterpreted — the chain
    simulator passes simulated hours, a service would pass wall-clock
    seconds. *)

type value = Str of string | Num of float | Int of int | Bool of bool

type event = { ts : float; kind : string; fields : (string * value) list }

type t

val null : t
(** Discards everything; the disabled path. *)

val memory : unit -> t
(** Buffers events in emission order; read back with {!events}. *)

val channel : out_channel -> t
(** Writes JSONL to a caller-owned channel ({!close} flushes it). *)

val file : string -> t
(** Opens [path] for writing; {!close} closes it. *)

val is_null : t -> bool
(** Hot paths can skip building the field list entirely. *)

val emit : t -> ts:float -> kind:string -> (string * value) list -> unit
(** Thread-safe. *)

val events : t -> event list
(** Buffered events (memory sinks; [[]] otherwise), oldest first. *)

val event_to_json : event -> string
(** One JSON object (no newline):
    [{"schema":"htlc-obs/v1","type":"event","ts":..,"kind":..,
      "fields":{..}}]. *)

val close : t -> unit
(** Flush/close underlying resources; no-op for null/memory. *)
