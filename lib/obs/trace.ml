(* Span tracing over the Monotonic clock.

   Tracing is opt-in (disabled by default): when disabled, [with_span]
   costs one atomic load and runs the body with a shared dummy span —
   no clock reads, no allocation.  When enabled, spans carry an id, an
   optional parent (explicit, or implicit from the per-domain stack
   that [with_span] maintains), start/stop timestamps, and string
   annotations; finished spans land in a bounded ring buffer, so a
   long-running process can trace forever in constant memory (oldest
   spans are overwritten). *)

type span = {
  id : int;
  parent : int; (* -1 = root *)
  name : string;
  start_ns : int64;
  mutable stop_ns : int64; (* -1 until finished *)
  mutable annotations : (string * string) list; (* reverse order *)
  real : bool;
}

type finished = {
  f_id : int;
  f_parent : int option;
  f_name : string;
  f_start_ns : int64;
  f_stop_ns : int64;
  f_annotations : (string * string) list;
}

let dummy =
  { id = -1; parent = -1; name = ""; start_ns = 0L; stop_ns = 0L;
    annotations = []; real = false }

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b
let next_id = Atomic.make 0

(* --- bounded ring of finished spans ------------------------------------- *)

let ring_mutex = Mutex.create ()
let ring = ref (Array.make 4096 None)
let next_slot = ref 0
let stored = ref 0

(* The ring drops (overwrites) the oldest span once full.  That loss
   used to be silent; now it is counted — exactly, in [dropped_total]
   (reset by [clear]/[set_capacity]), and cumulatively in the
   registry-visible "trace.dropped" counter so snapshots and the serve
   `stats` endpoint can surface it. *)
let dropped_total = Atomic.make 0
let m_dropped = Metrics.counter "trace.dropped"
let dropped () = Atomic.get dropped_total

let set_capacity n =
  if n < 1 then invalid_arg "Obs.Trace.set_capacity: capacity must be >= 1";
  Mutex.lock ring_mutex;
  ring := Array.make n None;
  next_slot := 0;
  stored := 0;
  Atomic.set dropped_total 0;
  Mutex.unlock ring_mutex

let clear () =
  Mutex.lock ring_mutex;
  Array.fill !ring 0 (Array.length !ring) None;
  next_slot := 0;
  stored := 0;
  Atomic.set dropped_total 0;
  Mutex.unlock ring_mutex

let push_finished f =
  Mutex.lock ring_mutex;
  let cap = Array.length !ring in
  if !stored = cap then begin
    Atomic.incr dropped_total;
    Metrics.incr m_dropped
  end;
  !ring.(!next_slot) <- Some f;
  next_slot := (!next_slot + 1) mod cap;
  if !stored < cap then incr stored;
  Mutex.unlock ring_mutex

let spans () =
  Mutex.lock ring_mutex;
  let cap = Array.length !ring in
  let start = (!next_slot - !stored + (2 * cap)) mod cap in
  let out = ref [] in
  for i = !stored - 1 downto 0 do
    match !ring.((start + i) mod cap) with
    | Some f -> out := f :: !out
    | None -> ()
  done;
  Mutex.unlock ring_mutex;
  !out

(* --- span lifecycle ----------------------------------------------------- *)

(* Per-domain stack of open spans, giving [with_span] implicit
   parent/child nesting without any cross-domain coordination. *)
let stack_key : span list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let start ?parent name =
  if not (enabled ()) then dummy
  else begin
    let pid =
      match parent with
      | Some p -> if p.real then p.id else -1
      | None -> (
        match !(Domain.DLS.get stack_key) with
        | s :: _ -> s.id
        | [] -> -1)
    in
    {
      id = Atomic.fetch_and_add next_id 1;
      parent = pid;
      name;
      start_ns = Monotonic.now_ns ();
      stop_ns = -1L;
      annotations = [];
      real = true;
    }
  end

let annotate s key value =
  if s.real then s.annotations <- (key, value) :: s.annotations

let finish s =
  if s.real && Int64.compare s.stop_ns 0L < 0 then begin
    s.stop_ns <- Monotonic.now_ns ();
    push_finished
      {
        f_id = s.id;
        f_parent = (if s.parent >= 0 then Some s.parent else None);
        f_name = s.name;
        f_start_ns = s.start_ns;
        f_stop_ns = s.stop_ns;
        f_annotations = List.rev s.annotations;
      }
  end

(* Push an already-timed span straight into the ring, bypassing the
   global [enabled] gate.  Used by samplers (e.g. the serve telemetry
   layer) that keep their own admission policy: the caller decided this
   request deserves a span, whether or not ambient tracing is on. *)
let emit ?parent ~name ~start_ns ~stop_ns ~annotations () =
  let id = Atomic.fetch_and_add next_id 1 in
  push_finished
    {
      f_id = id;
      f_parent = parent;
      f_name = name;
      f_start_ns = start_ns;
      f_stop_ns = stop_ns;
      f_annotations = annotations;
    };
  id

let with_span ?parent name f =
  if not (enabled ()) then f dummy
  else begin
    let s = start ?parent name in
    let stack = Domain.DLS.get stack_key in
    stack := s :: !stack;
    Fun.protect
      ~finally:(fun () ->
        (match !stack with _ :: rest -> stack := rest | [] -> ());
        finish s)
      (fun () -> f s)
  end

(* --- export ------------------------------------------------------------- *)

let to_jsonl (f : finished) =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "{\"schema\":%s,\"type\":\"span\",\"id\":%d,\"parent\":%s"
       (Json.str Metrics.schema) f.f_id
       (match f.f_parent with Some p -> string_of_int p | None -> "null"));
  Buffer.add_string b
    (Printf.sprintf ",\"name\":%s,\"start_ns\":%Ld,\"dur_ns\":%Ld"
       (Json.str f.f_name) f.f_start_ns
       (Int64.sub f.f_stop_ns f.f_start_ns));
  Buffer.add_string b ",\"annotations\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Json.str k);
      Buffer.add_char b ':';
      Buffer.add_string b (Json.str v))
    f.f_annotations;
  Buffer.add_string b "}}";
  Buffer.contents b

let write_jsonl oc =
  List.iter
    (fun f ->
      output_string oc (to_jsonl f);
      output_char oc '\n')
    (spans ())
