(** Span tracing over the {!Monotonic} clock.

    Disabled by default: {!with_span} then costs one atomic load and
    runs its body with a shared dummy span (annotations and [finish] on
    it are no-ops).  When enabled, spans record name, start/duration,
    string annotations, and parent/child nesting — explicit via
    [?parent], or implicit through a per-domain stack maintained by
    {!with_span}.  Finished spans land in a bounded ring buffer
    (default 4096), so tracing never grows without bound. *)

type span

type finished = {
  f_id : int;
  f_parent : int option;
  f_name : string;
  f_start_ns : int64;
  f_stop_ns : int64;
  f_annotations : (string * string) list;
}

val set_enabled : bool -> unit
(** Turn tracing on/off globally (off by default). *)

val enabled : unit -> bool

val with_span : ?parent:span -> string -> (span -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span: started now, finished
    when [f] returns or raises.  Nested [with_span] calls on the same
    domain parent automatically. *)

val start : ?parent:span -> string -> span
(** Manual lifecycle (no implicit nesting): pair with {!finish}. *)

val finish : span -> unit
(** Stop the clock and push the span into the ring; idempotent. *)

val annotate : span -> string -> string -> unit
(** Attach a key/value annotation (kept in insertion order). *)

val emit :
  ?parent:int ->
  name:string ->
  start_ns:int64 ->
  stop_ns:int64 ->
  annotations:(string * string) list ->
  unit ->
  int
(** Push an already-timed span into the ring, bypassing the global
    {!enabled} gate, and return its id.  For samplers that keep their
    own admission policy (e.g. the serve telemetry layer promoting a
    deterministic ~1/256 of requests to spans). *)

val spans : unit -> finished list
(** Ring contents, oldest first. *)

val dropped : unit -> int
(** Spans lost to ring overwrite since the last {!clear} /
    {!set_capacity} (the cumulative count is also surfaced as the
    ["trace.dropped"] counter in {!Metrics} snapshots). *)

val clear : unit -> unit

val set_capacity : int -> unit
(** Resize the ring (drops current contents).
    @raise Invalid_argument when [< 1]. *)

val to_jsonl : finished -> string
(** One JSON object (no newline):
    [{"schema":"htlc-obs/v1","type":"span","id":..,"parent":..,
      "name":..,"start_ns":..,"dur_ns":..,"annotations":{..}}]. *)

val write_jsonl : out_channel -> unit
(** Dump the ring as JSONL, one span per line, oldest first. *)
