(* htlc-serve/b1: compact length-prefixed binary request codec.

   Wire layout (all integers big-endian):

   - A connection opts in by sending the 4-byte magic ["HSB1"] as its
     very first bytes; everything after the magic is frames.  (The JSON
     codec's first byte is never 'H' — canonical requests start with
     '{' — so the reactor can sniff the codec from the first bytes.)
   - Frame: [u32 payload_len][payload], [payload_len <= max_frame].
   - Request payload:
       [u8 kind]      1=cutoffs 2=success_rate 3=sweep 4=quote 5=health
                      6=stats 7=route
       [u8 flags]     bit0 = id present, bit1 = params present
       [u16 id_len][id bytes]                    (if bit0)
       [10 x f64]     alpha_a alpha_b r_a r_b tau_a tau_b eps_b p0 mu
                      sigma                      (if bit1)
       kind fields:
         cutoffs       [f64 p_star]
         success_rate  [f64 p_star][f64 q]
         sweep         [f64 q][f64 lo][f64 hi][u32 n]
         quote         [f64 mu][f64 sigma][f64 spot]
         health        (none)
         stats         (none)
         route         [u16 from_len][from][u16 to_len][to][u8 max_hops]
   - Response frame: [u32 len][body] where [body] is byte-for-byte the
     canonical htlc-serve/v1 JSON response (sans trailing newline).

   Re-using the JSON response bytes is deliberate: responses stay pure
   functions of the canonical request, both codecs share one cache and
   one byte-identity gate, and a binary client can still introspect
   errors.  The saving is on the request path (no JSON parse, floats
   at full precision in 8 bytes) and in framing (no newline scan).

   Decoding applies the same value checks as [Request.decode] so both
   codecs answer identical [invalid_params]/[parse_error] taxonomies;
   omitted params decode to the {e physically} shared
   [Swap.Params.defaults], preserving [Request.key]'s memoised fast
   path. *)

let magic = "HSB1"
let max_frame = 1 lsl 20

(* --- encoding ------------------------------------------------------------ *)

let add_u16 b v =
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (v land 0xff))

let add_u32 b v =
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (v land 0xff))

let add_f64 b x = Buffer.add_int64_be b (Int64.bits_of_float x)

let kind_tag = function
  | Request.Cutoffs _ -> 1
  | Request.Success_rate _ -> 2
  | Request.Sweep _ -> 3
  | Request.Quote _ -> 4
  | Request.Health -> 5
  | Request.Stats -> 6
  | Request.Route _ -> 7

let add_params b (p : Swap.Params.t) =
  add_f64 b p.alice.alpha;
  add_f64 b p.bob.alpha;
  add_f64 b p.alice.r;
  add_f64 b p.bob.r;
  add_f64 b p.tau_a;
  add_f64 b p.tau_b;
  add_f64 b p.eps_b;
  add_f64 b p.p0;
  add_f64 b p.mu;
  add_f64 b p.sigma

let body_params = function
  | Request.Cutoffs { params; _ }
  | Request.Success_rate { params; _ }
  | Request.Sweep { params; _ } ->
    (* The shared defaults record travels as "omitted" — the decoder
       resurrects the same physical value. *)
    if params == Swap.Params.defaults then None else Some params
  | Request.Quote _ | Request.Route _ | Request.Health | Request.Stats -> None

let encode_payload (req : Request.t) =
  let b = Buffer.create 64 in
  Buffer.add_char b (Char.chr (kind_tag req.body));
  let params = body_params req.body in
  let flags =
    (match req.id with Some _ -> 1 | None -> 0)
    lor match params with Some _ -> 2 | None -> 0
  in
  Buffer.add_char b (Char.chr flags);
  (match req.id with
  | None -> ()
  | Some id ->
    if String.length id > 0xffff then
      invalid_arg "Binary.encode_payload: id longer than 65535 bytes";
    add_u16 b (String.length id);
    Buffer.add_string b id);
  (match params with None -> () | Some p -> add_params b p);
  (match req.body with
  | Request.Cutoffs { p_star; _ } -> add_f64 b p_star
  | Request.Success_rate { p_star; q; _ } ->
    add_f64 b p_star;
    add_f64 b q
  | Request.Sweep { q; spec; _ } ->
    add_f64 b q;
    add_f64 b spec.lo;
    add_f64 b spec.hi;
    add_u32 b spec.n
  | Request.Quote { mu; sigma; spot } ->
    add_f64 b mu;
    add_f64 b sigma;
    add_f64 b spot
  | Request.Route { from_tok; to_tok; max_hops } ->
    let add_token name tok =
      if String.length tok > 0xffff then
        invalid_arg
          (Printf.sprintf
             "Binary.encode_payload: %s token longer than 65535 bytes" name);
      add_u16 b (String.length tok);
      Buffer.add_string b tok
    in
    add_token "from" from_tok;
    add_token "to" to_tok;
    Buffer.add_char b (Char.chr (max_hops land 0xff))
  | Request.Health | Request.Stats -> ());
  Buffer.contents b

let frame payload =
  let n = String.length payload in
  if n > max_frame then invalid_arg "Binary.frame: payload exceeds max_frame";
  let b = Buffer.create (n + 4) in
  add_u32 b n;
  Buffer.add_string b payload;
  Buffer.contents b

let encode_request req = frame (encode_payload req)
let frame_response body = frame body

(* --- payload decoding ---------------------------------------------------- *)

exception Reject of string * string
(* (code, message): parse_error for malformed bytes, invalid_params for
   well-formed bytes carrying out-of-domain values — the same split
   [Request.decode] makes. *)

let parse_error fmt =
  Printf.ksprintf (fun m -> raise (Reject ("parse_error", m))) fmt

let invalid fmt =
  Printf.ksprintf (fun m -> raise (Reject ("invalid_params", m))) fmt

type cursor = { s : string; mutable pos : int }

let u8 c =
  if c.pos + 1 > String.length c.s then parse_error "truncated payload";
  let v = Char.code c.s.[c.pos] in
  c.pos <- c.pos + 1;
  v

let u16 c =
  if c.pos + 2 > String.length c.s then parse_error "truncated payload";
  let v = (Char.code c.s.[c.pos] lsl 8) lor Char.code c.s.[c.pos + 1] in
  c.pos <- c.pos + 2;
  v

let u32 c =
  if c.pos + 4 > String.length c.s then parse_error "truncated payload";
  let b i = Char.code c.s.[c.pos + i] in
  (* Read before bumping: [b] captures [c.pos] by reference. *)
  let v = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  c.pos <- c.pos + 4;
  v

let f64 c =
  if c.pos + 8 > String.length c.s then parse_error "truncated payload";
  let v = Int64.float_of_bits (String.get_int64_be c.s c.pos) in
  c.pos <- c.pos + 8;
  v

let take c n =
  if c.pos + n > String.length c.s then parse_error "truncated payload";
  let v = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  v

let finite path x =
  if not (Float.is_finite x) then invalid "%s: must be finite" path;
  x

let positive path x =
  if not (x > 0.) then invalid "%s: must be > 0" path;
  x

let decode_params c =
  let alpha_a = finite "params.alpha_a" (f64 c) in
  let alpha_b = finite "params.alpha_b" (f64 c) in
  let r_a = finite "params.r_a" (f64 c) in
  let r_b = finite "params.r_b" (f64 c) in
  let tau_a = finite "params.tau_a" (f64 c) in
  let tau_b = finite "params.tau_b" (f64 c) in
  let eps_b = finite "params.eps_b" (f64 c) in
  let p0 = finite "params.p0" (f64 c) in
  let mu = finite "params.mu" (f64 c) in
  let sigma = finite "params.sigma" (f64 c) in
  let p =
    {
      Swap.Params.alice = { Swap.Params.alpha = alpha_a; r = r_a };
      bob = { Swap.Params.alpha = alpha_b; r = r_b };
      tau_a;
      tau_b;
      eps_b;
      p0;
      mu;
      sigma;
    }
  in
  (match Swap.Params.validate p with
  | Ok () -> ()
  | Error msg -> invalid "params: %s" msg);
  p

let decode_q c =
  let q = finite "q" (f64 c) in
  if q < 0. then invalid "q: must be >= 0";
  q

let decode_payload payload : (Request.t, Request.error) result =
  let c = { s = payload; pos = 0 } in
  let err_id = ref None in
  match
    let tag = u8 c in
    let flags = u8 c in
    if flags land lnot 3 <> 0 then parse_error "unknown flags 0x%02x" flags;
    let id = if flags land 1 <> 0 then Some (take c (u16 c)) else None in
    err_id := id;
    let params () =
      if flags land 2 <> 0 then decode_params c else Swap.Params.defaults
    in
    let body =
      match tag with
      | 1 ->
        let params = params () in
        let p_star = positive "p_star" (finite "p_star" (f64 c)) in
        Request.Cutoffs { params; p_star }
      | 2 ->
        let params = params () in
        let p_star = positive "p_star" (finite "p_star" (f64 c)) in
        let q = decode_q c in
        Request.Success_rate { params; p_star; q }
      | 3 ->
        let params = params () in
        let q = decode_q c in
        let lo = positive "lo" (finite "lo" (f64 c)) in
        let hi = finite "hi" (f64 c) in
        if hi <= lo then invalid "hi: must be > lo";
        let n = u32 c in
        if n < 2 then invalid "n: must be an integer >= 2";
        Request.Sweep { params; q; spec = { Request.lo; hi; n } }
      | 4 ->
        if flags land 2 <> 0 then parse_error "quote carries no params block";
        let mu = finite "mu" (f64 c) in
        let sigma = finite "sigma" (f64 c) in
        let spot = finite "spot" (f64 c) in
        Request.Quote { mu; sigma; spot }
      | 5 ->
        if flags land 2 <> 0 then parse_error "health carries no params block";
        Request.Health
      | 6 ->
        if flags land 2 <> 0 then parse_error "stats carries no params block";
        Request.Stats
      | 7 ->
        if flags land 2 <> 0 then parse_error "route carries no params block";
        let from_tok = take c (u16 c) in
        let to_tok = take c (u16 c) in
        if from_tok = "" then invalid "from: must be a non-empty token";
        if to_tok = "" then invalid "to: must be a non-empty token";
        if to_tok = from_tok then invalid "to: must differ from \"from\"";
        let max_hops = u8 c in
        if max_hops < 1 || max_hops > 16 then
          invalid "max_hops: must be an integer in [1, 16]";
        Request.Route { from_tok; to_tok; max_hops }
      | t -> parse_error "unknown kind tag %d" t
    in
    if c.pos <> String.length payload then
      parse_error "trailing bytes after payload";
    { Request.id; body }
  with
  | req -> Ok req
  | exception Reject (code, message) ->
    Error { Request.err_id = !err_id; code; message }

(* --- incremental framing ------------------------------------------------- *)

let decode_frame buf =
  if Iobuf.length buf < 4 then `Need_more
  else begin
    let n = Iobuf.get_u32_be buf 0 in
    if n > max_frame then `Too_large n
    else if Iobuf.length buf < 4 + n then `Need_more
    else begin
      let payload = Iobuf.sub buf 4 n in
      Iobuf.consume buf (4 + n);
      `Frame payload
    end
  end

(* --- blocking channel helpers (clients, tests, bench) -------------------- *)

let input_frame ic =
  match really_input_string ic 4 with
  | exception End_of_file -> None
  | hdr ->
    let b i = Char.code hdr.[i] in
    let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
    if n > max_frame then
      raise (Failure (Printf.sprintf "Binary.input_frame: oversized frame %d" n));
    (* EOF inside the payload is a torn frame: that is an End_of_file
       the caller must treat as corruption, not a clean close. *)
    Some (really_input_string ic n)
