(** [htlc-serve/b1]: compact length-prefixed binary request codec.

    A connection opts in by sending {!magic} as its first 4 bytes; after
    that, requests travel as [u32-length-prefixed] binary payloads
    (kind tag, flags, optional id, optional params as raw IEEE-754
    doubles, kind fields) and every response frame carries the {e same
    canonical htlc-serve/v1 JSON body} the JSON codec would emit, minus
    the trailing newline.  Responses therefore stay pure in the
    canonical request bytes: both codecs share one cache and one
    byte-identity gate.

    Decoding applies the same value checks as [Request.decode], so the
    two codecs answer identical [parse_error] / [invalid_params]
    taxonomies; a payload without a params block decodes to the
    physically shared [Swap.Params.defaults]. *)

val magic : string
(** ["HSB1"] — never a prefix of canonical JSON, which starts ['{']. *)

val max_frame : int
(** Maximum payload bytes per frame (1 MiB); larger headers are a
    protocol violation and the peer should drop the connection. *)

val encode_payload : Request.t -> string
(** Unframed request payload (golden-vector tests pin these bytes).
    @raise Invalid_argument when the id exceeds 65535 bytes. *)

val encode_request : Request.t -> string
(** [frame (encode_payload req)] — what a client writes per request
    (after the one-time {!magic}). *)

val frame_response : string -> string
(** Length-prefix a response body for the wire. *)

val decode_payload : string -> (Request.t, Request.error) result
(** Strict decode of one request payload.  [Error] mirrors the JSON
    taxonomy: malformed bytes (truncation, unknown tag/flags, trailing
    garbage) are [parse_error]; well-formed bytes with out-of-domain
    values are [invalid_params].  A decodable id is echoed in
    [err_id] either way. *)

val decode_frame : Iobuf.t -> [ `Frame of string | `Need_more | `Too_large of int ]
(** Incremental framing over a read buffer: [`Frame payload] consumes
    one whole frame; [`Need_more] leaves the buffer untouched;
    [`Too_large n] reports a header exceeding {!max_frame} (drop the
    connection — resynchronisation is impossible). *)

val input_frame : in_channel -> string option
(** Blocking read of one frame ([None] on EOF at a frame boundary).
    @raise End_of_file on EOF inside a frame (torn frame).
    @raise Failure on an oversized header. *)
