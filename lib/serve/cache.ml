(* Sharded result cache: canonical request bytes -> response body.

   Each shard is an independent hash table + second-chance (clock)
   eviction queue behind its own mutex, so concurrent workers touching
   different shards never contend.  Eviction mirrors Swap.Cutoff's memo:
   a hit sets the entry's referenced bit, and a full shard evicts the
   first unreferenced entry in arrival order — recently-hit keys survive
   a burst of new traffic instead of the shard being dropped wholesale.

   Stats are tracked twice on purpose: per-instance atomics (exact
   counts for this cache — the bench report and Engine.stats read
   these) and the shared Obs.Metrics registry (the process-wide
   observability view; several caches with the same prefix share those
   counters). *)

type entry = { value : string; mutable referenced : bool }

type shard = {
  mutex : Mutex.t;
  tbl : (string, entry) Hashtbl.t;
  order : string Queue.t;
}

type stats = { hits : int; misses : int; evictions : int }

type t = {
  shards : shard array;
  shard_capacity : int;
  hits : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
  m_hits : Obs.Metrics.counter;
  m_misses : Obs.Metrics.counter;
  m_evictions : Obs.Metrics.counter;
}

let create ?(shards = 8) ?(capacity = 1024) ?(metrics_prefix = "serve.cache")
    () =
  if shards < 1 then invalid_arg "Cache.create: shards must be >= 1";
  if capacity < shards then
    invalid_arg "Cache.create: capacity must be >= shards";
  {
    shards =
      Array.init shards (fun _ ->
          {
            mutex = Mutex.create ();
            tbl = Hashtbl.create 64;
            order = Queue.create ();
          });
    shard_capacity = capacity / shards;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    evictions = Atomic.make 0;
    m_hits = Obs.Metrics.counter (metrics_prefix ^ ".hits");
    m_misses = Obs.Metrics.counter (metrics_prefix ^ ".misses");
    m_evictions = Obs.Metrics.counter (metrics_prefix ^ ".evictions");
  }

let shard_of t key =
  t.shards.(Hashtbl.hash key mod Array.length t.shards)

let find t key =
  let s = shard_of t key in
  Mutex.lock s.mutex;
  let r =
    match Hashtbl.find_opt s.tbl key with
    | Some e ->
      e.referenced <- true;
      Some e.value
    | None -> None
  in
  Mutex.unlock s.mutex;
  (match r with
  | Some _ ->
    Atomic.incr t.hits;
    Obs.Metrics.incr t.m_hits
  | None ->
    Atomic.incr t.misses;
    Obs.Metrics.incr t.m_misses);
  r

(* Called with the shard mutex held: clock sweep until one unreferenced
   entry goes; the budget bounds the walk when everything is hot. *)
let evict_one t s =
  let budget = ref ((2 * Queue.length s.order) + 1) in
  let evicted = ref false in
  while (not !evicted) && !budget > 0 do
    decr budget;
    match Queue.take_opt s.order with
    | None -> budget := 0
    | Some key -> (
      match Hashtbl.find_opt s.tbl key with
      | None -> () (* stale: removed by clear *)
      | Some e ->
        if e.referenced then begin
          e.referenced <- false;
          Queue.push key s.order
        end
        else begin
          Hashtbl.remove s.tbl key;
          Atomic.incr t.evictions;
          Obs.Metrics.incr t.m_evictions;
          evicted := true
        end)
  done

let add t key value =
  let s = shard_of t key in
  Mutex.lock s.mutex;
  (* A racing worker may have answered the same question first; keep the
     incumbent so concurrent readers share one value. *)
  if not (Hashtbl.mem s.tbl key) then begin
    if Hashtbl.length s.tbl >= t.shard_capacity then evict_one t s;
    Hashtbl.replace s.tbl key { value; referenced = false };
    Queue.push key s.order
  end;
  Mutex.unlock s.mutex

let length t =
  Array.fold_left
    (fun acc s ->
      Mutex.lock s.mutex;
      let n = Hashtbl.length s.tbl in
      Mutex.unlock s.mutex;
      acc + n)
    0 t.shards

let capacity t = t.shard_capacity * Array.length t.shards
let shards t = Array.length t.shards

let clear t =
  Array.iter
    (fun s ->
      Mutex.lock s.mutex;
      Hashtbl.reset s.tbl;
      Queue.clear s.order;
      Mutex.unlock s.mutex)
    t.shards

let stats t =
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    evictions = Atomic.get t.evictions;
  }
