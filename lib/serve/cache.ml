(* Sharded result cache: canonical request bytes -> response body.

   Reads are lock-free: each shard publishes an immutable map snapshot
   through an [Atomic.t], so [find] is one atomic load plus a purely
   functional lookup — reactor shards and engine workers never contend
   on the read path, no matter how hot one key is.  Mutation
   (add/evict/clear) serialises on the shard's mutex, builds the next
   snapshot copy-on-write, and publishes it with a single atomic store;
   a concurrent reader sees either the old or the new snapshot, never a
   torn one.

   Eviction stays second-chance (clock), mirroring Swap.Cutoff's memo:
   a hit sets the entry's referenced bit (an [Atomic.t] flip on the
   shared entry — visible to the writer without republishing), and a
   full shard evicts the first unreferenced entry in arrival order, so
   recently-hit keys survive a burst of new traffic instead of the
   shard being dropped wholesale.

   Stats are tracked twice on purpose: per-instance atomics (exact
   counts for this cache — the bench report and Engine.stats read
   these) and the shared Obs.Metrics registry (the process-wide
   observability view; several caches with the same prefix share those
   counters). *)

module Smap = Map.Make (String)

type entry = { value : string; referenced : bool Atomic.t }

type shard = {
  mutex : Mutex.t;  (* serialises writers; readers never take it *)
  published : entry Smap.t Atomic.t;
  order : string Queue.t;  (* writer-owned clock hand (guarded by mutex) *)
  mutable population : int;  (* |published|, maintained under mutex *)
}

type stats = { hits : int; misses : int; evictions : int }

type t = {
  shards : shard array;
  shard_capacity : int;
  hits : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
  m_hits : Obs.Metrics.counter;
  m_misses : Obs.Metrics.counter;
  m_evictions : Obs.Metrics.counter;
}

let create ?(shards = 8) ?(capacity = 1024) ?(metrics_prefix = "serve.cache")
    () =
  if shards < 1 then invalid_arg "Cache.create: shards must be >= 1";
  if capacity < shards then
    invalid_arg "Cache.create: capacity must be >= shards";
  {
    shards =
      Array.init shards (fun _ ->
          {
            mutex = Mutex.create ();
            published = Atomic.make Smap.empty;
            order = Queue.create ();
            population = 0;
          });
    shard_capacity = capacity / shards;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    evictions = Atomic.make 0;
    m_hits = Obs.Metrics.counter (metrics_prefix ^ ".hits");
    m_misses = Obs.Metrics.counter (metrics_prefix ^ ".misses");
    m_evictions = Obs.Metrics.counter (metrics_prefix ^ ".evictions");
  }

let shard_of t key =
  t.shards.(Hashtbl.hash key mod Array.length t.shards)

let find t key =
  let s = shard_of t key in
  match Smap.find_opt key (Atomic.get s.published) with
  | Some e ->
    (* Plain store, not CAS: the bit is a monotone hint until the next
       clock sweep clears it, so lost races between hitters are
       harmless. *)
    Atomic.set e.referenced true;
    Atomic.incr t.hits;
    Obs.Metrics.incr t.m_hits;
    Some e.value
  | None ->
    Atomic.incr t.misses;
    Obs.Metrics.incr t.m_misses;
    None

(* Called with the shard mutex held: clock sweep until one unreferenced
   entry goes; the budget bounds the walk when everything is hot.
   Returns the map with the victim removed (published by the caller,
   batched with its insert). *)
let evict_one t s map =
  let budget = ref ((2 * Queue.length s.order) + 1) in
  let evicted = ref false in
  let map = ref map in
  while (not !evicted) && !budget > 0 do
    decr budget;
    match Queue.take_opt s.order with
    | None -> budget := 0
    | Some key -> (
      match Smap.find_opt key !map with
      | None -> () (* stale: removed by clear *)
      | Some e ->
        if Atomic.get e.referenced then begin
          Atomic.set e.referenced false;
          Queue.push key s.order
        end
        else begin
          map := Smap.remove key !map;
          s.population <- s.population - 1;
          Atomic.incr t.evictions;
          Obs.Metrics.incr t.m_evictions;
          evicted := true
        end)
  done;
  !map

let add t key value =
  let s = shard_of t key in
  Mutex.lock s.mutex;
  let map = Atomic.get s.published in
  (* A racing worker may have answered the same question first; keep the
     incumbent so concurrent readers share one value. *)
  if not (Smap.mem key map) then begin
    let map = if s.population >= t.shard_capacity then evict_one t s map else map in
    let map = Smap.add key { value; referenced = Atomic.make false } map in
    s.population <- s.population + 1;
    Queue.push key s.order;
    Atomic.set s.published map
  end;
  Mutex.unlock s.mutex

let length t =
  Array.fold_left
    (fun acc s -> acc + Smap.cardinal (Atomic.get s.published))
    0 t.shards

let capacity t = t.shard_capacity * Array.length t.shards
let shards t = Array.length t.shards

let clear t =
  Array.iter
    (fun s ->
      Mutex.lock s.mutex;
      Atomic.set s.published Smap.empty;
      s.population <- 0;
      Queue.clear s.order;
      Mutex.unlock s.mutex)
    t.shards

let stats t =
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    evictions = Atomic.get t.evictions;
  }
