(** Sharded result cache (canonical request bytes → response body).

    {b Reads are lock-free}: each shard publishes an immutable map
    snapshot through an [Atomic.t], so {!find} is one atomic load plus
    a functional lookup — no reader ever blocks on a writer or on
    another reader.  Mutation serialises on the shard's mutex, builds
    the next snapshot copy-on-write and publishes it atomically, so a
    concurrent reader sees the old or the new snapshot, never a torn
    one.

    Eviction is second-chance (clock), like [Swap.Cutoff]'s memo — a
    hit marks the entry referenced (an atomic bit on the shared entry,
    no republish) and a full shard evicts the first unreferenced entry
    in arrival order.  Capacity is split evenly across shards, so
    [length t <= capacity t] always holds. *)

type t

val create :
  ?shards:int -> ?capacity:int -> ?metrics_prefix:string -> unit -> t
(** Defaults: 8 shards, 1024 entries total, counters registered as
    [<metrics_prefix>.hits/.misses/.evictions] (default
    ["serve.cache"]).  Per-instance stats stay exact even when several
    caches share a prefix.
    @raise Invalid_argument when [shards < 1] or [capacity < shards]. *)

val find : t -> string -> string option
(** Lookup; counts a hit or a miss and refreshes the entry's
    second-chance bit. *)

val add : t -> string -> string -> unit
(** Insert, evicting within the key's shard when full.  A key already
    present keeps its incumbent value (racing computations of the same
    canonical request are identical by construction). *)

val length : t -> int
(** Entries across all shards. *)

val capacity : t -> int
(** Total entry budget ([shard_capacity * shards]). *)

val shards : t -> int
val clear : t -> unit

type stats = { hits : int; misses : int; evictions : int }

val stats : t -> stats
(** Exact per-instance counts (independent of the shared registry). *)
