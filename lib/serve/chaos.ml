(* Seed-deterministic fault injection for the serve transports, in the
   Chainsim.Faults style: every op's fate is a pure function of
   (plan seed, op index) through its own Numerics.Rng stream, so a
   chaos run's fault schedule — and hence its retry/success counts —
   is bit-reproducible for a fixed seed regardless of timing.

   Socket path: [wrap] decorates a Client.dialer.  Op indices are
   allocated per wrapped dialer at send time and survive reconnects,
   so a retried request draws a *fresh* fate — without this, a fault
   would deterministically repeat and retries could never succeed.

   Pipe path: [corrupt_script] applies the same fate family to a
   request script (op = line index): torn/truncated lines arrive as
   malformed requests the engine must answer [parse_error], dropped
   lines model requests lost in transit, resets degrade to stray blank
   lines the server skips. *)

type fault =
  | Clean
  | Reset  (* connection severed before any request byte is sent *)
  | Torn_write of float  (* strict prefix of the request, then severed *)
  | Slow_loris  (* request dribbled in tiny chunks; completes *)
  | Mid_response_disconnect  (* request delivered; severed before read *)
  | Truncated_response of float  (* strict prefix of the response line *)

type plan = {
  seed : int;
  p_reset : float;
  p_torn : float;
  p_slow : float;
  p_disconnect : float;
  p_truncate : float;
  slow_chunk : int;
  slow_pause_s : float;
}

let plan ?(seed = 1) ?(intensity = 1.0) ?(slow_chunk = 7)
    ?(slow_pause_s = 5e-4) () =
  if not (intensity >= 0. && intensity <= 1.) then
    invalid_arg "Chaos.plan: intensity must be in [0, 1]";
  if slow_chunk < 1 then invalid_arg "Chaos.plan: slow_chunk must be >= 1";
  if not (slow_pause_s >= 0.) then
    invalid_arg "Chaos.plan: slow_pause_s must be >= 0";
  (* 6% per class at full intensity: a 30% overall fault rate, heavy
     enough that a chaos run without retries would visibly fail the
     >= 99% success gate, light enough that 6 attempts clear it. *)
  let p base = base *. intensity in
  {
    seed;
    p_reset = p 0.06;
    p_torn = p 0.06;
    p_slow = p 0.06;
    p_disconnect = p 0.06;
    p_truncate = p 0.06;
    slow_chunk;
    slow_pause_s;
  }

(* Same per-stream derivation constant as Chainsim.Faults: gives each
   load-generator client an independent but seed-reproducible fault
   schedule. *)
let for_stream plan ~stream =
  { plan with seed = plan.seed lxor ((stream + 1) * 0x2545F4914F6CDD1D) }

let fate plan ~op =
  let rng = Numerics.Rng.of_stream ~seed:plan.seed ~stream:op () in
  let u = Numerics.Rng.uniform rng in
  (* Cut fraction away from both ends so a "torn" op always tears:
     never the empty prefix, never the whole payload. *)
  let frac () = 0.1 +. (0.8 *. Numerics.Rng.uniform rng) in
  let t1 = plan.p_reset in
  let t2 = t1 +. plan.p_torn in
  let t3 = t2 +. plan.p_slow in
  let t4 = t3 +. plan.p_disconnect in
  let t5 = t4 +. plan.p_truncate in
  if u < t1 then Reset
  else if u < t2 then Torn_write (frac ())
  else if u < t3 then Slow_loris
  else if u < t4 then Mid_response_disconnect
  else if u < t5 then Truncated_response (frac ())
  else Clean

let fault_kind = function
  | Clean -> "clean"
  | Reset -> "reset"
  | Torn_write _ -> "torn_write"
  | Slow_loris -> "slow_loris"
  | Mid_response_disconnect -> "mid_response_disconnect"
  | Truncated_response _ -> "truncated_response"

let m_ops = Obs.Metrics.counter "serve.chaos.ops"

(* Per-kind injection counters; registration is idempotent. *)
let m_fault kind = Obs.Metrics.counter ("serve.chaos.injected." ^ kind)

let count_fate f =
  Obs.Metrics.incr m_ops;
  match f with Clean -> () | _ -> Obs.Metrics.incr (m_fault (fault_kind f))

(* A strict-prefix cut point: in [1, n-1] for n >= 2 (0 for shorter —
   an empty prefix is the best "strict prefix" a 1-byte payload has). *)
let cut_point ~frac n =
  max 0 (min (n - 1) (int_of_float (frac *. float_of_int n)))

(* --- socket path: faulty dialer ------------------------------------------ *)

let wrap plan (dial : Client.dialer) : Client.dialer =
  (* One op counter per wrapped dialer, shared across the connections
     it creates: a reconnect continues the schedule rather than
     replaying it. *)
  let next_op = Atomic.make 0 in
  fun () ->
    let io = dial () in
    (* Owned by the single domain driving the client. *)
    let dead = ref false in
    let on_recv = ref `Pass in
    let sever why =
      dead := true;
      io.Client.close ();
      raise (Client.Broken why)
    in
    let send_bytes bytes =
      if !dead then sever "chaos: connection already severed";
      let f = fate plan ~op:(Atomic.fetch_and_add next_op 1) in
      count_fate f;
      match f with
      | Reset -> sever "chaos: connection reset before send"
      | Torn_write frac ->
        let cut = cut_point ~frac (String.length bytes) in
        if cut > 0 then io.Client.send_bytes (String.sub bytes 0 cut);
        sever "chaos: torn mid-request write"
      | Slow_loris ->
        let n = String.length bytes in
        let rec dribble off =
          if off < n then begin
            io.Client.send_bytes
              (String.sub bytes off (min plan.slow_chunk (n - off)));
            Unix.sleepf plan.slow_pause_s;
            dribble (off + plan.slow_chunk)
          end
        in
        dribble 0;
        on_recv := `Slow
      | Mid_response_disconnect ->
        io.Client.send_bytes bytes;
        on_recv := `Disconnect
      | Truncated_response frac ->
        io.Client.send_bytes bytes;
        on_recv := `Truncate frac
      | Clean -> io.Client.send_bytes bytes
    in
    let recv_line () =
      if !dead then sever "chaos: connection already severed";
      match !on_recv with
      | `Pass -> io.Client.recv_line ()
      | `Slow ->
        on_recv := `Pass;
        Unix.sleepf plan.slow_pause_s;
        io.Client.recv_line ()
      | `Disconnect ->
        (* The server did answer; the link died first.  Consume and
           discard so the real socket stays in a known state, then
           surface the severed connection. *)
        on_recv := `Pass;
        (match io.Client.recv_line () with
        | (_ : string) -> ()
        | exception End_of_file -> ());
        sever "chaos: disconnected mid-response"
      | `Truncate frac -> (
        on_recv := `Pass;
        match io.Client.recv_line () with
        | exception End_of_file -> sever "chaos: response never arrived"
        | line ->
          (* Hand the client a torn read: a strict prefix of the real
             response with the connection gone underneath — its
             parse/id-echo verification must reject it.  (A strict
             prefix of a JSON object can never parse, so this cannot
             be mistaken for a valid answer.) *)
          dead := true;
          io.Client.close ();
          String.sub line 0 (cut_point ~frac (String.length line)))
    in
    let close () =
      dead := true;
      io.Client.close ()
    in
    { Client.send_bytes; recv_line; close }

(* --- pipe path: script corruption ----------------------------------------- *)

(* How line [i] of a request script arrives through the faulty pipe.
   [`Line s] reaches the engine (possibly mangled); [`Noise s] is bytes
   the server skips (blank lines); [`Lost] never arrives. *)
let pipe_fate plan ~op line =
  match fate plan ~op with
  | Clean | Slow_loris -> `Line line
  | Reset -> `Noise line (* degraded to a stray blank before the line *)
  | Torn_write frac | Truncated_response frac ->
    `Line (String.sub line 0 (cut_point ~frac (String.length line)))
  | Mid_response_disconnect -> `Lost

let corrupt_script plan lines =
  let buf = Buffer.create 4096 in
  List.iteri
    (fun i line ->
      match pipe_fate plan ~op:i line with
      | `Line l ->
        Buffer.add_string buf l;
        Buffer.add_char buf '\n'
      | `Noise l ->
        Buffer.add_char buf '\n';
        Buffer.add_string buf l;
        Buffer.add_char buf '\n'
      | `Lost -> ())
    lines;
  Buffer.contents buf

let expected_pipe_responses plan lines =
  List.fold_left
    (fun (i, n) line ->
      match pipe_fate plan ~op:i line with
      | `Line l -> (i + 1, if String.trim l = "" then n else n + 1)
      | `Noise l -> (i + 1, if String.trim l = "" then n else n + 1)
      | `Lost -> (i + 1, n))
    (0, 0) lines
  |> snd
