(** Seed-deterministic fault injection for the serve transports
    (the [Chainsim.Faults] style applied to IO): torn mid-request
    writes, truncated response lines, slow-loris dribbled sends,
    mid-response disconnects, and connection resets, each op's fate a
    pure function of [(plan seed, op index)].

    For a fixed seed the fault {e schedule} is bit-reproducible — the
    same ops draw the same fates in the same order — so a chaos bench's
    retry and success counts are deterministic even though wall-clock
    timing is not.  Injected faults surface to {!Client} as
    [Client.Broken] (or as a corrupt line its id-echo verification
    rejects), exercising exactly the retry path real network faults
    would. *)

type fault =
  | Clean
  | Reset  (** Connection severed before any request byte is sent. *)
  | Torn_write of float
      (** A strict prefix of the request is written, then the
          connection is severed; the fraction picks the cut point. *)
  | Slow_loris
      (** The request is dribbled in [slow_chunk]-byte pieces with
          [slow_pause_s] pauses (and one more pause before the read);
          completes successfully. *)
  | Mid_response_disconnect
      (** The request is delivered and answered, but the connection is
          severed before the response can be read. *)
  | Truncated_response of float
      (** The client receives only a strict prefix of the response
          line, connection gone underneath — a torn read. *)

type plan = {
  seed : int;
  p_reset : float;
  p_torn : float;
  p_slow : float;
  p_disconnect : float;
  p_truncate : float;
  slow_chunk : int;
  slow_pause_s : float;
}

val plan :
  ?seed:int ->
  ?intensity:float ->
  ?slow_chunk:int ->
  ?slow_pause_s:float ->
  unit ->
  plan
(** A fault plan: 6% probability per fault class at [intensity] 1.0
    (default) — a 30% overall fault rate — scaled linearly down to a
    clean transport at 0.0.  [seed] defaults to 1.
    @raise Invalid_argument on an intensity outside [[0, 1]],
    [slow_chunk < 1], or a negative pause. *)

val for_stream : plan -> stream:int -> plan
(** An independent but seed-reproducible derived plan — give each
    load-generator client its own stream so schedules do not depend on
    cross-client interleaving. *)

val fate : plan -> op:int -> fault
(** The fate of op [op]: pure in [(plan.seed, op)]. *)

val fault_kind : fault -> string
(** Stable tag, e.g. ["torn_write"] — the [serve.chaos.injected.{kind}]
    metric suffix. *)

val wrap : plan -> Client.dialer -> Client.dialer
(** Decorate a dialer with fault injection.  Op indices are allocated
    per wrapped dialer at send time and {e survive reconnects}, so a
    retried request draws a fresh fate rather than deterministically
    replaying the fault that killed it.  Every op bumps
    [serve.chaos.ops]; injected faults bump
    [serve.chaos.injected.{kind}]. *)

val corrupt_script : plan -> string list -> string
(** The pipe-path analogue: apply fate [i] to request line [i] of a
    script.  Torn/truncated lines arrive malformed (the engine answers
    [parse_error]), disconnect fates drop the line entirely, resets
    degrade to a stray blank line (skipped) before the intact request,
    and slow-loris is a timing-only fault the pipe cannot express.
    Returns the corrupted script as one string. *)

val expected_pipe_responses : plan -> string list -> int
(** How many response lines {!corrupt_script}'s output must produce —
    every surviving non-blank line gets exactly one answer. *)
