(* A reconnecting htlc-serve/v1 socket client with a per-request
   deadline, capped exponential backoff with deterministic seeded
   jitter, and idempotent retry.

   Retry safety: a request is retried by resending the same line on a
   fresh connection.  This is idempotent by the service's byte-identity
   contract — the response body is a pure function of the canonical
   request bytes and the engine configuration, and the only server-side
   effect of a duplicate is a cache hit — so at-least-once delivery
   yields exactly-once semantics from the caller's point of view.
   (Health responses are live snapshots, so a retried health request
   may observe different state; that is inherent to what it asks.)

   Corruption detection: every received line must parse as JSON and
   echo the request's id (null for id-less requests).  A truncated or
   interleaved response therefore surfaces as [Broken] and is retried
   on a fresh connection rather than being handed to the caller.

   Determinism: backoff jitter is drawn from a seeded Numerics.Rng
   owned by the client, one draw per retry — so for a fixed seed and a
   fixed failure pattern (e.g. a Chaos plan) the whole retry/backoff
   decision sequence is reproducible.  Only the sleeps themselves take
   wall time. *)

exception Broken of string
(* A transport-level failure injected or detected mid-call: the
   connection is presumed poisoned and is dropped before retrying. *)

type io = {
  send_bytes : string -> unit;  (* write raw bytes and flush *)
  recv_line : unit -> string;  (* next response line; End_of_file on EOF *)
  close : unit -> unit;  (* idempotent *)
}

type dialer = unit -> io

(* A client writing into a severed connection must see EPIPE (a
   retryable [Unix_error]), not die of SIGPIPE. *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ -> ()

let socket_dialer ~path () =
  ignore_sigpipe ();
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let closed = Atomic.make false in
  {
    send_bytes =
      (fun bytes ->
        output_string oc bytes;
        flush oc);
    recv_line = (fun () -> input_line ic);
    close =
      (fun () ->
        if not (Atomic.exchange closed true) then
          try Unix.close fd with Unix.Unix_error _ -> ());
  }

(* --- shared observability ------------------------------------------------ *)

let m_calls = Obs.Metrics.counter "serve.client.calls"
let m_retries = Obs.Metrics.counter "serve.client.retries"
let m_reconnects = Obs.Metrics.counter "serve.client.reconnects"
let m_failures = Obs.Metrics.counter "serve.client.failures"

(* --- client -------------------------------------------------------------- *)

type t = {
  dialer : dialer;
  max_attempts : int;
  base_backoff_s : float;
  max_backoff_s : float;
  deadline_s : float option;
  rng : Numerics.Rng.t;
  mutable conn : io option;
  mutable connected_once : bool;
  n_calls : int Atomic.t;
  n_retries : int Atomic.t;
  n_reconnects : int Atomic.t;
  n_failures : int Atomic.t;
}

type error = { code : string; message : string; attempts : int }

type stats = { calls : int; retries : int; reconnects : int; failures : int }

let create ?(dialer : dialer option) ?path ?(max_attempts = 6)
    ?(base_backoff_s = 0.001) ?(max_backoff_s = 0.25) ?deadline_s ?(seed = 0)
    () =
  let dialer =
    match (dialer, path) with
    | Some d, _ -> d
    | None, Some path -> socket_dialer ~path
    | None, None -> invalid_arg "Client.create: need a dialer or a path"
  in
  if max_attempts < 1 then
    invalid_arg "Client.create: max_attempts must be >= 1";
  if not (base_backoff_s > 0. && max_backoff_s >= base_backoff_s) then
    invalid_arg "Client.create: backoff bounds must be 0 < base <= max";
  (match deadline_s with
  | Some d when not (d > 0.) ->
    invalid_arg "Client.create: deadline_s must be > 0"
  | _ -> ());
  {
    dialer;
    max_attempts;
    base_backoff_s;
    max_backoff_s;
    deadline_s;
    rng = Numerics.Rng.create ~seed ();
    conn = None;
    connected_once = false;
    n_calls = Atomic.make 0;
    n_retries = Atomic.make 0;
    n_reconnects = Atomic.make 0;
    n_failures = Atomic.make 0;
  }

let drop_conn t =
  match t.conn with
  | None -> ()
  | Some io ->
    t.conn <- None;
    io.close ()

let close t = drop_conn t

(* The id the response must echo: the request's own id when it decodes,
   the best-effort recovered id when it does not (the server echoes
   that same id on its reject). *)
let expected_id line =
  match Request.decode line with
  | Ok req -> req.Request.id
  | Error err -> err.Request.err_id

let response_matches ~id resp =
  match Obs.Json_parse.parse resp with
  | exception Obs.Json_parse.Bad _ -> false
  | root -> (
    match (Obs.Json_parse.member_opt root "id", id) with
    | Some Obs.Json_parse.Null, None -> true
    | Some (Obs.Json_parse.Str got), Some want -> String.equal got want
    | _ -> false)

(* Attempt [k] (1-based) failed: capped exponential backoff with
   multiplicative jitter in [0.5, 1.0), clipped to the remaining
   deadline budget. *)
let backoff t ~attempt ~remaining_s =
  let exp_s = t.base_backoff_s *. (2. ** float_of_int (attempt - 1)) in
  let capped = Float.min t.max_backoff_s exp_s in
  let jittered = capped *. (0.5 +. (0.5 *. Numerics.Rng.uniform t.rng)) in
  let d =
    match remaining_s with
    | None -> jittered
    | Some r -> Float.min jittered (Float.max 0. r)
  in
  if d > 0. then Unix.sleepf d

let call t line =
  Atomic.incr t.n_calls;
  Obs.Metrics.incr m_calls;
  let id = expected_id line in
  let t0 = Obs.Monotonic.now_ns () in
  let remaining () =
    Option.map
      (fun d -> d -. Obs.Monotonic.elapsed_s ~since_ns:t0)
      t.deadline_s
  in
  let fail code message attempts =
    Atomic.incr t.n_failures;
    Obs.Metrics.incr m_failures;
    drop_conn t;
    Error { code; message; attempts }
  in
  let rec attempt k =
    match remaining () with
    | Some r when r <= 0. ->
      fail "deadline_exceeded"
        "client-side deadline elapsed before a response arrived" (k - 1)
    | _ -> (
      if k > 1 then begin
        Atomic.incr t.n_retries;
        Obs.Metrics.incr m_retries
      end;
      match
        let io =
          match t.conn with
          | Some io -> io
          | None ->
            let io = t.dialer () in
            if t.connected_once then begin
              Atomic.incr t.n_reconnects;
              Obs.Metrics.incr m_reconnects
            end;
            t.connected_once <- true;
            t.conn <- Some io;
            io
        in
        io.send_bytes (line ^ "\n");
        io.recv_line ()
      with
      | resp when response_matches ~id resp -> Ok resp
      | _corrupt ->
        retry k "response did not echo the request id (corrupt stream)"
      | exception (End_of_file | Broken _ | Sys_error _ | Unix.Unix_error _)
        ->
        retry k "connection failed"
      )
  and retry k why =
    drop_conn t;
    if k >= t.max_attempts then fail "unavailable" why k
    else begin
      backoff t ~attempt:k ~remaining_s:(remaining ());
      attempt (k + 1)
    end
  in
  attempt 1

let stats t =
  {
    calls = Atomic.get t.n_calls;
    retries = Atomic.get t.n_retries;
    reconnects = Atomic.get t.n_reconnects;
    failures = Atomic.get t.n_failures;
  }
