(** A resilient [htlc-serve/v1] line client: reconnecting transport,
    per-request deadline, capped exponential backoff with deterministic
    seeded jitter, and idempotent retry keyed on the request id.

    {b Retry safety.}  Retries resend the same request line on a fresh
    connection.  By the engine's byte-identity contract a response body
    is a pure function of the canonical request bytes, and a duplicate's
    only server-side effect is a cache hit — so at-least-once delivery
    gives the caller exactly-once results.  (A retried [health] request
    may legitimately observe different live state.)

    {b Corruption detection.}  A response line must parse as JSON and
    echo the request's id ([null] for id-less requests); anything else —
    a truncated line, an interleaved or replayed response — poisons the
    connection and triggers a retry rather than reaching the caller.

    {b Determinism.}  Backoff jitter comes from a seeded [Numerics.Rng]
    owned by the client, one draw per retry: for a fixed seed and a
    fixed fault schedule (e.g. a {!Chaos} plan) the retry/backoff
    decision sequence is bit-reproducible; only the sleeps take wall
    time.

    A client is single-owner: one domain drives {!call} at a time (the
    chaos bench gives each load-generator domain its own client). *)

exception Broken of string
(** A transport-level failure injected or detected mid-call (the
    {!Chaos} wrapper raises it); the client drops the connection and
    retries. *)

type io = {
  send_bytes : string -> unit;  (** Write raw bytes and flush. *)
  recv_line : unit -> string;
      (** Next response line; raises [End_of_file] on EOF. *)
  close : unit -> unit;  (** Idempotent. *)
}
(** A byte-granular connection — byte-level [send_bytes] (rather than a
    line primitive) is what lets the chaos wrapper tear writes
    mid-line. *)

type dialer = unit -> io
(** Establishes a fresh connection; raises (e.g. [Unix.Unix_error]) on
    refusal.  Wrap one with [Chaos.wrap] to inject faults. *)

val socket_dialer : path:string -> dialer
(** Dial the Unix-domain socket at [path]. *)

type t

val create :
  ?dialer:dialer ->
  ?path:string ->
  ?max_attempts:int ->
  ?base_backoff_s:float ->
  ?max_backoff_s:float ->
  ?deadline_s:float ->
  ?seed:int ->
  unit ->
  t
(** A client over [dialer] (or [socket_dialer ~path]; one of the two is
    required).  Connection is lazy — nothing is dialed until the first
    {!call}.  [max_attempts] (default 6) bounds tries per call;
    backoff for attempt [k] is
    [min max_backoff_s (base_backoff_s * 2^(k-1))] scaled by a jitter
    factor in [[0.5, 1.0)] drawn from the client's [seed]ed RNG
    (defaults 1ms base, 250ms cap).  [deadline_s] (default none) bounds
    each call's total wall time including backoff sleeps.
    @raise Invalid_argument on a missing dialer/path or non-positive
    bounds. *)

type error = {
  code : string;
      (** ["unavailable"] (attempts exhausted) or ["deadline_exceeded"]
          (client-side deadline; distinct from the server's queue-wait
          deadline of the same name). *)
  message : string;
  attempts : int;  (** Attempts actually made. *)
}

val call : t -> string -> (string, error) result
(** Send one request line (newline appended) and return the verified
    response line.  Dials or re-dials as needed; on a torn write, EOF,
    reset, corrupt response, or {!Broken} it drops the connection,
    backs off, and retries until [max_attempts] or the deadline.
    [Error _] never leaves a live connection behind. *)

val close : t -> unit
(** Drop the current connection, if any.  The client remains usable —
    the next {!call} re-dials. *)

type stats = {
  calls : int;
  retries : int;  (** Attempts beyond the first, across all calls. *)
  reconnects : int;  (** Re-dials after the first successful dial. *)
  failures : int;  (** Calls that returned [Error _]. *)
}

val stats : t -> stats
(** Per-client exact counts; [serve.client.*] in [Obs.Metrics] carries
    the process-wide mirrors. *)
