(* The serve engine: request evaluation, result cache, worker pool,
   admission control.

   Three execution modes share one compute path ([respond]):

   - [handle] runs synchronously on the caller (pipe transport, tests,
     and the reference side of the byte-identity checks);
   - [handle_batch] fans a request array out over the shared
     Numerics.Pool domains (deterministic order, used by bulk callers
     and the jobs-invariance guard);
   - [submit]/[await] hand the request to one of the engine's dedicated
     worker domains through a *bounded* queue — the socket transport's
     path.  Dedicated domains rather than Pool chunks because Pool jobs
     are finite chunked batches while a server needs long-lived
     consumers; the heavy lifting inside a request still reuses the
     same solvers (and the quote table warm-build fans out on the
     Pool).

   Admission control: when the queue is full, [submit] answers an
   explicit [overloaded] error immediately instead of queueing without
   bound; when a queued request waits past the configured deadline, the
   worker answers [deadline_exceeded] without computing.  Both paths
   bypass the cache.

   Byte-identity contract: computed bodies depend only on the canonical
   request and the engine's configuration (base params + quote grid).
   The cache stores bodies keyed by canonical request bytes and the id
   is spliced in at assembly, so cached, pooled, and worker responses
   are byte-identical to a direct [handle] call. *)

type job = {
  req : Request.t;
  enqueued_ns : int64;
  cell_mutex : Mutex.t;
  cell_cond : Condition.t;
  mutable resp : string option;
}

type stats = {
  requests : int;
  parse_errors : int;
  ok : int;
  errors : int;
  shed : int;
  deadline_exceeded : int;
  cache : Cache.stats;
}

type t = {
  base : Swap.Params.t;
  table : Market.Quote_table.t;
  cache : Cache.t;
  max_sweep_n : int;
  deadline_s : float option;
  queue_capacity : int;
  queue : job Queue.t;
  q_mutex : Mutex.t;
  q_nonempty : Condition.t;
  mutable worker_domains : unit Domain.t list;
  mutable stopping : bool;
  (* Exact per-engine counts; the shared Obs registry mirrors them. *)
  n_requests : int Atomic.t;
  n_parse_errors : int Atomic.t;
  n_ok : int Atomic.t;
  n_errors : int Atomic.t;
  n_shed : int Atomic.t;
  n_deadline : int Atomic.t;
}

(* --- shared observability ------------------------------------------------ *)

let m_requests = Obs.Metrics.counter "serve.requests"
let m_parse_errors = Obs.Metrics.counter "serve.parse_errors"
let m_ok = Obs.Metrics.counter "serve.ok"
let m_errors = Obs.Metrics.counter "serve.errors"
let m_shed = Obs.Metrics.counter "serve.shed"
let m_deadline = Obs.Metrics.counter "serve.deadline_exceeded"
let m_queue_hwm = Obs.Metrics.gauge "serve.queue_depth_hwm"
let m_latency = Obs.Metrics.histogram "serve.handle_latency_s"
let m_queue_wait = Obs.Metrics.histogram "serve.queue_wait_s"

let m_kind = function
  | "cutoffs" -> Obs.Metrics.counter "serve.req.cutoffs"
  | "success_rate" -> Obs.Metrics.counter "serve.req.success_rate"
  | "sweep" -> Obs.Metrics.counter "serve.req.sweep"
  | _ -> Obs.Metrics.counter "serve.req.quote"

(* --- evaluation ---------------------------------------------------------- *)

let sr_at params ~p_star ~q =
  if q = 0. then Swap.Success.analytic params ~p_star
  else Swap.Collateral.success_rate (Swap.Collateral.symmetric params ~q) ~p_star

let compute_result t (req : Request.t) =
  match req.body with
  | Cutoffs { params; p_star } ->
    let p_t3_low = Swap.Cutoff.p_t3_low params ~p_star in
    let t2_band = Swap.Cutoff.p_t2_band_endpoints params ~p_star in
    let p_star_band = Swap.Cutoff.p_star_band_endpoints params in
    Ok
      (Printf.sprintf
         "{\"p_t3_low\":%s,\"t2_band\":%s,\"p_star_band\":%s}"
         (Obs.Json.num p_t3_low)
         (Response.interval_json t2_band)
         (Response.interval_json p_star_band))
  | Success_rate { params; p_star; q } ->
    Ok (Printf.sprintf "{\"sr\":%s}" (Obs.Json.num (sr_at params ~p_star ~q)))
  | Sweep { params; q; spec } ->
    if spec.n > t.max_sweep_n then
      Error
        ( "invalid_params",
          Printf.sprintf "n: exceeds this server's sweep limit (%d)"
            t.max_sweep_n )
    else begin
      let p_stars = Numerics.Grid.linspace ~lo:spec.lo ~hi:spec.hi ~n:spec.n in
      let srs = Array.map (fun p_star -> sr_at params ~p_star ~q) p_stars in
      Ok
        (Printf.sprintf "{\"p_stars\":%s,\"srs\":%s}"
           (Response.float_array_json p_stars)
           (Response.float_array_json srs))
    end
  | Quote { mu; sigma; spot } -> (
    match Market.Quote_table.lookup t.table ~mu ~sigma ~spot with
    | Ok { Market.Quote_table.p_star; sr } ->
      Ok
        (Printf.sprintf "{\"p_star\":%s,\"sr\":%s}" (Obs.Json.num p_star)
           (Obs.Json.num sr))
    | Error reason ->
      Error
        ( Market.Quote_table.reason_to_string reason,
          "no quote at these calibrated parameters" ))

(* Compute (or fetch) the response body for a parsed request, then
   assemble with the caller's id. *)
let respond t (req : Request.t) =
  let kind = Request.kind req in
  Atomic.incr t.n_requests;
  Obs.Metrics.incr m_requests;
  Obs.Metrics.incr (m_kind kind);
  let t0 = if Obs.Metrics.enabled () then Obs.Monotonic.now_ns () else 0L in
  let body =
    let key = Request.key req in
    match Cache.find t.cache key with
    | Some body -> body
    | None ->
      let body =
        Obs.Trace.with_span "serve.compute" (fun span ->
            Obs.Trace.annotate span "req" kind;
            match compute_result t req with
            | Ok result ->
              Atomic.incr t.n_ok;
              Obs.Metrics.incr m_ok;
              Response.ok_body ~req:kind ~result
            | Error (code, message) ->
              Atomic.incr t.n_errors;
              Obs.Metrics.incr m_errors;
              Response.error_body ~req:kind ~code ~message ())
      in
      Cache.add t.cache key body;
      body
  in
  if t0 <> 0L then
    Obs.Metrics.observe m_latency (Obs.Monotonic.elapsed_s ~since_ns:t0);
  Response.assemble ~id:req.id body

let parse_failure t (err : Request.error) =
  Atomic.incr t.n_parse_errors;
  Obs.Metrics.incr m_parse_errors;
  Response.error ~id:err.err_id ~code:err.code ~message:err.message ()

let handle t line =
  match Request.decode line with
  | Ok req -> respond t req
  | Error err -> parse_failure t err

let handle_batch ?jobs t lines = Numerics.Pool.map_array ?jobs (handle t) lines

(* --- worker pool + admission control ------------------------------------ *)

let finish_job job resp =
  Mutex.lock job.cell_mutex;
  job.resp <- Some resp;
  Condition.broadcast job.cell_cond;
  Mutex.unlock job.cell_mutex

let run_job t job =
  if Obs.Metrics.enabled () then
    Obs.Metrics.observe m_queue_wait
      (Obs.Monotonic.elapsed_s ~since_ns:job.enqueued_ns);
  let expired =
    match t.deadline_s with
    | Some d -> Obs.Monotonic.elapsed_s ~since_ns:job.enqueued_ns > d
    | None -> false
  in
  let resp =
    if expired then begin
      Atomic.incr t.n_deadline;
      Obs.Metrics.incr m_deadline;
      Response.error ~id:job.req.Request.id ~req:(Request.kind job.req)
        ~code:"deadline_exceeded"
        ~message:"request waited past the server deadline" ()
    end
    else respond t job.req
  in
  finish_job job resp

type ticket = job

let await (job : ticket) =
  Mutex.lock job.cell_mutex;
  while job.resp = None do
    Condition.wait job.cell_cond job.cell_mutex
  done;
  let r = Option.get job.resp in
  Mutex.unlock job.cell_mutex;
  r

let submit t line =
  match Request.decode line with
  | Error err -> `Done (parse_failure t err)
  | Ok req ->
    let shed message =
      Atomic.incr t.n_shed;
      Obs.Metrics.incr m_shed;
      `Done
        (Response.error ~id:req.Request.id ~req:(Request.kind req)
           ~code:"overloaded" ~message ())
    in
    Mutex.lock t.q_mutex;
    if t.stopping then begin
      Mutex.unlock t.q_mutex;
      shed "server is shutting down"
    end
    else if Queue.length t.queue >= t.queue_capacity then begin
      Mutex.unlock t.q_mutex;
      shed "submission queue is full"
    end
    else begin
      let job =
        {
          req;
          enqueued_ns = Obs.Monotonic.now_ns ();
          cell_mutex = Mutex.create ();
          cell_cond = Condition.create ();
          resp = None;
        }
      in
      Queue.push job t.queue;
      Obs.Metrics.max_gauge m_queue_hwm (float_of_int (Queue.length t.queue));
      Condition.signal t.q_nonempty;
      Mutex.unlock t.q_mutex;
      `Ticket job
    end

let take_job t ~block =
  Mutex.lock t.q_mutex;
  if block then
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.q_nonempty t.q_mutex
    done;
  let job = Queue.take_opt t.queue in
  Mutex.unlock t.q_mutex;
  job

let pump t =
  match take_job t ~block:false with
  | Some job ->
    run_job t job;
    true
  | None -> false

let rec worker_loop t =
  match take_job t ~block:true with
  | Some job ->
    run_job t job;
    worker_loop t
  | None -> () (* stopping and drained *)

(* --- lifecycle ----------------------------------------------------------- *)

let create ?workers ?(queue_capacity = 128) ?deadline_s ?(cache_shards = 8)
    ?(cache_capacity = 1024) ?(max_sweep_n = 4096) ?mus ?sigmas
    ?(base = Swap.Params.defaults) () =
  if queue_capacity < 1 then
    invalid_arg "Engine.create: queue_capacity must be >= 1";
  (match deadline_s with
  | Some d when not (d > 0.) ->
    invalid_arg "Engine.create: deadline_s must be > 0"
  | _ -> ());
  let workers =
    match workers with
    | None -> Numerics.Pool.jobs ()
    | Some w when w >= 0 -> w
    | Some _ -> invalid_arg "Engine.create: workers must be >= 0"
  in
  let t =
    {
      base;
      (* Warm build: one full solve per grid node, fanned out on the
         shared pool, so the first quote request is already microseconds. *)
      table = Market.Quote_table.build ?mus ?sigmas base;
      cache = Cache.create ~shards:cache_shards ~capacity:cache_capacity ();
      max_sweep_n;
      deadline_s;
      queue_capacity;
      queue = Queue.create ();
      q_mutex = Mutex.create ();
      q_nonempty = Condition.create ();
      worker_domains = [];
      stopping = false;
      n_requests = Atomic.make 0;
      n_parse_errors = Atomic.make 0;
      n_ok = Atomic.make 0;
      n_errors = Atomic.make 0;
      n_shed = Atomic.make 0;
      n_deadline = Atomic.make 0;
    }
  in
  t.worker_domains <-
    List.init workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let workers t = List.length t.worker_domains
let quote_table t = t.table
let base_params t = t.base

let stop t =
  Mutex.lock t.q_mutex;
  t.stopping <- true;
  Condition.broadcast t.q_nonempty;
  Mutex.unlock t.q_mutex;
  List.iter Domain.join t.worker_domains;
  t.worker_domains <- [];
  (* No workers left: drain anything still queued on this domain so
     every issued ticket resolves. *)
  while pump t do
    ()
  done

let stats t =
  {
    requests = Atomic.get t.n_requests;
    parse_errors = Atomic.get t.n_parse_errors;
    ok = Atomic.get t.n_ok;
    errors = Atomic.get t.n_errors;
    shed = Atomic.get t.n_shed;
    deadline_exceeded = Atomic.get t.n_deadline;
    cache = Cache.stats t.cache;
  }
