(* The serve engine: request evaluation, result cache, worker pool,
   admission control, and worker supervision.

   Three execution modes share one compute path ([respond]):

   - [handle] runs synchronously on the caller (pipe transport, tests,
     and the reference side of the byte-identity checks);
   - [handle_batch] fans a request array out over the shared
     Numerics.Pool domains (deterministic order, used by bulk callers
     and the jobs-invariance guard);
   - [submit]/[await] hand the request to one of the engine's dedicated
     worker domains through a *bounded* queue — the socket transport's
     path.  Dedicated domains rather than Pool chunks because Pool jobs
     are finite chunked batches while a server needs long-lived
     consumers; the heavy lifting inside a request still reuses the
     same solvers (and the quote table warm-build fans out on the
     Pool).

   Admission control: when the queue is full, [submit] answers an
   explicit [overloaded] error immediately instead of queueing without
   bound; when a queued request waits past the configured deadline, the
   worker answers [deadline_exceeded] without computing.  Both paths
   bypass the cache.

   Supervision: a request whose evaluation raises must never strand its
   ticket.  On the worker path the job's ticket is completed with a
   structured [internal_error] response, the exception is escalated out
   of the worker loop (the conceptual "worker death"), and a supervisor
   wrapper restarts the loop on the same domain, counting
   [serve.worker_restarts].  On the synchronous [handle] path the
   exception is absorbed into the same [internal_error] response —
   there is no worker to restart.  [inject_crash] enqueues a poisoned
   task that takes exactly this path deterministically, so tests and
   the chaos bench can force a crash/restart cycle and assert the
   contract ("every submitted request gets exactly one response").

   Shutdown: [shutdown ~drain:true] (the default, and what [stop]
   does) lets workers finish every queued job before joining them;
   [~drain:false] rejects the still-queued jobs with an [overloaded]
   response first, so shutdown latency is one in-flight job, not a
   queue.  Either way no issued ticket is left unresolved and
   subsequent [submit]s shed.

   Byte-identity contract: computed bodies depend only on the canonical
   request and the engine's configuration (base params + quote grid).
   The cache stores bodies keyed by canonical request bytes and the id
   is spliced in at assembly, so cached, pooled, and worker responses
   are byte-identical to a direct [handle] call.  [Health] is the one
   deliberate exception: it reports live queue/worker/cache state, is
   never cached, and sits outside the contract. *)

type job = {
  req : Request.t;
  enqueued_ns : int64;
  clock : Telemetry.clock;
  cell_mutex : Mutex.t;
  cell_cond : Condition.t;
  mutable resp : string option;
}

(* What the queue actually carries: real work, or a poisoned task that
   deterministically crashes the worker that takes it (supervision
   test hook; its ticket still resolves with [internal_error]). *)
type task = Job of job | Crash of job

type stats = {
  requests : int;
  parse_errors : int;
  ok : int;
  errors : int;
  shed : int;
  deadline_exceeded : int;
  internal_errors : int;
  worker_restarts : int;
  cache : Cache.stats;
}

type t = {
  base : Swap.Params.t;
  table : Market.Quote_table.t;
  universe : Swapgraph.Router.t;
  cache : Cache.t;
  max_sweep_n : int;
  deadline_s : float option;
  queue_capacity : int;
  queue : task Queue.t;
  q_mutex : Mutex.t;
  q_nonempty : Condition.t;
  mutable worker_domains : unit Domain.t list;
  mutable stopping : bool;
  (* Exact per-engine counts; the shared Obs registry mirrors them. *)
  n_requests : int Atomic.t;
  n_parse_errors : int Atomic.t;
  n_ok : int Atomic.t;
  n_errors : int Atomic.t;
  n_shed : int Atomic.t;
  n_deadline : int Atomic.t;
  n_internal : int Atomic.t;
  n_restarts : int Atomic.t;
  n_alive : int Atomic.t;
}

(* --- shared observability ------------------------------------------------ *)

let m_requests = Obs.Metrics.counter "serve.requests"
let m_parse_errors = Obs.Metrics.counter "serve.parse_errors"
let m_ok = Obs.Metrics.counter "serve.ok"
let m_errors = Obs.Metrics.counter "serve.errors"
let m_shed = Obs.Metrics.counter "serve.shed"
let m_deadline = Obs.Metrics.counter "serve.deadline_exceeded"
let m_internal = Obs.Metrics.counter "serve.internal_errors"
let m_restarts = Obs.Metrics.counter "serve.worker_restarts"
let m_queue_hwm = Obs.Metrics.gauge "serve.queue_depth_hwm"
let m_latency = Obs.Metrics.histogram "serve.handle_latency_s"
let m_queue_wait = Obs.Metrics.histogram "serve.queue_wait_s"

(* Resolved once: [Obs.Metrics.counter] walks the registry under its
   mutex, which is too much for a per-request label lookup. *)
let m_req_cutoffs = Obs.Metrics.counter "serve.req.cutoffs"
let m_req_success_rate = Obs.Metrics.counter "serve.req.success_rate"
let m_req_sweep = Obs.Metrics.counter "serve.req.sweep"
let m_req_health = Obs.Metrics.counter "serve.req.health"
let m_req_stats = Obs.Metrics.counter "serve.req.stats"
let m_req_route = Obs.Metrics.counter "serve.req.route"
let m_req_quote = Obs.Metrics.counter "serve.req.quote"

let m_kind = function
  | "cutoffs" -> m_req_cutoffs
  | "success_rate" -> m_req_success_rate
  | "sweep" -> m_req_sweep
  | "health" -> m_req_health
  | "stats" -> m_req_stats
  | "route" -> m_req_route
  | _ -> m_req_quote

(* --- evaluation ---------------------------------------------------------- *)

let sr_at params ~p_star ~q =
  if q = 0. then Swap.Success.analytic params ~p_star
  else Swap.Collateral.success_rate (Swap.Collateral.symmetric params ~q) ~p_star

let queue_depth t =
  Mutex.lock t.q_mutex;
  let d = Queue.length t.queue in
  Mutex.unlock t.q_mutex;
  d

let draining t =
  Mutex.lock t.q_mutex;
  let s = t.stopping in
  Mutex.unlock t.q_mutex;
  s

let alive_workers t = Atomic.get t.n_alive

let compute_result t (req : Request.t) =
  match req.body with
  | Cutoffs { params; p_star } ->
    let p_t3_low = Swap.Cutoff.p_t3_low params ~p_star in
    let t2_band = Swap.Cutoff.p_t2_band_endpoints params ~p_star in
    let p_star_band = Swap.Cutoff.p_star_band_endpoints params in
    Ok
      (Printf.sprintf
         "{\"p_t3_low\":%s,\"t2_band\":%s,\"p_star_band\":%s}"
         (Obs.Json.num p_t3_low)
         (Response.interval_json t2_band)
         (Response.interval_json p_star_band))
  | Success_rate { params; p_star; q } ->
    Ok (Printf.sprintf "{\"sr\":%s}" (Obs.Json.num (sr_at params ~p_star ~q)))
  | Sweep { params; q; spec } ->
    if spec.n > t.max_sweep_n then
      Error
        ( "invalid_params",
          Printf.sprintf "n: exceeds this server's sweep limit (%d)"
            t.max_sweep_n )
    else begin
      let p_stars = Numerics.Grid.linspace ~lo:spec.lo ~hi:spec.hi ~n:spec.n in
      let srs = Array.map (fun p_star -> sr_at params ~p_star ~q) p_stars in
      Ok
        (Printf.sprintf "{\"p_stars\":%s,\"srs\":%s}"
           (Response.float_array_json p_stars)
           (Response.float_array_json srs))
    end
  | Quote { mu; sigma; spot } -> (
    match Market.Quote_table.lookup t.table ~mu ~sigma ~spot with
    | Ok { Market.Quote_table.p_star; sr } ->
      Ok
        (Printf.sprintf "{\"p_star\":%s,\"sr\":%s}" (Obs.Json.num p_star)
           (Obs.Json.num sr))
    | Error reason ->
      Error
        ( Market.Quote_table.reason_to_string reason,
          "no quote at these calibrated parameters" ))
  | Route { from_tok; to_tok; max_hops } -> (
    match Swapgraph.Router.best t.universe ~from_tok ~to_tok ~max_hops with
    | Ok { Swapgraph.Router.hops; sr; rate } ->
      Ok
        (Printf.sprintf "{\"path\":[%s],\"hops\":%s,\"sr\":%s,\"rate\":%s}"
           (String.concat "," (List.map Obs.Json.str hops))
           (Obs.Json.int (List.length hops - 1))
           (Obs.Json.num sr) (Obs.Json.num rate))
    | Error (Swapgraph.Router.Unknown_token tok) ->
      Error
        ( "invalid_params",
          Printf.sprintf "unknown token %S in this server's swap graph" tok )
    | Error Swapgraph.Router.No_route ->
      Error
        ( "no_route",
          Printf.sprintf "no path from %S to %S within %d hops" from_tok
            to_tok max_hops ))
  | Health ->
    let cs = Cache.stats t.cache in
    Ok
      (Printf.sprintf
         "{\"workers\":%d,\"alive\":%d,\"queue_depth\":%d,\"queue_capacity\":%d,\"draining\":%b,\"worker_restarts\":%d,\"internal_errors\":%d,\"cache\":{\"entries\":%d,\"capacity\":%d,\"hits\":%d,\"misses\":%d,\"evictions\":%d}}"
         (List.length t.worker_domains)
         (Atomic.get t.n_alive) (queue_depth t) t.queue_capacity (draining t)
         (Atomic.get t.n_restarts)
         (Atomic.get t.n_internal) (Cache.length t.cache) (Cache.capacity t.cache)
         cs.Cache.hits cs.Cache.misses cs.Cache.evictions)
  | Stats ->
    (* Live telemetry: like Health, never cached. *)
    Ok (Telemetry.stats_json ())

let computed_body t ?(clock = Telemetry.none) (req : Request.t) kind =
  Obs.Trace.with_span "serve.compute" (fun span ->
      Obs.Trace.annotate span "req" kind;
      Telemetry.stamp_compute_start clock;
      match compute_result t req with
      | Ok result ->
        Telemetry.stamp_compute_stop clock;
        Atomic.incr t.n_ok;
        Obs.Metrics.incr m_ok;
        Response.ok_body ~req:kind ~result
      | Error (code, message) ->
        Telemetry.stamp_compute_stop clock;
        Telemetry.set_status clock "error";
        Atomic.incr t.n_errors;
        Obs.Metrics.incr m_errors;
        Response.error_body ~req:kind ~code ~message ())

(* A cached body may be an ok or a cached error body ([invalid_params]
   sweeps, quote misses); the stage clock wants the status without
   re-deriving it, so scan the fixed [..,"status":".."] field near the
   front of the body.  Only runs on real clocks (cache hits with
   telemetry enabled). *)
let body_is_ok body =
  let pat = "\"status\":\"ok\"" in
  let m = String.length pat in
  let limit = min (String.length body - m) 48 in
  (* Char-by-char, not [String.sub = pat]: the sub would allocate per
     probe position, and this scans on every cache hit. *)
  let rec matches i j =
    j >= m
    || (String.unsafe_get body (i + j) = String.unsafe_get pat j
       && matches i (j + 1))
  in
  let rec go i = i <= limit && (matches i 0 || go (i + 1)) in
  go 0

(* Compute (or fetch) the response body for a parsed request, then
   assemble with the caller's id. *)
let respond ?(clock = Telemetry.none) t (req : Request.t) =
  let kind = Request.kind req in
  Telemetry.set_kind clock kind;
  Telemetry.set_id clock req.id;
  Atomic.incr t.n_requests;
  Obs.Metrics.incr m_requests;
  Obs.Metrics.incr (m_kind kind);
  let t0 = if Obs.Metrics.enabled () then Obs.Monotonic.now_int_ns () else 0 in
  let body =
    match req.body with
    | Health | Stats ->
      (* Live state: never cached, recomputed on every ask. *)
      computed_body t ~clock req kind
    | _ -> (
      let key = Request.key req in
      match Cache.find t.cache key with
      | Some body ->
        if Telemetry.is_real clock then begin
          Telemetry.stamp_cache clock ~hit:true;
          if not (body_is_ok body) then Telemetry.set_status clock "error"
        end;
        body
      | None ->
        Telemetry.stamp_cache clock ~hit:false;
        let body = computed_body t ~clock req kind in
        Cache.add t.cache key body;
        body)
  in
  if t0 <> 0 then
    Obs.Metrics.observe m_latency
      (float_of_int (Obs.Monotonic.now_int_ns () - t0) *. 1e-9);
  let resp = Response.assemble ~id:req.id body in
  Telemetry.stamp_encode clock;
  resp

let parse_failure ?(clock = Telemetry.none) t (err : Request.error) =
  if Telemetry.is_real clock then begin
    Telemetry.set_kind clock "error";
    Telemetry.set_id clock err.err_id;
    Telemetry.set_status clock "error"
  end;
  Atomic.incr t.n_parse_errors;
  Obs.Metrics.incr m_parse_errors;
  let resp = Response.error ~id:err.err_id ~code:err.code ~message:err.message () in
  Telemetry.stamp_encode clock;
  resp

let internal_error_response ?req ~id exn =
  Response.error ~id ?req ~code:"internal_error"
    ~message:
      (Printf.sprintf "request handler crashed: %s" (Printexc.to_string exn))
    ()

(* The synchronous path has no worker to restart: absorb the crash
   into a structured response so pipe servers, the reactor and batch
   callers keep their one-response-per-request contract. *)
let handle_decoded ?(clock = Telemetry.none) t (req : Request.t) =
  try respond ~clock t req
  with exn ->
    Atomic.incr t.n_internal;
    Obs.Metrics.incr m_internal;
    Telemetry.set_status clock "error";
    let resp =
      internal_error_response ~req:(Request.kind req) ~id:req.Request.id exn
    in
    Telemetry.stamp_encode clock;
    resp

let reject ?clock t err = parse_failure ?clock t err

let handle ?(clock = Telemetry.none) t line =
  match Request.decode line with
  | Error err ->
    Telemetry.stamp_decode clock;
    parse_failure ~clock t err
  | Ok req ->
    Telemetry.stamp_decode clock;
    handle_decoded ~clock t req

let handle_batch ?jobs t lines = Numerics.Pool.map_array ?jobs (handle t) lines

(* --- worker pool + admission control ------------------------------------ *)

exception Crashed
(* Internal: escalates a worker failure out of the worker loop after
   the in-flight ticket has been completed, so the supervisor registers
   a restart. *)

let finish_job job resp =
  Mutex.lock job.cell_mutex;
  job.resp <- Some resp;
  Condition.broadcast job.cell_cond;
  Mutex.unlock job.cell_mutex

let run_job t job =
  if Obs.Metrics.enabled () then
    Obs.Metrics.observe m_queue_wait
      (Obs.Monotonic.elapsed_s ~since_ns:job.enqueued_ns);
  let expired =
    match t.deadline_s with
    | Some d -> Obs.Monotonic.elapsed_s ~since_ns:job.enqueued_ns > d
    | None -> false
  in
  let resp =
    if expired then begin
      Atomic.incr t.n_deadline;
      Obs.Metrics.incr m_deadline;
      Telemetry.set_status job.clock "error";
      Response.error ~id:job.req.Request.id ~req:(Request.kind job.req)
        ~code:"deadline_exceeded"
        ~message:"request waited past the server deadline" ()
    end
    else respond ~clock:job.clock t job.req
  in
  finish_job job resp;
  (* The ticket resolving is the worker path's "flush". *)
  Telemetry.finish_now job.clock

(* Run one queued task.  A crash (evaluation exception or an injected
   poison task) completes the ticket with [internal_error] and then
   raises [Crashed] so the caller decides: workers escalate to their
   supervisor (restart + counter), [pump] absorbs it. *)
let run_task t task =
  match task with
  | Job job -> (
    try run_job t job
    with exn ->
      Atomic.incr t.n_internal;
      Obs.Metrics.incr m_internal;
      finish_job job
        (internal_error_response ~req:(Request.kind job.req)
           ~id:job.req.Request.id exn);
      Telemetry.set_status job.clock "error";
      Telemetry.finish_now job.clock;
      raise Crashed)
  | Crash job ->
    Atomic.incr t.n_internal;
    Obs.Metrics.incr m_internal;
    finish_job job
      (Response.error ~id:job.req.Request.id ~code:"internal_error"
         ~message:"injected worker crash" ());
    raise Crashed

type ticket = job

let await (job : ticket) =
  Mutex.lock job.cell_mutex;
  while job.resp = None do
    Condition.wait job.cell_cond job.cell_mutex
  done;
  let r = Option.get job.resp in
  Mutex.unlock job.cell_mutex;
  r

let enqueue ?(clock = Telemetry.none) t ~make_task (req : Request.t) =
  let shed message =
    Atomic.incr t.n_shed;
    Obs.Metrics.incr m_shed;
    if Telemetry.is_real clock then begin
      Telemetry.set_kind clock (Request.kind req);
      Telemetry.set_id clock req.Request.id;
      Telemetry.set_status clock "error";
      Telemetry.finish_now clock
    end;
    `Done
      (Response.error ~id:req.Request.id ~req:(Request.kind req)
         ~code:"overloaded" ~message ())
  in
  Mutex.lock t.q_mutex;
  if t.stopping then begin
    Mutex.unlock t.q_mutex;
    shed "server is shutting down"
  end
  else if Queue.length t.queue >= t.queue_capacity then begin
    Mutex.unlock t.q_mutex;
    shed "submission queue is full"
  end
  else begin
    let enqueued_ns = Obs.Monotonic.now_ns () in
    Telemetry.stamp_queue_at clock (Int64.to_int enqueued_ns);
    let job =
      {
        req;
        enqueued_ns;
        clock;
        cell_mutex = Mutex.create ();
        cell_cond = Condition.create ();
        resp = None;
      }
    in
    Queue.push (make_task job) t.queue;
    Obs.Metrics.max_gauge m_queue_hwm (float_of_int (Queue.length t.queue));
    Condition.signal t.q_nonempty;
    Mutex.unlock t.q_mutex;
    `Ticket job
  end

let submit ?clock t line =
  let clock =
    match clock with
    | Some c -> c
    | None ->
      (* The worker path is its own transport: no reactor read stamp,
         so the clock starts when the line reaches [submit]. *)
      Telemetry.make ~codec:"queue" ~read_ns:(Telemetry.now_ns ())
  in
  match Request.decode line with
  | Error err ->
    Telemetry.stamp_decode clock;
    let resp = parse_failure ~clock t err in
    Telemetry.finish_now clock;
    `Done resp
  | Ok req ->
    Telemetry.stamp_decode clock;
    enqueue ~clock t ~make_task:(fun j -> Job j) req

let inject_crash ?(id = "crash") t =
  (* The body is irrelevant (the task never reaches [respond]); Health
     is just the cheapest placeholder to construct. *)
  enqueue t
    ~make_task:(fun j -> Crash j)
    { Request.id = Some id; body = Request.Health }

let take_task t ~block =
  Mutex.lock t.q_mutex;
  if block then
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.q_nonempty t.q_mutex
    done;
  let task = Queue.take_opt t.queue in
  Mutex.unlock t.q_mutex;
  task

let pump t =
  match take_task t ~block:false with
  | Some task ->
    (try run_task t task with Crashed -> ());
    true
  | None -> false

let rec worker_loop t =
  match take_task t ~block:true with
  | Some task ->
    run_task t task;
    worker_loop t
  | None -> () (* stopping and drained *)

(* The supervisor: every escape from the worker loop short of a clean
   stop is a worker death.  The in-flight ticket was already completed
   by [run_task], so all that is left is to count the restart and
   resume consuming — on the same domain, which keeps the domain count
   an invariant of the engine instead of an unbounded spawn stream. *)
let supervised_worker t =
  Atomic.incr t.n_alive;
  let rec go () =
    match worker_loop t with
    | () -> ()
    | exception _ ->
      Atomic.incr t.n_restarts;
      Obs.Metrics.incr m_restarts;
      (* Flight-recorder crash trigger: the last N completed requests
         at the moment a worker died, written to the configured dump
         path (no-op when none is set). *)
      Telemetry.dump_to_path ~reason:"worker_crash";
      if not (draining t) then go ()
  in
  go ();
  Atomic.decr t.n_alive

(* --- lifecycle ----------------------------------------------------------- *)

let create ?workers ?(queue_capacity = 128) ?deadline_s ?(cache_shards = 8)
    ?(cache_capacity = 1024) ?(max_sweep_n = 4096) ?mus ?sigmas ?table
    ?universe ?(base = Swap.Params.defaults) () =
  if queue_capacity < 1 then
    invalid_arg "Engine.create: queue_capacity must be >= 1";
  (match deadline_s with
  | Some d when not (d > 0.) ->
    invalid_arg "Engine.create: deadline_s must be > 0"
  | _ -> ());
  let workers =
    match workers with
    | None -> Numerics.Pool.jobs ()
    | Some w when w >= 0 -> w
    | Some _ -> invalid_arg "Engine.create: workers must be >= 0"
  in
  let t =
    {
      base;
      (* Warm build: one full solve per grid node, fanned out on the
         shared pool, so the first quote request is already
         microseconds.  A caller holding a prebuilt table (bench legs
         comparing engines on identical grids) passes it in instead. *)
      table =
        (match table with
        | Some tb -> tb
        | None -> Market.Quote_table.build ?mus ?sigmas base);
      (* The route universe is engine configuration like the quote
         grid: built once (a handful of 2-party solves), then every
         route answer is a pure function of (universe, query). *)
      universe =
        (match universe with
        | Some u -> u
        | None -> Swap.Graphlink.default_universe ~base ());
      cache = Cache.create ~shards:cache_shards ~capacity:cache_capacity ();
      max_sweep_n;
      deadline_s;
      queue_capacity;
      queue = Queue.create ();
      q_mutex = Mutex.create ();
      q_nonempty = Condition.create ();
      worker_domains = [];
      stopping = false;
      n_requests = Atomic.make 0;
      n_parse_errors = Atomic.make 0;
      n_ok = Atomic.make 0;
      n_errors = Atomic.make 0;
      n_shed = Atomic.make 0;
      n_deadline = Atomic.make 0;
      n_internal = Atomic.make 0;
      n_restarts = Atomic.make 0;
      n_alive = Atomic.make 0;
    }
  in
  t.worker_domains <-
    List.init workers (fun _ -> Domain.spawn (fun () -> supervised_worker t));
  t

let workers t = List.length t.worker_domains
let quote_table t = t.table
let base_params t = t.base
let route_universe t = t.universe

let shutdown ?(drain = true) t =
  Mutex.lock t.q_mutex;
  let already = t.stopping in
  t.stopping <- true;
  let rejected =
    if drain || already then []
    else begin
      (* Fast abort: pull everything still queued and answer it below
         (outside the lock) so shutdown latency is one in-flight job. *)
      let l = Queue.fold (fun acc task -> task :: acc) [] t.queue in
      Queue.clear t.queue;
      List.rev l
    end
  in
  Condition.broadcast t.q_nonempty;
  Mutex.unlock t.q_mutex;
  List.iter
    (fun task ->
      Atomic.incr t.n_shed;
      Obs.Metrics.incr m_shed;
      match task with
      | Job job ->
        finish_job job
          (Response.error ~id:job.req.Request.id ~req:(Request.kind job.req)
             ~code:"overloaded" ~message:"server is shutting down" ())
      | Crash job ->
        finish_job job
          (Response.error ~id:job.req.Request.id ~code:"overloaded"
             ~message:"server is shutting down" ()))
    rejected;
  if not already then begin
    List.iter Domain.join t.worker_domains;
    t.worker_domains <- [];
    (* No workers left: drain anything still queued on this domain so
       every issued ticket resolves. *)
    while pump t do
      ()
    done
  end

let stop t = shutdown ~drain:true t

let stats t =
  {
    requests = Atomic.get t.n_requests;
    parse_errors = Atomic.get t.n_parse_errors;
    ok = Atomic.get t.n_ok;
    errors = Atomic.get t.n_errors;
    shed = Atomic.get t.n_shed;
    deadline_exceeded = Atomic.get t.n_deadline;
    internal_errors = Atomic.get t.n_internal;
    worker_restarts = Atomic.get t.n_restarts;
    cache = Cache.stats t.cache;
  }
