(** The swap-quote engine: request evaluation behind a sharded result
    cache, a dedicated {e supervised} worker pool with a bounded
    submission queue, and admission control.

    {b Byte-identity contract.}  Response bodies depend only on the
    canonical request bytes and the engine's configuration (base
    parameters + quote grid); the cache stores bodies and the id is
    spliced in at assembly.  Cached, batched ({!handle_batch} at any
    jobs count), and worker-pool responses are therefore byte-identical
    to a direct {!handle} call on an identically configured engine.
    [Health] and [Stats] are the deliberate exceptions: they report
    live engine state / telemetry and are never cached.

    {b Backpressure.}  {!submit} sheds with an [overloaded] error the
    moment the queue is full (never queueing without bound), and a
    queued request older than [deadline_s] is answered
    [deadline_exceeded] without computing.

    {b Supervision.}  A request whose evaluation raises never strands
    its ticket: the ticket is completed with a structured
    [internal_error] response, the worker loop that died is restarted
    in place (counted in [serve.worker_restarts] and
    {!stats}[.worker_restarts]), and the engine keeps serving.  On the
    synchronous {!handle} path the crash is absorbed into the same
    [internal_error] response.  {!inject_crash} forces one such
    death/restart cycle deterministically — the fault-injection hook
    the chaos bench and the supervision tests drive. *)

type t

val create :
  ?workers:int ->
  ?queue_capacity:int ->
  ?deadline_s:float ->
  ?cache_shards:int ->
  ?cache_capacity:int ->
  ?max_sweep_n:int ->
  ?mus:float array ->
  ?sigmas:float array ->
  ?table:Market.Quote_table.t ->
  ?universe:Swapgraph.Router.t ->
  ?base:Swap.Params.t ->
  unit ->
  t
(** Warm-builds the {!Market.Quote_table} (grid [mus] x [sigmas],
    defaults as in [Quote_table.build], fanned out on the shared
    domain pool) and spawns [workers] dedicated domains (default: the
    pool's jobs setting; [0] = no background workers — {!handle},
    {!handle_batch} and {!pump} still work).  [table] supplies a
    prebuilt quote table instead (then [mus]/[sigmas] are ignored) —
    for callers standing up several engines that must share one grid,
    e.g. a served engine and its byte-identity reference.  [universe]
    supplies the swap graph the [route] kind searches (default:
    {!Swap.Graphlink.default_universe} over [base]) — like the quote
    grid it is engine configuration, so route answers stay pure
    functions of the canonical request bytes and cache cleanly.
    [queue_capacity] (default 128) bounds the submission queue;
    [deadline_s] (default none) bounds queue wait; [max_sweep_n]
    (default 4096) caps sweep sizes with an [invalid_params] answer.
    @raise Invalid_argument on non-positive capacities or deadline. *)

val handle : ?clock:Telemetry.clock -> t -> string -> string
(** Parse, answer from the cache or compute, and encode — synchronously
    on the calling domain.  Never sheds, never raises on request
    evaluation (crashes become [internal_error] responses).  [clock]
    (default {!Telemetry.none}) receives the decode / cache-lookup /
    compute / encode stage stamps; the transport that owns the clock
    finalises it at flush. *)

val handle_decoded : ?clock:Telemetry.clock -> t -> Request.t -> string
(** {!handle} for an already-decoded request — the binary codec's
    compute path (its decoder is not line-based, so the reactor decodes
    and hands the typed request straight in).  Same crash absorption,
    caching and byte-identity contract as {!handle}. *)

val reject : ?clock:Telemetry.clock -> t -> Request.error -> string
(** The structured response for a request that failed decoding
    (either codec): counts the parse error and encodes
    [code]/[message] with the best-effort id echo. *)

val handle_batch : ?jobs:int -> t -> string array -> string array
(** Order-preserving parallel {!handle} over the shared
    [Numerics.Pool]; responses are byte-identical for any [jobs]. *)

type ticket

val submit :
  ?clock:Telemetry.clock -> t -> string -> [ `Done of string | `Ticket of ticket ]
(** Hand a request line to the worker pool.  [`Done] carries an
    immediate response: a parse error, or an [overloaded] shed when the
    queue is full (admission control) or the engine is stopping.
    [`Ticket] resolves via {!await} — always, even if the worker
    handling it crashes ([internal_error]) or {!shutdown} rejects it
    ([overloaded]).  Without an explicit [clock] the worker path stamps
    its own (codec ["queue"], queue-admit at enqueue, finalised when
    the ticket resolves). *)

val await : ticket -> string
(** Block until a worker (or {!pump}) answers the ticket. *)

val pump : t -> bool
(** Run one queued request on the calling domain; [false] when the
    queue is empty.  Lets transports or tests drive a worker-less
    engine deterministically.  A crashing task is absorbed (its ticket
    still resolves with [internal_error]); no restart is counted — the
    caller's domain did not die. *)

val inject_crash : ?id:string -> t -> [ `Done of string | `Ticket of ticket ]
(** Enqueue a poisoned task (admission control as {!submit}): the
    worker that takes it completes the ticket with [internal_error]
    ["injected worker crash"] and then dies; its supervisor restarts
    the loop and counts [serve.worker_restarts].  Deterministic — the
    chaos bench and the supervision tests force exactly the failure
    mode a real evaluation crash would produce.  [id] (default
    ["crash"]) is echoed in the response. *)

val shutdown : ?drain:bool -> t -> unit
(** Stop accepting new submissions (subsequent {!submit}s shed with
    [overloaded]).  With [~drain:true] (default) workers finish every
    queued job before being joined; with [~drain:false] still-queued
    jobs are answered [overloaded] ("server is shutting down")
    immediately, so shutdown waits only for the jobs already being
    computed.  Either way every issued ticket resolves and the queue
    is empty on return.  Idempotent; {!handle} keeps working after. *)

val stop : t -> unit
(** [shutdown ~drain:true] — the historical name. *)

val workers : t -> int
(** Worker domains spawned at {!create} (0 after {!shutdown}). *)

val alive_workers : t -> int
(** Worker loops currently consuming the queue.  Transiently below
    {!workers} while a supervisor is restarting a crashed loop; 0 after
    {!shutdown}. *)

val queue_depth : t -> int
(** Tasks currently queued (excludes jobs being computed). *)

val draining : t -> bool
(** True once {!shutdown} (either mode) has begun. *)

val quote_table : t -> Market.Quote_table.t
val base_params : t -> Swap.Params.t

val route_universe : t -> Swapgraph.Router.t
(** The swap graph behind the [route] kind (configured or default). *)

type stats = {
  requests : int;  (** Parsed requests (all modes). *)
  parse_errors : int;
  ok : int;  (** Computed [ok] bodies (cache hits not re-counted). *)
  errors : int;  (** Computed error bodies (ditto). *)
  shed : int;  (** Admission-control + shutdown rejections. *)
  deadline_exceeded : int;
  internal_errors : int;
      (** Evaluation crashes answered [internal_error] (includes
          injected ones). *)
  worker_restarts : int;  (** Supervisor restarts of died worker loops. *)
  cache : Cache.stats;
}

val stats : t -> stats
(** Exact per-engine counts; the shared [Obs.Metrics] registry carries
    the process-wide mirrors ([serve.*]). *)
