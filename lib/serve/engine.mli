(** The swap-quote engine: request evaluation behind a sharded result
    cache, a dedicated worker pool with a {e bounded} submission queue,
    and admission control.

    {b Byte-identity contract.}  Response bodies depend only on the
    canonical request bytes and the engine's configuration (base
    parameters + quote grid); the cache stores bodies and the id is
    spliced in at assembly.  Cached, batched ({!handle_batch} at any
    jobs count), and worker-pool responses are therefore byte-identical
    to a direct {!handle} call on an identically configured engine.

    {b Backpressure.}  {!submit} sheds with an [overloaded] error the
    moment the queue is full (never queueing without bound), and a
    queued request older than [deadline_s] is answered
    [deadline_exceeded] without computing. *)

type t

val create :
  ?workers:int ->
  ?queue_capacity:int ->
  ?deadline_s:float ->
  ?cache_shards:int ->
  ?cache_capacity:int ->
  ?max_sweep_n:int ->
  ?mus:float array ->
  ?sigmas:float array ->
  ?base:Swap.Params.t ->
  unit ->
  t
(** Warm-builds the {!Market.Quote_table} (grid [mus] x [sigmas],
    defaults as in [Quote_table.build], fanned out on the shared
    domain pool) and spawns [workers] dedicated domains (default: the
    pool's jobs setting; [0] = no background workers — {!handle},
    {!handle_batch} and {!pump} still work).  [queue_capacity]
    (default 128) bounds the submission queue; [deadline_s] (default
    none) bounds queue wait; [max_sweep_n] (default 4096) caps sweep
    sizes with an [invalid_params] answer.
    @raise Invalid_argument on non-positive capacities or deadline. *)

val handle : t -> string -> string
(** Parse, answer from the cache or compute, and encode — synchronously
    on the calling domain.  Never sheds. *)

val handle_batch : ?jobs:int -> t -> string array -> string array
(** Order-preserving parallel {!handle} over the shared
    [Numerics.Pool]; responses are byte-identical for any [jobs]. *)

type ticket

val submit : t -> string -> [ `Done of string | `Ticket of ticket ]
(** Hand a request line to the worker pool.  [`Done] carries an
    immediate response: a parse error, or an [overloaded] shed when the
    queue is full (admission control) or the engine is stopping.
    [`Ticket] resolves via {!await}. *)

val await : ticket -> string
(** Block until a worker (or {!pump}) answers the ticket. *)

val pump : t -> bool
(** Run one queued request on the calling domain; [false] when the
    queue is empty.  Lets transports or tests drive a worker-less
    engine deterministically. *)

val stop : t -> unit
(** Stop accepting queued work, join the worker domains, and drain any
    remaining queue on the caller so every issued ticket resolves.
    Subsequent {!submit}s shed; {!handle} keeps working. *)

val workers : t -> int
val quote_table : t -> Market.Quote_table.t
val base_params : t -> Swap.Params.t

type stats = {
  requests : int;  (** Parsed requests (all modes). *)
  parse_errors : int;
  ok : int;  (** Computed [ok] bodies (cache hits not re-counted). *)
  errors : int;  (** Computed error bodies (ditto). *)
  shed : int;  (** Admission-control rejections. *)
  deadline_exceeded : int;
  cache : Cache.stats;
}

val stats : t -> stats
(** Exact per-engine counts; the shared [Obs.Metrics] registry carries
    the process-wide mirrors ([serve.*]). *)
