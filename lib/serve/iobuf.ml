(* Growable byte buffer with a consumption cursor — the per-connection
   read/write staging area of the reactor.

   One [Bytes.t] backs both roles: producers append at the tail
   ([add_string] / [refill] from an fd), consumers take from the head
   ([consume] after parsing, [write] to an fd).  The head offset slides
   instead of shifting bytes on every consume; the buffer compacts
   (blit to offset 0) only when the tail runs out of room, and doubles
   when the live span itself does not fit.  An emptied buffer resets
   its offset so a long-lived idle connection does not pin a large
   window.

   Not domain-safe: each buffer is owned by exactly one reactor shard
   domain. *)

type t = { mutable buf : Bytes.t; mutable off : int; mutable len : int }

let create ?(initial = 4096) () =
  if initial < 1 then invalid_arg "Iobuf.create: initial must be >= 1";
  { buf = Bytes.create initial; off = 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

(* Make room for [n] more bytes at the tail: compact if the live span
   fits the current storage, otherwise grow geometrically. *)
let reserve t n =
  let cap = Bytes.length t.buf in
  if t.off + t.len + n > cap then
    if t.len + n <= cap then begin
      Bytes.blit t.buf t.off t.buf 0 t.len;
      t.off <- 0
    end
    else begin
      let want = t.len + n in
      let cap' = ref (max cap 1) in
      while !cap' < want do
        cap' := !cap' * 2
      done;
      let b = Bytes.create !cap' in
      Bytes.blit t.buf t.off b 0 t.len;
      t.buf <- b;
      t.off <- 0
    end

let add_string t s =
  let n = String.length s in
  reserve t n;
  Bytes.blit_string s 0 t.buf (t.off + t.len) n;
  t.len <- t.len + n

let add_char t c =
  reserve t 1;
  Bytes.set t.buf (t.off + t.len) c;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Iobuf.get: out of bounds";
  Bytes.get t.buf (t.off + i)

let get_u32_be t pos =
  if pos < 0 || pos + 4 > t.len then invalid_arg "Iobuf.get_u32_be";
  let b i = Char.code (Bytes.get t.buf (t.off + pos + i)) in
  (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3

let index t c =
  (* index_from searches the raw storage; a hit beyond the live span is
     stale garbage and must read as "not found". *)
  match Bytes.index_from_opt t.buf t.off c with
  | Some j when j < t.off + t.len -> j - t.off
  | Some _ | None -> -1

let sub t pos n =
  if pos < 0 || n < 0 || pos + n > t.len then
    invalid_arg "Iobuf.sub: out of bounds";
  Bytes.sub_string t.buf (t.off + pos) n

let consume t n =
  if n < 0 || n > t.len then invalid_arg "Iobuf.consume: out of bounds";
  t.off <- t.off + n;
  t.len <- t.len - n;
  if t.len = 0 then t.off <- 0

let refill t fd ~max =
  reserve t max;
  let n = Unix.read fd t.buf (t.off + t.len) max in
  t.len <- t.len + n;
  n

let write t fd =
  if t.len = 0 then 0
  else begin
    (* single_write: exactly one write(2), so a partial transfer on a
       non-blocking fd reports how much actually left the buffer
       (Unix.write retries internally and loses that count on EAGAIN). *)
    let n = Unix.single_write fd t.buf t.off t.len in
    consume t n;
    n
  end
