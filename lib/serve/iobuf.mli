(** Growable byte buffer with a consumption cursor — the reactor's
    per-connection read/write staging area.

    Producers append at the tail ({!add_string}, {!refill}); consumers
    take from the head ({!consume}, {!write}).  Amortised O(1) appends
    (slide-offset + compact-on-demand + geometric growth).  {b Not}
    domain-safe: a buffer is owned by one reactor shard domain. *)

type t

val create : ?initial:int -> unit -> t
(** Fresh empty buffer ([initial] storage bytes, default 4096).
    @raise Invalid_argument when [initial < 1]. *)

val length : t -> int
(** Bytes currently buffered (unconsumed). *)

val is_empty : t -> bool

val add_string : t -> string -> unit
val add_char : t -> char -> unit

val get : t -> int -> char
(** Byte at logical position [i] ([0] = next byte to consume).
    @raise Invalid_argument out of bounds. *)

val get_u32_be : t -> int -> int
(** Big-endian u32 at logical position [pos], as a non-negative [int].
    @raise Invalid_argument when fewer than 4 bytes are available. *)

val index : t -> char -> int
(** Logical position of the first occurrence of a byte, or [-1]. *)

val sub : t -> int -> int -> string
(** Copy of [n] bytes from logical position [pos]; does not consume.
    @raise Invalid_argument out of bounds. *)

val consume : t -> int -> unit
(** Drop [n] bytes from the head.
    @raise Invalid_argument when [n] exceeds {!length}. *)

val refill : t -> Unix.file_descr -> max:int -> int
(** One [Unix.read] of up to [max] bytes appended at the tail; returns
    the byte count (0 = EOF).  Raises [Unix.Unix_error] as [read] does
    (including [EAGAIN] on a drained non-blocking fd). *)

val write : t -> Unix.file_descr -> int
(** One [Unix.single_write] from the head; consumes and returns what
    was written (0 when empty).  Raises [Unix.Unix_error] as [write]
    does — on [EAGAIN] nothing is consumed. *)
