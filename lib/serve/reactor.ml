(* Event-driven socket transport: a fixed set of shard domains, each
   multiplexing its connections with [Unix.select] over non-blocking
   fds — replacing the domain-per-connection blocking design, whose
   spawn/join and context-switch cost capped throughput far below the
   engine's compute ceiling.

   Shape: one accepter domain parks in [accept] and deals new
   connections round-robin to shards through a mutex-guarded inbox +
   self-pipe wake-up (the only cross-domain handoff; everything else a
   shard touches is shard-owned).  Each shard loop selects on its wake
   pipe and its connections, reads whatever is available into a
   per-connection [Iobuf], answers {e every complete request already
   buffered} before returning to [select] (request pipelining), and
   accumulates responses in a write [Iobuf] flushed with single
   non-blocking writes (response batching: a 64-request burst costs a
   couple of syscalls each way, not 128).

   Compute runs inline on the shard domain via the engine's
   crash-absorbing [handle]/[handle_decoded] — at the observed ~99%
   cache hit rate a handoff to the worker queue would cost more in
   condvar wake-ups than the lookup itself.  The engine's worker pool
   still serves [submit]/[await] callers and the supervision story
   ([inject_crash] crash/restart cycles) unchanged.

   Codec negotiation is first-bytes sniffing, per connection: payloads
   starting with [Binary.magic] speak length-prefixed [htlc-serve/b1],
   anything else is newline-delimited [htlc-serve/v1] JSON (canonical
   requests start ['{'], so the magic is unambiguous; bytes that are a
   strict prefix of the magic park the decision until more arrive).

   Fault behaviour matches the old transport: read/write errors are
   counted and classified under [serve.connection_errors{reason}], a
   clean EOF is not an error, and protocol violations (oversized
   frame/line) close the connection with a [.protocol] count.  A final
   un-terminated JSON line before EOF is still answered, mirroring
   [input_line]; a torn trailing binary frame is dropped — its length
   prefix promises bytes that never arrived.

   Limits: [select]'s FD_SETSIZE bounds each shard to ~1024 live fds
   (the portable stdlib ceiling — spread load over more shards), and
   readiness scans are O(conns) per wake, which is fine into the
   thousands of connections this targets. *)

let read_chunk = 65536
let max_line = Binary.max_frame

(* Stop reading a connection whose unsent responses pile past this;
   select re-admits it once the peer drains.  Bounds memory against a
   client that writes requests but never reads answers. *)
let wbuf_hwm = 1 lsl 20

let m_connections = Obs.Metrics.counter "serve.connections"
let m_conn_requests = Obs.Metrics.counter "serve.connection_requests"
let m_conn_errors = Obs.Metrics.counter "serve.connection_errors"

(* Classified sub-counters (the {reason} dimension): registration is
   idempotent, so resolving on each event is cheap and keeps the set of
   reasons open-ended. *)
let count_conn_error_reason reason =
  Obs.Metrics.incr m_conn_errors;
  Obs.Metrics.incr (Obs.Metrics.counter ("serve.connection_errors." ^ reason))

(* EPIPE and ECONNRESET get their own buckets — they are the signature
   of mid-response disconnects and resets, exactly what the chaos
   transport injects — everything else folds into coarse classes. *)
let conn_error_reason = function
  | Sys_error _ -> "sys_error"
  | Unix.Unix_error (Unix.EPIPE, _, _) -> "epipe"
  | Unix.Unix_error (Unix.ECONNRESET, _, _) -> "econnreset"
  | Unix.Unix_error (_, _, _) -> "unix_error"
  | _ -> "handler_crash"

let count_conn_error exn = count_conn_error_reason (conn_error_reason exn)

type codec = Detecting | Json | Binary_b1

type conn = {
  fd : Unix.file_descr;
  rbuf : Iobuf.t;
  wbuf : Iobuf.t;
  mutable codec : codec;
  mutable eof : bool;  (* peer half-closed; flush what is owed, then close *)
  mutable dead : bool;  (* closed; reaped at the end of the loop pass *)
  (* Stage clocks of answered-but-unflushed requests, in arrival
     order; finalised when the write buffer drains to the kernel, or
     at [kill].  A growable array rather than a list: appending a cons
     cell per request and reversing at flush cost ~6 words/request,
     and the array doubles rarely then never allocates again.  Empty
     whenever telemetry is disabled. *)
  mutable pending : Telemetry.clock array;
  mutable n_pending : int;
  (* Finalised clocks recycled through [Telemetry.reinit]: a pipelining
     connection reuses the same few records instead of allocating one
     per request (the flight recorder copies, so a finalised clock has
     no other owner).  Overflow past the stack just falls back to
     [Telemetry.make]. *)
  spares : Telemetry.clock array;
  mutable n_spare : int;
}

type shard = {
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  inbox_mutex : Mutex.t;
  mutable inbox : Unix.file_descr list;
  (* Below: shard-domain-owned, no lock. *)
  mutable conns : conn list;
  mutable domain : unit Domain.t option;
}

type t = {
  engine : Engine.t;
  listen_fd : Unix.file_descr;
  shards_ : shard array;
  closing : bool Atomic.t;
  next_shard : int Atomic.t;
  mutable accepter : unit Domain.t option;
}

let shards t = Array.length t.shards_

(* --- cross-domain handoff ------------------------------------------------- *)

let notify s =
  let b = Bytes.make 1 'w' in
  match Unix.single_write s.wake_w b 0 1 with
  | _ -> ()
  | exception
      Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE), _, _) ->
    (* Pipe full: a wake-up is already pending, which is all we need. *)
    ()

let rec drain_wake s buf =
  match Unix.read s.wake_r buf 0 (Bytes.length buf) with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
    ()
  | n -> if n = Bytes.length buf then drain_wake s buf

(* --- per-connection state machine ----------------------------------------- *)

let add_pending conn clock =
  let n = conn.n_pending in
  if n = Array.length conn.pending then begin
    let bigger = Array.make (max 16 (2 * n)) Telemetry.none in
    Array.blit conn.pending 0 bigger 0 n;
    conn.pending <- bigger
  end;
  conn.pending.(n) <- clock;
  conn.n_pending <- n + 1

let finalize_pending conn =
  if conn.n_pending > 0 then begin
    let now = Telemetry.now_ns () in
    for i = 0 to conn.n_pending - 1 do
      let c = conn.pending.(i) in
      conn.pending.(i) <- Telemetry.none;
      Telemetry.finish c ~flush_ns:now;
      if conn.n_spare < Array.length conn.spares then begin
        conn.spares.(conn.n_spare) <- c;
        conn.n_spare <- conn.n_spare + 1
      end
    done;
    conn.n_pending <- 0
  end

let take_clock conn ~codec ~read_ns =
  if conn.n_spare > 0 then begin
    let n = conn.n_spare - 1 in
    conn.n_spare <- n;
    let c = conn.spares.(n) in
    conn.spares.(n) <- Telemetry.none;
    Telemetry.reinit c ~codec ~read_ns
  end
  else Telemetry.make ~codec ~read_ns

let kill conn =
  if not conn.dead then begin
    conn.dead <- true;
    (* Whatever was answered but never flushed still finalises — the
       flight recorder must see requests that died mid-write. *)
    finalize_pending conn;
    (try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

(* Returns [true] once the codec is known; [false] parks the decision
   (buffered bytes are a strict prefix of the magic). *)
let detect conn =
  let l = Iobuf.length conn.rbuf in
  let m = min l 4 in
  let is_prefix = ref true in
  for i = 0 to m - 1 do
    if Iobuf.get conn.rbuf i <> Binary.magic.[i] then is_prefix := false
  done;
  if not !is_prefix then begin
    conn.codec <- Json;
    true
  end
  else if l >= 4 then begin
    Iobuf.consume conn.rbuf 4;
    conn.codec <- Binary_b1;
    true
  end
  else false

let answer_json t conn ~read_ns line =
  if String.trim line <> "" then begin
    Obs.Metrics.incr m_conn_requests;
    let clock = take_clock conn ~codec:"json" ~read_ns in
    Iobuf.add_string conn.wbuf (Engine.handle ~clock t.engine line);
    Iobuf.add_char conn.wbuf '\n';
    if Telemetry.is_real clock then add_pending conn clock
  end

(* [read_ns] is the read-complete stamp for every request in this
   batch: pipelined requests that arrived in one readiness event share
   the timestamp of the read that completed them. *)
let rec process t conn ~read_ns =
  if not conn.dead then
    match conn.codec with
    | Detecting -> if detect conn then process t conn ~read_ns
    | Json -> (
      match Iobuf.index conn.rbuf '\n' with
      | -1 ->
        if Iobuf.length conn.rbuf > max_line then begin
          count_conn_error_reason "protocol";
          kill conn
        end
      | i ->
        let line = Iobuf.sub conn.rbuf 0 i in
        Iobuf.consume conn.rbuf (i + 1);
        answer_json t conn ~read_ns line;
        process t conn ~read_ns)
    | Binary_b1 -> (
      match Binary.decode_frame conn.rbuf with
      | `Need_more -> ()
      | `Too_large _ ->
        count_conn_error_reason "protocol";
        kill conn
      | `Frame payload ->
        Obs.Metrics.incr m_conn_requests;
        let clock = take_clock conn ~codec:"binary" ~read_ns in
        let body =
          match Binary.decode_payload payload with
          | Ok req ->
            Telemetry.stamp_decode clock;
            Engine.handle_decoded ~clock t.engine req
          | Error err ->
            Telemetry.stamp_decode clock;
            Engine.reject ~clock t.engine err
        in
        Iobuf.add_string conn.wbuf (Binary.frame_response body);
        if Telemetry.is_real clock then add_pending conn clock;
        process t conn ~read_ns)

let rec try_flush conn =
  if (not conn.dead) && not (Iobuf.is_empty conn.wbuf) then
    match Iobuf.write conn.wbuf conn.fd with
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
      ()
    | exception exn ->
      (* Write into a reset/closed peer: classify and reclaim the slot —
         never die silently, never take the shard down. *)
      count_conn_error exn;
      kill conn
    | 0 -> ()
    | _ -> try_flush conn

let flush_and_reap conn =
  try_flush conn;
  (* Every buffered response reached the kernel: that is the flush
     stamp for everything answered on this connection so far.  (On a
     partial flush the clocks wait for the next writable pass — the
     flush stage measures the peer's drain, which is the point.) *)
  if (not conn.dead) && Iobuf.is_empty conn.wbuf then finalize_pending conn;
  if (not conn.dead) && conn.eof && Iobuf.is_empty conn.wbuf then kill conn

let handle_read t conn =
  match Iobuf.refill conn.rbuf conn.fd ~max:read_chunk with
  | exception
      Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
    ()
  | exception exn ->
    count_conn_error exn;
    kill conn
  | 0 ->
    (* EOF.  Mirror [input_line]: a final un-terminated JSON line is
       still a request; a torn trailing binary frame is not (its length
       prefix promises bytes that never arrived). *)
    conn.eof <- true;
    (match conn.codec with
    | Detecting | Json ->
      if Iobuf.length conn.rbuf > 0 then begin
        let line = Iobuf.sub conn.rbuf 0 (Iobuf.length conn.rbuf) in
        Iobuf.consume conn.rbuf (Iobuf.length conn.rbuf);
        conn.codec <- Json;
        answer_json t conn ~read_ns:(Telemetry.now_ns ()) line
      end
    | Binary_b1 -> ());
    flush_and_reap conn
  | _n ->
    let read_ns =
      if Telemetry.enabled () then Telemetry.now_ns () else 0
    in
    process t conn ~read_ns;
    flush_and_reap conn

(* --- shard event loop ------------------------------------------------------ *)

let make_conn fd =
  {
    fd;
    rbuf = Iobuf.create ~initial:8192 ();
    wbuf = Iobuf.create ~initial:8192 ();
    codec = Detecting;
    eof = false;
    dead = false;
    pending = [||];
    n_pending = 0;
    spares = Array.make 128 Telemetry.none;
    n_spare = 0;
  }

let shard_loop t s =
  let wake_buf = Bytes.create 64 in
  let rec loop () =
    (* Adopt newly accepted connections first, so a shutdown pass below
       closes them too instead of leaking the fds. *)
    Mutex.lock s.inbox_mutex;
    let fresh = s.inbox in
    s.inbox <- [];
    Mutex.unlock s.inbox_mutex;
    List.iter (fun fd -> s.conns <- make_conn fd :: s.conns) fresh;
    if Atomic.get t.closing then begin
      List.iter kill s.conns;
      s.conns <- []
    end
    else begin
      let rds =
        s.wake_r
        :: List.filter_map
             (fun c ->
               if (not c.dead) && (not c.eof) && Iobuf.length c.wbuf < wbuf_hwm
               then Some c.fd
               else None)
             s.conns
      in
      let wrs =
        List.filter_map
          (fun c ->
            if (not c.dead) && not (Iobuf.is_empty c.wbuf) then Some c.fd
            else None)
          s.conns
      in
      (match Unix.select rds wrs [] (-1.) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | rready, wready, _ ->
        if List.memq s.wake_r rready then drain_wake s wake_buf;
        (* A bug in per-connection handling must cost that connection,
           never the shard: classify, reclaim the slot, keep looping. *)
        let protect f c =
          try f c
          with exn ->
            count_conn_error exn;
            kill c
        in
        List.iter
          (fun c ->
            if (not c.dead) && List.memq c.fd wready then
              protect flush_and_reap c)
          s.conns;
        List.iter
          (fun c ->
            if (not c.dead) && List.memq c.fd rready then
              protect (handle_read t) c)
          s.conns;
        s.conns <- List.filter (fun c -> not c.dead) s.conns);
      loop ()
    end
  in
  loop ()

(* --- accepter -------------------------------------------------------------- *)

let rec accept_loop t =
  match Unix.accept t.listen_fd with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop t
  | exception _ ->
    (* The listening socket was shut down (or the process is in real
       trouble); either way stop accepting. *)
    ()
  | fd, _ ->
    if Atomic.get t.closing then
      (* Shutdown's wake-up self-connect (or a client that lost the
         race with it): drop it and stop accepting. *)
      try Unix.close fd with Unix.Unix_error _ -> ()
    else begin
      Obs.Metrics.incr m_connections;
      (try Unix.set_nonblock fd with Unix.Unix_error _ -> ());
      let i = Atomic.fetch_and_add t.next_shard 1 mod Array.length t.shards_ in
      let s = t.shards_.(i) in
      Mutex.lock s.inbox_mutex;
      s.inbox <- fd :: s.inbox;
      Mutex.unlock s.inbox_mutex;
      notify s;
      accept_loop t
    end

(* --- lifecycle ------------------------------------------------------------- *)

let start engine ~listen_fd ?shards () =
  let shards =
    match shards with
    | None -> Numerics.Pool.jobs ()
    | Some n when n >= 1 -> n
    | Some _ -> invalid_arg "Reactor.start: shards must be >= 1"
  in
  let mk_shard () =
    let wake_r, wake_w = Unix.pipe () in
    Unix.set_nonblock wake_r;
    Unix.set_nonblock wake_w;
    {
      wake_r;
      wake_w;
      inbox_mutex = Mutex.create ();
      inbox = [];
      conns = [];
      domain = None;
    }
  in
  let t =
    {
      engine;
      listen_fd;
      shards_ = Array.init shards (fun _ -> mk_shard ());
      closing = Atomic.make false;
      next_shard = Atomic.make 0;
      accepter = None;
    }
  in
  Array.iter
    (fun s -> s.domain <- Some (Domain.spawn (fun () -> shard_loop t s)))
    t.shards_;
  t.accepter <- Some (Domain.spawn (fun () -> accept_loop t));
  t

let stop ?wake t =
  if not (Atomic.exchange t.closing true) then begin
    (* Waking a blocked [accept]: closing the fd does NOT interrupt a
       thread already parked in accept(2) on Linux, so shut the
       listening socket down (pops the accept with an error); [wake] is
       the caller's fallback for platforms that ignore listening-socket
       shutdown (the server self-connects). *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    (match wake with Some f -> f () | None -> ());
    Option.iter Domain.join t.accepter;
    t.accepter <- None;
    (* The accepter is gone, so inboxes are frozen; each shard adopts
       its inbox before checking [closing], closes everything, and
       exits. *)
    Array.iter notify t.shards_;
    Array.iter
      (fun s ->
        Option.iter Domain.join s.domain;
        s.domain <- None)
      t.shards_;
    Array.iter
      (fun s ->
        (try Unix.close s.wake_r with Unix.Unix_error _ -> ());
        try Unix.close s.wake_w with Unix.Unix_error _ -> ())
      t.shards_
  end
