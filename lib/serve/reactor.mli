(** Event-driven socket transport: a fixed set of shard domains
    multiplexing non-blocking connections with [Unix.select] — request
    pipelining in, response batching out, compute inline through the
    engine's crash-absorbing paths.

    Each connection speaks one of two codecs, negotiated from its first
    bytes: {!Binary.magic} selects length-prefixed [htlc-serve/b1],
    anything else (canonical requests start ['{']) is newline-delimited
    [htlc-serve/v1] JSON.  Responses preserve per-connection request
    order, and bodies are byte-identical across codecs — a [b1]
    response frame carries exactly the JSON line's bytes.

    {b Fault behaviour.}  Read/write errors are counted and classified
    under [serve.connection_errors] (sub-counters [.epipe],
    [.econnreset], [.sys_error], [.unix_error], [.handler_crash], plus
    [.protocol] for oversized frames/lines); the connection slot is
    reclaimed and the shard keeps serving.  A peer hanging up cleanly
    (EOF) is not an error: buffered responses are still flushed, and a
    final un-terminated JSON line is still answered (mirroring the old
    [input_line] transport).  Torn trailing binary frames are dropped.

    {b Limits.}  [select] bounds each shard to ~1024 live fds (spread
    load over more shards); readiness scans are O(connections) per
    wake. *)

type t

val start : Engine.t -> listen_fd:Unix.file_descr -> ?shards:int -> unit -> t
(** Spawn the accepter domain (parked in [accept] on [listen_fd],
    dealing connections round-robin) and [shards] event-loop domains
    (default: the [Numerics.Pool] jobs setting).  The caller keeps
    ownership of [listen_fd] — {!stop} shuts it down but does not close
    it.
    @raise Invalid_argument when [shards < 1]. *)

val shards : t -> int

val stop : ?wake:(unit -> unit) -> t -> unit
(** Shut down the listening socket (pops the parked accept), run [wake]
    as a fallback accept-unblocker (e.g. a self-connect — for platforms
    that ignore listening-socket shutdown), then join the accepter,
    wake every shard, close every live connection (clients see EOF) and
    join the shard domains.  Idempotent. *)
