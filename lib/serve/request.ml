(* Typed requests for the swap-quote service, with a canonical JSON-line
   codec (schema htlc-serve/v1).

   The canonical form fixes field order and number formatting (via
   Obs.Json, which round-trips floats), so [key] — the canonical bytes
   without the client-chosen [id] — is a stable cache key: two requests
   asking the same question produce the same bytes no matter how the
   client ordered or spaced its JSON.  Decoding is strict: unknown keys
   are rejected (typos must not silently select defaults in a versioned
   protocol), and value errors are separated from syntax errors so the
   service can answer [invalid_params] vs [parse_error]. *)

module J = Obs.Json
module P = Obs.Json_parse

let schema = "htlc-serve/v1"

type sweep_spec = { lo : float; hi : float; n : int }

type body =
  | Cutoffs of { params : Swap.Params.t; p_star : float }
  | Success_rate of { params : Swap.Params.t; p_star : float; q : float }
  | Sweep of { params : Swap.Params.t; q : float; spec : sweep_spec }
  | Quote of { mu : float; sigma : float; spot : float }
  | Health

type t = { id : string option; body : body }

type error = { err_id : string option; code : string; message : string }

let kind t =
  match t.body with
  | Cutoffs _ -> "cutoffs"
  | Success_rate _ -> "success_rate"
  | Sweep _ -> "sweep"
  | Quote _ -> "quote"
  | Health -> "health"

(* --- canonical encoding ------------------------------------------------- *)

let params_json (p : Swap.Params.t) =
  Printf.sprintf
    "{\"alpha_a\":%s,\"alpha_b\":%s,\"r_a\":%s,\"r_b\":%s,\"tau_a\":%s,\"tau_b\":%s,\"eps_b\":%s,\"p0\":%s,\"mu\":%s,\"sigma\":%s}"
    (J.num p.alice.alpha) (J.num p.bob.alpha) (J.num p.alice.r)
    (J.num p.bob.r) (J.num p.tau_a) (J.num p.tau_b) (J.num p.eps_b)
    (J.num p.p0) (J.num p.mu) (J.num p.sigma)

let body_fields = function
  | Cutoffs { params; p_star } ->
    Printf.sprintf "\"req\":\"cutoffs\",\"params\":%s,\"p_star\":%s"
      (params_json params) (J.num p_star)
  | Success_rate { params; p_star; q } ->
    Printf.sprintf
      "\"req\":\"success_rate\",\"params\":%s,\"p_star\":%s,\"q\":%s"
      (params_json params) (J.num p_star) (J.num q)
  | Sweep { params; q; spec } ->
    Printf.sprintf
      "\"req\":\"sweep\",\"params\":%s,\"q\":%s,\"lo\":%s,\"hi\":%s,\"n\":%s"
      (params_json params) (J.num q) (J.num spec.lo) (J.num spec.hi)
      (J.int spec.n)
  | Quote { mu; sigma; spot } ->
    Printf.sprintf "\"req\":\"quote\",\"mu\":%s,\"sigma\":%s,\"spot\":%s"
      (J.num mu) (J.num sigma) (J.num spot)
  | Health -> "\"req\":\"health\""

let key t =
  Printf.sprintf "{\"schema\":%s,%s}" (J.str schema) (body_fields t.body)

let encode t =
  match t.id with
  | None -> key t
  | Some id ->
    Printf.sprintf "{\"schema\":%s,\"id\":%s,%s}" (J.str schema) (J.str id)
      (body_fields t.body)

(* --- decoding ----------------------------------------------------------- *)

exception Invalid of string
(* Internal: value-level rejection (well-formed JSON, bad contents). *)

let invalid fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

let finite_num path v =
  let x = P.as_num path v in
  if not (Float.is_finite x) then invalid "%s: must be finite" path;
  x

let check_keys path allowed fields =
  List.iter
    (fun (k, _) ->
      if not (List.mem k allowed) then invalid "%s: unknown key %S" path k)
    fields

let decode_params root =
  match P.member_opt root "params" with
  | None -> Swap.Params.defaults
  | Some pj ->
    let fields = P.as_obj "params" pj in
    check_keys "params"
      [
        "alpha_a"; "alpha_b"; "r_a"; "r_b"; "tau_a"; "tau_b"; "eps_b"; "p0";
        "mu"; "sigma";
      ]
      fields;
    let get name dflt =
      match P.member_opt pj name with
      | None -> dflt
      | Some v -> finite_num (Printf.sprintf "params.%s" name) v
    in
    let d = Swap.Params.defaults in
    let p =
      {
        Swap.Params.alice =
          {
            Swap.Params.alpha = get "alpha_a" d.Swap.Params.alice.alpha;
            r = get "r_a" d.Swap.Params.alice.r;
          };
        bob =
          {
            Swap.Params.alpha = get "alpha_b" d.Swap.Params.bob.alpha;
            r = get "r_b" d.Swap.Params.bob.r;
          };
        tau_a = get "tau_a" d.Swap.Params.tau_a;
        tau_b = get "tau_b" d.Swap.Params.tau_b;
        eps_b = get "eps_b" d.Swap.Params.eps_b;
        p0 = get "p0" d.Swap.Params.p0;
        mu = get "mu" d.Swap.Params.mu;
        sigma = get "sigma" d.Swap.Params.sigma;
      }
    in
    (match Swap.Params.validate p with
    | Ok () -> ()
    | Error msg -> invalid "params: %s" msg);
    p

let require root name =
  match P.member_opt root name with
  | Some v -> v
  | None -> P.bad "missing key %S" name

let positive path x =
  if not (x > 0.) then invalid "%s: must be > 0" path;
  x

let decode_q root =
  match P.member_opt root "q" with
  | None -> 0.
  | Some v ->
    let q = finite_num "q" v in
    if q < 0. then invalid "q: must be >= 0";
    q

let common_keys = [ "schema"; "id"; "req"; "params" ]

let decode_root root =
  (* Best-effort id, so even rejected requests can be correlated by the
     client; the success path still validates it strictly below. *)
  let err_id =
    match P.member_opt root "id" with Some (P.Str s) -> Some s | _ -> None
  in
  match
    let fields = P.as_obj "request" root in
    let sc = P.as_str "schema" (require root "schema") in
    if sc <> schema then P.bad "unknown schema %S (want %S)" sc schema;
    let id =
      match P.member_opt root "id" with
      | None -> None
      | Some v -> Some (P.as_str "id" v)
    in
    let req = P.as_str "req" (require root "req") in
    let body =
      match req with
      | "cutoffs" ->
        check_keys "request" ("p_star" :: common_keys) fields;
        let p_star = positive "p_star" (finite_num "p_star" (require root "p_star")) in
        Cutoffs { params = decode_params root; p_star }
      | "success_rate" ->
        check_keys "request" ("p_star" :: "q" :: common_keys) fields;
        let p_star = positive "p_star" (finite_num "p_star" (require root "p_star")) in
        Success_rate { params = decode_params root; p_star; q = decode_q root }
      | "sweep" ->
        check_keys "request" ("q" :: "lo" :: "hi" :: "n" :: common_keys) fields;
        let lo = positive "lo" (finite_num "lo" (require root "lo")) in
        let hi = finite_num "hi" (require root "hi") in
        if hi <= lo then invalid "hi: must be > lo";
        let n_f = finite_num "n" (require root "n") in
        if (not (Float.is_integer n_f)) || n_f < 2. then
          invalid "n: must be an integer >= 2";
        Sweep
          {
            params = decode_params root;
            q = decode_q root;
            spec = { lo; hi; n = int_of_float n_f };
          }
      | "quote" ->
        check_keys "request" ("mu" :: "sigma" :: "spot" :: common_keys) fields;
        let mu = finite_num "mu" (require root "mu") in
        let sigma = finite_num "sigma" (require root "sigma") in
        let spot = finite_num "spot" (require root "spot") in
        Quote { mu; sigma; spot }
      | "health" ->
        (* No params: health reports live engine state, so there is
           nothing to parameterise and nothing to cache. *)
        check_keys "request" [ "schema"; "id"; "req" ] fields;
        Health
      | other -> P.bad "unknown req %S" other
    in
    { id; body }
  with
  | t -> Ok t
  | exception P.Bad msg ->
    Error { err_id; code = "parse_error"; message = msg }
  | exception Invalid msg ->
    Error { err_id; code = "invalid_params"; message = msg }

let decode line =
  match P.parse line with
  | exception P.Bad msg ->
    Error { err_id = None; code = "parse_error"; message = msg }
  | root -> decode_root root
