(* Typed requests for the swap-quote service, with a canonical JSON-line
   codec (schema htlc-serve/v1).

   The canonical form fixes field order and number formatting (via
   Obs.Json, which round-trips floats), so [key] — the canonical bytes
   without the client-chosen [id] — is a stable cache key: two requests
   asking the same question produce the same bytes no matter how the
   client ordered or spaced its JSON.  Decoding is strict: unknown keys
   are rejected (typos must not silently select defaults in a versioned
   protocol), and value errors are separated from syntax errors so the
   service can answer [invalid_params] vs [parse_error]. *)

module J = Obs.Json
module P = Obs.Json_parse

let schema = "htlc-serve/v1"

type sweep_spec = { lo : float; hi : float; n : int }

type body =
  | Cutoffs of { params : Swap.Params.t; p_star : float }
  | Success_rate of { params : Swap.Params.t; p_star : float; q : float }
  | Sweep of { params : Swap.Params.t; q : float; spec : sweep_spec }
  | Quote of { mu : float; sigma : float; spot : float }
  | Route of { from_tok : string; to_tok : string; max_hops : int }
  | Health
  | Stats

type t = { id : string option; body : body }

type error = { err_id : string option; code : string; message : string }

let kind t =
  match t.body with
  | Cutoffs _ -> "cutoffs"
  | Success_rate _ -> "success_rate"
  | Sweep _ -> "sweep"
  | Quote _ -> "quote"
  | Route _ -> "route"
  | Health -> "health"
  | Stats -> "stats"

(* --- canonical encoding ------------------------------------------------- *)

let params_json_raw (p : Swap.Params.t) =
  Printf.sprintf
    "{\"alpha_a\":%s,\"alpha_b\":%s,\"r_a\":%s,\"r_b\":%s,\"tau_a\":%s,\"tau_b\":%s,\"eps_b\":%s,\"p0\":%s,\"mu\":%s,\"sigma\":%s}"
    (J.num p.alice.alpha) (J.num p.bob.alpha) (J.num p.alice.r)
    (J.num p.bob.r) (J.num p.tau_a) (J.num p.tau_b) (J.num p.eps_b)
    (J.num p.p0) (J.num p.mu) (J.num p.sigma)

(* Requests that omit [params] decode to the physically shared
   [Swap.Params.defaults] (both codecs), and default-params requests
   dominate real traffic — so the canonical bytes of the defaults are
   computed once.  Float formatting here is ~60% of [key]'s cost, which
   is on the per-request path of every transport. *)
let defaults_params_json = params_json_raw Swap.Params.defaults

let params_json p =
  if p == Swap.Params.defaults then defaults_params_json
  else params_json_raw p

let body_fields = function
  | Cutoffs { params; p_star } ->
    Printf.sprintf "\"req\":\"cutoffs\",\"params\":%s,\"p_star\":%s"
      (params_json params) (J.num p_star)
  | Success_rate { params; p_star; q } ->
    Printf.sprintf
      "\"req\":\"success_rate\",\"params\":%s,\"p_star\":%s,\"q\":%s"
      (params_json params) (J.num p_star) (J.num q)
  | Sweep { params; q; spec } ->
    Printf.sprintf
      "\"req\":\"sweep\",\"params\":%s,\"q\":%s,\"lo\":%s,\"hi\":%s,\"n\":%s"
      (params_json params) (J.num q) (J.num spec.lo) (J.num spec.hi)
      (J.int spec.n)
  | Quote { mu; sigma; spot } ->
    Printf.sprintf "\"req\":\"quote\",\"mu\":%s,\"sigma\":%s,\"spot\":%s"
      (J.num mu) (J.num sigma) (J.num spot)
  | Route { from_tok; to_tok; max_hops } ->
    Printf.sprintf "\"req\":\"route\",\"from\":%s,\"to\":%s,\"max_hops\":%s"
      (J.str from_tok) (J.str to_tok) (J.int max_hops)
  | Health -> "\"req\":\"health\""
  | Stats -> "\"req\":\"stats\""

let key t =
  Printf.sprintf "{\"schema\":%s,%s}" (J.str schema) (body_fields t.body)

let encode t =
  match t.id with
  | None -> key t
  | Some id ->
    Printf.sprintf "{\"schema\":%s,\"id\":%s,%s}" (J.str schema) (J.str id)
      (body_fields t.body)

(* --- decoding ----------------------------------------------------------- *)

exception Invalid of string
(* Internal: value-level rejection (well-formed JSON, bad contents). *)

let invalid fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

let finite_num path v =
  let x = P.as_num path v in
  if not (Float.is_finite x) then invalid "%s: must be finite" path;
  x

let check_keys path allowed fields =
  List.iter
    (fun (k, _) ->
      if not (List.mem k allowed) then invalid "%s: unknown key %S" path k)
    fields

let decode_params root =
  match P.member_opt root "params" with
  | None -> Swap.Params.defaults
  | Some pj ->
    let fields = P.as_obj "params" pj in
    check_keys "params"
      [
        "alpha_a"; "alpha_b"; "r_a"; "r_b"; "tau_a"; "tau_b"; "eps_b"; "p0";
        "mu"; "sigma";
      ]
      fields;
    let get name dflt =
      match P.member_opt pj name with
      | None -> dflt
      | Some v -> finite_num (Printf.sprintf "params.%s" name) v
    in
    let d = Swap.Params.defaults in
    let p =
      {
        Swap.Params.alice =
          {
            Swap.Params.alpha = get "alpha_a" d.Swap.Params.alice.alpha;
            r = get "r_a" d.Swap.Params.alice.r;
          };
        bob =
          {
            Swap.Params.alpha = get "alpha_b" d.Swap.Params.bob.alpha;
            r = get "r_b" d.Swap.Params.bob.r;
          };
        tau_a = get "tau_a" d.Swap.Params.tau_a;
        tau_b = get "tau_b" d.Swap.Params.tau_b;
        eps_b = get "eps_b" d.Swap.Params.eps_b;
        p0 = get "p0" d.Swap.Params.p0;
        mu = get "mu" d.Swap.Params.mu;
        sigma = get "sigma" d.Swap.Params.sigma;
      }
    in
    (match Swap.Params.validate p with
    | Ok () -> ()
    | Error msg -> invalid "params: %s" msg);
    (* Resurrect the shared defaults record when the values coincide:
       [key] then takes the memoised params fast path — decoded-then-
       re-encoded requests must not be slower than constructed ones. *)
    if p = Swap.Params.defaults then Swap.Params.defaults else p

let require root name =
  match P.member_opt root name with
  | Some v -> v
  | None -> P.bad "missing key %S" name

let positive path x =
  if not (x > 0.) then invalid "%s: must be > 0" path;
  x

let decode_q root =
  match P.member_opt root "q" with
  | None -> 0.
  | Some v ->
    let q = finite_num "q" v in
    if q < 0. then invalid "q: must be >= 0";
    q

let common_keys = [ "schema"; "id"; "req"; "params" ]

let decode_root root =
  (* Best-effort id, so even rejected requests can be correlated by the
     client; the success path still validates it strictly below. *)
  let err_id =
    match P.member_opt root "id" with Some (P.Str s) -> Some s | _ -> None
  in
  match
    let fields = P.as_obj "request" root in
    let sc = P.as_str "schema" (require root "schema") in
    if sc <> schema then P.bad "unknown schema %S (want %S)" sc schema;
    let id =
      match P.member_opt root "id" with
      | None -> None
      | Some v -> Some (P.as_str "id" v)
    in
    let req = P.as_str "req" (require root "req") in
    let body =
      match req with
      | "cutoffs" ->
        check_keys "request" ("p_star" :: common_keys) fields;
        let p_star = positive "p_star" (finite_num "p_star" (require root "p_star")) in
        Cutoffs { params = decode_params root; p_star }
      | "success_rate" ->
        check_keys "request" ("p_star" :: "q" :: common_keys) fields;
        let p_star = positive "p_star" (finite_num "p_star" (require root "p_star")) in
        Success_rate { params = decode_params root; p_star; q = decode_q root }
      | "sweep" ->
        check_keys "request" ("q" :: "lo" :: "hi" :: "n" :: common_keys) fields;
        let lo = positive "lo" (finite_num "lo" (require root "lo")) in
        let hi = finite_num "hi" (require root "hi") in
        if hi <= lo then invalid "hi: must be > lo";
        let n_f = finite_num "n" (require root "n") in
        if (not (Float.is_integer n_f)) || n_f < 2. then
          invalid "n: must be an integer >= 2";
        Sweep
          {
            params = decode_params root;
            q = decode_q root;
            spec = { lo; hi; n = int_of_float n_f };
          }
      | "quote" ->
        check_keys "request" ("mu" :: "sigma" :: "spot" :: common_keys) fields;
        let mu = finite_num "mu" (require root "mu") in
        let sigma = finite_num "sigma" (require root "sigma") in
        let spot = finite_num "spot" (require root "spot") in
        Quote { mu; sigma; spot }
      | "route" ->
        (* No [params]: routing is priced off the server's configured
           token universe, not per-request model parameters. *)
        check_keys "request"
          [ "schema"; "id"; "req"; "from"; "to"; "max_hops" ]
          fields;
        let token name =
          let tok = P.as_str name (require root name) in
          if tok = "" then invalid "%s: must be a non-empty token" name;
          tok
        in
        let from_tok = token "from" in
        let to_tok = token "to" in
        if to_tok = from_tok then invalid "to: must differ from \"from\"";
        let max_hops =
          match P.member_opt root "max_hops" with
          | None -> 4
          | Some v ->
            let h = finite_num "max_hops" v in
            if (not (Float.is_integer h)) || h < 1. || h > 16. then
              invalid "max_hops: must be an integer in [1, 16]";
            int_of_float h
        in
        Route { from_tok; to_tok; max_hops }
      | "health" ->
        (* No params: health reports live engine state, so there is
           nothing to parameterise and nothing to cache. *)
        check_keys "request" [ "schema"; "id"; "req" ] fields;
        Health
      | "stats" ->
        (* Like health: live telemetry, nothing to parameterise or
           cache. *)
        check_keys "request" [ "schema"; "id"; "req" ] fields;
        Stats
      | other -> P.bad "unknown req %S" other
    in
    { id; body }
  with
  | t -> Ok t
  | exception P.Bad msg ->
    Error { err_id; code = "parse_error"; message = msg }
  | exception Invalid msg ->
    Error { err_id; code = "invalid_params"; message = msg }

(* --- canonical fast path ------------------------------------------------- *)

(* Most traffic is machine-generated in exactly the canonical form
   [encode] emits (our client library, the bench corpus, and any b1
   client re-encoded for v1).  A rigid scanner over that one shape
   decodes an order of magnitude faster than the general JSON parser —
   no tree, no assoc walks — and bails to the general path on the
   first byte that deviates, so semantics (including the
   parse_error/invalid_params taxonomy) are unchanged: the fast path
   only ever accepts, never rejects. *)

exception Slow

type scan = { s : string; mutable sp : int }

let lit sc lit =
  let n = String.length lit in
  if sc.sp + n > String.length sc.s then raise Slow;
  for i = 0 to n - 1 do
    if sc.s.[sc.sp + i] <> lit.[i] then raise Slow
  done;
  sc.sp <- sc.sp + n

let looking_at sc lit =
  let n = String.length lit in
  sc.sp + n <= String.length sc.s
  &&
  try
    for i = 0 to n - 1 do
      if sc.s.[sc.sp + i] <> lit.[i] then raise Exit
    done;
    true
  with Exit -> false

let is_num_char = function
  | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
  | _ -> false

let scan_num sc =
  let start = sc.sp in
  let n = String.length sc.s in
  while sc.sp < n && is_num_char sc.s.[sc.sp] do
    sc.sp <- sc.sp + 1
  done;
  if sc.sp = start then raise Slow;
  match float_of_string_opt (String.sub sc.s start (sc.sp - start)) with
  | Some x when Float.is_finite x -> x
  | Some _ | None -> raise Slow

(* Plain strings only — a backslash (escape) or control byte bails to
   the general parser, which knows the full escape table. *)
let scan_id sc =
  lit sc "\"";
  let start = sc.sp in
  let n = String.length sc.s in
  while
    sc.sp < n
    &&
    match sc.s.[sc.sp] with
    | '"' | '\\' -> false
    | c -> Char.code c >= 0x20
  do
    sc.sp <- sc.sp + 1
  done;
  if sc.sp >= n || sc.s.[sc.sp] <> '"' then raise Slow;
  let id = String.sub sc.s start (sc.sp - start) in
  sc.sp <- sc.sp + 1;
  id

(* Only the canonical defaults bytes take the fast path; any other
   params object (default-valued or not) goes through the general
   parser, whose defaults-resurrection keeps the key memoised. *)
let scan_params sc =
  lit sc defaults_params_json;
  Swap.Params.defaults

let scan_positive sc =
  let x = scan_num sc in
  if not (x > 0.) then raise Slow;
  x

let scan_q sc =
  let q = scan_num sc in
  if q < 0. then raise Slow;
  q

let decode_fast line =
  let sc = { s = line; sp = 0 } in
  lit sc "{\"schema\":\"htlc-serve/v1\",";
  let id =
    if looking_at sc "\"id\":" then begin
      sc.sp <- sc.sp + 5;
      let id = scan_id sc in
      lit sc ",";
      Some id
    end
    else None
  in
  lit sc "\"req\":\"";
  let body =
    if looking_at sc "cutoffs\",\"params\":" then begin
      sc.sp <- sc.sp + 18;
      let params = scan_params sc in
      lit sc ",\"p_star\":";
      Cutoffs { params; p_star = scan_positive sc }
    end
    else if looking_at sc "success_rate\",\"params\":" then begin
      sc.sp <- sc.sp + 23;
      let params = scan_params sc in
      lit sc ",\"p_star\":";
      let p_star = scan_positive sc in
      lit sc ",\"q\":";
      Success_rate { params; p_star; q = scan_q sc }
    end
    else if looking_at sc "sweep\",\"params\":" then begin
      sc.sp <- sc.sp + 16;
      let params = scan_params sc in
      lit sc ",\"q\":";
      let q = scan_q sc in
      lit sc ",\"lo\":";
      let lo = scan_positive sc in
      lit sc ",\"hi\":";
      let hi = scan_num sc in
      if hi <= lo then raise Slow;
      lit sc ",\"n\":";
      let n_f = scan_num sc in
      if (not (Float.is_integer n_f)) || n_f < 2. then raise Slow;
      Sweep { params; q; spec = { lo; hi; n = int_of_float n_f } }
    end
    else if looking_at sc "quote\",\"mu\":" then begin
      sc.sp <- sc.sp + 12;
      let mu = scan_num sc in
      lit sc ",\"sigma\":";
      let sigma = scan_num sc in
      lit sc ",\"spot\":";
      Quote { mu; sigma; spot = scan_num sc }
    end
    else if looking_at sc "route\",\"from\":" then begin
      sc.sp <- sc.sp + 14;
      (* Tokens reuse the plain-string scanner: anything escaped bails
         to the general parser. *)
      let from_tok = scan_id sc in
      if from_tok = "" then raise Slow;
      lit sc ",\"to\":";
      let to_tok = scan_id sc in
      if to_tok = "" || to_tok = from_tok then raise Slow;
      lit sc ",\"max_hops\":";
      let h = scan_num sc in
      if (not (Float.is_integer h)) || h < 1. || h > 16. then raise Slow;
      Route { from_tok; to_tok; max_hops = int_of_float h }
    end
    else if looking_at sc "health\"" then begin
      sc.sp <- sc.sp + 7;
      Health
    end
    else if looking_at sc "stats\"" then begin
      sc.sp <- sc.sp + 6;
      Stats
    end
    else raise Slow
  in
  lit sc "}";
  if sc.sp <> String.length line then raise Slow;
  { id; body }

let decode line =
  match decode_fast line with
  | t -> Ok t
  | exception Slow -> (
    match P.parse line with
    | exception P.Bad msg ->
      Error { err_id = None; code = "parse_error"; message = msg }
    | root -> decode_root root)
