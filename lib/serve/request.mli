(** Typed requests for the swap-quote service and their canonical
    JSON-line codec (schema [htlc-serve/v1]).

    Canonical form = fixed field order + round-tripping float format,
    so {!key} (canonical bytes without the client's [id]) is a stable
    cache key.  Decoding is strict: unknown keys and out-of-range
    values are rejected with distinct [parse_error] /
    [invalid_params] codes. *)

val schema : string
(** ["htlc-serve/v1"]. *)

type sweep_spec = { lo : float; hi : float; n : int }

type body =
  | Cutoffs of { params : Swap.Params.t; p_star : float }
      (** Eq. 18 / 24 / 29 thresholds. *)
  | Success_rate of { params : Swap.Params.t; p_star : float; q : float }
      (** Eq. 31 (or Eq. 40 when [q > 0]). *)
  | Sweep of { params : Swap.Params.t; q : float; spec : sweep_spec }
      (** SR across [n] rates in [lo, hi]. *)
  | Quote of { mu : float; sigma : float; spot : float }
      (** SR-optimal rate off the warm {!Market.Quote_table}. *)
  | Route of { from_tok : string; to_tok : string; max_hops : int }
      (** Best multi-hop path between two tokens over the server's
          configured swap graph (maximal product of per-leg success
          rates, at most [max_hops] legs).  Cached like the other
          computed kinds; unknown tokens answer [invalid_params]. *)
  | Health
      (** Live engine state: queue depth, workers alive, restart and
          cache counters.  Never cached (the answer is a snapshot, not
          a pure function of the request), so it sits outside the
          byte-identity contract. *)
  | Stats
      (** Live serve telemetry: per-kind/per-codec latency quantiles,
          stage breakdowns, windowed req/s, sampler and flight-recorder
          status.  Like [Health], never cached and outside the
          byte-identity contract. *)

type t = { id : string option; body : body }

type error = { err_id : string option; code : string; message : string }
(** [code] is ["parse_error"] (malformed/unversioned JSON) or
    ["invalid_params"] (well-formed but out-of-range values).
    [err_id] is the request's id when it could still be recovered, so
    rejections stay client-correlatable. *)

val kind : t -> string
(** ["cutoffs" | "success_rate" | "sweep" | "quote" | "route" |
    "health" | "stats"] — the wire [req] tag, echoed in responses and
    used as a metric label. *)

val decode : string -> (t, error) result
(** Parse one request line.  Requires [schema]; [id] is optional;
    [params] fields default to {!Swap.Params.defaults} field-wise and
    the assembled record must pass {!Swap.Params.validate}. *)

val encode : t -> string
(** Canonical one-line JSON (includes [id] when present).
    [decode (encode t) = Ok t]. *)

val key : t -> string
(** Canonical bytes {e without} [id]: the cache key.  Equal questions
    have equal keys regardless of client field order or whitespace. *)

val params_json : Swap.Params.t -> string
(** The canonical [params] object on its own (reused by
    [swap_cli quote --json]). *)
