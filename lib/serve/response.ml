(* Response encoding for htlc-serve/v1.

   A response is assembled from an id-independent *body* — everything
   after the "id" field — so the result cache can store one body per
   canonical request and splice in each caller's id without recomputing.
   Splicing is deterministic, which preserves the service's byte-identity
   contract: cached and freshly computed responses for the same (id,
   request) pair are the same bytes. *)

module J = Obs.Json

let ok_body ~req ~result =
  Printf.sprintf "\"req\":%s,\"status\":\"ok\",\"result\":%s}" (J.str req)
    result

let error_body ?req ~code ~message () =
  let req_field =
    match req with
    | Some r -> Printf.sprintf "\"req\":%s," (J.str r)
    | None -> ""
  in
  Printf.sprintf "%s\"status\":\"error\",\"error\":%s,\"message\":%s}"
    req_field (J.str code) (J.str message)

let assemble ~id body =
  Printf.sprintf "{\"schema\":%s,\"id\":%s,%s" (J.str Request.schema)
    (match id with Some s -> J.str s | None -> "null")
    body

(* Convenience for paths that never hit the cache (parse errors,
   shedding, deadlines). *)
let error ~id ?req ~code ~message () =
  assemble ~id (error_body ?req ~code ~message ())

(* --- result payload helpers --------------------------------------------- *)

let interval_json = function
  | Some (lo, hi) -> Printf.sprintf "[%s,%s]" (J.num lo) (J.num hi)
  | None -> "null"

let float_array_json xs =
  let b = Buffer.create (16 * Array.length xs) in
  Buffer.add_char b '[';
  Array.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (J.num x))
    xs;
  Buffer.add_char b ']';
  Buffer.contents b
