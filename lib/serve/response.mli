(** Response encoding for [htlc-serve/v1].

    Responses split into an id-independent {e body} (cached per
    canonical request) and an {!assemble} step that prepends the schema
    and the caller's [id] — so cache hits return byte-identical
    responses without recomputation. *)

val ok_body : req:string -> result:string -> string
(** Body of a successful response; [result] is already-serialised JSON. *)

val error_body :
  ?req:string -> code:string -> message:string -> unit -> string
(** Body of an error response ([req] omitted when the request could not
    be parsed far enough to know its kind). *)

val assemble : id:string option -> string -> string
(** [assemble ~id body] — the full one-line response
    [{"schema":"htlc-serve/v1","id":...,<body>].  [None] renders as
    [null]. *)

val error :
  id:string option ->
  ?req:string ->
  code:string ->
  message:string ->
  unit ->
  string
(** [assemble] of [error_body] — for paths that bypass the cache
    (parse errors, load shedding, deadline misses). *)

val interval_json : (float * float) option -> string
(** [[lo,hi]] or [null]. *)

val float_array_json : float array -> string
