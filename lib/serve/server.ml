(* Transports: a stdin/stdout pipe loop and a Unix-domain-socket server
   (stdlib Unix only), both speaking htlc-serve protocols.

   Pipe mode answers synchronously on the calling domain — one client,
   natural backpressure, deterministic output for a fixed script (the
   serve-smoke CI check relies on this).

   Socket mode owns the bind/unlink lifecycle of the path and delegates
   connection handling to {!Reactor}: a fixed set of shard domains
   multiplexing non-blocking connections with [select], speaking
   newline-delimited htlc-serve/v1 JSON or length-prefixed
   htlc-serve/b1 binary per first-bytes negotiation.  (Earlier versions
   spawned one blocking handler domain per connection; the reactor
   replaced that — see DESIGN.md §12.) *)

(* A handler writing into a reset connection must see EPIPE — counted
   and classified by the reactor — not the POSIX default of the whole
   process dying of SIGPIPE on the first mid-response disconnect. *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ -> ()

(* --- pipe ----------------------------------------------------------------- *)

let serve_pipe engine ic oc =
  let served = ref 0 in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then begin
         let clock =
           Telemetry.make ~codec:"pipe" ~read_ns:(Telemetry.now_ns ())
         in
         output_string oc (Engine.handle ~clock engine line);
         output_char oc '\n';
         flush oc;
         Telemetry.finish_now clock;
         incr served
       end
     done
   with End_of_file -> ());
  !served

(* --- unix-domain socket --------------------------------------------------- *)

type t = {
  path : string;
  listen_fd : Unix.file_descr;
  reactor : Reactor.t;
  close_mutex : Mutex.t;
  mutable closed : bool;
}

(* A Unix-domain socket path cannot be rebound, so a crashed server
   leaves a stale file behind.  unlink-then-bind has two failure modes:
   it silently evicts a *live* server, and between the unlink and the
   bind there is a window with no socket at the path at all.  Instead:
   refuse paths that answer a probe connect (live server — a clear
   EADDRINUSE, not silent eviction), refuse non-socket files (never
   unlink something we did not create), and otherwise bind to a
   process-unique temp path and atomically rename it over the stale
   file — at every instant the path resolves to either the old socket
   or the new one. *)
let check_bindable path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_SOCK; _ } ->
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
        false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then
      raise (Unix.Unix_error (Unix.EADDRINUSE, "Serve.Server.listen", path))
  | _ -> raise (Unix.Unix_error (Unix.ENOTSOCK, "Serve.Server.listen", path))

let listen engine ~path ?(backlog = 16) ?shards () =
  ignore_sigpipe ();
  check_bindable path;
  let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
  (try Unix.unlink tmp with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (Unix.ADDR_UNIX tmp);
     Unix.listen listen_fd backlog;
     (* Atomic replace: the listening socket keeps accepting under its
        new name; a stale file at [path] is overwritten in one step. *)
     Unix.rename tmp path
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     (try Unix.unlink tmp with Unix.Unix_error _ -> ());
     raise e);
  {
    path;
    listen_fd;
    reactor = Reactor.start engine ~listen_fd ?shards ();
    close_mutex = Mutex.create ();
    closed = false;
  }

let path t = t.path
let reactor_shards t = Reactor.shards t.reactor

let shutdown t =
  Mutex.lock t.close_mutex;
  let already = t.closed in
  t.closed <- true;
  Mutex.unlock t.close_mutex;
  if not already then begin
    (* The reactor shuts the listening socket down itself; the [wake]
       self-connect is the fallback for platforms where that does not
       pop a parked accept(2). *)
    Reactor.stop
      ~wake:(fun () ->
        try
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          (try Unix.connect fd (Unix.ADDR_UNIX t.path)
           with Unix.Unix_error _ -> ());
          Unix.close fd
        with Unix.Unix_error _ -> ())
      t.reactor;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    try Unix.unlink t.path with Unix.Unix_error _ -> ()
  end
