(* Transports: a stdin/stdout pipe loop and a Unix-domain-socket accept
   loop (stdlib Unix only), both speaking newline-delimited
   htlc-serve/v1.

   Pipe mode answers synchronously on the calling domain — one client,
   natural backpressure, deterministic output for a fixed script (the
   serve-smoke CI check relies on this).

   Socket mode is one listener domain plus one lightweight handler
   domain per connection.  Handlers do IO only: each request line is
   handed to the engine's worker pool (submit/await), so compute
   parallelism is the engine's worker count while handlers mostly block
   on socket reads — the listener/worker handoff shape.  Per-connection
   responses come back in request order.  On an engine with zero
   workers the handler computes inline instead. *)

let m_connections = Obs.Metrics.counter "serve.connections"
let m_conn_requests = Obs.Metrics.counter "serve.connection_requests"
let m_conn_errors = Obs.Metrics.counter "serve.connection_errors"

(* Classified sub-counters (the {reason} dimension): registration is
   idempotent, so resolving on each event is cheap and keeps the set of
   reasons open-ended. *)
let m_conn_error reason =
  Obs.Metrics.counter ("serve.connection_errors." ^ reason)

(* A connection error's reason tag.  EPIPE and ECONNRESET get their own
   buckets — they are the signature of mid-response disconnects and
   resets, exactly what the chaos transport injects — everything else
   folds into coarse classes. *)
let conn_error_reason = function
  | Sys_error _ -> "sys_error"
  | Unix.Unix_error (Unix.EPIPE, _, _) -> "epipe"
  | Unix.Unix_error (Unix.ECONNRESET, _, _) -> "econnreset"
  | Unix.Unix_error (_, _, _) -> "unix_error"
  | _ -> "handler_crash"

let count_conn_error exn =
  Obs.Metrics.incr m_conn_errors;
  Obs.Metrics.incr (m_conn_error (conn_error_reason exn))

(* A handler writing into a reset connection must see EPIPE — counted
   and classified above — not the POSIX default of the whole process
   dying of SIGPIPE on the first mid-response disconnect. *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ -> ()

(* --- pipe ----------------------------------------------------------------- *)

let serve_pipe engine ic oc =
  let served = ref 0 in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then begin
         output_string oc (Engine.handle engine line);
         output_char oc '\n';
         flush oc;
         incr served
       end
     done
   with End_of_file -> ());
  !served

(* --- unix-domain socket --------------------------------------------------- *)

type conn = { fd : Unix.file_descr; domain : unit Domain.t }

type t = {
  engine : Engine.t;
  path : string;
  listen_fd : Unix.file_descr;
  mutable listener : unit Domain.t option;
  conns_mutex : Mutex.t;
  mutable conns : conn list;
  mutable closing : bool;
}

let answer engine line =
  if Engine.workers engine = 0 then Engine.handle engine line
  else
    match Engine.submit engine line with
    | `Done resp -> resp
    | `Ticket ticket -> Engine.await ticket

let handle_conn t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then begin
         Obs.Metrics.incr m_conn_requests;
         output_string oc (answer t.engine line);
         output_char oc '\n';
         flush oc
       end
     done
   with
  | End_of_file -> () (* clean close: the client simply hung up *)
  | exn ->
    (* Handler supervision: a torn read, a write into a reset
       connection (EPIPE/ECONNRESET), or any unexpected crash must not
       kill the handler domain silently — count and classify it, then
       fall through to the normal fd cleanup below so the connection
       slot is reclaimed either way. *)
    count_conn_error exn);
  (* Self-removal is gated on [closing] and runs under the connection
     mutex: once [shutdown] has flipped the flag its snapshot owns every
     listed fd, so no fd in that snapshot is ever closed (or its number
     reused) behind shutdown's back. *)
  Mutex.lock t.conns_mutex;
  if not t.closing then begin
    t.conns <- List.filter (fun c -> c.fd != fd) t.conns;
    try Unix.close fd with Unix.Unix_error _ -> ()
  end;
  Mutex.unlock t.conns_mutex

let rec accept_loop t =
  match Unix.accept t.listen_fd with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop t
  | exception _ ->
    (* The listening socket was shut down (or the process is in real
       trouble); either way stop accepting. *)
    ()
  | fd, _ ->
    Mutex.lock t.conns_mutex;
    let closing = t.closing in
    if not closing then begin
      Obs.Metrics.incr m_connections;
      t.conns <- { fd; domain = Domain.spawn (fun () -> handle_conn t fd) }
                 :: t.conns
    end;
    Mutex.unlock t.conns_mutex;
    if closing then
      (* This is shutdown's wake-up self-connect (or a client that lost
         the race with it): drop it and stop accepting. *)
      (try Unix.close fd with Unix.Unix_error _ -> ())
    else accept_loop t

(* A Unix-domain socket path cannot be rebound, so a crashed server
   leaves a stale file behind.  unlink-then-bind has two failure modes:
   it silently evicts a *live* server, and between the unlink and the
   bind there is a window with no socket at the path at all.  Instead:
   refuse paths that answer a probe connect (live server — a clear
   EADDRINUSE, not silent eviction), refuse non-socket files (never
   unlink something we did not create), and otherwise bind to a
   process-unique temp path and atomically rename it over the stale
   file — at every instant the path resolves to either the old socket
   or the new one. *)
let check_bindable path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_SOCK; _ } ->
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
        false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then
      raise (Unix.Unix_error (Unix.EADDRINUSE, "Serve.Server.listen", path))
  | _ -> raise (Unix.Unix_error (Unix.ENOTSOCK, "Serve.Server.listen", path))

let listen engine ~path ?(backlog = 16) () =
  ignore_sigpipe ();
  check_bindable path;
  let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
  (try Unix.unlink tmp with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (Unix.ADDR_UNIX tmp);
     Unix.listen listen_fd backlog;
     (* Atomic replace: the listening socket keeps accepting under its
        new name; a stale file at [path] is overwritten in one step. *)
     Unix.rename tmp path
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     (try Unix.unlink tmp with Unix.Unix_error _ -> ());
     raise e);
  let t =
    {
      engine;
      path;
      listen_fd;
      listener = None;
      conns_mutex = Mutex.create ();
      conns = [];
      closing = false;
    }
  in
  t.listener <- Some (Domain.spawn (fun () -> accept_loop t));
  t

let path t = t.path

let shutdown t =
  Mutex.lock t.conns_mutex;
  let already = t.closing in
  t.closing <- true;
  Mutex.unlock t.conns_mutex;
  if not already then begin
    (* Waking a blocked [accept]: closing the fd does NOT interrupt a
       thread already parked in accept(2) on Linux, so shut the
       listening socket down (pops the accept with an error) and
       self-connect as a fallback for platforms that ignore
       listening-socket shutdown; the accept loop exits either way. *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    (try
       let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
       (try Unix.connect fd (Unix.ADDR_UNIX t.path)
        with Unix.Unix_error _ -> ());
       Unix.close fd
     with Unix.Unix_error _ -> ());
    Option.iter Domain.join t.listener;
    t.listener <- None;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (* The listener is gone and [closing] is set, so the list is now
       frozen and every fd in it is owned by us (handlers no longer
       self-close).  Force EOF so the handlers drain and exit. *)
    Mutex.lock t.conns_mutex;
    let conns = t.conns in
    t.conns <- [];
    Mutex.unlock t.conns_mutex;
    List.iter
      (fun c ->
        try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      conns;
    List.iter (fun c -> Domain.join c.domain) conns;
    List.iter
      (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
      conns;
    try Unix.unlink t.path with Unix.Unix_error _ -> ()
  end
