(** Transports for the swap-quote service (newline-delimited
    [htlc-serve/v1]; stdlib [Unix] only).

    {!serve_pipe} answers synchronously on the caller — one client,
    natural backpressure, deterministic output for a fixed script.

    The socket server is one listener domain plus one IO handler domain
    per connection; request compute is handed to the engine's worker
    pool, so admission control and deadlines apply.  Responses come
    back in request order per connection. *)

val serve_pipe : Engine.t -> in_channel -> out_channel -> int
(** Read request lines until EOF, answering each on the next line
    (blank input lines are skipped); returns the number of requests
    served.  Never sheds: compute runs inline on the caller. *)

type t
(** A listening Unix-domain-socket server. *)

val listen : Engine.t -> path:string -> ?backlog:int -> unit -> t
(** Bind and listen on [path] (an existing file at [path] is unlinked
    first — Unix-domain sockets do not rebind), then accept in a
    background domain.  With an engine of zero workers, handlers
    compute inline instead of submitting.
    @raise Unix.Unix_error when the socket cannot be bound (e.g. a
    path longer than the [sun_path] limit). *)

val path : t -> string

val shutdown : t -> unit
(** Stop accepting, force EOF on live connections, join every handler,
    and unlink the socket path.  Idempotent.  Does {e not} stop the
    engine — callers own its lifecycle. *)
