(** Transports for the swap-quote service (stdlib [Unix] only).

    {!serve_pipe} answers synchronously on the caller — one client,
    natural backpressure, deterministic output for a fixed script.

    The socket server owns the bind/unlink lifecycle of the path and
    hands connections to {!Reactor}: a fixed set of shard domains
    multiplexing non-blocking connections, speaking newline-delimited
    [htlc-serve/v1] JSON or length-prefixed [htlc-serve/b1] binary per
    first-bytes negotiation, with request pipelining and response
    batching.  Responses come back in request order per connection.

    {b Fault behaviour.}  Torn reads, writes into reset/closed
    connections and protocol violations are counted and classified
    under [serve.connection_errors] (sub-counters [.epipe],
    [.econnreset], [.sys_error], [.unix_error], [.handler_crash],
    [.protocol]) and the connection slot is reclaimed — a bad peer
    never takes the server down.  A client hanging up cleanly (EOF) is
    not an error. *)

val serve_pipe : Engine.t -> in_channel -> out_channel -> int
(** Read request lines until EOF, answering each on the next line
    (blank input lines are skipped); returns the number of requests
    served.  Never sheds: compute runs inline on the caller. *)

type t
(** A listening Unix-domain-socket server. *)

val listen : Engine.t -> path:string -> ?backlog:int -> ?shards:int -> unit -> t
(** Bind and listen on [path], then serve through a reactor of
    [shards] event-loop domains (default: the [Numerics.Pool] jobs
    setting).

    A stale socket file at [path] (left by a crashed server) is
    replaced {e atomically}: the socket is bound to a process-unique
    temp path and renamed over the stale file, so there is no instant
    at which [path] does not resolve.  A {e live} socket at [path]
    (something answers a probe connect) raises [EADDRINUSE] instead of
    being evicted, and a non-socket file raises [ENOTSOCK] — the
    server never unlinks a file it cannot prove abandoned.
    @raise Unix.Unix_error as above, or when the socket cannot be
    bound (e.g. a path longer than the [sun_path] limit).
    @raise Invalid_argument when [shards < 1]. *)

val path : t -> string

val reactor_shards : t -> int
(** Event-loop domains serving this socket. *)

val shutdown : t -> unit
(** Stop accepting, close every live connection (clients see EOF after
    buffered responses are flushed), join the reactor domains, and
    unlink the socket path.  Idempotent.  Does {e not} stop the
    engine — callers own its lifecycle. *)
