(** Transports for the swap-quote service (newline-delimited
    [htlc-serve/v1]; stdlib [Unix] only).

    {!serve_pipe} answers synchronously on the caller — one client,
    natural backpressure, deterministic output for a fixed script.

    The socket server is one listener domain plus one IO handler domain
    per connection; request compute is handed to the engine's worker
    pool, so admission control and deadlines apply.  Responses come
    back in request order per connection.

    {b Fault behaviour.}  A handler that hits a torn read, a write into
    a reset/closed connection, or any unexpected exception counts and
    classifies the event under [serve.connection_errors] (sub-counters
    [.epipe], [.econnreset], [.sys_error], [.unix_error],
    [.handler_crash]) and reclaims the connection slot — it never dies
    silently and never takes the server down.  A client hanging up
    cleanly (EOF) is not an error. *)

val serve_pipe : Engine.t -> in_channel -> out_channel -> int
(** Read request lines until EOF, answering each on the next line
    (blank input lines are skipped); returns the number of requests
    served.  Never sheds: compute runs inline on the caller. *)

type t
(** A listening Unix-domain-socket server. *)

val listen : Engine.t -> path:string -> ?backlog:int -> unit -> t
(** Bind and listen on [path], then accept in a background domain.
    With an engine of zero workers, handlers compute inline instead of
    submitting.

    A stale socket file at [path] (left by a crashed server) is
    replaced {e atomically}: the socket is bound to a process-unique
    temp path and renamed over the stale file, so there is no instant
    at which [path] does not resolve.  A {e live} socket at [path]
    (something answers a probe connect) raises [EADDRINUSE] instead of
    being evicted, and a non-socket file raises [ENOTSOCK] — the
    server never unlinks a file it cannot prove abandoned.
    @raise Unix.Unix_error as above, or when the socket cannot be
    bound (e.g. a path longer than the [sun_path] limit). *)

val path : t -> string

val shutdown : t -> unit
(** Stop accepting, force EOF on live connections, join every handler,
    and unlink the socket path.  Idempotent.  Does {e not} stop the
    engine — callers own its lifecycle. *)
