(* Request telemetry for the serve stack: per-request stage clocks, a
   deterministic trace sampler, exact latency quantiles, a windowed
   request rate, and a bounded flight recorder.

   A [clock] is allocated per request by the transport (reactor shard,
   pipe loop, or worker queue) and threaded through the engine; each
   stage stamps a monotonic timestamp into a mutable field — read
   complete, decode, cache lookup, queue admit, compute start/end,
   encode, flush.  [finish] folds the stage durations into

   - per-stage [Obs.Metrics] histograms ([serve.stage.*_s]) and
     exact-quantile reservoirs (the `stats` endpoint's p50/p90/p99/p999
     are exact over the retained window, not log-bucket approximations);
   - a per-kind x per-codec latency histogram + reservoir
     ([serve.latency.<kind>.<codec>_s]);
   - a windowed req/s meter;
   - the flight recorder — a lock-free ring of the last N completed
     request records, dumped as htlc-obs/v1 JSONL on worker crash,
     chaos-gate failure, or an explicit trigger.

   The deterministic sampler promotes ~1/[sample_every] requests to
   full [Obs.Trace] spans.  It is a pure function of the request id
   (FNV-1a), so the sampled set is identical for any shard count,
   worker count, or replay of the same corpus — a sampled request is
   sampled everywhere, which makes cross-run span comparisons
   meaningful.

   Byte-identity contract: nothing here touches response bytes.  When
   disabled, [make] hands out a shared dummy clock and every stamp is a
   single bool load; responses are byte-identical with telemetry on or
   off either way. *)

module M = Obs.Metrics

let enabled_flag = Atomic.make true
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* --- deterministic sampler ------------------------------------------------ *)

let default_sample_every = 256
let sample_every_cell = Atomic.make default_sample_every
let sample_every () = Atomic.get sample_every_cell

let set_sample_every n =
  if n < 1 then invalid_arg "Telemetry.set_sample_every: must be >= 1";
  Atomic.set sample_every_cell n

(* FNV-1a (32-bit) — fixed here rather than [Hashtbl.hash] so the
   sampled set is stable across compiler versions, documented, and
   reproducible by clients in any language.  A plain accumulator loop:
   the obvious [ref] + [String.iter] closure allocates, and this runs
   once per finished request. *)
let rec fnv1a h s i n =
  if i >= n then h
  else
    fnv1a
      (((h lxor Char.code (String.unsafe_get s i)) * 0x01000193)
      land 0xffffffff)
      s (i + 1) n

let sample_hash s = fnv1a 0x811c9dc5 s 0 (String.length s)

let should_sample_id id =
  let n = Atomic.get sample_every_cell in
  n <= 1 || sample_hash (match id with Some i -> i | None -> "") mod n = 0

(* --- stage clock ---------------------------------------------------------- *)

(* Stamps are tagged [int] nanoseconds (not [int64]): an [int64]
   mutable field boxes on every store, and at serve throughput those
   boxes — seven per request, across five-plus domains whose minor
   collections are stop-the-world — were the single largest telemetry
   cost.  [Obs.Monotonic.now_int_ns] reads the clock without
   allocating either. *)
type clock = {
  real : bool;
  mutable codec : string; (* "json" | "binary" | "pipe" | "queue" *)
  mutable kind : string; (* request kind, or "error" for rejects *)
  mutable id : string option;
  mutable t_read : int; (* transport finished reading the bytes *)
  mutable t_decode : int; (* typed request (or reject) in hand *)
  mutable t_cache : int; (* cache lookup returned *)
  mutable t_queue : int; (* admitted to the worker queue *)
  mutable t_compute0 : int; (* evaluation started *)
  mutable t_compute1 : int; (* evaluation finished *)
  mutable t_encode : int; (* response assembled *)
  mutable t_flush : int; (* response bytes handed to the kernel *)
  mutable cache_hit : bool;
  mutable status : string; (* "ok" | "error" *)
  mutable finalized : bool;
}

let none =
  {
    real = false;
    codec = "";
    kind = "";
    id = None;
    t_read = 0;
    t_decode = 0;
    t_cache = 0;
    t_queue = 0;
    t_compute0 = 0;
    t_compute1 = 0;
    t_encode = 0;
    t_flush = 0;
    cache_hit = false;
    status = "ok";
    finalized = true;
  }

let make ~codec ~read_ns =
  if not (enabled ()) then none
  else
    {
      real = true;
      codec;
      kind = "error";
      id = None;
      t_read = read_ns;
      t_decode = 0;
      t_cache = 0;
      t_queue = 0;
      t_compute0 = 0;
      t_compute1 = 0;
      t_encode = 0;
      t_flush = 0;
      cache_hit = false;
      status = "ok";
      finalized = false;
    }

let is_real c = c.real

(* Clock pooling: a transport that answers many requests (a reactor
   connection) may hand a finalized clock back through [reinit] instead
   of allocating a fresh one per request.  [finish] copies the fields
   into the flight recorder's own slot records ([Recorder.push_copy]),
   so nothing retains the clock once it is finalized — at steady state
   the serve path allocates no clock and promotes none. *)
let reinit c ~codec ~read_ns =
  if not (enabled ()) then none
  else if c.real && c.finalized then begin
    c.codec <- codec;
    c.kind <- "error";
    c.id <- None;
    c.t_read <- read_ns;
    c.t_decode <- 0;
    c.t_cache <- 0;
    c.t_queue <- 0;
    c.t_compute0 <- 0;
    c.t_compute1 <- 0;
    c.t_encode <- 0;
    c.t_flush <- 0;
    c.cache_hit <- false;
    c.status <- "ok";
    c.finalized <- false;
    c
  end
  else make ~codec ~read_ns

let blank_clock () =
  {
    real = true;
    codec = "";
    kind = "";
    id = None;
    t_read = 0;
    t_decode = 0;
    t_cache = 0;
    t_queue = 0;
    t_compute0 = 0;
    t_compute1 = 0;
    t_encode = 0;
    t_flush = 0;
    cache_hit = false;
    status = "ok";
    finalized = true;
  }

let copy_clock src dst =
  dst.codec <- src.codec;
  dst.kind <- src.kind;
  dst.id <- src.id;
  dst.t_read <- src.t_read;
  dst.t_decode <- src.t_decode;
  dst.t_cache <- src.t_cache;
  dst.t_queue <- src.t_queue;
  dst.t_compute0 <- src.t_compute0;
  dst.t_compute1 <- src.t_compute1;
  dst.t_encode <- src.t_encode;
  dst.t_flush <- src.t_flush;
  dst.cache_hit <- src.cache_hit;
  dst.status <- src.status;
  dst.finalized <- true

let now_ns = Obs.Monotonic.now_int_ns
let stamp_decode c = if c.real then c.t_decode <- now_ns ()

let stamp_cache c ~hit =
  if c.real then begin
    c.t_cache <- now_ns ();
    c.cache_hit <- hit
  end

let stamp_queue_at c ns = if c.real then c.t_queue <- ns
let stamp_compute_start c = if c.real then c.t_compute0 <- now_ns ()
let stamp_compute_stop c = if c.real then c.t_compute1 <- now_ns ()
let stamp_encode c = if c.real then c.t_encode <- now_ns ()
let set_kind c kind = if c.real then c.kind <- kind
let set_id c id = if c.real then c.id <- id
let set_status c s = if c.real then c.status <- s

(* --- aggregation sinks ---------------------------------------------------- *)

let kind_names =
  [|
    "cutoffs"; "success_rate"; "sweep"; "quote"; "health"; "stats"; "route";
    "error";
  |]

let kind_index = function
  | "cutoffs" -> 0
  | "success_rate" -> 1
  | "sweep" -> 2
  | "quote" -> 3
  | "health" -> 4
  | "stats" -> 5
  | "route" -> 6
  | _ -> 7

let codec_names = [| "json"; "binary"; "pipe"; "queue" |]

let codec_index = function
  | "json" -> 0
  | "binary" -> 1
  | "pipe" -> 2
  | _ -> 3

(* Resolved once at module load: registration walks the registry under
   a mutex, which is too much for per-request code. *)
let latency_hists =
  Array.init (Array.length kind_names) (fun k ->
      Array.init (Array.length codec_names) (fun c ->
          M.histogram
            (Printf.sprintf "serve.latency.%s.%s_s" kind_names.(k)
               codec_names.(c))))

let latency_quantiles =
  Array.init (Array.length kind_names) (fun k ->
      Array.init (Array.length codec_names) (fun c ->
          Obs.Quantile.create ~capacity:2048
            (Printf.sprintf "%s.%s" kind_names.(k) codec_names.(c))))

let stage_names =
  [| "decode"; "cache"; "queue"; "compute"; "encode"; "flush"; "total" |]

let stage_hists =
  Array.map
    (fun s -> M.histogram (Printf.sprintf "serve.stage.%s_s" s))
    stage_names

let stage_quantiles =
  Array.map (fun s -> Obs.Quantile.create ~capacity:4096 s) stage_names

let rate = Obs.Rate.create ~window_s:64 ()
let m_sampled = M.counter "serve.telemetry.sampled"
let m_finished = M.counter "serve.telemetry.requests"

(* --- flight recorder ------------------------------------------------------ *)

let default_recorder_capacity = 512
let recorder = Atomic.make (Obs.Recorder.create ~capacity:default_recorder_capacity ())

let set_recorder_capacity n =
  Atomic.set recorder (Obs.Recorder.create ~capacity:n ())

let recorder_capacity () = Obs.Recorder.capacity (Atomic.get recorder)
let recorder_recorded () = Obs.Recorder.recorded (Atomic.get recorder)
let recorder_pushed () = Obs.Recorder.pushed (Atomic.get recorder)
let recorder_dropped () = Obs.Recorder.dropped (Atomic.get recorder)

(* --- finalisation --------------------------------------------------------- *)

let ns_to_s = 1e-9

(* A stage's duration exists only when both endpoints were stamped
   (e.g. no compute on a cache hit, no queue stage on the inline
   path). *)
let stage_dur a b =
  if a > 0 && b >= a then Some (float_of_int (b - a) *. ns_to_s) else None

let observe_stage i d =
  M.observe stage_hists.(i) d;
  Obs.Quantile.record stage_quantiles.(i) d

let encode_from c =
  if c.t_compute1 > 0 then c.t_compute1
  else if c.t_cache > 0 then c.t_cache
  else c.t_decode

let stage_durs c =
  [|
    stage_dur c.t_read c.t_decode;
    (if c.cache_hit || c.t_cache > 0 then stage_dur c.t_decode c.t_cache
     else None);
    stage_dur c.t_queue c.t_compute0;
    stage_dur c.t_compute0 c.t_compute1;
    stage_dur (encode_from c) c.t_encode;
    stage_dur c.t_encode c.t_flush;
    stage_dur c.t_read c.t_flush;
  |]

let span_of c =
  let ann = ref [] in
  let durs = stage_durs c in
  for i = Array.length durs - 1 downto 0 do
    match durs.(i) with
    | Some d ->
      ann :=
        (stage_names.(i) ^ "_ns", Printf.sprintf "%.0f" (d /. ns_to_s))
        :: !ann
    | None -> ()
  done;
  let ann =
    ("kind", c.kind) :: ("codec", c.codec) :: ("status", c.status)
    :: ("cache", if c.cache_hit then "hit" else "miss")
    :: (match c.id with Some id -> [ ("id", id) ] | None -> [])
    @ !ann
  in
  ignore
    (Obs.Trace.emit ~name:"serve.request"
       ~start_ns:(Int64.of_int c.t_read)
       ~stop_ns:(Int64.of_int (if c.t_flush > 0 then c.t_flush else c.t_read))
       ~annotations:ann ())

(* Folds one stage without the intermediate option array [stage_durs]
   builds — [finish] runs once per served request, so it avoids the
   per-request [Some] boxes the dump/span paths can afford. *)
let observe_pair i a b = if a > 0 && b >= a then
    observe_stage i (float_of_int (b - a) *. ns_to_s)

let finish c ~flush_ns =
  if c.real && not c.finalized then begin
    c.finalized <- true;
    c.t_flush <- flush_ns;
    M.incr m_finished;
    observe_pair 0 c.t_read c.t_decode;
    if c.cache_hit || c.t_cache > 0 then observe_pair 1 c.t_decode c.t_cache;
    observe_pair 2 c.t_queue c.t_compute0;
    observe_pair 3 c.t_compute0 c.t_compute1;
    observe_pair 4 (encode_from c) c.t_encode;
    observe_pair 5 c.t_encode c.t_flush;
    if c.t_read > 0 && c.t_flush >= c.t_read then begin
      let total = float_of_int (c.t_flush - c.t_read) *. ns_to_s in
      observe_stage 6 total;
      let k = kind_index c.kind and cd = codec_index c.codec in
      M.observe latency_hists.(k).(cd) total;
      Obs.Quantile.record latency_quantiles.(k).(cd) total
    end;
    Obs.Rate.observe_at rate ~now_ns:flush_ns;
    Obs.Recorder.push_copy (Atomic.get recorder) ~blank:blank_clock
      ~copy:copy_clock c;
    if should_sample_id c.id then begin
      M.incr m_sampled;
      span_of c
    end
  end

let finish_now c = finish c ~flush_ns:(now_ns ())

(* --- structured reads ----------------------------------------------------- *)

type stage_stat = {
  st_stage : string;
  st_count : int; (* observations in the Metrics histogram *)
  st_mean_s : float;
  st_window : int; (* samples behind the exact quantiles *)
  st_p50_s : float;
  st_p90_s : float;
  st_p99_s : float;
  st_p999_s : float;
}

let stage_stats () =
  let out = ref [] in
  for i = Array.length stage_names - 1 downto 0 do
    let h = M.hist_value stage_hists.(i) in
    let q = Obs.Quantile.summary stage_quantiles.(i) in
    if h.M.count > 0 || q.Obs.Quantile.s_count > 0 then
      out :=
        {
          st_stage = stage_names.(i);
          st_count = h.M.count;
          st_mean_s = (if h.M.count > 0 then h.M.sum /. float_of_int h.M.count else 0.);
          st_window = q.Obs.Quantile.s_count;
          st_p50_s = q.Obs.Quantile.s_p50;
          st_p90_s = q.Obs.Quantile.s_p90;
          st_p99_s = q.Obs.Quantile.s_p99;
          st_p999_s = q.Obs.Quantile.s_p999;
        }
        :: !out
  done;
  !out

type latency_stat = {
  l_kind : string;
  l_codec : string;
  l_count : int; (* total samples ever recorded *)
  l_window : int;
  l_p50_s : float;
  l_p90_s : float;
  l_p99_s : float;
  l_p999_s : float;
}

let latency_stats () =
  let out = ref [] in
  for k = Array.length kind_names - 1 downto 0 do
    for c = Array.length codec_names - 1 downto 0 do
      let res = latency_quantiles.(k).(c) in
      if Obs.Quantile.count res > 0 then begin
        let q = Obs.Quantile.summary res in
        out :=
          {
            l_kind = kind_names.(k);
            l_codec = codec_names.(c);
            l_count = Obs.Quantile.count res;
            l_window = q.Obs.Quantile.s_count;
            l_p50_s = q.Obs.Quantile.s_p50;
            l_p90_s = q.Obs.Quantile.s_p90;
            l_p99_s = q.Obs.Quantile.s_p99;
            l_p999_s = q.Obs.Quantile.s_p999;
          }
          :: !out
      end
    done
  done;
  !out

let requests_per_second ?(window_s = 10) () =
  Obs.Rate.per_second rate ~window_s

let total_finished () = Obs.Rate.total rate

(* --- stats document ------------------------------------------------------- *)

let j_num = Obs.Json.num
let j_str = Obs.Json.str
let us x = j_num (x *. 1e6)

let stats_json () =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "{\"telemetry\":{\"enabled\":%b,\"sample_every\":%d}"
       (enabled ()) (sample_every ()));
  Buffer.add_string b
    (Printf.sprintf ",\"rate\":{\"window_s\":10,\"rps\":%s,\"total\":%d}"
       (j_num (requests_per_second ~window_s:10 ()))
       (total_finished ()));
  Buffer.add_string b ",\"latency\":{";
  List.iteri
    (fun i l ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "%s:{\"count\":%d,\"window\":%d,\"p50_us\":%s,\"p90_us\":%s,\"p99_us\":%s,\"p999_us\":%s}"
           (j_str (l.l_kind ^ "." ^ l.l_codec))
           l.l_count l.l_window (us l.l_p50_s) (us l.l_p90_s) (us l.l_p99_s)
           (us l.l_p999_s)))
    (latency_stats ());
  Buffer.add_string b "},\"stages\":{";
  List.iteri
    (fun i st ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "%s:{\"count\":%d,\"mean_us\":%s,\"window\":%d,\"p50_us\":%s,\"p90_us\":%s,\"p99_us\":%s,\"p999_us\":%s}"
           (j_str st.st_stage) st.st_count (us st.st_mean_s) st.st_window
           (us st.st_p50_s) (us st.st_p90_s) (us st.st_p99_s)
           (us st.st_p999_s)))
    (stage_stats ());
  Buffer.add_string b
    (Printf.sprintf
       "},\"recorder\":{\"capacity\":%d,\"recorded\":%d,\"pushed\":%d,\"dropped\":%d}"
       (recorder_capacity ()) (recorder_recorded ()) (recorder_pushed ())
       (recorder_dropped ()));
  Buffer.add_string b
    (Printf.sprintf
       ",\"trace\":{\"enabled\":%b,\"spans\":%d,\"dropped\":%d}}"
       (Obs.Trace.enabled ())
       (List.length (Obs.Trace.spans ()))
       (Obs.Trace.dropped ()));
  Buffer.contents b

(* --- flight-recorder dump ------------------------------------------------- *)

let record_jsonl seq c =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"schema\":%s,\"type\":\"request\",\"seq\":%d,\"id\":%s,\"kind\":%s,\"codec\":%s,\"status\":%s,\"cache\":%s,\"sampled\":%b,\"start_ns\":%d,\"total_ns\":%d"
       (j_str M.schema) seq
       (match c.id with Some id -> j_str id | None -> "null")
       (j_str c.kind) (j_str c.codec) (j_str c.status)
       (j_str (if c.cache_hit then "hit" else "miss"))
       (should_sample_id c.id) c.t_read
       (if c.t_flush >= c.t_read then c.t_flush - c.t_read else 0));
  Buffer.add_string b ",\"stages\":{";
  let durs = stage_durs c in
  let first = ref true in
  Array.iteri
    (fun i d ->
      match d with
      | Some d ->
        if not !first then Buffer.add_char b ',';
        first := false;
        Buffer.add_string b
          (Printf.sprintf "\"%s_ns\":%.0f" stage_names.(i) (d /. ns_to_s))
      | None -> ())
    durs;
  Buffer.add_string b "}}";
  Buffer.contents b

let write_recorder ?(reason = "explicit") oc =
  let r = Atomic.get recorder in
  let entries = Obs.Recorder.dump r in
  output_string oc
    (Printf.sprintf
       "{\"schema\":%s,\"type\":\"recorder\",\"reason\":%s,\"capacity\":%d,\"recorded\":%d,\"pushed\":%d,\"dropped\":%d}\n"
       (j_str M.schema) (j_str reason) (Obs.Recorder.capacity r)
       (List.length entries) (Obs.Recorder.pushed r) (Obs.Recorder.dropped r));
  List.iter
    (fun (seq, c) ->
      output_string oc (record_jsonl seq c);
      output_char oc '\n')
    entries

(* Crash dumps: a transport or supervisor notices something fatal and
   wants the last N requests on disk.  The path is configured once
   (e.g. by `swap_cli serve --recorder-dump`); without one the trigger
   is a no-op.  I/O failures are swallowed — a dump must never turn a
   recoverable worker crash into a server death. *)
let dump_path = Atomic.make (None : string option)
let set_dump_path p = Atomic.set dump_path p

let dump_to_path ~reason =
  match Atomic.get dump_path with
  | None -> ()
  | Some path -> (
    match open_out path with
    | exception Sys_error _ -> ()
    | oc ->
      (try write_recorder ~reason oc with Sys_error _ -> ());
      (try close_out oc with Sys_error _ -> ()))

(* --- reset (tests, bench legs) -------------------------------------------- *)

let reset () =
  Array.iter (fun row -> Array.iter Obs.Quantile.reset row) latency_quantiles;
  Array.iter Obs.Quantile.reset stage_quantiles;
  Obs.Rate.reset rate;
  Obs.Recorder.reset (Atomic.get recorder)
