(** Request telemetry for the serve stack: per-request stage clocks
    folded into histograms + exact-quantile reservoirs, a deterministic
    trace sampler, a windowed req/s meter, and a bounded flight
    recorder dumped as htlc-obs/v1 JSONL.

    Telemetry never touches response bytes: the byte-identity contract
    holds with telemetry on or off.  When disabled, {!make} returns a
    shared dummy clock and every stamp is one bool load. *)

(** {1 Global switches} *)

val set_enabled : bool -> unit
(** On by default.  Disabling stops new clocks (in-flight real clocks
    still finalise). *)

val enabled : unit -> bool

val set_sample_every : int -> unit
(** Promote ~1/n of requests to full [Obs.Trace] spans (default 256;
    [1] = every request — what the telemetry smoke forces).
    @raise Invalid_argument when [< 1]. *)

val sample_every : unit -> int

val should_sample_id : string option -> bool
(** The sampling decision — a pure function of the request id (FNV-1a
    of the id, empty string when [None], mod {!sample_every}), so the
    sampled set is identical at any shard/worker count and across
    replays of the same corpus. *)

(** {1 Stage clock}

    Stamps are monotonic timestamps as tagged [int] nanoseconds
    ({!Obs.Monotonic.now_int_ns} — an [int64] would box on every
    mutable-field store, the dominant telemetry cost at serve
    throughput): read-complete (at {!make}), decode, cache-lookup,
    queue-admit, compute-start/end, encode, and flush (at {!finish}).
    All mutators are no-ops on the dummy clock. *)

type clock

val none : clock
(** The shared dummy clock (what disabled transports pass around). *)

val make : codec:string -> read_ns:int -> clock
(** New clock for a request whose bytes finished arriving at
    [read_ns]; [codec] is ["json"], ["binary"], ["pipe"], or
    ["queue"].  Returns {!none} when telemetry is disabled. *)

val is_real : clock -> bool

val reinit : clock -> codec:string -> read_ns:int -> clock
(** Reset a finalized real clock for its next request on the same
    transport, avoiding the per-request allocation ({!finish} copies
    the record into the flight recorder rather than retaining it, so a
    finalized clock has no other owner).  Falls back to {!make} when
    [c] is not a finalized real clock, and to {!none} when telemetry
    is disabled. *)

val now_ns : unit -> int
val stamp_decode : clock -> unit
val stamp_cache : clock -> hit:bool -> unit
val stamp_queue_at : clock -> int -> unit
val stamp_compute_start : clock -> unit
val stamp_compute_stop : clock -> unit
val stamp_encode : clock -> unit
val set_kind : clock -> string -> unit
val set_id : clock -> string option -> unit
val set_status : clock -> string -> unit

val finish : clock -> flush_ns:int -> unit
(** Finalise: fold stage durations into the [serve.stage.*_s] and
    [serve.latency.<kind>.<codec>_s] histograms and reservoirs, count
    the request in the rate window, push the record into the flight
    recorder, and — when {!should_sample_id} selects it — emit a
    ["serve.request"] span with per-stage annotations.  Idempotent. *)

val finish_now : clock -> unit
(** {!finish} at the current monotonic time. *)

(** {1 Structured reads} *)

type stage_stat = {
  st_stage : string;
  st_count : int;  (** observations in the Metrics histogram *)
  st_mean_s : float;
  st_window : int;  (** samples behind the exact quantiles *)
  st_p50_s : float;
  st_p90_s : float;
  st_p99_s : float;
  st_p999_s : float;
}

val stage_stats : unit -> stage_stat list
(** Per-stage breakdown (stages with at least one sample), in stage
    order: decode, cache, queue, compute, encode, flush, total. *)

type latency_stat = {
  l_kind : string;
  l_codec : string;
  l_count : int;  (** total samples ever recorded *)
  l_window : int;
  l_p50_s : float;
  l_p90_s : float;
  l_p99_s : float;
  l_p999_s : float;
}

val latency_stats : unit -> latency_stat list
(** Exact total-latency quantiles per (kind, codec) with traffic. *)

val requests_per_second : ?window_s:int -> unit -> float
(** Mean finished-requests/s over the trailing window (default 10 s). *)

val total_finished : unit -> int

val stats_json : unit -> string
(** The `stats` request result: one JSON object with [telemetry],
    [rate], [latency], [stages], [recorder], and [trace] sections.
    Live state — never cached, outside the byte-identity contract. *)

(** {1 Flight recorder} *)

val set_recorder_capacity : int -> unit
(** Replace the recorder with an empty one bounded at ~n records
    (rounded up to 8 x a power of two).
    @raise Invalid_argument when [< 8]. *)

val recorder_capacity : unit -> int
val recorder_recorded : unit -> int
val recorder_pushed : unit -> int
val recorder_dropped : unit -> int

val write_recorder : ?reason:string -> out_channel -> unit
(** Dump as htlc-obs/v1 JSONL: one [{"type":"recorder",...}] header
    line (reason, bounds, drop count), then one
    [{"type":"request",...}] line per held record, oldest first. *)

val set_dump_path : string option -> unit
(** Configure where {!dump_to_path} writes (e.g. from
    [swap_cli serve --recorder-dump]); [None] (default) makes crash
    triggers no-ops. *)

val dump_to_path : reason:string -> unit
(** Dump the recorder to the configured path, if any.  I/O errors are
    swallowed: a failed dump must never escalate a recoverable worker
    crash into a server death. *)

val reset : unit -> unit
(** Empty the reservoirs, rate window, and recorder (tests and bench
    legs; the [Obs.Metrics] histograms are reset via [Obs.Metrics.reset]). *)
