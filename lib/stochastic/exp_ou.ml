open Numerics

type t = { kappa : float; theta : float; sigma : float }

let create ~kappa ~theta_price ~sigma =
  if kappa <= 0. then invalid_arg "Exp_ou.create: requires kappa > 0";
  if theta_price <= 0. then
    invalid_arg "Exp_ou.create: requires theta_price > 0";
  if sigma <= 0. then invalid_arg "Exp_ou.create: requires sigma > 0";
  { kappa; theta = log theta_price; sigma }

let moments t ~p0 ~tau =
  if p0 <= 0. then invalid_arg "Exp_ou: requires p0 > 0";
  if tau <= 0. then invalid_arg "Exp_ou: requires tau > 0";
  let decay = exp (-.t.kappa *. tau) in
  let mean = t.theta +. ((log p0 -. t.theta) *. decay) in
  let var = t.sigma *. t.sigma *. (1. -. (decay *. decay)) /. (2. *. t.kappa) in
  (mean, sqrt var)

let transition t ~p0 ~tau =
  let mu, sigma = moments t ~p0 ~tau in
  Lognormal.create ~mu ~sigma

let expectation t ~p0 ~tau = Lognormal.mean (transition t ~p0 ~tau)
let cdf t ~x ~p0 ~tau = Lognormal.cdf (transition t ~p0 ~tau) x
let sf t ~x ~p0 ~tau = Lognormal.sf (transition t ~p0 ~tau) x
let pdf t ~x ~p0 ~tau = Lognormal.pdf (transition t ~p0 ~tau) x

let sample rng t ~p0 ~tau =
  let mu, sigma = moments t ~p0 ~tau in
  Rng.lognormal rng ~mu ~sigma

let stationary t =
  Lognormal.create ~mu:t.theta
    ~sigma:(t.sigma /. sqrt (2. *. t.kappa))

let half_life t = log 2. /. t.kappa
let equivalent_short_run_sigma t = t.sigma
