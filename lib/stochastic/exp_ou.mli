(** Exponential Ornstein–Uhlenbeck (Schwartz one-factor) price model:
    the log price mean-reverts,

    {v d ln P = kappa (theta - ln P) dt + sigma dW v}

    with exact Gaussian transitions.  This is the natural model for a
    {e stablecoin-like} Token_b whose price is pulled back to a peg —
    a regime the paper's GBM cannot express and one where HTLC swaps
    behave very differently (see the "stablecoin" experiment). *)

type t = private {
  kappa : float;  (** Mean-reversion speed per unit time, > 0. *)
  theta : float;  (** Long-run mean of [ln P]. *)
  sigma : float;  (** Volatility of the log price, > 0. *)
}

val create : kappa:float -> theta_price:float -> sigma:float -> t
(** [theta_price] is the long-run {e price} level (its log is stored).
    @raise Invalid_argument unless [kappa > 0.], [theta_price > 0.],
    [sigma > 0.]. *)

val transition : t -> p0:float -> tau:float -> Numerics.Lognormal.t
(** Exact conditional law of [P_{t+tau}] given [P_t = p0]. *)

val expectation : t -> p0:float -> tau:float -> float
val cdf : t -> x:float -> p0:float -> tau:float -> float
val sf : t -> x:float -> p0:float -> tau:float -> float
val pdf : t -> x:float -> p0:float -> tau:float -> float

val sample : Numerics.Rng.t -> t -> p0:float -> tau:float -> float
(** Exact draw (no discretisation error). *)

val stationary : t -> Numerics.Lognormal.t
(** The [tau -> infinity] limit law. *)

val half_life : t -> float
(** Time for a log-price deviation to halve: [ln 2 / kappa]. *)

val equivalent_short_run_sigma : t -> float
(** The instantaneous log volatility — comparable to a GBM's [sigma]
    over horizons much shorter than the half life. *)
