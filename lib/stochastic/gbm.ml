open Numerics

type t = { mu : float; sigma : float }

let create ~mu ~sigma =
  if sigma <= 0. then invalid_arg "Gbm.create: requires sigma > 0";
  { mu; sigma }

let check_args ~p0 ~tau =
  if p0 <= 0. then invalid_arg "Gbm: requires p0 > 0";
  if tau <= 0. then invalid_arg "Gbm: requires tau > 0"

let log_return_mean { mu; sigma } ~tau = (mu -. (0.5 *. sigma *. sigma)) *. tau
let log_return_stddev { sigma; _ } ~tau = sigma *. sqrt tau

let transition t ~p0 ~tau =
  check_args ~p0 ~tau;
  Lognormal.create
    ~mu:(log p0 +. log_return_mean t ~tau)
    ~sigma:(log_return_stddev t ~tau)

let expectation t ~p0 ~tau =
  check_args ~p0 ~tau;
  p0 *. exp (t.mu *. tau)

let pdf t ~x ~p0 ~tau = Lognormal.pdf (transition t ~p0 ~tau) x

(* The paper's printed form:
   C(x, P_t, tau) = 1/2 erfc ((ln (x / P_t) - (mu - sigma^2/2) tau)
                               / (sqrt (2 tau) sigma))
   Note the sign: this equals P[P_{t+tau} <= x] because
   erfc(-z)/2 = Phi(z sqrt 2); we keep the exact expression. *)
let cdf t ~x ~p0 ~tau =
  check_args ~p0 ~tau;
  if x <= 0. then 0.
  else
    let z =
      (log (x /. p0) -. log_return_mean t ~tau)
      /. (sqrt (2. *. tau) *. t.sigma)
    in
    0.5 *. Special.erfc (-.z)

let sf t ~x ~p0 ~tau =
  check_args ~p0 ~tau;
  if x <= 0. then 1.
  else
    let z =
      (log (x /. p0) -. log_return_mean t ~tau)
      /. (sqrt (2. *. tau) *. t.sigma)
    in
    0.5 *. Special.erfc z

let quantile t ~p ~p0 ~tau = Lognormal.quantile (transition t ~p0 ~tau) p

let partial_expectation_above t ~k ~p0 ~tau =
  Lognormal.partial_expectation_above (transition t ~p0 ~tau) k

let partial_expectation_below t ~k ~p0 ~tau =
  Lognormal.partial_expectation_below (transition t ~p0 ~tau) k

let sample rng t ~p0 ~tau =
  check_args ~p0 ~tau;
  p0
  *. exp
       (log_return_mean t ~tau +. (log_return_stddev t ~tau *. Rng.normal rng))

let sample_path rng t ~p0 ~times =
  if p0 <= 0. then invalid_arg "Gbm.sample_path: requires p0 > 0";
  let n = Array.length times in
  let out = Array.make n p0 in
  let prev_t = ref 0. and prev_p = ref p0 in
  for i = 0 to n - 1 do
    let dt = times.(i) -. !prev_t in
    if dt <= 0. then
      invalid_arg "Gbm.sample_path: times must be strictly increasing (> 0)";
    let p = sample rng t ~p0:!prev_p ~tau:dt in
    out.(i) <- p;
    prev_t := times.(i);
    prev_p := p
  done;
  out
