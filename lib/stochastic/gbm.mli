(** Geometric Brownian motion — the token-price model of the paper
    (Assumption 4, Eq. 1):

    {v ln (P_{t+tau} / P_t) = (mu - sigma^2/2) tau + sigma (W_{t+tau} - W_t) v}

    All closed forms below are exactly the paper's [E], [P] (pdf) and [C]
    (cdf) of Section III-A. *)

type t = private { mu : float; sigma : float }
(** [mu] is the drift per unit time, [sigma] the volatility per square
    root of unit time (hours in the paper's calibration). *)

val create : mu:float -> sigma:float -> t
(** @raise Invalid_argument if [sigma <= 0.]. *)

val transition : t -> p0:float -> tau:float -> Numerics.Lognormal.t
(** The lognormal law of [P_{t+tau}] given [P_t = p0].
    @raise Invalid_argument if [p0 <= 0.] or [tau <= 0.]. *)

val expectation : t -> p0:float -> tau:float -> float
(** Paper's [E(P_t, tau) = P_t exp (mu tau)]. *)

val pdf : t -> x:float -> p0:float -> tau:float -> float
(** Paper's [P(x, P_t, tau)]: transition density at [x]. *)

val cdf : t -> x:float -> p0:float -> tau:float -> float
(** Paper's [C(x, P_t, tau)], computed with the same [erfc] form as
    printed in the paper. *)

val sf : t -> x:float -> p0:float -> tau:float -> float
(** [1 - cdf], cancellation-free. *)

val quantile : t -> p:float -> p0:float -> tau:float -> float

val partial_expectation_above : t -> k:float -> p0:float -> tau:float -> float
(** [E[P_{t+tau} 1_{P_{t+tau} > k} | P_t = p0]] — closed form used by the
    time-[t2] utilities. *)

val partial_expectation_below : t -> k:float -> p0:float -> tau:float -> float

val sample : Numerics.Rng.t -> t -> p0:float -> tau:float -> float
(** Exact draw from the transition law (no discretisation error). *)

val sample_path :
  Numerics.Rng.t -> t -> p0:float -> times:float array -> float array
(** Exact joint draw of the path at the given strictly increasing times
    (starting after 0; [P_0 = p0] is implicit). *)

val log_return_mean : t -> tau:float -> float
(** [(mu - sigma^2/2) tau]. *)

val log_return_stddev : t -> tau:float -> float
(** [sigma sqrt tau]. *)
