open Numerics

type t = {
  gbm : Gbm.t;
  lambda : float;
  jump_mean : float;
  jump_stddev : float;
}

let create ~mu ~sigma ~lambda ~jump_mean ~jump_stddev =
  if lambda < 0. then invalid_arg "Jump_diffusion.create: requires lambda >= 0";
  if jump_stddev < 0. then
    invalid_arg "Jump_diffusion.create: requires jump_stddev >= 0";
  { gbm = Gbm.create ~mu ~sigma; lambda; jump_mean; jump_stddev }

(* Poisson sampling by inversion (Knuth); fine for lambda * tau in the
   single digits which is the regime of the hour-scale swap. *)
let poisson rng ~mean =
  if mean <= 0. then 0
  else
    let l = exp (-.mean) in
    let rec go k p =
      let p = p *. Rng.uniform rng in
      if p <= l then k else go (k + 1) p
    in
    go 0 1.

let sample rng t ~p0 ~tau =
  let diffusion_part = Gbm.sample rng t.gbm ~p0 ~tau in
  let n_jumps = poisson rng ~mean:(t.lambda *. tau) in
  let jump_log = ref 0. in
  for _ = 1 to n_jumps do
    jump_log :=
      !jump_log +. Rng.gaussian rng ~mean:t.jump_mean ~stddev:t.jump_stddev
  done;
  diffusion_part *. exp !jump_log

let expectation t ~p0 ~tau =
  let jump_drift =
    t.lambda
    *. (exp (t.jump_mean +. (0.5 *. t.jump_stddev *. t.jump_stddev)) -. 1.)
  in
  p0 *. exp ((t.gbm.Gbm.mu +. jump_drift) *. tau)

let sample_path rng t ~p0 ~times =
  if p0 <= 0. then invalid_arg "Jump_diffusion.sample_path: requires p0 > 0";
  let n = Array.length times in
  let out = Array.make n p0 in
  let prev_t = ref 0. and prev_p = ref p0 in
  for i = 0 to n - 1 do
    let dt = times.(i) -. !prev_t in
    if dt <= 0. then
      invalid_arg
        "Jump_diffusion.sample_path: times must be strictly increasing (> 0)";
    let p = sample rng t ~p0:!prev_p ~tau:dt in
    out.(i) <- p;
    prev_t := times.(i);
    prev_p := p
  done;
  out
