(** Merton jump-diffusion price model — an extension beyond the paper's
    GBM assumption, used for the fat-tail ablation experiment:

    [d ln P = (mu - sigma^2/2) dt + sigma dW + sum of lognormal jumps]

    with jump arrivals Poisson([lambda]) and jump sizes
    [ln J ~ N(jump_mean, jump_stddev^2)]. *)

type t = private {
  gbm : Gbm.t;
  lambda : float;  (** Jump intensity per unit time. *)
  jump_mean : float;
  jump_stddev : float;
}

val create :
  mu:float -> sigma:float -> lambda:float -> jump_mean:float ->
  jump_stddev:float -> t
(** @raise Invalid_argument on nonpositive [sigma], negative [lambda], or
    negative [jump_stddev]. *)

val sample : Numerics.Rng.t -> t -> p0:float -> tau:float -> float
(** Exact draw of [P_{t+tau}]: Poisson jump count, then lognormal
    components composed. *)

val expectation : t -> p0:float -> tau:float -> float
(** [p0 exp ((mu + lambda (exp (jump_mean + jump_stddev^2/2) - 1)) tau)]. *)

val sample_path :
  Numerics.Rng.t -> t -> p0:float -> times:float array -> float array
