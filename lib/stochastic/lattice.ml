type t = {
  p0 : float;
  dt : float;
  steps : int;
  up : float;
  down : float;
  p_up : float;
}

let create (gbm : Gbm.t) ~p0 ~horizon ~steps =
  if p0 <= 0. then invalid_arg "Lattice.create: requires p0 > 0";
  if horizon <= 0. then invalid_arg "Lattice.create: requires horizon > 0";
  if steps <= 0 then invalid_arg "Lattice.create: requires steps > 0";
  let dt = horizon /. float_of_int steps in
  let up = exp (gbm.Gbm.sigma *. sqrt dt) in
  let down = 1. /. up in
  let p_up = (exp (gbm.Gbm.mu *. dt) -. down) /. (up -. down) in
  if p_up <= 0. || p_up >= 1. then
    invalid_arg
      "Lattice.create: up-probability outside (0, 1); use more steps";
  { p0; dt; steps; up; down; p_up }

let check_node t ~level ~index =
  if level < 0 || level > t.steps then invalid_arg "Lattice: level out of range";
  if index < 0 || index > level then invalid_arg "Lattice: index out of range"

let price t ~level ~index =
  check_node t ~level ~index;
  t.p0
  *. (t.up ** float_of_int index)
  *. (t.down ** float_of_int (level - index))

let level_prices t ~level =
  Array.init (level + 1) (fun index -> price t ~level ~index)

let prob_up t = t.p_up

let log_choose n k =
  Numerics.Special.log_gamma (float_of_int (n + 1))
  -. Numerics.Special.log_gamma (float_of_int (k + 1))
  -. Numerics.Special.log_gamma (float_of_int (n - k + 1))

let node_probability t ~level ~index =
  check_node t ~level ~index;
  if level = 0 then 1.
  else
    exp
      (log_choose level index
      +. (float_of_int index *. log t.p_up)
      +. (float_of_int (level - index) *. log (1. -. t.p_up)))

let expectation_at t ~level =
  let prices = level_prices t ~level in
  let acc = ref 0. in
  Array.iteri
    (fun index p -> acc := !acc +. (node_probability t ~level ~index *. p))
    prices;
  !acc

let expected_value t ~level ~index ~values =
  check_node t ~level ~index;
  if Array.length values <> level + 2 then
    invalid_arg "Lattice.expected_value: values must cover the next level";
  (t.p_up *. values.(index + 1)) +. ((1. -. t.p_up) *. values.(index))
