(** Recombining binomial lattice calibrated to a GBM, in the
    Cox–Ross–Rubinstein parameterisation with drift:

    [u = exp (sigma sqrt dt)], [d = 1/u],
    [p_up = (exp (mu dt) - d) / (u - d)].

    The lattice discretises the paper's price process so that the swap
    game can be rebuilt as a {e finite} extensive-form game and solved by
    the generic backward-induction engine ({!Gametree}), cross-validating
    the analytic solution. *)

type t = private {
  p0 : float;
  dt : float;
  steps : int;
  up : float;
  down : float;
  p_up : float;
}

val create : Gbm.t -> p0:float -> horizon:float -> steps:int -> t
(** [create gbm ~p0 ~horizon ~steps] builds a lattice over [[0, horizon]].
    @raise Invalid_argument if parameters are non-positive or if the
    up-probability falls outside (0, 1) (time step too coarse for the
    drift). *)

val price : t -> level:int -> index:int -> float
(** Price at node [(level, index)], [index] up-moves out of [level]
    steps; [0 <= index <= level <= steps]. *)

val level_prices : t -> level:int -> float array
(** All [level + 1] node prices, increasing in index. *)

val prob_up : t -> float

val node_probability : t -> level:int -> index:int -> float
(** Unconditional probability of reaching the node (binomial). *)

val expectation_at : t -> level:int -> float
(** Lattice expectation of the price at [level]; converges to
    [p0 exp (mu t)] as [steps] grows. *)

val expected_value :
  t -> level:int -> index:int -> values:float array -> float
(** One-step conditional expectation: [values] are indexed by the
    [level + 1] nodes of the {e next} level; returns
    [p_up * values.(index+1) + (1 - p_up) * values.(index)]. *)
