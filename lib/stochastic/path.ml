open Numerics

type t = { times : float array; values : float array }

let m_created = Obs.Metrics.counter "stochastic.paths_created"

let create ~times ~values =
  let n = Array.length times in
  if n = 0 then invalid_arg "Path.create: empty";
  if Array.length values <> n then invalid_arg "Path.create: length mismatch";
  for i = 1 to n - 1 do
    if times.(i) <= times.(i - 1) then
      invalid_arg "Path.create: times must be strictly increasing"
  done;
  Obs.Metrics.incr m_created;
  { times; values }

let length p = Array.length p.times

(* Binary search for the largest index with times.(i) <= t. *)
let index_before p t =
  let n = Array.length p.times in
  if t < p.times.(0) then
    invalid_arg "Path.at: time precedes first sample";
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if p.times.(mid) <= t then lo := mid else hi := mid - 1
  done;
  !lo

let at p t = p.values.(index_before p t)

let at_linear p t =
  let n = Array.length p.times in
  if t <= p.times.(0) then p.values.(0)
  else if t >= p.times.(n - 1) then p.values.(n - 1)
  else
    let i = index_before p t in
    let t0 = p.times.(i) and t1 = p.times.(i + 1) in
    let v0 = p.values.(i) and v1 = p.values.(i + 1) in
    v0 +. ((v1 -. v0) *. (t -. t0) /. (t1 -. t0))

let map_values f p = { p with values = Array.map f p.values }

let last p =
  let n = Array.length p.times in
  (p.times.(n - 1), p.values.(n - 1))

let first p = (p.times.(0), p.values.(0))

let log_returns p =
  let n = Array.length p.values in
  Array.init (n - 1) (fun i ->
      let a = p.values.(i) and b = p.values.(i + 1) in
      if a <= 0. || b <= 0. then
        invalid_arg "Path.log_returns: nonpositive value";
      log (b /. a))

let realized_volatility p =
  let n = Array.length p.times in
  if n < 3 then invalid_arg "Path.realized_volatility: needs >= 3 samples";
  let rets = log_returns p in
  let mean_dt = (p.times.(n - 1) -. p.times.(0)) /. float_of_int (n - 1) in
  Stats.stddev rets /. sqrt mean_dt
