(** Sampled time series (price paths). *)

type t = private { times : float array; values : float array }

val create : times:float array -> values:float array -> t
(** @raise Invalid_argument if lengths differ, arrays are empty, or
    [times] is not strictly increasing. *)

val length : t -> int

val at : t -> float -> float
(** [at p t] — value at time [t] by previous-tick (right-continuous step)
    interpolation: the value of the latest sample time [<= t].
    @raise Invalid_argument if [t] precedes the first sample. *)

val at_linear : t -> float -> float
(** Linear interpolation; clamps beyond the last sample. *)

val map_values : (float -> float) -> t -> t

val last : t -> float * float
(** Final [(time, value)]. *)

val first : t -> float * float

val log_returns : t -> float array
(** Log returns between consecutive samples (length [n - 1]).
    @raise Invalid_argument if any value is nonpositive. *)

val realized_volatility : t -> float
(** Annualised-per-unit-time realised volatility:
    stddev of log returns divided by sqrt of mean sample spacing. *)
