open Numerics

type coeffs = {
  drift : float -> float -> float;
  diffusion : float -> float -> float;
}

let gbm_coeffs ~mu ~sigma =
  {
    drift = (fun _t x -> mu *. x);
    diffusion = (fun _t x -> sigma *. x);
  }

let check ~t0 ~t1 ~steps =
  if steps <= 0 then invalid_arg "Sde: requires steps > 0";
  if t1 <= t0 then invalid_arg "Sde: requires t1 > t0"

let euler_maruyama rng { drift; diffusion } ~x0 ~t0 ~t1 ~steps =
  check ~t0 ~t1 ~steps;
  let dt = (t1 -. t0) /. float_of_int steps in
  let sqrt_dt = sqrt dt in
  let out = Array.make (steps + 1) x0 in
  let x = ref x0 in
  for i = 1 to steps do
    let t = t0 +. (float_of_int (i - 1) *. dt) in
    let dw = sqrt_dt *. Rng.normal rng in
    x := !x +. (drift t !x *. dt) +. (diffusion t !x *. dw);
    out.(i) <- !x
  done;
  out

let milstein rng { drift; diffusion } ~diffusion_dx ~x0 ~t0 ~t1 ~steps =
  check ~t0 ~t1 ~steps;
  let dt = (t1 -. t0) /. float_of_int steps in
  let sqrt_dt = sqrt dt in
  let out = Array.make (steps + 1) x0 in
  let x = ref x0 in
  for i = 1 to steps do
    let t = t0 +. (float_of_int (i - 1) *. dt) in
    let dw = sqrt_dt *. Rng.normal rng in
    let b = diffusion t !x in
    x :=
      !x
      +. (drift t !x *. dt)
      +. (b *. dw)
      +. (0.5 *. b *. diffusion_dx t !x *. ((dw *. dw) -. dt));
    out.(i) <- !x
  done;
  out

let terminal rng { drift; diffusion } ~x0 ~t0 ~t1 ~steps =
  check ~t0 ~t1 ~steps;
  let dt = (t1 -. t0) /. float_of_int steps in
  let sqrt_dt = sqrt dt in
  let x = ref x0 in
  for i = 1 to steps do
    let t = t0 +. (float_of_int (i - 1) *. dt) in
    let dw = sqrt_dt *. Rng.normal rng in
    x := !x +. (drift t !x *. dt) +. (diffusion t !x *. dw)
  done;
  !x
