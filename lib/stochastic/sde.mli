(** Generic scalar stochastic differential equations
    [dX = drift(t, X) dt + diffusion(t, X) dW] and discretisation
    schemes.  Used to cross-check the exact GBM sampler and to support
    price models without closed-form transitions. *)

type coeffs = {
  drift : float -> float -> float;  (** [drift t x] *)
  diffusion : float -> float -> float;  (** [diffusion t x] *)
}

val gbm_coeffs : mu:float -> sigma:float -> coeffs
(** [drift = mu x], [diffusion = sigma x]. *)

val euler_maruyama :
  Numerics.Rng.t -> coeffs -> x0:float -> t0:float -> t1:float -> steps:int ->
  float array
(** Euler–Maruyama path with [steps] uniform steps on [[t0, t1]]; returns
    [steps + 1] values including [x0].  Weak order 1, strong order 1/2.
    @raise Invalid_argument if [steps <= 0] or [t1 <= t0]. *)

val milstein :
  Numerics.Rng.t -> coeffs -> diffusion_dx:(float -> float -> float) ->
  x0:float -> t0:float -> t1:float -> steps:int -> float array
(** Milstein scheme (strong order 1); [diffusion_dx t x] is the spatial
    derivative of the diffusion coefficient. *)

val terminal :
  Numerics.Rng.t -> coeffs -> x0:float -> t0:float -> t1:float -> steps:int ->
  float
(** Last value of an Euler–Maruyama path, without storing the path. *)
