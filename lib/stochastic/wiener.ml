open Numerics

let increment rng ~dt =
  if dt <= 0. then invalid_arg "Wiener.increment: requires dt > 0";
  sqrt dt *. Rng.normal rng

let sample_path rng ~times =
  let n = Array.length times in
  if n = 0 then [||]
  else begin
    if times.(0) < 0. then
      invalid_arg "Wiener.sample_path: times must be nonnegative";
    let out = Array.make n 0. in
    let prev_t = ref 0. and prev_w = ref 0. in
    for i = 0 to n - 1 do
      let dt = times.(i) -. !prev_t in
      if dt < 0. || (i > 0 && dt = 0.) then
        invalid_arg "Wiener.sample_path: times must be strictly increasing";
      let w = if dt = 0. then !prev_w else !prev_w +. increment rng ~dt in
      out.(i) <- w;
      prev_t := times.(i);
      prev_w := w
    done;
    out
  end

let bridge rng ~t0 ~w0 ~t1 ~w1 ~t =
  if not (t0 < t && t < t1) then
    invalid_arg "Wiener.bridge: requires t0 < t < t1";
  let alpha = (t -. t0) /. (t1 -. t0) in
  let mean = w0 +. (alpha *. (w1 -. w0)) in
  let var = (t -. t0) *. (t1 -. t) /. (t1 -. t0) in
  mean +. (sqrt var *. Rng.normal rng)
