(** Standard Wiener process (Brownian motion) sampling. *)

val increment : Numerics.Rng.t -> dt:float -> float
(** One increment [W_{t+dt} - W_t ~ N(0, dt)].
    @raise Invalid_argument if [dt <= 0.]. *)

val sample_path : Numerics.Rng.t -> times:float array -> float array
(** Path values at the given (strictly increasing, nonnegative) [times];
    [W_0 = 0.] is implicit, the returned array has one value per entry of
    [times].  @raise Invalid_argument if [times] is not strictly
    increasing or starts below 0. *)

val bridge :
  Numerics.Rng.t -> t0:float -> w0:float -> t1:float -> w1:float -> t:float ->
  float
(** Brownian bridge: samples [W_t] conditional on [W_{t0} = w0] and
    [W_{t1} = w1] for [t0 < t < t1]. *)
