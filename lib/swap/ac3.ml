open Chainsim

type outcome =
  | Success
  | Abort_t1
  | Abort_t2
  | Failed_timeout
  | Anomalous of string

type result = {
  outcome : outcome;
  alice_delta_a : float;
  alice_delta_b : float;
  bob_delta_a : float;
  bob_delta_b : float;
  trace : (float * string) list;
}

let outcome_to_string = function
  | Success -> "success"
  | Abort_t1 -> "abort@t1"
  | Abort_t2 -> "abort@t2"
  | Failed_timeout -> "failed (witness timeout)"
  | Anomalous s -> "anomalous: " ^ s

(* Bob's continuation band when Alice cannot defect: the k3 = 0 limit
   of the Eq. 21 machinery (every deployed swap completes). *)
let bob_band ?(scan_points = 600) (p : Params.t) ~p_star =
  let g x =
    Utility.b_t2_cont p ~p_star ~k3:0. ~p_t2:x -. Utility.b_t2_stop ~p_t2:x
  in
  let domain_lo, domain_hi = Cutoff.scan_domain p ~p_star in
  let roots =
    Numerics.Root.find_all_roots_log ~n:scan_points g ~a:domain_lo ~b:domain_hi
  in
  Intervals.of_sign_changes ~f:g ~roots ~domain_lo:0. ~domain_hi:infinity

let success_rate ?quad_nodes (p : Params.t) ~p_star =
  let band = bob_band p ~p_star in
  if Intervals.is_empty band then 0.
  else Success.analytic_given ?quad_nodes p ~k3:0. ~band

let a_t1_net ?quad_nodes (p : Params.t) ~p_star =
  let band = bob_band p ~p_star in
  Utility.a_t1_cont ?quad_nodes p ~p_star ~k3:0. ~band
  -. Utility.a_t1_stop ~p_star

let feasible_band ?(scan_points = 120) ?quad_nodes (p : Params.t) =
  let f p_star = a_t1_net ?quad_nodes p ~p_star in
  let domain_lo = p.Params.p0 *. 0.05 and domain_hi = p.Params.p0 *. 20. in
  let roots =
    Numerics.Root.find_all_roots_log ~n:scan_points f ~a:domain_lo ~b:domain_hi
  in
  match
    Intervals.intervals
      (Intervals.of_sign_changes ~f ~roots ~domain_lo:0. ~domain_hi:infinity)
  with
  | [] -> None
  | ivs ->
    let lo = (List.hd ivs).Intervals.lo in
    let hi = (List.nth ivs (List.length ivs - 1)).Intervals.hi in
    Some (lo, hi)

let rational_policy (p : Params.t) ~p_star =
  let band = bob_band p ~p_star in
  let feasible = feasible_band p in
  {
    Agent.name = "rational (AC3)";
    alice_t1 =
      (fun ~p_star ->
        match feasible with
        | Some (lo, hi) when lo < p_star && p_star < hi -> Agent.Cont
        | _ -> Agent.Stop);
    bob_t2 =
      (fun ~p_t2 ->
        if Intervals.contains band p_t2 then Agent.Cont else Agent.Stop);
    (* No agent moves exist at t3/t4 in this protocol. *)
    alice_t3 = (fun ~p_t3:_ -> Agent.Cont);
    bob_t4 = Agent.Cont;
  }

let alice = "alice"
let bob = "bob"
let witness = "witness"
let escrow_a = "ac3:a"
let escrow_b = "ac3:b"

let run ?(policy = Agent.honest) ?price ?alice_offline_from ?bob_offline_from
    ?witness_offline_from (p : Params.t) ~p_star =
  let price = Option.value ~default:(fun _t -> p.Params.p0) price in
  let tl = Timeline.ideal p in
  let trace = ref [] in
  let log t msg = trace := (t, msg) :: !trace in
  let online offline_from at =
    match offline_from with None -> true | Some t -> at < t
  in
  let chain_a =
    Chain.create ~name:"chain_a" ~token:"TokenA" ~tau:p.Params.tau_a
      ~mempool_delay:0. ()
  in
  let chain_b =
    Chain.create ~name:"chain_b" ~token:"TokenB" ~tau:p.Params.tau_b
      ~mempool_delay:p.Params.eps_b ()
  in
  Chain.mint chain_a ~account:alice ~amount:p_star;
  Chain.mint chain_b ~account:bob ~amount:1.;
  let horizon = tl.Timeline.t8 +. p.Params.tau_a +. p.Params.tau_b +. 1. in
  let finish outcome =
    ignore (Chain.advance chain_a ~until:horizon);
    ignore (Chain.advance chain_b ~until:horizon);
    {
      outcome;
      alice_delta_a = Chain.balance chain_a ~account:alice -. p_star;
      alice_delta_b = Chain.balance chain_b ~account:alice;
      bob_delta_a = Chain.balance chain_a ~account:bob;
      bob_delta_b = Chain.balance chain_b ~account:bob -. 1.;
      trace = List.rev !trace;
    }
  in
  (* Outcome from final escrow states. *)
  let settle ~locked_a ~locked_b ~witness_decided =
    ignore (Chain.advance chain_a ~until:horizon);
    ignore (Chain.advance chain_b ~until:horizon);
    let state_of chain cid =
      Option.map
        (fun (e : Escrow.t) -> e.Escrow.state)
        (Chain.escrow chain ~contract_id:cid)
    in
    let outcome =
      match (locked_a, locked_b) with
      | false, _ -> Abort_t1
      | true, false -> Abort_t2
      | true, true -> (
        match (state_of chain_a escrow_a, state_of chain_b escrow_b) with
        | Some (Escrow.Committed _), Some (Escrow.Committed _) -> Success
        | Some (Escrow.Aborted _), Some (Escrow.Aborted _) ->
          if witness_decided then Abort_t2 else Failed_timeout
        | a, b ->
          Anomalous
            (Printf.sprintf "mixed escrow states (a=%s, b=%s)"
               (match a with
               | Some s -> Escrow.state_to_string s
               | None -> "missing")
               (match b with
               | Some s -> Escrow.state_to_string s
               | None -> "missing")))
    in
    finish outcome
  in
  (* --- t1 ------------------------------------------------------------- *)
  let alice_engages =
    online alice_offline_from tl.Timeline.t1
    && policy.Agent.alice_t1 ~p_star = Agent.Cont
  in
  if not alice_engages then begin
    log tl.Timeline.t1 "alice does not engage";
    finish Abort_t1
  end
  else begin
    log tl.Timeline.t1 "alice escrow-locks Token_a with the witness as arbiter";
    ignore
      (Chain.submit chain_a ~at:tl.Timeline.t1
         (Tx.Escrow_lock
            {
              contract_id = escrow_a;
              owner = alice;
              counterparty = bob;
              amount = p_star;
              arbiter = witness;
              expiry = tl.Timeline.t_lock_a;
            }));
    ignore (Chain.advance chain_a ~until:tl.Timeline.t2);
    let p_t2 = price tl.Timeline.t2 in
    let bob_engages =
      online bob_offline_from tl.Timeline.t2
      && (match Chain.escrow chain_a ~contract_id:escrow_a with
         | Some e -> Escrow.is_held e
         | None -> false)
      && policy.Agent.bob_t2 ~p_t2 = Agent.Cont
    in
    if not bob_engages then begin
      log tl.Timeline.t2
        (Printf.sprintf "bob does not engage (P_t2 = %g)" p_t2);
      (* The witness aborts Alice's escrow right away: she is refunded
         at t2 + tau_a instead of waiting for the time lock (one of the
         commit protocol's advantages). *)
      if online witness_offline_from tl.Timeline.t2 then begin
        log tl.Timeline.t2 "witness aborts alice's escrow early";
        ignore
          (Chain.submit chain_a ~at:tl.Timeline.t2
             (Tx.Escrow_decide
                { contract_id = escrow_a; by = witness; commit = false }))
      end;
      settle ~locked_a:true ~locked_b:false ~witness_decided:true
    end
    else begin
      log tl.Timeline.t2 (Printf.sprintf "bob escrow-locks Token_b (P_t2 = %g)" p_t2);
      ignore
        (Chain.submit chain_b ~at:tl.Timeline.t2
           (Tx.Escrow_lock
              {
                contract_id = escrow_b;
                owner = bob;
                counterparty = alice;
                amount = 1.;
                arbiter = witness;
                expiry = tl.Timeline.t_lock_b;
              }));
      ignore (Chain.advance chain_b ~until:tl.Timeline.t3);
      (* --- t3: the witness, seeing both escrows confirmed, commits
         both chains.  No agent action is required from here on. ------- *)
      let both_held =
        (match Chain.escrow chain_a ~contract_id:escrow_a with
        | Some e -> Escrow.is_held e
        | None -> false)
        && (match Chain.escrow chain_b ~contract_id:escrow_b with
           | Some e -> Escrow.is_held e
           | None -> false)
      in
      let witness_up = online witness_offline_from tl.Timeline.t3 in
      if both_held && witness_up then begin
        log tl.Timeline.t3 "witness commits both escrows";
        ignore
          (Chain.submit chain_a ~at:tl.Timeline.t3
             (Tx.Escrow_decide
                { contract_id = escrow_a; by = witness; commit = true }));
        ignore
          (Chain.submit chain_b ~at:tl.Timeline.t3
             (Tx.Escrow_decide
                { contract_id = escrow_b; by = witness; commit = true }));
        settle ~locked_a:true ~locked_b:true ~witness_decided:true
      end
      else begin
        if not witness_up then
          log tl.Timeline.t3
            "witness offline: both escrows will refund at their expiries"
        else log tl.Timeline.t3 "escrow setup failed; witness stands down";
        settle ~locked_a:true ~locked_b:true ~witness_decided:false
      end
    end
  end
