(** Witness-based atomic cross-chain commitment, in the style of AC3TW
    (Zakhary et al. [31], discussed in Section II-C): both agents place
    their assets in {e arbitrated escrows} and a trusted witness —
    observing both chains — commits or aborts both sides atomically.

    Differences from the HTLC game:
    - Alice has no [t3] reveal step, so her mid-game exit option is
      gone: the game is the [alice_committed] regime of {!Optionality},
      and the success rate is simply the probability that Bob's [t2]
      price lands in his (re-solved) continuation band.
    - Crash failures after [t2] cannot break atomicity: the witness
      settles both chains, and if the witness itself crashes both
      escrows time out and refund (all-or-nothing in every case).
    - The cost is trust in the witness — exactly the trade-off the
      paper's conclusion highlights. *)

type outcome =
  | Success
  | Abort_t1  (** Alice never engaged. *)
  | Abort_t2  (** Bob declined; the witness aborts Alice's escrow early. *)
  | Failed_timeout  (** Witness never decided; both escrows timed out. *)
  | Anomalous of string  (** Should be unreachable; kept for honesty. *)

type result = {
  outcome : outcome;
  alice_delta_a : float;
  alice_delta_b : float;
  bob_delta_a : float;
  bob_delta_b : float;
  trace : (float * string) list;
}

val bob_band : ?scan_points:int -> Params.t -> p_star:float -> Intervals.t
(** Bob's [t2] continuation region knowing Alice cannot defect
    ([k3 = 0] in the Eq. 21 machinery). *)

val rational_policy : Params.t -> p_star:float -> Agent.t
(** Equilibrium policy of the AC3 game (only [alice_t1] and [bob_t2]
    are meaningful; the protocol has no [t3]/[t4] agent moves). *)

val success_rate : ?quad_nodes:int -> Params.t -> p_star:float -> float
(** P(success | initiated) — the transition mass of {!bob_band}. *)

val feasible_band :
  ?scan_points:int -> ?quad_nodes:int -> Params.t -> (float * float) option
(** Exchange rates at which Alice engages at [t1]. *)

val run :
  ?policy:Agent.t ->
  ?price:(float -> float) ->
  ?alice_offline_from:float ->
  ?bob_offline_from:float ->
  ?witness_offline_from:float ->
  Params.t -> p_star:float -> result
(** Executes the witness protocol on the two-chain simulator; the
    outcome is derived from final escrow states.  Default [policy] is
    {!Agent.honest}. *)

val outcome_to_string : outcome -> string
