open Chainsim

type outcome =
  | Success
  | Abort_t1
  | Abort_t2
  | Failed_timeout
  | Anomalous of string

type result = {
  outcome : outcome;
  alice_delta_a : float;
  alice_delta_b : float;
  bob_delta_a : float;
  bob_delta_b : float;
  decision_confirmed_at : float option;
  settled_at : float option;
  trace : (float * string) list;
}

let outcome_to_string = function
  | Success -> "success"
  | Abort_t1 -> "abort@t1"
  | Abort_t2 -> "abort@t2"
  | Failed_timeout -> "failed (nobody decided)"
  | Anomalous s -> "anomalous: " ^ s

let alice = "alice"
let bob = "bob"

(* Settlements are signed by a deterministic bridge whose authority is
   the confirmed decision on the witness chain; in the simulation any
   online party may invoke it. *)
let bridge = "wn-bridge"
let escrow_a = "ac3wn:a"
let escrow_b = "ac3wn:b"
let decision_cell = "wn:decision"

let success_rate ?quad_nodes p ~p_star = Ac3.success_rate ?quad_nodes p ~p_star

let happy_path_hours ?tau_witness (p : Params.t) =
  let tau_w = Option.value ~default:p.Params.tau_a tau_witness in
  let tl = Timeline.ideal p in
  tl.Timeline.t3 +. tau_w +. max p.Params.tau_a p.Params.tau_b

let run ?(policy = Agent.honest) ?price ?tau_witness ?alice_offline_from
    ?bob_offline_from (p : Params.t) ~p_star =
  let price = Option.value ~default:(fun _t -> p.Params.p0) price in
  let tau_w = Option.value ~default:p.Params.tau_a tau_witness in
  let tl = Timeline.ideal p in
  let trace = ref [] in
  let log t msg = trace := (t, msg) :: !trace in
  let online offline_from at =
    match offline_from with None -> true | Some t -> at < t
  in
  let chain_a =
    Chain.create ~name:"chain_a" ~token:"TokenA" ~tau:p.Params.tau_a
      ~mempool_delay:0. ()
  in
  let chain_b =
    Chain.create ~name:"chain_b" ~token:"TokenB" ~tau:p.Params.tau_b
      ~mempool_delay:p.Params.eps_b ()
  in
  let chain_w =
    Chain.create ~name:"witness-net" ~token:"WIT" ~tau:tau_w ~mempool_delay:0. ()
  in
  Chain.mint chain_a ~account:alice ~amount:p_star;
  Chain.mint chain_b ~account:bob ~amount:1.;
  Chain.mint chain_w ~account:alice ~amount:1.;
  Chain.mint chain_w ~account:bob ~amount:1.;
  (* Expiries leave room for the witness-chain confirmation. *)
  let expiry_a = tl.Timeline.t_lock_a +. tau_w in
  let expiry_b = tl.Timeline.t_lock_b +. tau_w in
  let horizon = expiry_a +. expiry_b +. (2. *. tau_w) +. 1. in
  let finish outcome ~decision_confirmed_at ~settled_at =
    ignore (Chain.advance chain_a ~until:horizon);
    ignore (Chain.advance chain_b ~until:horizon);
    ignore (Chain.advance chain_w ~until:horizon);
    {
      outcome;
      alice_delta_a = Chain.balance chain_a ~account:alice -. p_star;
      alice_delta_b = Chain.balance chain_b ~account:alice;
      bob_delta_a = Chain.balance chain_a ~account:bob;
      bob_delta_b = Chain.balance chain_b ~account:bob -. 1.;
      decision_confirmed_at;
      settled_at;
      trace = List.rev !trace;
    }
  in
  let settle ~locked_a ~locked_b ~decision_confirmed_at ~settled_at =
    ignore (Chain.advance chain_a ~until:horizon);
    ignore (Chain.advance chain_b ~until:horizon);
    let state_of chain cid =
      Option.map
        (fun (e : Escrow.t) -> e.Escrow.state)
        (Chain.escrow chain ~contract_id:cid)
    in
    let outcome =
      match (locked_a, locked_b) with
      | false, _ -> Abort_t1
      | true, false -> Abort_t2
      | true, true -> (
        match (state_of chain_a escrow_a, state_of chain_b escrow_b) with
        | Some (Escrow.Committed _), Some (Escrow.Committed _) -> Success
        | Some (Escrow.Aborted _), Some (Escrow.Aborted _) -> Failed_timeout
        | a, b ->
          Anomalous
            (Printf.sprintf "mixed escrow states (a=%s, b=%s)"
               (match a with
               | Some s -> Escrow.state_to_string s
               | None -> "missing")
               (match b with
               | Some s -> Escrow.state_to_string s
               | None -> "missing")))
    in
    finish outcome ~decision_confirmed_at ~settled_at
  in
  (* --- t1 / t2: same engagement structure as AC3TW. ------------------- *)
  let alice_engages =
    online alice_offline_from tl.Timeline.t1
    && policy.Agent.alice_t1 ~p_star = Agent.Cont
  in
  if not alice_engages then begin
    log tl.Timeline.t1 "alice does not engage";
    finish Abort_t1 ~decision_confirmed_at:None ~settled_at:None
  end
  else begin
    log tl.Timeline.t1 "alice escrow-locks Token_a (bridge-arbitrated)";
    ignore
      (Chain.submit chain_a ~at:tl.Timeline.t1
         (Tx.Escrow_lock
            {
              contract_id = escrow_a;
              owner = alice;
              counterparty = bob;
              amount = p_star;
              arbiter = bridge;
              expiry = expiry_a;
            }));
    ignore (Chain.advance chain_a ~until:tl.Timeline.t2);
    let p_t2 = price tl.Timeline.t2 in
    let bob_engages =
      online bob_offline_from tl.Timeline.t2
      && policy.Agent.bob_t2 ~p_t2 = Agent.Cont
    in
    if not bob_engages then begin
      log tl.Timeline.t2 (Printf.sprintf "bob does not engage (P_t2 = %g)" p_t2);
      settle ~locked_a:true ~locked_b:false ~decision_confirmed_at:None
        ~settled_at:None
    end
    else begin
      log tl.Timeline.t2
        (Printf.sprintf "bob escrow-locks Token_b (P_t2 = %g)" p_t2);
      ignore
        (Chain.submit chain_b ~at:tl.Timeline.t2
           (Tx.Escrow_lock
              {
                contract_id = escrow_b;
                owner = bob;
                counterparty = alice;
                amount = 1.;
                arbiter = bridge;
                expiry = expiry_b;
              }));
      ignore (Chain.advance chain_b ~until:tl.Timeline.t3);
      (* --- t3: ANY online party posts the commit decision on the
         witness chain; it confirms tau_w later. ----------------------- *)
      let t3 = tl.Timeline.t3 in
      let poster =
        if online alice_offline_from t3 then Some alice
        else if online bob_offline_from t3 then Some bob
        else None
      in
      match poster with
      | None ->
        log t3 "no party alive to post the decision; escrows will time out";
        settle ~locked_a:true ~locked_b:true ~decision_confirmed_at:None
          ~settled_at:None
      | Some who ->
        log t3 (Printf.sprintf "%s posts the commit decision on the witness network" who);
        ignore
          (Chain.submit chain_w ~at:t3
             (Tx.Transfer { from_ = who; to_ = decision_cell; amount = 0. }));
        let decided_at = t3 +. tau_w in
        ignore (Chain.advance chain_w ~until:decided_at);
        (* --- decision confirmed: any online party triggers the bridge
           settlements on both asset chains. --------------------------- *)
        let trigger =
          if online alice_offline_from decided_at then Some alice
          else if online bob_offline_from decided_at then Some bob
          else None
        in
        (match trigger with
        | None ->
          log decided_at
            "decision confirmed but nobody alive to trigger settlement"
        | Some who ->
          log decided_at
            (Printf.sprintf
               "%s triggers the bridge settlements with the confirmed decision"
               who);
          ignore
            (Chain.submit chain_a ~at:decided_at
               (Tx.Escrow_decide
                  { contract_id = escrow_a; by = bridge; commit = true }));
          ignore
            (Chain.submit chain_b ~at:decided_at
               (Tx.Escrow_decide
                  { contract_id = escrow_b; by = bridge; commit = true })));
        let settled_at =
          match trigger with
          | Some _ ->
            Some (decided_at +. max p.Params.tau_a p.Params.tau_b)
          | None -> None
        in
        settle ~locked_a:true ~locked_b:true
          ~decision_confirmed_at:(Some decided_at) ~settled_at
    end
  end
