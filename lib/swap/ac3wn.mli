(** AC3WN — atomic cross-chain commitment with a {e witness network}
    (Zakhary et al. [31]): instead of a trusted witness process
    (AC3TW, {!Ac3}), the commit/abort decision is recorded as a
    transaction on a separate witness {e blockchain}.  Once the
    decision transaction confirms there, {e any} party can trigger the
    settlement of both escrows — no single machine is trusted or
    load-bearing.

    Trade-offs measured here against {!Ac3}:
    - crash tolerance improves: the swap completes as long as {e some}
      party is alive to post the decision and trigger settlement
      (AC3TW dies with its witness);
    - latency worsens by one witness-chain confirmation [tau_w];
    - the strategic game is unchanged (Alice still has no reveal
      option), so the success rate equals AC3TW's. *)

type outcome =
  | Success
  | Abort_t1
  | Abort_t2
  | Failed_timeout  (** Nobody alive to decide; both escrows refund. *)
  | Anomalous of string

type result = {
  outcome : outcome;
  alice_delta_a : float;
  alice_delta_b : float;
  bob_delta_a : float;
  bob_delta_b : float;
  decision_confirmed_at : float option;
      (** When the commit transaction confirmed on the witness chain. *)
  settled_at : float option;  (** When the last escrow settlement confirmed. *)
  trace : (float * string) list;
}

val run :
  ?policy:Agent.t ->
  ?price:(float -> float) ->
  ?tau_witness:float ->
  ?alice_offline_from:float ->
  ?bob_offline_from:float ->
  Params.t -> p_star:float -> result
(** Executes the protocol on three simulated chains (two asset chains
    plus the witness chain, default [tau_witness = tau_a]).  Escrow
    expiries are stretched by [tau_witness] relative to {!Ac3} to leave
    room for the decision to confirm. *)

val success_rate : ?quad_nodes:int -> Params.t -> p_star:float -> float
(** Identical to {!Ac3.success_rate} — the strategic structure does not
    change, only the settlement plumbing. *)

val happy_path_hours : ?tau_witness:float -> Params.t -> float
(** Time until the last settlement confirms — AC3TW's plus [tau_w]. *)

val outcome_to_string : outcome -> string
