type decision = Cont | Stop

type t = {
  name : string;
  alice_t1 : p_star:float -> decision;
  bob_t2 : p_t2:float -> decision;
  alice_t3 : p_t3:float -> decision;
  bob_t4 : decision;
}

let decision_to_string = function Cont -> "cont" | Stop -> "stop"

type retry = {
  max_attempts : int;
  backoff : float;
  backoff_factor : float;
}

let no_retry = { max_attempts = 1; backoff = 0.; backoff_factor = 2. }
let default_retry = { max_attempts = 4; backoff = 0.5; backoff_factor = 2. }

let make_retry ?(backoff = 0.5) ?(backoff_factor = 2.) max_attempts =
  if max_attempts < 1 then invalid_arg "Agent.make_retry: max_attempts < 1";
  if backoff < 0. then invalid_arg "Agent.make_retry: negative backoff";
  if backoff_factor < 1. then
    invalid_arg "Agent.make_retry: backoff_factor < 1";
  { max_attempts; backoff; backoff_factor }

let retry_to_string r =
  if r.max_attempts <= 1 then "no-retry"
  else
    Printf.sprintf "retry(max=%d, backoff=%g, factor=%g)" r.max_attempts
      r.backoff r.backoff_factor

let rational (p : Params.t) ~p_star =
  let k3 = Cutoff.p_t3_low p ~p_star in
  let band = Cutoff.p_t2_band p ~p_star in
  let feasible = Cutoff.p_star_band p in
  {
    name = "rational";
    alice_t1 = (fun ~p_star -> if Intervals.contains feasible p_star then Cont else Stop);
    bob_t2 = (fun ~p_t2 -> if Intervals.contains band p_t2 then Cont else Stop);
    (* Eq. 19: cont strictly above the cutoff, stop at or below. *)
    alice_t3 = (fun ~p_t3 -> if p_t3 > k3 then Cont else Stop);
    bob_t4 = Cont;
  }

let rational_collateral (c : Collateral.t) ~p_star =
  let kc = Collateral.p_t3_low c ~p_star in
  let set = Collateral.cont_set_t2 c ~p_star in
  let feasible = Collateral.initiation_set c in
  {
    name = "rational+collateral";
    alice_t1 =
      (fun ~p_star -> if Intervals.contains feasible p_star then Cont else Stop);
    bob_t2 = (fun ~p_t2 -> if Intervals.contains set p_t2 then Cont else Stop);
    alice_t3 = (fun ~p_t3 -> if p_t3 > kc then Cont else Stop);
    bob_t4 = Cont;
  }

let honest =
  {
    name = "honest";
    alice_t1 = (fun ~p_star:_ -> Cont);
    bob_t2 = (fun ~p_t2:_ -> Cont);
    alice_t3 = (fun ~p_t3:_ -> Cont);
    bob_t4 = Cont;
  }

let myopic (p : Params.t) ~p_star:agreed =
  {
    name = "myopic";
    alice_t1 = (fun ~p_star -> if p.Params.p0 >= p_star then Cont else Stop);
    bob_t2 = (fun ~p_t2 -> if p_t2 <= agreed then Cont else Stop);
    alice_t3 = (fun ~p_t3 -> if p_t3 >= agreed then Cont else Stop);
    bob_t4 = Cont;
  }
