(** Agent decision policies: how Alice decides at [t1]/[t3] and Bob at
    [t2]/[t4] given the price observed at that moment.

    The paper's agents are [rational] (Section III-E); [honest] agents
    follow the protocol unconditionally; [myopic] agents compare
    immediate exchange values and ignore optionality — a natural
    strawman showing why the full backward induction matters.  [t4] has
    no real decision: claiming strictly dominates (Section III-E1). *)

type decision = Cont | Stop

type t = {
  name : string;
  alice_t1 : p_star:float -> decision;
  bob_t2 : p_t2:float -> decision;
  alice_t3 : p_t3:float -> decision;
  bob_t4 : decision;  (** Always [Cont] for every sensible policy. *)
}

val rational : Params.t -> p_star:float -> t
(** The equilibrium policy: thresholds from {!Cutoff}. *)

val rational_collateral : Collateral.t -> p_star:float -> t
(** Equilibrium thresholds of the Section IV game. *)

val honest : t
(** Always continues — the protocol-designer's ideal participant. *)

val myopic : Params.t -> p_star:float -> t
(** Compares spot values only, with no discounting, success premium or
    look-ahead: Alice continues at [t3] iff the Token_b she would
    receive is worth at least the Token_a refund ([p_t3 >= p_star]);
    Bob continues at [t2] iff the Token_a he would receive is worth at
    least his Token_b ([p_t2 <= p_star]); Alice initiates iff the trade
    is not currently losing ([p0 >= p_star]). *)

val decision_to_string : decision -> string

(** {2 Retry policy}

    How an agent reacts when an action it submitted has not confirmed
    by the expected time (because the fault layer dropped or delayed
    it).  Resubmission is the only remedy — the decision itself is
    never revisited — and it is deadline-aware: the protocol runner
    only resubmits while the next attempt can still confirm within the
    relevant timelock. *)

type retry = {
  max_attempts : int;  (** Total submissions per action (>= 1). *)
  backoff : float;  (** Wait after the first unconfirmed attempt. *)
  backoff_factor : float;  (** Multiplier on successive waits. *)
}

val no_retry : retry
(** Single attempt — the paper's fire-and-forget agent. *)

val default_retry : retry
(** Up to 4 attempts with 0.5 h initial backoff, doubling. *)

val make_retry : ?backoff:float -> ?backoff_factor:float -> int -> retry
(** [make_retry n] allows [n] total attempts.
    @raise Invalid_argument if [n < 1], [backoff < 0] or
    [backoff_factor < 1]. *)

val retry_to_string : retry -> string
