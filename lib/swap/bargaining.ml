type split = {
  p_star : float;
  alice_gain : float;
  bob_gain : float;
  nash_product : float;
}

let gains ?quad_nodes (p : Params.t) ~p_star =
  let k3 = Cutoff.p_t3_low p ~p_star in
  let band = Cutoff.p_t2_band p ~p_star in
  ( Utility.a_t1_cont ?quad_nodes p ~p_star ~k3 ~band
    -. Utility.a_t1_stop ~p_star,
    Utility.b_t1_cont ?quad_nodes p ~p_star ~k3 ~band -. Utility.b_t1_stop p )

let nash_rate ?(grid = 60) ?quad_nodes (p : Params.t) =
  match Cutoff.p_star_band_endpoints p with
  | None -> None
  | Some (lo, hi) ->
    let product p_star =
      let a, b = gains ?quad_nodes p ~p_star in
      if a <= 0. || b <= 0. then neg_infinity else a *. b
    in
    let xs = Numerics.Grid.linspace ~lo:(lo +. 1e-6) ~hi:(hi -. 1e-6) ~n:grid in
    let best = ref None in
    Array.iter
      (fun p_star ->
        let v = product p_star in
        match !best with
        | Some (_, bv) when bv >= v -> ()
        | _ -> if v > neg_infinity then best := Some (p_star, v))
      xs;
    Option.map
      (fun (p_star, nash_product) ->
        let alice_gain, bob_gain = gains ?quad_nodes p ~p_star in
        { p_star; alice_gain; bob_gain; nash_product })
      !best

let engagement_game ?quad_nodes (c : Collateral.t) ~p_star =
  let p = c.Collateral.params in
  let qa = c.Collateral.q_alice in
  let both_a = Collateral.a_t1_cont ?quad_nodes c ~p_star in
  let both_b = Collateral.b_t1_cont ?quad_nodes c ~p_star in
  let out_a = Collateral.a_t1_stop c ~p_star in
  let out_b = Collateral.b_t1_stop c in
  (* Engaging alone: Alice's lock spends one refund round (her HTLC
     deploys and times out); Bob's engagement costs nothing until
     Alice's contract exists. *)
  let alone_a =
    (p_star *. Utility.discount ~r:p.Params.alice.r ~horizon:(2. *. p.Params.tau_a))
    +. qa
  in
  Gametree.Normal_form.create
    ~row_actions:[| "engage"; "stay_out" |]
    ~col_actions:[| "engage"; "stay_out" |]
    ~row_payoffs:[| [| both_a; alone_a |]; [| out_a; out_a |] |]
    ~col_payoffs:[| [| both_b; out_b |]; [| out_b; out_b |] |]

type engagement = {
  equilibria : (string * string) list;
  both_engage_is_equilibrium : bool;
  coordination_failure_possible : bool;
}

let analyse_engagement ?quad_nodes (c : Collateral.t) ~p_star =
  let g = engagement_game ?quad_nodes c ~p_star in
  let pure = Gametree.Normal_form.pure_nash g in
  let named =
    List.map
      (fun (i, j) ->
        (g.Gametree.Normal_form.row_actions.(i),
         g.Gametree.Normal_form.col_actions.(j)))
      pure
  in
  {
    equilibria = named;
    both_engage_is_equilibrium = List.mem ("engage", "engage") named;
    coordination_failure_possible =
      List.mem ("stay_out", "stay_out") named
      && List.mem ("engage", "engage") named;
  }
