(** How the exchange rate gets agreed (Section III-E4 notes only that
    [P*] "must lie within a range"; this module adds the standard
    bargaining answers) and the [t1] stage of the collateral game as a
    proper simultaneous-move game (Section IV-4).

    The disagreement point is the outside option: Alice keeps her
    [P*]-worth of Token_a, Bob his Token_b. *)

type split = {
  p_star : float;
  alice_gain : float;  (** Alice's [t1] surplus over not trading. *)
  bob_gain : float;
  nash_product : float;
}

val nash_rate : ?grid:int -> ?quad_nodes:int -> Params.t -> split option
(** The Nash bargaining solution: the rate maximising
    [alice_gain * bob_gain] over the rates where both gains are
    positive; [None] when no rate gives both agents a surplus. *)

val gains : ?quad_nodes:int -> Params.t -> p_star:float -> float * float
(** [(alice_gain, bob_gain)] at a candidate rate. *)

val engagement_game :
  ?quad_nodes:int -> Collateral.t -> p_star:float -> Gametree.Normal_form.t
(** The simultaneous [t1] stage of the collateral game as a 2x2
    bimatrix game with actions [engage]/[stay_out] for each agent.
    Staying out keeps token plus deposit; engaging alone briefly locks
    Alice's Token_a (one refund round) while costing Bob nothing. *)

type engagement = {
  equilibria : (string * string) list;  (** Pure Nash action pairs. *)
  both_engage_is_equilibrium : bool;
  coordination_failure_possible : bool;
      (** [stay_out/stay_out] is also an equilibrium although
          [engage/engage] Pareto-dominates it. *)
}

val analyse_engagement :
  ?quad_nodes:int -> Collateral.t -> p_star:float -> engagement
