open Numerics
open Stochastic

type belief = { weights : float array; alphas : float array }

let belief pairs =
  if pairs = [] then invalid_arg "Bayesian.belief: empty belief";
  List.iter
    (fun (w, a) ->
      if w <= 0. then invalid_arg "Bayesian.belief: nonpositive weight";
      if a <= -1. then invalid_arg "Bayesian.belief: alpha <= -1")
    pairs;
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0. pairs in
  {
    weights = Array.of_list (List.map (fun (w, _) -> w /. total) pairs);
    alphas = Array.of_list (List.map snd pairs);
  }

let point_belief alpha = belief [ (1., alpha) ]

let mean_alpha b =
  let acc = ref 0. in
  Array.iteri (fun i w -> acc := !acc +. (w *. b.alphas.(i))) b.weights;
  !acc

let mix b f =
  let acc = ref 0. in
  Array.iteri (fun i w -> acc := !acc +. (w *. f b.alphas.(i))) b.weights;
  !acc

(* Alice's Eq. 18 cutoff as a function of her type. *)
let cutoff_of_type (p : Params.t) ~p_star alpha =
  Cutoff.p_t3_low (Params.with_alpha_alice p alpha) ~p_star

(* --- Bob uncertain about Alice ------------------------------------------ *)

(* Eq. 21 with the indicator of Alice's continuation replaced by its
   belief-expectation: each type has its own cutoff, so the survival
   and lower-partial-expectation terms mix. *)
let b_t2_cont_mixed (p : Params.t) ~belief_on_alice ~p_star ~p_t2 =
  let gbm = Params.gbm p in
  let term alpha =
    let k3 = cutoff_of_type p ~p_star alpha in
    (Gbm.sf gbm ~x:k3 ~p0:p_t2 ~tau:p.Params.tau_b
     *. Utility.b_t3_cont p ~p_star)
    +. (exp (2. *. (p.Params.mu -. p.Params.bob.r) *. p.Params.tau_b)
       *. Gbm.partial_expectation_below gbm ~k:k3 ~p0:p_t2 ~tau:p.Params.tau_b)
  in
  mix belief_on_alice term
  *. Utility.discount ~r:p.Params.bob.r ~horizon:p.Params.tau_b

let p_t2_band_mixed ?(scan_points = 600) (p : Params.t) ~belief_on_alice
    ~p_star =
  let g x =
    b_t2_cont_mixed p ~belief_on_alice ~p_star ~p_t2:x
    -. Utility.b_t2_stop ~p_t2:x
  in
  let domain_lo, domain_hi = Cutoff.scan_domain p ~p_star in
  let roots = Root.find_all_roots_log ~n:scan_points g ~a:domain_lo ~b:domain_hi in
  Intervals.of_sign_changes ~f:g ~roots ~domain_lo:0. ~domain_hi:infinity

let success_rate_given_alice ?quad_nodes (p : Params.t) ~belief_on_alice
    ~true_alpha_alice ~p_star =
  let gbm = Params.gbm p in
  let band = p_t2_band_mixed p ~belief_on_alice ~p_star in
  if Intervals.is_empty band then 0.
  else begin
    let k3_true = cutoff_of_type p ~p_star true_alpha_alice in
    Utility.integrate_over ?quad_nodes band ~f:(fun x ->
        Gbm.pdf gbm ~x ~p0:p.Params.p0 ~tau:p.Params.tau_a
        *. Gbm.sf gbm ~x:k3_true ~p0:x ~tau:p.Params.tau_b)
  end

let ex_ante_success_rate ?quad_nodes (p : Params.t) ~belief_on_alice ~p_star =
  mix belief_on_alice (fun alpha ->
      success_rate_given_alice ?quad_nodes p ~belief_on_alice
        ~true_alpha_alice:alpha ~p_star)

(* --- Alice uncertain about Bob ------------------------------------------- *)

let a_t1_cont_mixed ?quad_nodes (p : Params.t) ~belief_on_bob ~p_star =
  let k3 = Cutoff.p_t3_low p ~p_star in
  mix belief_on_bob (fun alpha_b ->
      let p_b = Params.with_alpha_bob p alpha_b in
      let band = Cutoff.p_t2_band p_b ~p_star in
      Utility.a_t1_cont ?quad_nodes p ~p_star ~k3 ~band)

let p_star_band_mixed ?(scan_points = 120) ?quad_nodes (p : Params.t)
    ~belief_on_bob =
  let f p_star =
    a_t1_cont_mixed ?quad_nodes p ~belief_on_bob ~p_star
    -. Utility.a_t1_stop ~p_star
  in
  let domain_lo = p.Params.p0 *. 0.05 and domain_hi = p.Params.p0 *. 20. in
  let roots = Root.find_all_roots_log ~n:scan_points f ~a:domain_lo ~b:domain_hi in
  match
    Intervals.intervals
      (Intervals.of_sign_changes ~f ~roots ~domain_lo:0. ~domain_hi:infinity)
  with
  | [] -> None
  | ivs ->
    let lo = (List.hd ivs).Intervals.lo in
    let hi = (List.nth ivs (List.length ivs - 1)).Intervals.hi in
    Some (lo, hi)
