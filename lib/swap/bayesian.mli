(** Incomplete information about the success premium — the paper's
    introduction announces studying "the game with uncertainty in
    counterparties' success premium" (Section I), relaxing the
    common-knowledge Assumption 7.

    Types are discrete: a belief assigns probabilities to possible
    [alpha] values of the counterparty.  Behaviour:

    - Bob at [t2] does not know Alice's [alpha_A], hence not her exact
      Eq. 18 cutoff; his continuation value mixes over her type-wise
      cutoffs, and his band solves the mixed indifference.
    - Alice at [t1] does not know Bob's [alpha_B], hence which band he
      will use; her initiation value mixes over his type-wise bands.
    - Realised success rates depend on the {e true} types, so beliefs
      create adverse selection: a low-[alpha] Alice trades on terms
      calibrated to the average type and defaults more often than Bob
      priced in. *)

type belief = private { weights : float array; alphas : float array }

val belief : (float * float) list -> belief
(** [(weight, alpha)] pairs; weights are normalised.
    @raise Invalid_argument on empty lists, nonpositive weights or
    [alpha <= -1]. *)

val point_belief : float -> belief
(** Degenerate belief — recovers the complete-information game
    (tested). *)

val mean_alpha : belief -> float

(* --- Bob uncertain about Alice ------------------------------------------ *)

val b_t2_cont_mixed :
  Params.t -> belief_on_alice:belief -> p_star:float -> p_t2:float -> float
(** Eq. 21 with Alice's cutoff replaced by the belief mixture. *)

val p_t2_band_mixed :
  ?scan_points:int -> Params.t -> belief_on_alice:belief -> p_star:float ->
  Intervals.t

val success_rate_given_alice :
  ?quad_nodes:int -> Params.t -> belief_on_alice:belief ->
  true_alpha_alice:float -> p_star:float -> float
(** Realised SR when Bob plays his belief-based band but Alice's reveal
    follows her true type. *)

val ex_ante_success_rate :
  ?quad_nodes:int -> Params.t -> belief_on_alice:belief -> p_star:float ->
  float
(** Belief-weighted average of the type-wise realised rates. *)

(* --- Alice uncertain about Bob ------------------------------------------- *)

val a_t1_cont_mixed :
  ?quad_nodes:int -> Params.t -> belief_on_bob:belief -> p_star:float -> float
(** Alice's initiation value mixing over Bob's type-wise bands (her own
    [alpha] is the one in [Params]). *)

val p_star_band_mixed :
  ?scan_points:int -> ?quad_nodes:int -> Params.t -> belief_on_bob:belief ->
  (float * float) option
(** Feasible rates under Alice's uncertainty about Bob. *)
