open Numerics
open Stochastic

type t = { params : Params.t; q_alice : float; q_bob : float }

let create params ~q_alice ~q_bob =
  if q_alice < 0. || q_bob < 0. then
    invalid_arg "Collateral.create: negative deposit";
  { params; q_alice; q_bob }

let symmetric params ~q = create params ~q_alice:q ~q_bob:q

(* Eq. 34 with eps_b for the paper's tau_e typo; q_alice = 0 recovers
   Eq. 18 exactly. *)
let p_t3_low { params = p; q_alice; _ } ~p_star =
  let net =
    (p_star *. exp (-.p.alice.r *. (p.eps_b +. (2. *. p.tau_a))))
    -. (q_alice *. exp (-.p.alice.r *. (p.eps_b +. p.tau_a)))
  in
  exp ((p.alice.r -. p.mu) *. p.tau_b) /. (1. +. p.alice.alpha) *. max net 0.

(* Eq. 35, Alice's line: on continuation she receives Token_b plus her
   deposit back (at t4 + tau_a); if she aborts at t3 she forfeits the
   deposit and only gets her refunded Token_a. *)
let a_t2_cont ({ params = p; q_alice; _ } as t) ~p_star ~p_t2 =
  let gbm = Params.gbm p in
  let kc = p_t3_low t ~p_star in
  let deposit_back =
    q_alice *. Utility.discount ~r:p.alice.r ~horizon:(p.eps_b +. p.tau_a)
  in
  let cont_part =
    ((1. +. p.alice.alpha)
     *. exp ((p.mu -. p.alice.r) *. p.tau_b)
     *. Gbm.partial_expectation_above gbm ~k:kc ~p0:p_t2 ~tau:p.tau_b)
    +. (Gbm.sf gbm ~x:kc ~p0:p_t2 ~tau:p.tau_b *. deposit_back)
  in
  let stop_part =
    Gbm.cdf gbm ~x:kc ~p0:p_t2 ~tau:p.tau_b *. Utility.a_t3_stop p ~p_star
  in
  (cont_part +. stop_part) *. Utility.discount ~r:p.alice.r ~horizon:p.tau_b

(* Eq. 35, Bob's line: his own deposit comes back at t3 + tau_a
   unconditionally once he has deployed; if Alice then aborts he also
   collects her deposit. *)
let b_t2_cont ({ params = p; q_alice; q_bob; _ } as t) ~p_star ~p_t2 =
  let gbm = Params.gbm p in
  let kc = p_t3_low t ~p_star in
  let own_deposit_back =
    q_bob *. Utility.discount ~r:p.bob.r ~horizon:p.tau_a
  in
  let cont_part =
    Gbm.sf gbm ~x:kc ~p0:p_t2 ~tau:p.tau_b *. Utility.b_t3_cont p ~p_star
  in
  let alice_forfeits =
    q_alice *. Utility.discount ~r:p.bob.r ~horizon:(p.eps_b +. p.tau_a)
  in
  let stop_part =
    (exp (2. *. (p.mu -. p.bob.r) *. p.tau_b)
    *. Gbm.partial_expectation_below gbm ~k:kc ~p0:p_t2 ~tau:p.tau_b)
    +. (Gbm.cdf gbm ~x:kc ~p0:p_t2 ~tau:p.tau_b *. alice_forfeits)
  in
  (own_deposit_back +. cont_part +. stop_part)
  *. Utility.discount ~r:p.bob.r ~horizon:p.tau_b

let b_t2_stop ~p_t2 = Utility.b_t2_stop ~p_t2

(* Alice's t2 value when Bob withdraws: her Token_a refund (Eq. 22)
   plus both deposits, released to her at t3 and credited at t3 + tau_a
   -- horizon tau_b + tau_a from t2 (the 2Q term of Eq. 36). *)
let a_t2_on_bob_stop { params = p; q_alice; q_bob; _ } ~p_star =
  Utility.a_t2_stop p ~p_star
  +. ((q_alice +. q_bob)
     *. Utility.discount ~r:p.alice.r ~horizon:(p.tau_b +. p.tau_a))

let cont_set_t2 ?(scan_points = 800) t ~p_star =
  let p = t.params in
  let g x = b_t2_cont t ~p_star ~p_t2:x -. b_t2_stop ~p_t2:x in
  let domain_lo, domain_hi = Cutoff.scan_domain p ~p_star in
  let roots = Root.find_all_roots_log ~n:scan_points g ~a:domain_lo ~b:domain_hi in
  Intervals.of_sign_changes ~f:g ~roots ~domain_lo:0. ~domain_hi:infinity

let a_t1_cont ?quad_nodes t ~p_star =
  let p = t.params in
  let gbm = Params.gbm p in
  let set = cont_set_t2 t ~p_star in
  let pdf x = Gbm.pdf gbm ~x ~p0:p.p0 ~tau:p.tau_a in
  let cont_part =
    Utility.integrate_over ?quad_nodes set ~f:(fun x ->
        pdf x *. a_t2_cont t ~p_star ~p_t2:x)
  in
  let stop_part =
    (1. -. Utility.transition_mass p ~tau:p.tau_a ~p0:p.p0 set)
    *. a_t2_on_bob_stop t ~p_star
  in
  (cont_part +. stop_part) *. Utility.discount ~r:p.alice.r ~horizon:p.tau_a

let b_t1_cont ?quad_nodes t ~p_star =
  let p = t.params in
  let gbm = Params.gbm p in
  let set = cont_set_t2 t ~p_star in
  let pdf x = Gbm.pdf gbm ~x ~p0:p.p0 ~tau:p.tau_a in
  let cont_part =
    Utility.integrate_over ?quad_nodes set ~f:(fun x ->
        pdf x *. b_t2_cont t ~p_star ~p_t2:x)
  in
  let outside_price_mass =
    Gbm.expectation gbm ~p0:p.p0 ~tau:p.tau_a
    -. Utility.price_mass_inside p ~tau:p.tau_a ~p0:p.p0 set
  in
  (cont_part +. outside_price_mass)
  *. Utility.discount ~r:p.bob.r ~horizon:p.tau_a

let a_t1_stop t ~p_star = p_star +. t.q_alice
let b_t1_stop t = t.params.Params.p0 +. t.q_bob

type rule = Intersection | Union | Alice_only | Bob_only

let agent_set ?quad_nodes ~scan_points t ~net =
  let p = t.params in
  let domain_lo = p.Params.p0 *. 0.05 and domain_hi = p.Params.p0 *. 20. in
  ignore quad_nodes;
  let roots = Root.find_all_roots_log ~n:scan_points net ~a:domain_lo ~b:domain_hi in
  Intervals.of_sign_changes ~f:net ~roots ~domain_lo:0. ~domain_hi:infinity

let initiation_set ?(rule = Intersection) ?(scan_points = 120) ?quad_nodes t =
  let alice_net p_star = a_t1_cont ?quad_nodes t ~p_star -. a_t1_stop t ~p_star in
  let bob_net p_star = b_t1_cont ?quad_nodes t ~p_star -. b_t1_stop t in
  match rule with
  | Alice_only -> agent_set ?quad_nodes ~scan_points t ~net:alice_net
  | Bob_only -> agent_set ?quad_nodes ~scan_points t ~net:bob_net
  | Intersection ->
    Intervals.intersect
      (agent_set ?quad_nodes ~scan_points t ~net:alice_net)
      (agent_set ?quad_nodes ~scan_points t ~net:bob_net)
  | Union ->
    Intervals.union
      (agent_set ?quad_nodes ~scan_points t ~net:alice_net)
      (agent_set ?quad_nodes ~scan_points t ~net:bob_net)

let success_rate ?quad_nodes t ~p_star =
  let p = t.params in
  let gbm = Params.gbm p in
  let kc = p_t3_low t ~p_star in
  let set = cont_set_t2 t ~p_star in
  if Intervals.is_empty set then 0.
  else
    Utility.integrate_over ?quad_nodes set ~f:(fun x ->
        Gbm.pdf gbm ~x ~p0:p.p0 ~tau:p.tau_a
        *. Gbm.sf gbm ~x:kc ~p0:x ~tau:p.tau_b)

let success_curve ?quad_nodes t ~p_stars =
  Array.map
    (fun p_star ->
      { Success.p_star; sr = success_rate ?quad_nodes t ~p_star })
    p_stars
