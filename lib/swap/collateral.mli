(** HTLC with collateral (Section IV) — generalised to asymmetric
    deposits.

    Alice deposits [q_alice] and Bob [q_bob] (Token_a) into the Oracle
    contract before the swap.  Rules (Section IV, assumptions 1–3):
    - swap succeeds: each agent's own deposit is returned
      (Bob's at [t3 + tau_a] once his HTLC is confirmed, Alice's at
      [t4 + tau_a] once she has revealed the secret);
    - an agent stops mid-swap: the other agent receives {e both}
      deposits.

    The paper's symmetric model is [q_alice = q_bob = Q]; the Han et
    al.-style premium mechanism is the one-sided case
    [q_alice = w, q_bob = 0] (see {!Premium}).  With both zero every
    formula reduces to the baseline of Section III (tested). *)

type t = private { params : Params.t; q_alice : float; q_bob : float }

val create : Params.t -> q_alice:float -> q_bob:float -> t
(** @raise Invalid_argument on negative deposits. *)

val symmetric : Params.t -> q:float -> t
(** The paper's Section IV setting. *)

val p_t3_low : t -> p_star:float -> float
(** Eq. 34 (with the [tau_e] typo read as [eps_b], so that [q = 0]
    recovers Eq. 18):
    [e^{(r_A - mu) tau_b} / (1 + alpha_A)
      * max (P* e^{-r_A (eps_b + 2 tau_a)} - q_A e^{-r_A (eps_b + tau_a)}, 0)]. *)

val a_t2_cont : t -> p_star:float -> p_t2:float -> float
(** Eq. 35 (Alice's line): continuation value including the returned /
    forfeited deposits. *)

val b_t2_cont : t -> p_star:float -> p_t2:float -> float
(** Eq. 35 (Bob's line). *)

val b_t2_stop : p_t2:float -> float
(** Eq. 23 — Bob keeps Token_b and forfeits his deposit. *)

val a_t2_on_bob_stop : t -> p_star:float -> float
(** Alice's [t2] value when Bob withdraws: refund plus both deposits,
    credited at [t3 + tau_a] (the [2Q] term of Eq. 36). *)

val cont_set_t2 : ?scan_points:int -> t -> p_star:float -> Intervals.t
(** The set [𝔓_t2] where Bob continues; has 1 or 3 indifference roots
    (Fig. 7), i.e. 1 or 2 intervals. *)

val a_t1_cont : ?quad_nodes:int -> t -> p_star:float -> float
(** Eq. 36. *)

val b_t1_cont : ?quad_nodes:int -> t -> p_star:float -> float
(** Eq. 37 (reading the denominator's [r_A] typo as [r_B]). *)

val a_t1_stop : t -> p_star:float -> float
(** Eq. 38: [P* + q_A]. *)

val b_t1_stop : t -> float
(** Eq. 39: [P_{t1} + q_B]. *)

type rule = Intersection | Union | Alice_only | Bob_only
(** How the two agents' [t1] preferences combine into the initiation
    set.  The paper prints the union (Section IV-4); initiation by two
    simultaneous movers requires both, so [Intersection] is the
    default.  All four are available for comparison. *)

val initiation_set :
  ?rule:rule -> ?scan_points:int -> ?quad_nodes:int -> t -> Intervals.t
(** Feasible exchange rates [𝔓_*]. *)

val success_rate : ?quad_nodes:int -> t -> p_star:float -> float
(** Eq. 40. *)

val success_curve :
  ?quad_nodes:int -> t -> p_stars:float array -> Success.point array
