open Numerics

(* Sweep experiments (fig6/fig8/fig9, eq29) evaluate the cutoffs at the
   same (params, p_star) pairs over and over; the t2 band in particular
   re-runs a 600-point root scan each time.  A small domain-safe cache
   memoizes both entry points.  Values are computed outside the lock, so
   concurrent misses may duplicate work but never serialise on the
   root-finder; cached values (floats, immutable interval sets) are safe
   to share across domains.

   Eviction is second-chance (clock): an insertion queue remembers
   arrival order, a hit sets the entry's referenced bit, and a full
   cache evicts the first unreferenced entry — recently-hit keys survive
   a sweep whose working set exceeds the capacity, instead of the whole
   cache being dropped at once.  Hit/miss/eviction counts live in the
   Obs.Metrics registry; [cache_stats] is a thin reader over it. *)

let cache_mutex = Mutex.create ()
let cache_capacity = 512
let m_hits = Obs.Metrics.counter "cutoff.cache.hits"
let m_misses = Obs.Metrics.counter "cutoff.cache.misses"
let m_evictions = Obs.Metrics.counter "cutoff.cache.evictions"

type 'v entry = { value : 'v; mutable referenced : bool }
type ('k, 'v) cache = { tbl : ('k, 'v entry) Hashtbl.t; order : 'k Queue.t }

let make_cache () = { tbl = Hashtbl.create 64; order = Queue.create () }
let t3_cache : (Params.t * float, float) cache = make_cache ()
let band_cache : (Params.t * float * int, Intervals.t) cache = make_cache ()

(* Called with [cache_mutex] held.  Walks the clock queue: referenced
   entries lose their bit and go around again, the first unreferenced
   entry is evicted.  Keys no longer in the table (stale) are skipped.
   The budget bounds the walk even when every entry is referenced. *)
let evict_one c =
  let budget = ref ((2 * Queue.length c.order) + 1) in
  let evicted = ref false in
  while (not !evicted) && !budget > 0 do
    decr budget;
    match Queue.take_opt c.order with
    | None -> budget := 0
    | Some key -> (
      match Hashtbl.find_opt c.tbl key with
      | None -> () (* stale: already removed by clear *)
      | Some e ->
        if e.referenced then begin
          e.referenced <- false;
          Queue.push key c.order
        end
        else begin
          Hashtbl.remove c.tbl key;
          Obs.Metrics.incr m_evictions;
          evicted := true
        end)
  done

let memo c key compute =
  Mutex.lock cache_mutex;
  match Hashtbl.find_opt c.tbl key with
  | Some e ->
    e.referenced <- true;
    Obs.Metrics.incr m_hits;
    Mutex.unlock cache_mutex;
    e.value
  | None ->
    Obs.Metrics.incr m_misses;
    Mutex.unlock cache_mutex;
    let v = compute () in
    Mutex.lock cache_mutex;
    (* A racing miss may have inserted the key meanwhile; keep the
       existing entry so concurrent readers share one value. *)
    if not (Hashtbl.mem c.tbl key) then begin
      if Hashtbl.length c.tbl >= cache_capacity then evict_one c;
      Hashtbl.replace c.tbl key { value = v; referenced = false };
      Queue.push key c.order
    end;
    Mutex.unlock cache_mutex;
    v

let cache_stats () =
  (Obs.Metrics.counter_value m_hits, Obs.Metrics.counter_value m_misses)

let cache_evictions () = Obs.Metrics.counter_value m_evictions

let cache_sizes () =
  Mutex.lock cache_mutex;
  let sizes = (Hashtbl.length t3_cache.tbl, Hashtbl.length band_cache.tbl) in
  Mutex.unlock cache_mutex;
  sizes

let clear_caches () =
  Mutex.lock cache_mutex;
  Hashtbl.reset t3_cache.tbl;
  Queue.clear t3_cache.order;
  Hashtbl.reset band_cache.tbl;
  Queue.clear band_cache.order;
  Obs.Metrics.reset_counter m_hits;
  Obs.Metrics.reset_counter m_misses;
  Obs.Metrics.reset_counter m_evictions;
  Mutex.unlock cache_mutex

let p_t3_low (p : Params.t) ~p_star =
  memo t3_cache (p, p_star) (fun () ->
      let exponent =
        ((p.alice.r -. p.mu) *. p.tau_b)
        -. (p.alice.r *. (p.eps_b +. (2. *. p.tau_a)))
      in
      exp exponent *. p_star /. (1. +. p.alice.alpha))

(* Scan domain for t2 roots: wide enough that the lognormal transition
   mass outside is negligible and the decision is unambiguous.  Scale
   with both the agreed rate and the current price. *)
let scan_domain (p : Params.t) ~p_star =
  let anchor = max p_star p.Params.p0 in
  (anchor *. 1e-4, anchor *. 1e4)

let p_t2_band ?(scan_points = 600) (p : Params.t) ~p_star =
  memo band_cache (p, p_star, scan_points) (fun () ->
      let k3 = p_t3_low p ~p_star in
      let g x =
        Utility.b_t2_cont p ~p_star ~k3 ~p_t2:x -. Utility.b_t2_stop ~p_t2:x
      in
      let domain_lo, domain_hi = scan_domain p ~p_star in
      let roots =
        Root.find_all_roots_log ~n:scan_points g ~a:domain_lo ~b:domain_hi
      in
      (* The region where g > 0; near 0 and at infinity Bob stops in the
         standard parameterisation, but both cases are decided by probing. *)
      Intervals.of_sign_changes ~f:g ~roots ~domain_lo:0. ~domain_hi:infinity)

let p_t2_band_endpoints ?scan_points p ~p_star =
  match Intervals.intervals (p_t2_band ?scan_points p ~p_star) with
  | [] -> None
  | ivs ->
    let lo = (List.hd ivs).Intervals.lo in
    let hi = (List.nth ivs (List.length ivs - 1)).Intervals.hi in
    Some (lo, hi)

let a_t1_net ?quad_nodes (p : Params.t) ~p_star =
  let k3 = p_t3_low p ~p_star in
  let band = p_t2_band p ~p_star in
  Utility.a_t1_cont ?quad_nodes p ~p_star ~k3 ~band
  -. Utility.a_t1_stop ~p_star

let p_star_band ?(scan_points = 160) ?quad_nodes (p : Params.t) =
  let f p_star = a_t1_net ?quad_nodes p ~p_star in
  let domain_lo = p.Params.p0 *. 0.05 and domain_hi = p.Params.p0 *. 20. in
  let roots = Root.find_all_roots_log ~n:scan_points f ~a:domain_lo ~b:domain_hi in
  Intervals.of_sign_changes ~f ~roots ~domain_lo:0. ~domain_hi:infinity

let p_star_band_endpoints ?scan_points ?quad_nodes p =
  match Intervals.intervals (p_star_band ?scan_points ?quad_nodes p) with
  | [] -> None
  | ivs ->
    let lo = (List.hd ivs).Intervals.lo in
    let hi = (List.nth ivs (List.length ivs - 1)).Intervals.hi in
    Some (lo, hi)
