(** Equilibrium cutoffs from backward induction (Section III-E).

    - [t4]: Bob always continues (claiming dominates; no cutoff).
    - [t3]: Alice continues iff [P_t3 > p_t3_low] (Eq. 18/19).
    - [t2]: Bob continues iff [P_t2] lies in {!p_t2_band} (Eq. 24).
    - [t1]: Alice initiates iff [P*] lies in {!p_star_band} (Eq. 30). *)

val p_t3_low : Params.t -> p_star:float -> float
(** Eq. 18:
    [e^{(r_A - mu) tau_b - r_A (eps_b + 2 tau_a)} P* / (1 + alpha_A)]. *)

val p_t2_band : ?scan_points:int -> Params.t -> p_star:float -> Intervals.t
(** The set of [P_t2] where [U^B_t2(cont) > U^B_t2(stop)] — typically a
    single interval [(P_t2_low, P_t2_high)], possibly empty when
    [alpha_B] is too small (Section III-E3). *)

val p_t2_band_endpoints :
  ?scan_points:int -> Params.t -> p_star:float -> (float * float) option
(** [(lo, hi)] of the band when it is a single interval; [None] when
    empty. *)

val p_star_band :
  ?scan_points:int -> ?quad_nodes:int -> Params.t -> Intervals.t
(** Feasible exchange rates: the set of rates where Alice's
    continuation utility at [t1] exceeds [P_star]; Eq. 29 evaluates to
    approximately (1.5, 2.5) under Table III defaults. *)

val p_star_band_endpoints :
  ?scan_points:int -> ?quad_nodes:int -> Params.t -> (float * float) option

val scan_domain : Params.t -> p_star:float -> float * float
(** The (log-scaled) price interval scanned for [t2] roots; exposed for
    diagnostics and reuse by the collateral variant. *)

val cache_stats : unit -> int * int
(** [(hits, misses)] of the memo cache behind {!p_t3_low} and
    {!p_t2_band} — a thin reader over the [Obs.Metrics] counters
    [cutoff.cache.hits] / [cutoff.cache.misses].  Sweep experiments
    evaluating repeated [(params, p_star)] pairs hit the cache instead
    of re-running the root scan; the cache is mutex-protected and safe
    under the domain pool.  Counts freeze while metrics are disabled. *)

val cache_evictions : unit -> int
(** Entries evicted by the second-chance policy (counter
    [cutoff.cache.evictions]).  Eviction is per-entry: a full cache
    drops its least-recently-referenced entry, never the whole table. *)

val cache_sizes : unit -> int * int
(** Current [(t3, band)] cache populations; each is bounded by the
    capacity (512). *)

val clear_caches : unit -> unit
(** Drop every memoized cutoff and reset {!cache_stats} /
    {!cache_evictions} (tests). *)
