type report = {
  equilibrium_value : float;
  best_deviation_value : float;
  best_deviation : string;
  is_best_response : bool;
}

let build_report ~equilibrium_value deviations ~tol =
  let best_deviation, best_deviation_value =
    List.fold_left
      (fun ((_, bv) as best) ((_, v) as cand) ->
        if v > bv then cand else best)
      ("none", neg_infinity) deviations
  in
  {
    equilibrium_value;
    best_deviation_value;
    best_deviation;
    is_best_response = best_deviation_value <= equilibrium_value +. tol;
  }

(* Alice's t1 value when her t3 rule uses an arbitrary cutoff [k],
   against Bob's equilibrium band.  Note: Bob's band is solved against
   her *equilibrium* cutoff — exactly the unilateral-deviation setup. *)
let check_alice_cutoff ?(shifts = [ -0.4; -0.15; -0.05; -0.02; 0.02; 0.05; 0.15; 0.4 ])
    ?(tol = 1e-6) (p : Params.t) ~p_star =
  let k3 = Cutoff.p_t3_low p ~p_star in
  let band = Cutoff.p_t2_band p ~p_star in
  let value k = Utility.a_t1_cont p ~p_star ~k3:k ~band in
  let equilibrium_value = value k3 in
  let deviations =
    List.map
      (fun s ->
        let k = k3 *. (1. +. s) in
        (Printf.sprintf "cutoff %+.0f%%" (100. *. s), value k))
      shifts
  in
  build_report ~equilibrium_value deviations ~tol

let default_deformations =
  [
    ("widen 10%", (fun lo -> lo *. 0.9), fun hi -> hi *. 1.1);
    ("narrow 10%", (fun lo -> lo *. 1.1), fun hi -> hi *. 0.9);
    ("shift up 10%", (fun lo -> lo *. 1.1), fun hi -> hi *. 1.1);
    ("shift down 10%", (fun lo -> lo *. 0.9), fun hi -> hi *. 0.9);
    ("widen 30%", (fun lo -> lo *. 0.7), fun hi -> hi *. 1.3);
    ("narrow 30%", (fun lo -> lo *. 1.3), fun hi -> hi *. 0.7);
  ]

let check_bob_band ?(deformations = default_deformations) ?(tol = 1e-6)
    (p : Params.t) ~p_star =
  let k3 = Cutoff.p_t3_low p ~p_star in
  match Cutoff.p_t2_band_endpoints p ~p_star with
  | None ->
    {
      equilibrium_value = Utility.b_t1_stop p;
      best_deviation_value = neg_infinity;
      best_deviation = "none";
      is_best_response = true;
    }
  | Some (lo, hi) ->
    let value band = Utility.b_t1_cont p ~p_star ~k3 ~band in
    let equilibrium_value = value (Cutoff.p_t2_band p ~p_star) in
    let deviations =
      List.filter_map
        (fun (label, f_lo, f_hi) ->
          let lo' = f_lo lo and hi' = f_hi hi in
          if lo' >= hi' then None
          else
            Some
              (label,
               value (Intervals.of_list [ { Intervals.lo = lo'; hi = hi' } ])))
        deformations
    in
    build_report ~equilibrium_value deviations ~tol
