(** Best-response verification: direct evidence that the backward
    induction's thresholds are mutual best responses, obtained by
    evaluating each agent's value under {e perturbed} strategies rather
    than by trusting the derivation.  Complements the lattice-SPE
    cross-check with a continuous-strategy test. *)

type report = {
  equilibrium_value : float;
  best_deviation_value : float;  (** Highest value over the probed deviations. *)
  best_deviation : string;  (** Description of the most tempting one. *)
  is_best_response : bool;
      (** No probed deviation improves by more than the tolerance. *)
}

val check_alice_cutoff :
  ?shifts:float list -> ?tol:float -> Params.t -> p_star:float -> report
(** Evaluates Alice's [t1] value when her [t3] reveal cutoff is shifted
    multiplicatively (default shifts: ±2%, ±5%, ±15%, ±40%), holding
    Bob's equilibrium band fixed.  Eq. 18 should (weakly) dominate. *)

val check_bob_band :
  ?deformations:(string * (float -> float) * (float -> float)) list ->
  ?tol:float -> Params.t -> p_star:float -> report
(** Evaluates Bob's [t1] value under deformed continuation bands
    (endpoints moved by the given maps; defaults widen, narrow and
    shift the band), holding Alice's cutoff fixed. *)
