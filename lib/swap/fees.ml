open Numerics
open Stochastic

type t = {
  params : Params.t;
  fee_a : float;
  fee_b : float;
  notional : float;
}

let create ?(notional = 1.) params ~fee_a ~fee_b =
  if fee_a < 0. || fee_b < 0. then invalid_arg "Fees.create: negative fee";
  if notional <= 0. then invalid_arg "Fees.create: nonpositive notional";
  { params; fee_a; fee_b; notional }

(* Alice at t3 trades n units: continuing costs the Chain_b claim fee
   immediately, so the per-unit stop value is effectively raised by
   fee_b / n. *)
let p_t3_low { params = p; fee_b; notional; _ } ~p_star =
  let stop_per_unit =
    (p_star *. exp (-.p.Params.alice.r *. (p.Params.eps_b +. (2. *. p.Params.tau_a))))
    +. (fee_b /. notional)
  in
  stop_per_unit
  *. exp ((p.Params.alice.r -. p.Params.mu) *. p.Params.tau_b)
  /. (1. +. p.Params.alice.alpha)

let b_t2_cont ({ params = p; fee_a; fee_b; notional; _ } as t) ~p_star ~p_t2 =
  let k3 = p_t3_low t ~p_star in
  let gbm = Params.gbm p in
  let prob_alice_continues = Gbm.sf gbm ~x:k3 ~p0:p_t2 ~tau:p.Params.tau_b in
  let claim_fee_discount =
    exp (-.p.Params.bob.r *. (p.Params.tau_b +. p.Params.eps_b))
  in
  (notional *. Utility.b_t2_cont p ~p_star ~k3 ~p_t2)
  -. fee_b
  -. (prob_alice_continues *. fee_a *. claim_fee_discount)

let p_t2_band ?(scan_points = 600) t ~p_star =
  let p = t.params in
  let g x =
    b_t2_cont t ~p_star ~p_t2:x -. (t.notional *. Utility.b_t2_stop ~p_t2:x)
  in
  let domain_lo, domain_hi = Cutoff.scan_domain p ~p_star in
  let roots = Root.find_all_roots_log ~n:scan_points g ~a:domain_lo ~b:domain_hi in
  Intervals.of_sign_changes ~f:g ~roots ~domain_lo:0. ~domain_hi:infinity

let success_rate ?quad_nodes t ~p_star =
  let k3 = p_t3_low t ~p_star in
  let band = p_t2_band t ~p_star in
  if Intervals.is_empty band then 0.
  else Success.analytic_given ?quad_nodes t.params ~k3 ~band

let a_t1_net ?quad_nodes ({ params = p; fee_a; fee_b; notional; _ } as t)
    ~p_star =
  let k3 = p_t3_low t ~p_star in
  let band = p_t2_band t ~p_star in
  let gross =
    notional
    *. (Utility.a_t1_cont ?quad_nodes p ~p_star ~k3 ~band
       -. Utility.a_t1_stop ~p_star)
  in
  (* The t3 claim fee is paid exactly when the swap will complete. *)
  let expected_claim_fee =
    Success.analytic_given ?quad_nodes p ~k3 ~band
    *. fee_b
    *. exp (-.p.Params.alice.r *. (p.Params.tau_a +. p.Params.tau_b))
  in
  gross -. fee_a -. expected_claim_fee

let p_star_band ?(scan_points = 120) ?quad_nodes t =
  let p = t.params in
  let f p_star = a_t1_net ?quad_nodes t ~p_star in
  let domain_lo = p.Params.p0 *. 0.05 and domain_hi = p.Params.p0 *. 20. in
  let roots = Root.find_all_roots_log ~n:scan_points f ~a:domain_lo ~b:domain_hi in
  match
    Intervals.intervals
      (Intervals.of_sign_changes ~f ~roots ~domain_lo:0. ~domain_hi:infinity)
  with
  | [] -> None
  | ivs ->
    let lo = (List.hd ivs).Intervals.lo in
    let hi = (List.nth ivs (List.length ivs - 1)).Intervals.hi in
    Some (lo, hi)

let break_even_notional ?quad_nodes ?(hi = 1e4) t ~p_star =
  let net n = a_t1_net ?quad_nodes { t with notional = n } ~p_star in
  if net hi <= 0. then None
  else begin
    let lo = ref 1e-6 and hi = ref hi in
    if net !lo > 0. then Some !lo
    else begin
      while !hi -. !lo > 1e-4 *. !hi do
        let mid = sqrt (!lo *. !hi) in
        if net mid > 0. then hi := mid else lo := mid
      done;
      Some !hi
    end
  end
