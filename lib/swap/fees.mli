(** Transaction-fee extension (Section V: "blockchain transaction fees
    ... may have an impact on agents' actions"; the baseline model
    assumes fees are negligible, Assumption 2).

    Each submitted transaction costs a flat fee, denominated in Token_a
    ([fee_a] per Chain_a transaction, [fee_b] per Chain_b transaction).
    The swap involves four transactions: Alice's lock (t1, Chain_a),
    Bob's lock (t2, Chain_b), Alice's claim (t3, Chain_b), Bob's claim
    (t4, Chain_a).  Sunk fees never influence later decisions; only
    fees still to be paid enter each comparison.

    The notional [n] scales the trade ([n P*] Token_a against [n]
    Token_b) while fees stay flat, exposing the fixed-toll economics:
    fees wipe out small trades and are irrelevant for large ones.

    With zero fees and [n = 1] everything reduces to the baseline
    (tested). *)

type t = private {
  params : Params.t;
  fee_a : float;
  fee_b : float;
  notional : float;
}

val create : ?notional:float -> Params.t -> fee_a:float -> fee_b:float -> t
(** @raise Invalid_argument on negative fees or nonpositive notional. *)

val p_t3_low : t -> p_star:float -> float
(** Alice's [t3] cutoff: continuing costs her the Chain_b claim fee
    now. *)

val b_t2_cont : t -> p_star:float -> p_t2:float -> float
(** Bob's continuation value at [t2], net of his Chain_b lock fee and
    the expected, discounted Chain_a claim fee at [t4]. *)

val p_t2_band : ?scan_points:int -> t -> p_star:float -> Intervals.t

val a_t1_net : ?quad_nodes:int -> t -> p_star:float -> float
(** Alice's net gain from initiating (cont minus stop), including her
    Chain_a lock fee; the swap starts only where this is positive. *)

val p_star_band :
  ?scan_points:int -> ?quad_nodes:int -> t -> (float * float) option
(** Feasible exchange-rate band under fees. *)

val success_rate : ?quad_nodes:int -> t -> p_star:float -> float

val break_even_notional :
  ?quad_nodes:int -> ?hi:float -> t -> p_star:float -> float option
(** Smallest trade size at which initiating is (weakly) profitable for
    Alice at the given rate; [None] if even [hi] (default 10^4) is not
    enough. *)
