open Numerics

type price_model = {
  label : string;
  transition : p0:float -> tau:float -> Lognormal.t;
}

let gbm (p : Params.t) =
  let g = Params.gbm p in
  {
    label = "gbm";
    transition = (fun ~p0 ~tau -> Stochastic.Gbm.transition g ~p0 ~tau);
  }

let exp_ou ou =
  {
    label = "exp-ou";
    transition = (fun ~p0 ~tau -> Stochastic.Exp_ou.transition ou ~p0 ~tau);
  }

let expectation model ~p0 ~tau = Lognormal.mean (model.transition ~p0 ~tau)

(* Alice at t3: continue iff the discounted expected Token_b receipt
   beats the refund.  The left side is increasing in the spot for any
   lognormal-transition model with positive dependence, so a sign scan
   plus Brent locates the unique cutoff. *)
let a_t3_cont (p : Params.t) model ~p_t3 =
  (1. +. p.Params.alice.alpha)
  *. expectation model ~p0:p_t3 ~tau:p.Params.tau_b
  *. Utility.discount ~r:p.Params.alice.r ~horizon:p.Params.tau_b

let p_t3_low (p : Params.t) model ~p_star =
  let stop = Utility.a_t3_stop p ~p_star in
  let g x = a_t3_cont p model ~p_t3:x -. stop in
  let lo = p_star *. 1e-6 and hi = p_star *. 1e6 in
  if g lo > 0. then 0.
  else if g hi < 0. then infinity
  else Root.brent g ~a:lo ~b:hi

let b_t3_stop (p : Params.t) model ~p_t3 =
  expectation model ~p0:p_t3 ~tau:(2. *. p.Params.tau_b)
  *. Utility.discount ~r:p.Params.bob.r ~horizon:(2. *. p.Params.tau_b)

let b_t2_cont (p : Params.t) model ~p_star ~p_t2 =
  let k3 = p_t3_low p model ~p_star in
  let law = model.transition ~p0:p_t2 ~tau:p.Params.tau_b in
  let cont_part = Lognormal.sf law k3 *. Utility.b_t3_cont p ~p_star in
  (* Integral of Bob's refund value over Alice's stop region (0, k3);
     the integrand need not be linear in the price, so quadrature. *)
  let stop_part =
    if k3 <= 0. then 0.
    else if k3 = infinity then
      Integrate.semi_infinite ~n:128
        (fun y -> Lognormal.pdf law y *. b_t3_stop p model ~p_t3:y)
        ~a:1e-12
    else
      Integrate.gauss_legendre ~n:128
        (fun y -> Lognormal.pdf law y *. b_t3_stop p model ~p_t3:y)
        ~a:1e-12 ~b:k3
  in
  (cont_part +. stop_part)
  *. Utility.discount ~r:p.Params.bob.r ~horizon:p.Params.tau_b

let p_t2_band ?(scan_points = 400) (p : Params.t) model ~p_star =
  let g x = b_t2_cont p model ~p_star ~p_t2:x -. Utility.b_t2_stop ~p_t2:x in
  let domain_lo, domain_hi = Cutoff.scan_domain p ~p_star in
  let roots = Root.find_all_roots_log ~n:scan_points g ~a:domain_lo ~b:domain_hi in
  Intervals.of_sign_changes ~f:g ~roots ~domain_lo:0. ~domain_hi:infinity

let success_rate ?(quad_nodes = 96) (p : Params.t) model ~p_star =
  let k3 = p_t3_low p model ~p_star in
  let band = p_t2_band p model ~p_star in
  if Intervals.is_empty band then 0.
  else
    let law_t2 = model.transition ~p0:p.Params.p0 ~tau:p.Params.tau_a in
    Utility.integrate_over ~quad_nodes band ~f:(fun x ->
        Lognormal.pdf law_t2 x
        *. Lognormal.sf (model.transition ~p0:x ~tau:p.Params.tau_b) k3)

let sampler model : Montecarlo.sampler =
 fun rng ~p0 ~tau ->
  let law = model.transition ~p0 ~tau in
  Rng.lognormal rng ~mu:law.Lognormal.mu ~sigma:law.Lognormal.sigma

let policy (p : Params.t) model ~p_star =
  let k3 = p_t3_low p model ~p_star in
  let band = p_t2_band p model ~p_star in
  {
    Agent.name = "rational (" ^ model.label ^ ")";
    alice_t1 =
      (fun ~p_star:_ ->
        if Intervals.is_empty band then Agent.Stop else Agent.Cont);
    bob_t2 =
      (fun ~p_t2 ->
        if Intervals.contains band p_t2 then Agent.Cont else Agent.Stop);
    alice_t3 = (fun ~p_t3 -> if p_t3 > k3 then Agent.Cont else Agent.Stop);
    bob_t4 = Agent.Cont;
  }
