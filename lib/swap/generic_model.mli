(** Price-model-generic backward induction.

    The paper's solution method only uses the one-step transition law
    of the price at the decision horizons; nothing about it is specific
    to geometric Brownian motion.  This module re-solves the game for
    {e any} model whose conditional transitions are lognormal —
    covering the paper's GBM (where it reproduces the closed-form
    results exactly; tested) and the mean-reverting exponential
    Ornstein–Uhlenbeck model of {!Stochastic.Exp_ou} (stablecoin-like
    tokens). *)

type price_model = {
  label : string;
  transition : p0:float -> tau:float -> Numerics.Lognormal.t;
}

val gbm : Params.t -> price_model
(** The paper's model, built from the [mu]/[sigma] in the parameters. *)

val exp_ou : Stochastic.Exp_ou.t -> price_model

val p_t3_low : Params.t -> price_model -> p_star:float -> float
(** Alice's reveal cutoff: the root of
    [(1 + alpha_A) E[P_t5 | P_t3] e^(-r_A tau_b) = Eq. 16], solved
    numerically (the expectation need not be linear in the spot). *)

val b_t2_cont : Params.t -> price_model -> p_star:float -> p_t2:float -> float
(** Bob's Eq. 21 under the generic transitions (the inner integral over
    Alice's stop region is evaluated by quadrature). *)

val p_t2_band :
  ?scan_points:int -> Params.t -> price_model -> p_star:float -> Intervals.t

val success_rate :
  ?quad_nodes:int -> Params.t -> price_model -> p_star:float -> float

val sampler : price_model -> Montecarlo.sampler
(** Exact transition sampling for Monte-Carlo cross-checks. *)

val policy : Params.t -> price_model -> p_star:float -> Agent.t
(** The equilibrium policy under the model (initiation is approximated
    by requiring a nonempty continuation band at the agreed rate). *)
