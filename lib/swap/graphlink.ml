(* The bridge from the paper's 2-party model to lib/swapgraph: builds
   per-leg rational policies, graph-game payoffs and the served token
   universe out of Params/Cutoff/Success, so the graph library itself
   stays parameter-free (it sits below this library and Multihop
   delegates to it).

   Conventions: identical legs with unit notional per arc, Bob-side
   calibration (premium [bob.alpha] per incoming leg, time-value
   [bob.r] per locked hour) — the same symmetric-legs reading
   Multihop has always used. *)

let schedule ?slack (p : Params.t) g =
  Swapgraph.Timelock.assign ?slack g ~tau:p.Params.tau_b ~eps:p.Params.eps_b

(* Every party applies the 2-party rational rule to its own leg with
   the {e baseline} cutoffs — the historical Multihop Monte-Carlo
   semantics (identical bands at every depth). *)
let uniform_policy (p : Params.t) ~p_star =
  let gbm = Params.gbm p in
  let band = Cutoff.p_t2_band p ~p_star in
  let k3 = Cutoff.p_t3_low p ~p_star in
  {
    Swapgraph.Mc.price_at =
      (fun rng ~t -> Stochastic.Gbm.sample rng gbm ~p0:p.Params.p0 ~tau:t);
    lock_ok = (fun _v ~t:_ ~price -> Intervals.contains band price);
    reveal_ok = (fun ~t:_ ~price -> price > k3);
  }

(* The time from a party's lock until its leg's happy-path claim — the
   window its collateral is exposed to adverse price moves.  In the
   2-party cycle this is exactly [tau_b]; deeper graphs and slack
   stretch it. *)
let wait_hours g (s : Swapgraph.Timelock.schedule) v =
  let leg = List.hd (Swapgraph.Graph.out_arcs g v) in
  s.Swapgraph.Timelock.claim_time.(leg) -. s.Swapgraph.Timelock.lock_time.(leg)

(* Depth-aware variant: each party's cutoffs are recomputed with
   [tau_b] stretched to its own leg's exposure window, so parties far
   from the leader (or under heavy slack) rationally demand a narrower
   band — the structural cost Herlihy's staggering imposes. *)
let depth_aware_policy (p : Params.t) ~p_star g s =
  let gbm = Params.gbm p in
  let stretched v = { p with Params.tau_b = wait_hours g s v } in
  let bands =
    Array.init (Swapgraph.Graph.n g) (fun v ->
        Cutoff.p_t2_band (stretched v) ~p_star)
  in
  let k3 = Cutoff.p_t3_low (stretched (Swapgraph.Graph.leader g)) ~p_star in
  {
    Swapgraph.Mc.price_at =
      (fun rng ~t -> Stochastic.Gbm.sample rng gbm ~p0:p.Params.p0 ~tau:t);
    lock_ok = (fun v ~t:_ ~price -> Intervals.contains bands.(v) price);
    reveal_ok = (fun ~t:_ ~price -> price > k3);
  }

(* Griefing exposure in value terms: time-value rate times the hours
   each party's outgoing collateral can be held hostage. *)
let griefing_value (p : Params.t) g s =
  Array.map
    (fun h -> p.Params.bob.Params.r *. h)
    (Swapgraph.Timelock.exposure_hours g s)

(* Graph-game payoffs: completing earns the premium on every incoming
   leg and pays time-value on every outgoing lock (tight schedule:
   funds stay locked until the claim at expiry either way); an abort
   costs exactly the parties already locked their time-value and
   everyone else nothing. *)
let payoffs (p : Params.t) g s =
  let n = Swapgraph.Graph.n g in
  let alpha = p.Params.bob.Params.alpha in
  let lock_cost = griefing_value p g s in
  let success =
    Array.init n (fun v ->
        (alpha *. float_of_int (List.length (Swapgraph.Graph.in_arcs g v)))
        -. lock_cost.(v))
  in
  let no_reveal = Array.map (fun c -> -.c) lock_cost in
  let order = Swapgraph.Graph.decision_order g in
  let abort_at aborter =
    let payoff = Array.make n 0. in
    (try
       Array.iter
         (fun v ->
           if v = aborter then raise Exit;
           payoff.(v) <- -.lock_cost.(v))
         order
     with Exit -> ());
    payoff
  in
  { Swapgraph.Game.success; no_reveal; abort_at }

let analyse ?slack ?(trials = 20_000) ?seed ?jobs (p : Params.t) ~p_star g =
  let s = schedule ?slack p g in
  let game = Swapgraph.Game.analyse g (payoffs p g s) in
  let mc =
    Swapgraph.Mc.estimate ?trials:(Some trials) ?seed ?jobs g s
      (depth_aware_policy p ~p_star g s)
  in
  (s, game, mc)

(* --- served token universe ----------------------------------------------- *)

(* A small, deterministic cross-chain universe for the [route] serve
   kind: tokens mapped to chain technologies, pairs priced by the
   2-party solver at each pair's SR-optimal rate.  Deliberately not a
   complete graph — XMR only trades against BTC, SOL against the smart
   contract chains — so multi-hop routing has work to do. *)
let default_pairs =
  [
    ("BTC", Presets.btc_like, "ETH", Presets.eth_like);
    ("ETH", Presets.eth_like, "USDC", Presets.eth_like);
    ("ETH", Presets.eth_like, "SOL", Presets.fast_finality);
    ("SOL", Presets.fast_finality, "USDC", Presets.eth_like);
    ("XMR", Presets.paper_default, "BTC", Presets.btc_like);
  ]

let default_universe ?(base = Params.defaults) () =
  let edges =
    List.concat_map
      (fun (tok_a, tech_a, tok_b, tech_b) ->
        let params = Presets.pair ~base ~chain_a:tech_a ~chain_b:tech_b () in
        match Success.maximize params with
        | None -> []
        | Some { Success.p_star; sr } ->
          (* The numeric optimiser can overshoot probability-1 by an
             ulp on near-certain pairs; the router validates sr as a
             probability, so clamp here. *)
          let sr = Float.min 1. (Float.max 0. sr) in
          [
            { Swapgraph.Router.src = tok_a; dst = tok_b; sr; rate = p_star };
            { Swapgraph.Router.src = tok_b; dst = tok_a; sr; rate = 1. /. p_star };
          ])
      default_pairs
  in
  Swapgraph.Router.make_exn edges
