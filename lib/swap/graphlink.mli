(** The bridge from the paper's 2-party model to [lib/swapgraph]:
    per-leg rational policies, graph-game payoffs and the served token
    universe, built from {!Params}/{!Cutoff}/{!Success}.

    Conventions: identical legs with unit notional per arc, Bob-side
    calibration (premium [bob.alpha] per incoming leg, time-value
    [bob.r] per locked hour). *)

val schedule :
  ?slack:float -> Params.t -> Swapgraph.Graph.t -> Swapgraph.Timelock.schedule
(** Herlihy assignment with [tau = tau_b], [eps = eps_b]. *)

val uniform_policy : Params.t -> p_star:float -> Swapgraph.Mc.policy
(** Every party applies the 2-party rule with the {e baseline} cutoffs
    — the historical [Multihop] Monte-Carlo semantics. *)

val depth_aware_policy :
  Params.t ->
  p_star:float ->
  Swapgraph.Graph.t ->
  Swapgraph.Timelock.schedule ->
  Swapgraph.Mc.policy
(** Each party's cutoffs recomputed with [tau_b] stretched to its own
    leg's lock-to-claim window: deeper parties (and heavier slack)
    rationally demand narrower bands. *)

val griefing_value :
  Params.t -> Swapgraph.Graph.t -> Swapgraph.Timelock.schedule -> float array
(** Per vertex: time-value rate times {!Swapgraph.Timelock.exposure_hours}. *)

val payoffs :
  Params.t ->
  Swapgraph.Graph.t ->
  Swapgraph.Timelock.schedule ->
  Swapgraph.Game.payoffs
(** Premium on incoming legs minus time-value on outgoing locks;
    aborts cost exactly the already-locked parties their time-value. *)

val analyse :
  ?slack:float ->
  ?trials:int ->
  ?seed:int ->
  ?jobs:int ->
  Params.t ->
  p_star:float ->
  Swapgraph.Graph.t ->
  Swapgraph.Timelock.schedule * Swapgraph.Game.analysis * Swapgraph.Mc.result
(** Schedule + game solution + depth-aware Monte Carlo in one call. *)

val default_universe : ?base:Params.t -> unit -> Swapgraph.Router.t
(** The served token universe: BTC/ETH/SOL/USDC/XMR mapped onto chain
    technologies, pairs priced by the 2-party solver at each pair's
    SR-optimal rate.  Deliberately sparse so multi-hop routing has
    work to do. *)
