type analysis = {
  attacker_cost : float;
  victim_damage : float;
  victim_lock_hours : float;
  griefing_factor : float;
}

(* Absolute times from t1 under the Eq. 13 schedule. *)
let schedule (p : Params.t) =
  let tl = Timeline.ideal p in
  ( tl.Timeline.t8 -. tl.Timeline.t1,  (* attacker's Token_a refund *)
    tl.Timeline.t7 -. tl.Timeline.t1,  (* victim's Token_b refund *)
    tl.Timeline.t3 +. p.Params.tau_a -. tl.Timeline.t1,
    (* victim's own deposit back *)
    tl.Timeline.t4 +. p.Params.tau_a -. tl.Timeline.t1
    (* attacker's forfeited deposit credited to the victim *) )

let analyse ?(q_alice = 0.) ?(q_bob = 0.) (p : Params.t) ~p_star =
  let t_refund_a, t_refund_b, t_qb_back, t_qa_paid = schedule p in
  let da h = exp (-.p.Params.alice.r *. h) in
  let db h = exp (-.p.Params.bob.r *. h) in
  (* Attacker: stays out with P* + q_alice; attacking returns her
     Token_a at t8 and forfeits the deposit. *)
  let attacker_cost =
    (p_star +. q_alice) -. (p_star *. da t_refund_a)
  in
  (* Victim: keeps Token_b (worth p0) and his deposit now, versus the
     doomed swap: Token_b back at t7 (with drift), his own deposit at
     t3 + tau_a, and the attacker's forfeited deposit at t4 + tau_a. *)
  let token_back =
    p.Params.p0 *. exp (p.Params.mu *. t_refund_b) *. db t_refund_b
  in
  let victim_damage =
    (p.Params.p0 +. q_bob)
    -. (token_back +. (q_bob *. db t_qb_back) +. (q_alice *. db t_qa_paid))
  in
  let victim_lock_hours = t_refund_b -. p.Params.tau_a in
  {
    attacker_cost;
    victim_damage;
    victim_lock_hours;
    griefing_factor =
      (if attacker_cost <= 0. then infinity
       else victim_damage /. attacker_cost);
  }

let deterrence_deposit ?(tol = 1e-6) ?hi (p : Params.t) ~p_star =
  let hi = Option.value ~default:(4. *. p.Params.p0) hi in
  let factor q = (analyse ~q_alice:q p ~p_star).griefing_factor in
  if factor 0. <= 1. then Some 0.
  else if factor hi > 1. then None
  else begin
    (* The factor is decreasing in the attacker's deposit: bisect. *)
    let lo = ref 0. and hi = ref hi in
    while !hi -. !lo > tol do
      let mid = 0.5 *. (!lo +. !hi) in
      if factor mid <= 1. then hi := mid else lo := mid
    done;
    Some !hi
  end
