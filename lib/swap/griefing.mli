(** Lockup griefing — the attack the Arwen protocol [30] is built
    around (Section II-C): a party enters swaps with no intent to
    complete, purely to lock the counterparty's capital.

    In the baseline HTLC a malicious "Alice" initiates, lets Bob lock
    his Token_b, and walks away at [t3].  Her cost is only the time
    value of her own locked Token_a (plus any at-stake premium or
    collateral); the damage is Bob's capital locked from [t2] until his
    refund lands at [t7].  The {e griefing factor} — damage inflicted
    per unit of attacker cost — measures how cheap the attack is;
    deposit mechanisms work exactly by pushing it below 1. *)

type analysis = {
  attacker_cost : float;
      (** Alice's [t1] utility loss from running the attack instead of
          staying out (discounting on her locked Token_a, forfeited
          deposits, fees). *)
  victim_damage : float;
      (** Bob's [t1] utility loss when he (honestly) enters the doomed
          swap rather than keeping his token. *)
  victim_lock_hours : float;  (** Hours Bob's capital is immobilised. *)
  griefing_factor : float;  (** [victim_damage / attacker_cost]. *)
}

val analyse :
  ?q_alice:float -> ?q_bob:float -> Params.t -> p_star:float -> analysis
(** Attack economics under optional deposits ([q_alice] is what the
    attacker forfeits — the premium [w] or her collateral; [q_bob] is
    returned to the honest victim and also paid over on forfeit). *)

val deterrence_deposit :
  ?tol:float -> ?hi:float -> Params.t -> p_star:float -> float option
(** Smallest attacker-side deposit making the griefing factor [<= 1]
    (attack costs at least the damage it causes); [None] if [hi]
    (default [4 p0]) is insufficient. *)
