type interval = { lo : float; hi : float }
type t = interval list

let empty = []

let of_list ivs =
  let sorted = List.sort (fun a b -> compare a.lo b.lo) ivs in
  let rec validate = function
    | [] -> ()
    | { lo; hi } :: rest ->
      if hi <= lo then invalid_arg "Intervals.of_list: degenerate interval";
      (match rest with
      | { lo = lo2; _ } :: _ when lo2 < hi ->
        invalid_arg "Intervals.of_list: overlapping intervals"
      | _ -> ());
      validate rest
  in
  validate sorted;
  sorted

let intervals t = t
let is_empty t = t = []
let contains t x = List.exists (fun { lo; hi } -> lo < x && x < hi) t

let total_length t =
  List.fold_left (fun acc { lo; hi } -> acc +. (hi -. lo)) 0. t

let of_sign_changes ~f ~roots ~domain_lo ~domain_hi =
  let roots = List.sort_uniq compare roots in
  let boundaries = (domain_lo :: roots) @ [ domain_hi ] in
  (* Probe each cell at a representative interior point. *)
  let probe lo hi =
    if hi = infinity then
      if lo <= 0. then 1. else lo *. 2.
    else if lo <= 0. then hi /. 2.
    else sqrt (lo *. hi) (* geometric midpoint suits price scales *)
  in
  let rec cells acc = function
    | lo :: (hi :: _ as rest) ->
      let acc = if f (probe lo hi) > 0. then { lo; hi } :: acc else acc in
      cells acc rest
    | _ -> List.rev acc
  in
  let raw = cells [] boundaries in
  (* Merge adjacent cells sharing a boundary (a root that does not
     actually separate signs, e.g. a tangency). *)
  let rec merge = function
    | a :: b :: rest when a.hi = b.lo -> merge ({ lo = a.lo; hi = b.hi } :: rest)
    | a :: rest -> a :: merge rest
    | [] -> []
  in
  merge raw

let intersect a b =
  let rec go a b acc =
    match (a, b) with
    | [], _ | _, [] -> List.rev acc
    | x :: xs, y :: ys ->
      let lo = max x.lo y.lo and hi = min x.hi y.hi in
      let acc = if lo < hi then { lo; hi } :: acc else acc in
      if x.hi <= y.hi then go xs b acc else go a ys acc
  in
  go a b []

let union a b =
  let all = List.sort (fun u v -> compare u.lo v.lo) (a @ b) in
  let rec go = function
    | x :: y :: rest when y.lo <= x.hi ->
      go ({ lo = x.lo; hi = max x.hi y.hi } :: rest)
    | x :: rest -> x :: go rest
    | [] -> []
  in
  go all

let to_string t =
  if t = [] then "{}"
  else
    String.concat " u "
      (List.map
         (fun { lo; hi } ->
           if hi = infinity then Printf.sprintf "(%.4g, inf)" lo
           else Printf.sprintf "(%.4g, %.4g)" lo hi)
         t)
