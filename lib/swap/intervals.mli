(** Sets of disjoint open intervals of positive reals — the shape of the
    continuation regions (the paper's bands [(P_low, P_high)] and the
    1-or-3-root sets [𝔓] of Section IV). *)

type interval = { lo : float; hi : float }
(** Open interval; [hi] may be [infinity]. *)

type t
(** Disjoint intervals in increasing order. *)

val empty : t
val of_list : interval list -> t
(** Sorts, validates disjointness and [lo < hi] for each.
    @raise Invalid_argument on overlap or a degenerate interval. *)

val intervals : t -> interval list
val is_empty : t -> bool
val contains : t -> float -> bool
val total_length : t -> float
(** [infinity] when unbounded. *)

val of_sign_changes :
  f:(float -> float) -> roots:float list -> domain_lo:float ->
  domain_hi:float -> t
(** Reconstructs [{ x : f x > 0 }] within [(domain_lo, domain_hi)] from
    the sorted root list: evaluates [f] at midpoints between consecutive
    boundaries (geometric midpoints, for price domains) and keeps the
    positive cells.  [domain_hi] may be [infinity] (the last cell is
    probed at twice the last root). *)

val intersect : t -> t -> t
val union : t -> t -> t

val to_string : t -> string
(** e.g. ["(0.31, 2.54) u (3.1, inf)"]. *)
