open Stochastic

type spec = {
  params : Params.t;
  p_star : float;
  steps_a : int;
  steps_b : int;
  q : float;
}

let make_spec ?(steps_a = 80) ?(steps_b = 80) ?(q = 0.) params ~p_star =
  if q < 0. then invalid_arg "Lattice_game.make_spec: negative collateral";
  { params; p_star; steps_a; steps_b; q }

(* Probability-weighted outcomes of one lattice leg, dropping branches
   whose binomial weight underflows and renormalising the rest. *)
let leg_distribution gbm ~p0 ~horizon ~steps =
  let lat = Lattice.create gbm ~p0 ~horizon ~steps in
  let prices = Lattice.level_prices lat ~level:steps in
  let weighted =
    Array.to_list
      (Array.mapi
         (fun index price ->
           (Lattice.node_probability lat ~level:steps ~index, price))
         prices)
  in
  let kept = List.filter (fun (w, _) -> w > 1e-12) weighted in
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0. kept in
  List.map (fun (w, price) -> (w /. total, price)) kept

let alice = 0
let bob = 1

let build_initiated spec =
  let p = spec.params in
  let gbm = Params.gbm p in
  let tl = Timeline.ideal p in
  let da horizon = exp (-.p.Params.alice.r *. horizon) in
  let db horizon = exp (-.p.Params.bob.r *. horizon) in
  let t1 = tl.Timeline.t1 in
  (* Alice's refund on any failure after she locked: credited at t8. *)
  let alice_refund = spec.p_star *. da (tl.Timeline.t8 -. t1) in
  let q = spec.q in
  (* Deposit receipt times per Section IV: Bob's returns at t3 + tau_a
     once his HTLC stands; Alice's at t4 + tau_a once she revealed; a
     forfeited deposit reaches the counterparty at the same instants. *)
  let q_bob_back = q *. db (tl.Timeline.t3 +. p.Params.tau_a -. t1) in
  let q_alice_back = q *. da (tl.Timeline.t4 +. p.Params.tau_a -. t1) in
  let q_alice_forfeit_to_bob =
    q *. db (tl.Timeline.t4 +. p.Params.tau_a -. t1)
  in
  let q_both_to_alice =
    2. *. q *. da (tl.Timeline.t3 +. p.Params.tau_a -. t1)
  in
  let t3_subtree p_t3 =
    let success =
      Gametree.Game.terminal ~label:"success"
        [|
          ((1. +. p.Params.alice.alpha)
          *. p_t3
          *. exp (p.Params.mu *. p.Params.tau_b)
          *. da (tl.Timeline.t5 -. t1))
          +. q_alice_back;
          ((1. +. p.Params.bob.alpha)
          *. spec.p_star
          *. db (tl.Timeline.t6 -. t1))
          +. q_bob_back;
        |]
    in
    (* If Bob irrationally declines to claim at t4, Alice keeps both her
       claimed Token_b and (after expiry) her refunded Token_a. *)
    let abort_t4 =
      Gametree.Game.terminal ~label:"abort_t4"
        [|
          (p_t3
          *. exp (p.Params.mu *. p.Params.tau_b)
          *. da (tl.Timeline.t5 -. t1))
          +. alice_refund +. q_alice_back;
          q_bob_back;
        |]
    in
    let bob_t4 =
      Gametree.Game.decision ~label:"t4" ~player:bob
        [ ("cont", success); ("stop", abort_t4) ]
    in
    let abort_t3 =
      Gametree.Game.terminal ~label:"abort_t3"
        [|
          alice_refund;
          (p_t3
          *. exp (2. *. p.Params.mu *. p.Params.tau_b)
          *. db (tl.Timeline.t7 -. t1))
          +. q_bob_back +. q_alice_forfeit_to_bob;
        |]
    in
    (* Eq. 19 resolves Alice's tie to stop: list stop first. *)
    Gametree.Game.decision
      ~label:(Printf.sprintf "t3@%.12g" p_t3)
      ~player:alice
      [ ("stop", abort_t3); ("cont", bob_t4) ]
  in
  let t2_subtree p_t2 =
    let abort_t2 =
      Gametree.Game.terminal ~label:"abort_t2"
        [| alice_refund +. q_both_to_alice;
           p_t2 *. db (tl.Timeline.t2 -. t1) |]
    in
    let chance_to_t3 =
      Gametree.Game.chance ~label:"price t2->t3"
        (List.map
           (fun (w, p_t3) -> (w, t3_subtree p_t3))
           (leg_distribution gbm ~p0:p_t2 ~horizon:p.Params.tau_b
              ~steps:spec.steps_b))
    in
    Gametree.Game.decision
      ~label:(Printf.sprintf "t2@%.12g" p_t2)
      ~player:bob
      [ ("stop", abort_t2); ("cont", chance_to_t3) ]
  in
  Gametree.Game.chance ~label:"price t1->t2"
    (List.map
       (fun (w, p_t2) -> (w, t2_subtree p_t2))
       (leg_distribution gbm ~p0:p.Params.p0 ~horizon:p.Params.tau_a
          ~steps:spec.steps_a))

let build_full spec =
  let p = spec.params in
  let abort_t1 =
    Gametree.Game.terminal ~label:"abort_t1"
      [| spec.p_star +. spec.q; p.Params.p0 +. spec.q |]
  in
  Gametree.Game.decision ~label:"t1" ~player:alice
    [ ("stop", abort_t1); ("cont", build_initiated spec) ]

type solution = {
  success_rate : float;
  alice_value_t1 : float;
  bob_value_t1 : float;
  alice_initiates : bool;
  t3_boundary : float option;
  nodes : int;
}

let solve spec =
  let full = build_full spec in
  let solved_full = Gametree.Solve.solve full in
  let initiated = build_initiated spec in
  let solved = Gametree.Solve.solve initiated in
  let value = Gametree.Solve.value solved in
  let success_rate =
    Gametree.Solve.outcome_probability solved (String.equal "success")
  in
  (* Scan Alice's t3 decisions for the lowest price at which she
     continues. *)
  let t3_boundary = ref None in
  let note price =
    match !t3_boundary with
    | Some b when b <= price -> ()
    | _ -> t3_boundary := Some price
  in
  let rec walk = function
    | Gametree.Solve.S_terminal _ -> ()
    | Gametree.Solve.S_decision { node_label; chosen; branches; _ } ->
      (if chosen = "cont" && String.length node_label > 3
       && String.sub node_label 0 3 = "t3@" then
         match
           float_of_string_opt
             (String.sub node_label 3 (String.length node_label - 3))
         with
         | Some price -> note price
         | None -> ());
      List.iter (fun (_, child) -> walk child) branches
    | Gametree.Solve.S_chance { branches; _ } ->
      List.iter (fun (_, child) -> walk child) branches
  in
  walk solved;
  let alice_initiates =
    match solved_full with
    | Gametree.Solve.S_decision { chosen; _ } -> chosen = "cont"
    | _ -> false
  in
  {
    success_rate;
    alice_value_t1 = value.(alice);
    bob_value_t1 = value.(bob);
    alice_initiates;
    t3_boundary = !t3_boundary;
    nodes = Gametree.Game.size initiated;
  }
