(** Independent cross-check of the analytic backward induction: the
    swap is rebuilt as a {e finite} extensive-form game
    ({!Gametree.Game}) over a GBM-calibrated binomial lattice
    ({!Stochastic.Lattice}) and solved with the generic
    subgame-perfect-equilibrium engine ({!Gametree.Solve}).

    All payoffs are realised utilities discounted to [t1], each player
    with their own rate, so decisions at interior nodes are equivalent
    to the paper's (positive rescaling per player).  As the lattice is
    refined, the equilibrium success probability converges to Eq. 31
    and Alice's [t3] decision boundary to Eq. 18. *)

type spec = {
  params : Params.t;
  p_star : float;
  steps_a : int;  (** Lattice steps across [tau_a] ([t1 -> t2]). *)
  steps_b : int;  (** Lattice steps across [tau_b] ([t2 -> t3]). *)
  q : float;  (** Symmetric collateral (Section IV); 0 = baseline game. *)
}

val make_spec :
  ?steps_a:int -> ?steps_b:int -> ?q:float -> Params.t -> p_star:float -> spec
(** Defaults: 80 steps per leg, no collateral.  With [q > 0] the
    terminal payoffs include the Oracle's deposit flows, so the SPE of
    the discretised game cross-validates the Section IV solution too. *)

val build_initiated : spec -> Gametree.Game.t
(** The subtree after Alice initiated at [t1]: chance to [P_t2], Bob's
    decision, chance to [P_t3], Alice's decision, Bob's (dominated)
    [t4] decision.  Terminal labels: ["success"], ["abort_t2"],
    ["abort_t3"], ["abort_t4"]. *)

val build_full : spec -> Gametree.Game.t
(** With Alice's [t1] initiate/stop decision on top. *)

type solution = {
  success_rate : float;  (** P(success | initiated) at the SPE. *)
  alice_value_t1 : float;  (** Alice's equilibrium value of initiating. *)
  bob_value_t1 : float;
  alice_initiates : bool;  (** SPE choice at the [t1] root. *)
  t3_boundary : float option;
      (** Lowest lattice [P_t3] where Alice continues (converges to
          Eq. 18's cutoff), if she ever continues. *)
  nodes : int;  (** Game-tree size. *)
}

val solve : spec -> solution
