open Numerics
open Stochastic

type t = { params : Params.t; delay_t2 : float; delay_t3 : float }

let create params ~delay_t2 ~delay_t3 =
  if delay_t2 < 0. || delay_t3 < 0. then
    invalid_arg "Margins.create: negative delay";
  { params; delay_t2; delay_t3 }

let leg_a t = t.params.Params.tau_a +. t.delay_t2
let leg_b t = t.params.Params.tau_b +. t.delay_t3

(* The reveal decision is local: the same Eq. 18 cutoff. *)
let p_t3_low t ~p_star = Cutoff.p_t3_low t.params ~p_star

let b_t2_cont t ~p_star ~p_t2 =
  let p = t.params in
  let gbm = Params.gbm p in
  let k3 = p_t3_low t ~p_star in
  let span = leg_b t in
  let cont_part =
    Gbm.sf gbm ~x:k3 ~p0:p_t2 ~tau:span *. Utility.b_t3_cont p ~p_star
  in
  let stop_part =
    exp (2. *. (p.Params.mu -. p.Params.bob.r) *. p.Params.tau_b)
    *. Gbm.partial_expectation_below gbm ~k:k3 ~p0:p_t2 ~tau:span
  in
  (cont_part +. stop_part) *. Utility.discount ~r:p.Params.bob.r ~horizon:span

let a_t2_cont t ~p_star ~p_t2 =
  let p = t.params in
  let gbm = Params.gbm p in
  let k3 = p_t3_low t ~p_star in
  let span = leg_b t in
  let cont_part =
    (1. +. p.Params.alice.alpha)
    *. exp ((p.Params.mu -. p.Params.alice.r) *. p.Params.tau_b)
    *. Gbm.partial_expectation_above gbm ~k:k3 ~p0:p_t2 ~tau:span
  in
  let stop_part =
    Gbm.cdf gbm ~x:k3 ~p0:p_t2 ~tau:span *. Utility.a_t3_stop p ~p_star
  in
  (cont_part +. stop_part)
  *. Utility.discount ~r:p.Params.alice.r ~horizon:span

let a_t2_stop t ~p_star =
  let p = t.params in
  p_star
  *. Utility.discount ~r:p.Params.alice.r
       ~horizon:(leg_b t +. p.Params.eps_b +. (2. *. p.Params.tau_a))

let p_t2_band ?(scan_points = 600) t ~p_star =
  let g x = b_t2_cont t ~p_star ~p_t2:x -. Utility.b_t2_stop ~p_t2:x in
  let domain_lo, domain_hi = Cutoff.scan_domain t.params ~p_star in
  let roots = Root.find_all_roots_log ~n:scan_points g ~a:domain_lo ~b:domain_hi in
  Intervals.of_sign_changes ~f:g ~roots ~domain_lo:0. ~domain_hi:infinity

let a_t1_cont ?quad_nodes t ~p_star =
  let p = t.params in
  let gbm = Params.gbm p in
  let span = leg_a t in
  let band = p_t2_band t ~p_star in
  let pdf x = Gbm.pdf gbm ~x ~p0:p.Params.p0 ~tau:span in
  let cont_part =
    Utility.integrate_over ?quad_nodes band ~f:(fun x ->
        pdf x *. a_t2_cont t ~p_star ~p_t2:x)
  in
  let stop_part =
    (1. -. Utility.transition_mass p ~tau:span ~p0:p.Params.p0 band)
    *. a_t2_stop t ~p_star
  in
  (cont_part +. stop_part)
  *. Utility.discount ~r:p.Params.alice.r ~horizon:span

let b_t1_cont ?quad_nodes t ~p_star =
  let p = t.params in
  let gbm = Params.gbm p in
  let span = leg_a t in
  let band = p_t2_band t ~p_star in
  let pdf x = Gbm.pdf gbm ~x ~p0:p.Params.p0 ~tau:span in
  let cont_part =
    Utility.integrate_over ?quad_nodes band ~f:(fun x ->
        pdf x *. b_t2_cont t ~p_star ~p_t2:x)
  in
  let outside =
    Gbm.expectation gbm ~p0:p.Params.p0 ~tau:span
    -. Utility.price_mass_inside p ~tau:span ~p0:p.Params.p0 band
  in
  (cont_part +. outside) *. Utility.discount ~r:p.Params.bob.r ~horizon:span

let success_rate ?quad_nodes t ~p_star =
  let p = t.params in
  let gbm = Params.gbm p in
  let k3 = p_t3_low t ~p_star in
  let band = p_t2_band t ~p_star in
  if Intervals.is_empty band then 0.
  else
    Utility.integrate_over ?quad_nodes band ~f:(fun x ->
        Gbm.pdf gbm ~x ~p0:p.Params.p0 ~tau:(leg_a t)
        *. Gbm.sf gbm ~x:k3 ~p0:x ~tau:(leg_b t))

let schedule_cost ?quad_nodes (p : Params.t) ~p_star ~delay_t2 ~delay_t3 =
  let zero = create p ~delay_t2:0. ~delay_t3:0. in
  let slack = create p ~delay_t2 ~delay_t3 in
  ( a_t1_cont ?quad_nodes zero ~p_star -. a_t1_cont ?quad_nodes slack ~p_star,
    b_t1_cont ?quad_nodes zero ~p_star -. b_t1_cont ?quad_nodes slack ~p_star )
