(** Waiting-time ablation — Section III-C argues (informally) that both
    agents want the shortest possible schedule: waiting adds the
    counterparty's optionality and discounting losses, so the
    zero-waiting timeline of Eq. 13 is the equilibrium choice.  This
    module makes that argument quantitative.

    [delay_t2] is slack Bob inserts before deploying at [t2] (his lock
    lands at [t1 + tau_a + delay_t2]); [delay_t3] is slack before
    Alice's reveal decision.  Lock expiries stretch accordingly, so the
    swap remains executable; what changes is that prices diffuse longer
    between decision points and every receipt is pushed back.  With
    both delays zero every formula reduces to the baseline (tested). *)

type t = private { params : Params.t; delay_t2 : float; delay_t3 : float }

val create : Params.t -> delay_t2:float -> delay_t3:float -> t
(** @raise Invalid_argument on negative delays. *)

val p_t3_low : t -> p_star:float -> float
(** Alice's reveal cutoff — unchanged by the slack (Eq. 18 is local to
    the decision), exposed for symmetry. *)

val b_t2_cont : t -> p_star:float -> p_t2:float -> float
(** Bob's deployment value with the longer diffusion leg to Alice's
    decision and the stretched refund schedule. *)

val p_t2_band : ?scan_points:int -> t -> p_star:float -> Intervals.t

val a_t1_cont : ?quad_nodes:int -> t -> p_star:float -> float
val b_t1_cont : ?quad_nodes:int -> t -> p_star:float -> float

val success_rate : ?quad_nodes:int -> t -> p_star:float -> float

val schedule_cost :
  ?quad_nodes:int -> Params.t -> p_star:float -> delay_t2:float ->
  delay_t3:float -> float * float
(** [(alice_loss, bob_loss)]: each agent's [t1] utility under the
    slacked schedule subtracted from the zero-waiting value — the
    price of waiting that Section III-C reasons about. *)
