open Numerics
open Stochastic

type outcome = Success | Abort_t1 | Abort_t2 | Abort_t3

type result = {
  trials : int;
  successes : int;
  abort_t1 : int;
  abort_t2 : int;
  abort_t3 : int;
  rate : float;
  initiated : int;
  ci95 : float * float;
  mean_utility_alice : float;
  mean_utility_bob : float;
}

type sampler = Rng.t -> p0:float -> tau:float -> float

let gbm_sampler (p : Params.t) =
  let gbm = Params.gbm p in
  fun rng ~p0 ~tau -> Gbm.sample rng gbm ~p0 ~tau

let jump_sampler jd = fun rng ~p0 ~tau -> Jump_diffusion.sample rng jd ~p0 ~tau

let outcome_to_string = function
  | Success -> "success"
  | Abort_t1 -> "abort@t1"
  | Abort_t2 -> "abort@t2"
  | Abort_t3 -> "abort@t3"

(* One simulated swap.  Returns the outcome together with each agent's
   realised utility assessed at t1: (1 + alpha S) * receipt value *
   e^{-r * (receipt time - t1)}, plus any deposit flows supplied by
   [deposit_flows outcome] (time-stamped extra Token_a amounts). *)
let simulate_one rng (p : Params.t) ~p_star ~(policy : Agent.t)
    ~(sampler : sampler) =
  let tl = Timeline.ideal p in
  match policy.Agent.alice_t1 ~p_star with
  | Agent.Stop -> (Abort_t1, 0., 0., [])
  | Agent.Cont -> (
    let p_t2 = sampler rng ~p0:p.p0 ~tau:p.tau_a in
    match policy.Agent.bob_t2 ~p_t2 with
    | Agent.Stop ->
      (* Bob keeps Token_b now; Alice's refund arrives at t8. *)
      let u_bob = p_t2 *. exp (-.p.bob.r *. (tl.Timeline.t2 -. tl.Timeline.t1)) in
      let u_alice = p_star *. exp (-.p.alice.r *. (tl.Timeline.t8 -. tl.Timeline.t1)) in
      (Abort_t2, u_alice, u_bob, [ ("p_t2", p_t2) ])
    | Agent.Cont -> (
      let p_t3 = sampler rng ~p0:p_t2 ~tau:p.tau_b in
      match policy.Agent.alice_t3 ~p_t3 with
      | Agent.Stop ->
        (* Alice waives: refunds at t8 (Alice) and t7 (Bob). *)
        let p_t7 = sampler rng ~p0:p_t3 ~tau:(2. *. p.tau_b) in
        let u_alice =
          p_star *. exp (-.p.alice.r *. (tl.Timeline.t8 -. tl.Timeline.t1))
        in
        let u_bob =
          p_t7 *. exp (-.p.bob.r *. (tl.Timeline.t7 -. tl.Timeline.t1))
        in
        (Abort_t3, u_alice, u_bob, [ ("p_t2", p_t2); ("p_t3", p_t3) ])
      | Agent.Cont ->
        (* Success: Alice receives Token_b at t5, Bob Token_a at t6. *)
        let p_t5 = sampler rng ~p0:p_t3 ~tau:p.tau_b in
        let u_alice =
          (1. +. p.alice.alpha)
          *. p_t5
          *. exp (-.p.alice.r *. (tl.Timeline.t5 -. tl.Timeline.t1))
        in
        let u_bob =
          (1. +. p.bob.alpha)
          *. p_star
          *. exp (-.p.bob.r *. (tl.Timeline.t6 -. tl.Timeline.t1))
        in
        (Success, u_alice, u_bob, [ ("p_t2", p_t2); ("p_t3", p_t3) ])))

(* --- parallel substrate ------------------------------------------------- *)

(* Trials are covered by fixed-size chunks; chunk [c] draws from its own
   generator [Rng.of_stream ~seed ~stream:c], so the sampled paths are a
   pure function of (seed, chunk size) and the result is bit-identical
   for any jobs count.  Per-chunk tallies are merged in chunk order. *)
let chunk_trials = 512

(* Experiment-wide trial-count override (CLI `experiment --trials`): when
   set, every run that would use its [?trials] argument uses this count
   instead.  Atomic so parallel experiments read it safely. *)
let trials_override : int option Atomic.t = Atomic.make None

let set_trials_override o =
  (match o with
  | Some n when n < 1 -> invalid_arg "Montecarlo.set_trials_override"
  | _ -> ());
  Atomic.set trials_override o

let effective_trials requested =
  match Atomic.get trials_override with Some n -> n | None -> requested

type tally = {
  mutable n_success : int;
  mutable n_abort_t1 : int;
  mutable n_abort_t2 : int;
  mutable n_abort_t3 : int;
  mutable n_initiated : int;
  mutable sum_ua : float;
  mutable sum_ub : float;
}

let tally () =
  {
    n_success = 0;
    n_abort_t1 = 0;
    n_abort_t2 = 0;
    n_abort_t3 = 0;
    n_initiated = 0;
    sum_ua = 0.;
    sum_ub = 0.;
  }

let record t outcome ua ub =
  (match outcome with
  | Success -> t.n_success <- t.n_success + 1
  | Abort_t1 -> t.n_abort_t1 <- t.n_abort_t1 + 1
  | Abort_t2 -> t.n_abort_t2 <- t.n_abort_t2 + 1
  | Abort_t3 -> t.n_abort_t3 <- t.n_abort_t3 + 1);
  if outcome <> Abort_t1 then begin
    t.n_initiated <- t.n_initiated + 1;
    t.sum_ua <- t.sum_ua +. ua;
    t.sum_ub <- t.sum_ub +. ub
  end

let merge acc t =
  acc.n_success <- acc.n_success + t.n_success;
  acc.n_abort_t1 <- acc.n_abort_t1 + t.n_abort_t1;
  acc.n_abort_t2 <- acc.n_abort_t2 + t.n_abort_t2;
  acc.n_abort_t3 <- acc.n_abort_t3 + t.n_abort_t3;
  acc.n_initiated <- acc.n_initiated + t.n_initiated;
  acc.sum_ua <- acc.sum_ua +. t.sum_ua;
  acc.sum_ub <- acc.sum_ub +. t.sum_ub;
  acc

let summarise ~trials (t : tally) =
  let initiated_n = t.n_initiated in
  let rate =
    if initiated_n = 0 then 0.
    else float_of_int t.n_success /. float_of_int initiated_n
  in
  let ci95 =
    if initiated_n = 0 then (0., 0.)
    else
      Stats.wilson_interval ~successes:t.n_success ~trials:initiated_n ~z:1.96
  in
  {
    trials;
    successes = t.n_success;
    abort_t1 = t.n_abort_t1;
    abort_t2 = t.n_abort_t2;
    abort_t3 = t.n_abort_t3;
    rate;
    initiated = initiated_n;
    ci95;
    mean_utility_alice =
      (if initiated_n = 0 then 0. else t.sum_ua /. float_of_int initiated_n);
    mean_utility_bob =
      (if initiated_n = 0 then 0. else t.sum_ub /. float_of_int initiated_n);
  }

let m_runs = Obs.Metrics.counter "mc.runs"
let m_trials = Obs.Metrics.counter "mc.trials"
let m_trials_per_s = Obs.Metrics.gauge "mc.trials_per_s"

(* Shared chunked driver for [run] and [run_collateral].  Probes sit at
   run and chunk granularity (a chunk is 512 trials), never per trial,
   and touch nothing the RNG streams depend on — instrumented runs stay
   bit-identical to uninstrumented ones for any jobs count. *)
let run_tallied ?jobs ~trials ~seed simulate =
  Obs.Metrics.incr m_runs;
  Obs.Metrics.add m_trials trials;
  let t0 = if Obs.Metrics.enabled () then Obs.Monotonic.now_ns () else 0L in
  let total =
    Obs.Trace.with_span "mc.run" @@ fun run_span ->
    Obs.Trace.annotate run_span "trials" (string_of_int trials);
    Numerics.Pool.parallel_for_reduce ?jobs ~chunk_size:chunk_trials ~n:trials
      ~init:(tally ())
      ~body:(fun ~chunk ~lo ~hi ->
        Obs.Trace.with_span ~parent:run_span "mc.chunk" @@ fun chunk_span ->
        Obs.Trace.annotate chunk_span "chunk" (string_of_int chunk);
        let rng = Rng.of_stream ~seed ~stream:chunk () in
        let t = tally () in
        for _ = lo to hi - 1 do
          let outcome, ua, ub = simulate rng in
          record t outcome ua ub
        done;
        t)
      ~combine:merge
  in
  if t0 <> 0L then begin
    let dt = Obs.Monotonic.elapsed_s ~since_ns:t0 in
    if dt > 0. then
      Obs.Metrics.set_gauge m_trials_per_s (float_of_int trials /. dt)
  end;
  summarise ~trials total

let run ?(trials = 20_000) ?(seed = 0x51ab) ?jobs ?sampler (p : Params.t)
    ~p_star ~policy =
  let trials = effective_trials trials in
  let sampler = Option.value ~default:(gbm_sampler p) sampler in
  run_tallied ?jobs ~trials ~seed (fun rng ->
      let outcome, ua, ub, _ = simulate_one rng p ~p_star ~policy ~sampler in
      (outcome, ua, ub))

let utility_samples ?(trials = 20_000) ?(seed = 0x51ab) ?jobs ?sampler
    (p : Params.t) ~p_star ~policy =
  let trials = effective_trials trials in
  let sampler = Option.value ~default:(gbm_sampler p) sampler in
  Obs.Metrics.incr m_runs;
  Obs.Metrics.add m_trials trials;
  (* Each chunk fills preallocated buffers in one pass (no reversed
     intermediate lists); chunk buffers are concatenated in order. *)
  let parts =
    Obs.Trace.with_span "mc.utility_samples" @@ fun _ ->
    Numerics.Pool.map_chunks ?jobs ~chunk_size:chunk_trials ~n:trials
      (fun ~chunk ~lo ~hi ->
        let rng = Rng.of_stream ~seed ~stream:chunk () in
        let cap = hi - lo in
        let ua = Array.make cap 0. and ub = Array.make cap 0. in
        let count = ref 0 in
        for _ = lo to hi - 1 do
          let outcome, a, b, _ = simulate_one rng p ~p_star ~policy ~sampler in
          if outcome <> Abort_t1 then begin
            ua.(!count) <- a;
            ub.(!count) <- b;
            incr count
          end
        done;
        (!count, ua, ub))
  in
  let n = Array.fold_left (fun acc (c, _, _) -> acc + c) 0 parts in
  let ua = Array.make n 0. and ub = Array.make n 0. in
  let pos = ref 0 in
  Array.iter
    (fun (c, ca, cb) ->
      Array.blit ca 0 ua !pos c;
      Array.blit cb 0 ub !pos c;
      pos := !pos + c)
    parts;
  (ua, ub)

(* Collateral game: same path logic, but deposits flow per the Oracle
   rules and decisions use the Section IV thresholds. *)
let simulate_one_collateral rng (c : Collateral.t) ~p_star
    ~(policy : Agent.t) ~(sampler : sampler) =
  let p = c.Collateral.params in
  let qa = c.Collateral.q_alice and qb = c.Collateral.q_bob in
  let tl = Timeline.ideal p in
  let da horizon = exp (-.p.Params.alice.r *. horizon) in
  let db horizon = exp (-.p.Params.bob.r *. horizon) in
  match policy.Agent.alice_t1 ~p_star with
  | Agent.Stop -> (Abort_t1, 0., 0.)
  | Agent.Cont -> (
    let p_t2 = sampler rng ~p0:p.Params.p0 ~tau:p.Params.tau_a in
    match policy.Agent.bob_t2 ~p_t2 with
    | Agent.Stop ->
      (* Bob forfeits; Alice receives refund at t8 plus both deposits
         released at t3, credited t3 + tau_a. *)
      let u_alice =
        (p_star *. da (tl.Timeline.t8 -. tl.Timeline.t1))
        +. ((qa +. qb) *. da (tl.Timeline.t3 +. p.Params.tau_a -. tl.Timeline.t1))
      in
      let u_bob = p_t2 *. db (tl.Timeline.t2 -. tl.Timeline.t1) in
      (Abort_t2, u_alice, u_bob)
    | Agent.Cont -> (
      let p_t3 = sampler rng ~p0:p_t2 ~tau:p.Params.tau_b in
      (* Bob's own deposit returns at t3 + tau_a in all t3 branches. *)
      let bob_deposit_back =
        qb *. db (tl.Timeline.t3 +. p.Params.tau_a -. tl.Timeline.t1)
      in
      match policy.Agent.alice_t3 ~p_t3 with
      | Agent.Stop ->
        let p_t7 = sampler rng ~p0:p_t3 ~tau:(2. *. p.Params.tau_b) in
        let u_alice = p_star *. da (tl.Timeline.t8 -. tl.Timeline.t1) in
        let u_bob =
          (p_t7 *. db (tl.Timeline.t7 -. tl.Timeline.t1))
          +. bob_deposit_back
          +. (qa *. db (tl.Timeline.t4 +. p.Params.tau_a -. tl.Timeline.t1))
        in
        (Abort_t3, u_alice, u_bob)
      | Agent.Cont ->
        let p_t5 = sampler rng ~p0:p_t3 ~tau:p.Params.tau_b in
        let u_alice =
          ((1. +. p.Params.alice.alpha)
          *. p_t5
          *. da (tl.Timeline.t5 -. tl.Timeline.t1))
          +. (qa *. da (tl.Timeline.t4 +. p.Params.tau_a -. tl.Timeline.t1))
        in
        let u_bob =
          ((1. +. p.Params.bob.alpha)
          *. p_star
          *. db (tl.Timeline.t6 -. tl.Timeline.t1))
          +. bob_deposit_back
        in
        (Success, u_alice, u_bob)))

let run_collateral ?(trials = 20_000) ?(seed = 0x51ab) ?jobs ?sampler
    (c : Collateral.t) ~p_star =
  let trials = effective_trials trials in
  let p = c.Collateral.params in
  let sampler = Option.value ~default:(gbm_sampler p) sampler in
  let policy = Agent.rational_collateral c ~p_star in
  run_tallied ?jobs ~trials ~seed (fun rng ->
      simulate_one_collateral rng c ~p_star ~policy ~sampler)
