open Numerics
open Stochastic

type outcome = Success | Abort_t1 | Abort_t2 | Abort_t3

type result = {
  trials : int;
  successes : int;
  abort_t1 : int;
  abort_t2 : int;
  abort_t3 : int;
  rate : float;
  initiated : int;
  ci95 : float * float;
  mean_utility_alice : float;
  mean_utility_bob : float;
}

type sampler = Rng.t -> p0:float -> tau:float -> float

let gbm_sampler (p : Params.t) =
  let gbm = Params.gbm p in
  fun rng ~p0 ~tau -> Gbm.sample rng gbm ~p0 ~tau

let jump_sampler jd = fun rng ~p0 ~tau -> Jump_diffusion.sample rng jd ~p0 ~tau

let outcome_to_string = function
  | Success -> "success"
  | Abort_t1 -> "abort@t1"
  | Abort_t2 -> "abort@t2"
  | Abort_t3 -> "abort@t3"

(* One simulated swap.  Returns the outcome together with each agent's
   realised utility assessed at t1: (1 + alpha S) * receipt value *
   e^{-r * (receipt time - t1)}, plus any deposit flows supplied by
   [deposit_flows outcome] (time-stamped extra Token_a amounts). *)
let simulate_one rng (p : Params.t) ~p_star ~(policy : Agent.t)
    ~(sampler : sampler) =
  let tl = Timeline.ideal p in
  match policy.Agent.alice_t1 ~p_star with
  | Agent.Stop -> (Abort_t1, 0., 0., [])
  | Agent.Cont -> (
    let p_t2 = sampler rng ~p0:p.p0 ~tau:p.tau_a in
    match policy.Agent.bob_t2 ~p_t2 with
    | Agent.Stop ->
      (* Bob keeps Token_b now; Alice's refund arrives at t8. *)
      let u_bob = p_t2 *. exp (-.p.bob.r *. (tl.Timeline.t2 -. tl.Timeline.t1)) in
      let u_alice = p_star *. exp (-.p.alice.r *. (tl.Timeline.t8 -. tl.Timeline.t1)) in
      (Abort_t2, u_alice, u_bob, [ ("p_t2", p_t2) ])
    | Agent.Cont -> (
      let p_t3 = sampler rng ~p0:p_t2 ~tau:p.tau_b in
      match policy.Agent.alice_t3 ~p_t3 with
      | Agent.Stop ->
        (* Alice waives: refunds at t8 (Alice) and t7 (Bob). *)
        let p_t7 = sampler rng ~p0:p_t3 ~tau:(2. *. p.tau_b) in
        let u_alice =
          p_star *. exp (-.p.alice.r *. (tl.Timeline.t8 -. tl.Timeline.t1))
        in
        let u_bob =
          p_t7 *. exp (-.p.bob.r *. (tl.Timeline.t7 -. tl.Timeline.t1))
        in
        (Abort_t3, u_alice, u_bob, [ ("p_t2", p_t2); ("p_t3", p_t3) ])
      | Agent.Cont ->
        (* Success: Alice receives Token_b at t5, Bob Token_a at t6. *)
        let p_t5 = sampler rng ~p0:p_t3 ~tau:p.tau_b in
        let u_alice =
          (1. +. p.alice.alpha)
          *. p_t5
          *. exp (-.p.alice.r *. (tl.Timeline.t5 -. tl.Timeline.t1))
        in
        let u_bob =
          (1. +. p.bob.alpha)
          *. p_star
          *. exp (-.p.bob.r *. (tl.Timeline.t6 -. tl.Timeline.t1))
        in
        (Success, u_alice, u_bob, [ ("p_t2", p_t2); ("p_t3", p_t3) ])))

let summarise ~trials outcomes =
  let successes = ref 0
  and abort_t1 = ref 0
  and abort_t2 = ref 0
  and abort_t3 = ref 0 in
  let sum_ua = ref 0. and sum_ub = ref 0. and initiated = ref 0 in
  List.iter
    (fun (outcome, ua, ub) ->
      (match outcome with
      | Success -> incr successes
      | Abort_t1 -> incr abort_t1
      | Abort_t2 -> incr abort_t2
      | Abort_t3 -> incr abort_t3);
      if outcome <> Abort_t1 then begin
        incr initiated;
        sum_ua := !sum_ua +. ua;
        sum_ub := !sum_ub +. ub
      end)
    outcomes;
  let initiated_n = !initiated in
  let rate =
    if initiated_n = 0 then 0.
    else float_of_int !successes /. float_of_int initiated_n
  in
  let ci95 =
    if initiated_n = 0 then (0., 0.)
    else Stats.wilson_interval ~successes:!successes ~trials:initiated_n ~z:1.96
  in
  {
    trials;
    successes = !successes;
    abort_t1 = !abort_t1;
    abort_t2 = !abort_t2;
    abort_t3 = !abort_t3;
    rate;
    initiated = initiated_n;
    ci95;
    mean_utility_alice =
      (if initiated_n = 0 then 0. else !sum_ua /. float_of_int initiated_n);
    mean_utility_bob =
      (if initiated_n = 0 then 0. else !sum_ub /. float_of_int initiated_n);
  }

let run ?(trials = 20_000) ?(seed = 0x51ab) ?sampler (p : Params.t) ~p_star
    ~policy =
  let sampler = Option.value ~default:(gbm_sampler p) sampler in
  let rng = Rng.create ~seed () in
  let outcomes = ref [] in
  for _ = 1 to trials do
    let outcome, ua, ub, _ = simulate_one rng p ~p_star ~policy ~sampler in
    outcomes := (outcome, ua, ub) :: !outcomes
  done;
  summarise ~trials !outcomes

let utility_samples ?(trials = 20_000) ?(seed = 0x51ab) ?sampler (p : Params.t)
    ~p_star ~policy =
  let sampler = Option.value ~default:(gbm_sampler p) sampler in
  let rng = Rng.create ~seed () in
  let ua = ref [] and ub = ref [] in
  for _ = 1 to trials do
    let outcome, a, b, _ = simulate_one rng p ~p_star ~policy ~sampler in
    if outcome <> Abort_t1 then begin
      ua := a :: !ua;
      ub := b :: !ub
    end
  done;
  (Array.of_list (List.rev !ua), Array.of_list (List.rev !ub))

(* Collateral game: same path logic, but deposits flow per the Oracle
   rules and decisions use the Section IV thresholds. *)
let simulate_one_collateral rng (c : Collateral.t) ~p_star
    ~(policy : Agent.t) ~(sampler : sampler) =
  let p = c.Collateral.params in
  let qa = c.Collateral.q_alice and qb = c.Collateral.q_bob in
  let tl = Timeline.ideal p in
  let da horizon = exp (-.p.Params.alice.r *. horizon) in
  let db horizon = exp (-.p.Params.bob.r *. horizon) in
  match policy.Agent.alice_t1 ~p_star with
  | Agent.Stop -> (Abort_t1, 0., 0.)
  | Agent.Cont -> (
    let p_t2 = sampler rng ~p0:p.Params.p0 ~tau:p.Params.tau_a in
    match policy.Agent.bob_t2 ~p_t2 with
    | Agent.Stop ->
      (* Bob forfeits; Alice receives refund at t8 plus both deposits
         released at t3, credited t3 + tau_a. *)
      let u_alice =
        (p_star *. da (tl.Timeline.t8 -. tl.Timeline.t1))
        +. ((qa +. qb) *. da (tl.Timeline.t3 +. p.Params.tau_a -. tl.Timeline.t1))
      in
      let u_bob = p_t2 *. db (tl.Timeline.t2 -. tl.Timeline.t1) in
      (Abort_t2, u_alice, u_bob)
    | Agent.Cont -> (
      let p_t3 = sampler rng ~p0:p_t2 ~tau:p.Params.tau_b in
      (* Bob's own deposit returns at t3 + tau_a in all t3 branches. *)
      let bob_deposit_back =
        qb *. db (tl.Timeline.t3 +. p.Params.tau_a -. tl.Timeline.t1)
      in
      match policy.Agent.alice_t3 ~p_t3 with
      | Agent.Stop ->
        let p_t7 = sampler rng ~p0:p_t3 ~tau:(2. *. p.Params.tau_b) in
        let u_alice = p_star *. da (tl.Timeline.t8 -. tl.Timeline.t1) in
        let u_bob =
          (p_t7 *. db (tl.Timeline.t7 -. tl.Timeline.t1))
          +. bob_deposit_back
          +. (qa *. db (tl.Timeline.t4 +. p.Params.tau_a -. tl.Timeline.t1))
        in
        (Abort_t3, u_alice, u_bob)
      | Agent.Cont ->
        let p_t5 = sampler rng ~p0:p_t3 ~tau:p.Params.tau_b in
        let u_alice =
          ((1. +. p.Params.alice.alpha)
          *. p_t5
          *. da (tl.Timeline.t5 -. tl.Timeline.t1))
          +. (qa *. da (tl.Timeline.t4 +. p.Params.tau_a -. tl.Timeline.t1))
        in
        let u_bob =
          ((1. +. p.Params.bob.alpha)
          *. p_star
          *. db (tl.Timeline.t6 -. tl.Timeline.t1))
          +. bob_deposit_back
        in
        (Success, u_alice, u_bob)))

let run_collateral ?(trials = 20_000) ?(seed = 0x51ab) ?sampler
    (c : Collateral.t) ~p_star =
  let p = c.Collateral.params in
  let sampler = Option.value ~default:(gbm_sampler p) sampler in
  let policy = Agent.rational_collateral c ~p_star in
  let rng = Rng.create ~seed () in
  let outcomes = ref [] in
  for _ = 1 to trials do
    let outcome, ua, ub =
      simulate_one_collateral rng c ~p_star ~policy ~sampler
    in
    outcomes := (outcome, ua, ub) :: !outcomes
  done;
  summarise ~trials !outcomes
