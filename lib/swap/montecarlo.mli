(** Monte-Carlo simulation of the swap game: sample price paths, apply
    the agents' policies at each decision point, and record outcomes and
    realised utilities.  Cross-validates the analytic success rate
    (Eq. 31/40) and supports policies and price processes beyond the
    closed-form model (e.g. jump diffusions). *)

type outcome = Success | Abort_t1 | Abort_t2 | Abort_t3

type result = {
  trials : int;
  successes : int;
  abort_t1 : int;
  abort_t2 : int;
  abort_t3 : int;
  rate : float;  (** Successes / trials {e given initiation} (the paper's
                     SR conditions on the swap having started; aborts at
                     [t1] mean zero initiations everywhere). *)
  initiated : int;
  ci95 : float * float;  (** Wilson 95% interval on [rate]. *)
  mean_utility_alice : float;
      (** Realised [(1 + alpha S) V] discounted to [t1], averaged over
          initiated trials. *)
  mean_utility_bob : float;
}

type sampler = Numerics.Rng.t -> p0:float -> tau:float -> float
(** One-step price transition sampler. *)

val gbm_sampler : Params.t -> sampler
(** Exact lognormal transitions of the paper's model. *)

val jump_sampler : Stochastic.Jump_diffusion.t -> sampler
(** Fat-tailed alternative for the robustness ablation. *)

val run :
  ?trials:int -> ?seed:int -> ?jobs:int -> ?sampler:sampler -> Params.t ->
  p_star:float -> policy:Agent.t -> result
(** Simulates [trials] independent swaps (default 20_000).

    Trials are executed in fixed-size chunks on the domain pool
    ({!Numerics.Pool}), each chunk drawing from its own generator
    [Rng.of_stream ~seed ~stream:chunk]; the result is therefore
    {e bit-identical for any [jobs] count} (default: the pool's global
    setting). *)

val utility_samples :
  ?trials:int -> ?seed:int -> ?jobs:int -> ?sampler:sampler -> Params.t ->
  p_star:float -> policy:Agent.t -> float array * float array
(** Realised [(alice, bob)] utilities (discounted to [t1]) for every
    {e initiated} trial — the raw material for risk views beyond the
    mean (dispersion, tail quantiles).  Same seed-stable chunking as
    {!run}: at equal [seed] both functions simulate the same trials in
    the same order, for any [jobs]. *)

val run_collateral :
  ?trials:int -> ?seed:int -> ?jobs:int -> ?sampler:sampler -> Collateral.t ->
  p_star:float -> result
(** Section IV game under the rational-with-collateral policy; realised
    utilities include deposits returned/forfeited per the Oracle rules.
    Seed-stable parallel execution as in {!run}. *)

val set_trials_override : int option -> unit
(** Process-wide override of the trial count: when [Some n], {!run},
    {!run_collateral} and {!utility_samples} simulate [n] trials
    regardless of their [?trials] argument — wired to the CLI's
    [experiment --trials] so simulation-heavy experiments can be scaled
    up or down without recompiling; [None] (the default) restores the
    per-call counts.  @raise Invalid_argument on [Some n] with [n < 1]. *)

val outcome_to_string : outcome -> string
