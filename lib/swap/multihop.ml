(* Multi-party cyclic swaps — now a thin compatibility shim over
   lib/swapgraph specialised to the cycle topology.  The graph
   library carries the general machinery (arbitrary well-formed
   digraphs, Herlihy timelock assignment, chain execution, Monte
   Carlo); this module keeps the historical cycle-shaped API and
   semantics: on an n-cycle the generalised schedule, execution and
   per-leg rational rule reproduce the original implementation. *)

type spec = { parties : int; params : Params.t; p_star : float }

let make ?(parties = 3) ?p_star (params : Params.t) =
  if parties < 2 then invalid_arg "Multihop.make: requires >= 2 parties";
  let p_star = Option.value ~default:params.Params.p0 p_star in
  { parties; params; p_star }

let tau spec = spec.params.Params.tau_b

let graph spec = Swapgraph.Topology.cycle spec.parties

(* Arc [j] of the canonical cycle is [j -> j+1 mod n]: arc indices
   coincide with the historical leg indices. *)
let schedule spec = Graphlink.schedule spec.params (graph spec)

let lock_phase_hours spec = (schedule spec).Swapgraph.Timelock.lock_phase_end

let claim_submit_time spec j =
  (schedule spec).Swapgraph.Timelock.claim_time.(j)

let expiry_schedule spec =
  Array.copy (schedule spec).Swapgraph.Timelock.expiry

let total_success_hours spec = claim_submit_time spec 0 +. tau spec

type outcome =
  | Success
  | Abort_at_lock of int
  | Abort_no_reveal
  | Anomalous of string

type result = {
  outcome : outcome;
  deltas : (float * float) array;
  trace : (float * string) list;
}

let run ?(decisions = fun _i ~price:_ -> Agent.Cont) ?(offline = [])
    ?(price_paths = fun _i _t -> 2.) ?(seed = 0xcafe) spec =
  let g = graph spec in
  let r =
    Swapgraph.Exec.run
      ~decisions:(fun v ~price ->
        match decisions v ~price with
        | Agent.Cont -> Swapgraph.Exec.Cont
        | Agent.Stop -> Swapgraph.Exec.Stop)
      ~offline ~prices:price_paths ~seed g (schedule spec)
  in
  let outcome =
    match r.Swapgraph.Exec.outcome with
    | Swapgraph.Exec.Success -> Success
    | Swapgraph.Exec.Abort_at_lock v -> Abort_at_lock v
    | Swapgraph.Exec.Abort_no_reveal -> Abort_no_reveal
    | Swapgraph.Exec.Anomalous msg -> Anomalous msg
  in
  {
    outcome;
    deltas = r.Swapgraph.Exec.deltas;
    trace = r.Swapgraph.Exec.trace;
  }

type mc_result = {
  trials : int;
  success : int;
  rate : float;
  aborted_at : int array;
}

let mc_success_rate ?(trials = 20_000) ?(seed = 0x40b) spec =
  let n = spec.parties in
  let g = graph spec in
  let r =
    Swapgraph.Mc.estimate ~trials ~seed g (schedule spec)
      (Graphlink.uniform_policy spec.params ~p_star:spec.p_star)
  in
  {
    trials;
    success = r.Swapgraph.Mc.success;
    rate = r.Swapgraph.Mc.rate;
    aborted_at =
      Array.init (n + 1) (fun i ->
          if i < n then r.Swapgraph.Mc.aborted_lock.(i)
          else r.Swapgraph.Mc.aborted_reveal);
  }
